// The golden-regression gate: testdata/golden/ holds the quick-scale
// render of every table/figure plus the machine-readable report, checked
// in byte-for-byte. PR 1 made the harness deterministic at any worker
// count, which turns these files into a cheap, exact oracle — any change
// to the model, the harness, or the report emitters that shifts a single
// cell fails TestGolden with a readable diff.
//
// After an intentional model change, regenerate with:
//
//	go test -run TestGolden -update && git diff testdata/golden
package shotgun_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"shotgun/internal/harness"
	"shotgun/internal/report"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden from the current model")

// goldenRunner runs the full quick-scale evaluation once per test
// process, shared by the per-experiment subtests and by the spec
// parity test (spec_golden_test.go) — both assemble tables from the
// same memoized results instead of simulating the suite twice.
var goldenRunner = sync.OnceValue(func() *harness.Runner {
	r := harness.NewRunner(harness.QuickScale())
	r.PrefetchScenarios(harness.AllScenarios(harness.Experiments()))
	return r
})

func TestGolden(t *testing.T) {
	exps := harness.Experiments()
	r := goldenRunner()

	for _, e := range exps {
		t.Run(e.ID, func(t *testing.T) {
			compareGolden(t, filepath.Join("testdata", "golden", e.ID+".txt"), e.Run(r))
		})
	}

	t.Run("report.json", func(t *testing.T) {
		var b strings.Builder
		if err := report.FromExperiments(r, exps, "quick").WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		compareGolden(t, filepath.Join("testdata", "golden", "report.json"), b.String())
	})
}

// compareGolden diffs got against the checked-in file (or rewrites it
// under -update), failing with the first differing line so table drift
// reads directly in CI logs.
func compareGolden(t *testing.T, path, got string) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with: go test -run TestGolden -update): %v", path, err)
	}
	if got == string(want) {
		return
	}
	t.Errorf("%s drifted from the golden corpus:\n%s\n(intentional change? regenerate with: go test -run TestGolden -update)",
		path, firstDiff(string(want), got))
}

// firstDiff renders the first differing line of two multi-line strings.
func firstDiff(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  golden: %q\n  got:    %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: golden %d lines, got %d lines", len(wl), len(gl))
}
