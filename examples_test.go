// Compile-and-run coverage for the examples/ programs: `go build ./...`
// only proves they compile, so a runtime regression (a renamed
// workload, a changed API contract, a panic on startup) in example code
// was invisible to CI until a human tried one. Each example is built
// into a scratch dir and executed to completion, and its output is
// checked for the landmarks a reader of that example is promised.
package shotgun_test

import (
	"context"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// examplePrograms lists every example with the output landmarks that
// prove it did its job (not just exited zero).
var examplePrograms = []struct {
	name string
	args []string
	want []string
}{
	{name: "quickstart", want: []string{"DB2 baseline:", "DB2 Shotgun:", "speedup:"}},
	{name: "prefetcher_compare", args: []string{"-workload", "Nutch"},
		want: []string{"mechanism", "shotgun", "ideal"}},
	{name: "btb_pressure",
		want: []string{"dynamic branch coverage", "measured BTB MPKI"}},
	{name: "footprint_explorer", args: []string{"-funcs", "200", "-blocks", "100000"},
		want: []string{"cumulative access probability", "footprint"}},
}

func TestExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run real simulations; skipped in -short mode")
	}
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not in PATH: %v", err)
	}
	bindir := t.TempDir()
	for _, ex := range examplePrograms {
		ex := ex
		t.Run(ex.name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(bindir, ex.name)
			build := exec.Command(gobin, "build", "-o", bin, "./examples/"+ex.name)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			defer cancel()
			out, err := exec.CommandContext(ctx, bin, ex.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("run: %v\n%s", err, out)
			}
			for _, want := range ex.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}
