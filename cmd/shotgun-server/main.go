// Command shotgun-server serves the experiment harness over HTTP:
// clients POST batches of simulation configs or multi-core scenarios,
// poll results by content key, and render any of the paper's
// tables/figures on demand. Results persist in an on-disk store, so a
// restarted server answers previously computed configurations without
// re-simulating.
//
// The same binary is every node of a scenario farm:
//
//   - default: single node — accept, simulate locally, serve.
//   - -coordinator: own the job table and the store, but lease every
//     simulation to -join workers over /v1/lease//v1/heartbeat/
//     /v1/complete instead of running it here. Leases expire when a
//     worker stops heartbeating and the job is requeued, so worker
//     death costs latency, never results.
//   - -join <url,...>: be a worker — an endless lease → simulate →
//     push loop over the local harness.Runner; no listener, no store
//     (records land in the coordinator's). Naming several coordinators
//     (comma-separated, failover order) makes the worker HA-aware: when
//     the active one dies it re-registers its in-flight leases with the
//     next and keeps going.
//   - -shard: be one slice of a sharded result store — no simulation,
//     no public API, just the shard wire protocol (GET/PUT
//     /shard/v1/records/{key}, /shard/v1/keys, /shard/v1/stats,
//     /healthz) over the local -store directory.
//
// A front-end (single node or coordinator) given -store-shards routes
// every record over a consistent-hash ring to those shard nodes
// instead of a local directory, writing -store-replicas copies (reads
// fall through replicas; a background loop re-replicates onto shards
// that rejoin). A coordinator given -standby starts as a warm spare:
// same store, own job table, role "standby" in /v1/cluster until
// workers fail over to it — resubmit the sweep there and nothing
// already computed or in flight is simulated twice.
//
// The process shuts down gracefully: SIGINT/SIGTERM stop the listener,
// in-flight HTTP requests get a deadline to finish, and the simulation
// backend stops (local pool: finishes in-flight work; worker: finishes
// and pushes its current job), so no accepted work is lost silently.
//
// Multi-tenant farm mode: -tenants points at a JSON registry
// ({"tenants":[{"name","key","weight","max_queued","max_in_flight"}]});
// the SHOTGUN_TENANTS environment variable carries the same document
// inline and overrides the file (secrets stay out of argv). With a
// registry loaded, every request except /healthz, /v1/version and
// /metrics must present "Authorization: Bearer <key>", submissions are
// scheduled fair-share by tenant weight, per-tenant quotas answer 429,
// and -max-queue bounds the global backlog (past it the server sheds
// with 503 + Retry-After). -fair-slots bounds how many jobs sit in the
// execution backend at once (default 2x -parallel locally; 256 in
// coordinator mode, where it caps lease-table occupancy, not CPU).
// -log picks the structured access/lifecycle log format. See
// docs/FARM.md for the full operations guide.
//
// Usage:
//
//	shotgun-server -addr :8080 -store ./shotgun-store           # full scale, single node
//	shotgun-server -scale quick -parallel 4                     # smoke scale
//	shotgun-server -store ./s -store-max-bytes 1000000000       # prune to ~1GB on start
//	shotgun-server -queue 8192 -shutdown-timeout 30s            # backlog + drain deadline
//	shotgun-server -tenants tenants.json -max-queue 10000       # multi-tenant farm
//	shotgun-server -tenants t.json -log json                    # JSON access logs
//	shotgun-server -coordinator -store ./s -lease-ttl 30s       # cluster front-end
//	shotgun-server -coordinator -fair-slots 512                 # deeper lease table
//	shotgun-server -join http://coord:8080 -parallel 8          # simulation worker
//	shotgun-server -join http://coord:8080 -worker-id rack3-a   # named worker
//	shotgun-server -shard -addr :9001 -store ./shard1           # store shard node
//	shotgun-server -coordinator -store-shards http://s1:9001,http://s2:9001,http://s3:9001 \
//	    -store-replicas 2                                       # replicated sharded store
//	shotgun-server -coordinator -standby -store ./s             # warm-spare coordinator
//	shotgun-server -join http://c1:8080,http://c2:8080          # worker with coordinator failover
//
// Example session (drop the Authorization header when auth is off):
//
//	curl -s localhost:8080/v1/version
//	curl -s -X POST localhost:8080/v1/sims -H 'Authorization: Bearer key-acme' \
//	    -d '{"configs":[{"Workload":"Oracle","Mechanism":"shotgun"}]}'
//	curl -s -X POST localhost:8080/v1/scenarios -H 'Authorization: Bearer key-acme' \
//	    -d '{"scenarios":[{"Cores":[{"Workload":"Oracle","Mechanism":"shotgun"},{"Workload":"DB2","Mechanism":"fdip"}]}]}'
//	curl -s -H 'Authorization: Bearer key-acme' localhost:8080/v1/scenarios/<key>
//	curl -s -H 'Authorization: Bearer key-acme' localhost:8080/v1/experiments/fig7?format=csv
//	curl -s -N -X POST --data-binary @specs/fig7.json -H 'Accept: text/event-stream' \
//	    -H 'Authorization: Bearer key-acme' 'localhost:8080/v1/sweeps?format=text'
//	curl -s localhost:8080/metrics
//	curl -s localhost:8080/v1/cluster                            # coordinator only
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"shotgun/internal/dispatch"
	"shotgun/internal/harness"
	"shotgun/internal/server"
	"shotgun/internal/store"
)

// runWorker is the -join path: no listener, no store — just a lease →
// simulate → push loop against the coordinator until the signal
// context cancels (the in-flight job finishes and is pushed first).
func runWorker(ctx context.Context, opts options, scale harness.Scale, stdout, stderr io.Writer) int {
	w, err := dispatch.NewWorker(dispatch.WorkerConfig{
		Coordinators: splitList(opts.join),
		ID:           opts.workerID,
		Runner:       harness.NewRunnerWorkers(scale, opts.parallel),
		Concurrency:  opts.parallel,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stdout, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if err := w.Run(ctx); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stdout, "worker %s: shutdown complete\n", w.ID())
	return 0
}

// splitList splits a comma-separated flag value, dropping blanks.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// runShard is the -shard path: this node is one slice of the sharded
// result store. No simulation, no public API — just the shard wire
// protocol over the local on-disk store, so the front-end's ring can
// route records here.
func runShard(ctx context.Context, opts options, stdout, stderr io.Writer) int {
	st, err := store.Open(opts.storeDir)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if opts.storeMaxBytes > 0 {
		dropped, err := st.Prune(opts.storeMaxBytes)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if dropped > 0 {
			fmt.Fprintf(stdout, "store: pruned %d oldest records to fit %d bytes\n",
				dropped, opts.storeMaxBytes)
		}
	}
	mux := http.NewServeMux()
	store.NewShardServer(st).Register(mux)
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	hs := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(stdout, "shotgun-server shard listening on %s (store %s, %d records)\n",
		ln.Addr(), st.Dir(), st.Len())
	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, err)
		return 1
	case <-ctx.Done():
	}
	fmt.Fprintf(stdout, "shutting down: draining requests (up to %v)\n", opts.shutdownTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), opts.shutdownTimeout)
	defer cancel()
	code := 0
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintln(stderr, err)
		code = 1
	}
	fmt.Fprintln(stdout, "shutdown complete")
	return code
}

func main() {
	// Graceful shutdown: the first SIGINT/SIGTERM cancels the context
	// and starts the drain; a second signal kills the process the
	// default way (signal.NotifyContext unregisters on cancel).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// errPrinted marks errors the flag package already reported to stderr.
var errPrinted = errors.New("flag parse error")

// tenantsEnv carries the registry document inline (overriding
// -tenants), so API keys can reach the process without touching argv
// or the filesystem.
const tenantsEnv = "SHOTGUN_TENANTS"

// loadTenants resolves the tenant registry: the SHOTGUN_TENANTS
// environment variable wins over the -tenants file; neither means auth
// stays off. The second return names the source for the startup line.
func loadTenants(path string) (*server.TenantRegistry, string, error) {
	if doc := os.Getenv(tenantsEnv); doc != "" {
		reg, err := server.ParseTenants([]byte(doc))
		if err != nil {
			return nil, "", fmt.Errorf("%s: %v", tenantsEnv, err)
		}
		return reg, "$" + tenantsEnv, nil
	}
	if path == "" {
		return nil, "", nil
	}
	reg, err := server.LoadTenants(path)
	if err != nil {
		return nil, "", err
	}
	return reg, path, nil
}

// newLogger builds the structured logger behind -log.
func newLogger(format string, stdout io.Writer) *slog.Logger {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(stdout, nil))
	case "json":
		return slog.New(slog.NewJSONHandler(stdout, nil))
	default:
		return nil // server.New falls back to a discard logger
	}
}

// options is the validated flag set.
type options struct {
	addr            string
	scale           string
	parallel        int
	storeDir        string
	storeMaxBytes   int64
	queue           int
	maxQueue        int
	fairSlots       int
	tenantsPath     string
	logFormat       string
	shutdownTimeout time.Duration
	coordinator     bool
	standby         bool
	leaseTTL        time.Duration
	join            string
	workerID        string
	shard           bool
	storeShards     string
	storeReplicas   int
}

// parseOptions parses and validates flags; all validation errors are
// caught here, before any server state exists.
func parseOptions(args []string, stderr io.Writer) (options, error) {
	fs := flag.NewFlagSet("shotgun-server", flag.ContinueOnError)
	fs.SetOutput(stderr)
	opts := options{}
	fs.StringVar(&opts.addr, "addr", ":8080", "listen address")
	fs.StringVar(&opts.scale, "scale", "full", "simulation scale: quick or full")
	fs.IntVar(&opts.parallel, "parallel", runtime.GOMAXPROCS(0), "simulation worker count")
	fs.StringVar(&opts.storeDir, "store", "", "persistent result store directory (empty: in-memory only)")
	fs.Int64Var(&opts.storeMaxBytes, "store-max-bytes", 0,
		"prune the store's oldest records down to this many bytes on start (0: keep everything)")
	fs.IntVar(&opts.queue, "queue", 4096, "pending-simulation queue depth")
	fs.IntVar(&opts.maxQueue, "max-queue", 0,
		"global fair-queue backlog bound; past it submissions shed with 503 + Retry-After (0: unlimited)")
	fs.IntVar(&opts.fairSlots, "fair-slots", 0,
		"jobs resident in the execution backend at once (0: 2x -parallel, or 256 in coordinator mode)")
	fs.StringVar(&opts.tenantsPath, "tenants", "",
		"tenant registry JSON enabling API-key auth and fair-share quotas (SHOTGUN_TENANTS env overrides)")
	fs.StringVar(&opts.logFormat, "log", "off", "structured request log format: off, text or json")
	fs.DurationVar(&opts.shutdownTimeout, "shutdown-timeout", 10*time.Second,
		"deadline for in-flight HTTP requests on SIGINT/SIGTERM")
	fs.BoolVar(&opts.coordinator, "coordinator", false,
		"lease simulations to -join workers instead of running them in this process")
	fs.DurationVar(&opts.leaseTTL, "lease-ttl", dispatch.DefaultLeaseTTL,
		"worker heartbeat deadline before a leased job is requeued (coordinator mode)")
	fs.BoolVar(&opts.standby, "standby", false,
		"start as a warm-spare coordinator: role standby until workers fail over to it (coordinator mode)")
	fs.StringVar(&opts.join, "join", "",
		"coordinator URL(s) to join as a simulation worker, comma-separated in failover order")
	fs.StringVar(&opts.workerID, "worker-id", "",
		"worker name in leases (default hostname-pid; worker mode)")
	fs.BoolVar(&opts.shard, "shard", false,
		"serve the -store directory as one shard of a sharded result store (shard protocol only)")
	fs.StringVar(&opts.storeShards, "store-shards", "",
		"comma-separated shard URLs; records route over a consistent-hash ring instead of a local -store")
	fs.IntVar(&opts.storeReplicas, "store-replicas", 0,
		"copies of every record across -store-shards (default 2, clamped to the shard count)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return options{}, err
		}
		return options{}, errPrinted
	}
	if opts.scale != "quick" && opts.scale != "full" {
		return options{}, fmt.Errorf("-scale must be quick or full (got %q)", opts.scale)
	}
	if opts.parallel <= 0 {
		return options{}, fmt.Errorf("-parallel must be positive (got %d)", opts.parallel)
	}
	if opts.queue <= 0 {
		return options{}, fmt.Errorf("-queue must be positive (got %d)", opts.queue)
	}
	if opts.storeMaxBytes < 0 {
		return options{}, fmt.Errorf("-store-max-bytes must be non-negative (got %d)", opts.storeMaxBytes)
	}
	if opts.maxQueue < 0 {
		return options{}, fmt.Errorf("-max-queue must be non-negative (got %d)", opts.maxQueue)
	}
	if opts.fairSlots < 0 {
		return options{}, fmt.Errorf("-fair-slots must be non-negative (got %d)", opts.fairSlots)
	}
	switch opts.logFormat {
	case "off", "text", "json":
	default:
		return options{}, fmt.Errorf("-log must be off, text or json (got %q)", opts.logFormat)
	}
	if opts.storeMaxBytes > 0 && opts.storeDir == "" {
		return options{}, fmt.Errorf("-store-max-bytes requires -store")
	}
	if opts.shutdownTimeout <= 0 {
		return options{}, fmt.Errorf("-shutdown-timeout must be positive (got %v)", opts.shutdownTimeout)
	}
	if opts.leaseTTL <= 0 {
		return options{}, fmt.Errorf("-lease-ttl must be positive (got %v)", opts.leaseTTL)
	}
	if opts.join != "" {
		if opts.coordinator {
			return options{}, fmt.Errorf("-join and -coordinator are mutually exclusive (a node is a worker or a coordinator)")
		}
		if opts.storeDir != "" {
			return options{}, fmt.Errorf("-join workers keep no store (records land in the coordinator's); drop -store")
		}
		if opts.tenantsPath != "" {
			return options{}, fmt.Errorf("-join workers serve no API (the coordinator authenticates); drop -tenants")
		}
		if opts.storeShards != "" {
			return options{}, fmt.Errorf("-join workers keep no store (the coordinator routes to shards); drop -store-shards")
		}
		if len(splitList(opts.join)) == 0 {
			return options{}, fmt.Errorf("-join must name at least one coordinator URL")
		}
	}
	if opts.workerID != "" && opts.join == "" {
		return options{}, fmt.Errorf("-worker-id requires -join")
	}
	if opts.standby && !opts.coordinator {
		return options{}, fmt.Errorf("-standby requires -coordinator (a warm spare is a coordinator)")
	}
	if opts.shard {
		if opts.storeDir == "" {
			return options{}, fmt.Errorf("-shard requires -store (the shard's record directory)")
		}
		if opts.coordinator || opts.join != "" {
			return options{}, fmt.Errorf("-shard is its own role; drop -coordinator/-join")
		}
		if opts.storeShards != "" {
			return options{}, fmt.Errorf("-store-shards belongs on a front-end; a -shard node holds records")
		}
		if opts.tenantsPath != "" {
			return options{}, fmt.Errorf("-shard nodes serve no public API (the front-end authenticates); drop -tenants")
		}
	}
	if opts.storeReplicas < 0 {
		return options{}, fmt.Errorf("-store-replicas must be positive (got %d)", opts.storeReplicas)
	}
	if opts.storeReplicas > 0 && opts.storeShards == "" {
		return options{}, fmt.Errorf("-store-replicas requires -store-shards")
	}
	if opts.storeShards != "" {
		if opts.storeDir != "" {
			return options{}, fmt.Errorf("-store-shards and -store are mutually exclusive (records live on the shard nodes)")
		}
		if len(splitList(opts.storeShards)) == 0 {
			return options{}, fmt.Errorf("-store-shards must name at least one shard URL")
		}
		if opts.storeReplicas == 0 {
			opts.storeReplicas = 2
		}
	}
	return opts, nil
}

// run serves until ctx is canceled (SIGINT/SIGTERM in production; the
// test harness cancels directly), then drains: listener closed, in-
// flight requests given the shutdown deadline, worker pool drained.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	opts, err := parseOptions(args, stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0 // -h/-help is a successful exit, like flag.ExitOnError
		}
		if !errors.Is(err, errPrinted) {
			fmt.Fprintln(stderr, err)
		}
		return 2
	}

	scale := harness.FullScale()
	if opts.scale == "quick" {
		scale = harness.QuickScale()
	}
	if opts.join != "" {
		return runWorker(ctx, opts, scale, stdout, stderr)
	}
	if opts.shard {
		return runShard(ctx, opts, stdout, stderr)
	}
	// Coordinator slots bound lease-table occupancy, not local CPU, so
	// the default is much deeper there.
	fairSlots := opts.fairSlots
	if fairSlots == 0 && opts.coordinator {
		fairSlots = 256
	}
	cfg := server.Config{
		Scale:      scale,
		ScaleName:  opts.scale,
		Workers:    opts.parallel,
		QueueDepth: opts.queue,
		MaxQueue:   opts.maxQueue,
		FairSlots:  fairSlots,
		Logger:     newLogger(opts.logFormat, stdout),
	}
	reg, regSource, err := loadTenants(opts.tenantsPath)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if reg != nil {
		cfg.Tenants = reg
		fmt.Fprintf(stdout, "tenants: %d registered from %s (API-key auth on)\n", len(reg.Tenants()), regSource)
	}
	if opts.storeDir != "" {
		st, err := store.Open(opts.storeDir)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if opts.storeMaxBytes > 0 {
			dropped, err := st.Prune(opts.storeMaxBytes)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			if dropped > 0 {
				fmt.Fprintf(stdout, "store: pruned %d oldest records to fit %d bytes\n",
					dropped, opts.storeMaxBytes)
			}
		}
		cfg.Store = st
		fmt.Fprintf(stdout, "store: %s (%d records)\n", st.Dir(), st.Len())
	}
	// -store-shards swaps the local directory for the consistent-hash
	// ring: every record routes to -store-replicas shard nodes, and the
	// repair loop re-replicates onto shards that rejoin.
	var sharded *store.Sharded
	if opts.storeShards != "" {
		sh, err := store.OpenSharded(store.ShardedConfig{
			Shards:         splitList(opts.storeShards),
			Replication:    opts.storeReplicas,
			RepairInterval: 5 * time.Second,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(stdout, format+"\n", args...)
			},
		})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		sharded = sh
		cfg.Store = sh
		fmt.Fprintf(stdout, "store: sharded over %d shards, %d replicas per record\n",
			len(splitList(opts.storeShards)), sh.Replication())
	}
	closeSharded := func() {
		if sharded != nil {
			sharded.Close()
		}
	}

	// Coordinator mode swaps the local worker pool for a lease table:
	// accepted jobs wait for -join workers instead of simulating here.
	var coord *dispatch.Coordinator
	if opts.coordinator {
		cfg.NewExecutor = func(_ *harness.Runner, sink dispatch.Sink) dispatch.Executor {
			coord = dispatch.NewCoordinator(dispatch.CoordinatorConfig{
				LeaseTTL:   opts.leaseTTL,
				QueueDepth: opts.queue,
				Store:      cfg.Store,
				Sink:       sink,
				Standby:    opts.standby,
			})
			return coord
		}
		// server.New runs NewExecutor synchronously, so coord is set
		// before the first /metrics scrape can fire.
		cfg.ClusterStats = func() dispatch.CoordinatorStats { return coord.Stats() }
	}
	srv := server.New(cfg)
	handler := srv.Handler()
	if coord != nil {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		coord.Register(mux)
		handler = mux
	}

	// Listen before announcing, so "listening on" is never a lie and
	// tests can bind :0 and read the chosen port.
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		srv.Close()
		closeSharded()
		fmt.Fprintln(stderr, err)
		return 1
	}
	hs := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	mode := "single-node"
	if opts.coordinator {
		role := "coordinator"
		if opts.standby {
			role = "standby coordinator"
		}
		mode = fmt.Sprintf("%s, lease TTL %v", role, opts.leaseTTL)
	}
	auth := "auth off"
	if reg != nil {
		auth = "auth on"
	}
	fmt.Fprintf(stdout, "shotgun-server listening on %s (scale %s, %s, %s)\n", ln.Addr(), opts.scale, mode, auth)

	select {
	case err := <-serveErr:
		// The listener died under us: finish in-flight simulations,
		// abandon the rest, and fail.
		srv.Shutdown()
		closeSharded()
		fmt.Fprintln(stderr, err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintf(stdout, "shutting down: draining requests (up to %v) and the worker pool\n", opts.shutdownTimeout)
	// Stop accepting work BEFORE draining HTTP: submissions still in
	// flight get an honest "shutting down" 503 instead of a 202 for
	// work the drain below would abandon.
	srv.RejectNew()
	sctx, cancel := context.WithTimeout(context.Background(), opts.shutdownTimeout)
	defer cancel()
	code := 0
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintln(stderr, err)
		code = 1
	}
	// Abandon still-queued simulations (a full-scale queue can hold
	// hours of work; with a store everything completed is kept and a
	// resubmit after restart dedups onto it) — but let in-flight ones
	// finish so no result is half-computed.
	srv.Shutdown()
	closeSharded()
	fmt.Fprintln(stdout, "shutdown complete")
	return code
}
