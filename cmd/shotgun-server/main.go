// Command shotgun-server serves the experiment harness over HTTP:
// clients POST batches of simulation configs or multi-core scenarios,
// poll results by content key, and render any of the paper's
// tables/figures on demand. Results persist in an on-disk store, so a
// restarted server answers previously computed configurations without
// re-simulating.
//
// The process shuts down gracefully: SIGINT/SIGTERM stop the listener,
// in-flight HTTP requests get a deadline to finish, and the simulation
// worker pool drains before exit, so no accepted work is lost silently.
//
// Usage:
//
//	shotgun-server -addr :8080 -store ./shotgun-store           # full scale
//	shotgun-server -scale quick -parallel 4                     # smoke scale
//	shotgun-server -store ./s -store-max-bytes 1000000000       # prune to ~1GB on start
//
// Example session:
//
//	curl -s -X POST localhost:8080/v1/sims \
//	    -d '{"configs":[{"Workload":"Oracle","Mechanism":"shotgun"}]}'
//	curl -s -X POST localhost:8080/v1/scenarios \
//	    -d '{"scenarios":[{"Cores":[{"Workload":"Oracle","Mechanism":"shotgun"},{"Workload":"DB2","Mechanism":"fdip"}]}]}'
//	curl -s localhost:8080/v1/scenarios/<key>
//	curl -s localhost:8080/v1/experiments/fig7?format=csv
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"shotgun/internal/harness"
	"shotgun/internal/server"
	"shotgun/internal/store"
)

func main() {
	// Graceful shutdown: the first SIGINT/SIGTERM cancels the context
	// and starts the drain; a second signal kills the process the
	// default way (signal.NotifyContext unregisters on cancel).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// errPrinted marks errors the flag package already reported to stderr.
var errPrinted = errors.New("flag parse error")

// options is the validated flag set.
type options struct {
	addr            string
	scale           string
	parallel        int
	storeDir        string
	storeMaxBytes   int64
	queue           int
	shutdownTimeout time.Duration
}

// parseOptions parses and validates flags; all validation errors are
// caught here, before any server state exists.
func parseOptions(args []string, stderr io.Writer) (options, error) {
	fs := flag.NewFlagSet("shotgun-server", flag.ContinueOnError)
	fs.SetOutput(stderr)
	opts := options{}
	fs.StringVar(&opts.addr, "addr", ":8080", "listen address")
	fs.StringVar(&opts.scale, "scale", "full", "simulation scale: quick or full")
	fs.IntVar(&opts.parallel, "parallel", runtime.GOMAXPROCS(0), "simulation worker count")
	fs.StringVar(&opts.storeDir, "store", "", "persistent result store directory (empty: in-memory only)")
	fs.Int64Var(&opts.storeMaxBytes, "store-max-bytes", 0,
		"prune the store's oldest records down to this many bytes on start (0: keep everything)")
	fs.IntVar(&opts.queue, "queue", 4096, "pending-simulation queue depth")
	fs.DurationVar(&opts.shutdownTimeout, "shutdown-timeout", 10*time.Second,
		"deadline for in-flight HTTP requests on SIGINT/SIGTERM")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return options{}, err
		}
		return options{}, errPrinted
	}
	if opts.scale != "quick" && opts.scale != "full" {
		return options{}, fmt.Errorf("-scale must be quick or full (got %q)", opts.scale)
	}
	if opts.parallel <= 0 {
		return options{}, fmt.Errorf("-parallel must be positive (got %d)", opts.parallel)
	}
	if opts.queue <= 0 {
		return options{}, fmt.Errorf("-queue must be positive (got %d)", opts.queue)
	}
	if opts.storeMaxBytes < 0 {
		return options{}, fmt.Errorf("-store-max-bytes must be non-negative (got %d)", opts.storeMaxBytes)
	}
	if opts.storeMaxBytes > 0 && opts.storeDir == "" {
		return options{}, fmt.Errorf("-store-max-bytes requires -store")
	}
	if opts.shutdownTimeout <= 0 {
		return options{}, fmt.Errorf("-shutdown-timeout must be positive (got %v)", opts.shutdownTimeout)
	}
	return opts, nil
}

// run serves until ctx is canceled (SIGINT/SIGTERM in production; the
// test harness cancels directly), then drains: listener closed, in-
// flight requests given the shutdown deadline, worker pool drained.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	opts, err := parseOptions(args, stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0 // -h/-help is a successful exit, like flag.ExitOnError
		}
		if !errors.Is(err, errPrinted) {
			fmt.Fprintln(stderr, err)
		}
		return 2
	}

	scale := harness.FullScale()
	if opts.scale == "quick" {
		scale = harness.QuickScale()
	}
	cfg := server.Config{
		Scale:      scale,
		ScaleName:  opts.scale,
		Workers:    opts.parallel,
		QueueDepth: opts.queue,
	}
	if opts.storeDir != "" {
		st, err := store.Open(opts.storeDir)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if opts.storeMaxBytes > 0 {
			dropped, err := st.Prune(opts.storeMaxBytes)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			if dropped > 0 {
				fmt.Fprintf(stdout, "store: pruned %d oldest records to fit %d bytes\n",
					dropped, opts.storeMaxBytes)
			}
		}
		cfg.Store = st
		fmt.Fprintf(stdout, "store: %s (%d records)\n", st.Dir(), st.Len())
	}

	srv := server.New(cfg)

	// Listen before announcing, so "listening on" is never a lie and
	// tests can bind :0 and read the chosen port.
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		srv.Close()
		fmt.Fprintln(stderr, err)
		return 1
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(stdout, "shotgun-server listening on %s (scale %s)\n", ln.Addr(), opts.scale)

	select {
	case err := <-serveErr:
		// The listener died under us: finish in-flight simulations,
		// abandon the rest, and fail.
		srv.Shutdown()
		fmt.Fprintln(stderr, err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintf(stdout, "shutting down: draining requests (up to %v) and the worker pool\n", opts.shutdownTimeout)
	// Stop accepting work BEFORE draining HTTP: submissions still in
	// flight get an honest "shutting down" 503 instead of a 202 for
	// work the drain below would abandon.
	srv.RejectNew()
	sctx, cancel := context.WithTimeout(context.Background(), opts.shutdownTimeout)
	defer cancel()
	code := 0
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintln(stderr, err)
		code = 1
	}
	// Abandon still-queued simulations (a full-scale queue can hold
	// hours of work; with a store everything completed is kept and a
	// resubmit after restart dedups onto it) — but let in-flight ones
	// finish so no result is half-computed.
	srv.Shutdown()
	fmt.Fprintln(stdout, "shutdown complete")
	return code
}
