// Command shotgun-server serves the experiment harness over HTTP:
// clients POST batches of simulation configs, poll results by content
// key, and render any of the paper's tables/figures on demand. Results
// persist in an on-disk store, so a restarted server answers previously
// computed configurations without re-simulating.
//
// Usage:
//
//	shotgun-server -addr :8080 -store ./shotgun-store           # full scale
//	shotgun-server -scale quick -parallel 4                     # smoke scale
//
// Example session:
//
//	curl -s -X POST localhost:8080/v1/sims \
//	    -d '{"configs":[{"Workload":"Oracle","Mechanism":"shotgun"}]}'
//	curl -s localhost:8080/v1/sims/<key>
//	curl -s localhost:8080/v1/experiments/fig7?format=csv
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"

	"shotgun/internal/harness"
	"shotgun/internal/server"
	"shotgun/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// errPrinted marks errors the flag package already reported to stderr.
var errPrinted = errors.New("flag parse error")

// options is the validated flag set.
type options struct {
	addr     string
	scale    string
	parallel int
	storeDir string
	queue    int
}

// parseOptions parses and validates flags; all validation errors are
// caught here, before any server state exists.
func parseOptions(args []string, stderr io.Writer) (options, error) {
	fs := flag.NewFlagSet("shotgun-server", flag.ContinueOnError)
	fs.SetOutput(stderr)
	opts := options{}
	fs.StringVar(&opts.addr, "addr", ":8080", "listen address")
	fs.StringVar(&opts.scale, "scale", "full", "simulation scale: quick or full")
	fs.IntVar(&opts.parallel, "parallel", runtime.GOMAXPROCS(0), "simulation worker count")
	fs.StringVar(&opts.storeDir, "store", "", "persistent result store directory (empty: in-memory only)")
	fs.IntVar(&opts.queue, "queue", 4096, "pending-simulation queue depth")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return options{}, err
		}
		return options{}, errPrinted
	}
	if opts.scale != "quick" && opts.scale != "full" {
		return options{}, fmt.Errorf("-scale must be quick or full (got %q)", opts.scale)
	}
	if opts.parallel <= 0 {
		return options{}, fmt.Errorf("-parallel must be positive (got %d)", opts.parallel)
	}
	if opts.queue <= 0 {
		return options{}, fmt.Errorf("-queue must be positive (got %d)", opts.queue)
	}
	return opts, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	opts, err := parseOptions(args, stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0 // -h/-help is a successful exit, like flag.ExitOnError
		}
		if !errors.Is(err, errPrinted) {
			fmt.Fprintln(stderr, err)
		}
		return 2
	}

	scale := harness.FullScale()
	if opts.scale == "quick" {
		scale = harness.QuickScale()
	}
	cfg := server.Config{
		Scale:      scale,
		ScaleName:  opts.scale,
		Workers:    opts.parallel,
		QueueDepth: opts.queue,
	}
	if opts.storeDir != "" {
		st, err := store.Open(opts.storeDir)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		cfg.Store = st
		fmt.Fprintf(stdout, "store: %s (%d records)\n", st.Dir(), st.Len())
	}

	srv := server.New(cfg)
	defer srv.Close()
	fmt.Fprintf(stdout, "shotgun-server listening on %s (scale %s)\n", opts.addr, opts.scale)
	if err := http.ListenAndServe(opts.addr, srv.Handler()); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}
