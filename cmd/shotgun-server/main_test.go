package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseOptionsRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad scale", []string{"-scale", "medium"}, "quick or full"},
		{"zero parallel", []string{"-parallel", "0"}, "positive"},
		{"negative parallel", []string{"-parallel", "-2"}, "positive"},
		{"zero queue", []string{"-queue", "0"}, "positive"},
		{"negative store budget", []string{"-store-max-bytes", "-1"}, "non-negative"},
		{"budget without store", []string{"-store-max-bytes", "1000"}, "requires -store"},
		{"zero shutdown timeout", []string{"-shutdown-timeout", "0s"}, "positive"},
		{"zero lease ttl", []string{"-coordinator", "-lease-ttl", "0s"}, "positive"},
		{"join and coordinator", []string{"-join", "http://x:1", "-coordinator"}, "mutually exclusive"},
		{"worker with store", []string{"-join", "http://x:1", "-store", "./s"}, "drop -store"},
		{"worker id without join", []string{"-worker-id", "w1"}, "requires -join"},
		{"negative max queue", []string{"-max-queue", "-1"}, "non-negative"},
		{"negative fair slots", []string{"-fair-slots", "-5"}, "non-negative"},
		{"bad log format", []string{"-log", "xml"}, "off, text or json"},
		{"worker with tenants", []string{"-join", "http://x:1", "-tenants", "t.json"}, "drop -tenants"},
		{"worker with store shards", []string{"-join", "http://x:1", "-store-shards", "http://y:1"}, "drop -store-shards"},
		{"empty join list", []string{"-join", " , "}, "at least one coordinator URL"},
		{"standby without coordinator", []string{"-standby"}, "requires -coordinator"},
		{"shard without store", []string{"-shard"}, "requires -store"},
		{"shard with coordinator", []string{"-shard", "-store", "./s", "-coordinator"}, "own role"},
		{"shard with store shards", []string{"-shard", "-store", "./s", "-store-shards", "http://x:1"}, "front-end"},
		{"shard with tenants", []string{"-shard", "-store", "./s", "-tenants", "t.json"}, "drop -tenants"},
		{"negative replicas", []string{"-store-replicas", "-1"}, "positive"},
		{"replicas without shards", []string{"-store-replicas", "2"}, "requires -store-shards"},
		{"store shards with store", []string{"-store-shards", "http://x:1", "-store", "./s"}, "mutually exclusive"},
		{"empty shard list", []string{"-store-shards", ","}, "at least one shard URL"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseOptions(tc.args, io.Discard)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("args %v: error %q missing %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestParseOptionsDefaults(t *testing.T) {
	opts, err := parseOptions(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opts.scale != "full" || opts.addr != ":8080" || opts.parallel < 1 || opts.queue != 4096 {
		t.Fatalf("defaults wrong: %+v", opts)
	}
	if opts.shutdownTimeout != 10*time.Second {
		t.Fatalf("shutdown timeout default = %v", opts.shutdownTimeout)
	}
	if opts.coordinator || opts.join != "" || opts.leaseTTL != 30*time.Second {
		t.Fatalf("cluster defaults wrong: %+v (single-node must be the zero-flag default)", opts)
	}
	if opts.maxQueue != 0 || opts.fairSlots != 0 || opts.tenantsPath != "" || opts.logFormat != "off" {
		t.Fatalf("farm defaults wrong: %+v (unbounded queue, derived slots, open access, no log)", opts)
	}
	if opts.shard || opts.standby || opts.storeShards != "" || opts.storeReplicas != 0 {
		t.Fatalf("sharding defaults wrong: %+v (local store, active role must be the zero-flag default)", opts)
	}

	// With a shard list and no explicit factor, replication defaults on.
	opts, err = parseOptions([]string{"-store-shards", "http://a:1,http://b:1,http://c:1"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opts.storeReplicas != 2 {
		t.Fatalf("store-replicas default = %d, want 2", opts.storeReplicas)
	}
}

// TestLoadTenantsSources covers the registry resolution order: the
// SHOTGUN_TENANTS document wins over the -tenants file, the file loads
// when the env is empty, and no source at all means open access.
func TestLoadTenantsSources(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(`{"tenants":[{"name":"filetenant","key":"kf"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	t.Setenv(tenantsEnv, `{"tenants":[{"name":"envtenant","key":"ke"}]}`)
	reg, source, err := loadTenants(path)
	if err != nil {
		t.Fatal(err)
	}
	if source != "$"+tenantsEnv {
		t.Fatalf("source = %q, want the env var", source)
	}
	if _, ok := reg.Lookup("ke"); !ok {
		t.Fatal("env registry not loaded")
	}
	if _, ok := reg.Lookup("kf"); ok {
		t.Fatal("file registry leaked through despite the env override")
	}

	t.Setenv(tenantsEnv, `{`)
	if _, _, err := loadTenants(path); err == nil || !strings.Contains(err.Error(), tenantsEnv) {
		t.Fatalf("broken env doc: err %v, want one naming %s", err, tenantsEnv)
	}

	t.Setenv(tenantsEnv, "")
	reg, source, err = loadTenants(path)
	if err != nil {
		t.Fatal(err)
	}
	if source != path {
		t.Fatalf("source = %q, want the file path", source)
	}
	if _, ok := reg.Lookup("kf"); !ok {
		t.Fatal("file registry not loaded")
	}

	reg, _, err = loadTenants("")
	if err != nil || reg != nil {
		t.Fatalf("no source must mean open access: reg %v err %v", reg, err)
	}
}

// syncBuffer lets the test read the server's stdout while run is still
// writing to it.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRE = regexp.MustCompile(`listening on ([^ ]+)`)

// TestGracefulShutdown boots the real server on an ephemeral port,
// waits for it to serve, cancels the signal context (what SIGTERM does
// in production) and asserts a clean, complete drain.
func TestGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	var errBuf syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-scale", "quick", "-parallel", "1"}, &out, &errBuf)
	}()

	// Wait for the announced address, then confirm liveness.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; stdout: %q stderr: %q", out.String(), errBuf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code %d; stderr: %q", code, errBuf.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down after cancel")
	}
	if !strings.Contains(out.String(), "shutdown complete") {
		t.Fatalf("drain never completed; stdout: %q", out.String())
	}
	// The listener must actually be gone.
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// waitListen spins until a run() goroutine announces its address.
func waitListen(t *testing.T, out *syncBuffer, errBuf *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; stdout: %q stderr: %q", out.String(), errBuf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAuthedServerSmoke boots run() with a -tenants file and checks the
// wiring end to end: the startup line announces auth, exempt routes stay
// open, unkeyed API requests bounce with the envelope, and a keyed
// request passes.
func TestAuthedServerSmoke(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(`{"tenants":[{"name":"acme","key":"key-acme"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out, errBuf syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-scale", "quick", "-parallel", "1",
			"-tenants", path, "-log", "json", "-max-queue", "100",
		}, &out, &errBuf)
	}()
	addr := waitListen(t, &out, &errBuf)
	if !strings.Contains(out.String(), "auth on") {
		t.Fatalf("startup never announced auth: %q", out.String())
	}

	get := func(path, key string) (int, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, "http://"+addr+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if key != "" {
			req.Header.Set("Authorization", "Bearer "+key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	if code, body := get("/v1/version", ""); code != http.StatusOK {
		t.Fatalf("/v1/version is exempt, got %d: %s", code, body)
	} else if !strings.Contains(string(body), `"auth_required": true`) {
		t.Fatalf("/v1/version does not advertise auth: %s", body)
	}
	if code, body := get("/v1/sims/nope", ""); code != http.StatusUnauthorized ||
		!strings.Contains(string(body), "unauthorized") {
		t.Fatalf("unkeyed request: %d %s, want 401 envelope", code, body)
	}
	if code, _ := get("/v1/sims/nope", "key-acme"); code != http.StatusNotFound {
		t.Fatalf("keyed request: %d, want 404 (past auth)", code)
	}
	if code, _ := get("/metrics", ""); code != http.StatusOK {
		t.Fatalf("/metrics is exempt, got %d", code)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code %d; stderr: %q", code, errBuf.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down after cancel")
	}
	// -log json routes the access log to stdout: the requests above must
	// have left structured lines behind.
	if !strings.Contains(out.String(), `"msg":"request"`) {
		t.Fatalf("no structured request log in stdout: %q", out.String())
	}
}

// TestCoordinatorWorkerSmoke boots the real binary paths of both
// cluster roles — a coordinator run() and a worker run() — submits one
// simulation over HTTP, and asserts the worker leases, simulates and
// pushes it back to "done". This is the two-terminal README walkthrough
// as a test.
func TestCoordinatorWorkerSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var coordOut, coordErr syncBuffer
	coordDone := make(chan int, 1)
	go func() {
		coordDone <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-scale", "quick", "-coordinator",
			"-lease-ttl", "5s", "-store", t.TempDir(),
		}, &coordOut, &coordErr)
	}()
	addr := waitListen(t, &coordOut, &coordErr)
	if !strings.Contains(coordOut.String(), "coordinator") {
		t.Fatalf("coordinator mode not announced: %q", coordOut.String())
	}

	var workerOut, workerErr syncBuffer
	workerDone := make(chan int, 1)
	go func() {
		workerDone <- run(ctx, []string{
			"-join", "http://" + addr, "-worker-id", "smoke-worker", "-parallel", "1",
		}, &workerOut, &workerErr)
	}()

	// Submit one quick simulation and poll it to completion.
	body := `{"configs":[{"Workload":"Nutch","Mechanism":"none"}]}`
	resp, err := http.Post("http://"+addr+"/v1/sims", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		Sims []struct {
			Key string `json:"key"`
		} `json:"sims"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil || len(sub.Sims) != 1 {
		t.Fatalf("submit: %v %+v", err, sub)
	}

	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/v1/sims/" + sub.Sims[0].Key)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Status == "done" {
			break
		}
		if st.Status == "failed" {
			t.Fatalf("job failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck at %q; worker: %q %q", st.Status, workerOut.String(), workerErr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The cluster endpoint reports the lease traffic.
	resp, err = http.Get("http://" + addr + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var cs struct {
		Completed uint64 `json:"completed"`
	}
	err = json.NewDecoder(resp.Body).Decode(&cs)
	resp.Body.Close()
	if err != nil || cs.Completed != 1 {
		t.Fatalf("cluster stats: %v %+v", err, cs)
	}

	cancel()
	for name, ch := range map[string]chan int{"coordinator": coordDone, "worker": workerDone} {
		select {
		case code := <-ch:
			if code != 0 {
				t.Fatalf("%s exit code %d", name, code)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("%s did not shut down", name)
		}
	}
	if !strings.Contains(workerOut.String(), "shutdown complete") {
		t.Fatalf("worker never drained: %q", workerOut.String())
	}
}

// TestShardedStoreSmoke boots the full sharded topology out of the real
// binary paths: two -shard nodes plus a front-end routing records to
// them with -store-shards. One quick simulation must land replicated on
// the shards, be served back by key, and show up in the shard health
// metrics.
func TestShardedStoreSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Two shard nodes on their own directories.
	shardAddrs := make([]string, 2)
	shardDone := make([]chan int, 2)
	var shardOut, shardErr [2]syncBuffer
	for i := range shardAddrs {
		done := make(chan int, 1)
		args := []string{"-shard", "-addr", "127.0.0.1:0", "-store", t.TempDir()}
		out, errBuf := &shardOut[i], &shardErr[i]
		go func() { done <- run(ctx, args, out, errBuf) }()
		shardAddrs[i] = waitListen(t, out, errBuf)
		shardDone[i] = done
	}

	// The front-end: a plain single-node server whose store is the ring.
	var out, errBuf syncBuffer
	frontDone := make(chan int, 1)
	go func() {
		frontDone <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-scale", "quick", "-parallel", "1",
			"-store-shards", "http://" + shardAddrs[0] + ",http://" + shardAddrs[1],
		}, &out, &errBuf)
	}()
	addr := waitListen(t, &out, &errBuf)
	if !strings.Contains(out.String(), "sharded over 2 shards, 2 replicas") {
		t.Fatalf("sharded store not announced: %q", out.String())
	}

	body := `{"configs":[{"Workload":"Nutch","Mechanism":"none"}]}`
	resp, err := http.Post("http://"+addr+"/v1/sims", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		Sims []struct {
			Key string `json:"key"`
		} `json:"sims"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil || len(sub.Sims) != 1 {
		t.Fatalf("submit: %v %+v", err, sub)
	}
	key := sub.Sims[0].Key

	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/v1/sims/" + key)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Status == "done" {
			break
		}
		if st.Status == "failed" {
			t.Fatalf("job failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck at %q; stderr: %q", st.Status, errBuf.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Replication 2 over 2 shards: the record must sit on BOTH shard
	// nodes, reachable over the raw shard protocol.
	for i, sa := range shardAddrs {
		resp, err := http.Get("http://" + sa + "/shard/v1/records/" + key)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shard %d does not hold the record (status %d)", i, resp.StatusCode)
		}
	}

	// The shard health families are on the front-end's scrape.
	resp, err = http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"shotgun_store_shard_up{", "shotgun_store_shard_records{"} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	cancel()
	for name, ch := range map[string]chan int{
		"front-end": frontDone, "shard0": shardDone[0], "shard1": shardDone[1],
	} {
		select {
		case code := <-ch:
			if code != 0 {
				t.Fatalf("%s exit code %d", name, code)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("%s did not shut down", name)
		}
	}
}
