package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseOptionsRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad scale", []string{"-scale", "medium"}, "quick or full"},
		{"zero parallel", []string{"-parallel", "0"}, "positive"},
		{"negative parallel", []string{"-parallel", "-2"}, "positive"},
		{"zero queue", []string{"-queue", "0"}, "positive"},
		{"negative store budget", []string{"-store-max-bytes", "-1"}, "non-negative"},
		{"budget without store", []string{"-store-max-bytes", "1000"}, "requires -store"},
		{"zero shutdown timeout", []string{"-shutdown-timeout", "0s"}, "positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseOptions(tc.args, io.Discard)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("args %v: error %q missing %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestParseOptionsDefaults(t *testing.T) {
	opts, err := parseOptions(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opts.scale != "full" || opts.addr != ":8080" || opts.parallel < 1 || opts.queue != 4096 {
		t.Fatalf("defaults wrong: %+v", opts)
	}
	if opts.shutdownTimeout != 10*time.Second {
		t.Fatalf("shutdown timeout default = %v", opts.shutdownTimeout)
	}
}

// syncBuffer lets the test read the server's stdout while run is still
// writing to it.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRE = regexp.MustCompile(`listening on ([^ ]+)`)

// TestGracefulShutdown boots the real server on an ephemeral port,
// waits for it to serve, cancels the signal context (what SIGTERM does
// in production) and asserts a clean, complete drain.
func TestGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	var errBuf syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-scale", "quick", "-parallel", "1"}, &out, &errBuf)
	}()

	// Wait for the announced address, then confirm liveness.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; stdout: %q stderr: %q", out.String(), errBuf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code %d; stderr: %q", code, errBuf.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down after cancel")
	}
	if !strings.Contains(out.String(), "shutdown complete") {
		t.Fatalf("drain never completed; stdout: %q", out.String())
	}
	// The listener must actually be gone.
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}
