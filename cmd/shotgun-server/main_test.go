package main

import (
	"io"
	"strings"
	"testing"
)

func TestParseOptionsRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad scale", []string{"-scale", "medium"}, "quick or full"},
		{"zero parallel", []string{"-parallel", "0"}, "positive"},
		{"negative parallel", []string{"-parallel", "-2"}, "positive"},
		{"zero queue", []string{"-queue", "0"}, "positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseOptions(tc.args, io.Discard)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("args %v: error %q missing %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestParseOptionsDefaults(t *testing.T) {
	opts, err := parseOptions(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opts.scale != "full" || opts.addr != ":8080" || opts.parallel < 1 || opts.queue != 4096 {
		t.Fatalf("defaults wrong: %+v", opts)
	}
}
