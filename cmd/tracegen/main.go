// Command tracegen generates, inspects, and summarizes on-disk workload
// traces.
//
// Usage:
//
//	tracegen -workload Oracle -blocks 1000000 -out oracle.sgtr
//	tracegen -inspect oracle.sgtr
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"shotgun/internal/isa"
	"shotgun/internal/trace"
	"shotgun/internal/workload"
)

func main() {
	var (
		wl      = flag.String("workload", "Oracle", "workload name: "+strings.Join(workload.Names(), ", "))
		blocks  = flag.Int("blocks", 1_000_000, "basic blocks to generate")
		out     = flag.String("out", "", "output trace path (generation mode)")
		inspect = flag.String("inspect", "", "trace path to summarize (inspection mode)")
	)
	flag.Parse()

	switch {
	case *inspect != "":
		if err := inspectTrace(*inspect); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *out != "":
		if err := generate(*wl, *blocks, *out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "need -out (generate) or -inspect (summarize)")
		os.Exit(2)
	}
}

func generate(wl string, blocks int, path string) error {
	prof, err := workload.Get(wl)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tw, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	w := prof.NewWalker()
	for i := 0; i < blocks; i++ {
		if err := tw.Write(w.Next()); err != nil {
			return err
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d blocks (%d instructions, %d requests) to %s (%.1f MB, %.2f B/block)\n",
		blocks, w.Instructions, w.Requests, path,
		float64(st.Size())/1e6, float64(st.Size())/float64(blocks))
	return nil
}

func inspectTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var blocks, instr uint64
	kinds := map[isa.BranchKind]uint64{}
	touched := map[isa.Addr]struct{}{}
	for {
		bb, err := tr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		blocks++
		instr += uint64(bb.NumInstr)
		kinds[bb.Kind]++
		for _, cb := range bb.Blocks() {
			touched[cb] = struct{}{}
		}
	}
	fmt.Printf("blocks        %d\n", blocks)
	fmt.Printf("instructions  %d\n", instr)
	fmt.Printf("footprint     %d KB\n", len(touched)*isa.BlockBytes/1024)
	for _, k := range []isa.BranchKind{isa.BranchCond, isa.BranchCall, isa.BranchRet,
		isa.BranchJump, isa.BranchTrap, isa.BranchTrapRet, isa.BranchNone} {
		if kinds[k] > 0 {
			fmt.Printf("%-12s  %d (%.1f%%)\n", k, kinds[k], 100*float64(kinds[k])/float64(blocks))
		}
	}
	return nil
}
