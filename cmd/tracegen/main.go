// Command tracegen generates, inspects, and summarizes on-disk workload
// traces.
//
// Usage:
//
//	tracegen -workload Oracle -blocks 1000000 -out oracle.sgtr
//	tracegen -inspect oracle.sgtr
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"shotgun/internal/isa"
	"shotgun/internal/trace"
	"shotgun/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// errPrinted marks errors the flag package already reported to stderr.
var errPrinted = errors.New("flag parse error")

// options is the validated flag set.
type options struct {
	workload string
	blocks   int
	out      string
	inspect  string
}

// parseOptions parses and validates flags: a mode must be chosen, the
// block count must be positive, and (in generation mode) the workload
// must exist.
func parseOptions(args []string, stderr io.Writer) (options, error) {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	opts := options{}
	fs.StringVar(&opts.workload, "workload", "Oracle", "workload name: "+strings.Join(workload.Names(), ", "))
	fs.IntVar(&opts.blocks, "blocks", 1_000_000, "basic blocks to generate")
	fs.StringVar(&opts.out, "out", "", "output trace path (generation mode)")
	fs.StringVar(&opts.inspect, "inspect", "", "trace path to summarize (inspection mode)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return options{}, err
		}
		return options{}, errPrinted
	}
	if opts.out == "" && opts.inspect == "" {
		return options{}, fmt.Errorf("need -out (generate) or -inspect (summarize)")
	}
	if opts.out != "" {
		if opts.blocks <= 0 {
			return options{}, fmt.Errorf("-blocks must be positive (got %d)", opts.blocks)
		}
		if _, err := workload.Get(opts.workload); err != nil {
			return options{}, err
		}
	}
	return opts, nil
}

func run(args []string, stderr io.Writer) int {
	opts, err := parseOptions(args, stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0 // -h/-help is a successful exit, like flag.ExitOnError
		}
		if !errors.Is(err, errPrinted) {
			fmt.Fprintln(stderr, err)
		}
		return 2
	}
	if opts.inspect != "" {
		if err := inspectTrace(opts.inspect); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}
	if err := generate(opts.workload, opts.blocks, opts.out); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}

func generate(wl string, blocks int, path string) error {
	prof, err := workload.Get(wl)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tw, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	w := prof.NewWalker()
	for i := 0; i < blocks; i++ {
		if err := tw.Write(w.Next()); err != nil {
			return err
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d blocks (%d instructions, %d requests) to %s (%.1f MB, %.2f B/block)\n",
		blocks, w.Instructions, w.Requests, path,
		float64(st.Size())/1e6, float64(st.Size())/float64(blocks))
	return nil
}

func inspectTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var blocks, instr uint64
	kinds := map[isa.BranchKind]uint64{}
	touched := map[isa.Addr]struct{}{}
	for {
		bb, err := tr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		blocks++
		instr += uint64(bb.NumInstr)
		kinds[bb.Kind]++
		for _, cb := range bb.Blocks() {
			touched[cb] = struct{}{}
		}
	}
	fmt.Printf("blocks        %d\n", blocks)
	fmt.Printf("instructions  %d\n", instr)
	fmt.Printf("footprint     %d KB\n", len(touched)*isa.BlockBytes/1024)
	for _, k := range []isa.BranchKind{isa.BranchCond, isa.BranchCall, isa.BranchRet,
		isa.BranchJump, isa.BranchTrap, isa.BranchTrapRet, isa.BranchNone} {
		if kinds[k] > 0 {
			fmt.Printf("%-12s  %d (%.1f%%)\n", k, kinds[k], 100*float64(kinds[k])/float64(blocks))
		}
	}
	return nil
}
