package main

import (
	"io"
	"strings"
	"testing"
)

func TestParseOptionsRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no mode", nil, "-out"},
		{"non-positive blocks", []string{"-out", "x.sgtr", "-blocks", "0"}, "positive"},
		{"negative blocks", []string{"-out", "x.sgtr", "-blocks", "-3"}, "positive"},
		{"unknown workload", []string{"-out", "x.sgtr", "-workload", "NoSuch"}, "NoSuch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseOptions(tc.args, io.Discard)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("args %v: error %q missing %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestParseOptionsAcceptsModes(t *testing.T) {
	opts, err := parseOptions([]string{"-out", "x.sgtr", "-workload", "Apache", "-blocks", "10"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opts.out != "x.sgtr" || opts.workload != "Apache" || opts.blocks != 10 {
		t.Fatalf("options wrong: %+v", opts)
	}
	// Inspection mode needs no workload validation (the trace carries
	// its own identity) and no block count.
	if _, err := parseOptions([]string{"-inspect", "y.sgtr", "-workload", "NoSuch"}, io.Discard); err != nil {
		t.Fatalf("inspect mode rejected: %v", err)
	}
}
