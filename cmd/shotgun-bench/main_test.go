package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseOptionsRejectsNonPositiveParallel(t *testing.T) {
	// The seed accepted -parallel 0 and silently fell back to one
	// worker; it must now be a hard flag error.
	for _, bad := range []string{"0", "-1", "-8"} {
		var errBuf strings.Builder
		_, err := parseOptions([]string{"-parallel", bad}, &errBuf)
		if err == nil {
			t.Fatalf("-parallel %s accepted", bad)
		}
		if !strings.Contains(err.Error(), "must be positive") {
			t.Fatalf("-parallel %s: unhelpful error %q", bad, err)
		}
	}
}

func TestParseOptionsRejectsUnknownExperiment(t *testing.T) {
	_, err := parseOptions([]string{"-only", "fig7,nope"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), `"nope"`) {
		t.Fatalf("unknown -only id not rejected: %v", err)
	}
}

func TestParseOptionsSelectsExperiments(t *testing.T) {
	opts, err := parseOptions([]string{"-only", "fig7, fig9", "-quick", "-json"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts.run) != 2 || opts.run[0].ID != "fig7" || opts.run[1].ID != "fig9" {
		t.Fatalf("selection wrong: %+v", opts.run)
	}
	if !opts.quick || !opts.jsonOut {
		t.Fatalf("mode flags lost: %+v", opts)
	}
}

func TestParseOptionsDefaultsToAllExperiments(t *testing.T) {
	opts, err := parseOptions(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts.run) != 18 {
		t.Fatalf("default selection has %d experiments, want 18", len(opts.run))
	}
	if opts.parallel < 1 {
		t.Fatalf("default parallel %d", opts.parallel)
	}
}

func TestParseOptionsCustomInterferenceSweep(t *testing.T) {
	// -cores/-mix substitute a custom interference sweep for the default
	// entry; -cores counts TOTAL cores per scenario, matching
	// shotgun-sim's flag of the same name.
	opts, err := parseOptions([]string{"-cores", "2,3", "-mix", "entire-region", "-only", "interference"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts.run) != 1 || opts.run[0].ID != "interference" {
		t.Fatalf("selection wrong: %+v", opts.run)
	}
	scs := opts.run[0].Scenarios()
	if len(scs) != 3 { // solo + 2 counts x 1 mix
		t.Fatalf("custom sweep has %d scenarios, want 3", len(scs))
	}
	if len(scs[1].Cores) != 2 || len(scs[2].Cores) != 3 {
		t.Fatalf("total-core semantics wrong: %d, %d cores", len(scs[1].Cores), len(scs[2].Cores))
	}

	for _, bad := range [][]string{
		{"-cores", "1"},   // a sweep point needs a co-runner
		{"-cores", "257"}, // beyond the 16x16-mesh ceiling
		{"-cores", "two"},
		{"-mix", "warp-drive"},
		// A custom sweep that the selection never runs must fail loudly,
		// not be silently ignored.
		{"-cores", "2,4", "-only", "fig7"},
		{"-mix", "entire-region", "-only", "table1,fig7"},
	} {
		if _, err := parseOptions(bad, io.Discard); err == nil {
			t.Fatalf("args %v accepted", bad)
		}
	}

	// -store-max-bytes validation.
	if _, err := parseOptions([]string{"-store-max-bytes", "-5"}, io.Discard); err == nil {
		t.Fatal("negative store budget accepted")
	}
	if _, err := parseOptions([]string{"-store-max-bytes", "100"}, io.Discard); err == nil {
		t.Fatal("store budget without -store accepted")
	}
}

func TestHelpExitsZero(t *testing.T) {
	// -h must exit 0 (like flag.ExitOnError does), not report failure.
	var out, errBuf strings.Builder
	if code := run([]string{"-h"}, &out, &errBuf); code != 0 {
		t.Fatalf("-h exited %d, want 0\nstderr: %s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "-parallel") {
		t.Fatalf("usage text missing from -h output: %q", errBuf.String())
	}
}

func TestParseOptionsRejectsUnknownFlag(t *testing.T) {
	var errBuf strings.Builder
	_, err := parseOptions([]string{"-frobnicate"}, &errBuf)
	if err == nil {
		t.Fatal("unknown flag accepted")
	}
	if !strings.Contains(errBuf.String(), "frobnicate") {
		t.Fatalf("flag error not reported to stderr: %q", errBuf.String())
	}
}

// specFile writes a minimal valid spec and returns its path.
func specFile(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const tinySpecBody = `{
  "version": 1, "name": "tiny",
  "tables": [{"id": "tinytable", "title": "t", "grid": {
    "workloads": ["Nutch"],
    "columns": [{"name": "none", "config": {"mechanism": "none"}}],
    "metric": "ipc"}}]
}`

func TestParseOptionsSpecCatalog(t *testing.T) {
	path := specFile(t, "tiny.json", tinySpecBody)

	// -spec alone runs exactly the spec's tables.
	opts, err := parseOptions([]string{"-spec", path}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts.run) != 1 || opts.run[0].ID != "tinytable" {
		t.Fatalf("run = %+v, want the spec's table", opts.run)
	}

	// -only resolves across spec tables and built-ins.
	opts, err = parseOptions([]string{"-spec", path, "-only", "tinytable,fig7"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts.run) != 2 || opts.run[0].ID != "tinytable" || opts.run[1].ID != "fig7" {
		t.Fatalf("run = %+v, want [tinytable fig7]", opts.run)
	}

	// A broken spec file fails parsing, not the run.
	bad := specFile(t, "bad.json", `{"version": 1, "bogus": true}`)
	if _, err := parseOptions([]string{"-spec", bad}, io.Discard); err == nil {
		t.Fatal("broken spec accepted")
	}

	// -cores/-mix tune the built-in interference sweep only.
	if _, err := parseOptions([]string{"-spec", path, "-cores", "2"}, io.Discard); err == nil {
		t.Fatal("-spec with -cores accepted")
	}
}

func TestParseOptionsSpecScale(t *testing.T) {
	pinned := specFile(t, "pinned.json", `{
	  "version": 1, "name": "pinned",
	  "scale": {"warmup_instr": 1000, "measure_instr": 2000, "samples": 1},
	  "tables": [{"id": "p", "title": "t", "grid": {
	    "workloads": ["Nutch"],
	    "columns": [{"name": "none", "config": {"mechanism": "none"}}],
	    "metric": "ipc"}}]
	}`)
	opts, err := parseOptions([]string{"-spec", pinned}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opts.specScale == nil || opts.specScale.WarmupInstr != 1000 {
		t.Fatalf("spec scale not pinned: %+v", opts.specScale)
	}
	if _, err := parseOptions([]string{"-spec", pinned, "-quick"}, io.Discard); err == nil {
		t.Fatal("pinned scale with -quick accepted")
	}
}

// TestListIncludesSpecTables: -list must reflect the -spec catalog
// swap, showing spec table ids ahead of the built-ins.
func TestListIncludesSpecTables(t *testing.T) {
	path := specFile(t, "tiny.json", tinySpecBody)
	var out strings.Builder
	if code := run([]string{"-spec", path, "-list"}, &out, io.Discard); code != 0 {
		t.Fatalf("exit %d", code)
	}
	listing := out.String()
	if !strings.Contains(listing, "tinytable") || !strings.Contains(listing, "(spec)") {
		t.Fatalf("-list missing the spec table:\n%s", listing)
	}
	if !strings.Contains(listing, "fig7") {
		t.Fatalf("-list missing built-ins:\n%s", listing)
	}
	if strings.Index(listing, "tinytable") > strings.Index(listing, "fig7") {
		t.Fatalf("spec tables should lead the listing:\n%s", listing)
	}
}
