package main

import (
	"io"
	"strings"
	"testing"
)

func TestParseOptionsRejectsNonPositiveParallel(t *testing.T) {
	// The seed accepted -parallel 0 and silently fell back to one
	// worker; it must now be a hard flag error.
	for _, bad := range []string{"0", "-1", "-8"} {
		var errBuf strings.Builder
		_, err := parseOptions([]string{"-parallel", bad}, &errBuf)
		if err == nil {
			t.Fatalf("-parallel %s accepted", bad)
		}
		if !strings.Contains(err.Error(), "must be positive") {
			t.Fatalf("-parallel %s: unhelpful error %q", bad, err)
		}
	}
}

func TestParseOptionsRejectsUnknownExperiment(t *testing.T) {
	_, err := parseOptions([]string{"-only", "fig7,nope"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), `"nope"`) {
		t.Fatalf("unknown -only id not rejected: %v", err)
	}
}

func TestParseOptionsSelectsExperiments(t *testing.T) {
	opts, err := parseOptions([]string{"-only", "fig7, fig9", "-quick", "-json"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts.run) != 2 || opts.run[0].ID != "fig7" || opts.run[1].ID != "fig9" {
		t.Fatalf("selection wrong: %+v", opts.run)
	}
	if !opts.quick || !opts.jsonOut {
		t.Fatalf("mode flags lost: %+v", opts)
	}
}

func TestParseOptionsDefaultsToAllExperiments(t *testing.T) {
	opts, err := parseOptions(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts.run) != 12 {
		t.Fatalf("default selection has %d experiments, want 12", len(opts.run))
	}
	if opts.parallel < 1 {
		t.Fatalf("default parallel %d", opts.parallel)
	}
}

func TestHelpExitsZero(t *testing.T) {
	// -h must exit 0 (like flag.ExitOnError does), not report failure.
	var out, errBuf strings.Builder
	if code := run([]string{"-h"}, &out, &errBuf); code != 0 {
		t.Fatalf("-h exited %d, want 0\nstderr: %s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "-parallel") {
		t.Fatalf("usage text missing from -h output: %q", errBuf.String())
	}
}

func TestParseOptionsRejectsUnknownFlag(t *testing.T) {
	var errBuf strings.Builder
	_, err := parseOptions([]string{"-frobnicate"}, &errBuf)
	if err == nil {
		t.Fatal("unknown flag accepted")
	}
	if !strings.Contains(errBuf.String(), "frobnicate") {
		t.Fatalf("flag error not reported to stderr: %q", errBuf.String())
	}
}
