// Command shotgun-bench regenerates every table and figure of the
// paper's evaluation and prints them in order.
//
// Simulations are distributed over a worker pool (one worker per CPU by
// default) and memoized, so configurations shared between experiments run
// once; the full config set of the selected experiments is prefetched up
// front to keep every core busy across experiment boundaries.
//
// Usage:
//
//	shotgun-bench                 # run everything at full scale
//	shotgun-bench -quick          # short smoke-scale run
//	shotgun-bench -list           # list experiment ids
//	shotgun-bench -only fig7,fig9 # a subset
//	shotgun-bench -parallel 1     # serial (seed-equivalent) execution
//	shotgun-bench -json -out report.json   # machine-readable report
//	shotgun-bench -store ./shotgun-store   # persist/reuse results on disk
//	shotgun-bench -store ./s -store-max-bytes 1000000000  # prune to ~1GB
//	shotgun-bench -cores 2,4,8,16 -mix entire-region      # custom interference sweep
//	shotgun-bench -spec my-sweep.json      # run a declarative sweep (docs/SPEC.md)
//	shotgun-bench -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"shotgun/internal/harness"
	"shotgun/internal/report"
	"shotgun/internal/spec"
	"shotgun/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// errPrinted marks errors the flag package already reported to stderr.
var errPrinted = errors.New("flag parse error")

// options is the validated flag set.
type options struct {
	quick         bool
	list          bool
	parallel      int
	cpuprofile    string
	memprofile    string
	jsonOut       bool
	outPath       string
	storeDir      string
	storeMaxBytes int64
	// specScale is a scale pinned by a -spec file (nil: -quick/full).
	specScale *harness.Scale
	// specExps are the -spec files' tables (nil without -spec); -list
	// shows them ahead of the built-in catalog.
	specExps []harness.Experiment
	// selected experiments, in catalog order (empty only with list).
	run []harness.Experiment
}

// parseIntList parses a comma-separated list of positive ints.
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad count %q: %v", part, err)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseStringList splits and trims a comma-separated list.
func parseStringList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		out = append(out, strings.TrimSpace(part))
	}
	return out
}

// parseOptions parses and validates flags. Everything that can fail by
// construction — unknown experiment ids, a non-positive worker count —
// fails here, before any (potentially minutes-long) simulation work.
func parseOptions(args []string, stderr io.Writer) (options, error) {
	fs := flag.NewFlagSet("shotgun-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	opts := options{}
	var only string
	fs.BoolVar(&opts.quick, "quick", false, "run at smoke-test scale")
	fs.StringVar(&only, "only", "", "comma-separated experiment ids (default: all)")
	fs.BoolVar(&opts.list, "list", false, "list experiment ids and exit")
	fs.IntVar(&opts.parallel, "parallel", runtime.GOMAXPROCS(0), "simulation worker count (1 = serial)")
	fs.StringVar(&opts.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&opts.memprofile, "memprofile", "", "write a heap profile to this file on exit")
	fs.BoolVar(&opts.jsonOut, "json", false, "emit a machine-readable JSON report instead of text tables")
	fs.StringVar(&opts.outPath, "out", "", "write the report to this file instead of stdout")
	fs.StringVar(&opts.storeDir, "store", "", "persistent result store directory (reused across runs)")
	fs.Int64Var(&opts.storeMaxBytes, "store-max-bytes", 0,
		"prune the store's oldest records down to this many bytes on open (0: keep everything)")
	var (
		cores    = fs.String("cores", "", "interference sweep: comma-separated total core counts (default 2,4,8)")
		mix      = fs.String("mix", "", "interference sweep: comma-separated mixes (shotgun-8bit, entire-region)")
		specList = fs.String("spec", "", "comma-separated sweep spec files (docs/SPEC.md); runs the specs' tables instead of the built-in catalog")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return options{}, err
		}
		return options{}, errPrinted
	}
	// The default is GOMAXPROCS (always positive), so a non-positive
	// value is necessarily explicit — reject it instead of silently
	// falling back to one worker.
	if opts.parallel <= 0 {
		return options{}, fmt.Errorf("-parallel must be positive (got %d)", opts.parallel)
	}
	if opts.storeMaxBytes < 0 {
		return options{}, fmt.Errorf("-store-max-bytes must be non-negative (got %d)", opts.storeMaxBytes)
	}
	if opts.storeMaxBytes > 0 && opts.storeDir == "" {
		return options{}, fmt.Errorf("-store-max-bytes requires -store")
	}

	// -spec swaps the experiment catalog for the named spec files'
	// tables (the built-in catalog stays reachable through -only, which
	// resolves ids against spec tables first, then built-ins). A spec
	// that pins a scale pins the whole run's.
	var specExps []harness.Experiment
	if *specList != "" {
		if *cores != "" || *mix != "" {
			return options{}, fmt.Errorf("-cores/-mix customize the built-in interference experiment; declare an interference table in the spec instead")
		}
		seen := make(map[string]bool)
		for _, path := range parseStringList(*specList) {
			c, err := spec.CompileFile(path)
			if err != nil {
				return options{}, err
			}
			if sc := c.Spec.Scale; sc != nil {
				hs := sc.Harness()
				if opts.quick {
					return options{}, fmt.Errorf("%s pins a scale; it cannot combine with -quick", path)
				}
				if opts.specScale != nil && *opts.specScale != hs {
					return options{}, fmt.Errorf("-spec files pin conflicting scales (%+v vs %+v)", *opts.specScale, hs)
				}
				opts.specScale = &hs
			}
			for _, e := range c.Experiments() {
				if seen[e.ID] {
					return options{}, fmt.Errorf("duplicate experiment id %q across -spec files", e.ID)
				}
				seen[e.ID] = true
				specExps = append(specExps, e)
			}
		}
		opts.specExps = specExps
	}

	// -cores/-mix customize the interference sweep (harness defaults
	// otherwise). -cores counts TOTAL cores per scenario — the same
	// meaning the flag has on shotgun-sim — so values transfer between
	// the two CLIs; the harness API takes co-runner counts (total-1).
	// Validation happens in the harness so the CLI and any future
	// callers agree on what a legal sweep is.
	interference := harness.Experiment{}
	if *cores != "" || *mix != "" {
		counts := harness.InterferenceCoRunnerCounts
		var mixNames []string
		for _, m := range harness.InterferenceMixes() {
			mixNames = append(mixNames, m.Name)
		}
		if *cores != "" {
			totals, err := parseIntList(*cores)
			if err != nil {
				return options{}, fmt.Errorf("-cores: %v", err)
			}
			counts = counts[:0:0]
			for _, n := range totals {
				if n < 2 {
					return options{}, fmt.Errorf("-cores: a sweep point needs at least 2 total cores (got %d)", n)
				}
				counts = append(counts, n-1)
			}
		}
		if *mix != "" {
			mixNames = parseStringList(*mix)
		}
		e, err := harness.InterferenceExperiment(counts, mixNames)
		if err != nil {
			return options{}, err
		}
		interference = e
	}
	substitute := func(e harness.Experiment) harness.Experiment {
		if e.ID == "interference" && interference.ID != "" {
			return interference
		}
		return e
	}

	if only == "" {
		if specExps != nil {
			opts.run = specExps
			return opts, nil
		}
		for _, e := range harness.Experiments() {
			opts.run = append(opts.run, substitute(e))
		}
		return opts, nil
	}
	fromSpec := make(map[string]harness.Experiment, len(specExps))
	for _, e := range specExps {
		fromSpec[e.ID] = e
	}
	for _, id := range strings.Split(only, ",") {
		id = strings.TrimSpace(id)
		if e, ok := fromSpec[id]; ok {
			opts.run = append(opts.run, e)
			continue
		}
		e, ok := harness.Find(id)
		if !ok {
			return options{}, fmt.Errorf("unknown experiment %q in -only; use -list", id)
		}
		opts.run = append(opts.run, substitute(e))
	}
	// A custom sweep the selection never runs is a silent no-op; fail
	// loudly instead, like every other impossible flag combination.
	if interference.ID != "" {
		selected := false
		for _, e := range opts.run {
			if e.ID == "interference" {
				selected = true
				break
			}
		}
		if !selected {
			return options{}, fmt.Errorf("-cores/-mix customize the interference experiment, but -only excludes it")
		}
	}
	return opts, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	opts, err := parseOptions(args, stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0 // -h/-help is a successful exit, like flag.ExitOnError
		}
		if !errors.Is(err, errPrinted) {
			fmt.Fprintln(stderr, err)
		}
		return 2
	}
	if opts.list {
		// Spec tables lead: -only resolves their ids first, so the
		// listing mirrors the selection order.
		for _, e := range opts.specExps {
			fmt.Fprintf(stdout, "%-8s %s (spec)\n", e.ID, e.Desc)
		}
		for _, e := range harness.Experiments() {
			fmt.Fprintf(stdout, "%-8s %s\n", e.ID, e.Desc)
		}
		return 0
	}

	// Validate the remaining failure-capable setup — profile and report
	// output files — before simulating, so no exit path discards work.
	out := stdout
	if opts.outPath != "" {
		f, err := os.Create(opts.outPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		out = f
	}
	var memf *os.File
	if opts.memprofile != "" {
		f, err := os.Create(opts.memprofile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		memf = f
	}
	if opts.cpuprofile != "" {
		f, err := os.Create(opts.cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}

	scale := harness.FullScale()
	scaleName := "full"
	if opts.quick {
		scale = harness.QuickScale()
		scaleName = "quick"
	}
	if opts.specScale != nil {
		scale = *opts.specScale
		scaleName = "spec"
	}
	runner := harness.NewRunnerWorkers(scale, opts.parallel)
	if opts.storeDir != "" {
		st, err := store.Open(opts.storeDir)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if opts.storeMaxBytes > 0 {
			dropped, err := st.Prune(opts.storeMaxBytes)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			if dropped > 0 {
				fmt.Fprintf(stderr, "store %s: pruned %d oldest records to fit %d bytes\n",
					st.Dir(), dropped, opts.storeMaxBytes)
			}
		}
		runner.SetStore(st)
		defer func() {
			s := st.Stats()
			fmt.Fprintf(stderr, "store %s: %d hits, %d misses, %d new records\n",
				st.Dir(), s.Hits, s.Misses, s.Puts)
		}()
	}

	start := time.Now()
	// Saturate the pool with every selected experiment's simulations
	// before any table is assembled; assembly then reads memoized
	// results, so output is identical at any worker count.
	runner.PrefetchScenarios(harness.AllScenarios(opts.run))
	if opts.jsonOut {
		rep := report.FromExperiments(runner, opts.run, scaleName)
		if err := rep.WriteJSON(out); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	} else {
		for _, e := range opts.run {
			t0 := time.Now()
			fmt.Fprintln(out, e.Run(runner))
			// Simulations were paid in the upfront Prefetch; this window
			// measures only table assembly from memoized results.
			fmt.Fprintf(out, "[%s assembled in %.2fs]\n\n", e.ID, time.Since(t0).Seconds())
		}
		fmt.Fprintf(out, "all experiments done in %.1fs (%d workers)\n",
			time.Since(start).Seconds(), runner.Workers())
	}

	if opts.cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if memf != nil {
		runtime.GC()
		if err := pprof.WriteHeapProfile(memf); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		memf.Close()
	}
	return 0
}
