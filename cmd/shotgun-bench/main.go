// Command shotgun-bench regenerates every table and figure of the
// paper's evaluation and prints them in order.
//
// Usage:
//
//	shotgun-bench                 # run everything at full scale
//	shotgun-bench -quick          # short smoke-scale run
//	shotgun-bench -only fig7,fig9 # a subset
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"shotgun/internal/harness"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "run at smoke-test scale")
		only  = flag.String("only", "", "comma-separated experiment ids (default: all)")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	exps := harness.Experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(id)] = true
		}
	}

	scale := harness.FullScale()
	if *quick {
		scale = harness.QuickScale()
	}
	runner := harness.NewRunner(scale)

	start := time.Now()
	ran := 0
	for _, e := range exps {
		if len(selected) > 0 && !selected[e.ID] {
			continue
		}
		t0 := time.Now()
		out := e.Run(runner)
		fmt.Println(out)
		fmt.Printf("[%s done in %.1fs]\n\n", e.ID, time.Since(t0).Seconds())
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "no experiments matched -only; use -list")
		os.Exit(2)
	}
	fmt.Printf("all experiments done in %.1fs\n", time.Since(start).Seconds())
}
