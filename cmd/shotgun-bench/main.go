// Command shotgun-bench regenerates every table and figure of the
// paper's evaluation and prints them in order.
//
// Simulations are distributed over a worker pool (one worker per CPU by
// default) and memoized, so configurations shared between experiments run
// once; the full config set of the selected experiments is prefetched up
// front to keep every core busy across experiment boundaries.
//
// Usage:
//
//	shotgun-bench                 # run everything at full scale
//	shotgun-bench -quick          # short smoke-scale run
//	shotgun-bench -only fig7,fig9 # a subset
//	shotgun-bench -parallel 1     # serial (seed-equivalent) execution
//	shotgun-bench -json -out report.json   # machine-readable report
//	shotgun-bench -store ./shotgun-store   # persist/reuse results on disk
//	shotgun-bench -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"shotgun/internal/harness"
	"shotgun/internal/report"
	"shotgun/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// errPrinted marks errors the flag package already reported to stderr.
var errPrinted = errors.New("flag parse error")

// options is the validated flag set.
type options struct {
	quick      bool
	list       bool
	parallel   int
	cpuprofile string
	memprofile string
	jsonOut    bool
	outPath    string
	storeDir   string
	// selected experiments, in harness order (empty only with list).
	run []harness.Experiment
}

// parseOptions parses and validates flags. Everything that can fail by
// construction — unknown experiment ids, a non-positive worker count —
// fails here, before any (potentially minutes-long) simulation work.
func parseOptions(args []string, stderr io.Writer) (options, error) {
	fs := flag.NewFlagSet("shotgun-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	opts := options{}
	var only string
	fs.BoolVar(&opts.quick, "quick", false, "run at smoke-test scale")
	fs.StringVar(&only, "only", "", "comma-separated experiment ids (default: all)")
	fs.BoolVar(&opts.list, "list", false, "list experiment ids and exit")
	fs.IntVar(&opts.parallel, "parallel", runtime.GOMAXPROCS(0), "simulation worker count (1 = serial)")
	fs.StringVar(&opts.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&opts.memprofile, "memprofile", "", "write a heap profile to this file on exit")
	fs.BoolVar(&opts.jsonOut, "json", false, "emit a machine-readable JSON report instead of text tables")
	fs.StringVar(&opts.outPath, "out", "", "write the report to this file instead of stdout")
	fs.StringVar(&opts.storeDir, "store", "", "persistent result store directory (reused across runs)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return options{}, err
		}
		return options{}, errPrinted
	}
	// The default is GOMAXPROCS (always positive), so a non-positive
	// value is necessarily explicit — reject it instead of silently
	// falling back to one worker.
	if opts.parallel <= 0 {
		return options{}, fmt.Errorf("-parallel must be positive (got %d)", opts.parallel)
	}

	exps := harness.Experiments()
	if only == "" {
		opts.run = exps
		return opts, nil
	}
	for _, id := range strings.Split(only, ",") {
		id = strings.TrimSpace(id)
		e, ok := harness.Find(id)
		if !ok {
			return options{}, fmt.Errorf("unknown experiment %q in -only; use -list", id)
		}
		opts.run = append(opts.run, e)
	}
	return opts, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	opts, err := parseOptions(args, stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0 // -h/-help is a successful exit, like flag.ExitOnError
		}
		if !errors.Is(err, errPrinted) {
			fmt.Fprintln(stderr, err)
		}
		return 2
	}
	if opts.list {
		for _, e := range harness.Experiments() {
			fmt.Fprintf(stdout, "%-8s %s\n", e.ID, e.Desc)
		}
		return 0
	}

	// Validate the remaining failure-capable setup — profile and report
	// output files — before simulating, so no exit path discards work.
	out := stdout
	if opts.outPath != "" {
		f, err := os.Create(opts.outPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		out = f
	}
	var memf *os.File
	if opts.memprofile != "" {
		f, err := os.Create(opts.memprofile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		memf = f
	}
	if opts.cpuprofile != "" {
		f, err := os.Create(opts.cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}

	scale := harness.FullScale()
	scaleName := "full"
	if opts.quick {
		scale = harness.QuickScale()
		scaleName = "quick"
	}
	runner := harness.NewRunnerWorkers(scale, opts.parallel)
	if opts.storeDir != "" {
		st, err := store.Open(opts.storeDir)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		runner.SetStore(st)
		defer func() {
			s := st.Stats()
			fmt.Fprintf(stderr, "store %s: %d hits, %d misses, %d new records\n",
				st.Dir(), s.Hits, s.Misses, s.Puts)
		}()
	}

	start := time.Now()
	// Saturate the pool with every selected experiment's simulations
	// before any table is assembled; assembly then reads memoized
	// results, so output is identical at any worker count.
	runner.Prefetch(harness.AllConfigs(opts.run))
	if opts.jsonOut {
		rep := report.FromExperiments(runner, opts.run, scaleName)
		if err := rep.WriteJSON(out); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	} else {
		for _, e := range opts.run {
			t0 := time.Now()
			fmt.Fprintln(out, e.Run(runner))
			// Simulations were paid in the upfront Prefetch; this window
			// measures only table assembly from memoized results.
			fmt.Fprintf(out, "[%s assembled in %.2fs]\n\n", e.ID, time.Since(t0).Seconds())
		}
		fmt.Fprintf(out, "all experiments done in %.1fs (%d workers)\n",
			time.Since(start).Seconds(), runner.Workers())
	}

	if opts.cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if memf != nil {
		runtime.GC()
		if err := pprof.WriteHeapProfile(memf); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		memf.Close()
	}
	return 0
}
