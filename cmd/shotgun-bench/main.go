// Command shotgun-bench regenerates every table and figure of the
// paper's evaluation and prints them in order.
//
// Simulations are distributed over a worker pool (one worker per CPU by
// default) and memoized, so configurations shared between experiments run
// once; the full config set of the selected experiments is prefetched up
// front to keep every core busy across experiment boundaries.
//
// Usage:
//
//	shotgun-bench                 # run everything at full scale
//	shotgun-bench -quick          # short smoke-scale run
//	shotgun-bench -only fig7,fig9 # a subset
//	shotgun-bench -parallel 1     # serial (seed-equivalent) execution
//	shotgun-bench -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"shotgun/internal/harness"
)

func main() {
	var (
		quick      = flag.Bool("quick", false, "run at smoke-test scale")
		only       = flag.String("only", "", "comma-separated experiment ids (default: all)")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "simulation worker count (1 = serial)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	exps := harness.Experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}

	// Validate everything that can fail — experiment selection, profile
	// output files — before any (potentially minutes-long, profiled)
	// simulation work, so no exit path can discard it.
	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(id)] = true
		}
	}
	var run []harness.Experiment
	for _, e := range exps {
		if len(selected) > 0 && !selected[e.ID] {
			continue
		}
		run = append(run, e)
	}
	if len(run) == 0 {
		fmt.Fprintln(os.Stderr, "no experiments matched -only; use -list")
		os.Exit(2)
	}

	var memf *os.File
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		memf = f
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	scale := harness.FullScale()
	if *quick {
		scale = harness.QuickScale()
	}
	runner := harness.NewRunnerWorkers(scale, *parallel)

	start := time.Now()
	// Saturate the pool with every selected experiment's simulations
	// before any table is assembled; assembly then reads memoized
	// results, so output is identical at any worker count.
	runner.Prefetch(harness.AllConfigs(run))
	for _, e := range run {
		t0 := time.Now()
		out := e.Run(runner)
		fmt.Println(out)
		// Simulations were paid in the upfront Prefetch; this window
		// measures only table assembly from memoized results.
		fmt.Printf("[%s assembled in %.2fs]\n\n", e.ID, time.Since(t0).Seconds())
	}
	fmt.Printf("all experiments done in %.1fs (%d workers)\n",
		time.Since(start).Seconds(), runner.Workers())

	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if memf != nil {
		runtime.GC()
		if err := pprof.WriteHeapProfile(memf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		memf.Close()
	}
}
