package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"shotgun/internal/client"
	"shotgun/internal/footprint"
	"shotgun/internal/prefetch"
	"shotgun/internal/sim"
)

func TestParseOptionsRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown workload", []string{"-workload", "NoSuch"}, "NoSuch"},
		{"unknown mechanism", []string{"-mechanism", "warp"}, "warp"},
		{"unknown region", []string{"-region", "spiral"}, "spiral"},
		{"bad bits", []string{"-bits", "16"}, "8 or 32"},
		{"non-positive samples", []string{"-samples", "0"}, "samples"},
		{"negative btb", []string{"-btb", "-5"}, "BTB"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseOptions(tc.args, io.Discard)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("args %v: error %q missing %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestParseOptionsBuildsConfig(t *testing.T) {
	opts, err := parseOptions([]string{
		"-workload", "DB2", "-mechanism", "shotgun", "-btb", "4096",
		"-region", "entire", "-bits", "32", "-samples", "2", "-json",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts.scenario.Cores) != 1 {
		t.Fatalf("cores = %d, want 1", len(opts.scenario.Cores))
	}
	cfg := opts.scenario.Cores[0]
	if cfg.Workload != "DB2" || cfg.Mechanism != sim.Shotgun || cfg.BTBEntries != 4096 {
		t.Fatalf("config wrong: %+v", cfg)
	}
	if cfg.RegionMode != prefetch.RegionEntire || cfg.Layout != footprint.Layout32 {
		t.Fatalf("region/layout wrong: %+v", cfg)
	}
	if !opts.jsonOut {
		t.Fatal("-json lost")
	}
}

func TestParseOptionsBuildsScenario(t *testing.T) {
	// -mix alone implies one co-runner per mechanism.
	opts, err := parseOptions([]string{"-workload", "Oracle", "-mix", "fdip,none"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	sc := opts.scenario
	if len(sc.Cores) != 3 {
		t.Fatalf("cores = %d, want 3", len(sc.Cores))
	}
	if sc.Cores[0].Mechanism != sim.Shotgun || sc.Cores[1].Mechanism != sim.FDIP || sc.Cores[2].Mechanism != sim.None {
		t.Fatalf("mechanisms wrong: %+v", sc.Cores)
	}

	// -cores cycles the mix.
	opts, err = parseOptions([]string{"-cores", "4", "-mix", "fdip"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts.scenario.Cores) != 4 {
		t.Fatalf("cores = %d, want 4", len(opts.scenario.Cores))
	}
	for _, co := range opts.scenario.Cores[1:] {
		if co.Mechanism != sim.FDIP {
			t.Fatalf("co-runner mechanism %s, want fdip", co.Mechanism)
		}
	}

	// -cores without -mix clones the primary.
	opts, err = parseOptions([]string{"-cores", "2"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts.scenario.Cores) != 2 || opts.scenario.Cores[1].Mechanism != sim.Shotgun {
		t.Fatalf("clone scenario wrong: %+v", opts.scenario.Cores)
	}

	for _, bad := range [][]string{
		{"-cores", "-3"},
		{"-cores", "257"},               // above the 16x16 mesh ceiling
		{"-cores", "1", "-mix", "fdip"}, // mix with no co-runner cores is a silent no-op
		{"-mix", "warp"},
		{"-trace", "x.trace", "-cores", "2"},
		{"-trace", "x.trace", "-llc", "4194304"},
		{"-llc", "1024"},
	} {
		if _, err := parseOptions(bad, io.Discard); err == nil {
			t.Fatalf("args %v accepted", bad)
		}
	}
}

func TestParseOptionsSampling(t *testing.T) {
	opts, err := parseOptions([]string{
		"-workload", "Oracle",
		"-sample-period", "16384", "-sample-warmup", "1024", "-sample-unit", "1024",
		"-sample-funcwarm", "8192", "-sample-units", "8", "-sample-ci", "0.03",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	s := opts.scenario.Cores[0].Sampling
	if s == nil {
		t.Fatal("sampling flags built no sampling block")
	}
	if s.PeriodBlocks != 16384 || s.WarmupBlocks != 1024 || s.UnitBlocks != 1024 ||
		s.FuncWarmBlocks != 8192 || s.Units != 8 || s.TargetCI != 0.03 {
		t.Fatalf("sampling block wrong: %+v", *s)
	}

	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unit without period", []string{"-sample-unit", "1024"}, "-sample-period"},
		{"period without unit", []string{"-sample-period", "16384"}, "-sample-unit"},
		{"stray knob alone", []string{"-sample-ci", "0.03"}, "-sample-period"},
		{"conflicts with cores", []string{"-sample-period", "16384", "-sample-unit", "1024", "-cores", "4"}, "-cores"},
		{"conflicts with mix", []string{"-sample-period", "16384", "-sample-unit", "1024", "-mix", "fdip"}, "-sample-period"},
		{"conflicts with spec", []string{"-spec", "s.json", "-sample-period", "16384"}, "-sample-period"},
		{"unit above period", []string{"-sample-period", "128", "-sample-unit", "1024"}, "period"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseOptions(tc.args, io.Discard)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("args %v: error %q missing %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestRunSampledText drives a sampled run end to end through the CLI and
// checks the confidence-interval lines render.
func TestRunSampledText(t *testing.T) {
	var out, errBuf strings.Builder
	code := run([]string{
		"-workload", "Nutch", "-mechanism", "none",
		"-sample-period", "8192", "-sample-warmup", "256", "-sample-unit", "256",
		"-sample-units", "4",
	}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	text := out.String()
	for _, want := range []string{"sampled IPC", "95% CI, n=4", "sampled coverage"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

// TestRunJSON exercises the full CLI path at a tiny scale and checks the
// -json document parses back into config + result.
func TestRunJSON(t *testing.T) {
	var out, errBuf strings.Builder
	code := run([]string{
		"-workload", "Nutch", "-mechanism", "none",
		"-warmup", "60000", "-measure", "80000", "-samples", "1", "-json",
	}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	var doc jsonResult
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(doc.Scenario.Cores) != 1 || doc.Scenario.Cores[0].Workload != "Nutch" {
		t.Fatalf("document scenario wrong: %+v", doc)
	}
	if len(doc.Result.Cores) != 1 || doc.Result.Cores[0].Core.Instructions == 0 {
		t.Fatalf("document result wrong: %+v", doc)
	}
}

// TestRunScenarioText runs a 2-core scenario end to end through the CLI
// and checks both cores render.
func TestRunScenarioText(t *testing.T) {
	var out, errBuf strings.Builder
	code := run([]string{
		"-workload", "Nutch", "-mechanism", "shotgun", "-mix", "none",
		"-warmup", "60000", "-measure", "80000", "-samples", "1",
	}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	text := out.String()
	for _, want := range []string{"--- core 0 ---", "--- core 1 ---", "mechanism           shotgun", "mechanism           none"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

func TestParseOptionsSpecMode(t *testing.T) {
	opts, err := parseOptions([]string{"-spec", "sweep.json", "-json", "-out", "r.json"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opts.specPath != "sweep.json" || !opts.jsonOut || opts.outPath != "r.json" {
		t.Fatalf("spec options not carried: %+v", opts)
	}

	// Scenario flags conflict with -spec: the spec declares the sweep.
	for _, args := range [][]string{
		{"-spec", "s.json", "-workload", "Oracle"},
		{"-spec", "s.json", "-cores", "4"},
		{"-spec", "s.json", "-trace", "t.sgtr"},
	} {
		if _, err := parseOptions(args, io.Discard); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}

	// -submit without -spec has nothing to post.
	if _, err := parseOptions([]string{"-submit", "http://coord:8080"}, io.Discard); err == nil {
		t.Fatal("-submit without -spec accepted")
	}

	// -api-key only makes sense on a -submit request.
	if _, err := parseOptions([]string{"-api-key", "k"}, io.Discard); err == nil {
		t.Fatal("-api-key without -submit accepted")
	}
	if _, err := parseOptions([]string{"-spec", "s.json", "-api-key", "k"}, io.Discard); err == nil {
		t.Fatal("-api-key on a local -spec run accepted")
	}
	opts, err = parseOptions([]string{"-spec", "s.json", "-submit", "http://coord:8080", "-api-key", "key-acme"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opts.submitURL != "http://coord:8080" || opts.apiKey != "key-acme" {
		t.Fatalf("submit options not carried: %+v", opts)
	}
}

// TestRunSpecFile drives the -spec path through real run(): a
// scale-pinned tiny sweep must render its declared table.
func TestRunSpecFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tiny.json")
	doc := `{
	  "version": 1, "name": "tiny",
	  "scale": {"warmup_instr": 40000, "measure_instr": 60000, "samples": 1},
	  "tables": [{"id": "t", "title": "tiny ipc", "grid": {
	    "workloads": ["Nutch"],
	    "columns": [{"name": "none", "config": {"mechanism": "none"}}],
	    "metric": "ipc"}}]
	}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-spec", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "tiny ipc") || !strings.Contains(out.String(), "Nutch") {
		t.Fatalf("unexpected render:\n%s", out.String())
	}

	// A broken spec fails with exit 1 and a named error.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":1,"bogus":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var errBad strings.Builder
	if code := run([]string{"-spec", bad}, io.Discard, &errBad); code != 1 {
		t.Fatalf("broken spec exit %d, want 1", code)
	}
	if !strings.Contains(errBad.String(), "bogus") {
		t.Fatalf("error does not name the unknown field: %s", errBad.String())
	}
}

// TestRunSubmit drives the -submit path through real run() against a
// stub farm: the spec travels with the bearer key, the rendered body is
// relayed verbatim, and an error envelope surfaces on stderr with its
// stable code.
func TestRunSubmit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tiny.json")
	doc := `{
	  "version": 1, "name": "tiny",
	  "scale": {"warmup_instr": 40000, "measure_instr": 60000, "samples": 1},
	  "tables": [{"id": "t", "title": "tiny ipc", "grid": {
	    "workloads": ["Nutch"],
	    "columns": [{"name": "none", "config": {"mechanism": "none"}}],
	    "metric": "ipc"}}]
	}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}

	var gotAuth, gotPath string
	farm := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotAuth = r.Header.Get("Authorization")
		gotPath = r.URL.Path + "?" + r.URL.RawQuery
		fmt.Fprint(w, "RENDERED TABLE\n")
	}))
	defer farm.Close()

	var out, errBuf strings.Builder
	if code := run([]string{"-spec", path, "-submit", farm.URL, "-api-key", "key-acme"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if out.String() != "RENDERED TABLE\n" {
		t.Fatalf("farm body not relayed verbatim: %q", out.String())
	}
	if gotAuth != "Bearer key-acme" || gotPath != "/v1/sweeps?format=text" {
		t.Fatalf("request wrong: auth %q path %q", gotAuth, gotPath)
	}

	// A non-retryable envelope rejection exits 1 and names its code.
	reject := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		client.WriteError(w, http.StatusUnauthorized, client.CodeUnauthorized, "unknown API key")
	}))
	defer reject.Close()
	errBuf.Reset()
	if code := run([]string{"-spec", path, "-submit", reject.URL}, io.Discard, &errBuf); code != 1 {
		t.Fatalf("rejected submit exit %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), client.CodeUnauthorized) {
		t.Fatalf("stderr does not carry the stable code: %s", errBuf.String())
	}
}

// TestRunWritesProfiles runs a small scenario with -cpuprofile and
// -memprofile and checks both files come out non-empty, and that a bad
// profile path fails before any simulation work.
func TestRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	var out, errBuf strings.Builder
	code := run([]string{
		"-workload", "Nutch", "-mechanism", "none",
		"-warmup", "60000", "-measure", "80000", "-samples", "1",
		"-cpuprofile", cpu, "-memprofile", mem,
	}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", path)
		}
	}

	errBuf.Reset()
	code = run([]string{
		"-workload", "Nutch", "-cpuprofile", filepath.Join(dir, "no/such/dir/cpu.out"),
	}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("bad -cpuprofile path: exit %d, want 1", code)
	}
	if errBuf.Len() == 0 {
		t.Fatal("bad -cpuprofile path reported no error")
	}
}
