package main

import (
	"encoding/json"
	"io"
	"strings"
	"testing"

	"shotgun/internal/footprint"
	"shotgun/internal/prefetch"
	"shotgun/internal/sim"
)

func TestParseOptionsRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown workload", []string{"-workload", "NoSuch"}, "NoSuch"},
		{"unknown mechanism", []string{"-mechanism", "warp"}, "warp"},
		{"unknown region", []string{"-region", "spiral"}, "spiral"},
		{"bad bits", []string{"-bits", "16"}, "8 or 32"},
		{"non-positive samples", []string{"-samples", "0"}, "samples"},
		{"negative btb", []string{"-btb", "-5"}, "BTB"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseOptions(tc.args, io.Discard)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("args %v: error %q missing %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestParseOptionsBuildsConfig(t *testing.T) {
	opts, err := parseOptions([]string{
		"-workload", "DB2", "-mechanism", "shotgun", "-btb", "4096",
		"-region", "entire", "-bits", "32", "-samples", "2", "-json",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	cfg := opts.cfg
	if cfg.Workload != "DB2" || cfg.Mechanism != sim.Shotgun || cfg.BTBEntries != 4096 {
		t.Fatalf("config wrong: %+v", cfg)
	}
	if cfg.RegionMode != prefetch.RegionEntire || cfg.Layout != footprint.Layout32 {
		t.Fatalf("region/layout wrong: %+v", cfg)
	}
	if !opts.jsonOut {
		t.Fatal("-json lost")
	}
}

// TestRunJSON exercises the full CLI path at a tiny scale and checks the
// -json document parses back into config + result.
func TestRunJSON(t *testing.T) {
	var out, errBuf strings.Builder
	code := run([]string{
		"-workload", "Nutch", "-mechanism", "none",
		"-warmup", "60000", "-measure", "80000", "-samples", "1", "-json",
	}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	var doc jsonResult
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if doc.Config.Workload != "Nutch" || doc.Result.Core.Instructions == 0 {
		t.Fatalf("document wrong: %+v", doc)
	}
}
