// Command shotgun-sim runs one simulation — a (workload, mechanism) pair
// at a chosen BTB budget — and prints its statistics.
//
// Usage:
//
//	shotgun-sim -workload Oracle -mechanism shotgun -btb 2048 \
//	    -warmup 2000000 -measure 3000000 -samples 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"shotgun/internal/footprint"
	"shotgun/internal/prefetch"
	"shotgun/internal/sim"
	"shotgun/internal/workload"
)

func main() {
	var (
		wl      = flag.String("workload", "Oracle", "workload name: "+strings.Join(workload.Names(), ", "))
		mech    = flag.String("mechanism", "shotgun", "mechanism: none, fdip, rdip, boomerang, confluence, shotgun, ideal")
		btb     = flag.Int("btb", 2048, "conventional BTB entry budget")
		warmup  = flag.Uint64("warmup", 2_000_000, "warmup instructions")
		measure = flag.Uint64("measure", 3_000_000, "measured instructions")
		samples = flag.Int("samples", 3, "measurement windows")
		region  = flag.String("region", "vector", "shotgun region mode: vector, none, entire, 5blocks")
		bits    = flag.Int("bits", 8, "footprint bit-vector width (8 or 32)")
	)
	flag.Parse()

	cfg := sim.Config{
		Workload:     *wl,
		Mechanism:    sim.Mechanism(*mech),
		BTBEntries:   *btb,
		WarmupInstr:  *warmup,
		MeasureInstr: *measure,
		Samples:      *samples,
	}
	switch *region {
	case "vector":
		cfg.RegionMode = prefetch.RegionVector
	case "none":
		cfg.RegionMode = prefetch.RegionNone
	case "entire":
		cfg.RegionMode = prefetch.RegionEntire
	case "5blocks":
		cfg.RegionMode = prefetch.RegionFiveBlocks
	default:
		fmt.Fprintf(os.Stderr, "unknown region mode %q\n", *region)
		os.Exit(2)
	}
	if *bits == 32 {
		cfg.Layout = footprint.Layout32
	}

	res, err := sim.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cs := res.Core
	fmt.Printf("workload            %s\n", res.Workload)
	fmt.Printf("mechanism           %s\n", res.Mechanism)
	fmt.Printf("instructions        %d\n", cs.Instructions)
	fmt.Printf("cycles              %d\n", cs.Cycles)
	fmt.Printf("IPC                 %.4f\n", res.IPC())
	fmt.Printf("front-end stalls    %d (%.1f%% of cycles)\n", cs.FrontEndStallCycles,
		100*float64(cs.FrontEndStallCycles)/float64(cs.Cycles))
	fmt.Printf("back-end stalls     %d (%.1f%% of cycles)\n", cs.BackEndStallCycles,
		100*float64(cs.BackEndStallCycles)/float64(cs.Cycles))
	fmt.Printf("BTB MPKI            %.2f\n", res.BTBMPKI())
	fmt.Printf("L1-I MPKI           %.2f\n", res.L1IMPKI())
	fmt.Printf("decode redirects    %d (%.2f MPKI)\n", cs.DecodeRedirects, cs.MPKI(cs.DecodeRedirects))
	fmt.Printf("exec redirects      %d (%.2f MPKI)\n", cs.ExecRedirects, cs.MPKI(cs.ExecRedirects))
	fmt.Printf("prefetches issued   %d\n", res.Hier.PrefetchesIssued)
	fmt.Printf("prefetch accuracy   %.3f\n", res.PrefetchAccuracy)
	fmt.Printf("L1-D fill cycles    %.1f\n", res.AvgDataFillCycles())
}
