// Command shotgun-sim runs one simulation — a (workload, mechanism) pair
// at a chosen BTB budget, optionally with co-runner cores sharing the
// LLC and NoC — and prints its statistics.
//
// Usage:
//
//	shotgun-sim -workload Oracle -mechanism shotgun -btb 2048 \
//	    -warmup 2000000 -measure 3000000 -samples 3
//	shotgun-sim -workload Oracle -region entire -bits 32   # a footprint variant
//	shotgun-sim -workload Oracle -bpu clz                  # CLZ-TAGE direction predictor
//	shotgun-sim -workload Oracle -contexts 4               # 4 SMT contexts, one front-end
//	shotgun-sim -workload DB2 -json -out result.json
//	shotgun-sim -workload Oracle -cores 4                  # 3 identical co-runners
//	shotgun-sim -workload Oracle -mix fdip,none            # 2 co-runners, mixed mechanisms
//	shotgun-sim -workload Oracle -cores 8 -llc 4194304     # shared-LLC override
//	shotgun-sim -workload Oracle -trace oracle.trace       # replay a recorded trace
//	shotgun-sim -workload Oracle -sample-period 16384 -sample-warmup 1024 \
//	    -sample-unit 1024 -sample-funcwarm 8192            # periodic sampling (95% CI)
//	shotgun-sim -workload Oracle -sample-period 16384 -sample-unit 1024 \
//	    -sample-units 8 -sample-ci 0.03                    # ... adaptive to a ±3% CI
//	shotgun-sim -spec specs/fig7.json                      # run a sweep spec locally
//	shotgun-sim -spec sweep.json -submit http://coord:8080 # ... or on a farm (/v1/sweeps)
//	shotgun-sim -spec sweep.json -submit http://coord:8080 -api-key key-acme  # authenticated farm
//	shotgun-sim -cpuprofile cpu.out -memprofile mem.out    # profile the run
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"shotgun/internal/client"
	"shotgun/internal/footprint"
	"shotgun/internal/harness"
	"shotgun/internal/prefetch"
	"shotgun/internal/report"
	"shotgun/internal/sim"
	"shotgun/internal/spec"
	"shotgun/internal/trace"
	"shotgun/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// errPrinted marks errors the flag package already reported to stderr.
var errPrinted = errors.New("flag parse error")

// options is the validated flag set.
type options struct {
	scenario   sim.Scenario
	tracePath  string
	specPath   string
	submitURL  string
	apiKey     string
	jsonOut    bool
	outPath    string
	cpuprofile string
	memprofile string
}

// parseOptions parses flags into a validated sim.Scenario — every bad
// combination (unknown workload, mechanism, region mode, bit width,
// non-positive samples, oversubscribed mesh, trace with co-runners)
// fails here with a clear error.
func parseOptions(args []string, stderr io.Writer) (options, error) {
	fs := flag.NewFlagSet("shotgun-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		wl      = fs.String("workload", "Oracle", "workload name: "+strings.Join(workload.Names(), ", "))
		mech    = fs.String("mechanism", "shotgun", "mechanism: none, fdip, rdip, delta, boomerang, confluence, shotgun, ideal")
		btb     = fs.Int("btb", 2048, "conventional BTB entry budget")
		warmup  = fs.Uint64("warmup", 2_000_000, "warmup instructions")
		measure = fs.Uint64("measure", 3_000_000, "measured instructions")
		samples = fs.Int("samples", 3, "measurement windows")
		region  = fs.String("region", "vector", "shotgun region mode: vector, none, entire, 5blocks")
		bpu     = fs.String("bpu", "tage", "direction predictor: tage, clz")
		nctx    = fs.Int("contexts", 1, "hardware contexts sharing each core's front-end (1..8)")
		bits    = fs.Int("bits", 8, "footprint bit-vector width (8 or 32)")
		cores   = fs.Int("cores", 0, "total cores in the scenario (0: derived from -mix, else 1)")
		mix     = fs.String("mix", "", "comma-separated co-runner mechanisms (cycled over cores 2..N; default: same as core 0)")
		llc     = fs.Int("llc", 0, "total shared LLC bytes (0: 1MB per core, capped at 8MB)")

		samplePeriod   = fs.Uint64("sample-period", 0, "periodic sampling: period P in trace blocks (enables sampled mode)")
		sampleWarmup   = fs.Uint64("sample-warmup", 0, "periodic sampling: detailed warm-up blocks before each measured unit")
		sampleUnit     = fs.Uint64("sample-unit", 0, "periodic sampling: measured unit length in blocks (required with -sample-period)")
		sampleFuncWarm = fs.Uint64("sample-funcwarm", 0, "periodic sampling: functional-warming window in blocks (0: warm the whole gap)")
		sampleUnits    = fs.Int("sample-units", 0, "periodic sampling: measured unit count (0: the default)")
		sampleCI       = fs.Float64("sample-ci", 0, "periodic sampling: target relative 95% CI half-width for adaptive escalation (e.g. 0.03)")
	)
	opts := options{}
	fs.StringVar(&opts.tracePath, "trace", "", "drive core 0 from this recorded trace instead of the workload walker")
	fs.StringVar(&opts.specPath, "spec", "", "run a sweep spec file (docs/SPEC.md) instead of a single scenario")
	fs.StringVar(&opts.submitURL, "submit", "", "POST the -spec file to this server's /v1/sweeps instead of running locally")
	fs.StringVar(&opts.apiKey, "api-key", "", "bearer API key sent with every -submit request (multi-tenant farms)")
	fs.BoolVar(&opts.jsonOut, "json", false, "emit the result as JSON instead of text")
	fs.StringVar(&opts.outPath, "out", "", "write the output to this file instead of stdout")
	fs.StringVar(&opts.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&opts.memprofile, "memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return options{}, err
		}
		return options{}, errPrinted
	}
	// -spec runs a whole declared sweep; the single-scenario flags
	// describe exactly one simulation. Mixing the two would silently
	// ignore one side, so reject every explicit scenario flag.
	if opts.specPath != "" {
		var conflicting []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "spec", "submit", "api-key", "json", "out", "cpuprofile", "memprofile":
			default:
				conflicting = append(conflicting, "-"+f.Name)
			}
		})
		if len(conflicting) > 0 {
			return options{}, fmt.Errorf("-spec runs the spec file's tables; drop %s", strings.Join(conflicting, ", "))
		}
		if opts.apiKey != "" && opts.submitURL == "" {
			return options{}, fmt.Errorf("-api-key authenticates -submit requests; a local -spec run needs none")
		}
		return opts, nil
	}
	if opts.submitURL != "" {
		return options{}, fmt.Errorf("-submit posts a spec file; it requires -spec")
	}
	if opts.apiKey != "" {
		return options{}, fmt.Errorf("-api-key authenticates -submit requests; it requires -spec and -submit")
	}
	// Zero-valued config fields mean "use the default" after
	// normalization, so an explicit 0 would silently run at full
	// defaults — reject it here where explicitness is knowable.
	if *samples <= 0 {
		return options{}, fmt.Errorf("-samples must be positive (got %d)", *samples)
	}

	primary := sim.Config{
		Workload:     *wl,
		Mechanism:    sim.Mechanism(*mech),
		BTBEntries:   *btb,
		WarmupInstr:  *warmup,
		MeasureInstr: *measure,
		Samples:      *samples,
	}
	switch *region {
	case "vector":
		primary.RegionMode = prefetch.RegionVector
	case "none":
		primary.RegionMode = prefetch.RegionNone
	case "entire":
		primary.RegionMode = prefetch.RegionEntire
	case "5blocks":
		primary.RegionMode = prefetch.RegionFiveBlocks
	default:
		return options{}, fmt.Errorf("unknown region mode %q (vector, none, entire, 5blocks)", *region)
	}
	switch *bits {
	case 8:
		primary.Layout = footprint.Layout8
	case 32:
		primary.Layout = footprint.Layout32
	default:
		return options{}, fmt.Errorf("-bits must be 8 or 32 (got %d)", *bits)
	}
	bpuAxis, err := sim.ParseBPU(*bpu)
	if err != nil {
		return options{}, err
	}
	primary.BPU = bpuAxis
	if *nctx < 1 || *nctx > sim.MaxContexts {
		return options{}, fmt.Errorf("-contexts must be in [1, %d] (got %d)", sim.MaxContexts, *nctx)
	}
	primary.Contexts = *nctx

	// The -sample-* family switches the run to periodic sampling; the
	// schedule needs at least a period and a unit length, and the rest
	// of the knobs are meaningless without them.
	if *samplePeriod != 0 || *sampleWarmup != 0 || *sampleUnit != 0 ||
		*sampleFuncWarm != 0 || *sampleUnits != 0 || *sampleCI != 0 {
		if *samplePeriod == 0 || *sampleUnit == 0 {
			return options{}, fmt.Errorf("sampled mode needs both -sample-period and -sample-unit")
		}
		primary.Sampling = &sim.Sampling{
			PeriodBlocks:   *samplePeriod,
			WarmupBlocks:   *sampleWarmup,
			UnitBlocks:     *sampleUnit,
			FuncWarmBlocks: *sampleFuncWarm,
			Units:          *sampleUnits,
			TargetCI:       *sampleCI,
		}
	}

	// The co-runner population: -cores sets the total core count; -mix
	// the co-runners' mechanisms (cycled). -mix alone implies one core
	// per listed mechanism plus the primary.
	var mixMechs []sim.Mechanism
	if *mix != "" {
		for _, name := range strings.Split(*mix, ",") {
			mixMechs = append(mixMechs, sim.Mechanism(strings.TrimSpace(name)))
		}
	}
	n := *cores
	switch {
	case n == 0 && len(mixMechs) > 0:
		n = 1 + len(mixMechs)
	case n == 0:
		n = 1
	case n < 1:
		return options{}, fmt.Errorf("-cores must be positive (got %d)", n)
	}
	if n == 1 && len(mixMechs) > 0 {
		return options{}, fmt.Errorf("-mix needs co-runner cores, but -cores 1 leaves none")
	}
	if primary.Sampling != nil && n > 1 {
		// Sampling is single-core stream mode for now; a shared-uncore
		// scenario has no warm-path model for the co-runners' traffic.
		return options{}, fmt.Errorf("-sample-period runs single-core periodic sampling; it conflicts with -cores %d (drop -cores/-mix or the -sample-* flags)", n)
	}
	opts.scenario = sim.Scenario{Cores: []sim.Config{primary}, LLCSizeBytes: *llc}
	for i := 1; i < n; i++ {
		co := primary
		if len(mixMechs) > 0 {
			co.Mechanism = mixMechs[(i-1)%len(mixMechs)]
			if co.Mechanism != sim.Shotgun {
				// Region/layout knobs are Shotgun-specific; mixed-in
				// mechanisms run at their own defaults.
				co.RegionMode = prefetch.RegionVector
				co.Layout = footprint.Layout8
			}
		}
		opts.scenario.Cores = append(opts.scenario.Cores, co)
	}
	if opts.tracePath != "" && len(opts.scenario.Cores) > 1 {
		return options{}, fmt.Errorf("-trace drives a single core; drop -cores/-mix")
	}
	if opts.tracePath != "" && *llc != 0 {
		return options{}, fmt.Errorf("-llc shapes the scenario's shared LLC; a -trace replay runs the single-core default")
	}
	if opts.tracePath != "" && *nctx > 1 {
		return options{}, fmt.Errorf("-trace replays a single-context stream; drop -contexts")
	}
	if err := opts.scenario.Validate(); err != nil {
		return options{}, err
	}
	return opts, nil
}

// jsonResult is the -json document: the normalized scenario alongside
// the per-core outcomes, mirroring internal/store's record body. For a
// -trace replay the block stream came from the named trace, not the
// scenario's walker, so the scenario is NOT the result's content
// identity — the trace field marks that, and consumers must not key
// trace-driven results by the scenario.
type jsonResult struct {
	Scenario sim.Scenario       `json:"scenario"`
	Trace    string             `json:"trace,omitempty"`
	Result   sim.ScenarioResult `json:"result"`
}

// outWriter resolves -out: the named file, or fallback.
func outWriter(opts options, fallback io.Writer, stderr io.Writer) (io.Writer, func(), int) {
	if opts.outPath == "" {
		return fallback, func() {}, 0
	}
	f, err := os.Create(opts.outPath)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return nil, nil, 1
	}
	return f, func() { f.Close() }, 0
}

// runSpec is the -spec path: compile the file and either run its
// tables on a private local runner — at the spec's pinned scale, or
// the paper's full scale when the spec pins none — or post it to a
// farm's /v1/sweeps and relay the rendered response.
func runSpec(opts options, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(opts.specPath)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	// Compile locally even when submitting: a broken spec should fail
	// here with a local error message, not travel to the server.
	compiled, err := spec.Compile(data)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	// -out is opened only after the sweep has succeeded (like the
	// single-scenario path, which simulates before creating the file),
	// so a failed run or an unreachable farm never truncates an
	// existing report.
	if opts.submitURL != "" {
		format := "text"
		if opts.jsonOut {
			format = "json"
		}
		// The typed client decodes error envelopes and retries
		// quota/overload rejections honoring Retry-After; a sweep blocks
		// until rendered, so give it an unbounded request timeout.
		cl := client.New(opts.submitURL,
			client.WithAPIKey(opts.apiKey),
			client.WithHTTPClient(&http.Client{}))
		body, err := cl.Sweep(context.Background(), data, format)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		out, closeOut, code := outWriter(opts, stdout, stderr)
		if code != 0 {
			return code
		}
		defer closeOut()
		if _, err := out.Write(body); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}

	scale := harness.FullScale()
	scaleName := "full"
	if sc := compiled.Spec.Scale; sc != nil {
		scale = sc.Harness()
		scaleName = "spec"
	}
	runner := harness.NewRunner(scale)
	exps := compiled.Experiments()
	// All simulation work happens here; rendering below only reads the
	// memo, so opening -out after this point cannot strand a truncated
	// file behind minutes of lost work.
	runner.PrefetchScenarios(harness.AllScenarios(exps))
	out, closeOut, code := outWriter(opts, stdout, stderr)
	if code != 0 {
		return code
	}
	defer closeOut()
	if opts.jsonOut {
		if err := report.FromExperiments(runner, exps, scaleName).WriteJSON(out); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}
	for _, e := range exps {
		fmt.Fprintln(out, e.Run(runner))
	}
	return 0
}

// profiles carries the -cpuprofile/-memprofile state. Both files are
// created (and the CPU profile started) before any simulation work, so
// a bad path fails fast instead of discarding a finished run.
type profiles struct {
	memf *os.File
	cpu  bool
}

// startProfiles resolves the profiling flags (no-op when unset).
func startProfiles(opts options, stderr io.Writer) (*profiles, int) {
	p := &profiles{}
	if opts.memprofile != "" {
		f, err := os.Create(opts.memprofile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return nil, 1
		}
		p.memf = f
	}
	if opts.cpuprofile != "" {
		f, err := os.Create(opts.cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return nil, 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, err)
			return nil, 1
		}
		p.cpu = true
	}
	return p, 0
}

// stop ends the CPU profile and writes the heap profile.
func (p *profiles) stop(stderr io.Writer) int {
	if p.cpu {
		pprof.StopCPUProfile()
	}
	if p.memf != nil {
		runtime.GC()
		if err := pprof.WriteHeapProfile(p.memf); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		p.memf.Close()
	}
	return 0
}

func run(args []string, stdout, stderr io.Writer) int {
	opts, err := parseOptions(args, stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0 // -h/-help is a successful exit, like flag.ExitOnError
		}
		if !errors.Is(err, errPrinted) {
			fmt.Fprintln(stderr, err)
		}
		return 2
	}
	prof, code := startProfiles(opts, stderr)
	if code != 0 {
		return code
	}
	code = simulate(opts, stdout, stderr)
	if pcode := prof.stop(stderr); code == 0 {
		code = pcode
	}
	return code
}

// simulate runs the selected work — a sweep spec or a single scenario —
// and renders the result (run handles flag parsing and profiling around
// it).
func simulate(opts options, stdout, stderr io.Writer) int {
	if opts.specPath != "" {
		return runSpec(opts, stdout, stderr)
	}

	var err error

	var res sim.ScenarioResult
	if opts.tracePath != "" {
		f, err := os.Open(opts.tracePath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		stream, err := trace.NewStream(f)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		r, err := sim.RunStream(opts.scenario.Cores[0], stream)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		res = sim.ScenarioResult{Cores: []sim.Result{r}}
	} else {
		res, err = sim.RunScenario(opts.scenario)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}

	out, closeOut, code := outWriter(opts, stdout, stderr)
	if code != 0 {
		return code
	}
	defer closeOut()
	if opts.jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		doc := jsonResult{Scenario: opts.scenario.Normalized(), Trace: opts.tracePath, Result: res}
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}

	for i, r := range res.Cores {
		if len(res.Cores) > 1 {
			fmt.Fprintf(out, "--- core %d ---\n", i)
		}
		printResult(out, r)
	}
	return 0
}

func printResult(out io.Writer, res sim.Result) {
	cs := res.Core
	fmt.Fprintf(out, "workload            %s\n", res.Workload)
	fmt.Fprintf(out, "mechanism           %s\n", res.Mechanism)
	fmt.Fprintf(out, "instructions        %d\n", cs.Instructions)
	fmt.Fprintf(out, "cycles              %d\n", cs.Cycles)
	fmt.Fprintf(out, "IPC                 %.4f\n", res.IPC())
	fmt.Fprintf(out, "front-end stalls    %d (%.1f%% of cycles)\n", cs.FrontEndStallCycles,
		100*float64(cs.FrontEndStallCycles)/float64(cs.Cycles))
	fmt.Fprintf(out, "back-end stalls     %d (%.1f%% of cycles)\n", cs.BackEndStallCycles,
		100*float64(cs.BackEndStallCycles)/float64(cs.Cycles))
	fmt.Fprintf(out, "BTB MPKI            %.2f\n", res.BTBMPKI())
	fmt.Fprintf(out, "L1-I MPKI           %.2f\n", res.L1IMPKI())
	fmt.Fprintf(out, "decode redirects    %d (%.2f MPKI)\n", cs.DecodeRedirects, cs.MPKI(cs.DecodeRedirects))
	fmt.Fprintf(out, "exec redirects      %d (%.2f MPKI)\n", cs.ExecRedirects, cs.MPKI(cs.ExecRedirects))
	fmt.Fprintf(out, "prefetches issued   %d\n", res.Hier.PrefetchesIssued)
	fmt.Fprintf(out, "prefetch accuracy   %.3f\n", res.PrefetchAccuracy)
	fmt.Fprintf(out, "L1-D fill cycles    %.1f\n", res.AvgDataFillCycles())
	if s := res.Sampled; s != nil {
		fmt.Fprintf(out, "sampled IPC         %s\n", s.IPC)
		fmt.Fprintf(out, "sampled L1-I MPKI   %s\n", s.L1IMPKI)
		fmt.Fprintf(out, "sampled BTB MPKI    %s\n", s.BTBMPKI)
		fmt.Fprintf(out, "sampled coverage    %.4f (%d of %d instructions in detail)\n",
			s.Coverage(), s.DetailInstr, s.TotalInstr())
	}
}
