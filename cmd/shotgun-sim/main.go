// Command shotgun-sim runs one simulation — a (workload, mechanism) pair
// at a chosen BTB budget — and prints its statistics.
//
// Usage:
//
//	shotgun-sim -workload Oracle -mechanism shotgun -btb 2048 \
//	    -warmup 2000000 -measure 3000000 -samples 3
//	shotgun-sim -workload DB2 -json -out result.json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"shotgun/internal/footprint"
	"shotgun/internal/prefetch"
	"shotgun/internal/sim"
	"shotgun/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// errPrinted marks errors the flag package already reported to stderr.
var errPrinted = errors.New("flag parse error")

// options is the validated flag set.
type options struct {
	cfg     sim.Config
	jsonOut bool
	outPath string
}

// parseOptions parses flags into a validated sim.Config — every bad
// combination (unknown workload, mechanism, region mode, bit width,
// non-positive samples) fails here with a clear error.
func parseOptions(args []string, stderr io.Writer) (options, error) {
	fs := flag.NewFlagSet("shotgun-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		wl      = fs.String("workload", "Oracle", "workload name: "+strings.Join(workload.Names(), ", "))
		mech    = fs.String("mechanism", "shotgun", "mechanism: none, fdip, rdip, boomerang, confluence, shotgun, ideal")
		btb     = fs.Int("btb", 2048, "conventional BTB entry budget")
		warmup  = fs.Uint64("warmup", 2_000_000, "warmup instructions")
		measure = fs.Uint64("measure", 3_000_000, "measured instructions")
		samples = fs.Int("samples", 3, "measurement windows")
		region  = fs.String("region", "vector", "shotgun region mode: vector, none, entire, 5blocks")
		bits    = fs.Int("bits", 8, "footprint bit-vector width (8 or 32)")
	)
	opts := options{}
	fs.BoolVar(&opts.jsonOut, "json", false, "emit the result as JSON instead of text")
	fs.StringVar(&opts.outPath, "out", "", "write the output to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return options{}, err
		}
		return options{}, errPrinted
	}
	// Zero-valued config fields mean "use the default" after
	// normalization, so an explicit 0 would silently run at full
	// defaults — reject it here where explicitness is knowable.
	if *samples <= 0 {
		return options{}, fmt.Errorf("-samples must be positive (got %d)", *samples)
	}

	opts.cfg = sim.Config{
		Workload:     *wl,
		Mechanism:    sim.Mechanism(*mech),
		BTBEntries:   *btb,
		WarmupInstr:  *warmup,
		MeasureInstr: *measure,
		Samples:      *samples,
	}
	switch *region {
	case "vector":
		opts.cfg.RegionMode = prefetch.RegionVector
	case "none":
		opts.cfg.RegionMode = prefetch.RegionNone
	case "entire":
		opts.cfg.RegionMode = prefetch.RegionEntire
	case "5blocks":
		opts.cfg.RegionMode = prefetch.RegionFiveBlocks
	default:
		return options{}, fmt.Errorf("unknown region mode %q (vector, none, entire, 5blocks)", *region)
	}
	switch *bits {
	case 8:
		opts.cfg.Layout = footprint.Layout8
	case 32:
		opts.cfg.Layout = footprint.Layout32
	default:
		return options{}, fmt.Errorf("-bits must be 8 or 32 (got %d)", *bits)
	}
	if err := opts.cfg.Validate(); err != nil {
		return options{}, err
	}
	return opts, nil
}

// jsonResult is the -json document: the normalized config alongside the
// simulation outcome, mirroring internal/store's record body.
type jsonResult struct {
	Config sim.Config `json:"config"`
	Result sim.Result `json:"result"`
}

func run(args []string, stdout, stderr io.Writer) int {
	opts, err := parseOptions(args, stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0 // -h/-help is a successful exit, like flag.ExitOnError
		}
		if !errors.Is(err, errPrinted) {
			fmt.Fprintln(stderr, err)
		}
		return 2
	}

	res, err := sim.Run(opts.cfg)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	out := stdout
	if opts.outPath != "" {
		f, err := os.Create(opts.outPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		out = f
	}
	if opts.jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonResult{Config: opts.cfg.Normalized(), Result: res}); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}

	cs := res.Core
	fmt.Fprintf(out, "workload            %s\n", res.Workload)
	fmt.Fprintf(out, "mechanism           %s\n", res.Mechanism)
	fmt.Fprintf(out, "instructions        %d\n", cs.Instructions)
	fmt.Fprintf(out, "cycles              %d\n", cs.Cycles)
	fmt.Fprintf(out, "IPC                 %.4f\n", res.IPC())
	fmt.Fprintf(out, "front-end stalls    %d (%.1f%% of cycles)\n", cs.FrontEndStallCycles,
		100*float64(cs.FrontEndStallCycles)/float64(cs.Cycles))
	fmt.Fprintf(out, "back-end stalls     %d (%.1f%% of cycles)\n", cs.BackEndStallCycles,
		100*float64(cs.BackEndStallCycles)/float64(cs.Cycles))
	fmt.Fprintf(out, "BTB MPKI            %.2f\n", res.BTBMPKI())
	fmt.Fprintf(out, "L1-I MPKI           %.2f\n", res.L1IMPKI())
	fmt.Fprintf(out, "decode redirects    %d (%.2f MPKI)\n", cs.DecodeRedirects, cs.MPKI(cs.DecodeRedirects))
	fmt.Fprintf(out, "exec redirects      %d (%.2f MPKI)\n", cs.ExecRedirects, cs.MPKI(cs.ExecRedirects))
	fmt.Fprintf(out, "prefetches issued   %d\n", res.Hier.PrefetchesIssued)
	fmt.Fprintf(out, "prefetch accuracy   %.3f\n", res.PrefetchAccuracy)
	fmt.Fprintf(out, "L1-D fill cycles    %.1f\n", res.AvgDataFillCycles())
	return 0
}
