package main

import (
	"bytes"
	"errors"
	"flag"
	"testing"

	"shotgun/internal/cmdtest"
)

// TestUsageMentionsAllFlags guards the command's documentation against
// flag drift: every flag the parser registers (as printed by -h) must
// be mentioned in main.go's leading doc comment. The scan itself lives
// in internal/cmdtest, shared by all four commands.
func TestUsageMentionsAllFlags(t *testing.T) {
	var usage bytes.Buffer
	if _, err := parseOptions([]string{"-h"}, &usage); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h did not trigger help: %v", err)
	}
	cmdtest.UsageMentionsAllFlags(t, usage.String(), "main.go")
}
