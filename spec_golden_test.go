// The spec/compiled parity gate: every experiment of the paper's
// evaluation exists twice — compiled into internal/harness and declared
// as a spec file under specs/ — and the two must agree byte for byte.
// For each specs/*.json this test proves
//
//  1. the spec's rendered table is identical to the checked-in golden
//     file (and therefore to the compiled-in render, which TestGolden
//     pins to the same bytes), and
//  2. the spec expands to exactly the compiled-in experiment's scenario
//     key set, so spec-driven jobs dedup against compiled-in ones in
//     the memo, the store, and the cluster.
//
// It also fails when a harness experiment has no spec file, so the two
// catalogs cannot drift apart silently.
package shotgun_test

import (
	"os"
	"path/filepath"
	"testing"

	"shotgun/internal/harness"
	"shotgun/internal/sim"
	"shotgun/internal/spec"
	"shotgun/internal/store"
)

// keySet reduces a scenario list to its normalized content-key set
// under the runner's scale — the identity the memo, the store and the
// dispatch layer share.
func keySet(r *harness.Runner, scs []sim.Scenario) map[string]bool {
	set := make(map[string]bool, len(scs))
	for _, sc := range scs {
		set[store.ScenarioKey(r.NormalizeScenario(sc))] = true
	}
	return set
}

func TestSpecGoldenParity(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("specs", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no spec files under specs/")
	}
	r := goldenRunner()

	covered := make(map[string]bool)
	for _, path := range files {
		c, err := spec.CompileFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if c.Spec.Scale != nil {
			t.Errorf("%s: paper specs must not pin a scale (golden parity runs at the golden runner's)", path)
		}
		for _, exp := range c.Experiments() {
			exp := exp
			t.Run(exp.ID, func(t *testing.T) {
				if covered[exp.ID] {
					t.Fatalf("experiment id %q declared by more than one spec file", exp.ID)
				}
				covered[exp.ID] = true

				builtin, ok := harness.Find(exp.ID)
				if !ok {
					t.Fatalf("spec experiment %q has no compiled-in counterpart", exp.ID)
				}

				// Identity parity: the spec must expand to exactly the
				// compiled-in scenario key set.
				if (exp.Scenarios == nil) != (builtin.Scenarios == nil) {
					t.Fatalf("scenario declarations disagree: spec nil=%v, builtin nil=%v",
						exp.Scenarios == nil, builtin.Scenarios == nil)
				}
				if exp.Scenarios != nil {
					got, want := keySet(r, exp.Scenarios()), keySet(r, builtin.Scenarios())
					for k := range got {
						if !want[k] {
							t.Errorf("spec expands scenario key %s the compiled-in experiment never runs", k[:12])
						}
					}
					for k := range want {
						if !got[k] {
							t.Errorf("spec misses compiled-in scenario key %s", k[:12])
						}
					}
				}

				// Render parity: byte-identical to the golden corpus.
				goldenPath := filepath.Join("testdata", "golden", exp.ID+".txt")
				want, err := os.ReadFile(goldenPath)
				if err != nil {
					t.Fatalf("missing golden file for spec experiment %q: %v", exp.ID, err)
				}
				if got := exp.Run(r); got != string(want) {
					t.Errorf("%s rendered from %s drifted from the golden corpus:\n%s",
						exp.ID, path, firstDiff(string(want), got))
				}
			})
		}
	}

	// Completeness: every compiled-in experiment must have a spec twin.
	for _, e := range harness.Experiments() {
		if !covered[e.ID] {
			t.Errorf("compiled-in experiment %q has no specs/*.json declaration", e.ID)
		}
	}
}
