module shotgun

go 1.24
