// Package sample implements SMARTS-style periodic sampling statistics
// (Wunderlich et al., ISCA'03): a long block stream is measured in short
// detailed units spaced a fixed period apart, the gaps fast-forwarded
// under functional warming, and the per-unit observations aggregated
// into a mean with a Student-t confidence interval — optionally
// escalating the unit count until a target relative half-width is hit.
//
// The package owns the sampling *schedule and statistics*; driving the
// simulator through the warm/detailed phases belongs to internal/sim
// (runSampled), which feeds per-unit observations back through Run's
// measure callback. Keeping the math here makes it testable against
// closed-form cases without spinning up a core model.
package sample

import (
	"fmt"
	"math"
)

// DefaultUnits is the unit count when a caller sets none: enough that
// the Student-t interval is meaningful, small enough for quick runs.
const DefaultUnits = 8

// DefaultMaxUnits caps adaptive escalation when a caller sets no bound.
const DefaultMaxUnits = 64

// MaxPeriodBlocks bounds one sampling period. Sampling parameters
// arrive from spec files and HTTP, so the total detailed+warmed work
// (MaxUnits × PeriodBlocks) must be bounded against hostile documents.
const MaxPeriodBlocks = 16 << 20

// MaxUnitsCap bounds the unit count from any source.
const MaxUnitsCap = 4096

// Params configures periodic sampling over a block stream.
type Params struct {
	// PeriodBlocks is the sampling period P: one measured unit begins
	// every P trace blocks.
	PeriodBlocks uint64
	// WarmupBlocks is the detailed warm-up W run (timed, discarded)
	// before each measured unit, re-establishing the timing state —
	// in-flight fills, FTQ depth, runahead position — that functional
	// warming does not model.
	WarmupBlocks uint64
	// UnitBlocks is the measured detailed unit length U. The remaining
	// P−W−U blocks of each period are fast-forwarded under functional
	// warming.
	UnitBlocks uint64
	// FuncWarmBlocks bounds the functional-warming window: 0 (the
	// SMARTS-conservative default) warms the whole P−W−U gap; a
	// non-zero F warms only the F blocks preceding the detailed
	// warm-up and skips the rest of the gap outright — the bounded
	// warm-up of checkpoint-style samplers, trading some cold-state
	// risk for a much cheaper fast-forward.
	FuncWarmBlocks uint64
	// Units is the baseline number of measured units (default
	// DefaultUnits).
	Units int
	// TargetRelCI, when non-zero, turns on adaptive escalation: after
	// Units units, measurement continues until the IPC estimate's
	// relative 95% half-width is at or below this target (SMARTS uses
	// ±3%, i.e. 0.03) or MaxUnits is reached.
	TargetRelCI float64
	// MaxUnits caps adaptive escalation (default DefaultMaxUnits; only
	// meaningful with TargetRelCI).
	MaxUnits int
}

// withDefaults returns p with zero fields resolved.
func (p Params) withDefaults() Params {
	if p.Units == 0 {
		p.Units = DefaultUnits
	}
	if p.MaxUnits == 0 {
		// Default the cap, never clamp an explicit one: an explicit
		// MaxUnits below Units is a caller error Validate reports.
		p.MaxUnits = DefaultMaxUnits
		if p.MaxUnits < p.Units {
			p.MaxUnits = p.Units
		}
	}
	return p
}

// Validate rejects parameter sets that cannot schedule a measurement or
// that exceed the DoS bounds (sampling parameters arrive from specs and
// HTTP).
func (p Params) Validate() error {
	if p.PeriodBlocks == 0 {
		return fmt.Errorf("sample: period must be positive")
	}
	if p.UnitBlocks == 0 {
		return fmt.Errorf("sample: unit must be positive")
	}
	if p.WarmupBlocks+p.UnitBlocks > p.PeriodBlocks {
		return fmt.Errorf("sample: warmup (%d) + unit (%d) blocks exceed the period (%d)",
			p.WarmupBlocks, p.UnitBlocks, p.PeriodBlocks)
	}
	if p.FuncWarmBlocks+p.WarmupBlocks+p.UnitBlocks > p.PeriodBlocks {
		return fmt.Errorf("sample: functional warm (%d) + warmup (%d) + unit (%d) blocks exceed the period (%d)",
			p.FuncWarmBlocks, p.WarmupBlocks, p.UnitBlocks, p.PeriodBlocks)
	}
	if p.PeriodBlocks > MaxPeriodBlocks {
		return fmt.Errorf("sample: period %d exceeds the %d cap", p.PeriodBlocks, MaxPeriodBlocks)
	}
	if p.Units < 0 || p.Units > MaxUnitsCap {
		return fmt.Errorf("sample: units %d out of range [0, %d]", p.Units, MaxUnitsCap)
	}
	if p.MaxUnits < 0 || p.MaxUnits > MaxUnitsCap {
		return fmt.Errorf("sample: max units %d out of range [0, %d]", p.MaxUnits, MaxUnitsCap)
	}
	// Compare the cap against the EFFECTIVE unit count: an implicit
	// Units still defaults to DefaultUnits, and an explicit cap below
	// that would fail after normalization — reject it here so raw and
	// normalized params agree on validity.
	units := p.Units
	if units == 0 {
		units = DefaultUnits
	}
	if p.MaxUnits > 0 && p.MaxUnits < units {
		return fmt.Errorf("sample: max units %d below units %d", p.MaxUnits, units)
	}
	if p.TargetRelCI < 0 || p.TargetRelCI >= 1 {
		return fmt.Errorf("sample: target CI %v out of range [0, 1)", p.TargetRelCI)
	}
	return nil
}

// Series accumulates per-unit observations of one metric.
type Series struct {
	n    int
	sum  float64
	sum2 float64
}

// Add records one observation.
func (s *Series) Add(x float64) {
	s.n++
	s.sum += x
	s.sum2 += x * x
}

// N returns the observation count.
func (s *Series) N() int { return s.n }

// Mean returns the sample mean (0 with no observations).
func (s *Series) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// variance returns the unbiased sample variance (0 below two
// observations). The accumulator form can go negative by rounding when
// observations are identical; clamp at zero.
func (s *Series) variance() float64 {
	if s.n < 2 {
		return 0
	}
	v := (s.sum2 - s.sum*s.sum/float64(s.n)) / float64(s.n-1)
	if v < 0 {
		return 0
	}
	return v
}

// Estimate returns the series' mean ± 95% Student-t half-width.
func (s *Series) Estimate() Estimate {
	e := Estimate{Mean: s.Mean(), Units: s.n}
	if s.n >= 2 {
		e.HalfWidth = tQuantile95(s.n-1) * math.Sqrt(s.variance()/float64(s.n))
	}
	return e
}

// Estimate is a sampled metric: mean ± 95% confidence half-width over
// Units measured units.
type Estimate struct {
	Mean      float64
	HalfWidth float64
	Units     int
}

// RelHalfWidth returns the half-width relative to the mean's magnitude
// (+Inf when the mean is zero with a non-zero half-width; 0 when both
// are zero, i.e. a perfectly stable series).
func (e Estimate) RelHalfWidth() float64 {
	if e.Mean == 0 {
		if e.HalfWidth == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return e.HalfWidth / math.Abs(e.Mean)
}

// Contains reports whether x lies within the confidence interval.
func (e Estimate) Contains(x float64) bool {
	return math.Abs(x-e.Mean) <= e.HalfWidth
}

// String renders "mean ± half-width (95% CI, n units)".
func (e Estimate) String() string {
	return fmt.Sprintf("%.4f ± %.4f (95%% CI, n=%d)", e.Mean, e.HalfWidth, e.Units)
}

// t95 holds the two-sided 95% Student-t quantiles (t_{0.975,df}) for
// df 1..30; larger dfs interpolate the standard abridged table.
var t95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tQuantile95 returns t_{0.975,df}: the standard table through df 30,
// the conventional abridged rows at 40/60/120, 1.96 in the limit.
func tQuantile95(df int) float64 {
	switch {
	case df <= 0:
		return math.Inf(1)
	case df <= len(t95):
		return t95[df-1]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	}
	return 1.960
}

// Run drives the adaptive sampling loop: measure is called once per
// unit (it should execute one full period — functional warming,
// detailed warm-up, measured unit — and return the unit's IPC), the
// observations accumulate, and the loop stops after p.Units units
// unless TargetRelCI asks for escalation, in which case it continues
// until the target relative half-width or MaxUnits. Returns the IPC
// estimate. Params must have been validated.
func Run(p Params, measure func(unit int) float64) Estimate {
	p = p.withDefaults()
	var s Series
	for unit := 0; unit < p.MaxUnits; unit++ {
		s.Add(measure(unit))
		if unit+1 < p.Units {
			continue
		}
		if p.TargetRelCI == 0 {
			break
		}
		if est := s.Estimate(); est.RelHalfWidth() <= p.TargetRelCI {
			break
		}
	}
	return s.Estimate()
}
