package sample

import (
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	good := []Params{
		{PeriodBlocks: 100, UnitBlocks: 10},
		{PeriodBlocks: 100, WarmupBlocks: 50, UnitBlocks: 50},
		{PeriodBlocks: 100, WarmupBlocks: 10, UnitBlocks: 10, FuncWarmBlocks: 80},
		{PeriodBlocks: MaxPeriodBlocks, UnitBlocks: 1},
		{PeriodBlocks: 100, UnitBlocks: 10, Units: MaxUnitsCap, MaxUnits: MaxUnitsCap},
		{PeriodBlocks: 100, UnitBlocks: 10, TargetRelCI: 0.03},
	}
	for i, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("good case %d rejected: %v", i, err)
		}
	}
	bad := []Params{
		{},
		{PeriodBlocks: 100},
		{UnitBlocks: 10},
		{PeriodBlocks: 100, WarmupBlocks: 95, UnitBlocks: 10},
		{PeriodBlocks: 100, WarmupBlocks: 10, UnitBlocks: 10, FuncWarmBlocks: 81},
		{PeriodBlocks: MaxPeriodBlocks + 1, UnitBlocks: 1},
		{PeriodBlocks: 100, UnitBlocks: 10, Units: -1},
		{PeriodBlocks: 100, UnitBlocks: 10, Units: MaxUnitsCap + 1},
		{PeriodBlocks: 100, UnitBlocks: 10, MaxUnits: -1},
		{PeriodBlocks: 100, UnitBlocks: 10, MaxUnits: MaxUnitsCap + 1},
		{PeriodBlocks: 100, UnitBlocks: 10, Units: 8, MaxUnits: 4},
		{PeriodBlocks: 100, UnitBlocks: 10, TargetRelCI: -0.01},
		{PeriodBlocks: 100, UnitBlocks: 10, TargetRelCI: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad case %d accepted: %+v", i, p)
		}
	}
}

func TestSeriesMoments(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.N() != 0 {
		t.Fatalf("empty series mean=%v n=%d", s.Mean(), s.N())
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", got)
	}
	// Known data set: sample variance 32/7.
	if got := s.variance(); math.Abs(got-32.0/7) > 1e-12 {
		t.Fatalf("variance = %v, want %v", got, 32.0/7)
	}
	e := s.Estimate()
	// t_{0.975,7} = 2.365; half-width = t * sqrt(s^2/n).
	want := 2.365 * math.Sqrt(32.0/7/8)
	if math.Abs(e.HalfWidth-want) > 1e-9 {
		t.Fatalf("half-width = %v, want %v", e.HalfWidth, want)
	}
	if e.Units != 8 || e.Mean != 5 {
		t.Fatalf("estimate = %+v", e)
	}
}

func TestSeriesDegenerate(t *testing.T) {
	var one Series
	one.Add(3)
	e := one.Estimate()
	if e.Mean != 3 || e.HalfWidth != 0 || e.Units != 1 {
		t.Fatalf("single-observation estimate = %+v", e)
	}
	var flat Series
	for i := 0; i < 10; i++ {
		flat.Add(1.25)
	}
	if hw := flat.Estimate().HalfWidth; hw != 0 {
		t.Fatalf("constant series half-width = %v", hw)
	}
}

func TestEstimateRelHalfWidth(t *testing.T) {
	if got := (Estimate{Mean: 2, HalfWidth: 0.1}).RelHalfWidth(); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("rel half-width = %v", got)
	}
	if got := (Estimate{Mean: -2, HalfWidth: 0.1}).RelHalfWidth(); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("negative-mean rel half-width = %v", got)
	}
	if got := (Estimate{}).RelHalfWidth(); got != 0 {
		t.Fatalf("zero estimate rel half-width = %v", got)
	}
	if got := (Estimate{HalfWidth: 1}).RelHalfWidth(); !math.IsInf(got, 1) {
		t.Fatalf("zero-mean rel half-width = %v", got)
	}
}

func TestEstimateContains(t *testing.T) {
	e := Estimate{Mean: 1.5, HalfWidth: 0.2}
	for _, x := range []float64{1.3, 1.5, 1.7} {
		if !e.Contains(x) {
			t.Errorf("%v not contained in %v", x, e)
		}
	}
	for _, x := range []float64{1.29, 1.71} {
		if e.Contains(x) {
			t.Errorf("%v contained in %v", x, e)
		}
	}
}

func TestEstimateString(t *testing.T) {
	got := Estimate{Mean: 1.2345, HalfWidth: 0.0321, Units: 9}.String()
	want := "1.2345 ± 0.0321 (95% CI, n=9)"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestTQuantile(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{1, 12.706}, {2, 4.303}, {7, 2.365}, {30, 2.042},
		{31, 2.021}, {40, 2.021}, {41, 2.000}, {60, 2.000},
		{61, 1.980}, {120, 1.980}, {121, 1.960}, {10000, 1.960},
	}
	for _, c := range cases {
		if got := tQuantile95(c.df); got != c.want {
			t.Errorf("t(%d) = %v, want %v", c.df, got, c.want)
		}
	}
	if !math.IsInf(tQuantile95(0), 1) {
		t.Error("t(0) must be +Inf (no confidence from zero df)")
	}
	// The table must be monotonically non-increasing in df.
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		q := tQuantile95(df)
		if q > prev {
			t.Fatalf("t(%d)=%v > t(%d)=%v", df, q, df-1, prev)
		}
		prev = q
	}
}

func TestRunFixedUnits(t *testing.T) {
	p := Params{PeriodBlocks: 100, UnitBlocks: 10, Units: 5}
	calls := 0
	e := Run(p, func(unit int) float64 {
		if unit != calls {
			t.Fatalf("unit %d out of order (call %d)", unit, calls)
		}
		calls++
		return 2.0
	})
	if calls != 5 {
		t.Fatalf("measure called %d times, want 5 (no escalation without a target)", calls)
	}
	if e.Mean != 2 || e.Units != 5 || e.HalfWidth != 0 {
		t.Fatalf("estimate = %+v", e)
	}
}

func TestRunAdaptiveStopsAtTarget(t *testing.T) {
	// High-variance first units, then perfectly stable: the loop must
	// escalate past Units and stop once the CI tightens under target.
	p := Params{PeriodBlocks: 100, UnitBlocks: 10, Units: 4, MaxUnits: 400, TargetRelCI: 0.05}
	calls := 0
	e := Run(p, func(int) float64 {
		calls++
		if calls%2 == 0 {
			return 1.2
		}
		return 0.8
	})
	if calls <= 4 {
		t.Fatalf("no escalation: %d calls", calls)
	}
	if calls >= 400 {
		t.Fatalf("escalation never converged: %d calls", calls)
	}
	if e.RelHalfWidth() > 0.05 {
		t.Fatalf("stopped above target: %+v (rel %v)", e, e.RelHalfWidth())
	}
}

func TestRunAdaptiveHitsCap(t *testing.T) {
	// Alternating wildly: the CI never reaches 1e-6, so the cap rules.
	p := Params{PeriodBlocks: 100, UnitBlocks: 10, Units: 2, MaxUnits: 9, TargetRelCI: 1e-6}
	calls := 0
	x := 0.0
	e := Run(p, func(int) float64 {
		calls++
		x += 1
		return x
	})
	if calls != 9 {
		t.Fatalf("measure called %d times, want the 9-unit cap", calls)
	}
	if e.Units != 9 || math.Abs(e.Mean-5) > 1e-12 {
		t.Fatalf("estimate = %+v", e)
	}
}

func TestRunDefaults(t *testing.T) {
	calls := 0
	Run(Params{PeriodBlocks: 100, UnitBlocks: 10}, func(int) float64 {
		calls++
		return 1
	})
	if calls != DefaultUnits {
		t.Fatalf("measure called %d times, want DefaultUnits=%d", calls, DefaultUnits)
	}
}

func TestWithDefaultsKeepsLargeUnits(t *testing.T) {
	p := Params{PeriodBlocks: 100, UnitBlocks: 10, Units: 100}.withDefaults()
	if p.MaxUnits < p.Units {
		t.Fatalf("defaulted MaxUnits %d below Units %d", p.MaxUnits, p.Units)
	}
	q := Params{PeriodBlocks: 100, UnitBlocks: 10, Units: 8, MaxUnits: 4}.withDefaults()
	if q.MaxUnits != 4 {
		t.Fatalf("explicit MaxUnits clamped: %+v", q)
	}
}
