package noc

import "testing"

func TestMeanHops(t *testing.T) {
	// 4x4 mesh from corner: mean Manhattan distance = mean(r)+mean(c) = 1.5+1.5.
	m := MustNew(DefaultConfig())
	if got := m.MeanHops(); got != 3.0 {
		t.Fatalf("MeanHops = %v, want 3.0", got)
	}
}

func TestUncongestedLatency(t *testing.T) {
	m := MustNew(Config{Rows: 4, Cols: 4, HopCycles: 3, SlotsPerCycle: 1})
	lat := m.Traverse(0)
	// Round trip: 2 * 3 hops * 3 cycles = 18, no queue.
	if lat != 18 {
		t.Fatalf("latency = %d, want 18", lat)
	}
}

func TestCongestionGrowsLatency(t *testing.T) {
	m := MustNew(Config{Rows: 4, Cols: 4, HopCycles: 3, SlotsPerCycle: 0.25})
	// Slam the mesh with back-to-back messages in one cycle.
	first := m.Traverse(100)
	var last int
	for i := 0; i < 40; i++ {
		last = m.Traverse(100)
	}
	if last <= first {
		t.Fatalf("burst did not raise latency: first=%d last=%d", first, last)
	}
}

func TestBacklogDrains(t *testing.T) {
	m := MustNew(Config{Rows: 4, Cols: 4, HopCycles: 3, SlotsPerCycle: 0.5})
	for i := 0; i < 20; i++ {
		m.Traverse(0)
	}
	congested := m.Traverse(1)
	relaxed := m.Traverse(10000)
	if relaxed >= congested {
		t.Fatalf("backlog did not drain: congested=%d relaxed=%d", congested, relaxed)
	}
	if relaxed != 18 {
		t.Fatalf("fully drained latency = %d, want 18", relaxed)
	}
}

func TestStatsAccumulate(t *testing.T) {
	m := MustNew(DefaultConfig())
	for i := 0; i < 10; i++ {
		m.Traverse(0)
	}
	if m.Messages != 10 {
		t.Fatalf("Messages = %d", m.Messages)
	}
	if m.AvgQueueCycles() == 0 {
		t.Fatal("expected queueing in a same-cycle burst")
	}
	m.ResetStats()
	if m.Messages != 0 || m.QueueCycles != 0 {
		t.Fatal("reset failed")
	}
	if m.Backlog() == 0 {
		t.Fatal("reset must not clear congestion state")
	}
}

func TestInvalidConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func BenchmarkTraverse(b *testing.B) {
	m := MustNew(DefaultConfig())
	for i := 0; i < b.N; i++ {
		m.Traverse(uint64(i))
	}
}
