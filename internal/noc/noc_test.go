package noc

import "testing"

func TestMeanHops(t *testing.T) {
	// 4x4 mesh from corner: mean Manhattan distance = mean(r)+mean(c) = 1.5+1.5.
	m := MustNew(DefaultConfig())
	if got := m.MeanHops(); got != 3.0 {
		t.Fatalf("MeanHops = %v, want 3.0", got)
	}
}

func TestUncongestedLatency(t *testing.T) {
	m := MustNew(Config{Rows: 4, Cols: 4, HopCycles: 3, SlotsPerCycle: 1})
	lat := m.Traverse(0)
	// Round trip: 2 * 3 hops * 3 cycles = 18, no queue.
	if lat != 18 {
		t.Fatalf("latency = %d, want 18", lat)
	}
}

func TestCongestionGrowsLatency(t *testing.T) {
	m := MustNew(Config{Rows: 4, Cols: 4, HopCycles: 3, SlotsPerCycle: 0.25})
	// Slam the mesh with back-to-back messages in one cycle.
	first := m.Traverse(100)
	var last int
	for i := 0; i < 40; i++ {
		last = m.Traverse(100)
	}
	if last <= first {
		t.Fatalf("burst did not raise latency: first=%d last=%d", first, last)
	}
}

func TestBacklogDrains(t *testing.T) {
	m := MustNew(Config{Rows: 4, Cols: 4, HopCycles: 3, SlotsPerCycle: 0.5})
	for i := 0; i < 20; i++ {
		m.Traverse(0)
	}
	congested := m.Traverse(1)
	relaxed := m.Traverse(10000)
	if relaxed >= congested {
		t.Fatalf("backlog did not drain: congested=%d relaxed=%d", congested, relaxed)
	}
	if relaxed != 18 {
		t.Fatalf("fully drained latency = %d, want 18", relaxed)
	}
}

func TestStatsAccumulate(t *testing.T) {
	m := MustNew(DefaultConfig())
	for i := 0; i < 10; i++ {
		m.Traverse(0)
	}
	if m.Messages != 10 {
		t.Fatalf("Messages = %d", m.Messages)
	}
	if m.AvgQueueCycles() == 0 {
		t.Fatal("expected queueing in a same-cycle burst")
	}
	m.ResetStats()
	if m.Messages != 0 || m.QueueCycles != 0 {
		t.Fatal("reset failed")
	}
	if m.Backlog() == 0 {
		t.Fatal("reset must not clear congestion state")
	}
}

func TestInvalidConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestFabricServiceRate(t *testing.T) {
	// 4x4 mesh: 2*(4*3+4*3) = 48 directed links; one round trip holds
	// 2*3 hops * 3 cycles = 18 link-cycles; 48/18 = 8/3 messages/cycle.
	got := FabricServiceRate(4, 4, 3)
	want := 48.0 / 18.0
	if got != want {
		t.Fatalf("FabricServiceRate = %v, want %v", got, want)
	}
}

// TestSharedConfigDerivation pins the shared-backlog calibration: the
// N=1 case is exactly the single-core Table 3 constant, the rate grows
// with active cores (freed background share), the per-core share
// shrinks (the emergent-contention direction), and a fully active mesh
// gets the whole fabric.
func TestSharedConfigDerivation(t *testing.T) {
	d := DefaultConfig()
	if SharedConfig(1) != d {
		t.Fatalf("SharedConfig(1) = %+v, want DefaultConfig %+v", SharedConfig(1), d)
	}
	phi := FabricServiceRate(d.Rows, d.Cols, d.HopCycles)
	prevTotal, prevShare := d.SlotsPerCycle, d.SlotsPerCycle
	for n := 2; n <= d.Tiles(); n++ {
		c := SharedConfig(n)
		if c.Rows != d.Rows || c.Cols != d.Cols || c.HopCycles != d.HopCycles {
			t.Fatalf("SharedConfig(%d) changed the geometry: %+v", n, c)
		}
		if c.SlotsPerCycle <= prevTotal {
			t.Fatalf("total rate not increasing at n=%d: %v <= %v", n, c.SlotsPerCycle, prevTotal)
		}
		if share := c.SlotsPerCycle / float64(n); share >= prevShare {
			t.Fatalf("per-core share not shrinking at n=%d: %v >= %v", n, share, prevShare)
		} else {
			prevShare = share
		}
		prevTotal = c.SlotsPerCycle
	}
	full := SharedConfig(d.Tiles()).SlotsPerCycle
	if diff := full - phi; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("fully active mesh rate %v, want fabric rate %v", full, phi)
	}
	// Core counts beyond the Table 3 mesh move up the scale-out ladder
	// (TestSharedConfigScalesBeyondTable3); beyond the largest mesh they
	// clamp to its full fabric.
	if SharedConfig(100).Tiles() != 256 {
		t.Fatalf("SharedConfig(100) mesh = %+v, want 16x16", SharedConfig(100))
	}
	if SharedConfig(MaxTiles+100) != SharedConfig(MaxTiles) {
		t.Fatal("overfull 16x16 mesh not clamped")
	}
}

func BenchmarkTraverse(b *testing.B) {
	m := MustNew(DefaultConfig())
	for i := 0; i < b.N; i++ {
		m.Traverse(uint64(i))
	}
}

// TestSharedConfigScalesBeyondTable3 pins the scale-out ladder: n <= 16
// stays bit-identical on the 4x4 mesh (the golden corpus depends on
// it), 17..64 seats on an 8x8, 65..256 on a 16x16, and at each size the
// rate is the active tiles' fair share of the fabric — a fully active
// mesh gets the whole fabric rate.
func TestSharedConfigScalesBeyondTable3(t *testing.T) {
	d := DefaultConfig()
	for n := 1; n <= d.Tiles(); n++ {
		if got := SharedConfig(n); got.Rows != 4 || got.Cols != 4 {
			t.Fatalf("SharedConfig(%d) left the Table 3 mesh: %+v", n, got)
		}
	}
	cases := []struct {
		n, rows int
	}{{17, 8}, {64, 8}, {65, 16}, {MaxTiles, 16}}
	for _, tc := range cases {
		c := SharedConfig(tc.n)
		if c.Rows != tc.rows || c.Cols != tc.rows {
			t.Fatalf("SharedConfig(%d) mesh = %dx%d, want %dx%d", tc.n, c.Rows, c.Cols, tc.rows, tc.rows)
		}
		if c.HopCycles != d.HopCycles {
			t.Fatalf("SharedConfig(%d) changed hop latency: %+v", tc.n, c)
		}
		phi := FabricServiceRate(c.Rows, c.Cols, c.HopCycles)
		want := phi * float64(tc.n) / float64(c.Tiles())
		if diff := c.SlotsPerCycle - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("SharedConfig(%d) rate = %v, want fair share %v", tc.n, c.SlotsPerCycle, want)
		}
	}
	full := SharedConfig(MaxTiles)
	phi := FabricServiceRate(full.Rows, full.Cols, full.HopCycles)
	if diff := full.SlotsPerCycle - phi; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("fully active 16x16 rate %v, want fabric rate %v", full.SlotsPerCycle, phi)
	}
}

// TestDrainDeadline pins the fabric's next-idle-point probe: it is pure,
// tracks the lazy drain exactly, and a Traverse at the deadline sees an
// empty queue.
func TestDrainDeadline(t *testing.T) {
	m := MustNew(Config{Rows: 4, Cols: 4, HopCycles: 3, SlotsPerCycle: 0.5})
	if got := m.DrainDeadline(0); got != 0 {
		t.Fatalf("empty mesh deadline = %d, want now", got)
	}
	for i := 0; i < 4; i++ {
		m.Traverse(10)
	}
	// 4 messages at 0.5/cycle need 8 cycles of service.
	if got := m.DrainDeadline(10); got != 18 {
		t.Fatalf("deadline = %d, want 18", got)
	}
	// Pure: asking later must not disturb state, and the answer shifts
	// with the lazy drain.
	if got := m.DrainDeadline(14); got != 18 {
		t.Fatalf("deadline at 14 = %d, want 18", got)
	}
	if b := m.Backlog(); b != 4 {
		t.Fatalf("DrainDeadline mutated the backlog: %v", b)
	}
	// At the deadline the queue is empty: a message sees zero queueing.
	if lat := m.Traverse(18); lat != m.UncongestedRoundTrip() {
		t.Fatalf("latency at deadline = %d, want uncongested %d", lat, m.UncongestedRoundTrip())
	}
}
