// Package noc models the on-chip interconnect of the simulated CMP: a
// 4x4 2D mesh with 3 cycles/hop (Table 3) and finite bandwidth.
//
// The model is an open fluid queue: every message adds one slot of work
// to a shared backlog that drains at a fixed rate; a message's latency is
// its hop latency plus the queueing delay it observes. This mechanically
// produces the paper's Figure 11 effect — over-prefetching inflates LLC
// access latency for everyone, including L1-D misses — without simulating
// individual flits.
package noc

import "fmt"

// Config describes the mesh.
type Config struct {
	// Rows, Cols give the mesh dimensions (Table 3: 4x4).
	Rows, Cols int
	// HopCycles is the per-hop latency (Table 3: 3 cycles).
	HopCycles int
	// SlotsPerCycle is the fluid service rate in messages/cycle of the
	// backlog this Config's Mesh models. For a single modeled core it is
	// the share of the fabric left after background traffic from the
	// other 15 tiles; for an N-core scenario (SharedConfig) it is the
	// capacity of the one backlog all N cores' real traffic drains into.
	SlotsPerCycle float64
}

// DefaultConfig mirrors Table 3 for a single modeled core: the 0.32
// slots/cycle are the fabric share left to one core once the other 15
// tiles' background traffic is charged (see SharedConfig, whose N=1
// case this is).
func DefaultConfig() Config {
	return Config{Rows: 4, Cols: 4, HopCycles: 3, SlotsPerCycle: 0.32}
}

// Tiles returns the number of mesh tiles (the CMP core count).
func (c Config) Tiles() int { return c.Rows * c.Cols }

// FabricServiceRate returns the fluid-model service rate of the whole
// mesh in messages/cycle: the number of directed links divided by the
// link-cycles one round-trip message occupies (2 average-length routes
// of HopCycles each). For the Table 3 4x4 mesh this is 48/18 ≈ 2.67.
func FabricServiceRate(rows, cols, hopCycles int) float64 {
	links := 2 * (rows*(cols-1) + cols*(rows-1))
	return float64(links) / (2 * meanHops(rows, cols) * float64(hopCycles))
}

// MaxTiles is the largest mesh the scaled-config ladder reaches: the
// 16x16 mesh of the 256-core scale-out design point (the Confluence
// lineage's "many lean cores, one instruction-supply fabric").
const MaxTiles = 256

// meshFor picks the smallest supported square mesh with at least n
// tiles: the Table 3 4x4 up to 16 cores, then 8x8 and 16x16 for the
// scale-out scenarios. HopCycles stays at the Table 3 value — tile
// geometry, not link latency, is what changes with scale.
func meshFor(n int) Config {
	d := DefaultConfig()
	switch {
	case n <= d.Tiles():
		return d
	case n <= 64:
		d.Rows, d.Cols = 8, 8
	default:
		d.Rows, d.Cols = 16, 16
	}
	return d
}

// SharedConfig derives the mesh configuration for a scenario of n cores
// draining one shared backlog. Up to the 16 tiles of the Table 3 mesh,
// the service rate is the total fabric capacity minus the background
// draw of the remaining (tiles-n) tiles, with the per-tile background
// calibrated so that n=1 reproduces DefaultConfig's single-core share
// exactly:
//
//	rate(n) = Φ - (tiles-n)·(Φ - rate(1))/(tiles-1)
//
// where Φ is FabricServiceRate. Unlike the single-core model — where the
// other 15 cores are a constant — the traffic of the n active cores is
// real: their messages share the backlog, so congestion (the paper's
// Figure 11 effect) is emergent rather than baked in.
//
// Beyond 16 cores the scenario outgrows the 4x4 mesh and moves to the
// smallest square mesh that seats every core (8x8 up to 64, 16x16 up to
// MaxTiles). There is no background-traffic constant to extrapolate at
// those sizes — every tile hosting a modeled core is real traffic — so
// the rate is the n active tiles' fair share of the larger fabric:
//
//	rate(n) = Φ(mesh)·n/tiles(mesh)
//
// which joins the Table 3 ladder continuously in spirit (an all-active
// mesh gets the whole fabric) while keeping every n ≤ 16 value — and
// therefore every existing golden table — bit-identical.
func SharedConfig(n int) Config {
	d := meshFor(n)
	if n <= 1 {
		return d
	}
	tiles := d.Tiles()
	if n > tiles {
		n = tiles
	}
	phi := FabricServiceRate(d.Rows, d.Cols, d.HopCycles)
	if n > DefaultConfig().Tiles() {
		d.SlotsPerCycle = phi * float64(n) / float64(tiles)
		return d
	}
	background := (phi - d.SlotsPerCycle) / float64(tiles-1)
	d.SlotsPerCycle = phi - float64(tiles-n)*background
	return d
}

// Mesh is the interconnect model. The zero value is unusable; use New.
type Mesh struct {
	cfg     Config
	avgHops float64

	backlog   float64
	lastCycle uint64

	// Messages counts total traversals; QueueCycles accumulates queueing
	// delay, so QueueCycles/Messages is the mean congestion penalty.
	Messages    uint64
	QueueCycles uint64
}

// New builds a mesh model.
func New(cfg Config) (*Mesh, error) {
	if cfg.Rows <= 0 || cfg.Cols <= 0 || cfg.HopCycles <= 0 || cfg.SlotsPerCycle <= 0 {
		return nil, fmt.Errorf("noc: invalid config %+v", cfg)
	}
	return &Mesh{cfg: cfg, avgHops: meanHops(cfg.Rows, cfg.Cols)}, nil
}

// MustNew is New for static configs.
func MustNew(cfg Config) *Mesh {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// meanHops returns the expected Manhattan distance between a fixed corner
// core and a uniformly random destination tile — the average route from
// the modeled core to a NUCA slice.
func meanHops(rows, cols int) float64 {
	total, n := 0, 0
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			total += r + c
			n++
		}
	}
	h := float64(total) / float64(n)
	if h < 1 {
		h = 1
	}
	return h
}

// MeanHops exposes the average route length (used by tests and docs).
func (m *Mesh) MeanHops() float64 { return m.avgHops }

// UncongestedRoundTrip returns the queue-free request+response latency,
// the floor every Traverse result sits on.
func (m *Mesh) UncongestedRoundTrip() int {
	return int(2 * m.avgHops * float64(m.cfg.HopCycles))
}

// drain retires backlog according to elapsed cycles.
func (m *Mesh) drain(now uint64) {
	if now > m.lastCycle {
		m.backlog -= float64(now-m.lastCycle) * m.cfg.SlotsPerCycle
		if m.backlog < 0 {
			m.backlog = 0
		}
		m.lastCycle = now
	}
}

// Traverse sends one message (request + response) across the mesh at the
// given cycle and returns its total latency in cycles: two average routes
// of hop latency plus the current queueing delay.
func (m *Mesh) Traverse(now uint64) int {
	m.drain(now)
	queue := int(m.backlog / m.cfg.SlotsPerCycle)
	m.backlog++
	m.Messages++
	m.QueueCycles += uint64(queue)
	return int(2*m.avgHops*float64(m.cfg.HopCycles)) + queue
}

// Backlog exposes the current queued work (messages awaiting service).
func (m *Mesh) Backlog() float64 {
	return m.backlog
}

// DrainDeadline returns the first cycle at or after now by which the
// backlog outstanding at now will have fully drained — the fabric's
// next idle point. It is pure (the lazy drain state is untouched):
// the fluid queue integrates itself inside Traverse, so an event-driven
// kernel needs no mesh tick and no mesh deadline to stay bit-identical;
// the deadline exists so tests and tools can assert the idle invariant
// ("a skipped span adds no mesh work") directly against the model.
func (m *Mesh) DrainDeadline(now uint64) uint64 {
	backlog := m.backlog
	if now > m.lastCycle {
		backlog -= float64(now-m.lastCycle) * m.cfg.SlotsPerCycle
	}
	if backlog <= 0 {
		return now
	}
	cycles := uint64(backlog / m.cfg.SlotsPerCycle)
	for float64(cycles)*m.cfg.SlotsPerCycle < backlog {
		cycles++
	}
	return now + cycles
}

// AvgQueueCycles returns the mean queueing delay per message so far.
func (m *Mesh) AvgQueueCycles() float64 {
	if m.Messages == 0 {
		return 0
	}
	return float64(m.QueueCycles) / float64(m.Messages)
}

// ResetStats clears counters but keeps the congestion state.
func (m *Mesh) ResetStats() {
	m.Messages = 0
	m.QueueCycles = 0
}
