// Package xrand provides small, fast, deterministic random number
// generators and distributions used by the synthetic workload generator.
//
// Everything in this package is seed-deterministic: the same seed always
// produces the same sequence on every platform, which makes every
// experiment in the repository exactly reproducible.
package xrand

import (
	"math"
	"sync"
)

// Source is a deterministic 64-bit PRNG based on xoshiro256**, seeded via
// splitmix64. The zero value is not usable; construct with New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given seed using splitmix64 so that
// even adjacent seeds produce uncorrelated streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	// Avoid the (astronomically unlikely) all-zero state.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 1
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	return r.Float64() < p
}

// Bernoulli is a fixed-probability boolean sampler with the comparison
// threshold precomputed. Draw consumes exactly one Uint64 and returns
// exactly what Source.Bool(p) would have returned for the same draw, so
// replacing a hot-loop Bool(p) with a Bernoulli never changes results.
type Bernoulli struct {
	// threshold is p * 2^53; Float64() < p  ⇔  float64(u>>11) < p*2^53,
	// and both scalings by the power of two are exact.
	threshold float64
}

// NewBernoulli builds a sampler that draws true with probability p.
func NewBernoulli(p float64) Bernoulli {
	return Bernoulli{threshold: p * (1 << 53)}
}

// Draw returns true with the sampler's probability, consuming one Uint64
// from src.
func (b Bernoulli) Draw(src *Source) bool {
	return float64(src.Uint64()>>11) < b.threshold
}

// NormFloat64 returns a standard normal variate (Box-Muller, one value per
// call for simplicity and determinism).
func (r *Source) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		if u1 == 0 {
			continue
		}
		u2 := r.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// LogNormal returns exp(N(mu, sigma)).
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Geometric returns a geometric variate with success probability p, i.e.
// the number of failures before the first success (support {0,1,2,...}).
func (r *Source) Geometric(p float64) int {
	if p <= 0 || p >= 1 {
		if p >= 1 {
			return 0
		}
		panic("xrand: Geometric requires 0 < p <= 1")
	}
	u := r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return int(math.Log(u) / math.Log(1-p))
}

// zipfGuideBuckets sizes the guide table that narrows Next's binary
// search: bucket k covers u in [k/buckets, (k+1)/buckets). At 4096
// buckets the largest samplers in the tree (the 8192-block data-address
// draw in every core's dispatch loop) resolve in one or two probes;
// tables are shared process-wide, so the extra 16 KiB is paid once per
// distinct (n, s), not per core.
const zipfGuideBuckets = 4096

// zipfTable is the immutable precomputed half of a Zipf sampler. The
// CDF and guide are pure functions of (n, s), so every sampler over the
// same shape shares one table; only the RNG stream is per-sampler.
type zipfTable struct {
	cdf []float64
	// guide[k] is the first rank whose cdf covers u = k/zipfGuideBuckets;
	// the answer for any u in bucket k lies in [guide[k], guide[k+1]].
	guide []int32
}

// zipfTables caches tables by shape: the math.Pow sweep over n ranks is
// a measurable slice of per-core construction in many-core scenarios,
// and the values are identical every time.
var zipfTables sync.Map

type zipfKey struct {
	n int
	s float64
}

// Zipf draws ranks in [0, n) with probability proportional to
// 1/(rank+1)^s using precomputed cumulative weights. It is the workhorse
// behind hot/cold function popularity in the workload generator and the
// per-load data-address draw in the core's dispatch loop, where a guide
// table cuts the CDF binary search from ~log2(n) probes to one or two.
type Zipf struct {
	*zipfTable
	src *Source
}

// NewZipf builds a Zipf sampler over n ranks with exponent s > 0.
// Samplers with the same (n, s) share one immutable CDF/guide table.
func NewZipf(src *Source, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	key := zipfKey{n, s}
	if v, ok := zipfTables.Load(key); ok {
		return &Zipf{zipfTable: v.(*zipfTable), src: src}
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	// Build the guide in one sweep: guide[k] = first i with
	// cdf[i] >= k/buckets (clamped to n-1, matching Next's hi bound).
	guide := make([]int32, zipfGuideBuckets+1)
	i := 0
	for k := 0; k <= zipfGuideBuckets; k++ {
		u := float64(k) / zipfGuideBuckets
		for i < n-1 && cdf[i] < u {
			i++
		}
		guide[k] = int32(i)
	}
	v, _ := zipfTables.LoadOrStore(key, &zipfTable{cdf: cdf, guide: guide})
	return &Zipf{zipfTable: v.(*zipfTable), src: src}
}

// Next returns the next Zipf-distributed rank in [0, n). The guide table
// only narrows the search interval; the returned rank is identical to a
// full binary search for every u.
func (z *Zipf) Next() int {
	u := z.src.Float64()
	k := int(u * zipfGuideBuckets) // u in [0,1) ⇒ k in [0, buckets)
	lo, hi := int(z.guide[k]), int(z.guide[k+1])
	// Binary search for the first cdf entry >= u within [lo, hi].
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the number of ranks the sampler draws from.
func (z *Zipf) N() int { return len(z.cdf) }
