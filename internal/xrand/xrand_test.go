package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical values", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero seed produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestBoolProbability(t *testing.T) {
	r := New(3)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate = %v, want ~0.3", got)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	n := 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(13)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(1.0, 0.5); v <= 0 {
			t.Fatalf("LogNormal returned non-positive %v", v)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(17)
	p := 0.25
	n := 100000
	sum := 0
	for i := 0; i < n; i++ {
		g := r.Geometric(p)
		if g < 0 {
			t.Fatalf("Geometric returned negative %d", g)
		}
		sum += g
	}
	mean := float64(sum) / float64(n)
	want := (1 - p) / p // 3.0
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("geometric mean = %v, want ~%v", mean, want)
	}
}

func TestGeometricEdge(t *testing.T) {
	r := New(19)
	if g := r.Geometric(1.0); g != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", g)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(23)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	n := 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must dominate rank 10, which must dominate rank 90.
	if !(counts[0] > counts[10] && counts[10] > counts[90]) {
		t.Fatalf("Zipf not skewed: c0=%d c10=%d c90=%d", counts[0], counts[10], counts[90])
	}
	// Rank 0 frequency should be roughly 1/H(100) ~ 0.192 for s=1.
	got := float64(counts[0]) / float64(n)
	if got < 0.15 || got > 0.25 {
		t.Fatalf("Zipf rank-0 frequency = %v, want ~0.19", got)
	}
}

func TestZipfBounds(t *testing.T) {
	r := New(29)
	z := NewZipf(r, 17, 0.8)
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v < 0 || v >= 17 {
			t.Fatalf("Zipf out of range: %d", v)
		}
	}
	if z.N() != 17 {
		t.Fatalf("N() = %d, want 17", z.N())
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkZipfNext(b *testing.B) {
	r := New(1)
	z := NewZipf(r, 4096, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}

// TestZipfGuideMatchesReference verifies the guide table is a pure
// accelerator: for every draw the narrowed binary search returns exactly
// the rank a full lower-bound search over the CDF would.
func TestZipfGuideMatchesReference(t *testing.T) {
	for _, n := range []int{1, 2, 3, 17, 255, 256, 257, 4096, 12288} {
		z := NewZipf(New(uint64(n)), n, 0.8)
		ref := New(99)
		for i := 0; i < 20000; i++ {
			u := ref.Float64()
			// Reference: first cdf entry >= u over the full range.
			lo, hi := 0, len(z.cdf)-1
			for lo < hi {
				mid := (lo + hi) / 2
				if z.cdf[mid] < u {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			k := int(u * zipfGuideBuckets)
			glo, ghi := int(z.guide[k]), int(z.guide[k+1])
			for glo < ghi {
				mid := (glo + ghi) / 2
				if z.cdf[mid] < u {
					glo = mid + 1
				} else {
					ghi = mid
				}
			}
			if glo != lo {
				t.Fatalf("n=%d u=%v: guided search %d != reference %d", n, u, glo, lo)
			}
		}
	}
}

// TestBernoulliMatchesBool verifies the precomputed-threshold sampler
// consumes the same draws and returns the same booleans as Source.Bool.
func TestBernoulliMatchesBool(t *testing.T) {
	for _, p := range []float64{0, 0.01, 0.22, 0.5, 0.999, 1} {
		a, b := New(7), New(7)
		bern := NewBernoulli(p)
		for i := 0; i < 50000; i++ {
			if got, want := bern.Draw(a), b.Bool(p); got != want {
				t.Fatalf("p=%v draw %d: Bernoulli %v != Bool %v", p, i, got, want)
			}
		}
	}
}
