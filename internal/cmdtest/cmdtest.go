// Package cmdtest holds the shared test helper behind every command's
// TestUsageMentionsAllFlags guard: the flag-extraction and doc-comment
// scan live here once, so tightening the guard tightens it for all
// four commands at the same time.
package cmdtest

import (
	"bytes"
	"os"
	"regexp"
	"strings"
	"testing"
)

// flagRE extracts flag names from a FlagSet's -h output ("  -name ...").
var flagRE = regexp.MustCompile(`(?m)^\s+-([a-zA-Z0-9][a-zA-Z0-9-]*)\b`)

// UsageMentionsAllFlags asserts that every flag printed by the
// command's -h output (the parser's ground truth) is mentioned,
// spelled "-name", in the leading doc comment of the mainFile in the
// caller's working directory. A new flag without a doc-comment mention
// fails, so a command's usage text can never silently fall behind its
// implementation.
func UsageMentionsAllFlags(t *testing.T, usage, mainFile string) {
	t.Helper()
	matches := flagRE.FindAllStringSubmatch(usage, -1)
	if len(matches) == 0 {
		t.Fatalf("no flags found in -h output:\n%s", usage)
	}
	src, err := os.ReadFile(mainFile)
	if err != nil {
		t.Fatal(err)
	}
	pkg := bytes.Index(src, []byte("\npackage "))
	if pkg < 0 {
		t.Fatalf("%s has no package clause", mainFile)
	}
	doc := string(src[:pkg])
	seen := make(map[string]bool)
	for _, m := range matches {
		name := m[1]
		if seen[name] {
			continue
		}
		seen[name] = true
		if !strings.Contains(doc, "-"+name) {
			t.Errorf("%s's doc comment does not mention -%s", mainFile, name)
		}
	}
}
