package program

import (
	"testing"

	"shotgun/internal/isa"
)

func smallParams() GenParams {
	return GenParams{NumAppFuncs: 60, NumKernelFuncs: 16}
}

func TestGenerateValid(t *testing.T) {
	p, err := Generate(smallParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(smallParams(), 42)
	b := MustGenerate(smallParams(), 42)
	if len(a.Funcs) != len(b.Funcs) {
		t.Fatalf("function counts differ: %d vs %d", len(a.Funcs), len(b.Funcs))
	}
	for i := range a.Funcs {
		fa, fb := a.Funcs[i], b.Funcs[i]
		if fa.Entry() != fb.Entry() || len(fa.Blocks) != len(fb.Blocks) {
			t.Fatalf("function %d differs between runs", i)
		}
		for j := range fa.Blocks {
			if fa.Blocks[j] != fb.Blocks[j] {
				t.Fatalf("function %d block %d differs: %+v vs %+v", i, j, fa.Blocks[j], fb.Blocks[j])
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := MustGenerate(smallParams(), 1)
	b := MustGenerate(smallParams(), 2)
	same := true
	for i := range a.Funcs {
		if a.Funcs[i].Entry() != b.Funcs[i].Entry() || len(a.Funcs[i].Blocks) != len(b.Funcs[i].Blocks) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical programs")
	}
}

func TestGenerateManySeedsValidate(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		p, err := Generate(smallParams(), seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !p.WeakestLayerPreserved() {
			t.Fatalf("seed %d: trap entries not above kernel internals", seed)
		}
	}
}

func TestLayoutDisjoint(t *testing.T) {
	p := MustGenerate(smallParams(), 7)
	type span struct{ lo, hi isa.Addr }
	var spans []span
	for _, f := range p.Funcs {
		spans = append(spans, span{f.Entry(), f.End()})
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			if a.lo < b.hi && b.lo < a.hi {
				t.Fatalf("functions %d and %d overlap: [%v,%v) vs [%v,%v)", i, j, a.lo, a.hi, b.lo, b.hi)
			}
		}
	}
}

func TestKernelAddressSeparation(t *testing.T) {
	params := smallParams()
	p := MustGenerate(params, 3)
	for _, f := range p.Funcs {
		inKernel := f.Entry() >= 0x7f00_0000_0000
		wantKernel := f.Role != RoleApp
		if inKernel != wantKernel {
			t.Fatalf("function %d (%v) at %v: wrong address space", f.ID, f.Role, f.Entry())
		}
	}
}

func TestMaxCallDepthBounded(t *testing.T) {
	p := MustGenerate(smallParams(), 5)
	d := p.MaxCallDepth()
	// Defaults: 6 app layers + trap + 3 kernel layers + 1.
	if d <= 0 || d > 6+1+3+1 {
		t.Fatalf("MaxCallDepth = %d, want in (0, 11]", d)
	}
}

func TestStaticBranchesCounted(t *testing.T) {
	p := MustGenerate(smallParams(), 9)
	n := p.StaticBranches()
	total := 0
	for _, f := range p.Funcs {
		total += len(f.Blocks)
	}
	if n <= 0 || n > total {
		t.Fatalf("StaticBranches = %d, total blocks = %d", n, total)
	}
	// Nearly every block ends in a branch (BranchNone is rare).
	if float64(n) < 0.7*float64(total) {
		t.Fatalf("too few branches: %d of %d blocks", n, total)
	}
}

func TestFunctionGeometry(t *testing.T) {
	p := MustGenerate(smallParams(), 11)
	for _, f := range p.Funcs {
		if f.SizeBlocks() < 1 {
			t.Fatalf("function %d has %d cache blocks", f.ID, f.SizeBlocks())
		}
		if f.End() <= f.Entry() {
			t.Fatalf("function %d empty range", f.ID)
		}
	}
	if p.CodeBytes() == 0 {
		t.Fatal("zero code bytes")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	fresh := func() *Program { return MustGenerate(smallParams(), 13) }

	p := fresh()
	p.Funcs[0].Blocks[0].NumInstr = 0
	if p.Validate() == nil {
		t.Error("zero-size block accepted")
	}

	p = fresh()
	p.Funcs[0].Blocks[len(p.Funcs[0].Blocks)-1].Kind = isa.BranchJump
	if p.Validate() == nil {
		t.Error("function not ending in return accepted")
	}

	p = fresh()
	// Find a call block and cross-wire it to a trap entry.
	done := false
	for _, f := range p.Funcs {
		for i, b := range f.Blocks {
			if b.Kind == isa.BranchCall {
				f.Blocks[i].Callee = p.TrapEntries[0]
				done = true
				break
			}
		}
		if done {
			break
		}
	}
	if done && p.Validate() == nil {
		t.Error("call to trap entry accepted")
	}

	p = fresh()
	// Break layering: find a call and point it at a same-layer function.
	done = false
	for _, f := range p.Funcs {
		if f.Role != RoleApp {
			continue
		}
		for i, b := range f.Blocks {
			if b.Kind != isa.BranchCall {
				continue
			}
			for _, g := range p.Funcs {
				if g.Role == RoleApp && g.Layer == f.Layer && g.ID != f.ID {
					f.Blocks[i].Callee = g.ID
					done = true
					break
				}
			}
			break
		}
		if done {
			break
		}
	}
	if done && p.Validate() == nil {
		t.Error("same-layer call accepted")
	}
}

func TestGenerateRejectsTinyPrograms(t *testing.T) {
	_, err := Generate(GenParams{NumAppFuncs: 2, AppLayers: 6, NumKernelFuncs: 4}, 1)
	if err == nil {
		t.Fatal("expected error for fewer app functions than layers")
	}
}

func TestRoleString(t *testing.T) {
	if RoleApp.String() != "app" || RoleTrapEntry.String() != "trap-entry" || RoleKernelInternal.String() != "kernel" {
		t.Fatal("role names wrong")
	}
}

func BenchmarkGenerate(b *testing.B) {
	params := GenParams{NumAppFuncs: 800, NumKernelFuncs: 120}
	for i := 0; i < b.N; i++ {
		MustGenerate(params, uint64(i))
	}
}
