package program

import (
	"fmt"
	"math"
	"sort"

	"shotgun/internal/isa"
	"shotgun/internal/xrand"
)

// GenParams parameterizes synthetic program generation. The six workload
// profiles in package workload are instances of this struct tuned so that
// the resulting instruction and branch working sets reproduce the relative
// behaviour of the paper's commercial workloads (Table 1, Figures 3 and 4).
type GenParams struct {
	// NumAppFuncs and NumKernelFuncs set the code-base scale; together
	// with the function size distribution they determine the total
	// instruction footprint.
	NumAppFuncs    int
	NumKernelFuncs int
	// TrapEntryFrac is the fraction of kernel functions that are trap
	// entries (the rest are kernel-internal callees).
	TrapEntryFrac float64

	// AppLayers / KernelLayers bound call depth (layered acyclic calls).
	AppLayers    int
	KernelLayers int
	// LayerDecay sets how function counts shrink per layer: the share of
	// functions in layer L is proportional to LayerDecay^L. Leaves
	// (layer 0) therefore dominate, like real utility code.
	LayerDecay float64

	// FnBlocksLogMean / FnBlocksLogSigma give the lognormal distribution
	// of function sizes measured in static basic blocks; MaxFnBlocks
	// caps the tail.
	FnBlocksLogMean  float64
	FnBlocksLogSigma float64
	MaxFnBlocks      int

	// BlockInstrMean is the mean number of instructions per static basic
	// block (geometrically distributed, capped at isa.MaxBlockInstrs).
	BlockInstrMean float64

	// Terminator mix for non-final blocks. Remaining probability mass
	// falls through (BranchNone). CondFrac branches steer local control
	// flow; CallFrac/TrapFrac/JumpFrac/EarlyRetFrac are the global ones.
	CondFrac     float64
	CallFrac     float64
	JumpFrac     float64
	TrapFrac     float64
	EarlyRetFrac float64

	// LoopFrac is the fraction of conditional branches that are loop
	// back-edges; LoopMeanIters their mean trip count.
	LoopFrac      float64
	LoopMeanIters float64

	// LeafyFrac is the fraction of functions that are compute-heavy
	// ("leafy"): roughly twice as large, with few call sites and more
	// loops. Leafy functions produce the long spatial regions in the
	// tail of the paper's Figure 3 distribution.
	LeafyFrac float64

	// CondSkipMax / JumpSkipMax bound forward displacement (in blocks)
	// of local branches — the short offsets of Section 3.1.
	CondSkipMax int
	JumpSkipMax int

	// ZipfS is the callee-popularity skew. Smaller values flatten the
	// popularity curve and blow up the dynamic branch working set (the
	// Oracle/DB2 regime); larger values concentrate execution in a few
	// hot functions (the Nutch regime).
	ZipfS float64

	// FnGapBlocksMax pads functions apart by up to this many cache
	// blocks, decorrelating cache-set placement.
	FnGapBlocksMax int

	// AppBase / KernelBase place the two code images in the 48-bit VA.
	AppBase    isa.Addr
	KernelBase isa.Addr
}

// setDefaults fills zero-valued fields with sane defaults so tests can
// specify only what they care about.
func (g *GenParams) setDefaults() {
	if g.NumAppFuncs == 0 {
		g.NumAppFuncs = 200
	}
	if g.NumKernelFuncs == 0 {
		g.NumKernelFuncs = 40
	}
	if g.TrapEntryFrac == 0 {
		g.TrapEntryFrac = 0.25
	}
	if g.AppLayers == 0 {
		g.AppLayers = 6
	}
	if g.KernelLayers == 0 {
		g.KernelLayers = 3
	}
	if g.LayerDecay == 0 {
		g.LayerDecay = 0.78
	}
	if g.FnBlocksLogMean == 0 {
		g.FnBlocksLogMean = math.Log(9)
	}
	if g.FnBlocksLogSigma == 0 {
		g.FnBlocksLogSigma = 0.8
	}
	if g.MaxFnBlocks == 0 {
		g.MaxFnBlocks = 120
	}
	if g.BlockInstrMean == 0 {
		g.BlockInstrMean = 5.5
	}
	if g.CondFrac == 0 {
		g.CondFrac = 0.58
	}
	if g.CallFrac == 0 {
		g.CallFrac = 0.18
	}
	if g.JumpFrac == 0 {
		g.JumpFrac = 0.05
	}
	if g.TrapFrac == 0 {
		g.TrapFrac = 0.01
	}
	if g.EarlyRetFrac == 0 {
		g.EarlyRetFrac = 0.02
	}
	if g.LoopFrac == 0 {
		g.LoopFrac = 0.18
	}
	if g.LoopMeanIters == 0 {
		g.LoopMeanIters = 5
	}
	if g.LeafyFrac == 0 {
		g.LeafyFrac = 0.35
	}
	if g.CondSkipMax == 0 {
		g.CondSkipMax = 6
	}
	if g.JumpSkipMax == 0 {
		g.JumpSkipMax = 8
	}
	if g.ZipfS == 0 {
		g.ZipfS = 0.9
	}
	if g.FnGapBlocksMax == 0 {
		g.FnGapBlocksMax = 2
	}
	if g.AppBase == 0 {
		g.AppBase = 0x0000_4000_0000
	}
	if g.KernelBase == 0 {
		g.KernelBase = 0x7f00_0000_0000
	}
}

// Generate builds a synthetic program from params, deterministically in
// seed. The returned program always passes Validate.
func Generate(params GenParams, seed uint64) (*Program, error) {
	params.setDefaults()
	if params.NumAppFuncs < params.AppLayers {
		return nil, fmt.Errorf("program: need at least one app function per layer (%d < %d)",
			params.NumAppFuncs, params.AppLayers)
	}
	rng := xrand.New(seed)
	b := &builder{p: params, rng: rng, prog: &Program{}}
	b.build()
	if err := b.prog.Validate(); err != nil {
		return nil, fmt.Errorf("program: generated program invalid: %w", err)
	}
	return b.prog, nil
}

// MustGenerate is Generate for callers with static parameters (profiles,
// examples, tests) where failure indicates a bug.
func MustGenerate(params GenParams, seed uint64) *Program {
	p, err := Generate(params, seed)
	if err != nil {
		panic(err)
	}
	return p
}

type builder struct {
	p    GenParams
	rng  *xrand.Source
	prog *Program

	// popRank[id] is the popularity rank of function id within its role
	// group (0 = hottest). Callee selection Zipf-samples ranks.
	popRank []int

	// rankedByGroup[g] lists the callable functions of role group g
	// (trap entries excluded) hottest-first; rankedTraps lists trap
	// entries hottest-first. Precomputed once so calleeCandidates is a
	// filter over an already-sorted list instead of a per-function
	// scan-and-sort of the whole program.
	rankedByGroup [2][]FuncID
	rankedTraps   []FuncID
}

func (b *builder) setRank(id FuncID, rank int) {
	for len(b.popRank) <= int(id) {
		b.popRank = append(b.popRank, 0)
	}
	b.popRank[id] = rank
}

func (b *builder) build() {

	// --- Function skeletons: IDs, roles, layers, popularity. ---
	appIDs := b.makeGroup(b.p.NumAppFuncs, b.p.AppLayers, RoleApp)

	numEntries := int(math.Max(1, math.Round(b.p.TrapEntryFrac*float64(b.p.NumKernelFuncs))))
	numInternal := b.p.NumKernelFuncs - numEntries
	b.makeGroup(numInternal, b.p.KernelLayers, RoleKernelInternal)
	entryIDs := b.makeEntries(numEntries, b.p.KernelLayers)

	b.prog.AppFuncs = appIDs
	b.prog.TrapEntries = entryIDs

	// --- Bodies: blocks, terminators, call targets. ---
	b.prepareCandidates()
	for _, f := range b.prog.Funcs {
		b.fillBody(f)
	}

	// --- Layout: assign contiguous addresses with gaps. ---
	b.layout()
}

// makeGroup creates n functions of the given role spread across layers
// with geometric decay, guaranteeing every layer above 0 has candidates
// below it.
func (b *builder) makeGroup(n, layers int, role Role) []FuncID {
	if n == 0 {
		return nil
	}
	ids := make([]FuncID, 0, n)
	// Layer shares ~ decay^L, with layer 0 forced non-empty.
	weights := make([]float64, layers)
	sum := 0.0
	for l := 0; l < layers; l++ {
		weights[l] = math.Pow(b.p.LayerDecay, float64(l))
		sum += weights[l]
	}
	for i := 0; i < n; i++ {
		layer := 0
		if i >= layers { // the first `layers` functions seed one per layer
			u := b.rng.Float64() * sum
			for l := 0; l < layers; l++ {
				u -= weights[l]
				if u < 0 {
					layer = l
					break
				}
			}
		} else {
			layer = i % layers
		}
		id := FuncID(len(b.prog.Funcs))
		name := fmt.Sprintf("app_%d", id)
		if role == RoleKernelInternal {
			name = fmt.Sprintf("kern_%d", id)
		}
		f := &Function{ID: id, Name: name, Role: role, Layer: layer}
		b.prog.Funcs = append(b.prog.Funcs, f)
		ids = append(ids, id)
	}
	// Popularity: a random permutation of the group.
	perm := b.permute(len(ids))
	for r, idx := range perm {
		b.setRank(ids[idx], r)
	}
	return ids
}

// makeEntries creates trap-entry functions one layer above all
// kernel-internal layers.
func (b *builder) makeEntries(n, kernelLayers int) []FuncID {
	ids := make([]FuncID, 0, n)
	for i := 0; i < n; i++ {
		id := FuncID(len(b.prog.Funcs))
		f := &Function{ID: id, Name: fmt.Sprintf("trap_%d", id), Role: RoleTrapEntry, Layer: kernelLayers}
		b.prog.Funcs = append(b.prog.Funcs, f)
		ids = append(ids, id)
	}
	perm := b.permute(len(ids))
	for r, idx := range perm {
		b.setRank(ids[idx], r)
	}
	return ids
}

func (b *builder) permute(n int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := b.rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// calleeLayerWindow bounds how far down the layer stack a call may jump.
// Restricting calls to nearby layers makes call trees genuinely deep
// (layered software descends through abstraction levels) instead of
// collapsing onto the leaf layers.
const calleeLayerWindow = 3

// prepareCandidates sorts each role group's callable functions (and the
// trap entries) by popularity once, after the skeletons exist. Popularity
// ranks are unique within a group, so the sorted order is unique and
// calleeCandidates' output is exactly what the per-function
// scan-and-sort used to produce.
func (b *builder) prepareCandidates() {
	for _, g := range b.prog.Funcs {
		if g.Role == RoleTrapEntry {
			continue
		}
		grp := roleGroup(g.Role)
		b.rankedByGroup[grp] = append(b.rankedByGroup[grp], g.ID)
	}
	for grp := range b.rankedByGroup {
		ids := b.rankedByGroup[grp]
		sort.Slice(ids, func(i, j int) bool { return b.popRank[ids[i]] < b.popRank[ids[j]] })
	}
	b.rankedTraps = append([]FuncID(nil), b.prog.TrapEntries...)
	sort.Slice(b.rankedTraps, func(i, j int) bool {
		return b.popRank[b.rankedTraps[i]] < b.popRank[b.rankedTraps[j]]
	})
}

// calleeCandidates returns the functions f may legally call, hottest
// first, so a Zipf draw over the slice index yields popularity-skewed
// call graphs. Candidates come from the window of layers directly below
// f; if that window is empty, any lower layer is allowed.
func (b *builder) calleeCandidates(f *Function) []FuncID {
	ranked := b.rankedByGroup[roleGroup(f.Role)]
	pick := func(minLayer int) []FuncID {
		var out []FuncID
		for _, id := range ranked {
			g := b.prog.Funcs[id]
			if id == f.ID {
				continue
			}
			if g.Layer < f.Layer && g.Layer >= minLayer {
				out = append(out, id)
			}
		}
		return out
	}
	out := pick(f.Layer - calleeLayerWindow)
	if len(out) == 0 {
		out = pick(0)
	}
	return out
}

// trapCandidates returns trap entries hottest first.
func (b *builder) trapCandidates() []FuncID {
	return b.rankedTraps
}

func (b *builder) fnNumBlocks(logBoost float64) int {
	n := int(math.Round(b.rng.LogNormal(b.p.FnBlocksLogMean+logBoost, b.p.FnBlocksLogSigma)))
	if n < 2 {
		n = 2
	}
	if n > b.p.MaxFnBlocks {
		n = b.p.MaxFnBlocks
	}
	return n
}

func (b *builder) blockInstrs() int {
	p := 1 / b.p.BlockInstrMean
	n := 1 + b.rng.Geometric(p)
	if n > isa.MaxBlockInstrs {
		n = isa.MaxBlockInstrs
	}
	return n
}

// condBias draws a static taken-probability from a mixture dominated by
// strongly biased branches (easy for TAGE), a moderately biased slice,
// and a small hard slice that produces the residual misprediction rate
// (a few mispredictions per kilo-instruction, as on real server code).
func (b *builder) condBias() float64 {
	u := b.rng.Float64()
	switch {
	case u < 0.62: // rarely taken
		return 0.01 + 0.05*b.rng.Float64()
	case u < 0.90: // mostly taken
		return 0.94 + 0.05*b.rng.Float64()
	case u < 0.97: // moderately biased
		if b.rng.Bool(0.5) {
			return 0.10 + 0.10*b.rng.Float64()
		}
		return 0.80 + 0.10*b.rng.Float64()
	default: // hard to predict
		return 0.40 + 0.20*b.rng.Float64()
	}
}

func (b *builder) fillBody(f *Function) {
	// Leafy (compute-heavy) functions: larger bodies, few calls, more
	// loops. Glue functions: normal size, call-dense.
	leafy := b.rng.Bool(b.p.LeafyFrac)
	condFrac, callFrac, trapFrac, loopFrac := b.p.CondFrac, b.p.CallFrac, b.p.TrapFrac, b.p.LoopFrac
	sizeBoost := 0.0
	if leafy {
		sizeBoost = 0.7 // e^0.7 ~ 2x block count
		condFrac += 0.75 * callFrac
		callFrac *= 0.25
		trapFrac *= 0.25
		loopFrac *= 1.4
	}

	nBlocks := b.fnNumBlocks(sizeBoost)
	callees := b.calleeCandidates(f)
	var calleeZipf *xrand.Zipf
	if len(callees) > 0 {
		calleeZipf = xrand.NewZipf(b.rng, len(callees), b.p.ZipfS)
	}
	traps := b.trapCandidates()
	var trapZipf *xrand.Zipf
	if len(traps) > 0 && f.Role == RoleApp {
		trapZipf = xrand.NewZipf(b.rng, len(traps), b.p.ZipfS)
	}

	f.Blocks = make([]StaticBlock, nBlocks)
	// loopBarrier prevents loop back-edges from overlapping: each new
	// back-edge may only target blocks after the previous back-edge.
	// Overlapping loops would compound multiplicatively and produce
	// unbounded per-invocation execution.
	loopBarrier := 0
	for i := 0; i < nBlocks; i++ {
		blk := StaticBlock{NumInstr: b.blockInstrs(), Callee: NoFunc}
		if i == nBlocks-1 {
			blk.Kind = f.RetKind()
			f.Blocks[i] = blk
			break
		}
		u := b.rng.Float64()
		switch {
		case u < condFrac:
			blk.Kind = isa.BranchCond
			if i-loopBarrier >= 1 && b.rng.Bool(loopFrac) {
				// Loop back-edge: jump back 1..4 blocks, staying after
				// the previous loop's back-edge.
				back := 1 + b.rng.Intn(min(4, i-loopBarrier))
				blk.TargetIdx = i - back
				blk.IsLoop = true
				blk.LoopMeanIters = b.p.LoopMeanIters * (0.5 + b.rng.Float64())
				blk.LoopFixed = b.rng.Bool(0.7)
				loopBarrier = i + 1
			} else {
				// Forward skip of 1..CondSkipMax blocks.
				skip := 1 + b.rng.Intn(b.p.CondSkipMax)
				blk.TargetIdx = min(i+1+skip, nBlocks-1)
				blk.Bias = b.condBias()
			}
		case u < condFrac+callFrac && calleeZipf != nil:
			blk.Kind = isa.BranchCall
			blk.Callee = callees[calleeZipf.Next()]
		case u < condFrac+callFrac+b.p.JumpFrac:
			blk.Kind = isa.BranchJump
			skip := 1 + b.rng.Intn(b.p.JumpSkipMax)
			blk.TargetIdx = min(i+skip, nBlocks-1)
		case u < condFrac+callFrac+b.p.JumpFrac+trapFrac && trapZipf != nil:
			blk.Kind = isa.BranchTrap
			blk.Callee = traps[trapZipf.Next()]
		case u < condFrac+callFrac+b.p.JumpFrac+trapFrac+b.p.EarlyRetFrac && i > 0:
			blk.Kind = f.RetKind()
		default:
			blk.Kind = isa.BranchNone
		}
		f.Blocks[i] = blk
	}
}

// layout assigns contiguous addresses: application functions from AppBase,
// kernel functions (entries and internals) from KernelBase, in a shuffled
// order so popularity does not correlate with placement.
func (b *builder) layout() {
	var app, kern []*Function
	for _, f := range b.prog.Funcs {
		if f.Role == RoleApp {
			app = append(app, f)
		} else {
			kern = append(kern, f)
		}
	}
	b.place(app, b.p.AppBase)
	b.place(kern, b.p.KernelBase)
}

func (b *builder) place(funcs []*Function, base isa.Addr) {
	perm := b.permute(len(funcs))
	pc := base
	for _, idx := range perm {
		f := funcs[idx]
		for i := range f.Blocks {
			f.Blocks[i].PC = pc
			pc = pc.Add(f.Blocks[i].NumInstr)
		}
		// Align the next function to a block boundary plus a small gap.
		gap := b.rng.Intn(b.p.FnGapBlocksMax + 1)
		pc = (pc + isa.BlockBytes - 1).Block() + isa.Addr(gap*isa.BlockBytes)
	}
}
