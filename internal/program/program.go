// Package program models a synthetic server application as a static code
// image: a set of functions, each a contiguous run of basic blocks, plus a
// layered call graph. The model captures exactly the structure the Shotgun
// paper's insights rest on (Section 3):
//
//   - code is a collection of mostly-small functions with high spatial
//     locality inside each function;
//   - short-offset conditional branches steer local control flow;
//   - long-offset unconditional branches (calls, returns, traps) steer
//     global control flow between functions.
//
// Programs are generated deterministically from a parameter set and a
// seed (see Generate), and are executed by the CFG walker in package
// workload to produce basic-block traces.
package program

import (
	"fmt"

	"shotgun/internal/isa"
)

// FuncID identifies a function within a Program.
type FuncID int32

// NoFunc marks the absence of a callee.
const NoFunc FuncID = -1

// Role classifies a function's position in the software stack.
type Role uint8

const (
	// RoleApp is ordinary application code; the CFG walk starts here.
	RoleApp Role = iota
	// RoleTrapEntry is a kernel trap-handler entry point: entered via
	// BranchTrap, left via BranchTrapRet.
	RoleTrapEntry
	// RoleKernelInternal is kernel code below the trap entries, reached
	// via ordinary calls from trap entries and returning via BranchRet.
	RoleKernelInternal
)

func (r Role) String() string {
	switch r {
	case RoleApp:
		return "app"
	case RoleTrapEntry:
		return "trap-entry"
	case RoleKernelInternal:
		return "kernel"
	}
	return fmt.Sprintf("Role(%d)", uint8(r))
}

// StaticBlock is one static basic block inside a function. The block's
// terminating branch is described by Kind and the target fields.
type StaticBlock struct {
	// PC is the address of the block's first instruction.
	PC isa.Addr
	// NumInstr is the block length in instructions (terminator included).
	NumInstr int
	// Kind is the terminating branch kind. BranchNone means the block
	// falls through (a straight-line run split only for size).
	Kind isa.BranchKind

	// TargetIdx is the index (within the same function) of the taken
	// target block for conditional branches and jumps. Unused otherwise.
	TargetIdx int
	// Callee is the called function for BranchCall / BranchTrap blocks.
	Callee FuncID
	// Bias is the probability a conditional branch is taken (ignored for
	// loop back-edges, which use trip counts instead).
	Bias float64
	// IsLoop marks a backward conditional branch governed by a trip
	// count rather than a static bias.
	IsLoop bool
	// LoopMeanIters is the mean trip count for loop back-edges.
	LoopMeanIters float64
	// LoopFixed makes the trip count deterministic (round(LoopMeanIters)
	// every execution) — the common case for server code iterating over
	// fixed-size structures, and the source of the temporal repetition
	// that history-based prefetchers exploit.
	LoopFixed bool
}

// Function is a contiguous run of static blocks.
type Function struct {
	ID     FuncID
	Name   string
	Role   Role
	Blocks []StaticBlock
	// Layer is the function's position in the layered (acyclic) call
	// graph within its role group: a function only calls functions in
	// strictly lower layers of the same group, bounding dynamic call
	// depth by construction. Traps are exempt (they start the kernel
	// stack on top of the application stack).
	Layer int
}

// Entry returns the function's entry address.
func (f *Function) Entry() isa.Addr { return f.Blocks[0].PC }

// End returns the address just past the function's last instruction.
func (f *Function) End() isa.Addr {
	last := f.Blocks[len(f.Blocks)-1]
	return last.PC.Add(last.NumInstr)
}

// SizeBlocks returns the function's code size in cache blocks.
func (f *Function) SizeBlocks() int {
	return int(f.End().Block().BlockIndex()-f.Entry().Block().BlockIndex()) + 1
}

// RetKind returns the branch kind this function returns with.
func (f *Function) RetKind() isa.BranchKind {
	if f.Role == RoleTrapEntry {
		return isa.BranchTrapRet
	}
	return isa.BranchRet
}

// Program is a complete synthetic code image.
type Program struct {
	Funcs []*Function
	// AppFuncs lists application functions (walk roots); TrapEntries
	// lists the kernel trap-handler entry points BranchTrap sites target.
	AppFuncs    []FuncID
	TrapEntries []FuncID
}

// Func returns the function with the given ID.
func (p *Program) Func(id FuncID) *Function { return p.Funcs[id] }

// CodeBytes returns the total code image size in bytes.
func (p *Program) CodeBytes() uint64 {
	var total uint64
	for _, f := range p.Funcs {
		total += uint64(f.End() - f.Entry())
	}
	return total
}

// StaticBranches returns the total number of static branch instructions
// (blocks terminated by a real branch).
func (p *Program) StaticBranches() int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if b.Kind != isa.BranchNone {
				n++
			}
		}
	}
	return n
}

// MaxCallDepth returns an upper bound on dynamic call-stack depth derived
// from the layering invariant: the longest application chain, plus one
// trap entry, plus the longest kernel-internal chain.
func (p *Program) MaxCallDepth() int {
	maxApp, maxKern := 0, 0
	for _, f := range p.Funcs {
		switch f.Role {
		case RoleApp:
			if f.Layer > maxApp {
				maxApp = f.Layer
			}
		case RoleKernelInternal:
			if f.Layer > maxKern {
				maxKern = f.Layer
			}
		}
	}
	depth := maxApp + 1
	if len(p.TrapEntries) > 0 {
		depth += 1 + maxKern + 1
	}
	return depth
}

// Validate checks the structural invariants every generated program must
// satisfy: contiguous block layout, sane block sizes, acyclic layered
// calls (bounded dynamic call depth), traps targeting trap entries, and
// return kinds consistent with the function's role.
func (p *Program) Validate() error {
	if len(p.Funcs) == 0 {
		return fmt.Errorf("program: no functions")
	}
	for id, f := range p.Funcs {
		if f.ID != FuncID(id) {
			return fmt.Errorf("program: function %d has mismatched ID %d", id, f.ID)
		}
		if len(f.Blocks) == 0 {
			return fmt.Errorf("program: function %d empty", id)
		}
		last := len(f.Blocks) - 1
		if k := f.Blocks[last].Kind; k != f.RetKind() {
			return fmt.Errorf("program: function %d (%v) must end with %v, ends with %v", id, f.Role, f.RetKind(), k)
		}
		pc := f.Blocks[0].PC
		for bi, b := range f.Blocks {
			if b.PC != pc {
				return fmt.Errorf("program: function %d block %d at %v, expected contiguous %v", id, bi, b.PC, pc)
			}
			if b.NumInstr <= 0 || b.NumInstr > isa.MaxBlockInstrs {
				return fmt.Errorf("program: function %d block %d bad size %d", id, bi, b.NumInstr)
			}
			switch b.Kind {
			case isa.BranchCond, isa.BranchJump:
				if b.TargetIdx < 0 || b.TargetIdx >= len(f.Blocks) {
					return fmt.Errorf("program: function %d block %d target %d out of range", id, bi, b.TargetIdx)
				}
				if b.TargetIdx == bi {
					return fmt.Errorf("program: function %d block %d self-targeting branch", id, bi)
				}
				if b.Kind == isa.BranchCond && !b.IsLoop && (b.Bias < 0 || b.Bias > 1) {
					return fmt.Errorf("program: function %d block %d bias %v out of [0,1]", id, bi, b.Bias)
				}
				if b.IsLoop && b.TargetIdx > bi {
					return fmt.Errorf("program: function %d block %d loop back-edge targets forward", id, bi)
				}
			case isa.BranchCall:
				if b.Callee == NoFunc || int(b.Callee) >= len(p.Funcs) {
					return fmt.Errorf("program: function %d block %d bad callee %d", id, bi, b.Callee)
				}
				callee := p.Funcs[b.Callee]
				if callee.Role == RoleTrapEntry {
					return fmt.Errorf("program: function %d calls trap entry %d via call", id, b.Callee)
				}
				if roleGroup(callee.Role) != roleGroup(f.Role) {
					return fmt.Errorf("program: function %d (%v) calls across role groups into %d (%v)",
						id, f.Role, b.Callee, callee.Role)
				}
				if callee.Layer >= f.Layer {
					return fmt.Errorf("program: function %d (layer %d) calls function %d (layer %d): not strictly layered",
						id, f.Layer, b.Callee, callee.Layer)
				}
			case isa.BranchTrap:
				if f.Role != RoleApp {
					return fmt.Errorf("program: non-app function %d contains a trap", id)
				}
				if b.Callee == NoFunc || int(b.Callee) >= len(p.Funcs) {
					return fmt.Errorf("program: function %d block %d bad trap target %d", id, bi, b.Callee)
				}
				if p.Funcs[b.Callee].Role != RoleTrapEntry {
					return fmt.Errorf("program: function %d traps to non-entry function %d", id, b.Callee)
				}
			case isa.BranchRet, isa.BranchTrapRet:
				if b.Kind != f.RetKind() {
					return fmt.Errorf("program: function %d block %d returns with %v, role needs %v",
						id, bi, b.Kind, f.RetKind())
				}
			}
			pc = pc.Add(b.NumInstr)
		}
	}
	for _, id := range p.TrapEntries {
		if p.Funcs[id].Role != RoleTrapEntry {
			return fmt.Errorf("program: TrapEntries lists non-entry function %d", id)
		}
	}
	return nil
}

// roleGroup maps trap entries and kernel internals into one call group so
// trap entries may call kernel internals, while app code stays separate.
func roleGroup(r Role) int {
	if r == RoleApp {
		return 0
	}
	return 1
}

// WeakestLayerPreserved reports whether trap entries sit strictly above
// every kernel-internal layer, which the layered-call invariant needs.
func (p *Program) WeakestLayerPreserved() bool {
	maxKern := -1
	for _, f := range p.Funcs {
		if f.Role == RoleKernelInternal && f.Layer > maxKern {
			maxKern = f.Layer
		}
	}
	for _, id := range p.TrapEntries {
		if p.Funcs[id].Layer <= maxKern {
			return false
		}
	}
	return true
}
