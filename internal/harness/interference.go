package harness

// The interference experiment is the scenario layer's flagship table:
// it reproduces the paper's Figure 11 observation — over-prefetching
// inflates LLC access latency for everyone, including L1-D misses —
// mechanically, by actually running co-runner cores against one shared
// LLC and mesh backlog instead of folding them into a fluid-queue
// constant.

import (
	"fmt"

	"shotgun/internal/footprint"
	"shotgun/internal/prefetch"
	"shotgun/internal/sim"
	"shotgun/internal/stats"
)

// InterferenceWorkload is the workload every interference-scenario core
// runs (Oracle: the largest instruction working set of the suite).
const InterferenceWorkload = "Oracle"

// InterferenceCoRunnerCounts are the default co-runner sweeps: the
// primary core plus 1, 3 or 7 co-runners (2-, 4- and 8-core scenarios).
var InterferenceCoRunnerCounts = []int{1, 3, 7}

// InterferenceMix names one co-runner population: every co-runner core
// runs CoRunner while core 0 always runs the well-behaved 8-bit-vector
// Shotgun.
type InterferenceMix struct {
	Name     string
	CoRunner sim.Config
}

// InterferenceMixes returns the default mechanism mixes: polite
// co-runners (8-bit footprint vectors, like core 0) versus over-
// prefetching ones (entire-region prefetch, Figure 11's worst case).
func InterferenceMixes() []InterferenceMix {
	return []InterferenceMix{
		{Name: "shotgun-8bit", CoRunner: sim.Config{
			Workload: InterferenceWorkload, Mechanism: sim.Shotgun}},
		{Name: "entire-region", CoRunner: sim.Config{
			Workload: InterferenceWorkload, Mechanism: sim.Shotgun,
			RegionMode: prefetch.RegionEntire, Layout: footprint.Layout32}},
	}
}

// interferencePrimary is core 0 of every interference scenario.
func interferencePrimary() sim.Config {
	return sim.Config{Workload: InterferenceWorkload, Mechanism: sim.Shotgun}
}

// InterferenceScenario builds the scenario for one (co-runner count,
// mix) point: the primary core plus coRunners copies of the mix's
// co-runner spec, all over one shared uncore. Zero co-runners is the
// solo (classic single-core) reference.
func InterferenceScenario(coRunners int, mix InterferenceMix) sim.Scenario {
	cores := []sim.Config{interferencePrimary()}
	for i := 0; i < coRunners; i++ {
		cores = append(cores, mix.CoRunner)
	}
	return sim.Scenario{Cores: cores}
}

// InterferenceScenarios declares every simulation the table needs: the
// solo reference plus each (count, mix) point.
func InterferenceScenarios(counts []int, mixes []InterferenceMix) []sim.Scenario {
	scs := []sim.Scenario{sim.SingleCore(interferencePrimary())}
	for _, mix := range mixes {
		for _, n := range counts {
			scs = append(scs, InterferenceScenario(n, mix))
		}
	}
	return scs
}

// InterferenceRow is one measured point of the sweep, reporting the
// primary core's view of the contended uncore.
type InterferenceRow struct {
	Mix       string
	CoRunners int
	// IPC is core 0's instructions per cycle; DataFillCycles its mean
	// L1-D miss fill latency (Figure 11's metric).
	IPC            float64
	DataFillCycles float64
}

// InterferenceTable runs the sweep and renders it. The solo row anchors
// both mixes (with no co-runners the mix is irrelevant).
func InterferenceTable(r *Runner, counts []int, mixes []InterferenceMix) ([]InterferenceRow, *stats.Table) {
	return interferenceTable(r,
		"Interference: core-0 IPC and L1-D fill latency vs co-runners over a shared LLC/NoC (Oracle, shotgun primary)",
		counts, mixes)
}

func interferenceTable(r *Runner, title string, counts []int, mixes []InterferenceMix) ([]InterferenceRow, *stats.Table) {
	r.PrefetchScenarios(InterferenceScenarios(counts, mixes))
	t := stats.NewTable(title,
		"Mix", "Co-runners", "IPC", "L1-D fill cycles")
	var rows []InterferenceRow

	add := func(mixName string, coRunners int, res sim.Result) {
		row := InterferenceRow{
			Mix:            mixName,
			CoRunners:      coRunners,
			IPC:            res.IPC(),
			DataFillCycles: res.AvgDataFillCycles(),
		}
		rows = append(rows, row)
		t.AddRow(mixName, fmt.Sprintf("%d", coRunners),
			fmt.Sprintf("%.3f", row.IPC), fmt.Sprintf("%.1f", row.DataFillCycles))
	}

	solo := r.Run(interferencePrimary())
	add("solo", 0, solo)
	for _, mix := range mixes {
		for _, n := range counts {
			res := r.RunScenario(InterferenceScenario(n, mix))
			add(mix.Name, n, res.Cores[0])
		}
	}
	return rows, t
}

// Interference runs the default sweep (the golden-gated table).
func Interference(r *Runner) ([]InterferenceRow, *stats.Table) {
	return InterferenceTable(r, InterferenceCoRunnerCounts, InterferenceMixes())
}

// Interference64CoRunnerCounts extends the sweep to the core counts the
// event-driven kernel unlocks: the primary plus 15 co-runners fills the
// Table 3 4x4 mesh, plus 63 fills the 8x8 scale-out mesh — both are
// fully active meshes, the exact calibration points of the NoC ladder
// (noc.SharedConfig).
var Interference64CoRunnerCounts = []int{15, 63}

// Interference64 runs the scale-out sweep (golden-gated). On the
// lockstep engine the 64-core point alone made this table intractable
// to gate; the event kernel is what put it in the corpus.
func Interference64(r *Runner) ([]InterferenceRow, *stats.Table) {
	return interferenceTable(r,
		"Interference at scale: core-0 IPC and L1-D fill latency on fully active 16- and 64-core meshes (Oracle, shotgun primary)",
		Interference64CoRunnerCounts, InterferenceMixes())
}

// InterferenceExperiment builds a custom-sweep experiment from CLI-style
// inputs: co-runner counts and mix names (from InterferenceMixes). The
// bench CLI substitutes it for the default interference entry when
// -cores/-mix flags are given.
func InterferenceExperiment(counts []int, mixNames []string) (Experiment, error) {
	if len(counts) == 0 || len(mixNames) == 0 {
		return Experiment{}, fmt.Errorf("harness: interference sweep needs at least one co-runner count and one mix")
	}
	for _, n := range counts {
		if n < 1 || 1+n > sim.MaxCores {
			return Experiment{}, fmt.Errorf("harness: co-runner count %d out of range [1, %d]", n, sim.MaxCores-1)
		}
	}
	known := InterferenceMixes()
	var mixes []InterferenceMix
	for _, name := range mixNames {
		found := false
		for _, m := range known {
			if m.Name == name {
				mixes = append(mixes, m)
				found = true
				break
			}
		}
		if !found {
			var names []string
			for _, m := range known {
				names = append(names, m.Name)
			}
			return Experiment{}, fmt.Errorf("harness: unknown mix %q (have %v)", name, names)
		}
	}
	return Experiment{
		ID:   "interference",
		Desc: "Shared-LLC/NoC interference vs co-runners (custom sweep)",
		Table: func(r *Runner) *stats.Table {
			_, t := InterferenceTable(r, counts, mixes)
			return t
		},
		Scenarios: func() []sim.Scenario { return InterferenceScenarios(counts, mixes) },
	}, nil
}
