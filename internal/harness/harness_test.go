package harness

import (
	"strings"
	"testing"

	"shotgun/internal/sim"
)

// tinyScale keeps harness tests fast.
func tinyScale() Scale {
	return Scale{WarmupInstr: 120_000, MeasureInstr: 150_000, Samples: 1}
}

func TestRunnerMemoizes(t *testing.T) {
	r := NewRunner(tinyScale())
	a := r.baseline("Nutch")
	b := r.baseline("Nutch")
	if a.Core != b.Core {
		t.Fatal("memoized results differ")
	}
	if len(r.cache) != 1 {
		t.Fatalf("cache has %d entries, want 1", len(r.cache))
	}
}

func TestTable1OrderingHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := NewRunner(Scale{WarmupInstr: 400_000, MeasureInstr: 600_000, Samples: 1})
	rows, out := Table1(r)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	mpki := map[string]float64{}
	for _, row := range rows {
		mpki[row.Workload] = row.BTBMPKI
	}
	// The paper's Table 1 ordering: Oracle > DB2 > Apache and
	// everything above Nutch.
	if !(mpki["Oracle"] > mpki["DB2"] && mpki["DB2"] > mpki["Apache"]) {
		t.Fatalf("OLTP ordering broken: %v", mpki)
	}
	for _, wl := range []string{"Streaming", "Apache", "Zeus", "Oracle", "DB2"} {
		if mpki[wl] <= mpki["Nutch"] {
			t.Fatalf("%s MPKI %.1f not above Nutch %.1f", wl, mpki[wl], mpki["Nutch"])
		}
	}
	if !strings.Contains(out.String(), "Table 1") {
		t.Fatal("render missing title")
	}
}

func TestFigure3Shape(t *testing.T) {
	rows, out := Figure3(nil)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		// Section 3.1: ~90% of accesses within 10 blocks of entry.
		if row.CDF[10] < 0.8 {
			t.Fatalf("%s: cdf[10] = %.2f", row.Workload, row.CDF[10])
		}
	}
	if !strings.Contains(out.String(), "Figure 3") {
		t.Fatal("render missing title")
	}
}

func TestFigure4Shape(t *testing.T) {
	rows, _ := Figure4(nil)
	for _, row := range rows {
		if row.Uncond < row.All {
			t.Fatalf("%s at K=%d: uncond coverage %.3f below all %.3f",
				row.Workload, row.K, row.Uncond, row.All)
		}
	}
	// Oracle's total working set must stay uncovered at 2K.
	for _, row := range rows {
		if row.Workload == "Oracle" && row.K == 2048 && row.All > 0.85 {
			t.Fatalf("Oracle 2K coverage %.3f too concentrated", row.All)
		}
	}
}

func TestFigure7ShotgunBeatsBoomerang(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := NewRunner(Scale{WarmupInstr: 500_000, MeasureInstr: 700_000, Samples: 1})
	rows, _ := Figure7(r)
	for _, row := range rows {
		if row.Workload == "Gmean" {
			if row.Speedup["shotgun"] <= row.Speedup["boomerang"] {
				t.Fatalf("gmean: shotgun %.3f not above boomerang %.3f",
					row.Speedup["shotgun"], row.Speedup["boomerang"])
			}
			if row.Speedup["shotgun"] <= 1.05 {
				t.Fatalf("shotgun gmean speedup %.3f implausibly low", row.Speedup["shotgun"])
			}
		}
	}
}

func TestFigure12Renders(t *testing.T) {
	r := NewRunner(tinyScale())
	rows, out := Figure12(r)
	if len(rows) != 7 { // 6 workloads + gmean
		t.Fatalf("rows = %d", len(rows))
	}
	if !strings.Contains(out.String(), "C-BTB") {
		t.Fatal("render broken")
	}
}

func TestFigure13Renders(t *testing.T) {
	r := NewRunner(tinyScale())
	rows, out := Figure13(r)
	if len(rows) != 2*2*len(Figure13Budgets) {
		t.Fatalf("rows = %d", len(rows))
	}
	if !strings.Contains(out.String(), "Figure 13") {
		t.Fatal("render broken")
	}
}

func TestVariantsComplete(t *testing.T) {
	vs := Variants()
	if len(vs) != 5 {
		t.Fatalf("variants = %d, want 5 (Figure 8/9)", len(vs))
	}
	if len(AccuracyVariants()) != 3 {
		t.Fatal("accuracy variants != 3 (Figure 10/11)")
	}
}

func TestExperimentsListComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		ids[e.ID] = true
	}
	for _, want := range []string{"table1", "fig1", "fig3", "fig4", "fig6",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "interference"} {
		if !ids[want] {
			t.Fatalf("experiment %s missing", want)
		}
	}
}

func TestInterferenceRenders(t *testing.T) {
	r := NewRunner(tinyScale())
	counts := []int{1, 2}
	mixes := InterferenceMixes()
	rows, out := InterferenceTable(r, counts, mixes)
	if len(rows) != 1+len(counts)*len(mixes) {
		t.Fatalf("rows = %d, want %d", len(rows), 1+len(counts)*len(mixes))
	}
	if rows[0].Mix != "solo" || rows[0].CoRunners != 0 {
		t.Fatalf("missing solo anchor row: %+v", rows[0])
	}
	for _, row := range rows {
		if row.IPC <= 0 || row.DataFillCycles <= 0 {
			t.Fatalf("degenerate row: %+v", row)
		}
	}
	if !strings.Contains(out.String(), "Interference") {
		t.Fatal("render missing title")
	}
}

func TestInterferenceExperimentValidation(t *testing.T) {
	if _, err := InterferenceExperiment(nil, []string{"shotgun-8bit"}); err == nil {
		t.Fatal("empty counts accepted")
	}
	if _, err := InterferenceExperiment([]int{1}, []string{"warp-drive"}); err == nil {
		t.Fatal("unknown mix accepted")
	}
	if _, err := InterferenceExperiment([]int{sim.MaxCores}, []string{"shotgun-8bit"}); err == nil {
		t.Fatal("oversubscribed mesh accepted")
	}
	e, err := InterferenceExperiment([]int{1, 2}, []string{"entire-region"})
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "interference" || len(e.Scenarios()) != 3 { // solo + 2 counts
		t.Fatalf("experiment shape wrong: %s, %d scenarios", e.ID, len(e.Scenarios()))
	}
}

func TestFigure6CoverageBounds(t *testing.T) {
	r := NewRunner(tinyScale())
	rows, _ := Figure6(r)
	for _, row := range rows {
		for m, c := range row.Coverage {
			if c < 0 || c > 1 {
				t.Fatalf("%s/%s coverage %v", row.Workload, m, c)
			}
		}
	}
}
