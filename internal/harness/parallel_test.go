package harness

import (
	"sync"
	"testing"

	"shotgun/internal/btb"
	"shotgun/internal/footprint"
	"shotgun/internal/prefetch"
	"shotgun/internal/sim"
)

// TestParallelDeterminism is the tentpole's correctness contract: the
// rendered tables of a multi-worker runner are byte-identical to a
// 1-worker (seed-equivalent, strictly serial) runner. Run under -race in
// CI, it also exercises the shared program/decoder artifacts and the
// single-flight cache concurrently.
func TestParallelDeterminism(t *testing.T) {
	scale := QuickScale()
	serial := NewRunnerWorkers(scale, 1)
	// Force real concurrency even on single-CPU hosts.
	parallel := NewRunnerWorkers(scale, 4)

	_, t1SerialTab := Table1(serial)
	_, f7SerialTab := Figure7(serial)
	_, t1ParallelTab := Table1(parallel)
	_, f7ParallelTab := Figure7(parallel)
	t1Serial, f7Serial := t1SerialTab.String(), f7SerialTab.String()
	t1Parallel, f7Parallel := t1ParallelTab.String(), f7ParallelTab.String()

	if t1Serial != t1Parallel {
		t.Errorf("Table 1 differs between 1-worker and 4-worker runners:\nserial:\n%s\nparallel:\n%s",
			t1Serial, t1Parallel)
	}
	if f7Serial != f7Parallel {
		t.Errorf("Figure 7 differs between 1-worker and 4-worker runners:\nserial:\n%s\nparallel:\n%s",
			f7Serial, f7Parallel)
	}
}

// TestRunnerSingleFlight hammers one config from many goroutines: the
// single-flight cache must run it once and give every caller the same
// result.
func TestRunnerSingleFlight(t *testing.T) {
	r := NewRunnerWorkers(Scale{WarmupInstr: 60_000, MeasureInstr: 80_000, Samples: 1}, 4)
	cfg := sim.Config{Workload: "Nutch", Mechanism: sim.None}

	const callers = 16
	results := make([]sim.Result, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			results[i] = r.Run(cfg)
		}(i)
	}
	wg.Wait()

	if len(r.cache) != 1 {
		t.Fatalf("cache has %d entries after %d concurrent identical Runs, want 1", len(r.cache), callers)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d saw a different result", i)
		}
	}
}

// TestCacheKeyCollisions is the regression test for the seed runner's
// fragile fmt.Sprintf key: configs that run different simulations must
// produce different keys, and configs that are equivalent after
// normalization must produce equal keys (so the memo actually shares).
func TestCacheKeyCollisions(t *testing.T) {
	r := NewRunner(QuickScale())
	base := sim.Config{Workload: "Oracle", Mechanism: sim.Shotgun}

	distinct := []sim.Config{
		base,
		{Workload: "DB2", Mechanism: sim.Shotgun},
		{Workload: "Oracle", Mechanism: sim.Boomerang},
		{Workload: "Oracle", Mechanism: sim.Shotgun, BTBEntries: 4096},
		{Workload: "Oracle", Mechanism: sim.Shotgun, Layout: footprint.Layout32},
		{Workload: "Oracle", Mechanism: sim.Shotgun, RegionMode: prefetch.RegionEntire},
		{Workload: "Oracle", Mechanism: sim.Shotgun, SkipInstr: 123_456},
		{Workload: "Oracle", Mechanism: sim.Shotgun,
			ShotgunSizes: &btb.Sizes{UEntries: 1536, CEntries: 64, REntries: 512}},
		{Workload: "Oracle", Mechanism: sim.Shotgun,
			ShotgunSizes: &btb.Sizes{UEntries: 1536, CEntries: 1024, REntries: 512}},
	}
	seen := map[cacheKey]int{}
	for i, cfg := range distinct {
		k := keyOf(r.NormalizeScenario(sim.SingleCore(cfg)))
		if j, dup := seen[k]; dup {
			t.Errorf("configs %d and %d collide on key %+v", j, i, k)
		}
		seen[k] = i
	}

	// Equivalent-after-normalization pairs must share a key.
	equiv := [][2]sim.Config{
		{{Workload: "Oracle", Mechanism: sim.Shotgun},
			{Workload: "Oracle", Mechanism: sim.Shotgun, BTBEntries: 2048}},
		{{Workload: "Oracle", Mechanism: sim.Shotgun},
			{Workload: "Oracle", Mechanism: sim.Shotgun, Layout: footprint.Layout8}},
	}
	for i, pair := range equiv {
		a := keyOf(r.NormalizeScenario(sim.SingleCore(pair[0])))
		b := keyOf(r.NormalizeScenario(sim.SingleCore(pair[1])))
		if a != b {
			t.Errorf("equivalent pair %d maps to distinct keys:\n%+v\n%+v", i, a, b)
		}
	}

	// Scenario shape is part of the identity: the same config as a solo
	// core, duplicated onto two cores, or with a custom LLC must all be
	// distinct simulations.
	solo := r.NormalizeScenario(sim.SingleCore(base))
	duo := r.NormalizeScenario(sim.Scenario{Cores: []sim.Config{base, base}})
	bigLLC := r.NormalizeScenario(sim.Scenario{Cores: []sim.Config{base}, LLCSizeBytes: 4 << 20})
	if keyOf(solo) == keyOf(duo) || keyOf(solo) == keyOf(bigLLC) || keyOf(duo) == keyOf(bigLLC) {
		t.Error("scenario shapes collide on one key")
	}
	// ...while an explicitly spelled-out default LLC is the same
	// simulation as the derived one.
	explicit := r.NormalizeScenario(sim.Scenario{Cores: []sim.Config{base}, LLCSizeBytes: sim.DefaultLLCBytes(1)})
	if keyOf(solo) != keyOf(explicit) {
		t.Error("explicit default LLC size changed the key")
	}
}

// TestSeedShortCircuitsSimulation: a result seeded from outside (a
// dispatch cluster's job table) must be served by the memo verbatim,
// with no local simulation.
func TestSeedShortCircuitsSimulation(t *testing.T) {
	r := NewRunnerWorkers(QuickScale(), 1)
	cfg := sim.Config{Workload: "Nutch", Mechanism: sim.None}
	sc := r.NormalizeScenario(sim.SingleCore(cfg))
	fake := sim.ScenarioResult{Cores: []sim.Result{{Workload: "Nutch", Mechanism: sim.None}}}
	fake.Cores[0].Core.Instructions = 12345 // marker no real run produces at this scale
	r.Seed(sc, fake)
	got := r.RunScenario(sim.SingleCore(cfg))
	if got.Cores[0].Core.Instructions != 12345 {
		t.Fatalf("seeded result not served: instructions = %d", got.Cores[0].Core.Instructions)
	}
}
