package harness

// The sampled-vs-exact validation experiment: one workload runs both
// exactly and under periodic sampling (internal/sample via
// sim.Config.Sampling), and the table reports the sampled estimate with
// its 95% confidence interval next to the exact IPC plus the measured
// relative error — the golden-gated accuracy evidence for the sampling
// mode, mirroring the SMARTS paper's own validation methodology.

import (
	"fmt"
	"math"

	"shotgun/internal/sim"
	"shotgun/internal/stats"
)

// SampledWorkload is the workload the sampled-vs-exact comparison runs.
const SampledWorkload = "Zeus"

// SampledTitle is the comparison table's title line (shared with the
// spec catalog's sampled.json, which must render byte-identically).
const SampledTitle = "Sampled vs exact: IPC under periodic sampling (95% CI)"

// SampledMechs lists the mechanisms the comparison covers: the
// no-prefetch baseline and the paper's own design.
func SampledMechs() []sim.Mechanism {
	return []sim.Mechanism{sim.None, sim.Shotgun}
}

// SampledSchedule is the periodic-sampling schedule of the compiled-in
// experiment: period 16384 blocks, 1024-block detailed warm-up,
// 1024-block measured units, a bounded 8192-block functional-warming
// window (the rest of each gap is LLC-skimmed), 16 units.
func SampledSchedule() sim.Sampling {
	return sim.Sampling{
		PeriodBlocks:   16384,
		WarmupBlocks:   1024,
		UnitBlocks:     1024,
		FuncWarmBlocks: 8192,
		Units:          16,
	}
}

// sampledPair is one mechanism's exact and sampled configs.
func sampledPair(wl string, m sim.Mechanism, s sim.Sampling) (exact, sampled sim.Config) {
	exact = sim.Config{Workload: wl, Mechanism: m}
	sampled = exact
	sc := s
	sampled.Sampling = &sc
	return exact, sampled
}

// SampledConfigsFor declares every simulation the comparison needs for
// the given workload, mechanisms and schedule — the parameterized form
// the spec compiler shares.
func SampledConfigsFor(wl string, mechs []sim.Mechanism, s sim.Sampling) []sim.Config {
	var cfgs []sim.Config
	for _, m := range mechs {
		exact, sampled := sampledPair(wl, m, s)
		cfgs = append(cfgs, exact, sampled)
	}
	return cfgs
}

// SampledConfigs declares the compiled-in experiment's simulations.
func SampledConfigs() []sim.Config {
	return SampledConfigsFor(SampledWorkload, SampledMechs(), SampledSchedule())
}

// SampledTableFor renders the comparison for the given parameters: per
// mechanism, the exact IPC, the sampled estimate (mean and half-width),
// the measured relative error, and the detailed-simulation coverage.
// The table carries the sampled marker so machine-readable consumers
// never mistake the estimates for exact values.
func SampledTableFor(r *Runner, title, wl string, mechs []sim.Mechanism, s sim.Sampling) *stats.Table {
	r.Prefetch(SampledConfigsFor(wl, mechs, s))
	t := stats.NewTable(title,
		"Mechanism", "Exact IPC", "Sampled IPC", "±95% CI", "Rel err", "Coverage")
	for _, m := range mechs {
		exactCfg, sampledCfg := sampledPair(wl, m, s)
		exact := r.Run(exactCfg)
		sampled := r.Run(sampledCfg).Sampled
		relErr := math.Abs(sampled.IPC.Mean-exact.IPC()) / exact.IPC()
		t.AddRow(string(m),
			fmt.Sprintf("%.3f", exact.IPC()),
			fmt.Sprintf("%.3f", sampled.IPC.Mean),
			fmt.Sprintf("%.3f", sampled.IPC.HalfWidth),
			fmt.Sprintf("%.3f", relErr),
			fmt.Sprintf("%.3f", sampled.Coverage()))
	}
	t.SetSampled()
	return t
}

// Sampled regenerates the compiled-in sampled-vs-exact table.
func Sampled(r *Runner) *stats.Table {
	return SampledTableFor(r, SampledTitle, SampledWorkload, SampledMechs(), SampledSchedule())
}
