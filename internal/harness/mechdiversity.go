// The mechanism-diversity experiments: the delta-pattern prefetcher
// against the BTB-directed lineage, the CLZ-TAGE direction-predictor
// axis, and the multi-context (SMT) front-end pressure sweep. Like every
// other experiment they exist twice — compiled in here and declared as
// specs/{delta,clztage,smt}.json — held byte-identical by the golden
// parity gate, so their render shapes mirror the spec compiler's grid
// assembly cell for cell.

package harness

import (
	"fmt"

	"shotgun/internal/sim"
	"shotgun/internal/stats"
)

// ---------------------------------------------------------------------
// Delta-pattern prefetcher vs the BTB-directed lineage.
// ---------------------------------------------------------------------

// DeltaGridMechs lists the delta grid's mechanisms: the BTB-directed
// lineage bracketing the pattern-based outsider.
func DeltaGridMechs() []sim.Mechanism {
	return []sim.Mechanism{sim.FDIP, sim.RDIP, sim.Delta, sim.Boomerang, sim.Shotgun}
}

// DeltaGrid regenerates the delta-prefetcher comparison.
func DeltaGrid(r *Runner) ([]SpeedupRow, *stats.Table) {
	return speedupFigure(r, "Delta prefetcher vs the BTB-directed lineage (speedup over no-prefetch)", DeltaGridMechs())
}

// ---------------------------------------------------------------------
// CLZ-TAGE direction-predictor axis.
// ---------------------------------------------------------------------

// CLZColumn is one point of the CLZ-TAGE sweep: a mechanism under one
// direction-predictor variant.
type CLZColumn struct {
	Name string
	Mech sim.Mechanism
	// BPU is the sim.Config axis value ("" for the default TAGE).
	BPU string
}

// CLZColumns lists the sweep's points: the two strongest prefetchers,
// each under both predictor variants.
func CLZColumns() []CLZColumn {
	return []CLZColumn{
		{Name: "boomerang/tage", Mech: sim.Boomerang, BPU: ""},
		{Name: "boomerang/clz", Mech: sim.Boomerang, BPU: sim.BPUCLZ},
		{Name: "shotgun/tage", Mech: sim.Shotgun, BPU: ""},
		{Name: "shotgun/clz", Mech: sim.Shotgun, BPU: sim.BPUCLZ},
	}
}

// clzConfig is the simulation for one CLZ-sweep column.
func clzConfig(wl string, col CLZColumn) sim.Config {
	return sim.Config{Workload: wl, Mechanism: col.Mech, BPU: col.BPU}
}

// CLZTageConfigs declares the baseline plus per-column simulations the
// CLZ-TAGE sweep needs.
func CLZTageConfigs() []sim.Config {
	var cfgs []sim.Config
	for _, wl := range Workloads() {
		cfgs = append(cfgs, baselineConfig(wl))
		for _, col := range CLZColumns() {
			cfgs = append(cfgs, clzConfig(wl, col))
		}
	}
	return cfgs
}

// CLZTage regenerates the CLZ-TAGE sweep: speedup over the no-prefetch
// baseline for each (mechanism, predictor-variant) column.
func CLZTage(r *Runner) ([]SpeedupRow, *stats.Table) {
	cols := CLZColumns()
	r.Prefetch(CLZTageConfigs())
	headers := []string{"Workload"}
	for _, col := range cols {
		headers = append(headers, col.Name)
	}
	t := stats.NewTable("CLZ-TAGE: CLZ-rotated history folds vs default TAGE (speedup over no-prefetch)", headers...)
	var rows []SpeedupRow
	gmeans := make(map[string][]float64)
	for _, wl := range Workloads() {
		base := r.baseline(wl)
		row := SpeedupRow{Workload: wl, Speedup: map[string]float64{}}
		var cells []float64
		for _, col := range cols {
			res := r.Run(clzConfig(wl, col))
			s := res.Speedup(base)
			row.Speedup[col.Name] = s
			gmeans[col.Name] = append(gmeans[col.Name], s)
			cells = append(cells, s)
		}
		rows = append(rows, row)
		t.AddF(wl, "%.3f", cells...)
	}
	var gm []float64
	grow := SpeedupRow{Workload: "Gmean", Speedup: map[string]float64{}}
	for _, col := range cols {
		g := stats.GeoMean(gmeans[col.Name])
		grow.Speedup[col.Name] = g
		gm = append(gm, g)
	}
	rows = append(rows, grow)
	t.AddF("Gmean", "%.3f", gm...)
	return rows, t
}

// ---------------------------------------------------------------------
// SMT pressure: N hardware contexts sharing one front-end.
// ---------------------------------------------------------------------

// SMTWorkloads lists the SMT-pressure experiment's workloads.
func SMTWorkloads() []string { return []string{"Oracle", "DB2"} }

// SMTContexts are the swept hardware-context counts.
var SMTContexts = []int{1, 2, 4}

// SMTMechs lists the mechanisms whose front-ends are put under context
// pressure.
func SMTMechs() []sim.Mechanism {
	return []sim.Mechanism{sim.Boomerang, sim.Shotgun}
}

// smtConfig is the simulation for one (workload, mechanism, contexts)
// cell.
func smtConfig(wl string, m sim.Mechanism, contexts int) sim.Config {
	return sim.Config{Workload: wl, Mechanism: m, Contexts: contexts}
}

// SMTConfigs declares every simulation of the SMT-pressure experiment,
// including the per-workload baselines — grids always declare their
// baselines, so the spec twin expands to the same key set.
func SMTConfigs() []sim.Config {
	var cfgs []sim.Config
	for _, wl := range SMTWorkloads() {
		cfgs = append(cfgs, baselineConfig(wl))
		for _, m := range SMTMechs() {
			for _, n := range SMTContexts {
				cfgs = append(cfgs, smtConfig(wl, m, n))
			}
		}
	}
	return cfgs
}

// SMTRow is one (workload, mechanism) row: demand L1-I MPKI across
// context counts.
type SMTRow struct {
	Workload  string
	Mechanism string
	MPKI      map[int]float64
}

// SMT regenerates the SMT-pressure table: demand L1-I MPKI as N
// contexts share one fetch engine, BTB and L1-I.
func SMT(r *Runner) ([]SMTRow, *stats.Table) {
	r.Prefetch(SMTConfigs())
	headers := []string{"Workload", "Mechanism"}
	for _, n := range SMTContexts {
		headers = append(headers, fmt.Sprintf("%dctx", n))
	}
	t := stats.NewTable("SMT pressure: demand L1-I MPKI vs hardware contexts sharing one front-end", headers...)
	var rows []SMTRow
	agg := make([][]float64, len(SMTContexts))
	for _, wl := range SMTWorkloads() {
		for _, m := range SMTMechs() {
			row := SMTRow{Workload: wl, Mechanism: string(m), MPKI: map[int]float64{}}
			rowCells := []string{wl, string(m)}
			for ci, n := range SMTContexts {
				v := r.Run(smtConfig(wl, m, n)).L1IMPKI()
				row.MPKI[n] = v
				agg[ci] = append(agg[ci], v)
				rowCells = append(rowCells, fmt.Sprintf("%.2f", v))
			}
			rows = append(rows, row)
			t.AddRow(rowCells...)
		}
	}
	sums := make([]float64, len(SMTContexts))
	sumCells := []string{"Avg", ""}
	for ci, vs := range agg {
		sums[ci] = stats.Mean(vs)
		sumCells = append(sumCells, fmt.Sprintf("%.2f", sums[ci]))
	}
	t.AddRow(sumCells...)
	return rows, t
}
