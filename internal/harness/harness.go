// Package harness regenerates every table and figure of the paper's
// evaluation (Section 6). Each ExperimentN function runs the simulations
// it needs (sharing results through a memoizing Runner), returns the
// structured series, and renders a text table with the same rows the
// paper reports.
package harness

import (
	"fmt"
	"runtime"
	"sync"

	"shotgun/internal/btb"
	"shotgun/internal/footprint"
	"shotgun/internal/prefetch"
	"shotgun/internal/sim"
	"shotgun/internal/stats"
	"shotgun/internal/workload"
)

// scenariosOf wraps a config list as N=1 scenarios — the bridge between
// the single-core experiment declarations and the scenario-keyed runner.
func scenariosOf(cfgs []sim.Config) []sim.Scenario {
	out := make([]sim.Scenario, len(cfgs))
	for i, cfg := range cfgs {
		out[i] = sim.SingleCore(cfg)
	}
	return out
}

// Scale sets simulation length. Quick is for tests; Full for the
// reported experiments.
type Scale struct {
	WarmupInstr  uint64
	MeasureInstr uint64
	Samples      int
}

// QuickScale runs short simulations for smoke tests.
func QuickScale() Scale {
	return Scale{WarmupInstr: 300_000, MeasureInstr: 400_000, Samples: 1}
}

// FullScale is the reported-experiment configuration.
func FullScale() Scale {
	return Scale{WarmupInstr: 2_000_000, MeasureInstr: 3_000_000, Samples: 3}
}

// cacheKey is the identity of one simulation: the canonical encoding of
// the *normalized* scenario (every default made explicit, per-core
// specs in order), so two scenarios that would run the same simulation
// always collide on purpose, and two that would not never do. This is
// the same byte string internal/store hashes for content addressing —
// one identity from the in-memory memo to the on-disk cache.
type cacheKey string

// keyOf builds the cache key for a normalized scenario.
func keyOf(sc sim.Scenario) cacheKey {
	return cacheKey(sc.CanonicalBytes())
}

// flight is one memoized simulation. The sync.Once gives per-key
// single-flight semantics: concurrent callers of the same scenario block
// on the one in-progress computation instead of duplicating it.
type flight struct {
	once sync.Once
	res  sim.ScenarioResult
}

// ResultStore is the persistence hook a Runner consults before
// simulating (implemented by internal/store). GetScenario returns a
// previously persisted result for a normalized scenario; PutScenario
// records a freshly computed one. Implementations must be safe for
// concurrent use by the worker pool.
type ResultStore interface {
	GetScenario(sc sim.Scenario) (sim.ScenarioResult, bool)
	PutScenario(sc sim.Scenario, res sim.ScenarioResult) error
}

// Runner memoizes simulation results so experiments sharing
// configurations (e.g. the no-prefetch baseline) run once, and executes
// independent simulations on a bounded worker pool. Results are
// deterministic and independent of worker count or completion order: each
// simulation is self-contained, so a table assembled from memoized
// results is byte-identical whether it ran on one worker or many.
//
// With a ResultStore attached, the runner checks the store before
// simulating and persists every fresh result, so a warm restart serves
// previously computed configurations without re-simulating.
type Runner struct {
	scale   Scale
	workers int
	store   ResultStore

	mu    sync.Mutex
	cache map[cacheKey]*flight
}

// NewRunner builds a runner at the given scale with one worker per
// available CPU.
func NewRunner(scale Scale) *Runner {
	return NewRunnerWorkers(scale, runtime.GOMAXPROCS(0))
}

// NewRunnerWorkers builds a runner with an explicit worker-pool size
// (values below 1 mean 1). One worker reproduces the serial seed
// behaviour exactly.
func NewRunnerWorkers(scale Scale, workers int) *Runner {
	if workers < 1 {
		workers = 1
	}
	return &Runner{
		scale:   scale,
		workers: workers,
		cache:   make(map[cacheKey]*flight),
	}
}

// Workers returns the worker-pool size.
func (r *Runner) Workers() int { return r.workers }

// SetStore attaches a persistent result store. Attach before the first
// Run/Prefetch: the field is read by worker goroutines without locking,
// so it must not change once simulations are in flight.
func (r *Runner) SetStore(s ResultStore) { r.store = s }

// compute executes one scenario, consulting the persistent store (when
// attached) on both sides: a stored result short-circuits the
// simulation, and a fresh one is persisted for later processes.
// Persistence is best-effort — a failed Put loses the cache entry for
// the next restart, never the current batch (the store tracks its own
// error counts).
func (r *Runner) compute(sc sim.Scenario) sim.ScenarioResult {
	if r.store != nil {
		if res, ok := r.store.GetScenario(sc); ok {
			return res
		}
	}
	res := sim.MustRunScenario(sc)
	if r.store != nil {
		_ = r.store.PutScenario(sc, res)
	}
	return res
}

// pinScale stamps the runner's scale onto a config — the one place
// scale fields are pinned, so single-config and scenario normalization
// cannot diverge as Scale grows fields.
func (r *Runner) pinScale(cfg sim.Config) sim.Config {
	cfg.WarmupInstr = r.scale.WarmupInstr
	cfg.MeasureInstr = r.scale.MeasureInstr
	cfg.Samples = r.scale.Samples
	return cfg
}

// Normalize pins the runner's scale onto cfg and makes every simulation
// default explicit, so keying and execution agree. External keyers
// normalize through the runner so their identity matches the memo's.
func (r *Runner) Normalize(cfg sim.Config) sim.Config {
	return r.pinScale(cfg).Normalized()
}

// pinScenario stamps the runner's scale onto every core of a scenario,
// preserving the caller's core order.
func (r *Runner) pinScenario(sc sim.Scenario) sim.Scenario {
	cores := make([]sim.Config, len(sc.Cores))
	for i, cfg := range sc.Cores {
		cores[i] = r.pinScale(cfg)
	}
	sc.Cores = cores
	return sc
}

// NormalizeScenario pins the runner's scale onto every core of the
// scenario and normalizes the result (canonical core order included) —
// the scenario-level identity the memo, the store and the HTTP job
// table all share.
func (r *Runner) NormalizeScenario(sc sim.Scenario) sim.Scenario {
	return r.pinScenario(sc).Normalized()
}

// flightFor returns the (created-once) flight for a normalized scenario.
func (r *Runner) flightFor(sc sim.Scenario) *flight {
	key := keyOf(sc)
	r.mu.Lock()
	f, ok := r.cache[key]
	if !ok {
		f = &flight{}
		r.cache[key] = f
	}
	r.mu.Unlock()
	return f
}

// Seed primes the memo with an externally computed result for a
// normalized scenario — the bridge that lets results computed OUTSIDE
// this runner (a dispatch cluster's workers, whose records live only
// in a job table) serve later renders instead of re-simulating. The
// scenario must be normalized and res in its core order; if the key is
// already memoized or in flight, the existing result wins (it is the
// same simulation by identity).
func (r *Runner) Seed(sc sim.Scenario, res sim.ScenarioResult) {
	f := r.flightFor(sc)
	f.once.Do(func() { f.res = res })
}

// RunScenario executes (or recalls) one scenario at the runner's scale.
// Concurrent callers of the same scenario — including callers holding
// per-core permutations of it — share a single execution; results come
// back in the caller's core order.
func (r *Runner) RunScenario(sc sim.Scenario) sim.ScenarioResult {
	return r.RunScenarioExact(r.pinScenario(sc))
}

// RunScenarioExact executes (or recalls) one scenario exactly as given,
// without pinning the runner's scale onto it. Dispatch workers run
// coordinator-leased scenarios through this path: the coordinator
// already pinned its scale, and re-pinning with the worker's would
// silently record results under the wrong identity if the two processes
// were started at different scales.
func (r *Runner) RunScenarioExact(sc sim.Scenario) sim.ScenarioResult {
	norm, perm := sc.NormalizedPerm()
	f := r.flightFor(norm)
	f.once.Do(func() { f.res = r.compute(norm) })
	return f.res.Reorder(perm)
}

// Run executes (or recalls) one single-core simulation: the N=1
// scenario's core-0 result.
func (r *Runner) Run(cfg sim.Config) sim.Result {
	return r.RunScenario(sim.SingleCore(cfg)).Cores[0]
}

// Prefetch runs every given single-core config on the worker pool; see
// PrefetchScenarios.
func (r *Runner) Prefetch(cfgs []sim.Config) {
	r.PrefetchScenarios(scenariosOf(cfgs))
}

// PrefetchScenarios runs every given scenario on the worker pool and
// returns when all results are memoized. Duplicate scenarios (and
// scenarios already cached or in flight) cost nothing extra. Each
// ExperimentN declares its full scenario set through Prefetch before
// assembling its table, so the pool saturates every core while assembly
// stays simple and serial.
func (r *Runner) PrefetchScenarios(scs []sim.Scenario) {
	type job struct {
		sc sim.Scenario
		f  *flight
	}
	// Deduplicate up front so the pool only sees distinct simulations.
	seen := make(map[cacheKey]bool, len(scs))
	var jobs []job
	for _, sc := range scs {
		sc = r.NormalizeScenario(sc)
		key := keyOf(sc)
		if seen[key] {
			continue
		}
		seen[key] = true
		jobs = append(jobs, job{sc: sc, f: r.flightFor(sc)})
	}
	if len(jobs) == 0 {
		return
	}
	workers := r.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers == 1 {
		// Serial path: identical to the seed runner's execution order.
		for _, j := range jobs {
			j.f.once.Do(func() { j.f.res = r.compute(j.sc) })
		}
		return
	}
	ch := make(chan job)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for j := range ch {
				j.f.once.Do(func() { j.f.res = r.compute(j.sc) })
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
}

// baselineConfig is the no-prefetch 2K-BTB configuration for a workload.
func baselineConfig(wl string) sim.Config {
	return sim.Config{Workload: wl, Mechanism: sim.None}
}

// baseline returns the no-prefetch 2K-BTB result for a workload.
func (r *Runner) baseline(wl string) sim.Result {
	return r.Run(baselineConfig(wl))
}

// Workloads lists the evaluation suite in presentation order.
func Workloads() []string { return workload.Names() }

// ---------------------------------------------------------------------
// Table 1: BTB MPKI of a 2K-entry BTB without prefetching.
// ---------------------------------------------------------------------

// Table1Row is one workload's miss rate.
type Table1Row struct {
	Workload string
	BTBMPKI  float64
}

// Table1Configs declares every simulation Table 1 needs.
func Table1Configs() []sim.Config {
	var cfgs []sim.Config
	for _, wl := range Workloads() {
		cfgs = append(cfgs, baselineConfig(wl))
	}
	return cfgs
}

// Table1 regenerates Table 1.
func Table1(r *Runner) ([]Table1Row, *stats.Table) {
	r.Prefetch(Table1Configs())
	var rows []Table1Row
	t := stats.NewTable("Table 1: BTB MPKI (2K-entry BTB, no prefetching)", "Workload", "MPKI")
	for _, wl := range Workloads() {
		res := r.baseline(wl)
		rows = append(rows, Table1Row{Workload: wl, BTBMPKI: res.BTBMPKI()})
		t.AddF(wl, "%.1f", res.BTBMPKI())
	}
	return rows, t
}

// ---------------------------------------------------------------------
// Figure 1: Confluence / Boomerang / Ideal speedups over no-prefetch.
// ---------------------------------------------------------------------

// SpeedupRow is one workload's speedups across mechanisms.
type SpeedupRow struct {
	Workload string
	Speedup  map[string]float64
}

// Figure1 regenerates Figure 1.
func Figure1(r *Runner) ([]SpeedupRow, *stats.Table) {
	return speedupFigure(r, "Figure 1: state-of-the-art vs ideal front-end (speedup over no-prefetch)", Figure1Mechs())
}

// Figure1Mechs lists Figure 1's mechanisms.
func Figure1Mechs() []sim.Mechanism {
	return []sim.Mechanism{sim.Confluence, sim.Boomerang, sim.Ideal}
}

// mechConfigs declares the baseline plus per-mechanism simulations every
// speedup/coverage figure needs.
func mechConfigs(mechs []sim.Mechanism) []sim.Config {
	var cfgs []sim.Config
	for _, wl := range Workloads() {
		cfgs = append(cfgs, baselineConfig(wl))
		for _, m := range mechs {
			cfgs = append(cfgs, sim.Config{Workload: wl, Mechanism: m})
		}
	}
	return cfgs
}

func speedupFigure(r *Runner, title string, mechs []sim.Mechanism) ([]SpeedupRow, *stats.Table) {
	r.Prefetch(mechConfigs(mechs))
	headers := []string{"Workload"}
	for _, m := range mechs {
		headers = append(headers, string(m))
	}
	t := stats.NewTable(title, headers...)
	var rows []SpeedupRow
	gmeans := make(map[string][]float64)
	for _, wl := range Workloads() {
		base := r.baseline(wl)
		row := SpeedupRow{Workload: wl, Speedup: map[string]float64{}}
		var cells []float64
		for _, m := range mechs {
			res := r.Run(sim.Config{Workload: wl, Mechanism: m})
			s := res.Speedup(base)
			row.Speedup[string(m)] = s
			gmeans[string(m)] = append(gmeans[string(m)], s)
			cells = append(cells, s)
		}
		rows = append(rows, row)
		t.AddF(wl, "%.3f", cells...)
	}
	var gm []float64
	grow := SpeedupRow{Workload: "Gmean", Speedup: map[string]float64{}}
	for _, m := range mechs {
		g := stats.GeoMean(gmeans[string(m)])
		grow.Speedup[string(m)] = g
		gm = append(gm, g)
	}
	rows = append(rows, grow)
	t.AddF("Gmean", "%.3f", gm...)
	return rows, t
}

// ---------------------------------------------------------------------
// Figure 3: instruction-cache block access distance inside code regions.
// ---------------------------------------------------------------------

// Figure3Row is one workload's cumulative access-probability curve.
type Figure3Row struct {
	Workload string
	CDF      [workload.RegionDistBuckets]float64
}

// Figure3AnalysisBlocks is the trace length for the Figure 3/4 analyses.
const Figure3AnalysisBlocks = 400_000

// Figure3 regenerates Figure 3 (a pure trace analysis; no timing).
func Figure3(*Runner) ([]Figure3Row, *stats.Table) {
	t := stats.NewTable("Figure 3: cumulative access probability vs distance from region entry",
		"Workload", "d=0", "d=1", "d=2", "d=4", "d=6", "d=8", "d=10", "d=16", ">16")
	var rows []Figure3Row
	for _, wl := range Workloads() {
		prof := workload.MustGet(wl)
		a := workload.Analyze(prof.NewWalker(), Figure3AnalysisBlocks)
		cdf := a.RegionCDF()
		rows = append(rows, Figure3Row{Workload: wl, CDF: cdf})
		t.AddF(wl, "%.2f", cdf[0], cdf[1], cdf[2], cdf[4], cdf[6], cdf[8], cdf[10], cdf[16], cdf[17])
	}
	return rows, t
}

// ---------------------------------------------------------------------
// Figure 4: dynamic-branch coverage vs hottest static branches.
// ---------------------------------------------------------------------

// Figure4Row is one coverage curve sample.
type Figure4Row struct {
	Workload string
	K        int
	All      float64
	Uncond   float64
}

// Figure4Points are the static-branch counts sampled (the paper's x-axis
// runs 1K..8K).
var Figure4Points = []int{1024, 2048, 3072, 4096, 5120, 6144, 7168, 8192}

// Figure4 regenerates Figure 4 for Oracle and DB2.
func Figure4(*Runner) ([]Figure4Row, *stats.Table) {
	t := stats.NewTable("Figure 4: dynamic branch coverage of K hottest static branches",
		"Workload", "K", "all", "unconditional")
	var rows []Figure4Row
	for _, wl := range []string{"Oracle", "DB2"} {
		prof := workload.MustGet(wl)
		a := workload.Analyze(prof.NewWalker(), Figure3AnalysisBlocks)
		for _, k := range Figure4Points {
			all := a.CoverageAt(k, nil)
			unc := a.CoverageAt(k, workload.UncondFilter)
			rows = append(rows, Figure4Row{Workload: wl, K: k, All: all, Uncond: unc})
			t.AddRow(wl, fmt.Sprintf("%d", k), fmt.Sprintf("%.3f", all), fmt.Sprintf("%.3f", unc))
		}
	}
	return rows, t
}

// ---------------------------------------------------------------------
// Figure 6: front-end stall-cycle coverage.
// ---------------------------------------------------------------------

// CoverageRow is one workload's stall coverage across mechanisms.
type CoverageRow struct {
	Workload string
	Coverage map[string]float64
}

// Figure6Mechs lists Figure 6's mechanisms.
func Figure6Mechs() []sim.Mechanism {
	return []sim.Mechanism{sim.Confluence, sim.Boomerang, sim.Shotgun}
}

// Figure6 regenerates Figure 6.
func Figure6(r *Runner) ([]CoverageRow, *stats.Table) {
	mechs := Figure6Mechs()
	r.Prefetch(mechConfigs(mechs))
	headers := []string{"Workload"}
	for _, m := range mechs {
		headers = append(headers, string(m))
	}
	t := stats.NewTable("Figure 6: front-end stall cycles covered (vs no-prefetch baseline)", headers...)
	var rows []CoverageRow
	avgs := map[string][]float64{}
	for _, wl := range Workloads() {
		base := r.baseline(wl)
		row := CoverageRow{Workload: wl, Coverage: map[string]float64{}}
		var cells []float64
		for _, m := range mechs {
			res := r.Run(sim.Config{Workload: wl, Mechanism: m})
			c := res.StallCoverage(base)
			row.Coverage[string(m)] = c
			avgs[string(m)] = append(avgs[string(m)], c)
			cells = append(cells, c)
		}
		rows = append(rows, row)
		t.AddF(wl, "%.3f", cells...)
	}
	var av []float64
	arow := CoverageRow{Workload: "Avg", Coverage: map[string]float64{}}
	for _, m := range mechs {
		a := stats.Mean(avgs[string(m)])
		arow.Coverage[string(m)] = a
		av = append(av, a)
	}
	rows = append(rows, arow)
	t.AddF("Avg", "%.3f", av...)
	return rows, t
}

// ---------------------------------------------------------------------
// Figure 7: speedups of the three mechanisms.
// ---------------------------------------------------------------------

// Figure7Mechs lists Figure 7's mechanisms.
func Figure7Mechs() []sim.Mechanism {
	return []sim.Mechanism{sim.Confluence, sim.Boomerang, sim.Shotgun}
}

// Figure7 regenerates Figure 7.
func Figure7(r *Runner) ([]SpeedupRow, *stats.Table) {
	return speedupFigure(r, "Figure 7: speedup over no-prefetch baseline", Figure7Mechs())
}

// ---------------------------------------------------------------------
// Figures 8-11: spatial-footprint variants.
// ---------------------------------------------------------------------

// Variant names one spatial-region prefetching mechanism of Section 6.3.
type Variant struct {
	Name   string
	Mode   prefetch.RegionMode
	Layout footprint.Layout
}

// Variants lists the Figure 8/9 ablation points in presentation order.
func Variants() []Variant {
	return []Variant{
		{Name: "no-bit-vector", Mode: prefetch.RegionNone, Layout: footprint.Layout8},
		{Name: "8-bit-vector", Mode: prefetch.RegionVector, Layout: footprint.Layout8},
		{Name: "32-bit-vector", Mode: prefetch.RegionVector, Layout: footprint.Layout32},
		{Name: "entire-region", Mode: prefetch.RegionEntire, Layout: footprint.Layout32},
		{Name: "5-blocks", Mode: prefetch.RegionFiveBlocks, Layout: footprint.Layout8},
	}
}

// AccuracyVariants lists the Figure 10/11 subset.
func AccuracyVariants() []Variant {
	all := Variants()
	return []Variant{all[1], all[3], all[4]}
}

// variantConfig is the Shotgun simulation for one footprint variant.
func variantConfig(wl string, v Variant) sim.Config {
	return sim.Config{
		Workload:   wl,
		Mechanism:  sim.Shotgun,
		RegionMode: v.Mode,
		Layout:     v.Layout,
	}
}

// variantConfigs declares the baseline plus per-variant simulations the
// Figure 8-11 ablations need.
func variantConfigs(variants []Variant) []sim.Config {
	var cfgs []sim.Config
	for _, wl := range Workloads() {
		cfgs = append(cfgs, baselineConfig(wl))
		for _, v := range variants {
			cfgs = append(cfgs, variantConfig(wl, v))
		}
	}
	return cfgs
}

func (r *Runner) runVariant(wl string, v Variant) sim.Result {
	return r.Run(variantConfig(wl, v))
}

// VariantRow is one workload's metric across footprint variants.
type VariantRow struct {
	Workload string
	Values   map[string]float64
}

func variantFigure(r *Runner, title string, variants []Variant,
	metric func(res, base sim.Result) float64, avgGeo bool, format string) ([]VariantRow, *stats.Table) {
	r.Prefetch(variantConfigs(variants))
	headers := []string{"Workload"}
	for _, v := range variants {
		headers = append(headers, v.Name)
	}
	t := stats.NewTable(title, headers...)
	var rows []VariantRow
	agg := map[string][]float64{}
	for _, wl := range Workloads() {
		base := r.baseline(wl)
		row := VariantRow{Workload: wl, Values: map[string]float64{}}
		var cells []float64
		for _, v := range variants {
			res := r.runVariant(wl, v)
			m := metric(res, base)
			row.Values[v.Name] = m
			agg[v.Name] = append(agg[v.Name], m)
			cells = append(cells, m)
		}
		rows = append(rows, row)
		t.AddF(wl, format, cells...)
	}
	label := "Avg"
	if avgGeo {
		label = "Gmean"
	}
	arow := VariantRow{Workload: label, Values: map[string]float64{}}
	var cells []float64
	for _, v := range variants {
		var a float64
		if avgGeo {
			a = stats.GeoMean(agg[v.Name])
		} else {
			a = stats.Mean(agg[v.Name])
		}
		arow.Values[v.Name] = a
		cells = append(cells, a)
	}
	rows = append(rows, arow)
	t.AddF(label, format, cells...)
	return rows, t
}

// Figure8 regenerates Figure 8: stall coverage across footprint variants.
func Figure8(r *Runner) ([]VariantRow, *stats.Table) {
	return variantFigure(r, "Figure 8: Shotgun stall-cycle coverage by spatial-region mechanism",
		Variants(), func(res, base sim.Result) float64 { return res.StallCoverage(base) }, false, "%.3f")
}

// Figure9 regenerates Figure 9: speedup across footprint variants.
func Figure9(r *Runner) ([]VariantRow, *stats.Table) {
	return variantFigure(r, "Figure 9: Shotgun speedup by spatial-region mechanism",
		Variants(), func(res, base sim.Result) float64 { return res.Speedup(base) }, true, "%.3f")
}

// Figure10 regenerates Figure 10: prefetch accuracy.
func Figure10(r *Runner) ([]VariantRow, *stats.Table) {
	return variantFigure(r, "Figure 10: Shotgun prefetch accuracy by spatial-region mechanism",
		AccuracyVariants(), func(res, _ sim.Result) float64 { return res.PrefetchAccuracy }, false, "%.3f")
}

// Figure11 regenerates Figure 11: cycles to fill an L1-D miss.
func Figure11(r *Runner) ([]VariantRow, *stats.Table) {
	return variantFigure(r, "Figure 11: cycles to fill an L1-D miss by spatial-region mechanism",
		AccuracyVariants(), func(res, _ sim.Result) float64 { return res.AvgDataFillCycles() }, false, "%.1f")
}

// ---------------------------------------------------------------------
// Figure 12: C-BTB size sensitivity.
// ---------------------------------------------------------------------

// Figure12Sizes are the evaluated C-BTB capacities.
var Figure12Sizes = []int{64, 128, 1024}

// figure12Config is the Shotgun simulation at one C-BTB capacity.
func figure12Config(wl string, cEntries int) sim.Config {
	sizes := btb.MustShotgunSizesForBudget(2048)
	sizes.CEntries = cEntries
	return sim.Config{Workload: wl, Mechanism: sim.Shotgun, ShotgunSizes: &sizes}
}

// Figure12Configs declares every simulation Figure 12 needs.
func Figure12Configs() []sim.Config {
	var cfgs []sim.Config
	for _, wl := range Workloads() {
		cfgs = append(cfgs, baselineConfig(wl))
		for _, n := range Figure12Sizes {
			cfgs = append(cfgs, figure12Config(wl, n))
		}
	}
	return cfgs
}

// Figure12 regenerates Figure 12: Shotgun speedup vs C-BTB entries.
func Figure12(r *Runner) ([]VariantRow, *stats.Table) {
	r.Prefetch(Figure12Configs())
	headers := []string{"Workload"}
	for _, n := range Figure12Sizes {
		headers = append(headers, fmt.Sprintf("%d-entry", n))
	}
	t := stats.NewTable("Figure 12: Shotgun speedup vs C-BTB size", headers...)
	var rows []VariantRow
	agg := map[int][]float64{}
	for _, wl := range Workloads() {
		base := r.baseline(wl)
		row := VariantRow{Workload: wl, Values: map[string]float64{}}
		var cells []float64
		for _, n := range Figure12Sizes {
			res := r.Run(figure12Config(wl, n))
			s := res.Speedup(base)
			row.Values[fmt.Sprintf("%d", n)] = s
			agg[n] = append(agg[n], s)
			cells = append(cells, s)
		}
		rows = append(rows, row)
		t.AddF(wl, "%.3f", cells...)
	}
	arow := VariantRow{Workload: "Gmean", Values: map[string]float64{}}
	var cells []float64
	for _, n := range Figure12Sizes {
		g := stats.GeoMean(agg[n])
		arow.Values[fmt.Sprintf("%d", n)] = g
		cells = append(cells, g)
	}
	rows = append(rows, arow)
	t.AddF("Gmean", "%.3f", cells...)
	return rows, t
}

// ---------------------------------------------------------------------
// Figure 13: BTB storage budget sensitivity (Oracle and DB2).
// ---------------------------------------------------------------------

// Figure13Budgets are the conventional-BTB-equivalent budgets swept.
var Figure13Budgets = []int{512, 1024, 2048, 4096, 8192}

// Figure13Row is one (workload, mechanism, budget) speedup.
type Figure13Row struct {
	Workload  string
	Mechanism string
	Budget    int
	Speedup   float64
}

// Figure13Workloads lists the workloads Figure 13 sweeps.
func Figure13Workloads() []string { return []string{"Oracle", "DB2"} }

// Figure13Configs declares every simulation Figure 13 needs.
func Figure13Configs() []sim.Config {
	var cfgs []sim.Config
	for _, wl := range Figure13Workloads() {
		cfgs = append(cfgs, baselineConfig(wl))
		for _, m := range []sim.Mechanism{sim.Boomerang, sim.Shotgun} {
			for _, budget := range Figure13Budgets {
				cfgs = append(cfgs, sim.Config{Workload: wl, Mechanism: m, BTBEntries: budget})
			}
		}
	}
	return cfgs
}

// Figure13 regenerates Figure 13.
func Figure13(r *Runner) ([]Figure13Row, *stats.Table) {
	r.Prefetch(Figure13Configs())
	t := stats.NewTable("Figure 13: speedup vs BTB storage budget (budget = equivalent conventional entries)",
		"Workload", "Mechanism", "512", "1K", "2K", "4K", "8K")
	var rows []Figure13Row
	for _, wl := range Figure13Workloads() {
		base := r.baseline(wl)
		for _, m := range []sim.Mechanism{sim.Boomerang, sim.Shotgun} {
			var cells []string
			for _, budget := range Figure13Budgets {
				res := r.Run(sim.Config{Workload: wl, Mechanism: m, BTBEntries: budget})
				s := res.Speedup(base)
				rows = append(rows, Figure13Row{Workload: wl, Mechanism: string(m), Budget: budget, Speedup: s})
				cells = append(cells, fmt.Sprintf("%.3f", s))
			}
			t.AddRow(append([]string{wl, string(m)}, cells...)...)
		}
	}
	return rows, t
}

// ---------------------------------------------------------------------
// All experiments.
// ---------------------------------------------------------------------

// Experiment pairs an identifier with its render function and the full
// set of simulations it will request — the planning information Prefetch
// uses to saturate the worker pool before any table is assembled.
type Experiment struct {
	ID   string
	Desc string
	// Table runs the experiment and returns its structured table; text
	// callers use Run, machine-readable callers (internal/report, the
	// HTTP server) serialize the table directly.
	Table func(*Runner) *stats.Table
	// Scenarios declares every simulation Table will need (single-core
	// experiments declare N=1 scenarios); nil for pure trace analyses
	// (Figures 3 and 4) that run no timing simulation.
	Scenarios func() []sim.Scenario
}

// Run renders the experiment as the text table the paper reports.
func (e Experiment) Run(r *Runner) string { return e.Table(r).String() }

// Experiments lists every reproduced table and figure.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "BTB MPKI without prefetching",
			func(r *Runner) *stats.Table { _, t := Table1(r); return t },
			func() []sim.Scenario { return scenariosOf(Table1Configs()) }},
		{"fig1", "State-of-the-art vs ideal speedups",
			func(r *Runner) *stats.Table { _, t := Figure1(r); return t },
			func() []sim.Scenario { return scenariosOf(mechConfigs(Figure1Mechs())) }},
		{"fig3", "Region spatial locality",
			func(r *Runner) *stats.Table { _, t := Figure3(r); return t }, nil},
		{"fig4", "Branch working-set coverage",
			func(r *Runner) *stats.Table { _, t := Figure4(r); return t }, nil},
		{"fig6", "Front-end stall coverage",
			func(r *Runner) *stats.Table { _, t := Figure6(r); return t },
			func() []sim.Scenario { return scenariosOf(mechConfigs(Figure6Mechs())) }},
		{"fig7", "Speedup over baseline",
			func(r *Runner) *stats.Table { _, t := Figure7(r); return t },
			func() []sim.Scenario { return scenariosOf(mechConfigs(Figure7Mechs())) }},
		{"fig8", "Footprint-variant stall coverage",
			func(r *Runner) *stats.Table { _, t := Figure8(r); return t },
			func() []sim.Scenario { return scenariosOf(variantConfigs(Variants())) }},
		{"fig9", "Footprint-variant speedup",
			func(r *Runner) *stats.Table { _, t := Figure9(r); return t },
			func() []sim.Scenario { return scenariosOf(variantConfigs(Variants())) }},
		{"fig10", "Footprint-variant prefetch accuracy",
			func(r *Runner) *stats.Table { _, t := Figure10(r); return t },
			func() []sim.Scenario { return scenariosOf(variantConfigs(AccuracyVariants())) }},
		{"fig11", "Footprint-variant L1-D fill latency",
			func(r *Runner) *stats.Table { _, t := Figure11(r); return t },
			func() []sim.Scenario { return scenariosOf(variantConfigs(AccuracyVariants())) }},
		{"fig12", "C-BTB size sensitivity",
			func(r *Runner) *stats.Table { _, t := Figure12(r); return t },
			func() []sim.Scenario { return scenariosOf(Figure12Configs()) }},
		{"fig13", "BTB budget sensitivity",
			func(r *Runner) *stats.Table { _, t := Figure13(r); return t },
			func() []sim.Scenario { return scenariosOf(Figure13Configs()) }},
		{"interference", "Shared-LLC/NoC interference vs co-runners",
			func(r *Runner) *stats.Table { _, t := Interference(r); return t },
			func() []sim.Scenario {
				return InterferenceScenarios(InterferenceCoRunnerCounts, InterferenceMixes())
			}},
		{"interference64", "Shared-LLC/NoC interference on 16- and 64-core meshes",
			func(r *Runner) *stats.Table { _, t := Interference64(r); return t },
			func() []sim.Scenario {
				return InterferenceScenarios(Interference64CoRunnerCounts, InterferenceMixes())
			}},
		{"sampled", "Sampled vs exact IPC with confidence intervals",
			Sampled,
			func() []sim.Scenario { return scenariosOf(SampledConfigs()) }},
		{"delta", "Delta prefetcher vs the BTB-directed lineage",
			func(r *Runner) *stats.Table { _, t := DeltaGrid(r); return t },
			func() []sim.Scenario { return scenariosOf(mechConfigs(DeltaGridMechs())) }},
		{"clztage", "CLZ-TAGE direction-predictor sweep",
			func(r *Runner) *stats.Table { _, t := CLZTage(r); return t },
			func() []sim.Scenario { return scenariosOf(CLZTageConfigs()) }},
		{"smt", "SMT front-end pressure vs hardware contexts",
			func(r *Runner) *stats.Table { _, t := SMT(r); return t },
			func() []sim.Scenario { return scenariosOf(SMTConfigs()) }},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// AllScenarios returns the union (with duplicates; PrefetchScenarios
// deduplicates) of every experiment's scenario set — the whole
// evaluation's work list, used to saturate the pool across experiment
// boundaries.
func AllScenarios(exps []Experiment) []sim.Scenario {
	var scs []sim.Scenario
	for _, e := range exps {
		if e.Scenarios != nil {
			scs = append(scs, e.Scenarios()...)
		}
	}
	return scs
}
