// Package harness regenerates every table and figure of the paper's
// evaluation (Section 6). Each ExperimentN function runs the simulations
// it needs (sharing results through a memoizing Runner), returns the
// structured series, and renders a text table with the same rows the
// paper reports.
package harness

import (
	"fmt"
	"sync"

	"shotgun/internal/btb"
	"shotgun/internal/footprint"
	"shotgun/internal/prefetch"
	"shotgun/internal/sim"
	"shotgun/internal/stats"
	"shotgun/internal/workload"
)

// Scale sets simulation length. Quick is for tests; Full for the
// reported experiments.
type Scale struct {
	WarmupInstr  uint64
	MeasureInstr uint64
	Samples      int
}

// QuickScale runs short simulations for smoke tests.
func QuickScale() Scale {
	return Scale{WarmupInstr: 300_000, MeasureInstr: 400_000, Samples: 1}
}

// FullScale is the reported-experiment configuration.
func FullScale() Scale {
	return Scale{WarmupInstr: 2_000_000, MeasureInstr: 3_000_000, Samples: 3}
}

// Runner memoizes simulation results so experiments sharing
// configurations (e.g. the no-prefetch baseline) run once.
type Runner struct {
	scale Scale

	mu    sync.Mutex
	cache map[string]sim.Result
}

// NewRunner builds a runner at the given scale.
func NewRunner(scale Scale) *Runner {
	return &Runner{scale: scale, cache: make(map[string]sim.Result)}
}

// Run executes (or recalls) one simulation.
func (r *Runner) Run(cfg sim.Config) sim.Result {
	cfg.WarmupInstr = r.scale.WarmupInstr
	cfg.MeasureInstr = r.scale.MeasureInstr
	cfg.Samples = r.scale.Samples

	u, c2, ri := sizesKey(cfg.ShotgunSizes)
	key := fmt.Sprintf("%s|%s|%d|%v|%d/%d|%d|%d/%d/%d",
		cfg.Workload, cfg.Mechanism, cfg.BTBEntries, cfg.RegionMode,
		cfg.Layout.Before, cfg.Layout.After,
		cfg.WarmupInstr, u, c2, ri)
	r.mu.Lock()
	res, ok := r.cache[key]
	r.mu.Unlock()
	if ok {
		return res
	}
	res = sim.MustRun(cfg)
	r.mu.Lock()
	r.cache[key] = res
	r.mu.Unlock()
	return res
}

func sizesKey(s *btb.Sizes) (int, int, int) {
	if s == nil {
		return 0, 0, 0
	}
	return s.UEntries, s.CEntries, s.REntries
}

// baseline returns the no-prefetch 2K-BTB result for a workload.
func (r *Runner) baseline(wl string) sim.Result {
	return r.Run(sim.Config{Workload: wl, Mechanism: sim.None})
}

// Workloads lists the evaluation suite in presentation order.
func Workloads() []string { return workload.Names() }

// ---------------------------------------------------------------------
// Table 1: BTB MPKI of a 2K-entry BTB without prefetching.
// ---------------------------------------------------------------------

// Table1Row is one workload's miss rate.
type Table1Row struct {
	Workload string
	BTBMPKI  float64
}

// Table1 regenerates Table 1.
func Table1(r *Runner) ([]Table1Row, string) {
	var rows []Table1Row
	t := stats.NewTable("Table 1: BTB MPKI (2K-entry BTB, no prefetching)", "Workload", "MPKI")
	for _, wl := range Workloads() {
		res := r.baseline(wl)
		rows = append(rows, Table1Row{Workload: wl, BTBMPKI: res.BTBMPKI()})
		t.AddF(wl, "%.1f", res.BTBMPKI())
	}
	return rows, t.String()
}

// ---------------------------------------------------------------------
// Figure 1: Confluence / Boomerang / Ideal speedups over no-prefetch.
// ---------------------------------------------------------------------

// SpeedupRow is one workload's speedups across mechanisms.
type SpeedupRow struct {
	Workload string
	Speedup  map[string]float64
}

// Figure1 regenerates Figure 1.
func Figure1(r *Runner) ([]SpeedupRow, string) {
	mechs := []sim.Mechanism{sim.Confluence, sim.Boomerang, sim.Ideal}
	return speedupFigure(r, "Figure 1: state-of-the-art vs ideal front-end (speedup over no-prefetch)", mechs)
}

func speedupFigure(r *Runner, title string, mechs []sim.Mechanism) ([]SpeedupRow, string) {
	headers := []string{"Workload"}
	for _, m := range mechs {
		headers = append(headers, string(m))
	}
	t := stats.NewTable(title, headers...)
	var rows []SpeedupRow
	gmeans := make(map[string][]float64)
	for _, wl := range Workloads() {
		base := r.baseline(wl)
		row := SpeedupRow{Workload: wl, Speedup: map[string]float64{}}
		var cells []float64
		for _, m := range mechs {
			res := r.Run(sim.Config{Workload: wl, Mechanism: m})
			s := res.Speedup(base)
			row.Speedup[string(m)] = s
			gmeans[string(m)] = append(gmeans[string(m)], s)
			cells = append(cells, s)
		}
		rows = append(rows, row)
		t.AddF(wl, "%.3f", cells...)
	}
	var gm []float64
	grow := SpeedupRow{Workload: "Gmean", Speedup: map[string]float64{}}
	for _, m := range mechs {
		g := stats.GeoMean(gmeans[string(m)])
		grow.Speedup[string(m)] = g
		gm = append(gm, g)
	}
	rows = append(rows, grow)
	t.AddF("Gmean", "%.3f", gm...)
	return rows, t.String()
}

// ---------------------------------------------------------------------
// Figure 3: instruction-cache block access distance inside code regions.
// ---------------------------------------------------------------------

// Figure3Row is one workload's cumulative access-probability curve.
type Figure3Row struct {
	Workload string
	CDF      [workload.RegionDistBuckets]float64
}

// Figure3AnalysisBlocks is the trace length for the Figure 3/4 analyses.
const Figure3AnalysisBlocks = 400_000

// Figure3 regenerates Figure 3 (a pure trace analysis; no timing).
func Figure3(*Runner) ([]Figure3Row, string) {
	t := stats.NewTable("Figure 3: cumulative access probability vs distance from region entry",
		"Workload", "d=0", "d=1", "d=2", "d=4", "d=6", "d=8", "d=10", "d=16", ">16")
	var rows []Figure3Row
	for _, wl := range Workloads() {
		prof := workload.MustGet(wl)
		a := workload.Analyze(prof.NewWalker(), Figure3AnalysisBlocks)
		cdf := a.RegionCDF()
		rows = append(rows, Figure3Row{Workload: wl, CDF: cdf})
		t.AddF(wl, "%.2f", cdf[0], cdf[1], cdf[2], cdf[4], cdf[6], cdf[8], cdf[10], cdf[16], cdf[17])
	}
	return rows, t.String()
}

// ---------------------------------------------------------------------
// Figure 4: dynamic-branch coverage vs hottest static branches.
// ---------------------------------------------------------------------

// Figure4Row is one coverage curve sample.
type Figure4Row struct {
	Workload string
	K        int
	All      float64
	Uncond   float64
}

// Figure4Points are the static-branch counts sampled (the paper's x-axis
// runs 1K..8K).
var Figure4Points = []int{1024, 2048, 3072, 4096, 5120, 6144, 7168, 8192}

// Figure4 regenerates Figure 4 for Oracle and DB2.
func Figure4(*Runner) ([]Figure4Row, string) {
	t := stats.NewTable("Figure 4: dynamic branch coverage of K hottest static branches",
		"Workload", "K", "all", "unconditional")
	var rows []Figure4Row
	for _, wl := range []string{"Oracle", "DB2"} {
		prof := workload.MustGet(wl)
		a := workload.Analyze(prof.NewWalker(), Figure3AnalysisBlocks)
		for _, k := range Figure4Points {
			all := a.CoverageAt(k, nil)
			unc := a.CoverageAt(k, workload.UncondFilter)
			rows = append(rows, Figure4Row{Workload: wl, K: k, All: all, Uncond: unc})
			t.AddRow(wl, fmt.Sprintf("%d", k), fmt.Sprintf("%.3f", all), fmt.Sprintf("%.3f", unc))
		}
	}
	return rows, t.String()
}

// ---------------------------------------------------------------------
// Figure 6: front-end stall-cycle coverage.
// ---------------------------------------------------------------------

// CoverageRow is one workload's stall coverage across mechanisms.
type CoverageRow struct {
	Workload string
	Coverage map[string]float64
}

// Figure6 regenerates Figure 6.
func Figure6(r *Runner) ([]CoverageRow, string) {
	mechs := []sim.Mechanism{sim.Confluence, sim.Boomerang, sim.Shotgun}
	headers := []string{"Workload"}
	for _, m := range mechs {
		headers = append(headers, string(m))
	}
	t := stats.NewTable("Figure 6: front-end stall cycles covered (vs no-prefetch baseline)", headers...)
	var rows []CoverageRow
	avgs := map[string][]float64{}
	for _, wl := range Workloads() {
		base := r.baseline(wl)
		row := CoverageRow{Workload: wl, Coverage: map[string]float64{}}
		var cells []float64
		for _, m := range mechs {
			res := r.Run(sim.Config{Workload: wl, Mechanism: m})
			c := res.StallCoverage(base)
			row.Coverage[string(m)] = c
			avgs[string(m)] = append(avgs[string(m)], c)
			cells = append(cells, c)
		}
		rows = append(rows, row)
		t.AddF(wl, "%.3f", cells...)
	}
	var av []float64
	arow := CoverageRow{Workload: "Avg", Coverage: map[string]float64{}}
	for _, m := range mechs {
		a := stats.Mean(avgs[string(m)])
		arow.Coverage[string(m)] = a
		av = append(av, a)
	}
	rows = append(rows, arow)
	t.AddF("Avg", "%.3f", av...)
	return rows, t.String()
}

// ---------------------------------------------------------------------
// Figure 7: speedups of the three mechanisms.
// ---------------------------------------------------------------------

// Figure7 regenerates Figure 7.
func Figure7(r *Runner) ([]SpeedupRow, string) {
	mechs := []sim.Mechanism{sim.Confluence, sim.Boomerang, sim.Shotgun}
	return speedupFigure(r, "Figure 7: speedup over no-prefetch baseline", mechs)
}

// ---------------------------------------------------------------------
// Figures 8-11: spatial-footprint variants.
// ---------------------------------------------------------------------

// Variant names one spatial-region prefetching mechanism of Section 6.3.
type Variant struct {
	Name   string
	Mode   prefetch.RegionMode
	Layout footprint.Layout
}

// Variants lists the Figure 8/9 ablation points in presentation order.
func Variants() []Variant {
	return []Variant{
		{Name: "no-bit-vector", Mode: prefetch.RegionNone, Layout: footprint.Layout8},
		{Name: "8-bit-vector", Mode: prefetch.RegionVector, Layout: footprint.Layout8},
		{Name: "32-bit-vector", Mode: prefetch.RegionVector, Layout: footprint.Layout32},
		{Name: "entire-region", Mode: prefetch.RegionEntire, Layout: footprint.Layout32},
		{Name: "5-blocks", Mode: prefetch.RegionFiveBlocks, Layout: footprint.Layout8},
	}
}

// AccuracyVariants lists the Figure 10/11 subset.
func AccuracyVariants() []Variant {
	all := Variants()
	return []Variant{all[1], all[3], all[4]}
}

func (r *Runner) runVariant(wl string, v Variant) sim.Result {
	return r.Run(sim.Config{
		Workload:   wl,
		Mechanism:  sim.Shotgun,
		RegionMode: v.Mode,
		Layout:     v.Layout,
	})
}

// VariantRow is one workload's metric across footprint variants.
type VariantRow struct {
	Workload string
	Values   map[string]float64
}

func variantFigure(r *Runner, title string, variants []Variant,
	metric func(res, base sim.Result) float64, avgGeo bool, format string) ([]VariantRow, string) {
	headers := []string{"Workload"}
	for _, v := range variants {
		headers = append(headers, v.Name)
	}
	t := stats.NewTable(title, headers...)
	var rows []VariantRow
	agg := map[string][]float64{}
	for _, wl := range Workloads() {
		base := r.baseline(wl)
		row := VariantRow{Workload: wl, Values: map[string]float64{}}
		var cells []float64
		for _, v := range variants {
			res := r.runVariant(wl, v)
			m := metric(res, base)
			row.Values[v.Name] = m
			agg[v.Name] = append(agg[v.Name], m)
			cells = append(cells, m)
		}
		rows = append(rows, row)
		t.AddF(wl, format, cells...)
	}
	label := "Avg"
	if avgGeo {
		label = "Gmean"
	}
	arow := VariantRow{Workload: label, Values: map[string]float64{}}
	var cells []float64
	for _, v := range variants {
		var a float64
		if avgGeo {
			a = stats.GeoMean(agg[v.Name])
		} else {
			a = stats.Mean(agg[v.Name])
		}
		arow.Values[v.Name] = a
		cells = append(cells, a)
	}
	rows = append(rows, arow)
	t.AddF(label, format, cells...)
	return rows, t.String()
}

// Figure8 regenerates Figure 8: stall coverage across footprint variants.
func Figure8(r *Runner) ([]VariantRow, string) {
	return variantFigure(r, "Figure 8: Shotgun stall-cycle coverage by spatial-region mechanism",
		Variants(), func(res, base sim.Result) float64 { return res.StallCoverage(base) }, false, "%.3f")
}

// Figure9 regenerates Figure 9: speedup across footprint variants.
func Figure9(r *Runner) ([]VariantRow, string) {
	return variantFigure(r, "Figure 9: Shotgun speedup by spatial-region mechanism",
		Variants(), func(res, base sim.Result) float64 { return res.Speedup(base) }, true, "%.3f")
}

// Figure10 regenerates Figure 10: prefetch accuracy.
func Figure10(r *Runner) ([]VariantRow, string) {
	return variantFigure(r, "Figure 10: Shotgun prefetch accuracy by spatial-region mechanism",
		AccuracyVariants(), func(res, _ sim.Result) float64 { return res.PrefetchAccuracy }, false, "%.3f")
}

// Figure11 regenerates Figure 11: cycles to fill an L1-D miss.
func Figure11(r *Runner) ([]VariantRow, string) {
	return variantFigure(r, "Figure 11: cycles to fill an L1-D miss by spatial-region mechanism",
		AccuracyVariants(), func(res, _ sim.Result) float64 { return res.AvgDataFillCycles() }, false, "%.1f")
}

// ---------------------------------------------------------------------
// Figure 12: C-BTB size sensitivity.
// ---------------------------------------------------------------------

// Figure12Sizes are the evaluated C-BTB capacities.
var Figure12Sizes = []int{64, 128, 1024}

// Figure12 regenerates Figure 12: Shotgun speedup vs C-BTB entries.
func Figure12(r *Runner) ([]VariantRow, string) {
	headers := []string{"Workload"}
	for _, n := range Figure12Sizes {
		headers = append(headers, fmt.Sprintf("%d-entry", n))
	}
	t := stats.NewTable("Figure 12: Shotgun speedup vs C-BTB size", headers...)
	var rows []VariantRow
	agg := map[int][]float64{}
	for _, wl := range Workloads() {
		base := r.baseline(wl)
		row := VariantRow{Workload: wl, Values: map[string]float64{}}
		var cells []float64
		for _, n := range Figure12Sizes {
			sizes := btb.MustShotgunSizesForBudget(2048)
			sizes.CEntries = n
			res := r.Run(sim.Config{
				Workload: wl, Mechanism: sim.Shotgun, ShotgunSizes: &sizes,
			})
			s := res.Speedup(base)
			row.Values[fmt.Sprintf("%d", n)] = s
			agg[n] = append(agg[n], s)
			cells = append(cells, s)
		}
		rows = append(rows, row)
		t.AddF(wl, "%.3f", cells...)
	}
	arow := VariantRow{Workload: "Gmean", Values: map[string]float64{}}
	var cells []float64
	for _, n := range Figure12Sizes {
		g := stats.GeoMean(agg[n])
		arow.Values[fmt.Sprintf("%d", n)] = g
		cells = append(cells, g)
	}
	rows = append(rows, arow)
	t.AddF("Gmean", "%.3f", cells...)
	return rows, t.String()
}

// ---------------------------------------------------------------------
// Figure 13: BTB storage budget sensitivity (Oracle and DB2).
// ---------------------------------------------------------------------

// Figure13Budgets are the conventional-BTB-equivalent budgets swept.
var Figure13Budgets = []int{512, 1024, 2048, 4096, 8192}

// Figure13Row is one (workload, mechanism, budget) speedup.
type Figure13Row struct {
	Workload  string
	Mechanism string
	Budget    int
	Speedup   float64
}

// Figure13 regenerates Figure 13.
func Figure13(r *Runner) ([]Figure13Row, string) {
	t := stats.NewTable("Figure 13: speedup vs BTB storage budget (budget = equivalent conventional entries)",
		"Workload", "Mechanism", "512", "1K", "2K", "4K", "8K")
	var rows []Figure13Row
	for _, wl := range []string{"Oracle", "DB2"} {
		base := r.baseline(wl)
		for _, m := range []sim.Mechanism{sim.Boomerang, sim.Shotgun} {
			var cells []string
			for _, budget := range Figure13Budgets {
				res := r.Run(sim.Config{Workload: wl, Mechanism: m, BTBEntries: budget})
				s := res.Speedup(base)
				rows = append(rows, Figure13Row{Workload: wl, Mechanism: string(m), Budget: budget, Speedup: s})
				cells = append(cells, fmt.Sprintf("%.3f", s))
			}
			t.AddRow(append([]string{wl, string(m)}, cells...)...)
		}
	}
	return rows, t.String()
}

// ---------------------------------------------------------------------
// All experiments.
// ---------------------------------------------------------------------

// Experiment pairs an identifier with its render function.
type Experiment struct {
	ID   string
	Desc string
	Run  func(*Runner) string
}

// Experiments lists every reproduced table and figure.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "BTB MPKI without prefetching", func(r *Runner) string { _, s := Table1(r); return s }},
		{"fig1", "State-of-the-art vs ideal speedups", func(r *Runner) string { _, s := Figure1(r); return s }},
		{"fig3", "Region spatial locality", func(r *Runner) string { _, s := Figure3(r); return s }},
		{"fig4", "Branch working-set coverage", func(r *Runner) string { _, s := Figure4(r); return s }},
		{"fig6", "Front-end stall coverage", func(r *Runner) string { _, s := Figure6(r); return s }},
		{"fig7", "Speedup over baseline", func(r *Runner) string { _, s := Figure7(r); return s }},
		{"fig8", "Footprint-variant stall coverage", func(r *Runner) string { _, s := Figure8(r); return s }},
		{"fig9", "Footprint-variant speedup", func(r *Runner) string { _, s := Figure9(r); return s }},
		{"fig10", "Footprint-variant prefetch accuracy", func(r *Runner) string { _, s := Figure10(r); return s }},
		{"fig11", "Footprint-variant L1-D fill latency", func(r *Runner) string { _, s := Figure11(r); return s }},
		{"fig12", "C-BTB size sensitivity", func(r *Runner) string { _, s := Figure12(r); return s }},
		{"fig13", "BTB budget sensitivity", func(r *Runner) string { _, s := Figure13(r); return s }},
	}
}
