// Package btb implements the branch target buffer organizations compared
// in the paper: the conventional basic-block-oriented BTB used by the
// baseline, FDIP, Boomerang and Confluence, and Shotgun's split
// organization (U-BTB + C-BTB + RIB) with spatial footprints. Storage
// costs are accounted in bits exactly as in Section 5.2 so that "equal
// storage budget" comparisons are meaningful.
package btb

import (
	"fmt"

	"shotgun/internal/isa"
)

// Stats counts table events.
type Stats struct {
	Lookups uint64
	Hits    uint64
	Misses  uint64
}

// MissRate returns misses per lookup.
func (s Stats) MissRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Lookups)
}

// table is a generic set-associative, true-LRU table keyed by basic-block
// start address. It underlies every BTB organization in this package.
//
// Keys, LRU timestamps, and values live in parallel arrays: a lookup
// scans a whole set's keys (with the valid flag packed into the spare
// top bit — instruction addresses stay far below 2^63), and keeping the
// scan away from the payloads matters for the footprint-carrying U-BTB,
// whose values span several host cache lines per set.
type table[V any] struct {
	name    string
	ways    int
	setMask uint64
	tick    uint64
	keys    []uint64 // sets*ways, set-major: pc | slotValid
	used    []uint64 // LRU timestamps, parallel to keys
	vals    []V
	stats   Stats
}

// slotValid marks an occupied way in its packed key word.
const slotValid = 1 << 63

// geometry factors an entry count into ways x power-of-two sets,
// preferring mid-range associativities.
func geometry(entries int) (sets, ways int, err error) {
	if entries <= 0 {
		return 0, 0, fmt.Errorf("btb: non-positive entry count %d", entries)
	}
	for _, w := range []int{4, 8, 6, 3, 2, 12, 16, 5, 7, 9, 11, 13, 1} {
		if entries%w != 0 {
			continue
		}
		s := entries / w
		if s > 0 && s&(s-1) == 0 {
			return s, w, nil
		}
	}
	return 0, 0, fmt.Errorf("btb: cannot factor %d entries into ways x 2^k sets", entries)
}

func newTable[V any](name string, entries int) (*table[V], error) {
	sets, ways, err := geometry(entries)
	if err != nil {
		return nil, err
	}
	return &table[V]{
		name:    name,
		ways:    ways,
		setMask: uint64(sets - 1),
		keys:    make([]uint64, sets*ways),
		used:    make([]uint64, sets*ways),
		vals:    make([]V, sets*ways),
	}, nil
}

// index hashes the block start PC to a set. Instruction addresses are
// 4-byte aligned, so the low two bits are dropped.
func (t *table[V]) index(pc isa.Addr) int {
	h := uint64(pc) >> 2
	h ^= h >> 15
	return int(h&t.setMask) * t.ways
}

// Lookup finds the entry for the basic block starting at pc, updating LRU
// and hit/miss counters.
func (t *table[V]) Lookup(pc isa.Addr) (V, bool) {
	t.tick++
	t.stats.Lookups++
	base := t.index(pc)
	want := uint64(pc) | slotValid
	for i := base; i < base+t.ways; i++ {
		if t.keys[i] == want {
			t.used[i] = t.tick
			t.stats.Hits++
			return t.vals[i], true
		}
	}
	t.stats.Misses++
	var zero V
	return zero, false
}

// Peek finds the entry without touching LRU state or counters.
func (t *table[V]) Peek(pc isa.Addr) (V, bool) {
	base := t.index(pc)
	want := uint64(pc) | slotValid
	for i := base; i < base+t.ways; i++ {
		if t.keys[i] == want {
			return t.vals[i], true
		}
	}
	var zero V
	return zero, false
}

// Update inserts or overwrites the entry for pc, evicting LRU on conflict.
func (t *table[V]) Update(pc isa.Addr, v V) {
	t.tick++
	base := t.index(pc)
	want := uint64(pc) | slotValid
	// Tag match first — LRU victim bookkeeping is hoisted out of the
	// match loop and only runs on actual insertions.
	for i := base; i < base+t.ways; i++ {
		if t.keys[i] == want {
			t.vals[i] = v
			t.used[i] = t.tick
			return
		}
	}
	// Victim: the first invalid way, else the least recently used.
	victim := -1
	var oldest uint64 = ^uint64(0)
	for i := base; i < base+t.ways; i++ {
		if t.keys[i]&slotValid == 0 {
			victim = i
			break
		}
		if t.used[i] < oldest {
			oldest = t.used[i]
			victim = i
		}
	}
	t.keys[victim] = want
	t.used[victim] = t.tick
	t.vals[victim] = v
}

// Mutate applies fn to the entry for pc if present (no LRU side effects),
// reporting whether the entry existed. Used for footprint read-modify-
// write updates.
func (t *table[V]) Mutate(pc isa.Addr, fn func(*V)) bool {
	base := t.index(pc)
	want := uint64(pc) | slotValid
	for i := base; i < base+t.ways; i++ {
		if t.keys[i] == want {
			fn(&t.vals[i])
			return true
		}
	}
	return false
}

// Entries returns the table capacity.
func (t *table[V]) Entries() int { return len(t.keys) }

// Occupancy returns the number of valid entries.
func (t *table[V]) Occupancy() int {
	n := 0
	for i := range t.keys {
		if t.keys[i]&slotValid != 0 {
			n++
		}
	}
	return n
}

// Stats returns a snapshot of the counters.
func (t *table[V]) Stats() Stats { return t.stats }

// ResetStats clears counters, keeping contents.
func (t *table[V]) ResetStats() { t.stats = Stats{} }
