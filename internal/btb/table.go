// Package btb implements the branch target buffer organizations compared
// in the paper: the conventional basic-block-oriented BTB used by the
// baseline, FDIP, Boomerang and Confluence, and Shotgun's split
// organization (U-BTB + C-BTB + RIB) with spatial footprints. Storage
// costs are accounted in bits exactly as in Section 5.2 so that "equal
// storage budget" comparisons are meaningful.
package btb

import (
	"fmt"

	"shotgun/internal/isa"
)

// Stats counts table events.
type Stats struct {
	Lookups uint64
	Hits    uint64
	Misses  uint64
}

// MissRate returns misses per lookup.
func (s Stats) MissRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Lookups)
}

// table is a generic set-associative, true-LRU table keyed by basic-block
// start address. It underlies every BTB organization in this package.
type table[V any] struct {
	name    string
	ways    int
	setMask uint64
	tick    uint64
	slots   []slot[V]
	stats   Stats
}

type slot[V any] struct {
	key   isa.Addr
	valid bool
	used  uint64
	val   V
}

// geometry factors an entry count into ways x power-of-two sets,
// preferring mid-range associativities.
func geometry(entries int) (sets, ways int, err error) {
	if entries <= 0 {
		return 0, 0, fmt.Errorf("btb: non-positive entry count %d", entries)
	}
	for _, w := range []int{4, 8, 6, 3, 2, 12, 16, 5, 7, 9, 11, 13, 1} {
		if entries%w != 0 {
			continue
		}
		s := entries / w
		if s > 0 && s&(s-1) == 0 {
			return s, w, nil
		}
	}
	return 0, 0, fmt.Errorf("btb: cannot factor %d entries into ways x 2^k sets", entries)
}

func newTable[V any](name string, entries int) (*table[V], error) {
	sets, ways, err := geometry(entries)
	if err != nil {
		return nil, err
	}
	return &table[V]{
		name:    name,
		ways:    ways,
		setMask: uint64(sets - 1),
		slots:   make([]slot[V], sets*ways),
	}, nil
}

// index hashes the block start PC to a set. Instruction addresses are
// 4-byte aligned, so the low two bits are dropped.
func (t *table[V]) index(pc isa.Addr) int {
	h := uint64(pc) >> 2
	h ^= h >> 15
	return int(h&t.setMask) * t.ways
}

// Lookup finds the entry for the basic block starting at pc, updating LRU
// and hit/miss counters.
func (t *table[V]) Lookup(pc isa.Addr) (V, bool) {
	t.tick++
	t.stats.Lookups++
	base := t.index(pc)
	for i := base; i < base+t.ways; i++ {
		if t.slots[i].valid && t.slots[i].key == pc {
			t.slots[i].used = t.tick
			t.stats.Hits++
			return t.slots[i].val, true
		}
	}
	t.stats.Misses++
	var zero V
	return zero, false
}

// Peek finds the entry without touching LRU state or counters.
func (t *table[V]) Peek(pc isa.Addr) (V, bool) {
	base := t.index(pc)
	for i := base; i < base+t.ways; i++ {
		if t.slots[i].valid && t.slots[i].key == pc {
			return t.slots[i].val, true
		}
	}
	var zero V
	return zero, false
}

// Update inserts or overwrites the entry for pc, evicting LRU on conflict.
func (t *table[V]) Update(pc isa.Addr, v V) {
	t.tick++
	base := t.index(pc)
	// Tag match first — LRU victim bookkeeping is hoisted out of the
	// match loop and only runs on actual insertions.
	for i := base; i < base+t.ways; i++ {
		if t.slots[i].valid && t.slots[i].key == pc {
			t.slots[i].val = v
			t.slots[i].used = t.tick
			return
		}
	}
	// Victim: the first invalid way, else the least recently used.
	victim := -1
	var oldest uint64 = ^uint64(0)
	for i := base; i < base+t.ways; i++ {
		if !t.slots[i].valid {
			victim = i
			break
		}
		if t.slots[i].used < oldest {
			oldest = t.slots[i].used
			victim = i
		}
	}
	t.slots[victim] = slot[V]{key: pc, valid: true, used: t.tick, val: v}
}

// Mutate applies fn to the entry for pc if present (no LRU side effects),
// reporting whether the entry existed. Used for footprint read-modify-
// write updates.
func (t *table[V]) Mutate(pc isa.Addr, fn func(*V)) bool {
	base := t.index(pc)
	for i := base; i < base+t.ways; i++ {
		if t.slots[i].valid && t.slots[i].key == pc {
			fn(&t.slots[i].val)
			return true
		}
	}
	return false
}

// Entries returns the table capacity.
func (t *table[V]) Entries() int { return len(t.slots) }

// Occupancy returns the number of valid entries.
func (t *table[V]) Occupancy() int {
	n := 0
	for i := range t.slots {
		if t.slots[i].valid {
			n++
		}
	}
	return n
}

// Stats returns a snapshot of the counters.
func (t *table[V]) Stats() Stats { return t.stats }

// ResetStats clears counters, keeping contents.
func (t *table[V]) ResetStats() { t.stats = Stats{} }
