package btb

import "fmt"

// Per-entry storage costs in bits, from Section 5.2 of the paper.
const (
	// ConventionalEntryBits: 37 tag + 46 target + 5 size + 3 type +
	// 2 direction.
	ConventionalEntryBits = 93
	// UEntryBaseBits excludes the two footprints (added per layout):
	// 38 tag + 46 target + 5 size + 1 type.
	UEntryBaseBits = 90
	// CEntryBits: 41 tag + 22 target offset + 5 size + 2 direction.
	CEntryBits = 70
	// REntryBits: 39 tag + 5 size + 1 type.
	REntryBits = 45
)

// ShotgunSizesForBudget returns the Shotgun structure capacities whose
// combined storage matches a conventional BTB of the given entry count,
// following Section 6.5: the baseline 2K budget maps to 1.5K U-BTB +
// 128 C-BTB + 512 RIB; 512-4K budgets scale those proportionally; the 8K
// budget caps the U-BTB at 4K entries (Figure 4 shows that suffices for
// the whole unconditional working set) and spends the remainder on a 1K
// RIB and 4K C-BTB.
func ShotgunSizesForBudget(conventionalEntries int) (Sizes, error) {
	switch conventionalEntries {
	case 512:
		return Sizes{UEntries: 384, CEntries: 32, REntries: 128}, nil
	case 1024:
		return Sizes{UEntries: 768, CEntries: 64, REntries: 256}, nil
	case 2048:
		return Sizes{UEntries: 1536, CEntries: 128, REntries: 512}, nil
	case 4096:
		return Sizes{UEntries: 3072, CEntries: 256, REntries: 1024}, nil
	case 8192:
		return Sizes{UEntries: 4096, CEntries: 4096, REntries: 1024}, nil
	}
	return Sizes{}, fmt.Errorf("btb: no Shotgun size mapping for %d-entry budget", conventionalEntries)
}

// MustShotgunSizesForBudget panics on unknown budgets.
func MustShotgunSizesForBudget(conventionalEntries int) Sizes {
	s, err := ShotgunSizesForBudget(conventionalEntries)
	if err != nil {
		panic(err)
	}
	return s
}

// ConventionalStorageBits returns the bit cost of an n-entry conventional
// BTB.
func ConventionalStorageBits(n int) int { return n * ConventionalEntryBits }

// ShotgunSizesNoRIB returns a Shotgun configuration without a dedicated
// RIB at the same storage budget: returns occupy full U-BTB entries
// (whose Target and both footprint fields go unused — the inefficiency
// Section 4.2.1 quantifies at >50% of entry storage), so the freed RIB
// bits buy U-BTB entries instead. Used by the RIB ablation benchmark.
func ShotgunSizesNoRIB(conventionalEntries int) (Sizes, error) {
	base, err := ShotgunSizesForBudget(conventionalEntries)
	if err != nil {
		return Sizes{}, err
	}
	uBits := UEntryBaseBits + 16 // 8-bit footprints
	extra := base.REntries * REntryBits / uBits
	target := base.UEntries + extra
	for n := target; n > base.UEntries; n-- {
		if _, _, err := geometry(n); err == nil {
			return Sizes{UEntries: n, CEntries: base.CEntries, REntries: 0}, nil
		}
	}
	return Sizes{UEntries: base.UEntries, CEntries: base.CEntries, REntries: 0}, nil
}
