package btb

import (
	"testing"

	"shotgun/internal/footprint"
	"shotgun/internal/isa"
)

func TestGeometryFactoring(t *testing.T) {
	for _, entries := range []int{32, 64, 128, 256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096, 8192, 16384} {
		sets, ways, err := geometry(entries)
		if err != nil {
			t.Fatalf("geometry(%d): %v", entries, err)
		}
		if sets*ways != entries {
			t.Fatalf("geometry(%d) = %d x %d", entries, sets, ways)
		}
		if sets&(sets-1) != 0 {
			t.Fatalf("geometry(%d): sets %d not power of two", entries, sets)
		}
	}
	if _, _, err := geometry(0); err == nil {
		t.Fatal("geometry(0) accepted")
	}
	if _, _, err := geometry(17 * 13); err == nil {
		t.Fatal("unfactorable count accepted")
	}
}

func TestConventionalInsertLookup(t *testing.T) {
	b := MustNewConventional(2048)
	e := Entry{NumInstr: 5, Kind: isa.BranchCall, Target: 0x8000}
	b.Insert(0x1000, e)
	got, ok := b.Lookup(0x1000)
	if !ok || got != e {
		t.Fatalf("lookup = %+v, %v", got, ok)
	}
	if _, ok := b.Lookup(0x2000); ok {
		t.Fatal("phantom hit")
	}
	s := b.Stats()
	if s.Lookups != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MissRate() != 0.5 {
		t.Fatalf("miss rate = %v", s.MissRate())
	}
}

func TestConventionalEviction(t *testing.T) {
	b := MustNewConventional(64) // small, force conflicts
	n := 1000
	for i := 0; i < n; i++ {
		b.Insert(isa.Addr(0x1000+i*64), Entry{NumInstr: 4, Kind: isa.BranchCond, Target: 0x100})
	}
	if b.Occupancy() > 64 {
		t.Fatalf("occupancy %d exceeds capacity", b.Occupancy())
	}
}

func TestConventionalStorage(t *testing.T) {
	b := MustNewConventional(2048)
	// Paper: 2K entries x 93 bits = 23.25KB.
	if got := b.StorageBits(); got != 2048*93 {
		t.Fatalf("storage = %d bits", got)
	}
	if kb := float64(b.StorageBits()) / 8 / 1024; kb != 23.25 {
		t.Fatalf("storage = %v KB, want 23.25", kb)
	}
}

func TestShotgunRouting(t *testing.T) {
	s := MustNewShotgun(MustShotgunSizesForBudget(2048), footprint.Layout8)

	s.Insert(0x100, Entry{NumInstr: 4, Kind: isa.BranchCall, Target: 0x8000})
	s.Insert(0x200, Entry{NumInstr: 3, Kind: isa.BranchCond, Target: 0x300})
	s.Insert(0x300, Entry{NumInstr: 2, Kind: isa.BranchRet})
	s.Insert(0x400, Entry{NumInstr: 2, Kind: isa.BranchTrapRet})
	s.Insert(0x500, Entry{NumInstr: 2, Kind: isa.BranchNone}) // must not be stored

	if h := s.Lookup(0x100); h.Kind != HitU || !h.U.IsCall || h.U.Target != 0x8000 {
		t.Fatalf("call lookup = %+v", h)
	}
	if h := s.Lookup(0x200); h.Kind != HitC || h.C.Target != 0x300 {
		t.Fatalf("cond lookup = %+v", h)
	}
	if h := s.Lookup(0x300); h.Kind != HitR || h.R.IsTrapRet {
		t.Fatalf("ret lookup = %+v", h)
	}
	if h := s.Lookup(0x400); h.Kind != HitR || !h.R.IsTrapRet {
		t.Fatalf("trapret lookup = %+v", h)
	}
	if h := s.Lookup(0x500); h.Kind != HitNone {
		t.Fatalf("BranchNone stored: %+v", h)
	}
}

func TestShotgunFootprintPreservedOnReinsert(t *testing.T) {
	s := MustNewShotgun(MustShotgunSizesForBudget(2048), footprint.Layout8)
	s.Insert(0x100, Entry{NumInstr: 4, Kind: isa.BranchCall, Target: 0x8000})

	ok := s.CommitFootprint(footprint.Commit{Owner: 0x100, Vector: footprint.Layout8.Set(0, 2)})
	if !ok {
		t.Fatal("commit to resident entry failed")
	}
	// Re-insert (e.g. via predecode) must keep the footprint.
	s.Insert(0x100, Entry{NumInstr: 4, Kind: isa.BranchCall, Target: 0x8000})
	h := s.Lookup(0x100)
	if !footprint.Layout8.Contains(h.U.CallFoot, 2) {
		t.Fatal("re-insert dropped footprint")
	}
}

func TestShotgunReturnFootprint(t *testing.T) {
	s := MustNewShotgun(MustShotgunSizesForBudget(2048), footprint.Layout8)
	s.Insert(0x100, Entry{NumInstr: 4, Kind: isa.BranchCall, Target: 0x8000})
	s.CommitFootprint(footprint.Commit{Owner: 0x100, IsReturnRegion: true, Vector: footprint.Layout8.Set(0, 1)})

	v, ok := s.ReadReturnFootprint(0x100)
	if !ok || !footprint.Layout8.Contains(v, 1) {
		t.Fatalf("return footprint = %b, %v", v, ok)
	}
	// Non-call entries expose no return footprint.
	s.Insert(0x600, Entry{NumInstr: 4, Kind: isa.BranchJump, Target: 0x9000})
	if _, ok := s.ReadReturnFootprint(0x600); ok {
		t.Fatal("jump entry returned a return footprint")
	}
	if _, ok := s.ReadReturnFootprint(0xdead); ok {
		t.Fatal("absent entry returned a footprint")
	}
}

func TestShotgunCommitToEvictedDropped(t *testing.T) {
	s := MustNewShotgun(MustShotgunSizesForBudget(2048), footprint.Layout8)
	if s.CommitFootprint(footprint.Commit{Owner: 0x100, Vector: 1}) {
		t.Fatal("commit to absent entry succeeded")
	}
}

func TestStorageBudgetParity(t *testing.T) {
	// Section 5.2: Shotgun's three structures must cost within 3% of the
	// conventional BTB at every budget point of Figure 13.
	for _, entries := range []int{512, 1024, 2048, 4096, 8192} {
		conv := ConventionalStorageBits(entries)
		sz := MustShotgunSizesForBudget(entries)
		s := MustNewShotgun(sz, footprint.Layout8)
		got := s.StorageBits()
		ratio := float64(got) / float64(conv)
		if ratio < 0.90 || ratio > 1.10 {
			t.Fatalf("budget %d: shotgun %d bits vs conventional %d (ratio %.3f)",
				entries, got, conv, ratio)
		}
	}
}

func TestPaperStorageNumbers(t *testing.T) {
	// Section 5.2's exact numbers for the 2K-budget configuration:
	// U-BTB 19.87KB, C-BTB 1.1KB, RIB 2.8KB, total 23.77KB.
	s := MustNewShotgun(MustShotgunSizesForBudget(2048), footprint.Layout8)
	uKB := float64(s.U.Entries()*(UEntryBaseBits+16)) / 8 / 1024
	cKB := float64(s.C.Entries()*CEntryBits) / 8 / 1024
	rKB := float64(s.R.Entries()*REntryBits) / 8 / 1024
	total := float64(s.StorageBits()) / 8 / 1024
	if uKB < 19.8 || uKB > 19.95 {
		t.Fatalf("U-BTB = %.2fKB, paper says 19.87KB", uKB)
	}
	if cKB < 1.05 || cKB > 1.15 {
		t.Fatalf("C-BTB = %.2fKB, paper says 1.1KB", cKB)
	}
	if rKB < 2.75 || rKB > 2.85 {
		t.Fatalf("RIB = %.2fKB, paper says 2.8KB", rKB)
	}
	if total < 23.7 || total > 23.85 {
		t.Fatalf("total = %.2fKB, paper says 23.77KB", total)
	}
}

func TestUnknownBudget(t *testing.T) {
	if _, err := ShotgunSizesForBudget(1000); err == nil {
		t.Fatal("unknown budget accepted")
	}
}

func TestPrefetchBufferFIFO(t *testing.T) {
	b := NewPrefetchBuffer(2)
	b.Insert(0x100, Entry{NumInstr: 1, Kind: isa.BranchCond})
	b.Insert(0x200, Entry{NumInstr: 2, Kind: isa.BranchCond})
	b.Insert(0x300, Entry{NumInstr: 3, Kind: isa.BranchCond})
	if _, ok := b.Take(0x100); ok {
		t.Fatal("oldest not evicted")
	}
	if b.EvictedUnused != 1 {
		t.Fatalf("EvictedUnused = %d", b.EvictedUnused)
	}
	e, ok := b.Take(0x300)
	if !ok || e.NumInstr != 3 {
		t.Fatalf("take = %+v, %v", e, ok)
	}
	if b.Len() != 1 {
		t.Fatalf("len = %d", b.Len())
	}
	if b.Hits != 1 {
		t.Fatalf("hits = %d", b.Hits)
	}
}

func TestPrefetchBufferOverwrite(t *testing.T) {
	b := NewPrefetchBuffer(4)
	b.Insert(0x100, Entry{NumInstr: 1, Kind: isa.BranchCond})
	b.Insert(0x100, Entry{NumInstr: 9, Kind: isa.BranchCond})
	if b.Len() != 1 {
		t.Fatalf("len = %d", b.Len())
	}
	if e, _ := b.Take(0x100); e.NumInstr != 9 {
		t.Fatalf("overwrite lost: %+v", e)
	}
}

func TestTableMutateNoLRUEffect(t *testing.T) {
	tab, err := newTable[int]("t", 8)
	if err != nil {
		t.Fatal(err)
	}
	tab.Update(0x100, 1)
	if !tab.Mutate(0x100, func(v *int) { *v = 42 }) {
		t.Fatal("mutate missed")
	}
	v, ok := tab.Peek(0x100)
	if !ok || v != 42 {
		t.Fatalf("peek = %d, %v", v, ok)
	}
	if tab.Stats().Lookups != 0 {
		t.Fatal("Mutate/Peek must not count lookups")
	}
}

func BenchmarkConventionalLookup(b *testing.B) {
	btb := MustNewConventional(2048)
	for i := 0; i < 2048; i++ {
		btb.Insert(isa.Addr(0x1000+i*20), Entry{NumInstr: 5, Kind: isa.BranchCond, Target: 0x100})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		btb.Lookup(isa.Addr(0x1000 + (i%4096)*20))
	}
}

func BenchmarkShotgunLookup(b *testing.B) {
	s := MustNewShotgun(MustShotgunSizesForBudget(2048), footprint.Layout8)
	for i := 0; i < 1536; i++ {
		s.Insert(isa.Addr(0x1000+i*20), Entry{NumInstr: 5, Kind: isa.BranchCall, Target: 0x100})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Lookup(isa.Addr(0x1000 + (i%4096)*20))
	}
}

func TestNoRIBAblation(t *testing.T) {
	sz, err := ShotgunSizesNoRIB(2048)
	if err != nil {
		t.Fatal(err)
	}
	if sz.REntries != 0 {
		t.Fatalf("REntries = %d", sz.REntries)
	}
	base := MustShotgunSizesForBudget(2048)
	if sz.UEntries <= base.UEntries {
		t.Fatalf("no-RIB U-BTB %d not larger than %d", sz.UEntries, base.UEntries)
	}
	s := MustNewShotgun(sz, footprint.Layout8)
	// Storage stays within a few percent of the with-RIB budget.
	withRIB := MustNewShotgun(base, footprint.Layout8).StorageBits()
	ratio := float64(s.StorageBits()) / float64(withRIB)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("no-RIB storage ratio %.3f", ratio)
	}
	// Returns land in the U-BTB and still hit.
	s.Insert(0x100, Entry{NumInstr: 2, Kind: isa.BranchRet})
	if h := s.Lookup(0x100); h.Kind != HitU {
		t.Fatalf("no-RIB return lookup = %v", h.Kind)
	}
}
