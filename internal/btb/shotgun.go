package btb

import (
	"fmt"

	"shotgun/internal/footprint"
	"shotgun/internal/isa"
)

// UEntry is an unconditional-branch BTB entry (Section 4.2.1): the branch
// kind (call-like or plain jump), its target, and the two spatial
// footprints — the target region's (Call Footprint) and, for calls, the
// fall-through region's (Return Footprint), read on RIB hits via the RAS.
// Storage: 38-bit tag + 46-bit target + 5-bit size + 1-bit type + two
// footprints (2 x 8 bits by default) = 106 bits.
type UEntry struct {
	NumInstr int
	// IsCall distinguishes call-like branches (call/trap, which push the
	// RAS and own a Return Footprint) from plain jumps.
	IsCall bool
	Target isa.Addr
	// CallFoot is the spatial footprint of the target region.
	CallFoot footprint.Vector
	// RetFoot is the spatial footprint of the return region (call-like
	// branches only).
	RetFoot footprint.Vector
}

// CEntry is a conditional-branch BTB entry: size and target offset only
// (type is implicit, direction comes from the TAGE predictor).
// Storage: 41-bit tag + 22-bit target offset + 5-bit size + 2-bit
// direction = 70 bits.
type CEntry struct {
	NumInstr int
	Target   isa.Addr
}

// REntry is a Return Instruction Buffer entry: returns read their target
// from the RAS and their footprint from the calling U-BTB entry, so only
// identity, size and the return flavor are stored.
// Storage: 39-bit tag + 5-bit size + 1-bit type = 45 bits.
type REntry struct {
	NumInstr  int
	IsTrapRet bool
}

// Sizes groups the three structure capacities.
type Sizes struct {
	UEntries int
	CEntries int
	REntries int
}

// Validate reports whether NewShotgun can build these capacities: each
// table's entry count must factor into ways x power-of-two sets.
// REntries may be zero (the no-RIB ablation). External sources of
// explicit sizes (sim.Config.Validate) check here instead of panicking
// mid-simulation.
func (s Sizes) Validate() error {
	if _, _, err := geometry(s.UEntries); err != nil {
		return fmt.Errorf("U-BTB: %w", err)
	}
	if _, _, err := geometry(s.CEntries); err != nil {
		return fmt.Errorf("C-BTB: %w", err)
	}
	if s.REntries != 0 {
		if _, _, err := geometry(s.REntries); err != nil {
			return fmt.Errorf("RIB: %w", err)
		}
	}
	return nil
}

// Shotgun is the paper's split BTB organization.
type Shotgun struct {
	U *table[UEntry]
	C *table[CEntry]
	R *table[REntry]

	layout footprint.Layout
}

// NewShotgun builds the three BTBs with the given capacities and
// footprint layout.
func NewShotgun(sz Sizes, layout footprint.Layout) (*Shotgun, error) {
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	u, err := newTable[UEntry]("u-btb", sz.UEntries)
	if err != nil {
		return nil, fmt.Errorf("U-BTB: %w", err)
	}
	c, err := newTable[CEntry]("c-btb", sz.CEntries)
	if err != nil {
		return nil, fmt.Errorf("C-BTB: %w", err)
	}
	// REntries == 0 selects the no-RIB ablation: returns are stored as
	// full U-BTB entries, wasting their Target and footprint fields
	// (the inefficiency Section 4.2.1 motivates the RIB with).
	var r *table[REntry]
	if sz.REntries > 0 {
		r, err = newTable[REntry]("rib", sz.REntries)
		if err != nil {
			return nil, fmt.Errorf("RIB: %w", err)
		}
	}
	return &Shotgun{U: u, C: c, R: r, layout: layout}, nil
}

// MustNewShotgun is NewShotgun for static configurations.
func MustNewShotgun(sz Sizes, layout footprint.Layout) *Shotgun {
	s, err := NewShotgun(sz, layout)
	if err != nil {
		panic(err)
	}
	return s
}

// Layout returns the footprint geometry.
func (s *Shotgun) Layout() footprint.Layout { return s.layout }

// HitKind says which structure satisfied a lookup.
type HitKind uint8

const (
	// HitNone: all three BTBs missed.
	HitNone HitKind = iota
	// HitU: the unconditional-branch BTB hit.
	HitU
	// HitC: the conditional-branch BTB hit.
	HitC
	// HitR: the return instruction buffer hit.
	HitR
)

func (k HitKind) String() string {
	switch k {
	case HitNone:
		return "miss"
	case HitU:
		return "U-BTB"
	case HitC:
		return "C-BTB"
	case HitR:
		return "RIB"
	}
	return fmt.Sprintf("HitKind(%d)", uint8(k))
}

// Hit is the unified result of querying the three BTBs in parallel.
type Hit struct {
	Kind HitKind
	U    UEntry
	C    CEntry
	R    REntry
}

// Lookup queries U-BTB, C-BTB and RIB in parallel (Section 4.2.3) for the
// basic block starting at pc.
func (s *Shotgun) Lookup(pc isa.Addr) Hit {
	// All three are probed in hardware; probing all three here keeps the
	// per-structure hit/miss statistics faithful.
	u, uok := s.U.Lookup(pc)
	c, cok := s.C.Lookup(pc)
	var r REntry
	rok := false
	if s.R != nil {
		r, rok = s.R.Lookup(pc)
	}
	switch {
	case uok:
		return Hit{Kind: HitU, U: u}
	case cok:
		return Hit{Kind: HitC, C: c}
	case rok:
		return Hit{Kind: HitR, R: r}
	}
	return Hit{Kind: HitNone}
}

// Insert routes a branch into the structure its kind belongs to
// (Section 4.2.3: "stores it into one of the BTBs depending on branch
// type"). Existing footprints are preserved on U-BTB re-insertion.
func (s *Shotgun) Insert(pc isa.Addr, e Entry) {
	switch {
	case e.Kind == isa.BranchCond:
		s.C.Update(pc, CEntry{NumInstr: e.NumInstr, Target: e.Target})
	case e.Kind.IsReturn():
		if s.R == nil {
			// No-RIB ablation: a return burns a whole U-BTB entry.
			s.U.Update(pc, UEntry{NumInstr: e.NumInstr})
			return
		}
		s.R.Update(pc, REntry{NumInstr: e.NumInstr, IsTrapRet: e.Kind == isa.BranchTrapRet})
	case e.Kind.IsUnconditional():
		ne := UEntry{NumInstr: e.NumInstr, IsCall: e.Kind.IsCallLike(), Target: e.Target}
		if old, ok := s.U.Peek(pc); ok {
			ne.CallFoot, ne.RetFoot = old.CallFoot, old.RetFoot
		}
		s.U.Update(pc, ne)
	}
	// BranchNone blocks are not branches and are never stored.
}

// CommitFootprint applies a recorded region footprint to its owning U-BTB
// entry (Section 4.2.2). Commits whose owner is no longer resident are
// dropped, mirroring hardware. It reports whether the owner was found.
func (s *Shotgun) CommitFootprint(c footprint.Commit) bool {
	return s.U.Mutate(c.Owner, func(e *UEntry) {
		if c.IsReturnRegion {
			e.RetFoot = c.Vector
		} else {
			e.CallFoot = c.Vector
		}
	})
}

// ReadReturnFootprint fetches the Return Footprint stored with the call
// whose basic block is callBlock (indexed via the extended RAS on RIB
// hits). The second result reports whether the call entry was resident.
func (s *Shotgun) ReadReturnFootprint(callBlock isa.Addr) (footprint.Vector, bool) {
	e, ok := s.U.Peek(callBlock)
	if !ok || !e.IsCall {
		return 0, false
	}
	return e.RetFoot, true
}

// StorageBits returns the modeled cost of all three structures using the
// Section 5.2 entry layouts, adjusted for the configured footprint width.
func (s *Shotgun) StorageBits() int {
	uBits := UEntryBaseBits + 2*s.layout.Bits()
	total := s.U.Entries()*uBits + s.C.Entries()*CEntryBits
	if s.R != nil {
		total += s.R.Entries() * REntryBits
	}
	return total
}

// ResetStats clears all lookup counters.
func (s *Shotgun) ResetStats() {
	s.U.ResetStats()
	s.C.ResetStats()
	if s.R != nil {
		s.R.ResetStats()
	}
}
