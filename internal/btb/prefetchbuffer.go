package btb

import "shotgun/internal/isa"

// PrefetchBuffer is the small FIFO holding predecoded branch entries that
// have not yet been touched by the front-end (Boomerang's BTB prefetch
// buffer, reused by Shotgun; 32 entries in the paper's configuration).
// On a front-end hit the entry is moved into the appropriate BTB.
//
// At this capacity a linear scan over a compact key slice beats hashing:
// keys live in FIFO order (oldest first) with values parallel to them.
type PrefetchBuffer struct {
	capacity int
	keys     []isa.Addr
	vals     []Entry

	Hits          uint64
	EvictedUnused uint64
}

// NewPrefetchBuffer builds a buffer with the given capacity.
func NewPrefetchBuffer(capacity int) *PrefetchBuffer {
	if capacity <= 0 {
		panic("btb: prefetch buffer capacity must be positive")
	}
	return &PrefetchBuffer{
		capacity: capacity,
		keys:     make([]isa.Addr, 0, capacity),
		vals:     make([]Entry, 0, capacity),
	}
}

// Insert buffers a predecoded entry keyed by basic-block start PC,
// evicting the oldest entry when full. Present keys are overwritten in
// place (FIFO position kept).
func (b *PrefetchBuffer) Insert(pc isa.Addr, e Entry) {
	for i, k := range b.keys {
		if k == pc {
			b.vals[i] = e
			return
		}
	}
	if len(b.keys) >= b.capacity {
		b.EvictedUnused++
		copy(b.keys, b.keys[1:])
		copy(b.vals, b.vals[1:])
		b.keys[len(b.keys)-1] = pc
		b.vals[len(b.vals)-1] = e
		return
	}
	b.keys = append(b.keys, pc)
	b.vals = append(b.vals, e)
}

// Take removes and returns the entry for pc (promotion into a BTB).
func (b *PrefetchBuffer) Take(pc isa.Addr) (Entry, bool) {
	for i, k := range b.keys {
		if k == pc {
			e := b.vals[i]
			b.keys = append(b.keys[:i], b.keys[i+1:]...)
			b.vals = append(b.vals[:i], b.vals[i+1:]...)
			b.Hits++
			return e, true
		}
	}
	return Entry{}, false
}

// Len returns the number of buffered entries.
func (b *PrefetchBuffer) Len() int { return len(b.keys) }
