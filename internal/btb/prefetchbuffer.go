package btb

import "shotgun/internal/isa"

// PrefetchBuffer is the small FIFO holding predecoded branch entries that
// have not yet been touched by the front-end (Boomerang's BTB prefetch
// buffer, reused by Shotgun; 32 entries in the paper's configuration).
// On a front-end hit the entry is moved into the appropriate BTB.
type PrefetchBuffer struct {
	capacity int
	fifo     []isa.Addr
	entries  map[isa.Addr]Entry

	Hits          uint64
	EvictedUnused uint64
}

// NewPrefetchBuffer builds a buffer with the given capacity.
func NewPrefetchBuffer(capacity int) *PrefetchBuffer {
	if capacity <= 0 {
		panic("btb: prefetch buffer capacity must be positive")
	}
	return &PrefetchBuffer{
		capacity: capacity,
		entries:  make(map[isa.Addr]Entry, capacity),
	}
}

// Insert buffers a predecoded entry keyed by basic-block start PC,
// evicting the oldest entry when full. Present keys are overwritten in
// place (FIFO position kept).
func (b *PrefetchBuffer) Insert(pc isa.Addr, e Entry) {
	if _, ok := b.entries[pc]; ok {
		b.entries[pc] = e
		return
	}
	if len(b.fifo) >= b.capacity {
		victim := b.fifo[0]
		b.fifo = b.fifo[1:]
		delete(b.entries, victim)
		b.EvictedUnused++
	}
	b.fifo = append(b.fifo, pc)
	b.entries[pc] = e
}

// Take removes and returns the entry for pc (promotion into a BTB).
func (b *PrefetchBuffer) Take(pc isa.Addr) (Entry, bool) {
	e, ok := b.entries[pc]
	if !ok {
		return Entry{}, false
	}
	delete(b.entries, pc)
	for i, a := range b.fifo {
		if a == pc {
			b.fifo = append(b.fifo[:i], b.fifo[i+1:]...)
			break
		}
	}
	b.Hits++
	return e, true
}

// Len returns the number of buffered entries.
func (b *PrefetchBuffer) Len() int { return len(b.fifo) }
