package btb

import "shotgun/internal/isa"

// Entry is a basic-block-oriented BTB entry (Yeh & Patt style, as used by
// Boomerang): it describes the basic block starting at the lookup PC —
// its size, the kind of branch that terminates it, and that branch's
// target. Storage cost per Section 5.2: 37-bit tag + 46-bit target +
// 5-bit size + 3-bit type + 2-bit direction = 93 bits.
type Entry struct {
	// NumInstr is the basic block length in instructions.
	NumInstr int
	// Kind is the terminating branch kind.
	Kind isa.BranchKind
	// Target is the taken target (unused for returns, which read the RAS).
	Target isa.Addr
}

// EntryFromBlock derives the BTB payload from a retired basic block.
func EntryFromBlock(bb isa.BasicBlock) Entry {
	return Entry{NumInstr: bb.NumInstr, Kind: bb.Kind, Target: bb.Target}
}

// Conventional is the single-structure basic-block BTB used by the
// no-prefetch baseline, FDIP, Boomerang, and (at 16K entries) Confluence.
type Conventional struct {
	tab *table[Entry]
}

// NewConventional builds a BTB with the given entry count (e.g. 2048).
func NewConventional(entries int) (*Conventional, error) {
	t, err := newTable[Entry]("btb", entries)
	if err != nil {
		return nil, err
	}
	return &Conventional{tab: t}, nil
}

// MustNewConventional is NewConventional for static sizes.
func MustNewConventional(entries int) *Conventional {
	b, err := NewConventional(entries)
	if err != nil {
		panic(err)
	}
	return b
}

// Lookup predicts the basic block starting at pc.
func (b *Conventional) Lookup(pc isa.Addr) (Entry, bool) { return b.tab.Lookup(pc) }

// Peek looks up without LRU/counter side effects.
func (b *Conventional) Peek(pc isa.Addr) (Entry, bool) { return b.tab.Peek(pc) }

// Insert fills the entry for the block starting at pc.
func (b *Conventional) Insert(pc isa.Addr, e Entry) { b.tab.Update(pc, e) }

// Entries returns capacity; Occupancy the number of valid entries.
func (b *Conventional) Entries() int   { return b.tab.Entries() }
func (b *Conventional) Occupancy() int { return b.tab.Occupancy() }

// Stats / ResetStats expose lookup counters.
func (b *Conventional) Stats() Stats { return b.tab.Stats() }
func (b *Conventional) ResetStats()  { b.tab.ResetStats() }

// StorageBits returns the modeled cost: 93 bits per entry (Section 5.2).
func (b *Conventional) StorageBits() int { return b.Entries() * ConventionalEntryBits }
