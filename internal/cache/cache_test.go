package cache

import (
	"testing"
	"testing/quick"

	"shotgun/internal/isa"
)

func TestGeometry(t *testing.T) {
	c := MustNew("l1i", 32<<10, 2)
	if c.Sets() != 256 || c.Ways() != 2 || c.SizeBytes() != 32<<10 {
		t.Fatalf("geometry: sets=%d ways=%d size=%d", c.Sets(), c.Ways(), c.SizeBytes())
	}
}

func TestBadGeometry(t *testing.T) {
	if _, err := New("x", 0, 2); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := New("x", 100, 2); err == nil {
		t.Error("non-multiple size accepted")
	}
	if _, err := New("x", 3*64*2, 2); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
}

func TestHitAfterInsert(t *testing.T) {
	c := MustNew("t", 4<<10, 4)
	addr := isa.Addr(0x1000)
	if c.Access(addr) {
		t.Fatal("hit in empty cache")
	}
	c.Insert(addr)
	if !c.Access(addr) {
		t.Fatal("miss after insert")
	}
	// Same block, different offset, still hits.
	if !c.Access(addr + 63) {
		t.Fatal("miss within same block")
	}
	// Next block misses.
	if c.Access(addr + 64) {
		t.Fatal("hit on different block")
	}
}

func TestLRUEviction(t *testing.T) {
	c := MustNew("t", 2*64, 2) // 1 set, 2 ways
	a, b, d := isa.Addr(0), isa.Addr(64), isa.Addr(128)
	c.Insert(a)
	c.Insert(b)
	c.Access(a) // a now MRU
	ev, did := c.Insert(d)
	if !did || ev != b {
		t.Fatalf("expected eviction of %v, got %v (did=%v)", b, ev, did)
	}
	if !c.Contains(a) || !c.Contains(d) || c.Contains(b) {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestEvictedAddressRoundTrip(t *testing.T) {
	// The reconstructed eviction address must map back to the same set
	// and tag.
	c := MustNew("t", 8<<10, 2)
	if err := quick.Check(func(raw uint64) bool {
		addr := isa.Addr(raw & ((1 << isa.VABits) - 1)).Block()
		conflict := addr + isa.Addr(c.Sets()*isa.BlockBytes)
		conflict2 := addr + isa.Addr(2*c.Sets()*isa.BlockBytes)
		c.Insert(addr)
		c.Insert(conflict)
		ev, did := c.Insert(conflict2) // must evict addr (LRU)
		if !did {
			return false
		}
		return ev == addr
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertPresentRefreshes(t *testing.T) {
	c := MustNew("t", 2*64, 2)
	a, b, d := isa.Addr(0), isa.Addr(64), isa.Addr(128)
	c.Insert(a)
	c.Insert(b)
	c.Insert(a) // refresh a; b becomes LRU
	ev, _ := c.Insert(d)
	if ev != b {
		t.Fatalf("refresh did not update LRU: evicted %v", ev)
	}
}

func TestInvalidate(t *testing.T) {
	c := MustNew("t", 4<<10, 4)
	c.Insert(0x40)
	if !c.Invalidate(0x40) {
		t.Fatal("invalidate missed present block")
	}
	if c.Contains(0x40) {
		t.Fatal("block survived invalidation")
	}
	if c.Invalidate(0x40) {
		t.Fatal("invalidate hit absent block")
	}
}

func TestStats(t *testing.T) {
	c := MustNew("t", 4<<10, 4)
	c.Access(0)       // miss
	c.Insert(0)       // insert
	c.Access(0)       // hit
	c.Access(1 << 20) // miss
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 || s.Inserts != 1 {
		t.Fatalf("stats = %+v", s)
	}
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Fatal("reset failed")
	}
	if !c.Contains(0) {
		t.Fatal("reset dropped contents")
	}
}

func TestOccupancy(t *testing.T) {
	c := MustNew("t", 4<<10, 4)
	if c.Occupancy() != 0 {
		t.Fatal("fresh cache not empty")
	}
	for i := 0; i < 10; i++ {
		c.Insert(isa.Addr(i * 64))
	}
	if c.Occupancy() != 10 {
		t.Fatalf("occupancy = %d", c.Occupancy())
	}
}

func TestCapacityProperty(t *testing.T) {
	// Occupancy never exceeds capacity regardless of insert pattern.
	c := MustNew("t", 1<<10, 2) // 16 blocks
	for i := 0; i < 1000; i++ {
		c.Insert(isa.Addr(i*64) * 7)
	}
	if c.Occupancy() > 16 {
		t.Fatalf("occupancy %d exceeds capacity 16", c.Occupancy())
	}
}

func TestPrefetchBufferFIFO(t *testing.T) {
	b := NewPrefetchBuffer(2)
	b.Insert(0)
	b.Insert(64)
	b.Insert(128) // evicts 0
	if b.Contains(0) {
		t.Fatal("FIFO did not evict oldest")
	}
	if !b.Contains(64) || !b.Contains(128) {
		t.Fatal("wrong survivors")
	}
	if b.EvictedUnused != 1 {
		t.Fatalf("EvictedUnused = %d", b.EvictedUnused)
	}
}

func TestPrefetchBufferTake(t *testing.T) {
	b := NewPrefetchBuffer(4)
	b.Insert(0x1000)
	if !b.Take(0x1000) {
		t.Fatal("take missed")
	}
	if b.Contains(0x1000) || b.Len() != 0 {
		t.Fatal("take did not remove")
	}
	if b.Take(0x1000) {
		t.Fatal("double take")
	}
	if b.HitsCount != 1 {
		t.Fatalf("HitsCount = %d", b.HitsCount)
	}
}

func TestPrefetchBufferDupInsert(t *testing.T) {
	b := NewPrefetchBuffer(2)
	b.Insert(0)
	b.Insert(0)
	if b.Len() != 1 {
		t.Fatalf("duplicate insert grew buffer: %d", b.Len())
	}
}

func TestPrefetchBufferBlockAlias(t *testing.T) {
	b := NewPrefetchBuffer(2)
	b.Insert(0x1004) // non-aligned: stored as block
	if !b.Contains(0x1000) || !b.Contains(0x103f) {
		t.Fatal("block aliasing broken")
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := MustNew("bench", 32<<10, 2)
	for i := 0; i < 512; i++ {
		c.Insert(isa.Addr(i * 64))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(isa.Addr((i % 1024) * 64))
	}
}
