// Package cache implements the set-associative caches (L1-I, L1-D, LLC)
// and the small fully-associative prefetch buffer used by the simulated
// memory hierarchy. Caches track block presence only — the simulator is a
// timing model, not a data model — with true-LRU replacement.
package cache

import (
	"fmt"
	"math/bits"

	"shotgun/internal/isa"
)

// Stats counts cache events.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Inserts   uint64
	Evictions uint64
}

// Cache is a set-associative, true-LRU, block-presence cache.
//
// Lines are stored as parallel arrays rather than an array of structs:
// every lookup scans a whole set's tags, and packing the tags (with the
// valid flag in the spare top bit — a tag is a block index shifted right
// and block indices fit in 58 bits) keeps that scan to one cache line
// per set on the host. LRU timestamps are only touched on a hit or
// fill, so they live in their own array.
type Cache struct {
	name     string
	ways     int
	setMask  uint64
	setShift uint
	tags     []uint64 // sets*ways, set-major: tag | lineValid
	used     []uint64 // LRU timestamps, parallel to tags
	tick     uint64
	stats    Stats
}

// lineValid marks an occupied way in its packed tag word.
const lineValid = 1 << 63

// New builds a cache of the given total size and associativity over
// isa.BlockBytes blocks. Size must be a power-of-two multiple of
// ways*BlockBytes.
func New(name string, sizeBytes, ways int) (*Cache, error) {
	if sizeBytes <= 0 || ways <= 0 {
		return nil, fmt.Errorf("cache %s: non-positive geometry", name)
	}
	blocks := sizeBytes / isa.BlockBytes
	if blocks*isa.BlockBytes != sizeBytes {
		return nil, fmt.Errorf("cache %s: size %d not a multiple of block size", name, sizeBytes)
	}
	sets := blocks / ways
	if sets == 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: set count %d not a power of two", name, sets)
	}
	return &Cache{
		name:     name,
		ways:     ways,
		setMask:  uint64(sets - 1),
		setShift: uint(bits.TrailingZeros(uint(sets))),
		tags:     make([]uint64, sets*ways),
		used:     make([]uint64, sets*ways),
	}, nil
}

// MustNew is New for static geometry.
func MustNew(name string, sizeBytes, ways int) *Cache {
	c, err := New(name, sizeBytes, ways)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the cache's diagnostic name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return int(c.setMask) + 1 }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SizeBytes returns the capacity in bytes.
func (c *Cache) SizeBytes() int { return c.Sets() * c.ways * isa.BlockBytes }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the counters (contents are preserved), used at the
// warmup/measurement boundary.
func (c *Cache) ResetStats() { c.stats = Stats{} }

func (c *Cache) locate(addr isa.Addr) (setBase int, tag uint64) {
	bi := addr.BlockIndex()
	return int(bi&c.setMask) * c.ways, bi >> c.setShift
}

// Contains reports block presence without touching LRU state or counters.
func (c *Cache) Contains(addr isa.Addr) bool {
	base, tag := c.locate(addr)
	want := tag | lineValid
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == want {
			return true
		}
	}
	return false
}

// Access looks the block up, updating LRU and hit/miss counters. It does
// not allocate on miss; pair with Insert to model fills.
func (c *Cache) Access(addr isa.Addr) bool {
	c.tick++
	base, tag := c.locate(addr)
	want := tag | lineValid
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == want {
			c.used[i] = c.tick
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Insert fills the block, evicting the LRU way if the set is full. It
// returns the evicted block address when an eviction happened. Inserting
// a block that is already present refreshes its LRU state only.
func (c *Cache) Insert(addr isa.Addr) (evicted isa.Addr, didEvict bool) {
	c.tick++
	base, tag := c.locate(addr)
	want := tag | lineValid
	// Tag match first — the LRU victim scan only runs on actual fills,
	// not on the (common) refresh of an already-present block.
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == want {
			c.used[i] = c.tick
			return 0, false
		}
	}
	// Victim: the first invalid way, else the least recently used.
	victim := -1
	var oldest uint64 = ^uint64(0)
	for i := base; i < base+c.ways; i++ {
		if c.tags[i]&lineValid == 0 {
			victim = i
			break
		}
		if c.used[i] < oldest {
			oldest = c.used[i]
			victim = i
		}
	}
	c.stats.Inserts++
	var ev isa.Addr
	if c.tags[victim]&lineValid != 0 {
		c.stats.Evictions++
		didEvict = true
		set := uint64(base / c.ways)
		ev = isa.Addr(((c.tags[victim]&^lineValid)<<c.setShift | set) * isa.BlockBytes)
	}
	c.tags[victim] = want
	c.used[victim] = c.tick
	return ev, didEvict
}

// Invalidate removes a block if present, returning whether it was there.
func (c *Cache) Invalidate(addr isa.Addr) bool {
	base, tag := c.locate(addr)
	want := tag | lineValid
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == want {
			c.tags[i] = 0
			return true
		}
	}
	return false
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.tags {
		if c.tags[i]&lineValid != 0 {
			n++
		}
	}
	return n
}
