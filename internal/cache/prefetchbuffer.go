package cache

import "shotgun/internal/isa"

// PrefetchBuffer is the small fully-associative FIFO buffer that receives
// prefetched instruction blocks before they are promoted into the L1-I on
// first use (Table 3: 64-entry prefetch buffer). Keeping prefetches out
// of the L1-I until they are referenced avoids polluting the cache with
// inaccurate prefetches.
//
// At this capacity a linear scan over one compact FIFO-ordered slice
// (oldest first) beats hashing on the per-fetch Contains probe.
type PrefetchBuffer struct {
	capacity int
	fifo     []isa.Addr

	// HitsCount / EvictedUnused track prefetch usefulness: a block
	// evicted without ever being promoted was a useless prefetch.
	HitsCount     uint64
	EvictedUnused uint64
}

// NewPrefetchBuffer builds a buffer holding up to capacity blocks.
func NewPrefetchBuffer(capacity int) *PrefetchBuffer {
	if capacity <= 0 {
		panic("cache: prefetch buffer capacity must be positive")
	}
	return &PrefetchBuffer{
		capacity: capacity,
		fifo:     make([]isa.Addr, 0, capacity),
	}
}

// Contains reports whether the block is buffered.
func (b *PrefetchBuffer) Contains(addr isa.Addr) bool {
	blk := addr.Block()
	for _, a := range b.fifo {
		if a == blk {
			return true
		}
	}
	return false
}

// Insert adds a block, evicting the oldest entry when full. Inserting a
// present block is a no-op (the FIFO position is kept).
func (b *PrefetchBuffer) Insert(addr isa.Addr) {
	blk := addr.Block()
	if b.Contains(blk) {
		return
	}
	if len(b.fifo) >= b.capacity {
		b.EvictedUnused++
		copy(b.fifo, b.fifo[1:])
		b.fifo[len(b.fifo)-1] = blk
		return
	}
	b.fifo = append(b.fifo, blk)
}

// Take removes the block (promotion into the L1-I), reporting presence.
func (b *PrefetchBuffer) Take(addr isa.Addr) bool {
	blk := addr.Block()
	for i, a := range b.fifo {
		if a == blk {
			b.fifo = append(b.fifo[:i], b.fifo[i+1:]...)
			b.HitsCount++
			return true
		}
	}
	return false
}

// Len returns the number of buffered blocks.
func (b *PrefetchBuffer) Len() int { return len(b.fifo) }

// Capacity returns the buffer's capacity.
func (b *PrefetchBuffer) Capacity() int { return b.capacity }
