package cache

import "shotgun/internal/isa"

// PrefetchBuffer is the small fully-associative FIFO buffer that receives
// prefetched instruction blocks before they are promoted into the L1-I on
// first use (Table 3: 64-entry prefetch buffer). Keeping prefetches out
// of the L1-I until they are referenced avoids polluting the cache with
// inaccurate prefetches.
type PrefetchBuffer struct {
	capacity int
	fifo     []isa.Addr
	present  map[isa.Addr]bool

	// HitsCount / EvictedUnused track prefetch usefulness: a block
	// evicted without ever being promoted was a useless prefetch.
	HitsCount     uint64
	EvictedUnused uint64
}

// NewPrefetchBuffer builds a buffer holding up to capacity blocks.
func NewPrefetchBuffer(capacity int) *PrefetchBuffer {
	if capacity <= 0 {
		panic("cache: prefetch buffer capacity must be positive")
	}
	return &PrefetchBuffer{
		capacity: capacity,
		present:  make(map[isa.Addr]bool, capacity),
	}
}

// Contains reports whether the block is buffered.
func (b *PrefetchBuffer) Contains(addr isa.Addr) bool {
	return b.present[addr.Block()]
}

// Insert adds a block, evicting the oldest entry when full. Inserting a
// present block is a no-op (the FIFO position is kept).
func (b *PrefetchBuffer) Insert(addr isa.Addr) {
	blk := addr.Block()
	if b.present[blk] {
		return
	}
	if len(b.fifo) >= b.capacity {
		victim := b.fifo[0]
		b.fifo = b.fifo[1:]
		delete(b.present, victim)
		b.EvictedUnused++
	}
	b.fifo = append(b.fifo, blk)
	b.present[blk] = true
}

// Take removes the block (promotion into the L1-I), reporting presence.
func (b *PrefetchBuffer) Take(addr isa.Addr) bool {
	blk := addr.Block()
	if !b.present[blk] {
		return false
	}
	delete(b.present, blk)
	for i, a := range b.fifo {
		if a == blk {
			b.fifo = append(b.fifo[:i], b.fifo[i+1:]...)
			break
		}
	}
	b.HitsCount++
	return true
}

// Len returns the number of buffered blocks.
func (b *PrefetchBuffer) Len() int { return len(b.fifo) }

// Capacity returns the buffer's capacity.
func (b *PrefetchBuffer) Capacity() int { return b.capacity }
