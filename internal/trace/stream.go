package trace

import (
	"fmt"
	"io"

	"shotgun/internal/isa"
)

// Stream adapts a recorded trace to the endless retire-order contract
// of workload.Stream (it satisfies that interface structurally, without
// importing the package), so traces recorded by cmd/tracegen can drive
// simulations. The trace is validated end-to-end once at construction;
// afterwards blocks are decoded one record at a time — memory stays
// bounded by the bufio window regardless of trace length — and the
// stream loops by seeking back to the start when it runs out.
type Stream struct {
	src io.ReadSeeker
	r   *Reader

	// blocks is the validated per-pass block count; Loops counts
	// completed passes (useful for tests and diagnostics).
	blocks uint64
	Loops  uint64
}

// NewStream validates the whole trace (header and every record) and
// returns a stream positioned at the first block. The source is seeked
// to its start first, so a reader a previous consumer left mid-trace
// is fine. A trace with no blocks cannot loop and is rejected.
func NewStream(src io.ReadSeeker) (*Stream, error) {
	if _, err := src.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("trace: seek to start: %w", err)
	}
	r, err := NewReader(src)
	if err != nil {
		return nil, err
	}
	var blocks uint64
	for {
		if _, err := r.Read(); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("trace: record %d: %w", blocks, err)
		}
		blocks++
	}
	if blocks == 0 {
		return nil, fmt.Errorf("trace: empty trace cannot drive a simulation")
	}
	s := &Stream{src: src, blocks: blocks}
	if err := s.rewind(); err != nil {
		return nil, err
	}
	return s, nil
}

// Blocks returns the number of blocks in one pass of the trace.
func (s *Stream) Blocks() uint64 { return s.blocks }

// rewind seeks the source back to the start and re-reads the header.
// Deltas restart from zero exactly as the writer emitted them, so every
// pass decodes the identical block sequence.
func (s *Stream) rewind() error {
	if _, err := s.src.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("trace: rewind: %w", err)
	}
	r, err := NewReader(s.src)
	if err != nil {
		return err
	}
	s.r = r
	return nil
}

// Next returns the next block, looping at end of trace. The trace was
// fully validated by NewStream, so a decode error here means the
// underlying source changed mid-simulation — unrecoverable, and
// Next has no error channel — so it panics with context.
func (s *Stream) Next() isa.BasicBlock {
	bb, err := s.r.Read()
	if err == io.EOF {
		s.Loops++
		if err := s.rewind(); err != nil {
			panic(fmt.Sprintf("trace: stream source changed mid-run: %v", err))
		}
		bb, err = s.r.Read()
	}
	if err != nil {
		panic(fmt.Sprintf("trace: stream source changed mid-run: %v", err))
	}
	return bb
}
