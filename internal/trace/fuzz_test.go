package trace

import (
	"bytes"
	"io"
	"testing"

	"shotgun/internal/program"
	"shotgun/internal/workload"
)

// FuzzReader feeds arbitrary bytes to the trace decoder: truncated or
// corrupt varint streams must surface as errors from NewReader/Read,
// never as panics or non-terminating loops. The CI fuzz-smoke job runs
// this for a bounded wall-clock slice on every push.
func FuzzReader(f *testing.F) {
	// Seed with a real trace and interesting mutations of it.
	prog := program.MustGenerate(program.GenParams{NumAppFuncs: 60, NumKernelFuncs: 16}, 1)
	w := workload.NewWalker(prog, 11)
	var buf bytes.Buffer
	tw, err := NewWriter(&buf)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := tw.Write(w.Next()); err != nil {
			f.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-1])       // truncated final record
	f.Add(valid[:6])                  // truncated first record
	f.Add(valid[:5])                  // header only
	f.Add([]byte{})                   // empty
	f.Add([]byte("SGTR"))             // short header
	f.Add([]byte("SGTR\x01\xff\xff")) // varint runs off the end
	mutated := append([]byte(nil), valid...)
	mutated[10] ^= 0xff
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // malformed header rejected: fine
		}
		for i := 0; ; i++ {
			bb, err := r.Read()
			if err != nil {
				if err == io.EOF && i == 0 && len(data) > 5 {
					// EOF with leftover bytes is fine only at a record
					// boundary; Read handles the distinction internally.
				}
				// Once failed, the reader must stay failed (no
				// resurrection mid-corruption).
				if _, err2 := r.Read(); err2 == nil {
					t.Fatal("reader recovered after an error")
				}
				return
			}
			if err := bb.Validate(); err != nil {
				t.Fatalf("decoded block fails validation: %v", err)
			}
			if i > 1<<20 {
				t.Fatal("unbounded record stream from bounded input")
			}
		}
	})
}
