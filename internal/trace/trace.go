// Package trace defines the on-disk basic-block trace format used by
// cmd/tracegen: a varint-delta-encoded binary stream of retired basic
// blocks. Traces are a convenience for inspecting and exchanging
// workloads; simulations normally generate blocks on the fly from the
// deterministic walker.
//
// Format:
//
//	magic "SGTR" | version u8 | records...
//	record: flags u8 | pcDelta zigzag-varint | numInstr u8 |
//	        targetDelta zigzag-varint (only if taken)
//
// flags: bits 0-2 = BranchKind, bit 3 = taken. Deltas are relative to
// the previous block's PC, which compresses the mostly-local instruction
// stream well.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"shotgun/internal/isa"
)

var magic = [4]byte{'S', 'G', 'T', 'R'}

// Version is the current format version.
const Version = 1

// Writer streams basic blocks to an io.Writer.
type Writer struct {
	w      *bufio.Writer
	prevPC isa.Addr
	n      uint64
	buf    [2 * binary.MaxVarintLen64]byte
	began  bool
}

// NewWriter builds a writer and emits the header.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(Version); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// Write appends one basic block.
func (t *Writer) Write(bb isa.BasicBlock) error {
	if err := bb.Validate(); err != nil {
		return err
	}
	flags := byte(bb.Kind) & 0x7
	if bb.Taken {
		flags |= 0x8
	}
	if err := t.w.WriteByte(flags); err != nil {
		return err
	}
	n := binary.PutUvarint(t.buf[:], zigzag(int64(bb.PC)-int64(t.prevPC)))
	if _, err := t.w.Write(t.buf[:n]); err != nil {
		return err
	}
	if err := t.w.WriteByte(byte(bb.NumInstr)); err != nil {
		return err
	}
	if bb.Taken {
		n = binary.PutUvarint(t.buf[:], zigzag(int64(bb.Target)-int64(bb.PC)))
		if _, err := t.w.Write(t.buf[:n]); err != nil {
			return err
		}
	}
	t.prevPC = bb.PC
	t.n++
	t.began = true
	return nil
}

// Blocks returns the number of blocks written.
func (t *Writer) Blocks() uint64 { return t.n }

// Flush flushes buffered output.
func (t *Writer) Flush() error { return t.w.Flush() }

// Reader streams basic blocks from an io.Reader. It implements the
// workload.Stream contract except that it is finite: Next reports io.EOF
// through Err after the stream ends.
type Reader struct {
	r      *bufio.Reader
	prevPC isa.Addr
	err    error
}

// NewReader validates the header and builds a reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if [4]byte{hdr[0], hdr[1], hdr[2], hdr[3]} != magic {
		return nil, errors.New("trace: bad magic")
	}
	if hdr[4] != Version {
		return nil, fmt.Errorf("trace: unsupported version %d", hdr[4])
	}
	return &Reader{r: br}, nil
}

func unzigzag(v uint64) int64 { return int64(v>>1) ^ -int64(v&1) }

// Read returns the next block, or an error (io.EOF at end of stream).
func (t *Reader) Read() (isa.BasicBlock, error) {
	if t.err != nil {
		return isa.BasicBlock{}, t.err
	}
	flags, err := t.r.ReadByte()
	if err != nil {
		t.err = err
		return isa.BasicBlock{}, err
	}
	var bb isa.BasicBlock
	bb.Kind = isa.BranchKind(flags & 0x7)
	bb.Taken = flags&0x8 != 0
	d, err := binary.ReadUvarint(t.r)
	if err != nil {
		t.err = fail(err)
		return isa.BasicBlock{}, t.err
	}
	bb.PC = isa.Addr(int64(t.prevPC) + unzigzag(d))
	size, err := t.r.ReadByte()
	if err != nil {
		t.err = fail(err)
		return isa.BasicBlock{}, t.err
	}
	bb.NumInstr = int(size)
	if bb.Taken {
		d, err = binary.ReadUvarint(t.r)
		if err != nil {
			t.err = fail(err)
			return isa.BasicBlock{}, t.err
		}
		bb.Target = isa.Addr(int64(bb.PC) + unzigzag(d))
	}
	t.prevPC = bb.PC
	if err := bb.Validate(); err != nil {
		t.err = err
		return isa.BasicBlock{}, err
	}
	return bb, nil
}

// fail maps unexpected EOFs mid-record to a corruption error.
func fail(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}
