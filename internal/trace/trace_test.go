package trace

import (
	"bytes"
	"io"
	"testing"

	"shotgun/internal/program"
	"shotgun/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	prog := program.MustGenerate(program.GenParams{NumAppFuncs: 60, NumKernelFuncs: 16}, 1)
	w := workload.NewWalker(prog, 2)

	var buf bytes.Buffer
	tw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	ref := workload.NewWalker(prog, 2)
	for i := 0; i < n; i++ {
		if err := tw.Write(w.Next()); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if tw.Blocks() != n {
		t.Fatalf("Blocks = %d", tw.Blocks())
	}

	tr, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got, err := tr.Read()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		want := ref.Next()
		if got != want {
			t.Fatalf("block %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := tr.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestCompression(t *testing.T) {
	prog := program.MustGenerate(program.GenParams{NumAppFuncs: 60, NumKernelFuncs: 16}, 1)
	w := workload.NewWalker(prog, 3)
	var buf bytes.Buffer
	tw, _ := NewWriter(&buf)
	const n = 10000
	for i := 0; i < n; i++ {
		tw.Write(w.Next())
	}
	tw.Flush()
	perBlock := float64(buf.Len()) / n
	// Delta encoding should keep records small (well under 8 bytes each).
	if perBlock > 8 {
		t.Fatalf("trace too large: %.1f bytes/block", perBlock)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE0"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestBadVersion(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("SGTR\x63"))); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	prog := program.MustGenerate(program.GenParams{NumAppFuncs: 60, NumKernelFuncs: 16}, 1)
	w := workload.NewWalker(prog, 4)
	var buf bytes.Buffer
	tw, _ := NewWriter(&buf)
	for i := 0; i < 100; i++ {
		tw.Write(w.Next())
	}
	tw.Flush()
	trunc := buf.Bytes()[:buf.Len()-1]
	tr, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for {
		_, lastErr = tr.Read()
		if lastErr != nil {
			break
		}
	}
	if lastErr == io.EOF {
		t.Fatal("truncation not detected")
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	tw, _ := NewWriter(&buf)
	bad := workload.NewWalker(program.MustGenerate(program.GenParams{NumAppFuncs: 60, NumKernelFuncs: 16}, 1), 1).Next()
	bad.NumInstr = 0
	if err := tw.Write(bad); err == nil {
		t.Fatal("invalid block accepted")
	}
}
