package trace

import (
	"bytes"
	"testing"

	"shotgun/internal/isa"
	"shotgun/internal/program"
	"shotgun/internal/workload"
)

func TestStreamLoops(t *testing.T) {
	prog := program.MustGenerate(program.GenParams{NumAppFuncs: 60, NumKernelFuncs: 16}, 1)
	w := workload.NewWalker(prog, 7)
	var buf bytes.Buffer
	tw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	want := make([]isa.BasicBlock, 0, n)
	for i := 0; i < n; i++ {
		bb := w.Next()
		want = append(want, bb)
		if err := tw.Write(bb); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	s, err := NewStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Blocks() != n {
		t.Fatalf("Blocks = %d, want %d", s.Blocks(), n)
	}
	// Three full passes: each must replay the identical sequence (the
	// rewind restarts the delta chain exactly as the writer emitted it).
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < n; i++ {
			if got := s.Next(); got != want[i] {
				t.Fatalf("pass %d block %d: got %+v want %+v", pass, i, got, want[i])
			}
		}
	}
	if s.Loops != 2 {
		t.Fatalf("Loops = %d, want 2", s.Loops)
	}
}

func TestStreamRejectsEmptyAndCorrupt(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewStream(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("empty trace accepted")
	}

	prog := program.MustGenerate(program.GenParams{NumAppFuncs: 60, NumKernelFuncs: 16}, 1)
	w := workload.NewWalker(prog, 9)
	buf.Reset()
	tw, _ = NewWriter(&buf)
	for i := 0; i < 100; i++ {
		tw.Write(w.Next())
	}
	tw.Flush()
	trunc := buf.Bytes()[:buf.Len()-1]
	if _, err := NewStream(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated trace accepted")
	}
	if _, err := NewStream(bytes.NewReader([]byte("NOPE0"))); err == nil {
		t.Fatal("bad header accepted")
	}
}
