package trace

import (
	"bytes"
	"testing"

	"shotgun/internal/isa"
	"shotgun/internal/program"
	"shotgun/internal/workload"
)

func TestStreamLoops(t *testing.T) {
	prog := program.MustGenerate(program.GenParams{NumAppFuncs: 60, NumKernelFuncs: 16}, 1)
	w := workload.NewWalker(prog, 7)
	var buf bytes.Buffer
	tw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	want := make([]isa.BasicBlock, 0, n)
	for i := 0; i < n; i++ {
		bb := w.Next()
		want = append(want, bb)
		if err := tw.Write(bb); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	s, err := NewStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Blocks() != n {
		t.Fatalf("Blocks = %d, want %d", s.Blocks(), n)
	}
	// Three full passes: each must replay the identical sequence (the
	// rewind restarts the delta chain exactly as the writer emitted it).
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < n; i++ {
			if got := s.Next(); got != want[i] {
				t.Fatalf("pass %d block %d: got %+v want %+v", pass, i, got, want[i])
			}
		}
	}
	if s.Loops != 2 {
		t.Fatalf("Loops = %d, want 2", s.Loops)
	}
}

// recordTrace writes n walker blocks into a fresh trace, returning the
// encoded bytes and the expected block sequence.
func recordTrace(t *testing.T, seed uint64, n int) ([]byte, []isa.BasicBlock) {
	t.Helper()
	prog := program.MustGenerate(program.GenParams{NumAppFuncs: 60, NumKernelFuncs: 16}, 1)
	w := workload.NewWalker(prog, seed)
	var buf bytes.Buffer
	tw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]isa.BasicBlock, 0, n)
	for i := 0; i < n; i++ {
		bb := w.Next()
		want = append(want, bb)
		if err := tw.Write(bb); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), want
}

// TestStreamPartialPassBoundary: after a partial read, crossing the
// end of the trace rewinds exactly once and replays the head — the
// delta chain restarts cleanly regardless of where the reader stopped.
func TestStreamPartialPassBoundary(t *testing.T) {
	const n = 50
	data, want := recordTrace(t, 11, n)
	s, err := NewStream(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	const partial = 20
	for i := 0; i < partial; i++ {
		if got := s.Next(); got != want[i] {
			t.Fatalf("block %d: got %+v want %+v", i, got, want[i])
		}
	}
	if s.Loops != 0 {
		t.Fatalf("Loops = %d before the first boundary, want 0", s.Loops)
	}
	// Finish the pass and cross into the next: the tail then the head,
	// with the loop counter ticking exactly at the boundary.
	for i := partial; i < n; i++ {
		if got := s.Next(); got != want[i] {
			t.Fatalf("block %d: got %+v want %+v", i, got, want[i])
		}
	}
	if got := s.Next(); got != want[0] {
		t.Fatalf("post-rewind block: got %+v want %+v", got, want[0])
	}
	if s.Loops != 1 {
		t.Fatalf("Loops = %d after one boundary, want 1", s.Loops)
	}
}

// TestStreamReusesPartiallyReadSource: NewStream seeks the source to
// its start, so a reader a previous stream abandoned mid-trace yields
// a fresh, complete stream.
func TestStreamReusesPartiallyReadSource(t *testing.T) {
	const n = 30
	data, want := recordTrace(t, 13, n)
	src := bytes.NewReader(data)
	first, err := NewStream(src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n/2; i++ {
		first.Next() // leave src mid-trace
	}
	second, err := NewStream(src)
	if err != nil {
		t.Fatalf("NewStream on a partially-read source: %v", err)
	}
	if second.Blocks() != n {
		t.Fatalf("Blocks = %d, want %d", second.Blocks(), n)
	}
	if got := second.Next(); got != want[0] {
		t.Fatalf("first block after reuse: got %+v want %+v", got, want[0])
	}
}

// TestStreamBlocksMatchesYield: Blocks() equals the count actually
// yielded per pass, across trace lengths including the one-block
// degenerate loop.
func TestStreamBlocksMatchesYield(t *testing.T) {
	for _, n := range []int{1, 3, 17} {
		data, want := recordTrace(t, uint64(100+n), n)
		s, err := NewStream(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if s.Blocks() != uint64(n) {
			t.Fatalf("n=%d: Blocks = %d", n, s.Blocks())
		}
		// Two passes of yields: after yielding global block i the stream
		// has completed exactly i/n loops (the boundary-crossing Next
		// rewinds and returns the next pass's first block in one call).
		for i := 0; i < 2*n; i++ {
			if bb := s.Next(); bb != want[i%n] {
				t.Fatalf("n=%d global block %d mismatch", n, i)
			}
			if s.Loops != uint64(i/n) {
				t.Fatalf("n=%d after block %d: Loops = %d, want %d", n, i, s.Loops, i/n)
			}
		}
	}
}

func TestStreamRejectsEmptyAndCorrupt(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewStream(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("empty trace accepted")
	}

	prog := program.MustGenerate(program.GenParams{NumAppFuncs: 60, NumKernelFuncs: 16}, 1)
	w := workload.NewWalker(prog, 9)
	buf.Reset()
	tw, _ = NewWriter(&buf)
	for i := 0; i < 100; i++ {
		tw.Write(w.Next())
	}
	tw.Flush()
	trunc := buf.Bytes()[:buf.Len()-1]
	if _, err := NewStream(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated trace accepted")
	}
	if _, err := NewStream(bytes.NewReader([]byte("NOPE0"))); err == nil {
		t.Fatal("bad header accepted")
	}
}
