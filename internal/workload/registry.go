package workload

import (
	"sync"
	"sync/atomic"

	"shotgun/internal/predecode"
	"shotgun/internal/program"
)

// Programs and predecode images are process-wide shared artifacts.
//
// Immutability contract: a *program.Program returned by SharedProgram (and
// therefore by Profile.Program) is read-only after construction. Nothing in
// this repository mutates a Function or StaticBlock once Generate returns,
// which is what makes it safe for any number of concurrent simulations to
// walk, decode and prefetch from the same image. The same contract covers
// the *predecode.Decoder returned by SharedDecoder. Violations are caught
// by TestSharedArtifactsRace under the race detector.

// progKey identifies a generated program: generation is deterministic in
// (params, seed), so the pair is the program's identity.
type progKey struct {
	gen  program.GenParams
	seed uint64
}

// progEntry holds one shared program and its lazily built predecode image.
// The two sync.Onces give single-flight semantics: concurrent first
// requesters block on one generation instead of duplicating it.
type progEntry struct {
	progOnce sync.Once
	prog     *program.Program
	decOnce  sync.Once
	dec      *predecode.Decoder
}

var (
	regMu    sync.Mutex
	registry = make(map[progKey]*progEntry)
	genCount atomic.Uint64
)

func entryFor(gen program.GenParams, seed uint64) *progEntry {
	key := progKey{gen: gen, seed: seed}
	regMu.Lock()
	e, ok := registry[key]
	if !ok {
		e = &progEntry{}
		registry[key] = e
	}
	regMu.Unlock()
	return e
}

// SharedProgram returns the process-wide program for (gen, seed),
// generating it on first use. The result is immutable; see the package
// contract above.
func SharedProgram(gen program.GenParams, seed uint64) *program.Program {
	e := entryFor(gen, seed)
	e.progOnce.Do(func() {
		e.prog = program.MustGenerate(gen, seed)
		genCount.Add(1)
	})
	return e.prog
}

// SharedDecoder returns the process-wide predecode image for the shared
// program of (gen, seed), building it on first use.
func SharedDecoder(gen program.GenParams, seed uint64) *predecode.Decoder {
	e := entryFor(gen, seed)
	prog := SharedProgram(gen, seed)
	e.decOnce.Do(func() {
		e.dec = predecode.NewDecoder(prog)
	})
	return e.dec
}

// Generations returns how many programs have actually been generated in
// this process — the redundancy witness: it stays at one per distinct
// (params, seed) no matter how many simulations run.
func Generations() uint64 { return genCount.Load() }
