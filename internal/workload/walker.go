// Package workload turns synthetic programs into dynamic basic-block
// streams and defines the six server-workload profiles used throughout
// the evaluation (the paper's Table 2 equivalents).
//
// The Walker executes a program.Program as a server would: an endless
// sequence of requests, each a complete execution of one root (handler)
// function, descending through the layered call graph, taking conditional
// branches according to per-branch biases and loop trip counts, and
// occasionally trapping into kernel handlers. The emitted stream is the
// retire-order basic-block trace that drives every simulation.
//
// Immutability contract: a workload's program and predecode image are
// process-wide shared artifacts, generated once per (generation, seed)
// by the registry (registry.go) and then never mutated. Every
// simulation — serial or concurrent — walks the same instance, so
// anything reachable from Profile.Program or Profile.Decoder must be
// treated as read-only; per-walk state lives entirely in the Walker.
package workload

import (
	"sort"
	"sync"

	"shotgun/internal/isa"
	"shotgun/internal/program"
	"shotgun/internal/xrand"
)

// Stream supplies an endless retire-order basic-block trace.
type Stream interface {
	// Next returns the next retired basic block.
	Next() isa.BasicBlock
}

// maxLoopTrip caps a single loop's trip count draw, bounding the tail of
// dynamic region lengths.
const maxLoopTrip = 64

// Walker executes a Program as an endless request-serving loop.
// It implements Stream. Walkers are deterministic in (program, seed).
type Walker struct {
	prog *program.Program
	rng  *xrand.Source

	stack []frame
	cur   frame

	roots    []program.FuncID
	rootZipf *xrand.Zipf

	// Requests counts completed root-function executions.
	Requests uint64
	// Blocks counts emitted basic blocks.
	Blocks uint64
	// Instructions counts emitted instructions.
	Instructions uint64
}

type frame struct {
	fn  *program.Function
	idx int // next block index to execute on (re)entry
	// loops tracks remaining taken iterations per loop back-edge block
	// index; entries are created on first encounter and removed when
	// the loop exits.
	loops map[int]int
}

// WalkerConfig tunes request dispatch.
type WalkerConfig struct {
	// RootLayers selects how many top call-graph layers serve as request
	// handlers (roots). Zero means the default of 3.
	RootLayers int
	// RootZipfS skews request-type popularity over the roots. Zero means
	// the default of 0.5 (mildly skewed, like a realistic URL mix).
	RootZipfS float64
}

func (c *WalkerConfig) setDefaults() {
	if c.RootLayers == 0 {
		c.RootLayers = 3
	}
	if c.RootZipfS == 0 {
		c.RootZipfS = 0.5
	}
}

// NewWalker builds a walker over prog with default dispatch configuration.
// Roots are the application functions in the top call-graph layers (the
// request handlers); request types are Zipf-distributed over them.
func NewWalker(prog *program.Program, seed uint64) *Walker {
	return NewWalkerConfig(prog, seed, WalkerConfig{})
}

// NewWalkerConfig builds a walker with explicit dispatch configuration.
func NewWalkerConfig(prog *program.Program, seed uint64, cfg WalkerConfig) *Walker {
	cfg.setDefaults()
	w := &Walker{prog: prog, rng: xrand.New(seed)}
	w.roots = sortedRoots(prog, cfg.RootLayers)
	w.rootZipf = xrand.NewZipf(w.rng, len(w.roots), cfg.RootZipfS)
	w.cur = frame{fn: prog.Func(w.pickRoot())}
	return w
}

// rootsCache memoizes the size-ranked handler set per (program,
// RootLayers). Root selection and the closure-size DFS walk only the
// immutable shared program, so the result is identical for every walker
// over the same program — recomputing it per core per scenario was a
// measurable slice of multi-core scenario setup. Cached slices are
// shared across walkers and must never be mutated.
var rootsCache sync.Map

type rootsKey struct {
	prog   *program.Program
	layers int
}

func sortedRoots(prog *program.Program, rootLayers int) []program.FuncID {
	key := rootsKey{prog, rootLayers}
	if v, ok := rootsCache.Load(key); ok {
		return v.([]program.FuncID)
	}
	var roots []program.FuncID
	maxLayer := 0
	for _, id := range prog.AppFuncs {
		if l := prog.Func(id).Layer; l > maxLayer {
			maxLayer = l
		}
	}
	for _, id := range prog.AppFuncs {
		if prog.Func(id).Layer > maxLayer-rootLayers {
			roots = append(roots, id)
		}
	}
	if len(roots) == 0 {
		roots = append([]program.FuncID(nil), prog.AppFuncs...)
	}
	// Rank request types by the size of their static call tree so the
	// Zipf head lands on the heavyweight handlers (the big transactions
	// dominate server time, not the trivial ones).
	sizes := closureSizes(prog, roots)
	sort.SliceStable(roots, func(i, j int) bool {
		return sizes[roots[i]] > sizes[roots[j]]
	})
	v, _ := rootsCache.LoadOrStore(key, roots)
	return v.([]program.FuncID)
}

// closureSizes returns the static call-closure size of each root.
func closureSizes(prog *program.Program, roots []program.FuncID) map[program.FuncID]int {
	out := make(map[program.FuncID]int, len(roots))
	for _, r := range roots {
		seen := map[program.FuncID]bool{}
		stack := []program.FuncID{r}
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[id] {
				continue
			}
			seen[id] = true
			for _, blk := range prog.Func(id).Blocks {
				if (blk.Kind == isa.BranchCall || blk.Kind == isa.BranchTrap) && !seen[blk.Callee] {
					stack = append(stack, blk.Callee)
				}
			}
		}
		out[r] = len(seen)
	}
	return out
}

// Program returns the program being walked.
func (w *Walker) Program() *program.Program { return w.prog }

func (w *Walker) pickRoot() program.FuncID {
	return w.roots[w.rootZipf.Next()]
}

// Next emits the next retired basic block. The emitted sequence is
// control-flow consistent: each block's PC equals the previous block's
// Next() address.
func (w *Walker) Next() isa.BasicBlock {
	f := w.cur.fn
	blk := &f.Blocks[w.cur.idx]
	out := isa.BasicBlock{PC: blk.PC, NumInstr: blk.NumInstr, Kind: blk.Kind}

	switch blk.Kind {
	case isa.BranchNone:
		w.cur.idx++

	case isa.BranchCond:
		taken := false
		if blk.IsLoop {
			taken = w.loopTaken(blk)
		} else {
			taken = w.rng.Bool(blk.Bias)
		}
		out.Taken = taken
		if taken {
			out.Target = f.Blocks[blk.TargetIdx].PC
			w.cur.idx = blk.TargetIdx
		} else {
			w.cur.idx++
		}

	case isa.BranchJump:
		out.Taken = true
		out.Target = f.Blocks[blk.TargetIdx].PC
		w.cur.idx = blk.TargetIdx

	case isa.BranchCall, isa.BranchTrap:
		out.Taken = true
		callee := w.prog.Func(blk.Callee)
		out.Target = callee.Entry()
		resume := w.cur
		resume.idx++
		w.stack = append(w.stack, resume)
		w.cur = frame{fn: callee}

	case isa.BranchRet, isa.BranchTrapRet:
		out.Taken = true
		if n := len(w.stack); n > 0 {
			w.cur = w.stack[n-1]
			w.stack = w.stack[:n-1]
			out.Target = w.cur.fn.Blocks[w.cur.idx].PC
		} else {
			// Request complete: the server loop dispatches the next
			// request. The return "targets" the next handler's entry,
			// modeling the dispatcher's indirect control transfer.
			w.Requests++
			next := w.prog.Func(w.pickRoot())
			out.Target = next.Entry()
			w.cur = frame{fn: next}
		}
	}

	w.Blocks++
	w.Instructions += uint64(out.NumInstr)
	return out
}

// loopTaken implements trip-count semantics for loop back-edges: on first
// encounter a remaining-takes counter is drawn; the branch is taken while
// the counter is positive.
func (w *Walker) loopTaken(blk *program.StaticBlock) bool {
	if w.cur.loops == nil {
		w.cur.loops = make(map[int]int, 2)
	}
	idx := int(blk.PC) // key by PC-derived identity, unique within fn
	rem, ok := w.cur.loops[idx]
	if !ok {
		mean := blk.LoopMeanIters
		if mean < 1 {
			mean = 1
		}
		if blk.LoopFixed {
			rem = int(mean + 0.5)
		} else {
			rem = w.rng.Geometric(1 / (mean + 1))
		}
		if rem > maxLoopTrip {
			rem = maxLoopTrip
		}
	}
	if rem > 0 {
		w.cur.loops[idx] = rem - 1
		return true
	}
	delete(w.cur.loops, idx)
	return false
}

// Skip advances the stream by n blocks, discarding them. Used to
// fast-forward past warmup regions in analysis passes.
func (w *Walker) Skip(n int) {
	for i := 0; i < n; i++ {
		w.Next()
	}
}
