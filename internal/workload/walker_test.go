package workload

import (
	"testing"

	"shotgun/internal/isa"
	"shotgun/internal/program"
)

func testProgram(t testing.TB) *program.Program {
	t.Helper()
	return program.MustGenerate(program.GenParams{NumAppFuncs: 80, NumKernelFuncs: 20}, 99)
}

func TestWalkerControlFlowContinuity(t *testing.T) {
	w := NewWalker(testProgram(t), 1)
	prev := w.Next()
	for i := 0; i < 50000; i++ {
		bb := w.Next()
		if bb.PC != prev.Next() {
			t.Fatalf("block %d: PC %v does not follow previous Next() %v (prev=%+v)", i, bb.PC, prev.Next(), prev)
		}
		prev = bb
	}
}

func TestWalkerBlocksValid(t *testing.T) {
	w := NewWalker(testProgram(t), 2)
	for i := 0; i < 50000; i++ {
		bb := w.Next()
		if err := bb.Validate(); err != nil {
			t.Fatalf("block %d invalid: %v (%+v)", i, err, bb)
		}
	}
}

func TestWalkerDeterministic(t *testing.T) {
	p := testProgram(t)
	a, b := NewWalker(p, 7), NewWalker(p, 7)
	for i := 0; i < 20000; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("walkers diverged at block %d: %+v vs %+v", i, x, y)
		}
	}
}

func TestWalkerCompletesRequests(t *testing.T) {
	w := NewWalker(testProgram(t), 3)
	for i := 0; i < 200000 && w.Requests < 10; i++ {
		w.Next()
	}
	if w.Requests < 10 {
		t.Fatalf("only %d requests completed in 200k blocks; walk may be stuck", w.Requests)
	}
}

func TestWalkerCallStackBounded(t *testing.T) {
	p := testProgram(t)
	w := NewWalker(p, 4)
	maxDepth := p.MaxCallDepth()
	peak := 0
	for i := 0; i < 100000; i++ {
		w.Next()
		if d := len(w.stack); d > peak {
			peak = d
		}
	}
	if peak > maxDepth {
		t.Fatalf("call stack reached %d, program bound is %d", peak, maxDepth)
	}
	if peak == 0 {
		t.Fatal("no calls ever executed")
	}
}

func TestWalkerReturnsMatchCallSites(t *testing.T) {
	// Shadow the walker with a reference RAS: every return's target must
	// equal the fall-through of the matching call (while the stack is
	// non-empty). This is the invariant Shotgun's RIB+RAS design assumes.
	w := NewWalker(testProgram(t), 5)
	var ras []isa.Addr
	for i := 0; i < 100000; i++ {
		bb := w.Next()
		switch {
		case bb.Kind.IsCallLike():
			ras = append(ras, bb.FallThrough())
		case bb.Kind.IsReturn():
			if len(ras) == 0 {
				continue // request boundary: dispatcher transfer
			}
			want := ras[len(ras)-1]
			ras = ras[:len(ras)-1]
			if bb.Target != want {
				t.Fatalf("block %d: return to %v, call site expects %v", i, bb.Target, want)
			}
		}
	}
}

func TestWalkerLoopsTerminate(t *testing.T) {
	// A walk over a loop-heavy program must keep making global progress:
	// requests complete.
	p := program.MustGenerate(program.GenParams{
		NumAppFuncs: 60, NumKernelFuncs: 12, LoopFrac: 0.5, LoopMeanIters: 20,
	}, 5)
	w := NewWalker(p, 6)
	for i := 0; i < 500000 && w.Requests < 3; i++ {
		w.Next()
	}
	if w.Requests < 3 {
		t.Fatalf("loop-heavy walk completed only %d requests", w.Requests)
	}
}

func TestWalkerCounters(t *testing.T) {
	w := NewWalker(testProgram(t), 8)
	n := 1000
	var instr uint64
	for i := 0; i < n; i++ {
		instr += uint64(w.Next().NumInstr)
	}
	if w.Blocks != uint64(n) {
		t.Fatalf("Blocks = %d, want %d", w.Blocks, n)
	}
	if w.Instructions != instr {
		t.Fatalf("Instructions = %d, want %d", w.Instructions, instr)
	}
}

func TestSkip(t *testing.T) {
	p := testProgram(t)
	a, b := NewWalker(p, 9), NewWalker(p, 9)
	a.Skip(1234)
	for i := 0; i < 1234; i++ {
		b.Next()
	}
	if x, y := a.Next(), b.Next(); x != y {
		t.Fatalf("Skip diverges from Next loop: %+v vs %+v", x, y)
	}
}

func BenchmarkWalkerNext(b *testing.B) {
	w := NewWalker(testProgram(b), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.Next()
	}
}
