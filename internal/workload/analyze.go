package workload

import (
	"sort"

	"shotgun/internal/isa"
)

// RegionDistBuckets is the number of buckets in the region-distance
// histogram: distances 0..16 plus a final ">16" bucket, matching the
// x-axis of the paper's Figure 3.
const RegionDistBuckets = 18

// Analysis summarizes a finite prefix of a basic-block stream. It
// provides everything Figures 3 and 4 need: the spatial distribution of
// instruction-cache accesses inside code regions and per-static-branch
// dynamic execution counts.
type Analysis struct {
	Blocks       uint64
	Instructions uint64
	Requests     uint64

	// DynBranches / DynUncond count dynamic branch executions.
	DynBranches uint64
	DynUncond   uint64
	// DynByKind breaks dynamic branches down by kind.
	DynByKind map[isa.BranchKind]uint64

	// RegionDist[d] counts instruction-cache-block accesses at absolute
	// distance d (in blocks) from the current region's entry point;
	// RegionDist[17] aggregates distances beyond 16.
	RegionDist [RegionDistBuckets]uint64

	// TouchedBlocks is the number of distinct instruction cache blocks
	// accessed (the instruction footprint).
	TouchedBlocks int

	branchCount map[isa.Addr]branchStat
}

type branchStat struct {
	kind  isa.BranchKind
	count uint64
}

// Analyze consumes n blocks from s and returns their summary.
func Analyze(s Stream, n int) *Analysis {
	a := &Analysis{
		DynByKind:   make(map[isa.BranchKind]uint64),
		branchCount: make(map[isa.Addr]branchStat),
	}
	touched := make(map[isa.Addr]struct{})

	var regionEntry isa.Addr
	haveRegion := false

	for i := 0; i < n; i++ {
		bb := s.Next()
		a.Blocks++
		a.Instructions += uint64(bb.NumInstr)

		for _, cb := range bb.Blocks() {
			touched[cb] = struct{}{}
			if haveRegion {
				d := isa.BlockDistance(regionEntry, cb)
				if d < 0 {
					d = -d
				}
				if d >= RegionDistBuckets-1 {
					d = RegionDistBuckets - 1
				}
				a.RegionDist[d]++
			}
		}

		if bb.Kind != isa.BranchNone {
			a.DynBranches++
			a.DynByKind[bb.Kind]++
			if bb.Kind.IsUnconditional() {
				a.DynUncond++
			}
			st := a.branchCount[bb.BranchPC()]
			st.kind = bb.Kind
			st.count++
			a.branchCount[bb.BranchPC()] = st
		}

		// An unconditional branch ends the current region; its target
		// opens the next one (Section 3.1's region definition).
		if bb.Kind.IsUnconditional() {
			regionEntry = bb.Target.Block()
			haveRegion = true
		}
	}
	a.TouchedBlocks = len(touched)
	if w, ok := s.(*Walker); ok {
		a.Requests = w.Requests
	}
	return a
}

// RegionCDF returns the cumulative access-probability curve of Figure 3:
// entry d is the probability that an access falls within d blocks of the
// region entry point.
func (a *Analysis) RegionCDF() [RegionDistBuckets]float64 {
	var out [RegionDistBuckets]float64
	var total uint64
	for _, c := range a.RegionDist {
		total += c
	}
	if total == 0 {
		return out
	}
	var cum uint64
	for i, c := range a.RegionDist {
		cum += c
		out[i] = float64(cum) / float64(total)
	}
	return out
}

// StaticBranchCount returns the number of distinct static branches that
// executed at least once.
func (a *Analysis) StaticBranchCount(filter func(isa.BranchKind) bool) int {
	n := 0
	for _, st := range a.branchCount {
		if filter == nil || filter(st.kind) {
			n++
		}
	}
	return n
}

// CoverageCurve returns Figure 4's cumulative-coverage curve: entry k-1 is
// the fraction of dynamic branch executions covered by the k hottest
// static branches, among branches passing the filter (nil = all). The
// curve is truncated/padded to maxK entries.
func (a *Analysis) CoverageCurve(maxK int, filter func(isa.BranchKind) bool) []float64 {
	var counts []uint64
	var total uint64
	for _, st := range a.branchCount {
		if filter == nil || filter(st.kind) {
			counts = append(counts, st.count)
			total += st.count
		}
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	out := make([]float64, maxK)
	var cum uint64
	for k := 0; k < maxK; k++ {
		if k < len(counts) {
			cum += counts[k]
		}
		if total > 0 {
			out[k] = float64(cum) / float64(total)
		}
	}
	return out
}

// CoverageAt returns the fraction of dynamic executions covered by the k
// hottest static branches passing the filter.
func (a *Analysis) CoverageAt(k int, filter func(isa.BranchKind) bool) float64 {
	curve := a.CoverageCurve(k, filter)
	if k <= 0 {
		return 0
	}
	return curve[k-1]
}

// UncondFilter selects global-control-flow branches.
func UncondFilter(k isa.BranchKind) bool { return k.IsUnconditional() }

// UncondFraction returns the share of dynamic branches that are
// unconditional.
func (a *Analysis) UncondFraction() float64 {
	if a.DynBranches == 0 {
		return 0
	}
	return float64(a.DynUncond) / float64(a.DynBranches)
}

// BranchMPKI converts a miss count into misses per kilo-instruction
// relative to this analysis window.
func (a *Analysis) BranchMPKI(misses uint64) float64 {
	if a.Instructions == 0 {
		return 0
	}
	return float64(misses) / float64(a.Instructions) * 1000
}
