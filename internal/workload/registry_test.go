package workload

import (
	"sync"
	"testing"
)

// TestProgramGeneratedOncePerWorkload is the redundancy witness for the
// shared-artifact registry: no matter how many times a profile's program
// or decoder is requested, generation happens once per distinct
// (GenParams, Seed).
func TestProgramGeneratedOncePerWorkload(t *testing.T) {
	// Warm every profile, then record the counter: repeated access must
	// not generate anything further.
	for _, p := range Profiles() {
		p.Program()
		p.Decoder()
	}
	warm := Generations()
	if want := uint64(len(Profiles())); warm < want {
		t.Fatalf("Generations() = %d after warming, want at least %d", warm, want)
	}

	for i := 0; i < 5; i++ {
		for _, p := range Profiles() {
			p.Program()
			p.Decoder()
			p.NewWalker()
		}
	}
	if got := Generations(); got != warm {
		t.Fatalf("repeated access generated %d extra programs, want 0", got-warm)
	}

	// Sharing is by identity, not just by value.
	a := MustGet("Oracle").Program()
	b := MustGet("Oracle").Program()
	if a != b {
		t.Fatal("two Program() calls returned distinct *program.Program")
	}
	if MustGet("Oracle").Decoder() != MustGet("Oracle").Decoder() {
		t.Fatal("two Decoder() calls returned distinct *predecode.Decoder")
	}
}

// TestSharedArtifactsRace exercises the immutability contract under the
// race detector: many goroutines concurrently request the same shared
// program and decoder, walk the program, and read its structure. Any
// post-construction mutation of the shared artifacts would trip -race.
func TestSharedArtifactsRace(t *testing.T) {
	prof := MustGet("Nutch")
	const walkers = 8
	var wg sync.WaitGroup
	wg.Add(walkers)
	for i := 0; i < walkers; i++ {
		go func(seed uint64) {
			defer wg.Done()
			prog := prof.Program()
			dec := prof.Decoder()
			w := NewWalkerConfig(prog, seed, prof.Walk)
			for n := 0; n < 20_000; n++ {
				bb := w.Next()
				dec.Decode(bb.PC)
			}
			for _, f := range prog.Funcs {
				_ = f.SizeBlocks()
			}
		}(0x1000 + uint64(i))
	}
	wg.Wait()
}
