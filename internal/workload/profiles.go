package workload

import (
	"fmt"
	"math"
	"sort"

	"shotgun/internal/predecode"
	"shotgun/internal/program"
)

// Profile describes one synthetic server workload: the program-generation
// parameters plus the data-side behaviour the backend model needs. The six
// profiles mirror the paper's Table 2 suite; their parameters are tuned so
// the *relative* front-end behaviour (Table 1 BTB MPKI ordering, Figure 3
// region locality, Figure 4 working-set curves) matches the paper.
type Profile struct {
	// Name is the workload's short name (matches the paper).
	Name string
	// Description mirrors the paper's Table 2 entry.
	Description string

	// Gen parameterizes the synthetic program; Seed fixes its identity.
	Gen  program.GenParams
	Seed uint64
	// WalkSeed seeds the CFG walk (independent of program identity).
	WalkSeed uint64
	// Walk tunes request dispatch (root layers, request-mix skew).
	Walk WalkerConfig

	// LoadFrac is the fraction of instructions that access the L1-D.
	LoadFrac float64
	// DataBlocks is the size of the synthetic data working set in cache
	// blocks; it determines the L1-D miss rate mechanically.
	DataBlocks int
	// DataZipfS skews data-block popularity.
	DataZipfS float64
}

// NewWalker builds the deterministic walker for this profile.
func (p Profile) NewWalker() *Walker {
	return NewWalkerConfig(p.Program(), p.WalkSeed, p.Walk)
}

// Program returns the profile's code image. The program is generated once
// per process and shared: it is deterministic in (Gen, Seed) and immutable
// after construction (see the contract in registry.go), so every
// simulation of this workload walks the same *program.Program.
func (p Profile) Program() *program.Program {
	return SharedProgram(p.Gen, p.Seed)
}

// Decoder returns the shared predecode image of the profile's program,
// built once per process.
func (p Profile) Decoder() *predecode.Decoder {
	return SharedDecoder(p.Gen, p.Seed)
}

// Names lists the workloads in the paper's presentation order.
func Names() []string {
	return []string{"Nutch", "Streaming", "Apache", "Zeus", "Oracle", "DB2"}
}

// Get returns the profile with the given name.
func Get(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q (have %v)", name, Names())
}

// MustGet is Get for static names.
func MustGet(name string) Profile {
	p, err := Get(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Profiles returns all six workload profiles in presentation order.
//
// Tuning rationale (all relative to the paper's Table 1 / Figures 3-4):
//   - Nutch: small instruction and branch working set; a 2K BTB nearly
//     captures it (paper: 2.5 BTB MPKI).
//   - Streaming: moderate branch working set but a large, flat
//     instruction footprint from big media-handling functions
//     (paper: 14.5 MPKI, high L1-I pressure).
//   - Apache: large branch working set (paper: 23.7 MPKI).
//   - Zeus: like Apache but smaller (paper: 14.6 MPKI).
//   - Oracle: the largest, flattest working set — deep stacks, heavy
//     kernel interaction (paper: 45.1 MPKI; 2K hottest static branches
//     cover only ~65% of dynamic branches).
//   - DB2: slightly smaller than Oracle (paper: 40.2 MPKI).
func Profiles() []Profile {
	return []Profile{
		{
			Name:        "Nutch",
			Description: "Apache Nutch v1.2 web search: 230 clients, 1.4GB index",
			Gen: program.GenParams{
				NumAppFuncs:     300,
				NumKernelFuncs:  50,
				AppLayers:       5,
				FnBlocksLogMean: math.Log(8), FnBlocksLogSigma: 0.7,
				ZipfS:    0.9,
				TrapFrac: 0.006,
			},
			Seed: 0x5eed_0001, WalkSeed: 0x3a1c_0001,
			Walk:     WalkerConfig{RootLayers: 2, RootZipfS: 0.7},
			LoadFrac: 0.22, DataBlocks: 3 << 10, DataZipfS: 0.9,
		},
		{
			Name:        "Streaming",
			Description: "Darwin Streaming Server 6.0.3: 7500 clients, 60GB dataset",
			Gen: program.GenParams{
				NumAppFuncs:     650,
				NumKernelFuncs:  90,
				AppLayers:       7,
				FnBlocksLogMean: math.Log(15), FnBlocksLogSigma: 0.9,
				BlockInstrMean: 7.0,
				ZipfS:          0.55,
				TrapFrac:       0.012,
			},
			Seed: 0x5eed_0002, WalkSeed: 0x3a1c_0002,
			Walk:     WalkerConfig{RootLayers: 3, RootZipfS: 0.5},
			LoadFrac: 0.25, DataBlocks: 12 << 10, DataZipfS: 0.7,
		},
		{
			Name:        "Apache",
			Description: "Apache HTTP Server v2.0 (SPECweb99): 16K connections, fastCGI",
			Gen: program.GenParams{
				NumAppFuncs:     2200,
				NumKernelFuncs:  180,
				AppLayers:       8,
				FnBlocksLogMean: math.Log(8), FnBlocksLogSigma: 0.8,
				ZipfS:    0.3,
				CallFrac: 0.16,
				TrapFrac: 0.012,
			},
			Seed: 0x5eed_0003, WalkSeed: 0x3a1c_0003,
			Walk:     WalkerConfig{RootLayers: 2, RootZipfS: 0.2},
			LoadFrac: 0.23, DataBlocks: 6 << 10, DataZipfS: 0.85,
		},
		{
			Name:        "Zeus",
			Description: "Zeus Web Server (SPECweb99): 16K connections, fastCGI",
			Gen: program.GenParams{
				NumAppFuncs:     700,
				NumKernelFuncs:  100,
				AppLayers:       7,
				FnBlocksLogMean: math.Log(9), FnBlocksLogSigma: 0.8,
				ZipfS:    0.6,
				TrapFrac: 0.012,
			},
			Seed: 0x5eed_0004, WalkSeed: 0x3a1c_0004,
			Walk:     WalkerConfig{RootLayers: 3, RootZipfS: 0.5},
			LoadFrac: 0.23, DataBlocks: 6 << 10, DataZipfS: 0.85,
		},
		{
			Name:        "Oracle",
			Description: "Oracle 10g Enterprise Database (TPC-C): 100 warehouses, 1.4GB SGA",
			Gen: program.GenParams{
				NumAppFuncs:     6000,
				NumKernelFuncs:  300,
				AppLayers:       12,
				FnBlocksLogMean: math.Log(13), FnBlocksLogSigma: 0.85,
				ZipfS:         0.12,
				CallFrac:      0.22,
				EarlyRetFrac:  0.01,
				TrapFrac:      0.02,
				LoopFrac:      0.12,
				LoopMeanIters: 3,
			},
			Seed: 0x5eed_0005, WalkSeed: 0x3a1c_0005,
			// TPC-C-like: a handful of hot transaction types, each
			// sweeping an enormous, repetitive call tree.
			Walk:     WalkerConfig{RootLayers: 1, RootZipfS: 1.1},
			LoadFrac: 0.28, DataBlocks: 12 << 10, DataZipfS: 0.75,
		},
		{
			Name:        "DB2",
			Description: "IBM DB2 v8 ESE Database (TPC-C): 100 warehouses, 2GB buffer pool",
			Gen: program.GenParams{
				NumAppFuncs:     4400,
				NumKernelFuncs:  260,
				AppLayers:       11,
				FnBlocksLogMean: math.Log(12), FnBlocksLogSigma: 0.85,
				ZipfS:         0.25,
				CallFrac:      0.22,
				EarlyRetFrac:  0.01,
				TrapFrac:      0.018,
				LoopFrac:      0.12,
				LoopMeanIters: 3,
			},
			Seed: 0x5eed_0006, WalkSeed: 0x3a1c_0006,
			Walk:     WalkerConfig{RootLayers: 1, RootZipfS: 1.2},
			LoadFrac: 0.28, DataBlocks: 10 << 10, DataZipfS: 0.75,
		},
	}
}

// SortedByName returns the profiles sorted alphabetically (useful for
// stable iteration in tools).
func SortedByName() []Profile {
	ps := Profiles()
	sort.Slice(ps, func(i, j int) bool { return ps[i].Name < ps[j].Name })
	return ps
}
