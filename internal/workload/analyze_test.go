package workload

import (
	"testing"

	"shotgun/internal/isa"
)

func TestAnalyzeBasics(t *testing.T) {
	w := NewWalker(testProgram(t), 1)
	a := Analyze(w, 50000)
	if a.Blocks != 50000 {
		t.Fatalf("Blocks = %d", a.Blocks)
	}
	if a.Instructions == 0 || a.DynBranches == 0 || a.DynUncond == 0 {
		t.Fatalf("degenerate analysis: %+v", a)
	}
	if a.DynUncond >= a.DynBranches {
		t.Fatal("unconditional branches must be a minority")
	}
	if a.TouchedBlocks == 0 {
		t.Fatal("no instruction blocks touched")
	}
}

func TestUncondFractionRange(t *testing.T) {
	// Section 3.1: conditional branches dominate; the unconditional
	// (global control flow) share is a modest minority.
	w := NewWalker(testProgram(t), 2)
	a := Analyze(w, 100000)
	f := a.UncondFraction()
	if f < 0.05 || f > 0.5 {
		t.Fatalf("unconditional fraction = %.3f, want 0.05..0.5", f)
	}
}

func TestRegionCDFMonotone(t *testing.T) {
	w := NewWalker(testProgram(t), 3)
	a := Analyze(w, 100000)
	cdf := a.RegionCDF()
	prev := 0.0
	for i, v := range cdf {
		if v < prev {
			t.Fatalf("CDF not monotone at %d: %v < %v", i, v, prev)
		}
		prev = v
	}
	if cdf[RegionDistBuckets-1] < 0.999 {
		t.Fatalf("CDF does not reach 1: %v", cdf[RegionDistBuckets-1])
	}
}

func TestRegionSpatialLocality(t *testing.T) {
	// Figure 3's headline: ~90% of region accesses fall within 10 blocks
	// of the region entry. Require at least 80% for every profile.
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			a := Analyze(p.NewWalker(), 150000)
			cdf := a.RegionCDF()
			if cdf[10] < 0.80 {
				t.Fatalf("%s: only %.1f%% of accesses within 10 blocks of region entry",
					p.Name, 100*cdf[10])
			}
			if cdf[0] < 0.15 {
				t.Fatalf("%s: entry block underrepresented: %.1f%%", p.Name, 100*cdf[0])
			}
		})
	}
}

func TestCoverageCurveShape(t *testing.T) {
	w := NewWalker(testProgram(t), 4)
	a := Analyze(w, 200000)
	curve := a.CoverageCurve(1000, nil)
	prev := 0.0
	for i, v := range curve {
		if v < prev || v > 1.0000001 {
			t.Fatalf("coverage curve broken at %d: %v (prev %v)", i, v, prev)
		}
		prev = v
	}
	// The hottest handful of branches must carry noticeable weight.
	if curve[99] < 0.1 {
		t.Fatalf("top-100 coverage only %.3f", curve[99])
	}
}

func TestUncondWorkingSetSmaller(t *testing.T) {
	// Figure 4's insight: the unconditional branch working set is far
	// smaller than the total. At equal K, unconditional coverage must
	// exceed all-branch coverage on the large workloads.
	for _, name := range []string{"Oracle", "DB2"} {
		p := MustGet(name)
		a := Analyze(p.NewWalker(), 400000)
		k := 2000
		all := a.CoverageAt(k, nil)
		unc := a.CoverageAt(k, UncondFilter)
		if unc <= all {
			t.Fatalf("%s: uncond coverage %.3f not above all-branch coverage %.3f at K=%d",
				name, unc, all, k)
		}
		if all > 0.95 {
			t.Fatalf("%s: branch working set too small (%.3f covered by 2K branches)", name, all)
		}
	}
}

func TestStaticBranchCountFilter(t *testing.T) {
	w := NewWalker(testProgram(t), 5)
	a := Analyze(w, 50000)
	all := a.StaticBranchCount(nil)
	unc := a.StaticBranchCount(UncondFilter)
	cond := a.StaticBranchCount(func(k isa.BranchKind) bool { return k == isa.BranchCond })
	if unc+cond > all {
		t.Fatalf("filtered counts exceed total: %d + %d > %d", unc, cond, all)
	}
	if unc == 0 || cond == 0 {
		t.Fatal("missing branch kinds in analysis")
	}
}

func TestBranchMPKI(t *testing.T) {
	a := &Analysis{Instructions: 10000}
	if got := a.BranchMPKI(50); got != 5 {
		t.Fatalf("BranchMPKI = %v, want 5", got)
	}
	empty := &Analysis{}
	if got := empty.BranchMPKI(50); got != 0 {
		t.Fatalf("BranchMPKI on empty = %v, want 0", got)
	}
}

func TestProfilesDistinct(t *testing.T) {
	names := map[string]bool{}
	for _, p := range Profiles() {
		if names[p.Name] {
			t.Fatalf("duplicate profile %s", p.Name)
		}
		names[p.Name] = true
		if p.Gen.NumAppFuncs == 0 || p.LoadFrac == 0 || p.DataBlocks == 0 {
			t.Fatalf("profile %s underspecified", p.Name)
		}
	}
	for _, n := range Names() {
		if !names[n] {
			t.Fatalf("Names() lists %s but Profiles() lacks it", n)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("NoSuchWorkload"); err == nil {
		t.Fatal("expected error for unknown profile")
	}
}

func TestSortedByName(t *testing.T) {
	ps := SortedByName()
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Name >= ps[i].Name {
			t.Fatal("not sorted")
		}
	}
}

func TestWorkingSetOrdering(t *testing.T) {
	// Table 1's ordering driver: the dynamic branch working set (static
	// branches needed for 90% coverage) must rank
	// Oracle > DB2 > Apache > {Zeus, Streaming} > Nutch.
	ws := map[string]int{}
	for _, p := range Profiles() {
		a := Analyze(p.NewWalker(), 300000)
		curve := a.CoverageCurve(30000, nil)
		k := len(curve)
		for i, v := range curve {
			if v >= 0.9 {
				k = i + 1
				break
			}
		}
		ws[p.Name] = k
	}
	t.Logf("static branches for 90%% dynamic coverage: %v", ws)
	if !(ws["Oracle"] > ws["DB2"] && ws["DB2"] > ws["Apache"] && ws["Apache"] > ws["Nutch"]) {
		t.Fatalf("working-set ordering broken: %v", ws)
	}
	if !(ws["Zeus"] > ws["Nutch"] && ws["Streaming"] > ws["Nutch"]) {
		t.Fatalf("Zeus/Streaming should exceed Nutch: %v", ws)
	}
}

func BenchmarkAnalyze(b *testing.B) {
	p := testProgram(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(NewWalker(p, uint64(i)), 20000)
	}
}
