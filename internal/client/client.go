package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"shotgun/internal/sim"
)

// maxErrorBody bounds how much of a non-envelope error body is kept as
// the APIError message.
const maxErrorBody = 512

// Client is the typed v1 API client: every method speaks the wire
// types in this package, decodes the error envelope into *APIError,
// and (when configured with retries) resubmits retryable failures —
// 429/503 envelopes honoring Retry-After, plus transport errors and
// bare 5xxs — with capped backoff. Content-key dedup makes every
// resubmission safe: an accepted-then-retried batch lands on the same
// jobs.
type Client struct {
	base       string
	apiKey     string
	hc         *http.Client
	retries    int
	maxBackoff time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithAPIKey sends the key as "Authorization: Bearer <key>" on every
// request.
func WithAPIKey(key string) Option { return func(c *Client) { c.apiKey = key } }

// WithHTTPClient swaps the underlying http.Client (default: 30s
// timeout).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times a retryable failure is retried
// (default 2; 0 disables retrying).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithMaxBackoff caps the wait between attempts, including waits asked
// for by Retry-After (default 5s).
func WithMaxBackoff(d time.Duration) Option { return func(c *Client) { c.maxBackoff = d } }

// New builds a client for the server at base (e.g.
// "http://coord:8080"); a trailing slash is trimmed.
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:       strings.TrimRight(base, "/"),
		retries:    2,
		maxBackoff: 5 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	if c.hc == nil {
		c.hc = &http.Client{Timeout: 30 * time.Second}
	}
	return c
}

// Version preflights compatibility: API version, store format
// generation, core bound, scale, auth requirement.
func (c *Client) Version(ctx context.Context) (VersionInfo, error) {
	var out VersionInfo
	err := c.do(ctx, http.MethodGet, "/v1/version", nil, &out)
	return out, err
}

// SubmitConfigs enqueues single-core simulations via POST /v1/sims
// (the N=1 alias of SubmitScenarios; same job table and key space).
func (c *Client) SubmitConfigs(ctx context.Context, cfgs []sim.Config) ([]SimStatus, error) {
	var out SubmitSimsResponse
	err := c.do(ctx, http.MethodPost, "/v1/sims", SubmitSimsRequest{Configs: cfgs}, &out)
	return out.Sims, err
}

// SubmitScenarios enqueues multi-core scenarios via POST /v1/scenarios.
func (c *Client) SubmitScenarios(ctx context.Context, scs []sim.Scenario) ([]ScenarioStatus, error) {
	var out SubmitScenariosResponse
	err := c.do(ctx, http.MethodPost, "/v1/scenarios", SubmitScenariosRequest{Scenarios: scs}, &out)
	return out.Scenarios, err
}

// Sim polls one single-core job by content key.
func (c *Client) Sim(ctx context.Context, key string) (SimStatus, error) {
	var out SimStatus
	err := c.do(ctx, http.MethodGet, "/v1/sims/"+key, nil, &out)
	return out, err
}

// Scenario polls one scenario job by content key.
func (c *Client) Scenario(ctx context.Context, key string) (ScenarioStatus, error) {
	var out ScenarioStatus
	err := c.do(ctx, http.MethodGet, "/v1/scenarios/"+key, nil, &out)
	return out, err
}

// Sweep posts a spec document to POST /v1/sweeps and returns the raw
// rendered response body (json, csv or text per format; "" means the
// server default). The call blocks until the sweep finishes; dedup by
// content key makes a retried sweep land on the same jobs.
func (c *Client) Sweep(ctx context.Context, specJSON []byte, format string) ([]byte, error) {
	path := "/v1/sweeps"
	if format != "" {
		path += "?format=" + format
	}
	var raw rawBody
	if err := c.do(ctx, http.MethodPost, path, json.RawMessage(specJSON), &raw); err != nil {
		return nil, err
	}
	return raw.data, nil
}

// Lease asks the coordinator for up to max jobs on behalf of worker,
// returning the granted jobs and the TTL each must heartbeat within.
func (c *Client) Lease(ctx context.Context, worker string, max int) ([]LeasedJob, time.Duration, error) {
	var out LeaseResponse
	err := c.do(ctx, http.MethodPost, "/v1/lease", LeaseRequest{Worker: worker, Max: max}, &out)
	return out.Jobs, time.Duration(out.TTLMillis) * time.Millisecond, err
}

// Heartbeat renews worker's leases, returning the keys it no longer
// owns.
func (c *Client) Heartbeat(ctx context.Context, worker string, keys []string) ([]string, error) {
	var out HeartbeatResponse
	err := c.do(ctx, http.MethodPost, "/v1/heartbeat", HeartbeatRequest{Worker: worker, Keys: keys}, &out)
	return out.Lost, err
}

// Register announces worker — and the leases it currently holds — to a
// coordinator, returning the lease TTL now in force and the keys the
// coordinator refused to adopt. Workers call it when failing over to a
// standby so in-flight work survives the takeover without being
// re-leased to someone else.
func (c *Client) Register(ctx context.Context, worker string, jobs []LeasedJob) (time.Duration, []string, error) {
	var out RegisterResponse
	err := c.do(ctx, http.MethodPost, "/v1/register", RegisterRequest{Worker: worker, Jobs: jobs}, &out)
	return time.Duration(out.TTLMillis) * time.Millisecond, out.Lost, err
}

// Complete pushes one finished job (or its failure message) back to
// the coordinator, reporting whether this push finished the job.
func (c *Client) Complete(ctx context.Context, worker, key string, res sim.ScenarioResult, errMsg string) (bool, error) {
	var out CompleteResponse
	err := c.do(ctx, http.MethodPost, "/v1/complete",
		CompleteRequest{Worker: worker, Key: key, Result: res, Error: errMsg}, &out)
	return out.Accepted, err
}

// rawBody is an out-sentinel telling do to hand back the response
// bytes instead of JSON-decoding them (sweeps render csv/text too).
type rawBody struct{ data []byte }

// do runs one request with the retry policy. in non-nil is marshaled
// as the JSON body; out receives the 2xx response (JSON-decoded, or
// raw via *rawBody; nil discards it).
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			if err := c.wait(ctx, lastErr, attempt); err != nil {
				return lastErr
			}
		}
		lastErr = c.once(ctx, method, path, body, out)
		if lastErr == nil {
			return nil
		}
		if !retryableErr(lastErr) || ctx.Err() != nil {
			return lastErr
		}
	}
	return lastErr
}

// wait sleeps before a retry: the server's Retry-After when it gave
// one, else a linear backoff — both capped at maxBackoff — and returns
// early when ctx dies.
func (c *Client) wait(ctx context.Context, lastErr error, attempt int) error {
	d := time.Duration(attempt) * 250 * time.Millisecond
	var ae *APIError
	if errors.As(lastErr, &ae) && ae.RetryAfter > 0 {
		d = ae.RetryAfter
	}
	if d > c.maxBackoff {
		d = c.maxBackoff
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryableErr decides whether an attempt's failure is worth retrying:
// envelope-retryable responses, bare 5xx/429 responses, and transport
// errors. Deterministic rejections (4xx) can never succeed on a
// resend.
func retryableErr(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		if ae.Code != "" {
			return ae.Retryable
		}
		return ae.Status >= 500 || ae.Status == http.StatusTooManyRequests
	}
	return true // transport error: connection refused, timeout, ...
}

// once is a single request/response round trip.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.apiKey)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp, path)
	}
	switch v := out.(type) {
	case nil:
		return nil
	case *rawBody:
		v.data, err = io.ReadAll(resp.Body)
		return err
	default:
		return json.NewDecoder(resp.Body).Decode(out)
	}
}

// decodeError turns a non-2xx response into an *APIError, tolerating
// bodies that are not the envelope (the raw prefix becomes the
// message).
func decodeError(resp *http.Response, path string) error {
	ae := &APIError{Status: resp.StatusCode, Path: path}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		ae.RetryAfter = parseRetryAfter(ra, time.Now())
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
	var env ErrorEnvelope
	if json.Unmarshal(raw, &env) == nil && env.Error.Code != "" {
		ae.ErrorInfo = env.Error
		return ae
	}
	ae.Message = string(bytes.TrimSpace(raw))
	return ae
}

// parseRetryAfter parses a Retry-After header value, which RFC 9110
// allows in two forms: delay-seconds ("120") and HTTP-date ("Fri, 07
// Aug 2026 09:00:00 GMT"). The date form yields the delay until that
// instant relative to now. Unparseable or non-positive values return 0
// — the caller falls back to its own backoff.
func parseRetryAfter(ra string, now time.Time) time.Duration {
	if secs, err := strconv.Atoi(ra); err == nil {
		if secs > 0 {
			return time.Duration(secs) * time.Second
		}
		return 0
	}
	if at, err := http.ParseTime(ra); err == nil {
		if d := at.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// WriteJSON writes a 200 JSON response the way every v1 handler does
// (indented, correct Content-Type), so server and coordinator bodies
// stay byte-compatible with each other and with this client.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	writeJSONBody(w, v)
}

// writeJSONBody indents like every other response in the repo.
func writeJSONBody(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// String renders an ErrorInfo for logs.
func (e ErrorInfo) String() string {
	return fmt.Sprintf("%s: %s (retryable=%v)", e.Code, e.Message, e.Retryable)
}
