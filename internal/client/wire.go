// Package client is the v1 API surface in one place: the wire types
// every endpoint speaks, the versioned JSON error envelope every
// non-2xx response carries, and a typed HTTP client over both the
// public simulation API and the cluster lease protocol.
//
// The server (internal/server) and the coordinator (internal/dispatch)
// import this package for the shared types and the envelope writer, so
// a request marshaled here always matches what the handlers decode —
// there is exactly one definition of the v1 surface in the repo.
//
// Every error response, on every route, is the same envelope:
//
//	{"error":{"code":"quota_exceeded","message":"...","retryable":true}}
//
// Codes are stable, machine-readable strings (see the Code constants);
// messages are human-readable and may change. Responses with code
// quota_exceeded (429) or overloaded (503) also carry a Retry-After
// header, which Client honors when retrying.
package client

import (
	"fmt"
	"net/http"
	"time"

	"shotgun/internal/report"
	"shotgun/internal/sim"
)

// Stable machine-readable error codes, enumerated in docs/FARM.md.
// Clients branch on these, never on message text.
const (
	// CodeInvalidRequest: malformed body, bad parameter, failed
	// validation. 400; not retryable.
	CodeInvalidRequest = "invalid_request"
	// CodeInvalidSpec: a sweep spec that failed to compile or pins a
	// scale the server does not run. 400; not retryable.
	CodeInvalidSpec = "invalid_spec"
	// CodeUnauthorized: missing or unknown API key. 401; not retryable.
	CodeUnauthorized = "unauthorized"
	// CodeNotFound: unknown key, experiment or route. 404; not
	// retryable.
	CodeNotFound = "not_found"
	// CodeQuotaExceeded: the tenant's queued-scenario quota is full.
	// 429 with Retry-After; retryable once earlier work drains.
	CodeQuotaExceeded = "quota_exceeded"
	// CodeRateLimited: the tenant exceeded its request rate (max_rps).
	// 429 with Retry-After; retryable after the bucket refills.
	CodeRateLimited = "rate_limited"
	// CodeOverloaded: the global queue depth bound was passed and the
	// server is shedding load. 503 with Retry-After; retryable.
	CodeOverloaded = "overloaded"
	// CodeShuttingDown: this process is draining; retry against
	// another node (or after the restart). 503; retryable.
	CodeShuttingDown = "shutting_down"
	// CodeInterrupted: a blocking call (a sweep wait) was cut short
	// before the work finished; the work keeps running and a resubmit
	// dedups onto it. 503; retryable.
	CodeInterrupted = "interrupted"
	// CodeInternal: a scenario failed to simulate. 500; not retryable
	// (the same input will fail again).
	CodeInternal = "internal"
)

// Retryable reports whether a code marks a transient condition worth
// resubmitting: the request was well-formed, the server just could not
// take it right now.
func Retryable(code string) bool {
	switch code {
	case CodeQuotaExceeded, CodeRateLimited, CodeOverloaded, CodeShuttingDown, CodeInterrupted:
		return true
	}
	return false
}

// ErrorInfo is the envelope's payload.
type ErrorInfo struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
}

// ErrorEnvelope is the body of every non-2xx response.
type ErrorEnvelope struct {
	Error ErrorInfo `json:"error"`
}

// APIError is a decoded non-2xx response: the envelope plus transport
// context. It is what every Client method returns on failure.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Path is the request path that failed.
	Path string
	// ErrorInfo carries the decoded envelope. For a response that did
	// not carry the envelope (a proxy in the way, a panic'd handler),
	// Code is empty and Message holds the raw body prefix.
	ErrorInfo
	// RetryAfter is the parsed Retry-After header (0 when absent).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	code := e.Code
	if code == "" {
		code = "no_envelope"
	}
	msg := fmt.Sprintf("%s: %d %s: %s", e.Path, e.Status, code, e.Message)
	if e.RetryAfter > 0 {
		msg += fmt.Sprintf(" (retry after %v)", e.RetryAfter)
	}
	return msg
}

// Job states, in lifecycle order, shared by every status endpoint.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// SimStatus is the single-core view of a job: POST /v1/sims echoes and
// GET /v1/sims/{key} polls.
type SimStatus struct {
	Key       string      `json:"key"`
	Status    string      `json:"status"`
	Workload  string      `json:"workload"`
	Mechanism string      `json:"mechanism"`
	Error     string      `json:"error,omitempty"`
	Result    *sim.Result `json:"result,omitempty"`
}

// ScenarioStatus is the full view of a job: POST /v1/scenarios echoes
// and GET /v1/scenarios/{key} polls.
type ScenarioStatus struct {
	Key        string              `json:"key"`
	Status     string              `json:"status"`
	Cores      int                 `json:"cores"`
	Workloads  []string            `json:"workloads"`
	Mechanisms []string            `json:"mechanisms"`
	Error      string              `json:"error,omitempty"`
	Result     *sim.ScenarioResult `json:"result,omitempty"`
}

// SubmitSimsRequest is POST /v1/sims' body. /v1/sims is a documented
// thin alias of /v1/scenarios: each config is wrapped as a one-core
// scenario and shares the scenario job table and key space.
type SubmitSimsRequest struct {
	Configs []sim.Config `json:"configs"`
}

// SubmitSimsResponse echoes one status per submitted config, in order.
type SubmitSimsResponse struct {
	Sims []SimStatus `json:"sims"`
}

// SubmitScenariosRequest is POST /v1/scenarios' body.
type SubmitScenariosRequest struct {
	Scenarios []sim.Scenario `json:"scenarios"`
}

// SubmitScenariosResponse echoes one status per scenario, in order.
type SubmitScenariosResponse struct {
	Scenarios []ScenarioStatus `json:"scenarios"`
}

// VersionInfo is GET /v1/version: everything a client needs to
// preflight compatibility before submitting work.
type VersionInfo struct {
	// API is the surface version ("v1").
	API string `json:"api"`
	// StoreFormatVersion is internal/store's on-disk generation; keys
	// minted against a different generation address a disjoint space.
	StoreFormatVersion int `json:"store_format_version"`
	// MaxCores is the largest scenario this server simulates.
	MaxCores int `json:"max_cores"`
	// Scale labels the simulation scale submissions are pinned to.
	Scale string `json:"scale"`
	// AuthRequired reports whether requests need an API key.
	AuthRequired bool `json:"auth_required"`
}

// SweepResponse is POST /v1/sweeps' json body: the rendered report
// plus the expansion's pollable scenario keys.
type SweepResponse struct {
	Name   string        `json:"name"`
	Scale  string        `json:"scale,omitempty"`
	Keys   []string      `json:"keys"`
	Report report.Report `json:"report"`
}

// ---------------------------------------------------------------------
// Cluster lease protocol (coordinator <-> worker; no API key — these
// routes are cluster-internal and mounted beside the public surface).
// ---------------------------------------------------------------------

// LeasedJob is one job granted to a worker.
type LeasedJob struct {
	Key      string       `json:"key"`
	Scenario sim.Scenario `json:"scenario"`
}

// LeaseRequest is POST /v1/lease's body.
type LeaseRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max"`
}

// LeaseResponse grants jobs and tells the worker its heartbeat budget.
type LeaseResponse struct {
	TTLMillis int64       `json:"ttl_ms"`
	Jobs      []LeasedJob `json:"jobs"`
}

// HeartbeatRequest is POST /v1/heartbeat's body.
type HeartbeatRequest struct {
	Worker string   `json:"worker"`
	Keys   []string `json:"keys"`
}

// HeartbeatResponse lists the keys the worker no longer owns.
type HeartbeatResponse struct {
	Lost []string `json:"lost"`
}

// CompleteRequest is POST /v1/complete's body: a result, or an error
// message for a job the worker could not simulate.
type CompleteRequest struct {
	Worker string             `json:"worker"`
	Key    string             `json:"key"`
	Result sim.ScenarioResult `json:"result"`
	Error  string             `json:"error,omitempty"`
}

// CompleteResponse reports whether this push finished the job
// (accepted=false: someone already did — drop it and move on).
type CompleteResponse struct {
	Accepted bool `json:"accepted"`
}

// RegisterRequest is POST /v1/register's body: a worker announcing
// itself — and the leases it currently holds — to a coordinator. Sent
// on failover so a standby taking over mid-sweep can adopt in-flight
// work instead of re-leasing it to someone else (which would simulate
// it twice).
type RegisterRequest struct {
	Worker string      `json:"worker"`
	Jobs   []LeasedJob `json:"jobs,omitempty"`
}

// RegisterResponse acknowledges the registration: the TTL the adopted
// leases now run under, and the keys the coordinator refused to adopt
// (already finished, owned by a live worker, or malformed) — the
// worker should stop heartbeating those.
type RegisterResponse struct {
	TTLMillis int64    `json:"ttl_ms"`
	Lost      []string `json:"lost,omitempty"`
}

// WriteError writes the v1 error envelope with the given status and
// code. Retryability is derived from the code, so handlers cannot
// disagree with the published table in docs/FARM.md.
func WriteError(w http.ResponseWriter, status int, code, format string, args ...any) {
	WriteErrorRetryAfter(w, status, code, 0, format, args...)
}

// WriteErrorRetryAfter is WriteError plus a Retry-After hint (rounded
// up to whole seconds, minimum 1s) for load-shedding and quota
// responses.
func WriteErrorRetryAfter(w http.ResponseWriter, status int, code string, retryAfter time.Duration, format string, args ...any) {
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprint(secs))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeJSONBody(w, ErrorEnvelope{Error: ErrorInfo{
		Code:      code,
		Message:   fmt.Sprintf(format, args...),
		Retryable: Retryable(code),
	}})
}
