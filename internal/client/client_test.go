package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"shotgun/internal/sim"
)

// fastOpts keeps retry sleeps microscopic so tests stay quick.
func fastOpts(extra ...Option) []Option {
	return append([]Option{WithMaxBackoff(time.Millisecond)}, extra...)
}

func TestEnvelopeDecodesIntoAPIError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteErrorRetryAfter(w, http.StatusTooManyRequests, CodeQuotaExceeded, 3*time.Second,
			"tenant %q over quota", "acme")
	}))
	defer srv.Close()

	c := New(srv.URL, fastOpts(WithRetries(0))...)
	_, err := c.Version(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("want *APIError, got %T: %v", err, err)
	}
	if ae.Status != http.StatusTooManyRequests {
		t.Errorf("status = %d, want 429", ae.Status)
	}
	if ae.Code != CodeQuotaExceeded {
		t.Errorf("code = %q, want %q", ae.Code, CodeQuotaExceeded)
	}
	if !ae.Retryable {
		t.Error("quota_exceeded must be retryable")
	}
	if ae.RetryAfter != 3*time.Second {
		t.Errorf("RetryAfter = %v, want 3s", ae.RetryAfter)
	}
	if !strings.Contains(ae.Message, `"acme"`) {
		t.Errorf("message %q lost its formatting args", ae.Message)
	}
	if !strings.Contains(ae.Error(), CodeQuotaExceeded) {
		t.Errorf("Error() = %q should name the code", ae.Error())
	}
}

func TestRetriesRetryableThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			WriteErrorRetryAfter(w, http.StatusServiceUnavailable, CodeOverloaded, time.Second, "shedding")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSONBody(w, VersionInfo{API: "v1", MaxCores: 256})
	}))
	defer srv.Close()

	c := New(srv.URL, fastOpts(WithRetries(2))...)
	v, err := c.Version(context.Background())
	if err != nil {
		t.Fatalf("Version after retries: %v", err)
	}
	if v.API != "v1" || v.MaxCores != 256 {
		t.Errorf("decoded %+v, want API=v1 MaxCores=256", v)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (two shed + one success)", got)
	}
}

func TestDoesNotRetryDeterministicRejections(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		WriteError(w, http.StatusBadRequest, CodeInvalidRequest, "no")
	}))
	defer srv.Close()

	c := New(srv.URL, fastOpts(WithRetries(5))...)
	_, err := c.Sim(context.Background(), "deadbeef")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeInvalidRequest {
		t.Fatalf("want invalid_request APIError, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want exactly 1 (400 is not retryable)", got)
	}
}

func TestRetriesBareServerErrorsWithoutEnvelope(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "proxy hiccup", http.StatusBadGateway)
			return
		}
		writeJSONBody(w, VersionInfo{API: "v1"})
	}))
	defer srv.Close()

	c := New(srv.URL, fastOpts(WithRetries(1))...)
	if _, err := c.Version(context.Background()); err != nil {
		t.Fatalf("want success after bare-502 retry, got %v", err)
	}
}

func TestNonEnvelopeBodyBecomesMessage(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "plain text not found", http.StatusNotFound)
	}))
	defer srv.Close()

	c := New(srv.URL, fastOpts(WithRetries(0))...)
	_, err := c.Scenario(context.Background(), "nope")
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("want *APIError, got %v", err)
	}
	if ae.Code != "" {
		t.Errorf("code = %q, want empty for non-envelope body", ae.Code)
	}
	if ae.Message != "plain text not found" {
		t.Errorf("message = %q", ae.Message)
	}
}

func TestAPIKeyHeaderAndPaths(t *testing.T) {
	type seen struct{ path, auth string }
	var got seen
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = seen{path: r.URL.Path, auth: r.Header.Get("Authorization")}
		writeJSONBody(w, SubmitScenariosResponse{})
	}))
	defer srv.Close()

	c := New(srv.URL+"/", fastOpts(WithAPIKey("sekrit"))...) // trailing slash trimmed
	if _, err := c.SubmitScenarios(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if got.path != "/v1/scenarios" {
		t.Errorf("path = %q, want /v1/scenarios", got.path)
	}
	if got.auth != "Bearer sekrit" {
		t.Errorf("Authorization = %q, want Bearer sekrit", got.auth)
	}
}

func TestSweepReturnsRawRenderedBody(t *testing.T) {
	const rendered = "Table 1\ncol a  col b\n1.00   2.00\n"
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/sweeps" || r.URL.Query().Get("format") != "text" {
			t.Errorf("unexpected request %s?%s", r.URL.Path, r.URL.RawQuery)
		}
		var doc map[string]any
		if err := json.NewDecoder(r.Body).Decode(&doc); err != nil {
			t.Errorf("sweep body not JSON: %v", err)
		}
		w.Write([]byte(rendered))
	}))
	defer srv.Close()

	c := New(srv.URL, fastOpts()...)
	out, err := c.Sweep(context.Background(), []byte(`{"name":"t1"}`), "text")
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != rendered {
		t.Errorf("sweep body = %q, want %q", out, rendered)
	}
}

func TestLeaseProtocolRoundTrip(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		json.NewDecoder(r.Body).Decode(&req)
		if req.Worker != "w1" || req.Max != 2 {
			t.Errorf("lease request %+v", req)
		}
		writeJSONBody(w, LeaseResponse{TTLMillis: 1500, Jobs: []LeasedJob{{Key: "k1"}}})
	})
	mux.HandleFunc("POST /v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		writeJSONBody(w, HeartbeatResponse{Lost: []string{"k9"}})
	})
	mux.HandleFunc("POST /v1/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		json.NewDecoder(r.Body).Decode(&req)
		if req.Error != "boom" {
			t.Errorf("complete error = %q", req.Error)
		}
		writeJSONBody(w, CompleteResponse{Accepted: true})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c := New(srv.URL, fastOpts()...)
	ctx := context.Background()
	jobs, ttl, err := c.Lease(ctx, "w1", 2)
	if err != nil || len(jobs) != 1 || jobs[0].Key != "k1" || ttl != 1500*time.Millisecond {
		t.Fatalf("lease = %v ttl=%v err=%v", jobs, ttl, err)
	}
	lost, err := c.Heartbeat(ctx, "w1", []string{"k1"})
	if err != nil || len(lost) != 1 || lost[0] != "k9" {
		t.Fatalf("heartbeat = %v err=%v", lost, err)
	}
	accepted, err := c.Complete(ctx, "w1", "k1", sim.ScenarioResult{}, "boom")
	if err != nil || !accepted {
		t.Fatalf("complete accepted=%v err=%v", accepted, err)
	}
}

func TestContextCancelStopsRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteErrorRetryAfter(w, http.StatusServiceUnavailable, CodeOverloaded, time.Hour, "always down")
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	// Large RetryAfter is capped by maxBackoff; with a generous cap the
	// ctx deadline must break the wait instead.
	c := New(srv.URL, WithRetries(3), WithMaxBackoff(time.Minute))
	start := time.Now()
	_, err := c.Version(ctx)
	if err == nil {
		t.Fatal("want error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry loop ignored context cancel (took %v)", elapsed)
	}
}

func TestRetryableCodeTable(t *testing.T) {
	for code, want := range map[string]bool{
		CodeInvalidRequest: false,
		CodeInvalidSpec:    false,
		CodeUnauthorized:   false,
		CodeNotFound:       false,
		CodeQuotaExceeded:  true,
		CodeOverloaded:     true,
		CodeShuttingDown:   true,
		CodeInterrupted:    true,
		CodeInternal:       false,
		"unknown_code":     false,
	} {
		if got := Retryable(code); got != want {
			t.Errorf("Retryable(%q) = %v, want %v", code, got, want)
		}
	}
}

// TestParseRetryAfterBothForms is the regression test for the header
// parser accepting only delay-seconds: RFC 9110 also allows the
// HTTP-date form, which used to fall back silently to the default
// backoff.
func TestParseRetryAfterBothForms(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"7", 7 * time.Second},
		{"0", 0},
		{"-3", 0},
		{now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{now.Add(-time.Minute).Format(http.TimeFormat), 0}, // date in the past
		{"soon", 0}, // garbage falls back to default backoff
		{"", 0},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.in, now); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestRetryAfterHTTPDateHeader drives the date form through a real
// response: the decoded APIError carries the delay until the date.
func TestRetryAfterHTTPDateHeader(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", time.Now().Add(30*time.Second).UTC().Format(http.TimeFormat))
		WriteError(w, http.StatusServiceUnavailable, CodeOverloaded, "shedding load")
	}))
	defer srv.Close()

	c := New(srv.URL, fastOpts(WithRetries(0))...)
	_, err := c.Version(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("want *APIError, got %T: %v", err, err)
	}
	// Allow scheduling slack between the header being stamped and the
	// client parsing it.
	if ae.RetryAfter <= 20*time.Second || ae.RetryAfter > 30*time.Second {
		t.Errorf("RetryAfter = %v, want ~30s from an HTTP-date header", ae.RetryAfter)
	}
}
