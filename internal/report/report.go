// Package report emits machine-readable forms of the harness's tables
// and figures: JSON for programmatic consumers (the HTTP server, CI
// perf-trend artifacts) and CSV for spreadsheets/plotting. The cells are
// exactly the formatted strings the text tables render, so a JSON/CSV
// report and the checked-in golden corpus can never disagree about a
// value.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"shotgun/internal/harness"
	"shotgun/internal/stats"
)

// Version is the report schema generation, embedded in every document so
// consumers can reject shapes they don't understand.
const Version = 1

// Table is the machine-readable form of one rendered experiment table.
type Table struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// Sampled marks tables whose cells are statistical estimates from
	// sampled simulation (mean ± confidence interval) rather than exact
	// runs. Omitted — not false — for exact tables, so pre-sampling
	// report documents are byte-identical.
	Sampled bool `json:"sampled,omitempty"`
}

// FromStats converts a rendered stats.Table.
func FromStats(id string, t *stats.Table) Table {
	return Table{ID: id, Title: t.Title(), Columns: t.Headers(), Rows: t.Rows(), Sampled: t.Sampled()}
}

// Report bundles the tables of one harness run.
type Report struct {
	Version int     `json:"version"`
	Scale   string  `json:"scale,omitempty"`
	Tables  []Table `json:"tables"`
}

// FromExperiments runs every experiment on the runner and collects the
// structured tables. Callers wanting pool saturation should
// runner.PrefetchScenarios(harness.AllScenarios(exps)) first; assembly
// here then
// only reads memoized results.
func FromExperiments(r *harness.Runner, exps []harness.Experiment, scale string) Report {
	rep := Report{Version: Version, Scale: scale}
	for _, e := range exps {
		rep.Tables = append(rep.Tables, FromStats(e.ID, e.Table(r)))
	}
	return rep
}

// WriteJSON emits the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV emits every table as a CSV block: a ["table", id, title]
// marker row, the column header row, then the data rows; blocks are
// separated by a blank line.
func (r Report) WriteCSV(w io.Writer) error {
	for i, t := range r.Tables {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if err := t.WriteCSV(w); err != nil {
			return fmt.Errorf("report: table %s: %w", t.ID, err)
		}
	}
	return nil
}

// WriteCSV emits one table (marker row, header row, data rows). Sampled
// tables carry a fourth "sampled" cell on the marker row; exact tables
// keep the three-cell marker unchanged.
func (t Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	marker := []string{"table", t.ID, t.Title}
	if t.Sampled {
		marker = append(marker, "sampled")
	}
	if err := cw.Write(marker); err != nil {
		return err
	}
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Bench is the machine-readable record of one benchmark run — the CI
// bench-smoke job uploads it as a workflow artifact so perf trends can
// be tracked across commits.
type Bench struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	// Instructions simulated, wall seconds, and the derived throughput.
	Instructions uint64  `json:"instructions"`
	Seconds      float64 `json:"seconds"`
	InstrPerSec  float64 `json:"instr_per_sec"`
}

// WriteBenchFile writes a fresh bench file holding one record.
func WriteBenchFile(path string, b Bench) error {
	b.Version = Version
	raw, err := json.MarshalIndent([]Bench{b}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// AppendBenchFile merges one bench record into a bench file — a JSON
// array of records — so every benchmark of one `go test -bench` run
// (single-sim throughput, the scenario-throughput sweep) lands in the
// same CI artifact. A missing or empty file starts a new array, a
// legacy single-record file is upgraded to a one-element array, and a
// record with the same Name is replaced in place (re-runs update rather
// than accumulate).
func AppendBenchFile(path string, b Bench) error {
	b.Version = Version
	var records []Bench
	raw, err := os.ReadFile(path)
	switch {
	case err == nil && len(raw) > 0:
		if jerr := json.Unmarshal(raw, &records); jerr != nil {
			var one Bench
			if oerr := json.Unmarshal(raw, &one); oerr != nil {
				return fmt.Errorf("report: %s is neither a bench record nor a list: %w", path, jerr)
			}
			records = []Bench{one}
		}
	case err != nil && !os.IsNotExist(err):
		return err
	}
	replaced := false
	for i, r := range records {
		if r.Name == b.Name {
			records[i] = b
			replaced = true
			break
		}
	}
	if !replaced {
		records = append(records, b)
	}
	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
