package report

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"shotgun/internal/harness"
	"shotgun/internal/stats"
)

func sampleTable() *stats.Table {
	t := stats.NewTable("Table X: sample", "Workload", "IPC")
	t.AddRow("Oracle", "1.234")
	t.AddRow("DB2", "0.987")
	return t
}

func TestFromStatsMirrorsTextTable(t *testing.T) {
	st := sampleTable()
	tab := FromStats("tablex", st)
	if tab.ID != "tablex" || tab.Title != "Table X: sample" {
		t.Fatalf("identity wrong: %+v", tab)
	}
	if len(tab.Columns) != 2 || tab.Columns[0] != "Workload" {
		t.Fatalf("columns wrong: %v", tab.Columns)
	}
	if len(tab.Rows) != 2 || tab.Rows[1][1] != "0.987" {
		t.Fatalf("rows wrong: %v", tab.Rows)
	}
	// Every cell must appear verbatim in the text render too.
	text := st.String()
	for _, row := range tab.Rows {
		for _, cell := range row {
			if !strings.Contains(text, cell) {
				t.Fatalf("cell %q missing from text render", cell)
			}
		}
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	rep := Report{Version: Version, Scale: "quick",
		Tables: []Table{FromStats("tablex", sampleTable())}}
	var b strings.Builder
	if err := rep.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatal(err)
	}
	if got.Version != Version || got.Scale != "quick" {
		t.Fatalf("header wrong: %+v", got)
	}
	if len(got.Tables) != 1 || got.Tables[0].Rows[0][0] != "Oracle" {
		t.Fatalf("tables wrong: %+v", got.Tables)
	}
}

func TestWriteCSV(t *testing.T) {
	rep := Report{Version: Version, Tables: []Table{
		FromStats("a", sampleTable()),
		FromStats("b", sampleTable()),
	}}
	var b strings.Builder
	if err := rep.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "table,a,") != 1 || strings.Count(out, "table,b,") != 1 {
		t.Fatalf("missing table markers:\n%s", out)
	}
	if !strings.Contains(out, "Oracle,1.234") {
		t.Fatalf("missing data row:\n%s", out)
	}
	if !strings.Contains(out, "\n\ntable,b") {
		t.Fatalf("tables not blank-line separated:\n%s", out)
	}
}

// TestFromExperimentsAnalysisOnly exercises the harness integration on
// the two pure trace analyses (no timing simulation, so it's fast).
func TestFromExperimentsAnalysisOnly(t *testing.T) {
	var exps []harness.Experiment
	for _, id := range []string{"fig3", "fig4"} {
		e, ok := harness.Find(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		exps = append(exps, e)
	}
	rep := FromExperiments(nil, exps, "quick")
	if len(rep.Tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(rep.Tables))
	}
	for _, tab := range rep.Tables {
		if len(tab.Rows) == 0 || len(tab.Columns) == 0 {
			t.Fatalf("table %s empty: %+v", tab.ID, tab)
		}
	}
	if rep.Tables[0].ID != "fig3" || rep.Tables[1].ID != "fig4" {
		t.Fatalf("ids wrong: %s %s", rep.Tables[0].ID, rep.Tables[1].ID)
	}
}

func TestWriteBenchFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_ci.json")
	if err := WriteBenchFile(path, Bench{
		Name: "BenchmarkSimThroughput", Instructions: 1_000_000,
		Seconds: 0.5, InstrPerSec: 2_000_000,
	}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got []Bench
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Version != Version || got[0].InstrPerSec != 2_000_000 {
		t.Fatalf("bench record wrong: %+v", got)
	}
}

// TestAppendBenchFile covers the multi-record artifact the bench-smoke
// CI job uploads: records accumulate by name, same-name re-runs replace
// in place, and a legacy single-record file upgrades to a list.
func TestAppendBenchFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_ci.json")
	read := func() []Bench {
		t.Helper()
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var got []Bench
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatal(err)
		}
		return got
	}

	if err := AppendBenchFile(path, Bench{Name: "BenchmarkSimThroughput", InstrPerSec: 1}); err != nil {
		t.Fatal(err)
	}
	if err := AppendBenchFile(path, Bench{Name: "BenchmarkScenarioThroughput/cores=8", InstrPerSec: 2}); err != nil {
		t.Fatal(err)
	}
	got := read()
	if len(got) != 2 || got[0].Name != "BenchmarkSimThroughput" || got[1].InstrPerSec != 2 {
		t.Fatalf("accumulated records wrong: %+v", got)
	}
	for _, r := range got {
		if r.Version != Version {
			t.Fatalf("record missing version: %+v", r)
		}
	}

	// Same name replaces in place instead of duplicating.
	if err := AppendBenchFile(path, Bench{Name: "BenchmarkSimThroughput", InstrPerSec: 3}); err != nil {
		t.Fatal(err)
	}
	got = read()
	if len(got) != 2 || got[0].InstrPerSec != 3 {
		t.Fatalf("same-name record not replaced: %+v", got)
	}

	// A legacy single-record file upgrades to a list on append.
	legacy, err := json.Marshal(Bench{Version: Version, Name: "old"})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AppendBenchFile(path, Bench{Name: "new"}); err != nil {
		t.Fatal(err)
	}
	got = read()
	if len(got) != 2 || got[0].Name != "old" || got[1].Name != "new" {
		t.Fatalf("legacy upgrade wrong: %+v", got)
	}
}
