package footprint

import (
	"testing"
	"testing/quick"

	"shotgun/internal/isa"
)

func TestLayoutSetContains(t *testing.T) {
	l := Layout8
	var v Vector
	v = l.Set(v, 2)
	v = l.Set(v, 5)
	v = l.Set(v, -1)
	for d := -l.Before; d <= l.After; d++ {
		want := d == 2 || d == 5 || d == -1
		if got := l.Contains(v, d); got != want {
			t.Fatalf("Contains(%d) = %v, want %v", d, got, want)
		}
	}
}

func TestLayoutWindowDrops(t *testing.T) {
	l := Layout8
	var v Vector
	v = l.Set(v, 7)  // beyond After=6
	v = l.Set(v, -3) // beyond Before=2
	v = l.Set(v, 0)  // target block: no bit
	if v != 0 {
		t.Fatalf("out-of-window sets must be dropped, got %b", v)
	}
}

func TestLayoutRoundTripProperty(t *testing.T) {
	l := Layout32
	if err := quick.Check(func(raw uint8, neg bool) bool {
		d := int(raw%24) + 1
		if neg {
			d = -(int(raw%8) + 1)
		}
		v := l.Set(0, d)
		return l.Contains(v, d) && v.PopCount() == 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlocksExpansion(t *testing.T) {
	l := Layout8
	target := isa.Addr(0x10000)
	var v Vector
	v = l.Set(v, 2)
	v = l.Set(v, 5)
	v = l.Set(v, -1)
	blocks := l.Blocks(v, target)
	want := map[isa.Addr]bool{
		target + 2*isa.BlockBytes: true,
		target + 5*isa.BlockBytes: true,
		target - 1*isa.BlockBytes: true,
	}
	if len(blocks) != len(want) {
		t.Fatalf("blocks = %v", blocks)
	}
	for _, b := range blocks {
		if !want[b] {
			t.Fatalf("unexpected block %v", b)
		}
	}
}

func TestBlocksEmptyVector(t *testing.T) {
	if got := Layout8.Blocks(0, 0x1000); got != nil {
		t.Fatalf("empty vector expanded to %v", got)
	}
}

func TestLayoutValidate(t *testing.T) {
	bad := []Layout{{Before: -1, After: 3}, {}, {Before: 40, After: 40}}
	for _, l := range bad {
		if l.Validate() == nil {
			t.Fatalf("layout %+v accepted", l)
		}
	}
	if Layout8.Validate() != nil || Layout32.Validate() != nil {
		t.Fatal("paper layouts rejected")
	}
	if Layout8.Bits() != 8 || Layout32.Bits() != 32 {
		t.Fatal("paper layouts have wrong bit counts")
	}
}

// mkBlock builds a basic block for recorder tests.
func mkBlock(pc isa.Addr, n int, kind isa.BranchKind, target isa.Addr) isa.BasicBlock {
	taken := kind != isa.BranchNone && kind != isa.BranchCond
	return isa.BasicBlock{PC: pc, NumInstr: n, Kind: kind, Taken: taken, Target: target}
}

func TestRecorderCallRegion(t *testing.T) {
	r := NewRecorder(Layout8)

	// call at 0x1000 -> 0x8000; region covers 0x8000 and 0x8000+2 blocks;
	// then a jump closes the region.
	if c := r.Observe(mkBlock(0x1000, 4, isa.BranchCall, 0x8000)); c != nil {
		t.Fatal("commit before any region closed")
	}
	r.Observe(mkBlock(0x8000, 4, isa.BranchCond, 0x8080)) // block 0
	fall := isa.BasicBlock{PC: 0x8080, NumInstr: 4, Kind: isa.BranchCond, Taken: true, Target: 0x8010}
	r.Observe(fall) // block +2
	c := r.Observe(mkBlock(0x8010, 4, isa.BranchJump, 0x9000))
	if c == nil {
		t.Fatal("jump did not close region")
	}
	if c.Owner != 0x1000 || c.IsReturnRegion {
		t.Fatalf("commit = %+v, want owner 0x1000 call region", c)
	}
	if !Layout8.Contains(c.Vector, 2) {
		t.Fatalf("footprint missing +2: %b", c.Vector)
	}
	if Layout8.Contains(c.Vector, 1) {
		t.Fatalf("footprint has spurious +1: %b", c.Vector)
	}
}

func TestRecorderReturnRegionOwner(t *testing.T) {
	r := NewRecorder(Layout8)
	// call A (block 0x1000) -> callee at 0x8000; callee returns; the
	// region after the return must be committed against the CALL block.
	r.Observe(mkBlock(0x1000, 4, isa.BranchCall, 0x8000))
	r.Observe(mkBlock(0x8000, 4, isa.BranchRet, 0x1010)) // closes call region, opens return region
	r.Observe(mkBlock(0x1010, 4, isa.BranchCond, 0x1080))
	c := r.Observe(mkBlock(0x1014, 4, isa.BranchJump, 0x9000))
	if c == nil {
		t.Fatal("no commit")
	}
	if c.Owner != 0x1000 || !c.IsReturnRegion {
		t.Fatalf("return region misattributed: %+v", c)
	}
}

func TestRecorderNestedCalls(t *testing.T) {
	r := NewRecorder(Layout8)
	r.Observe(mkBlock(0x1000, 4, isa.BranchCall, 0x8000)) // A calls B
	r.Observe(mkBlock(0x8000, 4, isa.BranchCall, 0xa000)) // B calls C
	r.Observe(mkBlock(0xa000, 4, isa.BranchRet, 0x8010))  // C returns -> B's call owns next region
	c := r.Observe(mkBlock(0x8010, 4, isa.BranchRet, 0x1010))
	if c == nil || c.Owner != 0x8000 || !c.IsReturnRegion {
		t.Fatalf("nested return misattributed: %+v", c)
	}
	// The next return region belongs to A's call.
	c2 := r.Observe(mkBlock(0x1010, 4, isa.BranchJump, 0x9000))
	if c2 == nil || c2.Owner != 0x1000 || !c2.IsReturnRegion {
		t.Fatalf("outer return misattributed: %+v", c2)
	}
}

func TestRecorderUnmatchedReturn(t *testing.T) {
	r := NewRecorder(Layout8)
	// A return with an empty shadow stack must not panic and must not
	// produce a return-region commit.
	r.Observe(mkBlock(0x1000, 4, isa.BranchRet, 0x9000))
	c := r.Observe(mkBlock(0x9000, 4, isa.BranchJump, 0xa000))
	if c == nil {
		t.Fatal("no commit")
	}
	if c.IsReturnRegion {
		t.Fatal("unmatched return produced a return region")
	}
}

func TestRecorderDistantAccessDropped(t *testing.T) {
	r := NewRecorder(Layout8)
	r.Observe(mkBlock(0x1000, 4, isa.BranchJump, 0x8000))
	// Access 20 blocks away: outside the 8-bit window.
	r.Observe(mkBlock(0x8000+20*isa.BlockBytes, 4, isa.BranchNone, 0))
	if r.Dropped == 0 {
		t.Fatal("distant access not counted as dropped")
	}
	c := r.Observe(mkBlock(0x8000+20*isa.BlockBytes+16, 4, isa.BranchJump, 0x9000))
	if c == nil || c.Vector != 0 {
		t.Fatalf("distant access leaked into vector: %+v", c)
	}
}

func TestRecorderTrapLikeCall(t *testing.T) {
	r := NewRecorder(Layout8)
	r.Observe(mkBlock(0x1000, 4, isa.BranchTrap, 0x7f0000000000))
	c := r.Observe(mkBlock(0x7f0000000000, 4, isa.BranchTrapRet, 0x1010))
	if c == nil || c.Owner != 0x1000 || c.IsReturnRegion {
		t.Fatalf("trap region misattributed: %+v", c)
	}
	// Trap-return region owned by the trap block (as return region).
	c2 := r.Observe(mkBlock(0x1010, 4, isa.BranchJump, 0x9000))
	if c2 == nil || c2.Owner != 0x1000 || !c2.IsReturnRegion {
		t.Fatalf("trap-return region misattributed: %+v", c2)
	}
}

func TestPopCount(t *testing.T) {
	if Vector(0).PopCount() != 0 || Vector(0b1011).PopCount() != 3 {
		t.Fatal("PopCount broken")
	}
}

func BenchmarkRecorderObserve(b *testing.B) {
	r := NewRecorder(Layout8)
	blocks := []isa.BasicBlock{
		mkBlock(0x1000, 4, isa.BranchCall, 0x8000),
		mkBlock(0x8000, 6, isa.BranchCond, 0x8100),
		mkBlock(0x8018, 6, isa.BranchNone, 0),
		mkBlock(0x8030, 4, isa.BranchRet, 0x1010),
		mkBlock(0x1010, 4, isa.BranchJump, 0x1000),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Observe(blocks[i%len(blocks)])
	}
}
