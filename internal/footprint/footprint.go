// Package footprint implements Shotgun's spatial footprints: compact
// bit-vector encodings of which cache blocks around a code region's entry
// point were touched during the region's last execution (Section 4.2.2).
//
// A Layout splits the vector into bits for blocks before and after the
// target block (the paper's 8-bit format uses 2 before + 6 after). The
// Recorder watches the retire-order basic-block stream, opens a region at
// every unconditional branch, accumulates touched blocks, and commits the
// finished footprint to its owner: the unconditional branch that opened
// the region — or, for return regions, the matching call (tracked with a
// shadow stack), which is where the U-BTB stores Return Footprints.
package footprint

import (
	"fmt"

	"shotgun/internal/isa"
)

// Vector is a spatial footprint: bit i set means the block at the i-th
// encoded distance from the region's target block was accessed. Use a
// Layout to interpret it.
type Vector uint64

// Layout defines the vector geometry: After bits for blocks at distances
// +1..+After, Before bits for blocks at distances -1..-Before. The target
// block itself is always fetched and needs no bit.
type Layout struct {
	Before, After int
}

// Paper configurations (Section 5.2 and the Figure 8/9 ablation).
var (
	// Layout8 is the paper's default: 8 bits, 6 after + 2 before.
	Layout8 = Layout{Before: 2, After: 6}
	// Layout32 is the ablation's 32-bit vector, split in the same 1:3
	// proportion (8 before + 24 after).
	Layout32 = Layout{Before: 8, After: 24}
)

// Bits returns the storage cost of a footprint in bits.
func (l Layout) Bits() int { return l.Before + l.After }

// Validate rejects layouts that do not fit a Vector.
func (l Layout) Validate() error {
	if l.Before < 0 || l.After < 0 || l.Bits() == 0 || l.Bits() > 64 {
		return fmt.Errorf("footprint: invalid layout %+v", l)
	}
	return nil
}

// bitFor maps a block distance to a bit position, returning ok=false when
// the distance is outside the encodable window.
func (l Layout) bitFor(dist int) (uint, bool) {
	switch {
	case dist >= 1 && dist <= l.After:
		return uint(dist - 1), true
	case dist <= -1 && dist >= -l.Before:
		return uint(l.After + (-dist) - 1), true
	}
	return 0, false
}

// Set marks the block at the given distance (in cache blocks) from the
// target block. Distances outside the window are dropped — that is the
// encoding's precision/storage trade-off.
func (l Layout) Set(v Vector, dist int) Vector {
	if bit, ok := l.bitFor(dist); ok {
		return v | Vector(1)<<bit
	}
	return v
}

// Contains reports whether the block at the given distance is marked.
func (l Layout) Contains(v Vector, dist int) bool {
	bit, ok := l.bitFor(dist)
	return ok && v&(Vector(1)<<bit) != 0
}

// Blocks expands the footprint into the block addresses to prefetch
// around target (the target's own block is not included; callers fetch it
// unconditionally).
func (l Layout) Blocks(v Vector, target isa.Addr) []isa.Addr {
	return l.AppendBlocks(nil, v, target)
}

// AppendBlocks is Blocks appending into dst — the prefetch engines call
// it once per unconditional branch, so reusing one scratch slice keeps
// the region expansion allocation-free.
func (l Layout) AppendBlocks(dst []isa.Addr, v Vector, target isa.Addr) []isa.Addr {
	if v == 0 {
		return dst
	}
	base := target.Block()
	for d := 1; d <= l.After; d++ {
		if l.Contains(v, d) {
			dst = append(dst, base+isa.Addr(d*isa.BlockBytes))
		}
	}
	for d := 1; d <= l.Before; d++ {
		if l.Contains(v, -d) {
			dst = append(dst, base-isa.Addr(d*isa.BlockBytes))
		}
	}
	return dst
}

// PopCount returns the number of marked blocks.
func (v Vector) PopCount() int {
	n := 0
	for x := uint64(v); x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Commit is a finished region footprint.
type Commit struct {
	// Owner is the basic-block address of the unconditional branch that
	// owns this footprint in the U-BTB.
	Owner isa.Addr
	// IsReturnRegion selects which of the owner's two footprint fields
	// to update: the Return Footprint (true) or the Call Footprint.
	IsReturnRegion bool
	// Vector is the recorded footprint.
	Vector Vector
}

// Recorder accumulates spatial footprints from the retire stream.
type Recorder struct {
	layout     Layout
	contiguous bool

	active     bool
	owner      isa.Addr
	isReturn   bool
	entry      isa.Addr // region entry (target) block
	vec        Vector
	minD, maxD int

	// shadow stack pairing returns with their calls, so return-region
	// footprints can be attributed to the call's U-BTB entry.
	stack []isa.Addr

	// commit is the reusable buffer Observe returns a pointer into, so
	// the per-retire hot path never heap-allocates; it is valid until
	// the next Observe call.
	commit Commit

	// Commits counts finished regions; Dropped counts region accesses
	// outside the encodable window (precision loss).
	Commits uint64
	Dropped uint64
}

// NewRecorder builds a recorder with the given layout.
func NewRecorder(layout Layout) *Recorder {
	if err := layout.Validate(); err != nil {
		panic(err)
	}
	return &Recorder{layout: layout}
}

// NewContiguousRecorder builds a recorder for the paper's "Entire Region"
// ablation: instead of exact per-block bits, the committed vector marks
// every block between the region's lowest and highest accessed distance,
// modeling prefetching of the whole entry-to-exit span.
func NewContiguousRecorder(layout Layout) *Recorder {
	r := NewRecorder(layout)
	r.contiguous = true
	return r
}

// Layout returns the recorder's vector geometry.
func (r *Recorder) Layout() Layout { return r.layout }

// Observe consumes one retired basic block and returns a non-nil Commit
// when the block's unconditional branch closed a region. The returned
// pointer aliases a reusable internal buffer — consume it before the
// next Observe call.
func (r *Recorder) Observe(bb isa.BasicBlock) *Commit {
	// Accumulate this block's cache-block accesses into the open region.
	if r.active {
		first, last := bb.BlockSpan()
		for cb := first; cb <= last; cb += isa.BlockBytes {
			d := isa.BlockDistance(r.entry, cb)
			if d < r.minD {
				r.minD = d
			}
			if d > r.maxD {
				r.maxD = d
			}
			if d == 0 {
				continue // the target block needs no bit
			}
			if _, ok := r.layout.bitFor(d); !ok {
				r.Dropped++
				continue
			}
			r.vec = r.layout.Set(r.vec, d)
		}
	}

	if !bb.Kind.IsUnconditional() {
		return nil
	}

	// The unconditional branch closes the open region...
	var done *Commit
	if r.active {
		vec := r.vec
		if r.contiguous {
			vec = r.contiguousVector()
		}
		r.commit = Commit{Owner: r.owner, IsReturnRegion: r.isReturn, Vector: vec}
		done = &r.commit
		r.Commits++
	}

	// ...and opens the next one. Determine the new region's owner.
	blockAddr := bb.PC
	switch {
	case bb.Kind.IsCallLike():
		r.stack = append(r.stack, blockAddr)
		r.owner, r.isReturn = blockAddr, false
	case bb.Kind.IsReturn():
		if n := len(r.stack); n > 0 {
			r.owner = r.stack[n-1]
			r.stack = r.stack[:n-1]
			r.isReturn = true
		} else {
			// Request-boundary return with no matching call: record
			// the region against the return's own block as a call
			// footprint (it will simply never be read).
			r.owner, r.isReturn = blockAddr, false
		}
	default: // jump
		r.owner, r.isReturn = blockAddr, false
	}
	r.active = true
	r.entry = bb.Target.Block()
	r.vec = 0
	r.minD, r.maxD = 0, 0
	return done
}

// contiguousVector marks every encodable block between the region's
// lowest and highest accessed distance (the entry-to-exit span).
func (r *Recorder) contiguousVector() Vector {
	var v Vector
	for d := r.minD; d <= r.maxD; d++ {
		if d == 0 {
			continue
		}
		v = r.layout.Set(v, d)
	}
	return v
}
