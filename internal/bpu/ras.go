package bpu

import "shotgun/internal/isa"

// RASEntry is one return-address-stack frame. Besides the architectural
// return address, Shotgun pushes the address of the basic block
// containing the call (Section 4.2.3): on a RIB hit for a return, that
// block address indexes the U-BTB to retrieve the Return Footprint.
type RASEntry struct {
	// ReturnAddr is the address execution resumes at after the return.
	ReturnAddr isa.Addr
	// CallBlock is the basic-block address of the corresponding call.
	CallBlock isa.Addr
}

// RAS is a fixed-capacity circular return address stack. Overflow
// overwrites the oldest frame; underflow returns ok=false — both are the
// behaviours of a real hardware RAS.
type RAS struct {
	frames []RASEntry
	top    int // index of the next free slot
	depth  int // live frames, <= len(frames)

	Pushes     uint64
	Pops       uint64
	Underflows uint64
}

// NewRAS builds a stack with the given capacity (paper: 8-32 is common;
// the default config uses 32).
func NewRAS(capacity int) *RAS {
	if capacity <= 0 {
		panic("bpu: RAS capacity must be positive")
	}
	return &RAS{frames: make([]RASEntry, capacity)}
}

// Push records a call.
func (r *RAS) Push(e RASEntry) {
	r.frames[r.top] = e
	r.top = (r.top + 1) % len(r.frames)
	if r.depth < len(r.frames) {
		r.depth++
	}
	r.Pushes++
}

// Pop removes and returns the youngest frame. ok is false on underflow.
func (r *RAS) Pop() (RASEntry, bool) {
	r.Pops++
	if r.depth == 0 {
		r.Underflows++
		return RASEntry{}, false
	}
	r.top = (r.top - 1 + len(r.frames)) % len(r.frames)
	r.depth--
	return r.frames[r.top], true
}

// Peek returns the youngest frame without removing it.
func (r *RAS) Peek() (RASEntry, bool) {
	if r.depth == 0 {
		return RASEntry{}, false
	}
	return r.frames[(r.top-1+len(r.frames))%len(r.frames)], true
}

// Depth returns the number of live frames.
func (r *RAS) Depth() int { return r.depth }

// Capacity returns the stack capacity.
func (r *RAS) Capacity() int { return len(r.frames) }

// CopyFrom restores this RAS to a snapshot of another (pipeline-flush
// repair from the retire-side architectural stack).
func (r *RAS) CopyFrom(src *RAS) {
	if len(r.frames) != len(src.frames) {
		r.frames = make([]RASEntry, len(src.frames))
	}
	copy(r.frames, src.frames)
	r.top = src.top
	r.depth = src.depth
}
