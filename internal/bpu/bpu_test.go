package bpu

import (
	"testing"

	"shotgun/internal/isa"
	"shotgun/internal/xrand"
)

func TestTAGELearnsBias(t *testing.T) {
	p := NewTAGE()
	pc := isa.Addr(0x1000)
	// Strongly taken branch: after warmup, prediction must be taken.
	for i := 0; i < 100; i++ {
		p.Predict(pc)
		p.Update(pc, true)
	}
	if !p.Predict(pc) {
		t.Fatal("did not learn always-taken branch")
	}
}

func TestTAGELearnsPattern(t *testing.T) {
	p := NewTAGE()
	pc := isa.Addr(0x2000)
	// Alternating pattern is history-predictable; a bimodal-only
	// predictor would miss ~50%. TAGE should get well under 20% after
	// warmup.
	warm, measure := 2000, 2000
	wrong := 0
	for i := 0; i < warm+measure; i++ {
		taken := i%2 == 0
		got := p.Predict(pc)
		if i >= warm && got != taken {
			wrong++
		}
		p.Update(pc, taken)
	}
	rate := float64(wrong) / float64(measure)
	if rate > 0.2 {
		t.Fatalf("alternating-pattern mispredict rate = %.3f, want < 0.2", rate)
	}
}

func TestTAGELoopPattern(t *testing.T) {
	p := NewTAGE()
	pc := isa.Addr(0x3000)
	// Loop branch: taken 7 times, then not taken, repeating.
	warm, measure := 4000, 4000
	wrong := 0
	for i := 0; i < warm+measure; i++ {
		taken := i%8 != 7
		got := p.Predict(pc)
		if i >= warm && got != taken {
			wrong++
		}
		p.Update(pc, taken)
	}
	rate := float64(wrong) / float64(measure)
	if rate > 0.1 {
		t.Fatalf("loop-pattern mispredict rate = %.3f, want < 0.1", rate)
	}
}

func TestTAGERandomBranchBounded(t *testing.T) {
	p := NewTAGE()
	rng := xrand.New(7)
	pc := isa.Addr(0x4000)
	wrong, n := 0, 20000
	for i := 0; i < n; i++ {
		taken := rng.Bool(0.5)
		if p.Predict(pc) != taken {
			wrong++
		}
		p.Update(pc, taken)
	}
	rate := float64(wrong) / float64(n)
	// A random branch cannot be predicted; the rate must hover near 50%
	// (sanity that the predictor is not cheating via the test harness).
	if rate < 0.4 || rate > 0.6 {
		t.Fatalf("random-branch mispredict rate = %.3f, want ~0.5", rate)
	}
}

func TestTAGEManyBranches(t *testing.T) {
	// A mix of biased branches across many PCs should give a low overall
	// misprediction rate (the regime the 8KB budget targets).
	p := NewTAGE()
	rng := xrand.New(11)
	type br struct {
		pc   isa.Addr
		bias float64
	}
	branches := make([]br, 500)
	for i := range branches {
		bias := 0.05
		if i%3 == 0 {
			bias = 0.95
		}
		branches[i] = br{pc: isa.Addr(0x10000 + i*64), bias: bias}
	}
	wrong, n := 0, 200000
	for i := 0; i < n; i++ {
		b := branches[rng.Intn(len(branches))]
		taken := rng.Bool(b.bias)
		if p.Predict(b.pc) != taken {
			wrong++
		}
		p.Update(b.pc, taken)
	}
	rate := float64(wrong) / float64(n)
	if rate > 0.10 {
		t.Fatalf("biased-mix mispredict rate = %.3f, want < 0.10", rate)
	}
}

func TestTAGEStorageBudget(t *testing.T) {
	p := NewTAGE()
	bits := p.StorageBits()
	// Must be within 10% of the paper's 8KB budget.
	budget := 8 << 10 * 8
	lo, hi := budget*9/10, budget*11/10
	if bits < lo || bits > hi {
		t.Fatalf("storage = %d bits, want within [%d, %d]", bits, lo, hi)
	}
}

func TestTAGEStats(t *testing.T) {
	p := NewTAGE()
	p.Predict(0x100)
	p.Update(0x100, true)
	if p.Lookups == 0 {
		t.Fatal("lookups not counted")
	}
	p.ResetStats()
	if p.Lookups != 0 || p.Mispredicts != 0 {
		t.Fatal("reset failed")
	}
}

func TestRASPushPop(t *testing.T) {
	r := NewRAS(4)
	r.Push(RASEntry{ReturnAddr: 0x100, CallBlock: 0x90})
	r.Push(RASEntry{ReturnAddr: 0x200, CallBlock: 0x190})
	e, ok := r.Pop()
	if !ok || e.ReturnAddr != 0x200 || e.CallBlock != 0x190 {
		t.Fatalf("pop = %+v ok=%v", e, ok)
	}
	e, ok = r.Pop()
	if !ok || e.ReturnAddr != 0x100 {
		t.Fatalf("pop = %+v ok=%v", e, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop succeeded on empty stack")
	}
	if r.Underflows != 1 {
		t.Fatalf("underflows = %d", r.Underflows)
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(RASEntry{ReturnAddr: 1})
	r.Push(RASEntry{ReturnAddr: 2})
	r.Push(RASEntry{ReturnAddr: 3}) // overwrites 1
	if e, _ := r.Pop(); e.ReturnAddr != 3 {
		t.Fatalf("got %v", e.ReturnAddr)
	}
	if e, _ := r.Pop(); e.ReturnAddr != 2 {
		t.Fatalf("got %v", e.ReturnAddr)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("entry 1 should have been overwritten")
	}
}

func TestRASPeek(t *testing.T) {
	r := NewRAS(4)
	if _, ok := r.Peek(); ok {
		t.Fatal("peek on empty")
	}
	r.Push(RASEntry{ReturnAddr: 5})
	e, ok := r.Peek()
	if !ok || e.ReturnAddr != 5 || r.Depth() != 1 {
		t.Fatal("peek wrong or destructive")
	}
}

func TestRASCopyFrom(t *testing.T) {
	a, b := NewRAS(4), NewRAS(4)
	a.Push(RASEntry{ReturnAddr: 1})
	a.Push(RASEntry{ReturnAddr: 2})
	b.Push(RASEntry{ReturnAddr: 9})
	b.CopyFrom(a)
	if b.Depth() != 2 {
		t.Fatalf("depth = %d", b.Depth())
	}
	if e, _ := b.Pop(); e.ReturnAddr != 2 {
		t.Fatalf("copy broken: %+v", e)
	}
	// Copy must be deep: popping b must not affect a.
	if a.Depth() != 2 {
		t.Fatal("CopyFrom aliased storage")
	}
}

func BenchmarkTAGEPredictUpdate(b *testing.B) {
	p := NewTAGE()
	rng := xrand.New(1)
	for i := 0; i < b.N; i++ {
		pc := isa.Addr(0x1000 + (i%256)*20)
		taken := rng.Bool(0.7)
		p.Predict(pc)
		p.Update(pc, taken)
	}
}
