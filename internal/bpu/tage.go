// Package bpu implements the branch prediction unit's direction
// predictor — a TAGE variant (Seznec & Michaud) sized to the paper's 8KB
// storage budget — and the return address stack, including Shotgun's
// extension that records the calling basic block alongside the return
// address (Section 4.2.3).
package bpu

import (
	"math/bits"

	"shotgun/internal/isa"
)

// TAGE is a tagged-geometric-history direction predictor.
//
// Storage accounting (8KB budget, Table 3):
//   - bimodal base: 8K entries x 2 bits                 = 2.00 KB
//   - 4 tagged tables: 1K entries x (8 tag + 3 ctr + 2 u) = 6.50 KB
//
// total ~8.5KB, matching the paper's 8KB budget to within rounding.
type TAGE struct {
	base []int8 // 2-bit saturating counters, biased at >=2 taken

	tables  []tagedTable
	histLen []int

	ghist uint64 // global direction history, youngest bit at LSB

	// clz selects the CLZ-rotated history folding (NewCLZTAGE). It only
	// gates how the folded terms are computed; tables, update rules and
	// storage are identical to the default variant.
	clz bool

	// Folded-history cache: the per-table fold terms of index() and
	// tag() depend only on ghist, which advances once per retired
	// branch, while lookups recompute them several times per branch.
	// foldsValid is cleared whenever ghist changes and the folds are
	// rebuilt lazily on the next lookup.
	foldsValid bool
	foldIdx    [numTables]uint64
	foldTag    [numTables]uint64

	// Lookups / Mispredicts count predictions and wrong predictions.
	Lookups     uint64
	Mispredicts uint64
}

type tagedTable struct {
	tags []uint16
	ctr  []int8 // 3-bit signed counter: >=0 taken
	use  []uint8
}

const (
	baseBits   = 13 // 8K-entry bimodal
	tableBits  = 10 // 1K entries per tagged table
	numTables  = 4
	tagBits    = 8
	maxUseful  = 3
	resetEvery = 1 << 18
)

// NewTAGE builds the predictor with geometric history lengths {6,16,34,62}.
func NewTAGE() *TAGE {
	t := &TAGE{
		base:    make([]int8, 1<<baseBits),
		histLen: []int{6, 16, 34, 62},
	}
	for i := range t.base {
		t.base[i] = 1 // weakly not-taken: most static branches are rarely taken
	}
	t.tables = make([]tagedTable, numTables)
	for i := range t.tables {
		t.tables[i] = tagedTable{
			tags: make([]uint16, 1<<tableBits),
			ctr:  make([]int8, 1<<tableBits),
			use:  make([]uint8, 1<<tableBits),
		}
	}
	return t
}

// NewCLZTAGE builds the CLZ-indexing variant: the same tables, budget,
// and update rules as NewTAGE, but the per-table history folds rotate
// each successive chunk by the leading-zero count of the running fold
// (clzFold) instead of XOR-folding chunks in place. Sparse histories —
// long runs of identical outcomes, common in loop-heavy server code —
// then spread across the index space instead of collapsing onto a few
// low bits. Swept as the sim.Config BPU axis.
func NewCLZTAGE() *TAGE {
	t := NewTAGE()
	t.clz = true
	return t
}

func fold(h uint64, lenBits, outBits int) uint64 {
	h &= (1 << uint(lenBits)) - 1
	var f uint64
	for h != 0 {
		f ^= h & ((1 << uint(outBits)) - 1)
		h >>= uint(outBits)
	}
	return f
}

// clzFold compresses the low lenBits of h into outBits. Where fold XORs
// successive outBits-wide chunks in place, clzFold rotates each chunk
// by the leading-zero count of the running fold before XORing it in, so
// equal chunks landed at different register states hash apart. The
// result is always below 1<<outBits (FuzzCLZIndex pins this).
func clzFold(h uint64, lenBits, outBits int) uint64 {
	h &= (1 << uint(lenBits)) - 1
	mask := uint64(1)<<uint(outBits) - 1
	var f uint64
	for h != 0 {
		chunk := h & mask
		rot := bits.LeadingZeros64(f|1) % outBits
		f ^= (chunk<<uint(rot) | chunk>>uint(outBits-rot)) & mask
		h >>= uint(outBits)
	}
	return f
}

func mix(pc isa.Addr) uint64 {
	x := uint64(pc) >> 2
	x ^= x >> 13
	x *= 0x9e3779b97f4a7c15
	return x ^ (x >> 29)
}

// folds returns the cached per-table history folds, rebuilding them if
// ghist advanced since the last lookup.
func (t *TAGE) folds() {
	if t.foldsValid {
		return
	}
	for i := 0; i < numTables; i++ {
		if t.clz {
			t.foldIdx[i] = clzFold(t.ghist, t.histLen[i], tableBits)
			t.foldTag[i] = clzFold(t.ghist, t.histLen[i], tagBits)
		} else {
			t.foldIdx[i] = fold(t.ghist, t.histLen[i], tableBits) ^ (fold(t.ghist, t.histLen[i], tableBits-1) << 1)
			t.foldTag[i] = fold(t.ghist, t.histLen[i], tagBits)
		}
	}
	t.foldsValid = true
}

func (t *TAGE) index(table int, pc isa.Addr) int {
	t.folds()
	return int((mix(pc) ^ t.foldIdx[table]) & ((1 << tableBits) - 1))
}

func (t *TAGE) tag(table int, pc isa.Addr) uint16 {
	t.folds()
	h := mix(pc)>>7 ^ t.foldTag[table]
	tag := uint16(h&((1<<tagBits)-1)) | 1 // never zero: zero means empty
	return tag
}

// lookup finds the longest-history table whose entry matches pc,
// returning its table number and index, or table -1 when only the
// bimodal base applies; pred is the resulting direction prediction.
// It hoists the pc hash and the folded history out of the per-table
// probes — index() and tag() applied across all tables, exactly.
func (t *TAGE) lookup(pc isa.Addr) (table, idx int, pred bool) {
	t.folds()
	mixed := mix(pc)
	for i := numTables - 1; i >= 0; i-- {
		idx := int((mixed ^ t.foldIdx[i]) & ((1 << tableBits) - 1))
		tag := uint16((mixed>>7^t.foldTag[i])&((1<<tagBits)-1)) | 1
		if t.tables[i].tags[idx] == tag {
			return i, idx, t.tables[i].ctr[idx] >= 0
		}
	}
	return -1, 0, t.base[int(mixed&((1<<baseBits)-1))] >= 2
}

func (t *TAGE) baseIndex(pc isa.Addr) int {
	return int(mix(pc) & ((1 << baseBits) - 1))
}

// Predict returns the predicted direction for the conditional branch at pc.
func (t *TAGE) Predict(pc isa.Addr) bool {
	t.Lookups++
	_, _, pred := t.lookup(pc)
	return pred
}

// Update trains the predictor with the actual outcome and advances the
// global history. Call once per retired conditional branch.
func (t *TAGE) Update(pc isa.Addr, taken bool) {
	// One scan yields both the prediction and the provider (the
	// longest matching table).
	provider, provIdx, predicted := t.lookup(pc)
	if predicted != taken {
		t.Mispredicts++
	}

	if provider >= 0 {
		tb := &t.tables[provider]
		if taken {
			if tb.ctr[provIdx] < 3 {
				tb.ctr[provIdx]++
			}
		} else {
			if tb.ctr[provIdx] > -4 {
				tb.ctr[provIdx]--
			}
		}
		if (tb.ctr[provIdx] >= 0) == taken && tb.use[provIdx] < maxUseful {
			tb.use[provIdx]++
		}
	} else {
		bi := t.baseIndex(pc)
		if taken {
			if t.base[bi] < 3 {
				t.base[bi]++
			}
		} else {
			if t.base[bi] > 0 {
				t.base[bi]--
			}
		}
	}

	// On misprediction, allocate into a longer-history table.
	if predicted != taken && provider < numTables-1 {
		for i := provider + 1; i < numTables; i++ {
			idx := t.index(i, pc)
			if t.tables[i].use[idx] == 0 {
				t.tables[i].tags[idx] = t.tag(i, pc)
				if taken {
					t.tables[i].ctr[idx] = 0
				} else {
					t.tables[i].ctr[idx] = -1
				}
				break
			}
			// Decay usefulness so allocations eventually succeed.
			t.tables[i].use[idx]--
		}
	}

	// Periodic useful-counter decay (gracefully ages stale entries).
	if t.Lookups%resetEvery == 0 {
		for i := range t.tables {
			for j := range t.tables[i].use {
				t.tables[i].use[j] >>= 1
			}
		}
	}

	t.ghist = t.ghist<<1 | b2u(taken)
	t.foldsValid = false
}

// NoteUncond advances history for unconditional transfers so the global
// history reflects path information (they are always taken).
func (t *TAGE) NoteUncond() {
	t.ghist = t.ghist<<1 | 1
	t.foldsValid = false
}

// MispredictRate returns the fraction of Update calls that disagreed with
// the prediction.
func (t *TAGE) MispredictRate() float64 {
	if t.Lookups == 0 {
		return 0
	}
	return float64(t.Mispredicts) / float64(t.Lookups)
}

// ResetStats clears counters without clearing predictor state.
func (t *TAGE) ResetStats() {
	t.Lookups = 0
	t.Mispredicts = 0
}

// StorageBits returns the modeled predictor budget in bits.
func (t *TAGE) StorageBits() int {
	return (1<<baseBits)*2 + numTables*(1<<tableBits)*(tagBits+3+2)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
