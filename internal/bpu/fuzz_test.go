package bpu

import (
	"testing"

	"shotgun/internal/isa"
)

// FuzzCLZIndex holds the CLZ-rotated history fold — and the table
// indexing built on it — to its range contract for arbitrary history
// registers and PCs: clzFold always lands below 1<<outBits (a
// violation would index out of a tagged table), agrees with itself on
// repeated evaluation, and the CLZ-TAGE lookup path derives in-range
// table indices and non-zero tags from it. Wired into the CI
// fuzz-smoke job next to the delta-matcher target.
func FuzzCLZIndex(f *testing.F) {
	f.Add(uint64(0), uint64(0x1000))
	f.Add(^uint64(0), uint64(0x7fff_ffff_fffc))
	f.Add(uint64(0xaaaa_aaaa_aaaa_aaaa), uint64(64))
	f.Add(uint64(1)<<63, uint64(0))

	f.Fuzz(func(t *testing.T, ghist, pc uint64) {
		tage := NewCLZTAGE()
		tage.ghist = ghist
		for _, hl := range tage.histLen {
			for _, outBits := range []int{tableBits, tagBits} {
				v := clzFold(ghist, hl, outBits)
				if v >= 1<<uint(outBits) {
					t.Fatalf("clzFold(%#x, %d, %d) = %#x escapes %d bits", ghist, hl, outBits, v, outBits)
				}
				if v2 := clzFold(ghist, hl, outBits); v2 != v {
					t.Fatalf("clzFold not deterministic: %#x then %#x", v, v2)
				}
			}
		}
		// The lookup path built on the folds: indices in range, tags
		// non-zero (zero is the empty-slot sentinel).
		for i := 0; i < numTables; i++ {
			if idx := tage.index(i, isa.Addr(pc)); idx < 0 || idx >= 1<<tableBits {
				t.Fatalf("table %d index %d out of range", i, idx)
			}
			if tag := tage.tag(i, isa.Addr(pc)); tag == 0 || tag >= 1<<tagBits {
				t.Fatalf("table %d tag %#x out of range", i, tag)
			}
		}
		// A full predict/update round trip on the fuzzed history must
		// not panic and must keep counters coherent.
		tage.foldsValid = false
		pred := tage.Predict(isa.Addr(pc))
		tage.Update(isa.Addr(pc), !pred)
		if tage.Mispredicts == 0 {
			t.Fatal("forced mispredict not counted")
		}
	})
}
