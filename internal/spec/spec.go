// Package spec makes parameter sweeps first-class data: a versioned,
// declarative JSON format that describes grids over sim.Config fields,
// multi-core interference mixes, and trace analyses, plus a compiler
// that expands a spec into canonical sim.Scenario sets and
// harness.Experiment values. The full format reference lives in
// docs/SPEC.md; the paper's own evaluation is checked in as spec files
// under specs/, proven byte-identical to the compiled-in experiments by
// the golden-gated parity test.
//
// The contract that makes specs safe to accept from disk or HTTP:
//
//   - parsing is strict — unknown fields, wrong versions, and malformed
//     JSON all error (and never panic: FuzzSpecParse);
//   - expansion is capped (MaxScenarios) and deterministic — the same
//     spec always expands to the same scenarios in the same order, so
//     renders are stable at any worker count;
//   - expanded scenarios are ordinary normalized sim.Scenario values,
//     so spec-driven jobs share one content identity (memo key, store
//     record, cluster job) with compiled-in experiments and with each
//     other.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"regexp"

	"shotgun/internal/harness"
	"shotgun/internal/sim"
	"shotgun/internal/workload"
)

// Version is the spec-format generation this build reads. Parse rejects
// any other value, so a future format change cannot be silently
// misinterpreted by an old binary (or vice versa).
const Version = 1

// MaxScenarios caps how many scenarios one spec may expand to, counted
// before deduplication. Specs arrive from disk and HTTP; without a cap
// a small grid declaration could fan out into an unbounded work list.
const MaxScenarios = 4096

// MaxAnalysisBlocks caps one trace analysis's length. The analysis
// kinds expand to zero scenarios, so MaxScenarios never touches them —
// yet their renders walk `blocks` basic blocks per workload
// synchronously, which needs its own bound against a tiny hostile
// document buying unbounded CPU (the paper's analyses use 400000).
const MaxAnalysisBlocks = 10_000_000

// MaxAnalysisCost caps the SUM of blocks × workloads across a spec's
// analysis tables, so the per-table cap cannot be multiplied back into
// unbounded work by packing many tables (the paper's two analyses
// total ~3.2M).
const MaxAnalysisCost = 120_000_000

// MaxTables bounds a spec's table count — far above the 13-table paper
// catalog, low enough that per-table overheads can't be farmed.
const MaxTables = 64

// Spec is one declarative sweep: a named set of output tables over a
// shared (optional) simulation scale.
type Spec struct {
	// Version must equal Version.
	Version int `json:"version"`
	// Name identifies the sweep (reports, logs).
	Name string `json:"name"`
	// Desc is an optional one-line description.
	Desc string `json:"desc,omitempty"`
	// Scale, when present, pins the simulation scale. When absent the
	// runner's scale applies — exactly like compiled-in experiments, and
	// required for golden parity.
	Scale *Scale `json:"scale,omitempty"`
	// Tables lists the output tables, each expanding to its own
	// scenario set.
	Tables []Table `json:"tables"`
}

// Scale mirrors harness.Scale: instruction budgets and sample counts.
type Scale struct {
	WarmupInstr  uint64 `json:"warmup_instr"`
	MeasureInstr uint64 `json:"measure_instr"`
	Samples      int    `json:"samples"`
}

// Harness converts to the harness's scale type.
func (s Scale) Harness() harness.Scale {
	return harness.Scale{WarmupInstr: s.WarmupInstr, MeasureInstr: s.MeasureInstr, Samples: s.Samples}
}

// Table declares one output table. Exactly one of the kind fields
// (Grid, Interference, RegionCDF, BranchCoverage) must be set.
type Table struct {
	// ID is the table's experiment id (unique within the spec).
	ID string `json:"id"`
	// Title is the rendered table's title line.
	Title string `json:"title"`

	// Grid is a (workload × column) metric grid over single-core
	// configs, optionally crossed with a second row axis.
	Grid *Grid `json:"grid,omitempty"`
	// Interference is a multi-core co-runner sweep over one shared
	// uncore.
	Interference *Interference `json:"interference,omitempty"`
	// RegionCDF is the Figure 3 trace analysis (no simulations).
	RegionCDF *RegionCDF `json:"region_cdf,omitempty"`
	// BranchCoverage is the Figure 4 trace analysis (no simulations).
	BranchCoverage *BranchCoverage `json:"branch_coverage,omitempty"`
	// Sampled is the exact-vs-sampled comparison under periodic
	// sampling. The sampling object lives only here: strict parsing
	// rejects it on every other kind (the analysis kinds run no
	// simulations to sample).
	Sampled *Sampled `json:"sampled,omitempty"`
}

// Config is a set of per-cell overrides onto sim.Config. Zero-valued
// fields are "inherit"; enums are spelled as strings so that "unset"
// and "explicitly the default" stay distinguishable.
type Config struct {
	// Workload overrides the cell's workload (grids normally inherit
	// the row workload; interference cores inherit the sweep workload).
	Workload string `json:"workload,omitempty"`
	// Mechanism is the control-flow delivery scheme (sim.Mechanisms).
	Mechanism string `json:"mechanism,omitempty"`
	// BTBEntries is the conventional BTB budget (default 2048).
	BTBEntries int `json:"btb_entries,omitempty"`
	// RegionMode is Shotgun's region-prefetch variant: vector, none,
	// entire, or 5blocks.
	RegionMode string `json:"region_mode,omitempty"`
	// FootprintBits is the footprint vector width: 8 or 32.
	FootprintBits int `json:"footprint_bits,omitempty"`
	// CBTBEntries overrides the C-BTB capacity within the budget-derived
	// Shotgun sizes (the Figure 12 sensitivity knob).
	CBTBEntries int `json:"cbtb_entries,omitempty"`
	// BPU is the direction-predictor variant: tage or clz.
	BPU string `json:"bpu,omitempty"`
	// Contexts is the multi-context front-end width (1..sim.MaxContexts;
	// 1 is the classic single-context core).
	Contexts int `json:"contexts,omitempty"`
}

// Axis is one named point of a grid axis: the label rendered in the
// table plus the config overrides the point applies.
type Axis struct {
	Name   string `json:"name"`
	Config Config `json:"config"`
}

// Grid declares a metric grid: rows are workloads (optionally crossed
// with Rows), columns are Axis points, and every cell runs the
// composed config and reports Metric.
type Grid struct {
	// Workloads lists the row workloads; absent means the full suite in
	// presentation order. An explicitly empty list is an error (a grid
	// must expand to at least one row).
	Workloads []string `json:"workloads,omitempty"`
	// Base is applied to every cell before the row/column overrides.
	Base Config `json:"base,omitempty"`
	// Rows is an optional second row axis crossed with Workloads; each
	// (workload, row) pair renders one table row.
	Rows []Axis `json:"rows,omitempty"`
	// RowsLabel is the header of the Rows axis column (required with
	// Rows).
	RowsLabel string `json:"rows_label,omitempty"`
	// Columns are the grid's column points (at least one).
	Columns []Axis `json:"columns"`
	// Metric names the reported value: ipc, speedup, stall_coverage,
	// prefetch_accuracy, data_fill_cycles, btb_mpki, or l1i_mpki.
	Metric string `json:"metric"`
	// Format is the cell format verb (%.Nf; default "%.3f").
	Format string `json:"format,omitempty"`
	// Baseline overrides the per-workload baseline config relative
	// metrics (speedup, stall_coverage) divide by; default
	// {"mechanism": "none"}. Baseline scenarios are always part of the
	// grid's scenario set, matching the compiled-in experiments'
	// declarations.
	Baseline *Config `json:"baseline,omitempty"`
	// Summary appends an aggregate row: "gmean", "mean", or "" (none).
	Summary string `json:"summary,omitempty"`
	// SummaryLabel labels the aggregate row (default "Gmean"/"Avg").
	SummaryLabel string `json:"summary_label,omitempty"`
}

// Interference declares a co-runner sweep: core 0 runs Primary, and
// for every (mix, count) point the scenario adds count copies of the
// mix's co-runner config over one shared LLC and NoC. The solo
// (single-core) reference row always leads the table.
type Interference struct {
	// Workload is the default workload of every core (default Oracle).
	Workload string `json:"workload,omitempty"`
	// Primary configures core 0 (default {"mechanism": "shotgun"}).
	Primary Config `json:"primary,omitempty"`
	// CoRunners lists the swept co-runner counts (each >= 1, strictly
	// increasing; the scenario size is count+1).
	CoRunners []int `json:"co_runners"`
	// Mixes lists the co-runner populations.
	Mixes []Mix `json:"mixes"`
	// LLCBytes overrides the scenarios' shared LLC capacity (0 derives
	// the per-core share, like sim.Scenario.LLCSizeBytes).
	LLCBytes int `json:"llc_bytes,omitempty"`
}

// Mix names one co-runner population.
type Mix struct {
	Name     string `json:"name"`
	CoRunner Config `json:"co_runner"`
}

// RegionCDF declares the Figure 3 analysis: cumulative access
// probability vs block distance from region entry, per workload.
type RegionCDF struct {
	// Workloads lists the analyzed workloads; absent means the full
	// suite.
	Workloads []string `json:"workloads,omitempty"`
	// Blocks is the analyzed trace length (default 400000).
	Blocks int `json:"blocks,omitempty"`
	// Distances are the sampled distance columns (strictly increasing,
	// within the histogram's bucket range). The overflow column (">N")
	// is always appended.
	Distances []int `json:"distances"`
	// Format is the cell format verb (default "%.2f").
	Format string `json:"format,omitempty"`
}

// BranchCoverage declares the Figure 4 analysis: dynamic-branch
// coverage of the K hottest static branches.
type BranchCoverage struct {
	// Workloads lists the analyzed workloads; absent means the full
	// suite.
	Workloads []string `json:"workloads,omitempty"`
	// Blocks is the analyzed trace length (default 400000).
	Blocks int `json:"blocks,omitempty"`
	// Points are the sampled K values (strictly increasing, positive).
	Points []int `json:"points"`
}

// Sampled declares the exact-vs-sampled comparison table: each listed
// mechanism runs the workload both exactly and under the periodic
// sampling schedule, and the table reports the sampled IPC estimate
// (mean ± 95% CI) next to the exact IPC with the measured relative
// error.
type Sampled struct {
	// Workload is the compared workload (default the compiled-in
	// experiment's).
	Workload string `json:"workload,omitempty"`
	// Mechanisms lists the compared mechanisms; absent means the
	// compiled-in experiment's pair (none, shotgun).
	Mechanisms []string `json:"mechanisms,omitempty"`
	// Sampling is the periodic-sampling schedule (required).
	Sampling Sampling `json:"sampling"`
}

// Sampling is the spec spelling of sim.Sampling: the periodic-sampling
// schedule in trace blocks plus the statistical stopping rule.
type Sampling struct {
	// Period is the sampling period P in trace blocks (required).
	Period uint64 `json:"period"`
	// Warmup is the detailed warm-up W before each measured unit.
	Warmup uint64 `json:"warmup,omitempty"`
	// Unit is the measured detailed unit length U (required).
	Unit uint64 `json:"unit"`
	// FuncWarm bounds the functional-warming window; 0 warms the whole
	// P−W−U gap (pure SMARTS).
	FuncWarm uint64 `json:"func_warm,omitempty"`
	// Units is the baseline measured-unit count.
	Units int `json:"units,omitempty"`
	// TargetCI, when non-zero, escalates units until the relative 95%
	// half-width reaches it (SMARTS targets 0.03).
	TargetCI float64 `json:"target_ci,omitempty"`
	// MaxUnits caps adaptive escalation.
	MaxUnits int `json:"max_units,omitempty"`
}

// Sim converts to the simulator's sampling block.
func (s Sampling) Sim() sim.Sampling {
	return sim.Sampling{
		PeriodBlocks:   s.Period,
		WarmupBlocks:   s.Warmup,
		UnitBlocks:     s.Unit,
		FuncWarmBlocks: s.FuncWarm,
		Units:          s.Units,
		TargetCI:       s.TargetCI,
		MaxUnits:       s.MaxUnits,
	}
}

// Parse decodes and validates a spec. Decoding is strict: unknown
// fields anywhere in the document are errors, so a typoed knob can
// never silently run at its default.
func Parse(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("spec: decode: %w", err)
	}
	// Trailing garbage after the document is as suspect as an unknown
	// field.
	if dec.More() {
		return Spec{}, fmt.Errorf("spec: trailing data after the spec document")
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// ParseFile is Parse over a file's contents.
func ParseFile(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("spec: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// formatRE is the set of cell format verbs a spec may use: a plain
// fixed-precision float. Anything fancier belongs in a new table kind,
// not in a format string.
var formatRE = regexp.MustCompile(`^%\.\d{1,2}f$`)

// Validate checks everything knowable without expansion: structure,
// enum spellings, axis uniqueness, bounds. Expansion-dependent checks
// (the scenario cap, per-cell config validity) happen in Compile.
func (s Spec) Validate() error {
	if s.Version != Version {
		return fmt.Errorf("spec: unsupported version %d (this build reads version %d)", s.Version, Version)
	}
	if s.Name == "" {
		return fmt.Errorf("spec: name is required")
	}
	if s.Scale != nil {
		if s.Scale.WarmupInstr == 0 || s.Scale.MeasureInstr == 0 {
			return fmt.Errorf("spec: scale requires positive warmup_instr and measure_instr")
		}
		if s.Scale.Samples <= 0 {
			return fmt.Errorf("spec: scale.samples must be positive (got %d)", s.Scale.Samples)
		}
	}
	if len(s.Tables) == 0 {
		return fmt.Errorf("spec: at least one table is required")
	}
	if len(s.Tables) > MaxTables {
		return fmt.Errorf("spec: %d tables exceeds the %d cap", len(s.Tables), MaxTables)
	}
	seen := make(map[string]bool, len(s.Tables))
	for i, t := range s.Tables {
		if t.ID == "" {
			return fmt.Errorf("spec: table %d: id is required", i)
		}
		if seen[t.ID] {
			return fmt.Errorf("spec: duplicate table id %q", t.ID)
		}
		seen[t.ID] = true
		if t.Title == "" {
			return fmt.Errorf("spec: table %q: title is required", t.ID)
		}
		if err := t.validateKind(); err != nil {
			return fmt.Errorf("spec: table %q: %w", t.ID, err)
		}
	}
	return nil
}

// validateKind checks that exactly one kind is declared and that the
// declared kind is internally consistent.
func (t Table) validateKind() error {
	kinds := 0
	if t.Grid != nil {
		kinds++
	}
	if t.Interference != nil {
		kinds++
	}
	if t.RegionCDF != nil {
		kinds++
	}
	if t.BranchCoverage != nil {
		kinds++
	}
	if t.Sampled != nil {
		kinds++
	}
	if kinds != 1 {
		return fmt.Errorf("exactly one of grid, interference, region_cdf, branch_coverage, sampled must be set (got %d)", kinds)
	}
	switch {
	case t.Grid != nil:
		return t.Grid.validate()
	case t.Interference != nil:
		return t.Interference.validate()
	case t.RegionCDF != nil:
		return t.RegionCDF.validate()
	case t.Sampled != nil:
		return t.Sampled.validate()
	default:
		return t.BranchCoverage.validate()
	}
}

// validateWorkloads applies the shared row-workload rules: nil means
// "the full suite", an explicitly empty list is rejected (a zero-row
// sweep is always a mistake), names must be unique and known.
func validateWorkloads(wls []string) error {
	if wls == nil {
		return nil
	}
	if len(wls) == 0 {
		return fmt.Errorf("workloads must not be empty (omit the field for the full suite)")
	}
	seen := make(map[string]bool, len(wls))
	for _, wl := range wls {
		if seen[wl] {
			return fmt.Errorf("duplicate workload %q", wl)
		}
		seen[wl] = true
		if _, err := workload.Get(wl); err != nil {
			return err
		}
	}
	return nil
}

// validateBlocks applies the shared analysis-length rules: zero means
// the default, negatives are nonsense, and the cap bounds the CPU one
// spec-driven analysis may demand.
func validateBlocks(n int) error {
	if n < 0 {
		return fmt.Errorf("blocks must be non-negative (got %d)", n)
	}
	if n > MaxAnalysisBlocks {
		return fmt.Errorf("blocks %d exceeds the %d cap", n, MaxAnalysisBlocks)
	}
	return nil
}

// validateAxis applies the shared axis rules: non-empty, unique,
// non-empty names, valid override spellings.
func validateAxis(what string, axis []Axis) error {
	seen := make(map[string]bool, len(axis))
	for i, a := range axis {
		if a.Name == "" {
			return fmt.Errorf("%s %d: name is required", what, i)
		}
		if seen[a.Name] {
			return fmt.Errorf("duplicate %s %q", what, a.Name)
		}
		seen[a.Name] = true
		if err := a.Config.validate(); err != nil {
			return fmt.Errorf("%s %q: %w", what, a.Name, err)
		}
	}
	return nil
}

func (g *Grid) validate() error {
	if err := validateWorkloads(g.Workloads); err != nil {
		return err
	}
	if len(g.Columns) == 0 {
		return fmt.Errorf("grid needs at least one column")
	}
	if err := validateAxis("column", g.Columns); err != nil {
		return err
	}
	if err := validateAxis("row", g.Rows); err != nil {
		return err
	}
	if len(g.Rows) > 0 && g.RowsLabel == "" {
		return fmt.Errorf("rows_label is required with a rows axis")
	}
	if len(g.Rows) == 0 && g.RowsLabel != "" {
		return fmt.Errorf("rows_label without a rows axis")
	}
	if err := g.Base.validate(); err != nil {
		return fmt.Errorf("base: %w", err)
	}
	if g.Baseline != nil {
		if err := g.Baseline.validate(); err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
	}
	if _, ok := metrics[g.Metric]; !ok {
		return fmt.Errorf("unknown metric %q (have %v)", g.Metric, metricNames())
	}
	if g.Format != "" && !formatRE.MatchString(g.Format) {
		return fmt.Errorf("format %q is not a fixed-precision float verb (%%.Nf)", g.Format)
	}
	switch g.Summary {
	case "", "gmean", "mean":
	default:
		return fmt.Errorf("unknown summary %q (gmean, mean, or omit)", g.Summary)
	}
	if g.Summary == "" && g.SummaryLabel != "" {
		return fmt.Errorf("summary_label without a summary")
	}
	return nil
}

func (iv *Interference) validate() error {
	if iv.Workload != "" {
		if _, err := workload.Get(iv.Workload); err != nil {
			return err
		}
	}
	if err := iv.Primary.validate(); err != nil {
		return fmt.Errorf("primary: %w", err)
	}
	if len(iv.CoRunners) == 0 {
		return fmt.Errorf("co_runners must not be empty")
	}
	prev := 0
	for _, n := range iv.CoRunners {
		if n < 1 {
			return fmt.Errorf("co-runner count %d must be at least 1 (the solo row is implicit)", n)
		}
		if n <= prev {
			return fmt.Errorf("co_runners must be strictly increasing (got %d after %d)", n, prev)
		}
		prev = n
		if 1+n > sim.MaxCores {
			return fmt.Errorf("co-runner count %d needs %d cores; the mesh supports %d", n, 1+n, sim.MaxCores)
		}
	}
	if len(iv.Mixes) == 0 {
		return fmt.Errorf("mixes must not be empty")
	}
	seen := make(map[string]bool, len(iv.Mixes))
	for i, m := range iv.Mixes {
		if m.Name == "" {
			return fmt.Errorf("mix %d: name is required", i)
		}
		if seen[m.Name] {
			return fmt.Errorf("duplicate mix %q", m.Name)
		}
		seen[m.Name] = true
		if err := m.CoRunner.validate(); err != nil {
			return fmt.Errorf("mix %q: %w", m.Name, err)
		}
	}
	if iv.LLCBytes < 0 {
		return fmt.Errorf("llc_bytes must be non-negative (got %d)", iv.LLCBytes)
	}
	return nil
}

func (rc *RegionCDF) validate() error {
	if err := validateWorkloads(rc.Workloads); err != nil {
		return err
	}
	if err := validateBlocks(rc.Blocks); err != nil {
		return err
	}
	if len(rc.Distances) == 0 {
		return fmt.Errorf("distances must not be empty")
	}
	prev := -1
	for _, d := range rc.Distances {
		if d <= prev {
			return fmt.Errorf("distances must be strictly increasing (got %d after %d)", d, prev)
		}
		prev = d
		if d < 0 || d > workload.RegionDistBuckets-2 {
			return fmt.Errorf("distance %d out of range [0, %d]", d, workload.RegionDistBuckets-2)
		}
	}
	if rc.Format != "" && !formatRE.MatchString(rc.Format) {
		return fmt.Errorf("format %q is not a fixed-precision float verb (%%.Nf)", rc.Format)
	}
	return nil
}

func (bc *BranchCoverage) validate() error {
	if err := validateWorkloads(bc.Workloads); err != nil {
		return err
	}
	if err := validateBlocks(bc.Blocks); err != nil {
		return err
	}
	if len(bc.Points) == 0 {
		return fmt.Errorf("points must not be empty")
	}
	prev := 0
	for _, k := range bc.Points {
		if k <= prev {
			return fmt.Errorf("points must be positive and strictly increasing (got %d after %d)", k, prev)
		}
		prev = k
	}
	return nil
}

func (sd *Sampled) validate() error {
	if sd.Workload != "" {
		if _, err := workload.Get(sd.Workload); err != nil {
			return err
		}
	}
	if sd.Mechanisms != nil && len(sd.Mechanisms) == 0 {
		return fmt.Errorf("mechanisms must not be empty (omit the field for the default pair)")
	}
	seen := make(map[string]bool, len(sd.Mechanisms))
	for _, m := range sd.Mechanisms {
		if seen[m] {
			return fmt.Errorf("duplicate mechanism %q", m)
		}
		seen[m] = true
		if _, err := parseMechanism(m); err != nil {
			return err
		}
	}
	// The simulator's own validation carries the DoS bounds (period and
	// unit-count caps) sampling parameters need when they arrive from
	// disk or HTTP.
	if err := sd.Sampling.Sim().Validate(); err != nil {
		return fmt.Errorf("sampling: %w", err)
	}
	return nil
}

// validate checks the override spellings a Config may carry. The
// composed per-cell config is additionally validated by sim during
// compilation; this catches spec-level spelling mistakes with
// spec-level error messages.
func (c Config) validate() error {
	if c.Workload != "" {
		if _, err := workload.Get(c.Workload); err != nil {
			return err
		}
	}
	if c.Mechanism != "" {
		if _, err := parseMechanism(c.Mechanism); err != nil {
			return err
		}
	}
	if c.RegionMode != "" {
		if _, err := parseRegionMode(c.RegionMode); err != nil {
			return err
		}
	}
	switch c.FootprintBits {
	case 0, 8, 32:
	default:
		return fmt.Errorf("footprint_bits must be 8 or 32 (got %d)", c.FootprintBits)
	}
	if c.BTBEntries < 0 {
		return fmt.Errorf("btb_entries must be non-negative (got %d)", c.BTBEntries)
	}
	if c.CBTBEntries < 0 {
		return fmt.Errorf("cbtb_entries must be non-negative (got %d)", c.CBTBEntries)
	}
	if c.BPU != "" {
		if _, err := sim.ParseBPU(c.BPU); err != nil {
			return err
		}
	}
	if c.Contexts < 0 || c.Contexts > sim.MaxContexts {
		return fmt.Errorf("contexts must be in [0, %d] (got %d)", sim.MaxContexts, c.Contexts)
	}
	return nil
}
