package spec

import (
	"fmt"
	"sort"

	"shotgun/internal/btb"
	"shotgun/internal/footprint"
	"shotgun/internal/harness"
	"shotgun/internal/prefetch"
	"shotgun/internal/sim"
	"shotgun/internal/stats"
	"shotgun/internal/workload"
)

// parseMechanism maps a spec spelling to the sim enum.
func parseMechanism(name string) (sim.Mechanism, error) {
	for _, m := range sim.Mechanisms() {
		if string(m) == name {
			return m, nil
		}
	}
	return "", fmt.Errorf("unknown mechanism %q (have %v)", name, sim.Mechanisms())
}

// parseRegionMode maps a spec spelling to the prefetch enum (the same
// vocabulary shotgun-sim's -region flag uses).
func parseRegionMode(name string) (prefetch.RegionMode, error) {
	switch name {
	case "vector":
		return prefetch.RegionVector, nil
	case "none":
		return prefetch.RegionNone, nil
	case "entire":
		return prefetch.RegionEntire, nil
	case "5blocks":
		return prefetch.RegionFiveBlocks, nil
	}
	return 0, fmt.Errorf("unknown region mode %q (vector, none, entire, 5blocks)", name)
}

// metric computes one reported value from a cell's result (and, for
// relative metrics, the workload baseline's).
type metric struct {
	// value reads the metric; base is only meaningful when relative.
	value func(res, base sim.Result) float64
	// relative metrics need the no-prefetch baseline result.
	relative bool
}

// metrics is the reportable-value vocabulary.
var metrics = map[string]metric{
	"ipc":               {value: func(res, _ sim.Result) float64 { return res.IPC() }},
	"speedup":           {value: func(res, base sim.Result) float64 { return res.Speedup(base) }, relative: true},
	"stall_coverage":    {value: func(res, base sim.Result) float64 { return res.StallCoverage(base) }, relative: true},
	"prefetch_accuracy": {value: func(res, _ sim.Result) float64 { return res.PrefetchAccuracy }},
	"data_fill_cycles":  {value: func(res, _ sim.Result) float64 { return res.AvgDataFillCycles() }},
	"btb_mpki":          {value: func(res, _ sim.Result) float64 { return res.BTBMPKI() }},
	"l1i_mpki":          {value: func(res, _ sim.Result) float64 { return res.L1IMPKI() }},
}

// metricNames lists the vocabulary deterministically for error text.
func metricNames() []string {
	names := make([]string, 0, len(metrics))
	for name := range metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// apply composes one override layer's scalar fields onto a config.
// Zero-valued spec fields leave the config untouched, so layers stack:
// base, then row, then column. CBTBEntries is NOT materialized here —
// it depends on the final BTB budget, which a later layer may still
// override, so compose resolves it only after every layer has applied.
func (c Config) apply(cfg sim.Config) (sim.Config, error) {
	if c.Workload != "" {
		cfg.Workload = c.Workload
	}
	if c.Mechanism != "" {
		m, err := parseMechanism(c.Mechanism)
		if err != nil {
			return cfg, err
		}
		cfg.Mechanism = m
	}
	if c.BTBEntries != 0 {
		cfg.BTBEntries = c.BTBEntries
	}
	if c.RegionMode != "" {
		mode, err := parseRegionMode(c.RegionMode)
		if err != nil {
			return cfg, err
		}
		cfg.RegionMode = mode
	}
	switch c.FootprintBits {
	case 0:
	case 8:
		cfg.Layout = footprint.Layout8
	case 32:
		cfg.Layout = footprint.Layout32
	default:
		return cfg, fmt.Errorf("footprint_bits must be 8 or 32 (got %d)", c.FootprintBits)
	}
	if c.BPU != "" {
		b, err := sim.ParseBPU(c.BPU)
		if err != nil {
			return cfg, err
		}
		cfg.BPU = b
	}
	if c.Contexts != 0 {
		cfg.Contexts = c.Contexts
	}
	return cfg, nil
}

// materializeCBTB resolves the Figure 12 knob against the composed
// config's final budget: derive the Shotgun sizes from it, then pin
// the C-BTB capacity. A zero cbtb leaves the config untouched.
func materializeCBTB(cfg sim.Config, cbtb int) (sim.Config, error) {
	if cbtb == 0 {
		return cfg, nil
	}
	budget := cfg.BTBEntries
	if budget == 0 {
		budget = 2048
	}
	sizes, err := btb.ShotgunSizesForBudget(budget)
	if err != nil {
		return cfg, err
	}
	sizes.CEntries = cbtb
	cfg.ShotgunSizes = &sizes
	return cfg, nil
}

// compose stacks override layers onto a workload's zero config and
// validates the result, so every compile-time error names its cell.
// cbtb_entries is resolved last (latest layer wins), against the BTB
// budget the full stack settled on — a column's btb_entries therefore
// reshapes a base layer's cbtb_entries correctly, whatever the order.
func compose(wl string, layers ...Config) (sim.Config, error) {
	cfg := sim.Config{Workload: wl}
	cbtb := 0
	for _, l := range layers {
		var err error
		if cfg, err = l.apply(cfg); err != nil {
			return cfg, err
		}
		if l.CBTBEntries != 0 {
			cbtb = l.CBTBEntries
		}
	}
	cfg, err := materializeCBTB(cfg, cbtb)
	if err != nil {
		return cfg, err
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// workloadsOrAll resolves the shared "absent means the full suite"
// default.
func workloadsOrAll(wls []string) []string {
	if wls == nil {
		return workload.Names()
	}
	return wls
}

// blocksOrDefault resolves an analysis's trace length; the default is
// the compiled-in experiments' constant, so a retune there cannot
// silently diverge the spec catalog.
func blocksOrDefault(n int) int {
	if n == 0 {
		return harness.Figure3AnalysisBlocks
	}
	return n
}

// compiledTable is one expanded output table: its scenario work list
// and its renderer.
type compiledTable struct {
	id   string
	desc string
	// scenarios is nil for pure trace analyses.
	scenarios []sim.Scenario
	// analysisCost is a trace analysis's render work (blocks ×
	// workloads); zero for simulation tables. Compile caps the spec-wide
	// sum, the analyses' counterpart of the scenario cap.
	analysisCost int
	render       func(*harness.Runner) *stats.Table
}

// Compiled is the executable form of a spec: per-table scenario sets
// and renderers, adaptable to harness.Experiment values.
type Compiled struct {
	// Spec is the validated source document.
	Spec   Spec
	tables []compiledTable
}

// Compile validates and expands a spec: every cell config is composed
// and sim-validated, every scenario is materialized in deterministic
// order, and the total expansion is capped at MaxScenarios. The
// returned Compiled is immutable and safe for concurrent renders.
func (s Spec) Compile() (*Compiled, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	c := &Compiled{Spec: s}
	total, analysisCost := 0, 0
	for _, t := range s.Tables {
		ct, err := compileTable(t)
		if err != nil {
			return nil, fmt.Errorf("spec %q: table %q: %w", s.Name, t.ID, err)
		}
		ct.desc = s.Desc
		if ct.desc == "" {
			ct.desc = t.Title
		}
		total += len(ct.scenarios)
		if total > MaxScenarios {
			return nil, fmt.Errorf("spec %q: expands to more than %d scenarios (table %q pushed it past the cap)",
				s.Name, MaxScenarios, t.ID)
		}
		// The analyses' cost cap aggregates across tables for the same
		// reason the scenario cap does: per-table bounds alone multiply
		// by table count.
		analysisCost += ct.analysisCost
		if analysisCost > MaxAnalysisCost {
			return nil, fmt.Errorf("spec %q: analysis tables walk more than %d total blocks (table %q pushed it past the cap)",
				s.Name, MaxAnalysisCost, t.ID)
		}
		c.tables = append(c.tables, ct)
	}
	return c, nil
}

// Compile parses and compiles a raw spec document.
func Compile(data []byte) (*Compiled, error) {
	s, err := Parse(data)
	if err != nil {
		return nil, err
	}
	return s.Compile()
}

// CompileFile parses and compiles a spec file.
func CompileFile(path string) (*Compiled, error) {
	s, err := ParseFile(path)
	if err != nil {
		return nil, err
	}
	c, err := s.Compile()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// Scenarios returns the union of every table's scenario set, in
// deterministic expansion order (duplicates included — consumers
// deduplicate by content key, exactly like compiled-in experiments).
func (c *Compiled) Scenarios() []sim.Scenario {
	var out []sim.Scenario
	for _, t := range c.tables {
		out = append(out, t.scenarios...)
	}
	return out
}

// Experiments adapts every table to a harness.Experiment, in spec
// order. The adapters carry the same contract as compiled-in
// experiments: Scenarios declares the full work list (nil for pure
// analyses) and Table assembles from the runner's memoized results.
func (c *Compiled) Experiments() []harness.Experiment {
	out := make([]harness.Experiment, 0, len(c.tables))
	for _, t := range c.tables {
		t := t
		e := harness.Experiment{
			ID:    t.id,
			Desc:  t.desc,
			Table: func(r *harness.Runner) *stats.Table { return t.render(r) },
		}
		if t.scenarios != nil {
			scs := t.scenarios
			e.Scenarios = func() []sim.Scenario { return scs }
		}
		out = append(out, e)
	}
	return out
}

// compileTable expands one table declaration.
func compileTable(t Table) (compiledTable, error) {
	switch {
	case t.Grid != nil:
		return compileGrid(t)
	case t.Interference != nil:
		return compileInterference(t)
	case t.RegionCDF != nil:
		return compileRegionCDF(t)
	case t.Sampled != nil:
		return compileSampled(t)
	default:
		return compileBranchCoverage(t)
	}
}
