package spec

// The per-kind compilers: each expands one table declaration into its
// scenario work list (composed, sim-validated configs in deterministic
// order) and a renderer that assembles the table from a runner's
// memoized results. Renderers follow the compiled-in experiments'
// assembly shape cell for cell — the golden parity test holds them to
// byte identity.

import (
	"fmt"

	"shotgun/internal/harness"
	"shotgun/internal/sim"
	"shotgun/internal/stats"
	"shotgun/internal/workload"
)

// compileGrid expands a metric grid. Scenario order per row workload:
// the baseline first, then every (row × column) cell — mirroring the
// compiled-in experiments' config declarations, so the two expansions
// produce identical content-key sets.
func compileGrid(t Table) (compiledTable, error) {
	g := t.Grid
	wls := workloadsOrAll(g.Workloads)
	met := metrics[g.Metric]
	format := g.Format
	if format == "" {
		format = "%.3f"
	}
	baseline := Config{Mechanism: "none"}
	if g.Baseline != nil {
		baseline = *g.Baseline
	}
	// An absent rows axis is one implicit all-defaults row.
	rows := g.Rows
	implicitRows := len(rows) == 0
	if implicitRows {
		rows = []Axis{{}}
	}

	// Enforce the cap BEFORE expanding: specs arrive from disk and
	// HTTP, and a crafted axis product must fail fast instead of
	// allocating its own fan-out.
	if cells := len(wls) * len(rows) * len(g.Columns); cells+len(wls) > MaxScenarios {
		return compiledTable{}, fmt.Errorf("grid expands to %d scenarios, above the %d cap", cells+len(wls), MaxScenarios)
	}

	// Expand every cell config (and each distinct cell workload's
	// baseline) up front, so compile errors name their cell and renders
	// cannot fail.
	baselines := make(map[string]sim.Config)
	baselineFor := func(wl string) (sim.Config, error) {
		if cfg, ok := baselines[wl]; ok {
			return cfg, nil
		}
		cfg, err := compose(wl, baseline)
		if err != nil {
			return cfg, fmt.Errorf("baseline for %q: %w", wl, err)
		}
		baselines[wl] = cfg
		return cfg, nil
	}
	cells := make([][][]sim.Config, len(wls))
	var scenarios []sim.Scenario
	for wi, wl := range wls {
		base, err := baselineFor(wl)
		if err != nil {
			return compiledTable{}, err
		}
		scenarios = append(scenarios, sim.SingleCore(base))
		cells[wi] = make([][]sim.Config, len(rows))
		for ri, row := range rows {
			cells[wi][ri] = make([]sim.Config, len(g.Columns))
			for ci, col := range g.Columns {
				cfg, err := compose(wl, g.Base, row.Config, col.Config)
				if err != nil {
					return compiledTable{}, fmt.Errorf("row %q column %q: %w", rowName(implicitRows, wl, row), col.Name, err)
				}
				cells[wi][ri][ci] = cfg
				if met.relative && cfg.Workload != wl {
					// A cell that overrides its workload needs that
					// workload's baseline too.
					cellBase, err := baselineFor(cfg.Workload)
					if err != nil {
						return compiledTable{}, err
					}
					scenarios = append(scenarios, sim.SingleCore(cellBase))
				}
				scenarios = append(scenarios, sim.SingleCore(cfg))
				// The pre-check above cannot count per-cell extra
				// baselines (workload overrides); re-check as the list
				// grows so allocation never outruns the cap.
				if len(scenarios) > MaxScenarios {
					return compiledTable{}, fmt.Errorf("grid expands to more than %d scenarios", MaxScenarios)
				}
			}
		}
	}

	headers := []string{"Workload"}
	if !implicitRows {
		headers = append(headers, g.RowsLabel)
	}
	for _, col := range g.Columns {
		headers = append(headers, col.Name)
	}

	render := func(r *harness.Runner) *stats.Table {
		r.PrefetchScenarios(scenarios)
		tab := stats.NewTable(t.Title, headers...)
		agg := make([][]float64, len(g.Columns))
		for wi, wl := range wls {
			for ri, row := range rows {
				vals := make([]float64, len(g.Columns))
				for ci := range g.Columns {
					cfg := cells[wi][ri][ci]
					var base sim.Result
					if met.relative {
						base = r.Run(baselines[cfg.Workload])
					}
					v := met.value(r.Run(cfg), base)
					vals[ci] = v
					agg[ci] = append(agg[ci], v)
				}
				if implicitRows {
					tab.AddF(wl, format, vals...)
				} else {
					rowCells := []string{wl, row.Name}
					for _, v := range vals {
						rowCells = append(rowCells, fmt.Sprintf(format, v))
					}
					tab.AddRow(rowCells...)
				}
			}
		}
		if g.Summary != "" {
			label := g.SummaryLabel
			if label == "" {
				label = "Avg"
				if g.Summary == "gmean" {
					label = "Gmean"
				}
			}
			sums := make([]float64, len(g.Columns))
			for ci, vs := range agg {
				if g.Summary == "gmean" {
					sums[ci] = stats.GeoMean(vs)
				} else {
					sums[ci] = stats.Mean(vs)
				}
			}
			if implicitRows {
				tab.AddF(label, format, sums...)
			} else {
				// Explicit-row grids carry the extra rows-label column;
				// pad it so the summary cells stay column-aligned.
				sumCells := []string{label, ""}
				for _, v := range sums {
					sumCells = append(sumCells, fmt.Sprintf(format, v))
				}
				tab.AddRow(sumCells...)
			}
		}
		return tab
	}
	return compiledTable{id: t.ID, scenarios: scenarios, render: render}, nil
}

// rowName labels a grid cell's row for error messages.
func rowName(implicit bool, wl string, row Axis) string {
	if implicit {
		return wl
	}
	return wl + "/" + row.Name
}

// compileInterference expands a co-runner sweep. Scenario order: the
// solo reference first, then each (mix, count) point — matching
// harness.InterferenceScenarios.
func compileInterference(t Table) (compiledTable, error) {
	iv := t.Interference
	wl := iv.Workload
	if wl == "" {
		wl = harness.InterferenceWorkload
	}
	coreConfig := func(what string, c Config) (sim.Config, error) {
		cfg := sim.Config{Workload: wl}
		cfg, err := c.apply(cfg)
		if err != nil {
			return cfg, fmt.Errorf("%s: %w", what, err)
		}
		if cfg, err = materializeCBTB(cfg, c.CBTBEntries); err != nil {
			return cfg, fmt.Errorf("%s: %w", what, err)
		}
		if cfg.Mechanism == "" {
			cfg.Mechanism = sim.Shotgun
		}
		if err := cfg.Validate(); err != nil {
			return cfg, fmt.Errorf("%s: %w", what, err)
		}
		return cfg, nil
	}
	primary, err := coreConfig("primary", iv.Primary)
	if err != nil {
		return compiledTable{}, err
	}
	// Enforce the cap BEFORE materializing the fan-out, like the grid
	// kind: specs arrive over HTTP, and each point below copies up to
	// MaxCores configs, so the allocation must not precede the check.
	if points := 1 + len(iv.Mixes)*len(iv.CoRunners); points > MaxScenarios {
		return compiledTable{}, fmt.Errorf("interference sweep expands to %d scenarios, above the %d cap",
			points, MaxScenarios)
	}
	type point struct {
		mix       string
		coRunners int
		sc        sim.Scenario
	}
	// The solo reference carries the same LLC override as the swept
	// points: anchoring contended rows against a solo row with a
	// different cache size would misstate every delta the table shows.
	solo := sim.Scenario{Cores: []sim.Config{primary}, LLCSizeBytes: iv.LLCBytes}
	if err := solo.Validate(); err != nil {
		return compiledTable{}, fmt.Errorf("solo reference: %w", err)
	}
	scenarios := []sim.Scenario{solo}
	var points []point
	for _, mix := range iv.Mixes {
		co, err := coreConfig(fmt.Sprintf("mix %q", mix.Name), mix.CoRunner)
		if err != nil {
			return compiledTable{}, err
		}
		for _, n := range iv.CoRunners {
			cores := []sim.Config{primary}
			for i := 0; i < n; i++ {
				cores = append(cores, co)
			}
			sc := sim.Scenario{Cores: cores, LLCSizeBytes: iv.LLCBytes}
			if err := sc.Validate(); err != nil {
				return compiledTable{}, fmt.Errorf("mix %q with %d co-runners: %w", mix.Name, n, err)
			}
			scenarios = append(scenarios, sc)
			points = append(points, point{mix: mix.Name, coRunners: n, sc: sc})
		}
	}

	render := func(r *harness.Runner) *stats.Table {
		r.PrefetchScenarios(scenarios)
		tab := stats.NewTable(t.Title, "Mix", "Co-runners", "IPC", "L1-D fill cycles")
		add := func(mix string, n int, res sim.Result) {
			tab.AddRow(mix, fmt.Sprintf("%d", n),
				fmt.Sprintf("%.3f", res.IPC()), fmt.Sprintf("%.1f", res.AvgDataFillCycles()))
		}
		add("solo", 0, r.RunScenario(solo).Cores[0])
		for _, p := range points {
			add(p.mix, p.coRunners, r.RunScenario(p.sc).Cores[0])
		}
		return tab
	}
	return compiledTable{id: t.ID, scenarios: scenarios, render: render}, nil
}

// compileRegionCDF expands the Figure 3 analysis (no simulations).
func compileRegionCDF(t Table) (compiledTable, error) {
	rc := t.RegionCDF
	wls := workloadsOrAll(rc.Workloads)
	blocks := blocksOrDefault(rc.Blocks)
	format := rc.Format
	if format == "" {
		format = "%.2f"
	}
	headers := []string{"Workload"}
	for _, d := range rc.Distances {
		headers = append(headers, fmt.Sprintf("d=%d", d))
	}
	headers = append(headers, fmt.Sprintf(">%d", workload.RegionDistBuckets-2))

	render := func(*harness.Runner) *stats.Table {
		tab := stats.NewTable(t.Title, headers...)
		for _, wl := range wls {
			prof := workload.MustGet(wl)
			cdf := workload.Analyze(prof.NewWalker(), blocks).RegionCDF()
			cells := make([]float64, 0, len(rc.Distances)+1)
			for _, d := range rc.Distances {
				cells = append(cells, cdf[d])
			}
			cells = append(cells, cdf[workload.RegionDistBuckets-1])
			tab.AddF(wl, format, cells...)
		}
		return tab
	}
	return compiledTable{id: t.ID, analysisCost: blocks * len(wls), render: render}, nil
}

// compileSampled expands the exact-vs-sampled comparison. The config
// expansion and the renderer are the harness's own (SampledConfigsFor /
// SampledTableFor), so a spec-declared comparison is cell-for-cell the
// compiled-in experiment — the same parity contract every other kind
// honours by mirroring the assembly shape.
func compileSampled(t Table) (compiledTable, error) {
	sd := t.Sampled
	wl := sd.Workload
	if wl == "" {
		wl = harness.SampledWorkload
	}
	var mechs []sim.Mechanism
	if sd.Mechanisms == nil {
		mechs = harness.SampledMechs()
	} else {
		for _, name := range sd.Mechanisms {
			m, err := parseMechanism(name)
			if err != nil {
				return compiledTable{}, err
			}
			mechs = append(mechs, m)
		}
	}
	schedule := sd.Sampling.Sim()
	cfgs := harness.SampledConfigsFor(wl, mechs, schedule)
	var scenarios []sim.Scenario
	for _, cfg := range cfgs {
		sc := sim.SingleCore(cfg)
		if err := sc.Validate(); err != nil {
			return compiledTable{}, err
		}
		scenarios = append(scenarios, sc)
	}
	render := func(r *harness.Runner) *stats.Table {
		return harness.SampledTableFor(r, t.Title, wl, mechs, schedule)
	}
	return compiledTable{id: t.ID, scenarios: scenarios, render: render}, nil
}

// compileBranchCoverage expands the Figure 4 analysis (no simulations).
func compileBranchCoverage(t Table) (compiledTable, error) {
	bc := t.BranchCoverage
	wls := workloadsOrAll(bc.Workloads)
	blocks := blocksOrDefault(bc.Blocks)

	render := func(*harness.Runner) *stats.Table {
		tab := stats.NewTable(t.Title, "Workload", "K", "all", "unconditional")
		for _, wl := range wls {
			prof := workload.MustGet(wl)
			a := workload.Analyze(prof.NewWalker(), blocks)
			for _, k := range bc.Points {
				tab.AddRow(wl, fmt.Sprintf("%d", k),
					fmt.Sprintf("%.3f", a.CoverageAt(k, nil)),
					fmt.Sprintf("%.3f", a.CoverageAt(k, workload.UncondFilter)))
			}
		}
		return tab
	}
	return compiledTable{id: t.ID, analysisCost: blocks * len(wls), render: render}, nil
}
