package spec

import (
	"fmt"
	"strings"
	"testing"

	"shotgun/internal/harness"
	"shotgun/internal/sim"
)

// goodSpec is a small valid document exercising every clause a grid
// can carry.
const goodSpec = `{
  "version": 1,
  "name": "good",
  "desc": "a valid sweep",
  "tables": [
    {
      "id": "g",
      "title": "grid",
      "grid": {
        "workloads": ["Oracle", "DB2"],
        "base": {"mechanism": "shotgun"},
        "columns": [
          {"name": "8-bit", "config": {"region_mode": "vector", "footprint_bits": 8}},
          {"name": "entire", "config": {"region_mode": "entire", "footprint_bits": 32}}
        ],
        "metric": "speedup",
        "summary": "gmean"
      }
    },
    {
      "id": "i",
      "title": "interference",
      "interference": {
        "co_runners": [1, 3],
        "mixes": [{"name": "polite", "co_runner": {"mechanism": "shotgun"}}]
      }
    },
    {
      "id": "cdf",
      "title": "cdf",
      "region_cdf": {"workloads": ["Oracle"], "distances": [0, 2, 4]}
    }
  ]
}`

func TestParseAndCompileGoodSpec(t *testing.T) {
	c, err := Compile([]byte(goodSpec))
	if err != nil {
		t.Fatal(err)
	}
	exps := c.Experiments()
	if len(exps) != 3 {
		t.Fatalf("experiments = %d, want 3", len(exps))
	}
	for i, id := range []string{"g", "i", "cdf"} {
		if exps[i].ID != id {
			t.Fatalf("experiment %d id = %q, want %q", i, exps[i].ID, id)
		}
	}
	// Grid: 2 workloads × (1 baseline + 2 cells) = 6 scenarios;
	// interference: solo + 2 counts × 1 mix = 3. The analysis adds none.
	if got := len(c.Scenarios()); got != 9 {
		t.Fatalf("scenarios = %d, want 9", got)
	}
	if exps[2].Scenarios != nil {
		t.Fatal("analysis table declared scenarios")
	}
	// Expansion is deterministic: two compiles agree scenario for
	// scenario.
	c2, err := Compile([]byte(goodSpec))
	if err != nil {
		t.Fatal(err)
	}
	a, b := c.Scenarios(), c2.Scenarios()
	for i := range a {
		if string(a[i].CanonicalBytes()) != string(b[i].CanonicalBytes()) {
			t.Fatalf("scenario %d differs across compiles", i)
		}
	}
}

// TestParseRejections drives every structured failure path through the
// public Parse/Compile surface and checks the error names the problem.
func TestParseRejections(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"malformed json", `{"version":`, "decode"},
		{"trailing data", `{"version":1,"name":"x","tables":[{"id":"t","title":"t","region_cdf":{"distances":[0]}}]} {}`, "trailing"},
		{"unknown top-level field", `{"version":1,"name":"x","bogus":1,"tables":[]}`, "bogus"},
		{"unknown nested field", `{"version":1,"name":"x","tables":[{"id":"t","title":"t","grid":{"colums":[]}}]}`, "colums"},
		{"unknown config field", `{"version":1,"name":"x","tables":[{"id":"t","title":"t","grid":{
			"columns":[{"name":"c","config":{"mechansim":"none"}}],"metric":"ipc"}}]}`, "mechansim"},
		{"bad version", `{"version":7,"name":"x","tables":[]}`, "version 7"},
		{"missing name", `{"version":1,"tables":[]}`, "name"},
		{"no tables", `{"version":1,"name":"x","tables":[]}`, "at least one table"},
		{"duplicate table id", `{"version":1,"name":"x","tables":[
			{"id":"t","title":"t","region_cdf":{"distances":[0]}},
			{"id":"t","title":"t","region_cdf":{"distances":[0]}}]}`, "duplicate table id"},
		{"two kinds on one table", `{"version":1,"name":"x","tables":[{"id":"t","title":"t",
			"region_cdf":{"distances":[0]},
			"branch_coverage":{"points":[1]}}]}`, "exactly one"},
		{"no kind", `{"version":1,"name":"x","tables":[{"id":"t","title":"t"}]}`, "exactly one"},
		{"zero-sample scale", `{"version":1,"name":"x",
			"scale":{"warmup_instr":1,"measure_instr":1,"samples":0},
			"tables":[{"id":"t","title":"t","region_cdf":{"distances":[0]}}]}`, "samples"},
		{"zero-row grid", `{"version":1,"name":"x","tables":[{"id":"t","title":"t","grid":{
			"workloads":[],"columns":[{"name":"c","config":{"mechanism":"none"}}],"metric":"ipc"}}]}`, "workloads"},
		{"zero-column grid", `{"version":1,"name":"x","tables":[{"id":"t","title":"t","grid":{
			"columns":[],"metric":"ipc"}}]}`, "at least one column"},
		{"duplicate column", `{"version":1,"name":"x","tables":[{"id":"t","title":"t","grid":{
			"columns":[{"name":"c","config":{"mechanism":"none"}},{"name":"c","config":{"mechanism":"fdip"}}],
			"metric":"ipc"}}]}`, "duplicate column"},
		{"duplicate row", `{"version":1,"name":"x","tables":[{"id":"t","title":"t","grid":{
			"rows":[{"name":"r","config":{}},{"name":"r","config":{}}],"rows_label":"R",
			"columns":[{"name":"c","config":{"mechanism":"none"}}],"metric":"ipc"}}]}`, "duplicate row"},
		{"duplicate workload", `{"version":1,"name":"x","tables":[{"id":"t","title":"t","grid":{
			"workloads":["Oracle","Oracle"],
			"columns":[{"name":"c","config":{"mechanism":"none"}}],"metric":"ipc"}}]}`, "duplicate workload"},
		{"unknown workload", `{"version":1,"name":"x","tables":[{"id":"t","title":"t","grid":{
			"workloads":["NoSuch"],
			"columns":[{"name":"c","config":{"mechanism":"none"}}],"metric":"ipc"}}]}`, "NoSuch"},
		{"unknown metric", `{"version":1,"name":"x","tables":[{"id":"t","title":"t","grid":{
			"columns":[{"name":"c","config":{"mechanism":"none"}}],"metric":"speed"}}]}`, "unknown metric"},
		{"bad format verb", `{"version":1,"name":"x","tables":[{"id":"t","title":"t","grid":{
			"columns":[{"name":"c","config":{"mechanism":"none"}}],"metric":"ipc","format":"%s"}}]}`, "format"},
		{"bad summary", `{"version":1,"name":"x","tables":[{"id":"t","title":"t","grid":{
			"columns":[{"name":"c","config":{"mechanism":"none"}}],"metric":"ipc","summary":"median"}}]}`, "summary"},
		{"rows without label", `{"version":1,"name":"x","tables":[{"id":"t","title":"t","grid":{
			"rows":[{"name":"r","config":{}}],
			"columns":[{"name":"c","config":{"mechanism":"none"}}],"metric":"ipc"}}]}`, "rows_label"},
		{"bad mechanism spelling", `{"version":1,"name":"x","tables":[{"id":"t","title":"t","grid":{
			"columns":[{"name":"c","config":{"mechanism":"warp"}}],"metric":"ipc"}}]}`, "warp"},
		{"bad region mode", `{"version":1,"name":"x","tables":[{"id":"t","title":"t","grid":{
			"columns":[{"name":"c","config":{"mechanism":"shotgun","region_mode":"spiral"}}],"metric":"ipc"}}]}`, "spiral"},
		{"bad footprint bits", `{"version":1,"name":"x","tables":[{"id":"t","title":"t","grid":{
			"columns":[{"name":"c","config":{"mechanism":"shotgun","footprint_bits":16}}],"metric":"ipc"}}]}`, "8 or 32"},
		{"duplicate mix", `{"version":1,"name":"x","tables":[{"id":"t","title":"t","interference":{
			"co_runners":[1],"mixes":[
			{"name":"m","co_runner":{"mechanism":"shotgun"}},
			{"name":"m","co_runner":{"mechanism":"fdip"}}]}}]}`, "duplicate mix"},
		{"non-increasing co-runners", `{"version":1,"name":"x","tables":[{"id":"t","title":"t","interference":{
			"co_runners":[3,1],"mixes":[{"name":"m","co_runner":{"mechanism":"shotgun"}}]}}]}`, "strictly increasing"},
		{"too many cores", `{"version":1,"name":"x","tables":[{"id":"t","title":"t","interference":{
			"co_runners":[299],"mixes":[{"name":"m","co_runner":{"mechanism":"shotgun"}}]}}]}`, "mesh"},
		{"non-increasing distances", `{"version":1,"name":"x","tables":[{"id":"t","title":"t",
			"region_cdf":{"distances":[4,2]}}]}`, "strictly increasing"},
		{"distance out of range", `{"version":1,"name":"x","tables":[{"id":"t","title":"t",
			"region_cdf":{"distances":[99]}}]}`, "out of range"},
		{"non-increasing points", `{"version":1,"name":"x","tables":[{"id":"t","title":"t",
			"branch_coverage":{"points":[2048,1024]}}]}`, "strictly increasing"},
		{"analysis blocks over cap", `{"version":1,"name":"x","tables":[{"id":"t","title":"t",
			"region_cdf":{"distances":[0],"blocks":2000000000}}]}`, "cap"},
		{"coverage blocks over cap", `{"version":1,"name":"x","tables":[{"id":"t","title":"t",
			"branch_coverage":{"points":[1024],"blocks":2000000000}}]}`, "cap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("accepted:\n%s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestCompileOverCap proves the expansion cap holds both per table and
// across tables.
func TestCompileOverCap(t *testing.T) {
	// One table whose axis product alone exceeds the cap.
	big := Spec{Version: Version, Name: "big", Tables: []Table{{
		ID: "t", Title: "t",
		Grid: &Grid{
			Base:    Config{Mechanism: "none"},
			Metric:  "ipc",
			Rows:    manyAxes("r", 120),
			Columns: manyAxes("c", 6),
			// 6 workloads × 120 rows × 6 columns = 4320 cells > 4096.
			RowsLabel: "R",
		},
	}}}
	if _, err := big.Compile(); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("over-cap single table: err = %v", err)
	}

	// Tables that fit individually but overflow together.
	tables := make([]Table, 0, 8)
	for i := 0; i < 8; i++ {
		tables = append(tables, Table{
			ID: fmt.Sprintf("t%d", i), Title: "t",
			Grid: &Grid{
				Base:      Config{Mechanism: "none"},
				Metric:    "ipc",
				Rows:      manyAxes("r", 15),
				RowsLabel: "R",
				Columns:   manyAxes("c", 6),
			},
		})
	}
	multi := Spec{Version: Version, Name: "multi", Tables: tables}
	if _, err := multi.Compile(); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("over-cap across tables: err = %v", err)
	}
}

// manyAxes builds n distinct no-op axis points.
func manyAxes(prefix string, n int) []Axis {
	out := make([]Axis, n)
	for i := range out {
		out[i] = Axis{Name: fmt.Sprintf("%s%d", prefix, i)}
	}
	return out
}

// TestCompileCellErrorsNameTheCell proves sim-level rejection of a
// composed cell surfaces with spec context.
func TestCompileCellErrorsNameTheCell(t *testing.T) {
	doc := `{"version":1,"name":"x","tables":[{"id":"t","title":"t","grid":{
		"columns":[{"name":"tiny-btb","config":{"mechanism":"shotgun","btb_entries":7}}],
		"metric":"ipc"}}]}`
	_, err := Compile([]byte(doc))
	if err == nil || !strings.Contains(err.Error(), "tiny-btb") {
		t.Fatalf("err = %v, want the failing column named", err)
	}
}

// TestInterferenceDefaults checks the sweep's documented defaults:
// Oracle workload, shotgun primary and co-runners.
func TestInterferenceDefaults(t *testing.T) {
	doc := `{"version":1,"name":"x","tables":[{"id":"t","title":"t","interference":{
		"co_runners":[1],"mixes":[{"name":"m","co_runner":{}}]}}]}`
	c, err := Compile([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	scs := c.Scenarios()
	if len(scs) != 2 {
		t.Fatalf("scenarios = %d, want 2 (solo + one point)", len(scs))
	}
	for _, sc := range scs {
		for _, cfg := range sc.Cores {
			if cfg.Workload != "Oracle" || cfg.Mechanism != sim.Shotgun {
				t.Fatalf("core defaults wrong: %+v", cfg)
			}
		}
	}
}

// TestRenderSmoke drives every renderer at a tiny scale: shapes, row
// counts, and the summary row must come out as declared. (Byte-exact
// parity with the golden corpus is proven at quick scale by the root
// package's TestSpecGoldenParity.)
func TestRenderSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("renders run real simulations")
	}
	r := harness.NewRunnerWorkers(harness.Scale{WarmupInstr: 40_000, MeasureInstr: 60_000, Samples: 1}, 2)

	c, err := Compile([]byte(goodSpec))
	if err != nil {
		t.Fatal(err)
	}
	wantRows := map[string]int{
		"g":   3, // 2 workloads + Gmean
		"i":   3, // solo + 2 co-runner counts
		"cdf": 1,
	}
	for _, e := range c.Experiments() {
		tab := e.Table(r)
		if got := len(tab.Rows()); got != wantRows[e.ID] {
			t.Errorf("%s: %d rows, want %d", e.ID, got, wantRows[e.ID])
		}
	}

	// A rows-axis grid with the Figure 12 C-BTB knob and a branch-
	// coverage analysis, exercising the remaining render shapes.
	axes := `{
	  "version": 1, "name": "axes",
	  "tables": [
	    {"id": "rowsgrid", "title": "rows", "grid": {
	      "workloads": ["Nutch"],
	      "rows": [
	        {"name": "shotgun", "config": {"mechanism": "shotgun"}},
	        {"name": "small-cbtb", "config": {"mechanism": "shotgun", "cbtb_entries": 64}}
	      ],
	      "rows_label": "Variant",
	      "columns": [
	        {"name": "1K", "config": {"btb_entries": 1024}},
	        {"name": "2K", "config": {"btb_entries": 2048}}
	      ],
	      "metric": "speedup"}},
	    {"id": "cov", "title": "cov", "branch_coverage": {
	      "workloads": ["Nutch"], "blocks": 50000, "points": [512, 1024]}}
	  ]
	}`
	ca, err := Compile([]byte(axes))
	if err != nil {
		t.Fatal(err)
	}
	exps := ca.Experiments()
	grid := exps[0].Table(r)
	if got := len(grid.Rows()); got != 2 {
		t.Errorf("rows-axis grid: %d rows, want 2 (1 workload x 2 rows)", got)
	}
	if h := grid.Headers(); len(h) != 4 || h[1] != "Variant" {
		t.Errorf("rows-axis headers = %v", h)
	}
	cov := exps[1].Table(r)
	if got := len(cov.Rows()); got != 2 {
		t.Errorf("branch coverage: %d rows, want 2 (1 workload x 2 points)", got)
	}
}

// TestCBTBComposesWithLaterBudget: cbtb_entries must resolve against
// the FINAL composed budget, so a base-layer cbtb_entries combined
// with per-column btb_entries derives different Shotgun sizes per
// column (regression: sizes used to be pinned at the layer where
// cbtb_entries appeared, silently ignoring later budget overrides).
func TestCBTBComposesWithLaterBudget(t *testing.T) {
	doc := `{"version":1,"name":"x","tables":[{"id":"t","title":"t","grid":{
		"workloads":["Oracle"],
		"base":{"mechanism":"shotgun","cbtb_entries":64},
		"columns":[
			{"name":"1K","config":{"btb_entries":1024}},
			{"name":"4K","config":{"btb_entries":4096}}],
		"metric":"ipc"}}]}`
	c, err := Compile([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	scs := c.Scenarios() // baseline, 1K cell, 4K cell
	if len(scs) != 3 {
		t.Fatalf("scenarios = %d, want 3", len(scs))
	}
	small, big := scs[1].Cores[0], scs[2].Cores[0]
	if small.ShotgunSizes == nil || big.ShotgunSizes == nil {
		t.Fatal("cbtb_entries did not materialize ShotgunSizes")
	}
	if small.ShotgunSizes.CEntries != 64 || big.ShotgunSizes.CEntries != 64 {
		t.Fatalf("CEntries = %d/%d, want 64/64", small.ShotgunSizes.CEntries, big.ShotgunSizes.CEntries)
	}
	if small.ShotgunSizes.UEntries == big.ShotgunSizes.UEntries {
		t.Fatalf("both columns derived identical U-BTB sizes (%d) — the column budget was ignored",
			small.ShotgunSizes.UEntries)
	}
}

// TestInterferenceOverCap: the fan-out cap must reject the sweep
// before materializing it (mixes × counts points, each holding up to
// MaxCores config copies).
func TestInterferenceOverCap(t *testing.T) {
	mixes := make([]Mix, 700)
	for i := range mixes {
		mixes[i] = Mix{Name: fmt.Sprintf("m%d", i), CoRunner: Config{Mechanism: "shotgun"}}
	}
	s := Spec{Version: Version, Name: "big", Tables: []Table{{
		ID: "t", Title: "t",
		Interference: &Interference{CoRunners: []int{1, 2, 3, 4, 5, 6}, Mixes: mixes},
	}}}
	// 700 mixes × 6 counts = 4200 points > 4096.
	if _, err := s.Compile(); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("over-cap interference: err = %v", err)
	}
}

// TestAnalysisCostCaps: the per-table blocks cap must not be
// multipliable by table count, and the table count itself is bounded.
func TestAnalysisCostCaps(t *testing.T) {
	tables := make([]Table, 3)
	for i := range tables {
		tables[i] = Table{
			ID: fmt.Sprintf("a%d", i), Title: "t",
			RegionCDF: &RegionCDF{Blocks: MaxAnalysisBlocks, Distances: []int{0}},
		}
	}
	// 3 tables × 10M blocks × 6 workloads = 180M > MaxAnalysisCost.
	s := Spec{Version: Version, Name: "x", Tables: tables}
	if _, err := s.Compile(); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("aggregated analysis cost accepted: err = %v", err)
	}

	many := make([]Table, MaxTables+1)
	for i := range many {
		many[i] = Table{ID: fmt.Sprintf("t%d", i), Title: "t",
			RegionCDF: &RegionCDF{Distances: []int{0}}}
	}
	s = Spec{Version: Version, Name: "x", Tables: many}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("table-count cap missing: err = %v", err)
	}
}

// TestInterferenceSoloCarriesLLCOverride: llc_bytes applies to the
// solo reference too — anchoring contended rows against a differently
// sized cache would misstate every delta.
func TestInterferenceSoloCarriesLLCOverride(t *testing.T) {
	doc := `{"version":1,"name":"x","tables":[{"id":"t","title":"t","interference":{
		"co_runners":[1],"llc_bytes":131072,
		"mixes":[{"name":"m","co_runner":{"mechanism":"shotgun"}}]}}]}`
	c, err := Compile([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range c.Scenarios() {
		if sc.LLCSizeBytes != 131072 {
			t.Fatalf("scenario %d LLC = %d, want the 131072 override (solo included)", i, sc.LLCSizeBytes)
		}
	}
}
