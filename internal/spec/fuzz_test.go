package spec

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzSpecParse holds the spec surface to its contract: arbitrary
// bytes — malformed JSON, truncated documents, hostile field values —
// must either parse into a valid spec or return an error. Never a
// panic, in Parse or in the Compile expansion of whatever parsed.
// Wired into the CI fuzz-smoke job next to the trace/server/dispatch
// targets.
func FuzzSpecParse(f *testing.F) {
	// Seed with the real checked-in specs (best mutation starting
	// points) plus targeted malformed shapes.
	if paths, err := filepath.Glob(filepath.Join("..", "..", "specs", "*.json")); err == nil {
		for _, p := range paths {
			if data, err := os.ReadFile(p); err == nil {
				f.Add(data)
			}
		}
	}
	f.Add([]byte(goodSpec))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":1,"name":"x","tables":[{"id":"t","title":"t","grid":{"columns":[{"name":"c","config":{"mechanism":"none"}}],"metric":"ipc","format":"%999f"}}]}`))
	f.Add([]byte(`{"version":1,"name":"x","tables":[{"id":"t","title":"t","interference":{"co_runners":[-1],"mixes":[{"name":"m","co_runner":{}}]}}]}`))
	f.Add([]byte(`{"version":1,"name":"x","tables":[{"id":"t","title":"t","region_cdf":{"distances":[0],"blocks":-1}}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		// Whatever parsed must also compile without panicking (errors
		// are fine: compile-level checks like the scenario cap live
		// there).
		_, _ = s.Compile()
	})
}
