package spec

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzSpecParse holds the spec surface to its contract: arbitrary
// bytes — malformed JSON, truncated documents, hostile field values —
// must either parse into a valid spec or return an error. Never a
// panic, in Parse or in the Compile expansion of whatever parsed.
// Wired into the CI fuzz-smoke job next to the trace/server/dispatch
// targets.
func FuzzSpecParse(f *testing.F) {
	// Seed with the real checked-in specs (best mutation starting
	// points) plus targeted malformed shapes.
	if paths, err := filepath.Glob(filepath.Join("..", "..", "specs", "*.json")); err == nil {
		for _, p := range paths {
			if data, err := os.ReadFile(p); err == nil {
				f.Add(data)
			}
		}
	}
	f.Add([]byte(goodSpec))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":1,"name":"x","tables":[{"id":"t","title":"t","grid":{"columns":[{"name":"c","config":{"mechanism":"none"}}],"metric":"ipc","format":"%999f"}}]}`))
	f.Add([]byte(`{"version":1,"name":"x","tables":[{"id":"t","title":"t","interference":{"co_runners":[-1],"mixes":[{"name":"m","co_runner":{}}]}}]}`))
	f.Add([]byte(`{"version":1,"name":"x","tables":[{"id":"t","title":"t","region_cdf":{"distances":[0],"blocks":-1}}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		// Whatever parsed must also compile without panicking (errors
		// are fine: compile-level checks like the scenario cap live
		// there).
		_, _ = s.Compile()
	})
}

// FuzzSamplingSpec drives the sampling object with arbitrary parameter
// values — overflowing periods, negative counts, NaN targets — through
// both the JSON surface and the typed validate/compile path. The
// contract matches FuzzSpecParse: a validation error or a compiled
// table, never a panic. Wired into the CI fuzz-smoke job.
func FuzzSamplingSpec(f *testing.F) {
	f.Add(uint64(16384), uint64(1024), uint64(1024), uint64(8192), 16, 0.03, 64)
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), 0, 0.0, 0)
	f.Add(^uint64(0), ^uint64(0), uint64(1), uint64(0), -1, -1.0, -1)
	f.Add(uint64(100), uint64(90), uint64(20), uint64(0), 1<<30, 1.5, 1)

	f.Fuzz(func(t *testing.T, period, warmup, unit, funcWarm uint64, units int, targetCI float64, maxUnits int) {
		s := Spec{
			Version: Version,
			Name:    "fuzz",
			Tables: []Table{{
				ID:    "t",
				Title: "t",
				Sampled: &Sampled{
					Sampling: Sampling{
						Period:   period,
						Warmup:   warmup,
						Unit:     unit,
						FuncWarm: funcWarm,
						Units:    units,
						TargetCI: targetCI,
						MaxUnits: maxUnits,
					},
				},
			}},
		}
		if err := s.Validate(); err != nil {
			return
		}
		c, err := s.Compile()
		if err != nil {
			t.Fatalf("validated sampling spec failed to compile: %v", err)
		}
		// A compiled sampled table must expand to scenarios the
		// simulator itself accepts — spec-level validation may not be
		// looser than sim-level.
		for _, sc := range c.Scenarios() {
			if err := sc.Validate(); err != nil {
				t.Fatalf("compiled scenario invalid: %v", err)
			}
		}
	})
}
