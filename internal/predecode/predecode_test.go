package predecode

import (
	"testing"

	"shotgun/internal/isa"
	"shotgun/internal/program"
)

func testProgram(t testing.TB) *program.Program {
	t.Helper()
	return program.MustGenerate(program.GenParams{NumAppFuncs: 80, NumKernelFuncs: 20}, 42)
}

func TestEveryBranchDecodable(t *testing.T) {
	prog := testProgram(t)
	d := NewDecoder(prog)
	for _, f := range prog.Funcs {
		for _, sb := range f.Blocks {
			if sb.Kind == isa.BranchNone {
				continue
			}
			branchPC := sb.PC.Add(sb.NumInstr - 1)
			br, ok := d.DecodeFor(sb.PC, branchPC)
			if !ok {
				t.Fatalf("branch at %v (block %v) not decodable", branchPC, sb.PC)
			}
			if br.Entry.Kind != sb.Kind || br.Entry.NumInstr != sb.NumInstr {
				t.Fatalf("decoded %+v, want kind %v size %d", br.Entry, sb.Kind, sb.NumInstr)
			}
		}
	}
}

func TestTargetsResolved(t *testing.T) {
	prog := testProgram(t)
	d := NewDecoder(prog)
	for _, f := range prog.Funcs {
		for _, sb := range f.Blocks {
			branchPC := sb.PC.Add(sb.NumInstr - 1)
			br, ok := d.DecodeFor(sb.PC, branchPC)
			if !ok {
				continue
			}
			switch sb.Kind {
			case isa.BranchCond, isa.BranchJump:
				want := f.Blocks[sb.TargetIdx].PC
				if br.Entry.Target != want {
					t.Fatalf("local branch target %v, want %v", br.Entry.Target, want)
				}
			case isa.BranchCall, isa.BranchTrap:
				want := prog.Func(sb.Callee).Entry()
				if br.Entry.Target != want {
					t.Fatalf("call target %v, want %v", br.Entry.Target, want)
				}
			case isa.BranchRet, isa.BranchTrapRet:
				if br.Entry.Target != 0 {
					t.Fatalf("return must have no static target, got %v", br.Entry.Target)
				}
			}
		}
	}
}

func TestDecodeGroupsByCacheBlock(t *testing.T) {
	prog := testProgram(t)
	d := NewDecoder(prog)
	if d.Blocks() == 0 {
		t.Fatal("no blocks indexed")
	}
	// Every branch returned for a block must actually live in that block.
	checked := 0
	for _, f := range prog.Funcs {
		for _, sb := range f.Blocks {
			if sb.Kind == isa.BranchNone {
				continue
			}
			cb := sb.PC.Add(sb.NumInstr - 1).Block()
			for _, br := range d.Decode(cb) {
				bpc := br.BlockPC.Add(br.Entry.NumInstr - 1)
				if bpc.Block() != cb {
					t.Fatalf("branch %v listed under block %v", bpc, cb)
				}
				checked++
			}
			if checked > 2000 {
				return
			}
		}
	}
}

func TestDecodeUnknownBlockEmpty(t *testing.T) {
	d := NewDecoder(testProgram(t))
	if got := d.Decode(0xdead0000); got != nil {
		t.Fatalf("unknown block decoded to %v", got)
	}
}

func BenchmarkDecode(b *testing.B) {
	prog := testProgram(b)
	d := NewDecoder(prog)
	entry := prog.Funcs[0].Entry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Decode(entry + isa.Addr((i%64)*isa.BlockBytes))
	}
}
