// Package predecode models the predecoders Boomerang and Shotgun attach
// to the L1-I fill path: given a fetched or prefetched cache block, they
// extract the branch instructions it contains and produce BTB metadata
// (basic-block start, size, branch kind, target).
//
// In hardware the predecoder decodes raw bytes; in this simulator the
// Decoder is built from the synthetic program's static structure, which
// yields exactly the same information.
package predecode

import (
	"shotgun/internal/btb"
	"shotgun/internal/isa"
	"shotgun/internal/program"
)

// Branch is one predecoded branch: the BTB entry payload plus the basic
// block's start address (the BTB index).
type Branch struct {
	BlockPC isa.Addr
	Entry   btb.Entry
}

// Decoder maps cache-block addresses to the branches whose terminating
// branch instruction lies inside that block.
type Decoder struct {
	byBlock map[isa.Addr][]Branch
}

// NewDecoder indexes every static branch in the program by the cache
// block containing its branch instruction.
func NewDecoder(prog *program.Program) *Decoder {
	d := &Decoder{byBlock: make(map[isa.Addr][]Branch)}
	for _, f := range prog.Funcs {
		for bi := range f.Blocks {
			sb := &f.Blocks[bi]
			if sb.Kind == isa.BranchNone {
				continue
			}
			branchPC := sb.PC.Add(sb.NumInstr - 1)
			cb := branchPC.Block()
			entry := btb.Entry{NumInstr: sb.NumInstr, Kind: sb.Kind}
			switch sb.Kind {
			case isa.BranchCond, isa.BranchJump:
				entry.Target = f.Blocks[sb.TargetIdx].PC
			case isa.BranchCall, isa.BranchTrap:
				entry.Target = prog.Func(sb.Callee).Entry()
			}
			// Returns read targets from the RAS; no static target.
			d.byBlock[cb] = append(d.byBlock[cb], Branch{BlockPC: sb.PC, Entry: entry})
		}
	}
	return d
}

// Decode returns the branches whose branch instruction lies in the cache
// block containing addr. The returned slice is shared; callers must not
// mutate it.
func (d *Decoder) Decode(addr isa.Addr) []Branch {
	return d.byBlock[addr.Block()]
}

// DecodeFor returns the predecoded entry for the basic block starting at
// blockPC, searching the cache block that holds its terminating branch.
// Used by reactive BTB fills, which know which basic block missed.
func (d *Decoder) DecodeFor(blockPC isa.Addr, branchPC isa.Addr) (Branch, bool) {
	for _, br := range d.byBlock[branchPC.Block()] {
		if br.BlockPC == blockPC {
			return br, true
		}
	}
	return Branch{}, false
}

// Blocks returns the number of distinct cache blocks with branches.
func (d *Decoder) Blocks() int { return len(d.byBlock) }
