// Package predecode models the predecoders Boomerang and Shotgun attach
// to the L1-I fill path: given a fetched or prefetched cache block, they
// extract the branch instructions it contains and produce BTB metadata
// (basic-block start, size, branch kind, target).
//
// In hardware the predecoder decodes raw bytes; in this simulator the
// Decoder is built from the synthetic program's static structure, which
// yields exactly the same information.
package predecode

import (
	"sort"

	"shotgun/internal/btb"
	"shotgun/internal/isa"
	"shotgun/internal/program"
)

// Branch is one predecoded branch: the BTB entry payload plus the basic
// block's start address (the BTB index).
type Branch struct {
	BlockPC isa.Addr
	Entry   btb.Entry
}

// Decoder maps cache-block addresses to the branches whose terminating
// branch instruction lies inside that block.
//
// The program lays its code out as a small number of dense images (the
// application image and the kernel image), so instead of a hash map the
// decoder indexes a dense per-image slice by block number: Decode sits
// on the L1-I fill path of every prefetch probe, and the map hash
// dominated its cost.
type Decoder struct {
	segs   []decodeSeg
	blocks int
}

// decodeSeg covers one contiguous run of code blocks; branches[i] holds
// the branches of block number base+i.
type decodeSeg struct {
	base     uint64 // first block number of the run
	branches [][]Branch
}

// segGapBlocks is the block-number gap beyond which NewDecoder starts a
// new segment rather than padding the current one (images are packed;
// only the inter-image void exceeds this).
const segGapBlocks = 1 << 16

// NewDecoder indexes every static branch in the program by the cache
// block containing its branch instruction.
func NewDecoder(prog *program.Program) *Decoder {
	byBlock := make(map[isa.Addr][]Branch)
	for _, f := range prog.Funcs {
		for bi := range f.Blocks {
			sb := &f.Blocks[bi]
			if sb.Kind == isa.BranchNone {
				continue
			}
			branchPC := sb.PC.Add(sb.NumInstr - 1)
			cb := branchPC.Block()
			entry := btb.Entry{NumInstr: sb.NumInstr, Kind: sb.Kind}
			switch sb.Kind {
			case isa.BranchCond, isa.BranchJump:
				entry.Target = f.Blocks[sb.TargetIdx].PC
			case isa.BranchCall, isa.BranchTrap:
				entry.Target = prog.Func(sb.Callee).Entry()
			}
			// Returns read targets from the RAS; no static target.
			byBlock[cb] = append(byBlock[cb], Branch{BlockPC: sb.PC, Entry: entry})
		}
	}

	d := &Decoder{blocks: len(byBlock)}
	nums := make([]uint64, 0, len(byBlock))
	for cb := range byBlock {
		nums = append(nums, cb.BlockIndex())
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	for i := 0; i < len(nums); {
		j := i + 1
		for j < len(nums) && nums[j]-nums[j-1] < segGapBlocks {
			j++
		}
		seg := decodeSeg{
			base:     nums[i],
			branches: make([][]Branch, nums[j-1]-nums[i]+1),
		}
		for _, n := range nums[i:j] {
			seg.branches[n-seg.base] = byBlock[isa.Addr(n*isa.BlockBytes)]
		}
		d.segs = append(d.segs, seg)
		i = j
	}
	return d
}

// Decode returns the branches whose branch instruction lies in the cache
// block containing addr. The returned slice is shared; callers must not
// mutate it.
func (d *Decoder) Decode(addr isa.Addr) []Branch {
	bi := addr.BlockIndex()
	for i := range d.segs {
		// Unsigned wrap makes a below-base block number fail the bound.
		if off := bi - d.segs[i].base; off < uint64(len(d.segs[i].branches)) {
			return d.segs[i].branches[off]
		}
	}
	return nil
}

// DecodeFor returns the predecoded entry for the basic block starting at
// blockPC, searching the cache block that holds its terminating branch.
// Used by reactive BTB fills, which know which basic block missed.
func (d *Decoder) DecodeFor(blockPC isa.Addr, branchPC isa.Addr) (Branch, bool) {
	for _, br := range d.Decode(branchPC) {
		if br.BlockPC == blockPC {
			return br, true
		}
	}
	return Branch{}, false
}

// Blocks returns the number of distinct cache blocks with branches.
func (d *Decoder) Blocks() int { return d.blocks }
