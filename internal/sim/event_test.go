package sim

import (
	"fmt"
	"testing"

	"shotgun/internal/footprint"
	"shotgun/internal/prefetch"
)

// evtCfg keeps the engine-equality matrix fast while still crossing
// warmup and measurement boundaries on every core.
func evtCfg(wl string, m Mechanism) Config {
	return Config{
		Workload: wl, Mechanism: m,
		WarmupInstr: 40_000, MeasureInstr: 50_000, Samples: 1,
	}
}

// TestEventKernelMatchesLockstep is the tentpole keystone: the
// event-driven kernel must reproduce the lockstep engine bit for bit —
// same stall counters, same hierarchy stats, same derived metrics — at
// every core count and for every mechanism. Any divergence means a
// skipped cycle was not actually idle (or idle accounting drifted) and
// fails here, not in a golden diff.
func TestEventKernelMatchesLockstep(t *testing.T) {
	mechs := Mechanisms() // all 8
	wls := []string{"Oracle", "Nutch", "DB2", "Zeus", "Apache", "Streaming", "Oracle", "Nutch"}

	var cases []Scenario
	var names []string
	// N=1 and N=2: every mechanism drives its own scenario (paired with
	// a pressure-generating None co-runner at N=2).
	for _, m := range mechs {
		cases = append(cases, Scenario{Cores: []Config{evtCfg("Oracle", m)}})
		names = append(names, fmt.Sprintf("n1_%s", m))
		cases = append(cases, Scenario{Cores: []Config{
			evtCfg("Oracle", m),
			evtCfg("Nutch", None),
		}})
		names = append(names, fmt.Sprintf("n2_%s", m))
	}
	// N=8: one heterogeneous mix seats all 8 mechanisms on one mesh.
	var eight []Config
	for i, m := range mechs {
		eight = append(eight, evtCfg(wls[i%len(wls)], m))
	}
	cases = append(cases, Scenario{Cores: eight})
	names = append(names, "n8_all_mechanisms")
	// The new axes: the CLZ-TAGE predictor variant and the multi-context
	// front-end, each at 1, 2 and 8 cores — the per-context stall
	// deadlines (runStallUntil, headReadyAt, fetchBusyUntil) are exactly
	// the flip points the event kernel must include to stay bit-equal.
	clz := func(wl string, m Mechanism) Config { c := evtCfg(wl, m); c.BPU = BPUCLZ; return c }
	smt := func(wl string, m Mechanism, n int) Config { c := evtCfg(wl, m); c.Contexts = n; return c }
	cases = append(cases,
		Scenario{Cores: []Config{clz("Oracle", Shotgun)}},
		Scenario{Cores: []Config{clz("Oracle", Boomerang), evtCfg("Nutch", None)}},
		Scenario{Cores: []Config{
			clz("Oracle", Shotgun), clz("Nutch", Boomerang), clz("DB2", FDIP), clz("Zeus", Delta),
			clz("Apache", Confluence), clz("Streaming", RDIP), clz("Oracle", None), clz("Nutch", Ideal),
		}},
		Scenario{Cores: []Config{smt("Oracle", Shotgun, 2)}},
		Scenario{Cores: []Config{smt("Oracle", Boomerang, 4), smt("Nutch", Shotgun, 2)}},
		Scenario{Cores: []Config{
			smt("Oracle", Shotgun, 2), smt("Nutch", Boomerang, 4), smt("DB2", Delta, 2), smt("Zeus", FDIP, 8),
			evtCfg("Apache", Confluence), smt("Streaming", RDIP, 2), smt("Oracle", None, 2), smt("Nutch", Ideal, 2),
		}},
	)
	names = append(names, "n1_clz", "n2_clz", "n8_clz_all_mechanisms",
		"n1_smt2", "n2_smt_mixed", "n8_smt_all_mechanisms")

	for i, sc := range cases {
		sc := sc
		name := names[i]
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			norm := sc.Normalized()
			want, err := runLockstep(norm)
			if err != nil {
				t.Fatal(err)
			}
			got, err := runEvent(norm)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Cores) != len(want.Cores) {
				t.Fatalf("core count drifted: event %d, lockstep %d", len(got.Cores), len(want.Cores))
			}
			for c := range want.Cores {
				if got.Cores[c] != want.Cores[c] {
					t.Errorf("core %d drifted from lockstep:\nevent:    %+v\nlockstep: %+v",
						c, got.Cores[c], want.Cores[c])
				}
			}
		})
	}
}

// TestEventKernel64CoreSmoke proves the scale unlock: a 64-core
// scenario — four times the old MaxCores — completes on the event
// kernel and reports sane per-core results. The lockstep engine is
// deliberately not run here; at this scale it is exactly the cost this
// kernel exists to avoid.
func TestEventKernel64CoreSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("64-core smoke is not a -short test")
	}
	cores := make([]Config, 64)
	for i := range cores {
		m := Shotgun
		if i%2 == 1 {
			m = None
		}
		cores[i] = Config{
			Workload: "Oracle", Mechanism: m,
			WarmupInstr: 20_000, MeasureInstr: 30_000, Samples: 1,
		}
	}
	res := MustRunScenario(Scenario{Cores: cores})
	if len(res.Cores) != 64 {
		t.Fatalf("got %d core results, want 64", len(res.Cores))
	}
	for i, r := range res.Cores {
		if r.Core.Instructions == 0 || r.Core.Cycles == 0 {
			t.Fatalf("core %d measured nothing: %+v", i, r.Core)
		}
		if ipc := r.Core.IPC(); ipc <= 0 || ipc > 3 {
			t.Fatalf("core %d IPC %v outside (0, 3]", i, ipc)
		}
	}
}

// interference8 reconstructs the harness interference experiment's
// 8-core shape (shotgun primary, 7 entire-region co-runners) for the
// engine benchmarks, at the bench scale of BenchmarkScenarioThroughput.
func interference8() Scenario {
	co := Config{
		Workload: "Oracle", Mechanism: Shotgun,
		RegionMode: prefetch.RegionEntire, Layout: footprint.Layout32,
		WarmupInstr: 150_000, MeasureInstr: 250_000, Samples: 1,
	}
	primary := co
	primary.RegionMode = 0
	primary.Layout = footprint.Layout{}
	cores := []Config{primary}
	for i := 0; i < 7; i++ {
		cores = append(cores, co)
	}
	return Scenario{Cores: cores}
}

// benchEngine drives one engine over the 8-core interference scenario;
// the BenchmarkEngine* pair quantifies the event kernel's wall-clock
// win over lockstep (the tentpole's ≥5× target).
func benchEngine(b *testing.B, run func(Scenario) (ScenarioResult, error)) {
	sc := interference8().Normalized()
	// Warm the shared program/predecode artifacts so the comparison
	// times the engines, not one-time workload generation.
	if _, err := run(sc); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := run(sc)
		if err != nil {
			b.Fatal(err)
		}
		if res.Cores[0].Core.Instructions == 0 {
			b.Fatal("no instructions retired")
		}
	}
}

func BenchmarkEngineLockstep8Core(b *testing.B) { benchEngine(b, runLockstep) }
func BenchmarkEngineEvent8Core(b *testing.B)    { benchEngine(b, runEvent) }
