// This file is the sampled execution mode: instead of one long detailed
// warmup+measurement schedule, the run is divided into periods of P
// trace blocks; each period fast-forwards P−W−U blocks under functional
// warming (caches, BTBs, branch predictor and prefetcher metadata stay
// trained through core.WarmBlocks, but no cycles are simulated), runs a
// detailed warm-up of W blocks to re-establish timing state, then
// measures a detailed unit of U blocks. Per-unit IPC/MPKI observations
// aggregate into mean ± 95% confidence intervals (internal/sample), so
// a billion-instruction trace costs detailed simulation only for the
// measured slivers — the SMARTS recipe (Wunderlich et al., ISCA'03).

package sim

import (
	"shotgun/internal/core"
	"shotgun/internal/prefetch"
	"shotgun/internal/sample"
)

// Sampling configures the sampled execution mode. A nil Sampling on a
// Config means exact execution; non-nil switches Run/RunStream to
// periodic sampling and makes WarmupInstr/MeasureInstr/SkipInstr/
// Samples irrelevant (the sampling schedule replaces them, though they
// remain part of the canonical identity like every other field).
type Sampling struct {
	// PeriodBlocks is the sampling period P in trace blocks: one
	// measured unit begins every P blocks.
	PeriodBlocks uint64
	// WarmupBlocks is the detailed (timed, discarded) warm-up W before
	// each measured unit.
	WarmupBlocks uint64
	// UnitBlocks is the measured detailed unit length U. The remaining
	// P−W−U blocks of each period run under functional warming.
	UnitBlocks uint64
	// FuncWarmBlocks bounds the functional-warming window: 0 (the
	// SMARTS-conservative default, normalized to the full P−W−U gap)
	// warms every fast-forwarded block; an explicit F < gap warms only
	// the F blocks before the detailed warm-up and skips the rest of
	// the gap with no simulation at all — much faster, at some
	// cold-state risk the warm-up phases must absorb.
	FuncWarmBlocks uint64
	// Units is the baseline measured-unit count (default
	// sample.DefaultUnits).
	Units int
	// TargetCI, when non-zero, enables adaptive escalation: after Units
	// units, measurement continues until the IPC estimate's relative
	// 95% half-width reaches the target (SMARTS targets 0.03) or
	// MaxUnits is hit.
	TargetCI float64
	// MaxUnits caps adaptive escalation (default sample.DefaultMaxUnits).
	MaxUnits int
}

// withDefaults returns the sampling block with zero fields resolved —
// the explicit form Normalized exposes.
func (s Sampling) withDefaults() Sampling {
	if s.FuncWarmBlocks == 0 && s.PeriodBlocks >= s.WarmupBlocks+s.UnitBlocks {
		// "Warm the whole gap" spelled implicitly (0) or explicitly
		// (P−W−U) is one schedule; normalize to the explicit form so
		// both share one canonical identity.
		s.FuncWarmBlocks = s.PeriodBlocks - s.WarmupBlocks - s.UnitBlocks
	}
	if s.Units == 0 {
		s.Units = sample.DefaultUnits
	}
	if s.MaxUnits == 0 {
		// Default the cap, never clamp an explicit one (an explicit
		// MaxUnits below Units is an error Validate reports).
		s.MaxUnits = sample.DefaultMaxUnits
		if s.MaxUnits < s.Units {
			s.MaxUnits = s.Units
		}
	}
	return s
}

// params converts to the sample package's parameter form.
func (s Sampling) params() sample.Params {
	return sample.Params{
		PeriodBlocks:   s.PeriodBlocks,
		WarmupBlocks:   s.WarmupBlocks,
		UnitBlocks:     s.UnitBlocks,
		FuncWarmBlocks: s.FuncWarmBlocks,
		Units:          s.Units,
		TargetRelCI:    s.TargetCI,
		MaxUnits:       s.MaxUnits,
	}
}

// Validate reports whether the sampling block is runnable and within
// the DoS bounds (sampling parameters arrive from specs and HTTP).
func (s Sampling) Validate() error {
	return s.params().Validate()
}

// compareSampling extends compareConfigs' frozen total order: nil
// (exact mode) ranks before any sampled config, then field-by-field.
func compareSampling(a, b *Sampling) int {
	switch {
	case a == nil && b == nil:
		return 0
	case a == nil:
		return -1
	case b == nil:
		return 1
	}
	for _, p := range [][2]uint64{
		{a.PeriodBlocks, b.PeriodBlocks},
		{a.WarmupBlocks, b.WarmupBlocks},
		{a.UnitBlocks, b.UnitBlocks},
		{a.FuncWarmBlocks, b.FuncWarmBlocks},
		{uint64(a.Units), uint64(b.Units)},
		{uint64(a.MaxUnits), uint64(b.MaxUnits)},
	} {
		if p[0] != p[1] {
			if p[0] < p[1] {
				return -1
			}
			return 1
		}
	}
	switch {
	case a.TargetCI < b.TargetCI:
		return -1
	case a.TargetCI > b.TargetCI:
		return 1
	}
	return 0
}

// SampledSummary is the statistical outcome of a sampled run, attached
// to the Result alongside the aggregated (measured-units-only) raw
// counters.
type SampledSummary struct {
	// Units is the number of measured detailed units.
	Units int
	// SkimmedInstr counts instructions fast-forwarded with no warming
	// (bounded-window mode); WarmInstr counts instructions
	// fast-forwarded under functional warming; DetailInstr counts
	// instructions simulated in detail (warm-up + measured);
	// MeasuredInstr is the measured subset.
	SkimmedInstr  uint64
	WarmInstr     uint64
	DetailInstr   uint64
	MeasuredInstr uint64
	// IPC, L1IMPKI and BTBMPKI are the per-unit estimates: mean ± 95%
	// Student-t half-width.
	IPC     sample.Estimate
	L1IMPKI sample.Estimate
	BTBMPKI sample.Estimate
}

// Coverage returns the fraction of the traversed stream simulated in
// detail — the knob SMARTS trades against confidence width.
func (s SampledSummary) Coverage() float64 {
	total := s.SkimmedInstr + s.WarmInstr + s.DetailInstr
	if total == 0 {
		return 0
	}
	return float64(s.DetailInstr) / float64(total)
}

// TotalInstr returns every instruction the sampled run traversed, in
// any mode — the span an exact run would have simulated in detail.
func (s SampledSummary) TotalInstr() uint64 {
	return s.SkimmedInstr + s.WarmInstr + s.DetailInstr
}

// runSampled executes the periodic-sampling schedule on an already
// constructed core. The Result's raw counters aggregate the measured
// units only (so IPC()/MPKI() read as usual), and Sampled carries the
// per-unit statistics.
func runSampled(cfg Config, c *core.Core, engine prefetch.Engine) (Result, error) {
	p := cfg.Sampling.params()
	res := Result{Workload: cfg.Workload, Mechanism: cfg.Mechanism}
	sum := &SampledSummary{}
	var l1i, btbm sample.Series
	gap := p.PeriodBlocks - p.WarmupBlocks - p.UnitBlocks
	warm := p.FuncWarmBlocks
	if warm > gap {
		warm = gap
	}
	skim := gap - warm

	est := sample.Run(p, func(int) float64 {
		// Fast-forward across the period gap: drain the detailed
		// front-end state, skip the distant part (bounded-window mode
		// only), functionally warm the window before the unit.
		c.BeginWarm()
		sum.SkimmedInstr += c.SkimBlocks(skim)
		sum.WarmInstr += c.WarmBlocks(warm)

		// Detailed warm-up (timed, discarded).
		n0 := c.Instructions()
		c.RunBlocks(p.WarmupBlocks)
		sum.DetailInstr += c.Instructions() - n0

		// Measured unit.
		c.ResetStats()
		c.RunBlocks(p.UnitBlocks)
		var u Result
		accumulate(&u, c, engine)
		sum.DetailInstr += u.Core.Instructions
		sum.MeasuredInstr += u.Core.Instructions

		res.Core = addCoreStats(res.Core, u.Core)
		res.Hier = addHierStats(res.Hier, u.Hier)
		res.BTBMisses += u.BTBMisses
		l1i.Add(u.L1IMPKI())
		btbm.Add(u.BTBMPKI())
		return u.IPC()
	})

	sum.Units = est.Units
	sum.IPC = est
	sum.L1IMPKI = l1i.Estimate()
	sum.BTBMPKI = btbm.Estimate()
	res.Sampled = sum
	res.PrefetchAccuracy = prefetchAccuracy(res.Hier)
	return res, nil
}
