// Package sim assembles complete simulations: it wires a workload
// profile, a control-flow delivery mechanism, and the Table 3 memory
// hierarchy into a core, runs SMARTS-style warmup+measurement sampling,
// and returns the statistics every experiment in the paper is built
// from.
//
// Two units exist. A Config describes one core's simulation; a Scenario
// (scenario.go) is the general unit — N configured cores over one
// genuinely shared LLC and NoC — of which Run(cfg) is exactly the N=1
// special case, bit-for-bit. Identity contract: Scenario.Normalized
// makes every default explicit and sorts cores canonically, and
// CanonicalBytes of that form is THE content identity — the harness
// memo keys on it, internal/store hashes it, and the dispatch cluster
// leases by it, so equivalent scenarios (including per-core
// permutations) always collide and distinct ones never do.
package sim

import (
	"fmt"

	"shotgun/internal/btb"
	"shotgun/internal/core"
	"shotgun/internal/footprint"
	"shotgun/internal/prefetch"
	"shotgun/internal/uncore"
	"shotgun/internal/workload"
)

// Mechanism names a control-flow delivery scheme.
type Mechanism string

// The mechanisms of the evaluation plus the related work discussed in
// Section 4.3 (RDIP).
const (
	None       Mechanism = "none"
	FDIP       Mechanism = "fdip"
	RDIP       Mechanism = "rdip"
	Delta      Mechanism = "delta"
	Boomerang  Mechanism = "boomerang"
	Confluence Mechanism = "confluence"
	Shotgun    Mechanism = "shotgun"
	Ideal      Mechanism = "ideal"
)

// Mechanisms lists every scheme in presentation order.
func Mechanisms() []Mechanism {
	return []Mechanism{None, FDIP, RDIP, Delta, Boomerang, Confluence, Shotgun, Ideal}
}

// BPU axis values: the empty string is the default TAGE (kept implicit so
// every pre-axis content identity is byte-unchanged), BPUCLZ the
// CLZ-indexed variant.
const BPUCLZ = "clz"

// ParseBPU canonicalizes a BPU axis name: "" and "tage" mean the default
// predictor (canonical form ""), "clz" the CLZ-indexed TAGE.
func ParseBPU(s string) (string, error) {
	switch s {
	case "", "tage":
		return "", nil
	case BPUCLZ:
		return BPUCLZ, nil
	}
	return "", fmt.Errorf("sim: unknown BPU %q (have tage, clz)", s)
}

// MaxContexts bounds the multi-context front-end's context count.
const MaxContexts = 8

// Config describes one simulation.
type Config struct {
	// Workload is the profile name (workload.Names()).
	Workload string
	// Mechanism selects the control-flow delivery scheme.
	Mechanism Mechanism

	// BTBEntries is the conventional BTB budget (default 2048). Shotgun
	// derives its three structure sizes from the equivalent budget.
	BTBEntries int
	// ShotgunSizes overrides the derived sizes (C-BTB sensitivity).
	ShotgunSizes *btb.Sizes
	// Layout is the footprint geometry (default 8-bit: 2 before/6 after).
	Layout footprint.Layout
	// RegionMode is Shotgun's region-prefetch variant.
	RegionMode prefetch.RegionMode

	// WarmupInstr instructions warm the structures before measurement;
	// MeasureInstr instructions are measured, split into Samples windows
	// separated by warm (unmeasured) gaps of SkipInstr each.
	WarmupInstr  uint64
	MeasureInstr uint64
	SkipInstr    uint64
	Samples      int

	// Sampling, when non-nil, switches the run to SMARTS-style periodic
	// sampling (sampling.go): functional warming between short detailed
	// units, per-unit confidence intervals on the result. The omitempty
	// keeps nil — the exact mode every existing caller uses — out of
	// the canonical encoding, so exact-run content identities (memo
	// keys, store hashes, dispatch leases) are untouched by the field's
	// existence.
	Sampling *Sampling `json:",omitempty"`

	// BPU selects the direction-predictor variant: "" is the default
	// TAGE, BPUCLZ the CLZ-indexed one. Like Sampling, omitempty keeps
	// the default out of the canonical encoding so pre-axis content
	// identities are byte-unchanged.
	BPU string `json:",omitempty"`

	// Contexts is the multi-context front-end width: N>1 hardware
	// contexts (each walking its own salted trace) share the core's
	// fetch engine, BTB/prefetch engine, L1-I and direction predictor
	// with sub-cycle switch-on-stall. 0 and 1 both mean the classic
	// single-context core; 1 normalizes to 0 so the knob stays out of
	// the canonical encoding unless it changes behaviour.
	Contexts int `json:",omitempty"`
}

func (c *Config) setDefaults() {
	if c.BTBEntries == 0 {
		c.BTBEntries = 2048
	}
	if c.Layout.Bits() == 0 {
		c.Layout = footprint.Layout8
	}
	if c.WarmupInstr == 0 {
		c.WarmupInstr = 2_000_000
	}
	if c.MeasureInstr == 0 {
		c.MeasureInstr = 3_000_000
	}
	if c.Samples == 0 {
		c.Samples = 3
	}
	if c.SkipInstr == 0 {
		c.SkipInstr = 200_000
	}
	if c.Sampling != nil {
		// Copy before defaulting: setDefaults runs on a value receiver's
		// copy in Normalized, and writing through the shared pointer
		// would mutate the caller's struct.
		s := c.Sampling.withDefaults()
		c.Sampling = &s
	}
	if c.BPU == "tage" {
		c.BPU = "" // canonical spelling of the default predictor
	}
	if c.Contexts == 1 {
		c.Contexts = 0 // canonical spelling of the single-context core
	}
}

// Normalized returns the config with every defaulted field made explicit
// — exactly the values Run would use. Memoizing callers (harness.Runner)
// key on the normalized form so equivalent configs share one simulation,
// and persistent stores (internal/store) hash it for content addressing.
func (c Config) Normalized() Config {
	c.setDefaults()
	return c
}

// Validate reports whether the config describes a runnable simulation.
// It checks the normalized form, so zero-valued fields with defaults are
// fine. Callers accepting configs from external sources (CLI flags, the
// HTTP server) validate before enqueueing instead of failing mid-batch.
func (c Config) Validate() error {
	n := c.Normalized()
	if _, err := workload.Get(n.Workload); err != nil {
		return err
	}
	switch n.Mechanism {
	case None, FDIP, RDIP, Delta, Boomerang, Confluence, Shotgun, Ideal:
	default:
		return fmt.Errorf("sim: unknown mechanism %q", n.Mechanism)
	}
	if _, err := ParseBPU(n.BPU); err != nil {
		return err
	}
	if n.Contexts < 0 || n.Contexts > MaxContexts {
		return fmt.Errorf("sim: contexts must be in [0, %d] (got %d)", MaxContexts, n.Contexts)
	}
	if n.Contexts > 1 && n.Sampling != nil {
		return fmt.Errorf("sim: sampling requires a single-context core (got %d contexts)", n.Contexts)
	}
	if n.BTBEntries <= 0 {
		return fmt.Errorf("sim: BTB entries must be positive (got %d)", n.BTBEntries)
	}
	if n.Samples <= 0 {
		return fmt.Errorf("sim: samples must be positive (got %d)", n.Samples)
	}
	if err := n.Layout.Validate(); err != nil {
		return err
	}
	switch n.RegionMode {
	case prefetch.RegionVector, prefetch.RegionNone, prefetch.RegionEntire, prefetch.RegionFiveBlocks:
	default:
		return fmt.Errorf("sim: unknown region mode %d", n.RegionMode)
	}
	if n.Sampling != nil {
		if err := n.Sampling.Validate(); err != nil {
			return err
		}
	}
	if n.Mechanism == Shotgun {
		if n.ShotgunSizes != nil {
			if err := n.ShotgunSizes.Validate(); err != nil {
				return err
			}
		} else if _, err := btb.ShotgunSizesForBudget(n.BTBEntries); err != nil {
			return err
		}
	}
	return nil
}

// Result is the outcome of one simulation.
type Result struct {
	Workload  string
	Mechanism Mechanism

	Core core.Stats
	Hier uncore.Stats

	// BTBMisses is the engine's first-encounter miss count.
	BTBMisses uint64
	// PrefetchAccuracy is Figure 10's metric.
	PrefetchAccuracy float64

	// Sampled carries the per-unit confidence intervals of a sampled
	// run; nil for exact runs (and omitted from stored records, so
	// exact-run record encodings are unchanged).
	Sampled *SampledSummary `json:",omitempty"`
}

// IPC returns the measured instructions per cycle.
func (r Result) IPC() float64 { return r.Core.IPC() }

// BTBMPKI returns BTB misses per kilo-instruction (Table 1).
func (r Result) BTBMPKI() float64 { return r.Core.MPKI(r.BTBMisses) }

// L1IMPKI returns demand L1-I misses per kilo-instruction.
func (r Result) L1IMPKI() float64 {
	return r.Core.MPKI(r.Hier.DemandFetches - r.Hier.DemandL1IHits - r.Hier.DemandPrefBufHits)
}

// AvgDataFillCycles returns the mean L1-D miss fill latency (Figure 11).
func (r Result) AvgDataFillCycles() float64 { return r.Hier.AvgDataFillCycles() }

// Speedup returns this result's IPC relative to a baseline result.
func (r Result) Speedup(baseline Result) float64 {
	b := baseline.IPC()
	if b == 0 {
		return 0
	}
	return r.IPC() / b
}

// StallCoverage returns the fraction of the baseline's front-end stall
// cycles this mechanism removed, normalized per instruction (Figure 6's
// metric).
func (r Result) StallCoverage(baseline Result) float64 {
	if baseline.Core.Instructions == 0 || r.Core.Instructions == 0 {
		return 0
	}
	base := float64(baseline.Core.FrontEndStallCycles) / float64(baseline.Core.Instructions)
	mine := float64(r.Core.FrontEndStallCycles) / float64(r.Core.Instructions)
	if base == 0 {
		return 0
	}
	cov := 1 - mine/base
	if cov < 0 {
		cov = 0
	}
	return cov
}

// Run executes one single-core simulation to completion. It is the N=1
// special case of RunScenario, kept as a direct serial path so its
// cycle-for-cycle behaviour (and therefore the golden corpus) is pinned
// by construction.
func Run(cfg Config) (Result, error) {
	return runSingle(cfg, nil)
}

// RunStream executes one single-core simulation driven by an externally
// supplied retire-order block stream (e.g. a recorded trace replayed
// through trace.Stream) instead of the profile's walker. The config
// still names the workload: its program supplies the predecode image
// and data-side parameters, so the stream must have been recorded from
// (or be consistent with) that program's address space.
func RunStream(cfg Config, stream workload.Stream) (Result, error) {
	if stream == nil {
		return Result{}, fmt.Errorf("sim: RunStream requires a stream")
	}
	if cfg.Normalized().Contexts > 1 {
		return Result{}, fmt.Errorf("sim: RunStream requires a single-context core")
	}
	return runSingle(cfg, stream)
}

// contextSalt decorrelates the per-context walker seeds of a
// multi-context core. Context 0 is unsalted: its stream is exactly the
// single-context one.
func contextSalt(k int) uint64 {
	return uint64(k) * 0xbf58476d1ce4e5b9
}

// runSingle is the shared body of Run and RunStream: a nil stream means
// "walk the profile's program".
func runSingle(cfg Config, stream workload.Stream) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	cfg.setDefaults()

	prof, err := workload.Get(cfg.Workload)
	if err != nil {
		return Result{}, err
	}
	// The program and its predecode image are process-wide shared,
	// immutable artifacts: built once per workload, walked by every
	// simulation (serial or concurrent) of that workload.
	prog := prof.Program()
	if stream == nil {
		stream = workload.NewWalkerConfig(prog, prof.WalkSeed, prof.Walk)
	}
	dec := prof.Decoder()

	ucfg := uncore.DefaultConfig()
	if cfg.Mechanism == Confluence {
		// SHIFT's virtualized history and index displace LLC capacity.
		ucfg.LLCReserveBytes = prefetch.ConfluenceLLCReserveBytes
	}
	hier := uncore.New(ucfg)

	ctx := prefetch.Context{Hier: hier, Dec: dec}
	engine, err := buildEngine(ctx, cfg)
	if err != nil {
		return Result{}, err
	}

	ccfg := core.Config{
		CLZTage:    cfg.BPU == BPUCLZ,
		LoadFrac:   prof.LoadFrac,
		DataBlocks: prof.DataBlocks,
		DataZipfS:  prof.DataZipfS,
		DataSeed:   prof.WalkSeed ^ 0xd00d,
	}
	var c *core.Core
	if cfg.Contexts > 1 {
		streams := make([]workload.Stream, cfg.Contexts)
		streams[0] = stream
		for k := 1; k < cfg.Contexts; k++ {
			streams[k] = workload.NewWalkerConfig(prog, prof.WalkSeed^contextSalt(k), prof.Walk)
		}
		c = core.NewMultiContext(ccfg, streams, engine, hier)
	} else {
		c = core.New(ccfg, stream, engine, hier)
	}

	if cfg.Sampling != nil {
		return runSampled(cfg, c, engine)
	}

	// Warmup: populate caches, BTBs, predictor, history.
	c.Run(cfg.WarmupInstr)

	// SMARTS-style sampling: Samples measurement windows separated by
	// unmeasured gaps.
	res := Result{Workload: cfg.Workload, Mechanism: cfg.Mechanism}
	perWindow := cfg.MeasureInstr / uint64(cfg.Samples)
	for s := 0; s < cfg.Samples; s++ {
		if s > 0 && cfg.SkipInstr > 0 {
			c.Run(cfg.SkipInstr)
		}
		c.ResetStats()
		c.Run(perWindow)
		accumulate(&res, c, engine)
	}
	res.PrefetchAccuracy = prefetchAccuracy(res.Hier)
	return res, nil
}

// MustRun is Run for static configurations.
func MustRun(cfg Config) Result {
	r, err := Run(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

func accumulate(res *Result, c *core.Core, engine prefetch.Engine) {
	cs := c.Stats()
	res.Core = addCoreStats(res.Core, cs)
	res.Hier = addHierStats(res.Hier, c.Hierarchy().Stats())
	res.BTBMisses += engine.BTBMisses()
}

func addCoreStats(a, b core.Stats) core.Stats {
	a.Cycles += b.Cycles
	a.Instructions += b.Instructions
	a.FrontEndStallCycles += b.FrontEndStallCycles
	a.BackEndStallCycles += b.BackEndStallCycles
	a.FetchStallCycles += b.FetchStallCycles
	a.DecodeRedirects += b.DecodeRedirects
	a.ExecRedirects += b.ExecRedirects
	a.DirMispredicts += b.DirMispredicts
	a.RASMispredicts += b.RASMispredicts
	a.CondBranches += b.CondBranches
	a.Branches += b.Branches
	return a
}

func addHierStats(a, b uncore.Stats) uncore.Stats {
	a.DemandFetches += b.DemandFetches
	a.DemandL1IHits += b.DemandL1IHits
	a.DemandPrefBufHits += b.DemandPrefBufHits
	a.DemandInflight += b.DemandInflight
	a.DemandLLCHits += b.DemandLLCHits
	a.DemandMemFills += b.DemandMemFills
	a.PrefetchesIssued += b.PrefetchesIssued
	a.PrefetchesRedundant += b.PrefetchesRedundant
	a.PrefetchLLCHits += b.PrefetchLLCHits
	a.PrefetchMemFills += b.PrefetchMemFills
	a.PrefetchUsefulInflight += b.PrefetchUsefulInflight
	a.DataAccesses += b.DataAccesses
	a.DataL1DHits += b.DataL1DHits
	a.DataLLCHits += b.DataLLCHits
	a.DataMemFills += b.DataMemFills
	a.DataFillCycles += b.DataFillCycles
	a.DataFillSamples += b.DataFillSamples
	return a
}

// prefetchAccuracy computes Figure 10's metric: the fraction of issued
// prefetches later used by a demand fetch (from the buffer or in flight).
func prefetchAccuracy(acc uncore.Stats) float64 {
	if acc.PrefetchesIssued == 0 {
		return 0
	}
	useful := acc.DemandPrefBufHits + acc.PrefetchUsefulInflight
	return float64(useful) / float64(acc.PrefetchesIssued)
}

func buildEngine(ctx prefetch.Context, cfg Config) (prefetch.Engine, error) {
	switch cfg.Mechanism {
	case None:
		return prefetch.NewNone(ctx, cfg.BTBEntries), nil
	case FDIP:
		return prefetch.NewFDIP(ctx, cfg.BTBEntries), nil
	case RDIP:
		return prefetch.NewRDIP(ctx, cfg.BTBEntries), nil
	case Delta:
		return prefetch.NewDelta(ctx, cfg.BTBEntries), nil
	case Boomerang:
		return prefetch.NewBoomerang(ctx, cfg.BTBEntries), nil
	case Confluence:
		return prefetch.NewConfluence(ctx), nil
	case Ideal:
		return prefetch.NewIdeal(ctx), nil
	case Shotgun:
		sizes := cfg.ShotgunSizes
		if sizes == nil {
			s, err := btb.ShotgunSizesForBudget(cfg.BTBEntries)
			if err != nil {
				return nil, err
			}
			sizes = &s
		}
		sz := *sizes
		if cfg.RegionMode == prefetch.RegionNone {
			// "No bit vector": the footprint bits buy more U-BTB
			// entries at equal storage (Section 6.3).
			sz.UEntries = scaleNoVectorEntries(sz.UEntries, cfg.Layout.Bits())
		}
		return prefetch.NewShotgun(ctx, prefetch.ShotgunConfig{
			Sizes:  sz,
			Layout: cfg.Layout,
			Mode:   cfg.RegionMode,
		}), nil
	}
	return nil, fmt.Errorf("sim: unknown mechanism %q", cfg.Mechanism)
}

// scaleNoVectorEntries grows the U-BTB entry count to spend the removed
// footprint bits, rounding down to a factorable geometry.
func scaleNoVectorEntries(entries, footBits int) int {
	full := btb.UEntryBaseBits + 2*footBits
	scaled := entries * full / btb.UEntryBaseBits
	for n := scaled; n > entries; n-- {
		if factorable(n) {
			return n
		}
	}
	return entries
}

func factorable(n int) bool {
	for _, w := range []int{4, 8, 6, 3, 2, 12, 16, 5, 7, 9, 11, 13, 1} {
		if n%w != 0 {
			continue
		}
		s := n / w
		if s > 0 && s&(s-1) == 0 {
			return true
		}
	}
	return false
}
