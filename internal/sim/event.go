// The event-driven scenario kernel. runLockstep ticks every core every
// cycle, so cost scales with cycles × cores even when most cores are
// stalled on L1-I/LLC fills — the common case the paper studies. This
// kernel advances a shared clock straight to the next pending event and
// ticks only the cores that are active in that cycle, which is what
// makes 64–256-core interference sweeps tractable.
//
// Bit-identity with the lockstep engine is the design invariant, not an
// approximation target:
//
//   - Activity: core.NextEvent returns the earliest cycle at which the
//     core's Tick does anything beyond idle accounting. The kernel keeps
//     one cached deadline per core and only ever ticks a core at exactly
//     that cycle, so every skipped cycle is provably idle.
//   - Idle accounting: an idle Tick mutates nothing but the stall
//     counters, Cycles and the clock, and touches no shared state
//     (PollArrivals early-returns on the next-arrival watermark, the
//     mesh fluid queue integrates lazily inside Traverse, the caches
//     are time-free). core.AdvanceIdle bulk-applies exactly that, so a
//     core catching up over a skipped span lands in the same state a
//     cycle-by-cycle execution would reach.
//   - Interleaving: within an event cycle, active cores tick in the
//     same canonical index order the lockstep loop uses, so the shared
//     LLC and mesh observe the identical (cycle, core) call sequence.
//   - Isolation of deadlines: one core's activity can change another's
//     *future* latencies (LLC eviction, mesh backlog) but never an
//     already-pending deadline — those are fixed timestamps (fill
//     completion, stall expiry, ROB head completion) — so cached
//     deadlines of idle cores stay valid between their ticks.
//
// TestEventKernelMatchesLockstep holds the two engines bit-equal across
// core counts and all mechanisms, and the golden corpus pins the
// results at scale.

package sim

// runEvent executes a normalized scenario on the event kernel. It is a
// drop-in replacement for runLockstep with identical results.
func runEvent(sc Scenario) (ScenarioResult, error) {
	states, err := buildStates(sc)
	if err != nil {
		return ScenarioResult{}, err
	}

	// next[i] caches core i's pending-event deadline; a core is ticked
	// only in the cycle its deadline names. Like the lockstep loop,
	// finished cores keep running — their traffic is real — until the
	// event cycle in which the last live core finishes its schedule.
	next := make([]uint64, len(states))
	for i, cs := range states {
		next[i] = cs.c.NextEvent()
	}
	live := len(states)
	for live > 0 {
		clock := next[0]
		for _, nx := range next[1:] {
			if nx < clock {
				clock = nx
			}
		}
		if clock == ^uint64(0) {
			// NextEvent always has a finite deadline for a core with
			// trace left; reaching here means its contract broke.
			panic("sim: event kernel stalled with no pending event")
		}
		for i, cs := range states {
			// next[i] >= clock for every core (clock is the minimum), so
			// this picks exactly the cores whose deadline is due.
			if next[i] != clock {
				continue
			}
			c := cs.c
			// Lazy catch-up: account the idle span since the core's last
			// tick, then run the one active cycle.
			if lag := clock - c.Now(); lag > 0 {
				c.AdvanceIdle(lag)
			}
			c.Tick()
			if !cs.done {
				cs.step()
				if cs.done {
					live--
				}
			}
			next[i] = c.NextEvent()
		}
	}
	return results(states), nil
}
