package sim

import (
	"bytes"
	"testing"

	"shotgun/internal/isa"
	"shotgun/internal/trace"
	"shotgun/internal/workload"
)

// teeStream records every block it hands out.
type teeStream struct {
	s workload.Stream
	w *trace.Writer
	t *testing.T
}

func (ts teeStream) Next() isa.BasicBlock {
	bb := ts.s.Next()
	if err := ts.w.Write(bb); err != nil {
		ts.t.Fatalf("tee write: %v", err)
	}
	return bb
}

// TestTraceRoundTripIdenticalStats is the trace-driven-workload
// contract: recording the walker's stream while simulating, then
// replaying the recorded trace through the looping adapter, must
// produce bit-identical results — same core stats, same hierarchy
// counters, same derived metrics.
func TestTraceRoundTripIdenticalStats(t *testing.T) {
	cfg := tinyCfg("Nutch", Shotgun)
	prof, err := workload.Get(cfg.Workload)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	walker := workload.NewWalkerConfig(prof.Program(), prof.WalkSeed, prof.Walk)
	recorded, err := RunStream(cfg, teeStream{s: walker, w: tw, t: t})
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	// The walker-driven RunStream must itself match plain Run (same
	// walker construction, same engine).
	direct := MustRun(cfg)
	if recorded != direct {
		t.Fatalf("teed run drifted from Run:\n%+v\n%+v", recorded, direct)
	}

	stream, err := trace.NewStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := RunStream(cfg, stream)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != recorded {
		t.Fatalf("trace replay drifted from the recorded run:\nreplayed: %+v\nrecorded: %+v",
			replayed, recorded)
	}
	// The recorded span covered the whole simulation, so the replay
	// never needed to loop.
	if stream.Loops != 0 {
		t.Fatalf("replay looped %d times over a full-length trace", stream.Loops)
	}
}

// TestRunStreamLooping drives a simulation longer than the recorded
// trace: the adapter must loop (bounded memory, endless supply) and the
// simulation must still complete with sane results.
func TestRunStreamLooping(t *testing.T) {
	prof := workload.MustGet("Nutch")
	walker := workload.NewWalkerConfig(prof.Program(), prof.WalkSeed, prof.Walk)
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// ~10K blocks is far fewer than the run consumes.
	for i := 0; i < 10_000; i++ {
		if err := tw.Write(walker.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	stream, err := trace.NewStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunStream(tinyCfg("Nutch", FDIP), stream)
	if err != nil {
		t.Fatal(err)
	}
	if res.Core.Instructions < 80_000 {
		t.Fatalf("instructions = %d", res.Core.Instructions)
	}
	if stream.Loops == 0 {
		t.Fatal("short trace never looped")
	}
}

func TestRunStreamNil(t *testing.T) {
	if _, err := RunStream(tinyCfg("Nutch", None), nil); err == nil {
		t.Fatal("nil stream accepted")
	}
}
