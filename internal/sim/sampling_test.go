package sim

import (
	"bytes"
	"testing"
	"time"
)

// sampledCfg is the quick sampled counterpart of quickCfg: the same
// workload/mechanism with a periodic-sampling schedule whose total
// stream traversal is comparable to the exact run's measurement.
func sampledCfg(wl string, m Mechanism) Config {
	cfg := quickCfg(wl, m)
	cfg.Sampling = &Sampling{
		PeriodBlocks: 8192,
		WarmupBlocks: 512,
		UnitBlocks:   1024,
		Units:        12,
	}
	return cfg
}

func TestSampledRunReportsCI(t *testing.T) {
	r := MustRun(sampledCfg("Zeus", Shotgun))
	if r.Sampled == nil {
		t.Fatal("sampled run returned no summary")
	}
	s := r.Sampled
	if s.Units != 12 {
		t.Fatalf("units = %d, want 12", s.Units)
	}
	if s.IPC.Mean <= 0 || s.IPC.Mean > 3 {
		t.Fatalf("sampled IPC mean = %v", s.IPC.Mean)
	}
	if s.IPC.HalfWidth <= 0 {
		t.Fatalf("sampled IPC half-width = %v (want > 0 for heterogeneous units)", s.IPC.HalfWidth)
	}
	if s.IPC.Units != s.Units || s.L1IMPKI.Units != s.Units || s.BTBMPKI.Units != s.Units {
		t.Fatalf("estimate unit counts %d/%d/%d do not match %d",
			s.IPC.Units, s.L1IMPKI.Units, s.BTBMPKI.Units, s.Units)
	}
	if s.WarmInstr == 0 || s.MeasuredInstr == 0 {
		t.Fatalf("warm=%d measured=%d instructions", s.WarmInstr, s.MeasuredInstr)
	}
	if cov := s.Coverage(); cov <= 0 || cov >= 0.5 {
		t.Fatalf("coverage = %v, want a small detailed fraction", cov)
	}
	if s.SkimmedInstr != 0 {
		t.Fatalf("full-gap warming skipped %d instructions", s.SkimmedInstr)
	}
	// The aggregate counters hold the measured units only, so the
	// whole-run IPC (ratio of sums) and the per-unit mean (mean of
	// ratios) describe the same units; they differ by unit-duration
	// weighting but must stay in the same neighbourhood.
	if ipc := r.IPC(); relErr(ipc, s.IPC.Mean) > 0.25 {
		t.Fatalf("aggregate IPC %v far from per-unit mean %v", ipc, s.IPC.Mean)
	}
}

func TestSampledDeterministic(t *testing.T) {
	a := MustRun(sampledCfg("Nutch", Boomerang))
	b := MustRun(sampledCfg("Nutch", Boomerang))
	if a.Core != b.Core || *a.Sampled != *b.Sampled {
		t.Fatalf("sampled results differ:\n%+v\n%+v", a, b)
	}
}

func relErr(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / b
}

// TestSampledMatchesExactWithinCI is the accuracy keystone: the sampled
// estimate must land within its own reported 95% confidence interval of
// the exact run's IPC (with the half-width doubled as slack for the
// systematic warm-up bias a finite W cannot fully remove), while
// simulating only a fraction of the stream in detail.
func TestSampledMatchesExactWithinCI(t *testing.T) {
	cases := []struct {
		name     string
		m        Mechanism
		funcWarm uint64 // 0 = full-gap SMARTS warming
	}{
		{"none", None, 0},
		{"shotgun", Shotgun, 0},
		{"shotgun-bounded-warm", Shotgun, 8192},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			exactCfg := quickCfg("Zeus", tc.m)
			exactCfg.WarmupInstr = 300_000
			exactCfg.MeasureInstr = 600_000
			exact := MustRun(exactCfg)

			cfg := exactCfg
			cfg.Sampling = &Sampling{
				PeriodBlocks:   16384,
				WarmupBlocks:   1024,
				UnitBlocks:     1024,
				FuncWarmBlocks: tc.funcWarm,
				Units:          16,
			}
			sampled := MustRun(cfg)
			s := sampled.Sampled
			if s == nil {
				t.Fatal("no sampled summary")
			}
			t.Logf("%s: exact IPC %.4f, sampled %v (coverage %.3f, skipped %d)",
				tc.name, exact.IPC(), s.IPC, s.Coverage(), s.SkimmedInstr)
			diff := relErr(s.IPC.Mean, exact.IPC())
			slack := 2 * s.IPC.HalfWidth
			if d := s.IPC.Mean - exact.IPC(); d > slack || -d > slack {
				t.Fatalf("sampled IPC %v outside 2x CI of exact %v (rel err %.3f)",
					s.IPC, exact.IPC(), diff)
			}
			if diff > 0.10 {
				t.Fatalf("sampled IPC %v rel err %.3f vs exact %v exceeds 10%%",
					s.IPC.Mean, diff, exact.IPC())
			}
		})
	}
}

// TestSampledFasterThanExact checks the point of the mode: traversing
// at least the exact run's stream span, bounded-window sampling must be
// well under the exact run's wall clock (the 10x acceptance gate lives
// in BenchmarkSampledThroughput over a long trace; this in-tree smoke
// uses 2x so short quick runs stay robust under timer noise).
func TestSampledFasterThanExact(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	cfg := quickCfg("Zeus", Shotgun)
	cfg.WarmupInstr = 100_000
	cfg.MeasureInstr = 1_500_000
	start := time.Now()
	exact := MustRun(cfg)
	exactDur := time.Since(start)

	scfg := cfg
	scfg.Sampling = &Sampling{
		PeriodBlocks:   65536,
		WarmupBlocks:   256,
		UnitBlocks:     256,
		FuncWarmBlocks: 2048,
		Units:          8,
	}
	start = time.Now()
	sampled := MustRun(scfg)
	sampledDur := time.Since(start)

	total := sampled.Sampled.TotalInstr()
	if total < exact.Core.Instructions {
		t.Fatalf("sampled traversal %d below exact measurement %d", total, exact.Core.Instructions)
	}
	t.Logf("exact %v, sampled %v (%.1fx) over >= %d instructions",
		exactDur, sampledDur, float64(exactDur)/float64(sampledDur), total)
	if sampledDur*2 > exactDur {
		t.Fatalf("sampled run %v not at least 2x faster than exact %v", sampledDur, exactDur)
	}
}

func TestSampledAdaptiveEscalation(t *testing.T) {
	cfg := sampledCfg("Zeus", None)
	cfg.Sampling.Units = 4
	cfg.Sampling.MaxUnits = 64
	cfg.Sampling.TargetCI = 0.01
	r := MustRun(cfg)
	if r.Sampled.Units < 4 {
		t.Fatalf("units = %d, below the baseline", r.Sampled.Units)
	}
	if r.Sampled.Units > 64 {
		t.Fatalf("units = %d, above the cap", r.Sampled.Units)
	}
	// Escalation stops either at the target or at the cap; whichever,
	// the reported estimate must reflect every measured unit.
	if r.Sampled.IPC.Units != r.Sampled.Units {
		t.Fatalf("estimate over %d units, summary says %d", r.Sampled.IPC.Units, r.Sampled.Units)
	}
	if r.Sampled.Units < 64 && r.Sampled.IPC.RelHalfWidth() > 0.01 {
		t.Fatalf("stopped at %d units with rel CI %.4f above target", r.Sampled.Units, r.Sampled.IPC.RelHalfWidth())
	}
}

func TestSamplingValidation(t *testing.T) {
	bad := []Sampling{
		{PeriodBlocks: 0, UnitBlocks: 10},
		{PeriodBlocks: 100, UnitBlocks: 0},
		{PeriodBlocks: 100, WarmupBlocks: 90, UnitBlocks: 20},
		{PeriodBlocks: 1 << 60, UnitBlocks: 10},
		{PeriodBlocks: 100, UnitBlocks: 10, Units: -1},
		{PeriodBlocks: 100, UnitBlocks: 10, Units: 1 << 20},
		{PeriodBlocks: 100, UnitBlocks: 10, MaxUnits: 1 << 20},
		{PeriodBlocks: 100, UnitBlocks: 10, Units: 8, MaxUnits: 4},
		{PeriodBlocks: 100, UnitBlocks: 10, TargetCI: -0.5},
		{PeriodBlocks: 100, UnitBlocks: 10, TargetCI: 1.5},
	}
	for i, s := range bad {
		s := s
		cfg := quickCfg("Zeus", None)
		cfg.Sampling = &s
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid sampling %+v accepted", i, s)
		}
	}
	cfg := quickCfg("Zeus", None)
	cfg.Sampling = &Sampling{PeriodBlocks: 4096, WarmupBlocks: 64, UnitBlocks: 64, TargetCI: 0.03}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid sampling rejected: %v", err)
	}
}

func TestSamplingScenarioRestrictions(t *testing.T) {
	cfg := sampledCfg("Zeus", None)
	if err := SingleCore(cfg).Validate(); err != nil {
		t.Fatalf("single-core sampled scenario rejected: %v", err)
	}
	multi := Scenario{Cores: []Config{cfg, quickCfg("Zeus", None)}}
	if err := multi.Validate(); err == nil {
		t.Fatal("multi-core sampled scenario accepted")
	}
	odd := SingleCore(cfg)
	odd.LLCSizeBytes = 2 << 20
	if err := odd.Validate(); err == nil {
		t.Fatal("sampled scenario with non-default LLC accepted")
	}
}

// TestSamplingChangesIdentityOnlyWhenOn pins the compatibility
// contract: a nil Sampling leaves the canonical encoding — and
// therefore every memo key, store hash, and dispatch lease of existing
// exact runs — byte-identical to a build that never heard of sampling,
// while a non-nil block must produce a distinct identity.
func TestSamplingChangesIdentityOnlyWhenOn(t *testing.T) {
	exact := SingleCore(quickCfg("Zeus", Shotgun))
	if b := exact.CanonicalBytes(); bytes.Contains(b, []byte("Sampling")) {
		t.Fatalf("exact-run canonical bytes mention Sampling: %s", b)
	}
	sampled := SingleCore(sampledCfg("Zeus", Shotgun))
	if bytes.Equal(exact.CanonicalBytes(), sampled.CanonicalBytes()) {
		t.Fatal("sampled scenario shares the exact scenario's identity")
	}
	a := SingleCore(sampledCfg("Zeus", Shotgun))
	b := SingleCore(sampledCfg("Zeus", Shotgun))
	b.Cores[0].Sampling.UnitBlocks++
	if bytes.Equal(a.CanonicalBytes(), b.CanonicalBytes()) {
		t.Fatal("distinct sampling blocks share one identity")
	}
	if compareSampling(a.Cores[0].Sampling, b.Cores[0].Sampling) == 0 {
		t.Fatal("compareSampling cannot distinguish distinct blocks")
	}
	if compareSampling(nil, a.Cores[0].Sampling) != -1 || compareSampling(a.Cores[0].Sampling, nil) != 1 {
		t.Fatal("nil sampling must rank before non-nil")
	}
}

// TestSampledNormalizedExplicit checks defaults materialize in the
// canonical form without mutating the caller's struct.
func TestSampledNormalizedExplicit(t *testing.T) {
	cfg := quickCfg("Zeus", None)
	cfg.Sampling = &Sampling{PeriodBlocks: 4096, UnitBlocks: 64}
	n := cfg.Normalized()
	if n.Sampling.Units == 0 || n.Sampling.MaxUnits == 0 {
		t.Fatalf("normalized sampling left defaults implicit: %+v", *n.Sampling)
	}
	if cfg.Sampling.Units != 0 {
		t.Fatalf("Normalized mutated the caller's sampling block: %+v", *cfg.Sampling)
	}
}
