package sim

import (
	"testing"

	"shotgun/internal/btb"
	"shotgun/internal/prefetch"
)

func quickCfg(wl string, m Mechanism) Config {
	return Config{
		Workload: wl, Mechanism: m,
		WarmupInstr: 150_000, MeasureInstr: 200_000, Samples: 1,
	}
}

func TestRunAllMechanisms(t *testing.T) {
	for _, m := range Mechanisms() {
		m := m
		t.Run(string(m), func(t *testing.T) {
			t.Parallel()
			r, err := Run(quickCfg("Zeus", m))
			if err != nil {
				t.Fatal(err)
			}
			if r.Core.Instructions < 200_000 {
				t.Fatalf("instructions = %d", r.Core.Instructions)
			}
			if r.IPC() <= 0 || r.IPC() > 3 {
				t.Fatalf("IPC = %v", r.IPC())
			}
		})
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := Run(quickCfg("NoSuch", None)); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestUnknownMechanism(t *testing.T) {
	if _, err := Run(quickCfg("Zeus", Mechanism("bogus"))); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
}

func TestDeterministicResults(t *testing.T) {
	a := MustRun(quickCfg("Nutch", Boomerang))
	b := MustRun(quickCfg("Nutch", Boomerang))
	if a.Core != b.Core {
		t.Fatalf("results differ:\n%+v\n%+v", a.Core, b.Core)
	}
}

func TestSpeedupOrdering(t *testing.T) {
	base := MustRun(quickCfg("Zeus", None))
	ideal := MustRun(quickCfg("Zeus", Ideal))
	shotgun := MustRun(quickCfg("Zeus", Shotgun))
	if ideal.Speedup(base) <= 1 {
		t.Fatalf("ideal speedup %.3f <= 1", ideal.Speedup(base))
	}
	if shotgun.Speedup(base) <= 1 {
		t.Fatalf("shotgun speedup %.3f <= 1", shotgun.Speedup(base))
	}
	if shotgun.IPC() > ideal.IPC() {
		t.Fatalf("shotgun IPC %.3f beats ideal %.3f", shotgun.IPC(), ideal.IPC())
	}
}

func TestStallCoverageBounds(t *testing.T) {
	base := MustRun(quickCfg("Zeus", None))
	for _, m := range []Mechanism{Boomerang, Shotgun, Ideal} {
		r := MustRun(quickCfg("Zeus", m))
		c := r.StallCoverage(base)
		if c < 0 || c > 1 {
			t.Fatalf("%s coverage %v out of [0,1]", m, c)
		}
	}
	if base.StallCoverage(base) != 0 {
		t.Fatal("self-coverage must be zero")
	}
}

func TestShotgunSizeOverride(t *testing.T) {
	sizes := btb.Sizes{UEntries: 768, CEntries: 64, REntries: 256}
	cfg := quickCfg("Nutch", Shotgun)
	cfg.ShotgunSizes = &sizes
	r := MustRun(cfg)
	if r.Core.Instructions == 0 {
		t.Fatal("override run failed")
	}
}

func TestRegionModeVariants(t *testing.T) {
	for _, mode := range []prefetch.RegionMode{
		prefetch.RegionVector, prefetch.RegionNone,
		prefetch.RegionEntire, prefetch.RegionFiveBlocks,
	} {
		cfg := quickCfg("Nutch", Shotgun)
		cfg.RegionMode = mode
		r := MustRun(cfg)
		if r.Core.Instructions == 0 {
			t.Fatalf("mode %v failed", mode)
		}
	}
}

func TestConfluenceLLCReserveApplied(t *testing.T) {
	// Confluence must run with a smaller effective LLC; detectable via
	// the mechanism completing and the reserve constant being sane.
	if prefetch.ConfluenceLLCReserveBytes <= 0 {
		t.Fatal("no LLC reserve configured")
	}
	r := MustRun(quickCfg("Nutch", Confluence))
	if r.Core.Instructions == 0 {
		t.Fatal("confluence run failed")
	}
}

func TestBudgetSweepRuns(t *testing.T) {
	for _, budget := range []int{512, 8192} {
		for _, m := range []Mechanism{Boomerang, Shotgun} {
			cfg := quickCfg("Nutch", m)
			cfg.BTBEntries = budget
			r := MustRun(cfg)
			if r.Core.Instructions == 0 {
				t.Fatalf("budget %d %s failed", budget, m)
			}
		}
	}
}

func TestMetricsFinite(t *testing.T) {
	r := MustRun(quickCfg("Streaming", Shotgun))
	if r.BTBMPKI() < 0 || r.L1IMPKI() < 0 {
		t.Fatalf("negative MPKI: %v %v", r.BTBMPKI(), r.L1IMPKI())
	}
	if r.PrefetchAccuracy < 0 || r.PrefetchAccuracy > 1 {
		t.Fatalf("accuracy %v", r.PrefetchAccuracy)
	}
	if r.AvgDataFillCycles() <= 0 {
		t.Fatal("no data-fill samples")
	}
}

func TestNoVectorGrowsUBTB(t *testing.T) {
	n := scaleNoVectorEntries(1536, 8)
	if n <= 1536 {
		t.Fatalf("no-vector U-BTB not grown: %d", n)
	}
	if !factorable(n) {
		t.Fatalf("grown size %d not factorable", n)
	}
}

func TestValidate(t *testing.T) {
	good := []Config{
		{Workload: "Oracle", Mechanism: Shotgun},
		{Workload: "DB2", Mechanism: None, BTBEntries: 4096},
		{Workload: "Nutch", Mechanism: Shotgun,
			ShotgunSizes: &btb.Sizes{UEntries: 1536, CEntries: 64, REntries: 512}},
		// REntries == 0 is the no-RIB ablation, not an error.
		{Workload: "Nutch", Mechanism: Shotgun,
			ShotgunSizes: &btb.Sizes{UEntries: 1536, CEntries: 64, REntries: 0}},
		{Workload: "Oracle", Mechanism: Delta},
		{Workload: "Oracle", Mechanism: Shotgun, BPU: "clz"},
		{Workload: "Oracle", Mechanism: Shotgun, BPU: "tage"},
		{Workload: "Oracle", Mechanism: Boomerang, Contexts: MaxContexts},
	}
	for i, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("good config %d rejected: %v", i, err)
		}
	}
	bad := []Config{
		{Workload: "NoSuch", Mechanism: Shotgun},
		{Workload: "Oracle", Mechanism: "warp"},
		{Workload: "Oracle", Mechanism: Shotgun, BTBEntries: -8},
		{Workload: "Oracle", Mechanism: Shotgun, BTBEntries: 1000}, // no size mapping
		{Workload: "Oracle", Mechanism: None, Samples: -1},
		{Workload: "Oracle", Mechanism: Shotgun, RegionMode: 99},
		// Explicit sizes that would panic inside NewShotgun must be
		// rejected up front (the HTTP server trusts Validate).
		{Workload: "Oracle", Mechanism: Shotgun, ShotgunSizes: &btb.Sizes{UEntries: -5, CEntries: 64, REntries: 512}},
		{Workload: "Oracle", Mechanism: Shotgun, ShotgunSizes: &btb.Sizes{UEntries: 1536, CEntries: 0, REntries: 512}},
		{Workload: "Oracle", Mechanism: Shotgun, ShotgunSizes: &btb.Sizes{UEntries: 1536, CEntries: 64, REntries: 509}}, // unfactorable
		{Workload: "Oracle", Mechanism: Shotgun, BPU: "gshare"},
		{Workload: "Oracle", Mechanism: Shotgun, Contexts: -1},
		{Workload: "Oracle", Mechanism: Shotgun, Contexts: MaxContexts + 1},
		// Sampling is single-context stream mode; a multi-context run has
		// no functional-warming path per context.
		{Workload: "Oracle", Mechanism: Shotgun, Contexts: 2,
			Sampling: &Sampling{PeriodBlocks: 4096, UnitBlocks: 256}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d ran: %+v", i, cfg)
		}
	}
}
