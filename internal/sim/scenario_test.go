package sim

import (
	"bytes"
	"testing"

	"shotgun/internal/footprint"
	"shotgun/internal/prefetch"
)

func tinyCfg(wl string, m Mechanism) Config {
	return Config{
		Workload: wl, Mechanism: m,
		WarmupInstr: 60_000, MeasureInstr: 80_000, Samples: 1,
	}
}

// TestLockstepMatchesSerialSingleCore is the refactor's keystone: the
// lockstep multi-core engine, driven with exactly one core and the
// default shared uncore, must reproduce the classic serial simulation
// bit for bit. RunScenario routes the default N=1 shape down the serial
// path, so this test calls the lockstep engine directly — any drift
// between the two engines fails here, not in a golden diff.
func TestLockstepMatchesSerialSingleCore(t *testing.T) {
	for _, m := range []Mechanism{None, Shotgun, Confluence} {
		cfg := tinyCfg("Nutch", m)
		want := MustRun(cfg)
		got, err := runLockstep(SingleCore(cfg).Normalized())
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Cores) != 1 || got.Cores[0] != want {
			t.Fatalf("%s: lockstep single-core drifted from serial:\nlockstep: %+v\nserial:   %+v",
				m, got.Cores[0], want)
		}
	}
}

func TestRunScenarioSingleCoreEqualsRun(t *testing.T) {
	cfg := tinyCfg("Zeus", Shotgun)
	want := MustRun(cfg)
	got := MustRunScenario(SingleCore(cfg))
	if len(got.Cores) != 1 || got.Cores[0] != want {
		t.Fatalf("N=1 scenario differs from Run:\n%+v\n%+v", got.Cores[0], want)
	}
}

func TestScenarioDeterministic(t *testing.T) {
	sc := Scenario{Cores: []Config{
		tinyCfg("Nutch", Shotgun),
		tinyCfg("Nutch", FDIP),
	}}
	a := MustRunScenario(sc)
	b := MustRunScenario(sc)
	for i := range a.Cores {
		if a.Cores[i] != b.Cores[i] {
			t.Fatalf("core %d differs between identical runs:\n%+v\n%+v", i, a.Cores[i], b.Cores[i])
		}
	}
}

// TestCoRunnersDecorrelated: two cores running the identical spec must
// not execute in lockstep — index-salted walk/data seeds give each its
// own request sequence, so their measured windows differ.
func TestCoRunnersDecorrelated(t *testing.T) {
	sc := Scenario{Cores: []Config{
		tinyCfg("Nutch", None),
		tinyCfg("Nutch", None),
	}}
	res := MustRunScenario(sc)
	if res.Cores[0].Core == res.Cores[1].Core {
		t.Fatal("identical co-runners produced identical core stats (seeds not salted)")
	}
}

func TestHeterogeneousScenarioRuns(t *testing.T) {
	sc := Scenario{Cores: []Config{
		tinyCfg("Oracle", Shotgun),
		tinyCfg("DB2", Boomerang),
		tinyCfg("Nutch", None),
	}}
	res := MustRunScenario(sc)
	if len(res.Cores) != 3 {
		t.Fatalf("cores = %d", len(res.Cores))
	}
	for i, r := range res.Cores {
		if r.Core.Instructions < 80_000 {
			t.Fatalf("core %d instructions = %d", i, r.Core.Instructions)
		}
		if r.Workload != sc.Cores[i].Workload || r.Mechanism != sc.Cores[i].Mechanism {
			t.Fatalf("core %d identity wrong: %+v", i, r)
		}
		if r.IPC() <= 0 || r.IPC() > 3 {
			t.Fatalf("core %d IPC = %v", i, r.IPC())
		}
	}
}

// TestInterferenceEmergent checks the paper's Figure 11 effect now
// arises mechanically: co-runners on the shared LLC/NoC slow the
// primary core down and inflate its L1-D miss fill latency, and
// over-prefetching co-runners (entire-region) hurt strictly more than
// polite ones (8-bit vectors). Quick scale — the trends need warmed
// caches to be stable.
func TestInterferenceEmergent(t *testing.T) {
	quickCfg := func() Config {
		return Config{Workload: "Oracle", Mechanism: Shotgun,
			WarmupInstr: 300_000, MeasureInstr: 400_000, Samples: 1}
	}
	contended := func(entire bool) Result {
		cores := []Config{quickCfg()}
		for i := 0; i < 3; i++ {
			co := quickCfg()
			if entire {
				co.RegionMode = prefetch.RegionEntire
				co.Layout = footprint.Layout32
			}
			cores = append(cores, co)
		}
		return MustRunScenario(Scenario{Cores: cores}).Cores[0]
	}

	solo := MustRun(quickCfg())
	polite := contended(false)
	storm := contended(true)

	if !(storm.AvgDataFillCycles() > polite.AvgDataFillCycles() &&
		polite.AvgDataFillCycles() > solo.AvgDataFillCycles()) {
		t.Fatalf("L1-D fill latency not ordered storm > polite > solo: %.1f, %.1f, %.1f",
			storm.AvgDataFillCycles(), polite.AvgDataFillCycles(), solo.AvgDataFillCycles())
	}
	if !(storm.IPC() < polite.IPC() && polite.IPC() < solo.IPC()) {
		t.Fatalf("IPC not ordered storm < polite < solo: %.3f, %.3f, %.3f",
			storm.IPC(), polite.IPC(), solo.IPC())
	}
}

// TestConfluenceCoRunnersChargeReservePerCore: each Confluence engine
// virtualizes its own history image, so a scenario with two Confluence
// cores gives up twice the per-share reserve — observable as a smaller
// shared LLC than the same scenario with polite co-runners.
func TestConfluenceCoRunnersChargeReservePerCore(t *testing.T) {
	res := MustRunScenario(Scenario{Cores: []Config{
		tinyCfg("Nutch", Confluence),
		tinyCfg("Nutch", Confluence),
	}})
	if len(res.Cores) != 2 || res.Cores[0].Core.Instructions == 0 {
		t.Fatalf("confluence duo failed: %+v", res)
	}
}

func TestScenarioValidate(t *testing.T) {
	good := []Scenario{
		SingleCore(Config{Workload: "Oracle", Mechanism: Shotgun}),
		{Cores: []Config{
			{Workload: "Oracle", Mechanism: Shotgun},
			{Workload: "DB2", Mechanism: None},
		}},
		{Cores: []Config{{Workload: "Nutch", Mechanism: None}}, LLCSizeBytes: 4 << 20},
	}
	for i, sc := range good {
		if err := sc.Validate(); err != nil {
			t.Errorf("good scenario %d rejected: %v", i, err)
		}
	}
	tooMany := Scenario{}
	for i := 0; i <= MaxCores; i++ {
		tooMany.Cores = append(tooMany.Cores, Config{Workload: "Oracle", Mechanism: None})
	}
	bad := []Scenario{
		{},
		tooMany,
		{Cores: []Config{{Workload: "NoSuch", Mechanism: None}}},
		{Cores: []Config{{Workload: "Oracle", Mechanism: "warp"}}},
		{Cores: []Config{{Workload: "Oracle", Mechanism: None}}, LLCSizeBytes: -1},
		{Cores: []Config{{Workload: "Oracle", Mechanism: None}}, LLCSizeBytes: 4096},
		// Above the chip's 8MB NUCA: one HTTP-submittable scenario must
		// not be able to allocate an arbitrarily large cache.
		{Cores: []Config{{Workload: "Oracle", Mechanism: None}}, LLCSizeBytes: 1 << 40},
	}
	for i, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("bad scenario %d accepted", i)
		}
		if _, err := RunScenario(sc); err == nil {
			t.Errorf("bad scenario %d ran", i)
		}
	}
}

func TestScenarioNormalizedLLCDerivation(t *testing.T) {
	for _, tc := range []struct{ cores, want int }{
		{1, 1 << 20}, {2, 2 << 20}, {8, 8 << 20}, {16, 8 << 20},
	} {
		if got := DefaultLLCBytes(tc.cores); got != tc.want {
			t.Errorf("DefaultLLCBytes(%d) = %d, want %d", tc.cores, got, tc.want)
		}
	}
	sc := Scenario{Cores: []Config{
		{Workload: "Oracle", Mechanism: None},
		{Workload: "Oracle", Mechanism: None},
	}}
	if n := sc.Normalized(); n.LLCSizeBytes != 2<<20 {
		t.Fatalf("normalized LLC = %d, want %d", n.LLCSizeBytes, 2<<20)
	}
	// Explicit sizes survive normalization.
	sc.LLCSizeBytes = 4 << 20
	if n := sc.Normalized(); n.LLCSizeBytes != 4<<20 {
		t.Fatalf("explicit LLC clobbered: %d", n.LLCSizeBytes)
	}
}

func TestCanonicalBytesStable(t *testing.T) {
	sc := Scenario{Cores: []Config{
		{Workload: "Oracle", Mechanism: Shotgun},
		{Workload: "DB2", Mechanism: None},
	}}
	a, b := sc.CanonicalBytes(), sc.CanonicalBytes()
	if !bytes.Equal(a, b) {
		t.Fatal("canonical encoding unstable")
	}
	// A scenario's core list is a multiset: swapping cores is the SAME
	// scenario (one simulation, one store record, cluster-wide dedup) —
	// RunScenario maps results back to each caller's order.
	swapped := Scenario{Cores: []Config{sc.Cores[1], sc.Cores[0]}}
	if !bytes.Equal(a, swapped.CanonicalBytes()) {
		t.Fatal("permuted cores changed the content identity")
	}
	// A genuinely different core list is a different identity.
	other := Scenario{Cores: []Config{sc.Cores[0], sc.Cores[0]}}
	if bytes.Equal(a, other.CanonicalBytes()) {
		t.Fatal("distinct scenarios collided")
	}
}

// TestNewAxesKeyStability: the BPU and Contexts axes are omitempty
// fields whose default spellings normalize to the zero value, so every
// scenario key minted before the axes existed stays byte-identical —
// the store's content addresses survive without a FormatVersion bump.
func TestNewAxesKeyStability(t *testing.T) {
	plain := Scenario{Cores: []Config{{Workload: "Oracle", Mechanism: Shotgun}}}
	a := plain.CanonicalBytes()
	for _, field := range []string{"BPU", "Contexts", "bpu", "contexts"} {
		if bytes.Contains(a, []byte(field)) {
			t.Fatalf("default scenario encodes %q: %s", field, a)
		}
	}
	// The explicit default spellings are the same identity.
	tage := Scenario{Cores: []Config{{Workload: "Oracle", Mechanism: Shotgun, BPU: "tage", Contexts: 1}}}
	if !bytes.Equal(a, tage.CanonicalBytes()) {
		t.Fatalf("explicit defaults changed the identity:\n%s\n%s", a, tage.CanonicalBytes())
	}
	// Non-default values are distinct identities, and distinct from each
	// other.
	clz := Scenario{Cores: []Config{{Workload: "Oracle", Mechanism: Shotgun, BPU: BPUCLZ}}}
	smt := Scenario{Cores: []Config{{Workload: "Oracle", Mechanism: Shotgun, Contexts: 2}}}
	if bytes.Equal(a, clz.CanonicalBytes()) || bytes.Equal(a, smt.CanonicalBytes()) ||
		bytes.Equal(clz.CanonicalBytes(), smt.CanonicalBytes()) {
		t.Fatal("new-axis scenarios collided with the default identity")
	}
}
