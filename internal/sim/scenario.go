// This file is the scenario layer: a simulation is no longer "one core
// plus a background constant" but "N cores of a CMP sharing an uncore".
// Each core has its own workload, control-flow delivery mechanism and
// private caches; the LLC capacity and the mesh backlog are genuinely
// shared, so co-runner interference (the paper's Figure 11 over-prefetch
// effect, shared-LLC pressure, heterogeneous mixes) is emergent
// behaviour instead of a baked-in fluid-queue constant. The single-core
// simulation of the original evaluation is exactly the N=1 scenario.

package sim

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"shotgun/internal/btb"
	"shotgun/internal/core"
	"shotgun/internal/noc"
	"shotgun/internal/prefetch"
	"shotgun/internal/uncore"
	"shotgun/internal/workload"
)

// MaxCores is the largest scenario the simulator supports: one active
// core per tile of the biggest mesh on the NoC scaling ladder (the
// 16x16 scale-out design point). Scenarios up to 16 cores run on the
// Table 3 4x4 CMP exactly as before; larger ones move to the 8x8 and
// 16x16 meshes of noc.SharedConfig.
var MaxCores = noc.MaxTiles

// PerCoreLLCBytes is one core's modeled share of the 8MB NUCA LLC.
const PerCoreLLCBytes = 1 << 20

// TotalLLCBytes is the full Table 3 LLC capacity.
const TotalLLCBytes = 8 << 20

// Scenario describes one simulation of N cores over a shared uncore.
//
// A scenario's core list is a multiset: two scenarios whose Cores are
// permutations of each other describe the same simulation and share one
// content identity (Normalized sorts cores into the canonical order, and
// RunScenario maps per-core results back to the caller's order). Callers
// still read "their" core i at Cores[i] of the result — permuting the
// input permutes the output identically.
type Scenario struct {
	// Cores lists the per-core simulation specs, one per active core.
	// The caller's core 0 is the "primary" core by convention
	// (single-core views such as the /v1/sims API report the canonical
	// first core); canonical indices salt the per-core walk and data
	// seeds so identical co-runners do not execute in lockstep.
	Cores []Config
	// LLCSizeBytes is the total shared LLC capacity. Zero derives the
	// Table 3 share: PerCoreLLCBytes per active core, capped at the 8MB
	// NUCA total.
	LLCSizeBytes int
}

// SingleCore wraps one config as the N=1 scenario — the identity every
// config-keyed caller (harness memo, store, /v1/sims) now runs through.
func SingleCore(cfg Config) Scenario {
	return Scenario{Cores: []Config{cfg}}
}

// DefaultLLCBytes returns the derived shared-LLC capacity for an n-core
// scenario: each active core brings its 1MB NUCA share, up to the 8MB
// Table 3 total.
func DefaultLLCBytes(n int) int {
	if n < 1 {
		n = 1
	}
	b := n * PerCoreLLCBytes
	if b > TotalLLCBytes {
		b = TotalLLCBytes
	}
	return b
}

// compareConfigs is the total order behind the canonical core order:
// field-by-field on the normalized config, cheapest discriminators
// first. The order is arbitrary but frozen — golden scenarios (the
// interference sweep's primary-then-co-runners shape) are already
// canonically ordered under it, which keeps their executed core
// indices, and therefore their index-salted seeds, bit-stable.
func compareConfigs(a, b Config) int {
	if c := strings.Compare(a.Workload, b.Workload); c != 0 {
		return c
	}
	if c := strings.Compare(string(a.Mechanism), string(b.Mechanism)); c != 0 {
		return c
	}
	ints := [][2]int{
		{a.BTBEntries, b.BTBEntries},
		{a.Layout.Before, b.Layout.Before},
		{a.Layout.After, b.Layout.After},
		{int(a.RegionMode), int(b.RegionMode)},
		{sizesRank(a.ShotgunSizes), sizesRank(b.ShotgunSizes)},
		{a.Samples, b.Samples},
	}
	if a.ShotgunSizes != nil && b.ShotgunSizes != nil {
		ints = append(ints, [2]int{a.ShotgunSizes.UEntries, b.ShotgunSizes.UEntries},
			[2]int{a.ShotgunSizes.CEntries, b.ShotgunSizes.CEntries},
			[2]int{a.ShotgunSizes.REntries, b.ShotgunSizes.REntries})
	}
	for _, p := range ints {
		if p[0] != p[1] {
			if p[0] < p[1] {
				return -1
			}
			return 1
		}
	}
	for _, p := range [][2]uint64{
		{a.WarmupInstr, b.WarmupInstr},
		{a.MeasureInstr, b.MeasureInstr},
		{a.SkipInstr, b.SkipInstr},
	} {
		if p[0] != p[1] {
			if p[0] < p[1] {
				return -1
			}
			return 1
		}
	}
	// Sampling, BPU and Contexts compare last, appended to the frozen
	// order: their zero values (exact mode, default TAGE, single
	// context — every pre-axis config) rank before any non-default, so
	// existing canonical core orders are undisturbed.
	if c := compareSampling(a.Sampling, b.Sampling); c != 0 {
		return c
	}
	if c := strings.Compare(a.BPU, b.BPU); c != 0 {
		return c
	}
	switch {
	case a.Contexts < b.Contexts:
		return -1
	case a.Contexts > b.Contexts:
		return 1
	}
	return 0
}

// sizesRank orders the absence of an explicit size override before any
// explicit one.
func sizesRank(s *btb.Sizes) int {
	if s == nil {
		return 0
	}
	return 1
}

// Normalized returns the scenario in canonical form: every defaulted
// field made explicit (per-core configs normalized, the derived LLC
// capacity materialized) and the cores stable-sorted into the canonical
// order — exactly the values RunScenario would execute. Content
// identity (harness memo keys, store hashes) is derived from this form,
// so equivalent scenarios — including per-core permutations of each
// other — always collide and distinct ones never do.
func (s Scenario) Normalized() Scenario {
	n, _ := s.NormalizedPerm()
	return n
}

// NormalizedPerm returns the canonical scenario plus the permutation
// that links it to the caller's core order: perm[i] is the canonical
// position of input core i, so a result computed in canonical order
// reads back as out[i] = canonical.Cores[perm[i]]. The sort is stable,
// which makes the mapping well-defined even for duplicate configs (the
// k-th copy in input order is the k-th copy in canonical order).
func (s Scenario) NormalizedPerm() (Scenario, []int) {
	cores := make([]Config, len(s.Cores))
	for i, cfg := range s.Cores {
		cores[i] = cfg.Normalized()
	}
	order := make([]int, len(cores)) // order[k] = input index at canonical position k
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return compareConfigs(cores[order[a]], cores[order[b]]) < 0
	})
	sorted := make([]Config, len(cores))
	perm := make([]int, len(cores))
	for k, orig := range order {
		sorted[k] = cores[orig]
		perm[orig] = k
	}
	s.Cores = sorted
	if s.LLCSizeBytes == 0 {
		s.LLCSizeBytes = DefaultLLCBytes(len(sorted))
	}
	return s, perm
}

// CanonicalBytes returns the canonical encoding of the normalized
// scenario: the JSON of a struct with fixed field order — no maps, no
// formatting choices — stable across processes and platforms, and
// invariant under per-core permutation (Normalized sorts the cores).
// The harness memo uses it directly as a map key; internal/store hashes
// it for content addressing.
func (s Scenario) CanonicalBytes() []byte {
	b, err := json.Marshal(s.Normalized())
	if err != nil {
		// Scenario is a plain struct of scalars; Marshal cannot fail.
		panic(fmt.Sprintf("sim: marshal scenario: %v", err))
	}
	return b
}

// Validate reports whether the scenario describes a runnable
// simulation. Like Config.Validate it checks the normalized form.
func (s Scenario) Validate() error {
	if len(s.Cores) == 0 {
		return fmt.Errorf("sim: scenario needs at least one core")
	}
	if len(s.Cores) > MaxCores {
		return fmt.Errorf("sim: scenario has %d cores; the %d-tile mesh supports at most %d",
			len(s.Cores), MaxCores, MaxCores)
	}
	for i, cfg := range s.Cores {
		if err := cfg.Validate(); err != nil {
			return fmt.Errorf("sim: core %d: %w", i, err)
		}
		// Sampling is the single-core stream mode: the lockstep/event
		// multi-core engines simulate every cycle of every core and have
		// no functional-warming fast path, so a sampled config may only
		// take the Run path (one core, default LLC share).
		if cfg.Sampling != nil {
			if len(s.Cores) > 1 {
				return fmt.Errorf("sim: core %d: sampling requires a single-core scenario (got %d cores)", i, len(s.Cores))
			}
			if s.LLCSizeBytes != 0 && s.LLCSizeBytes != DefaultLLCBytes(1) {
				return fmt.Errorf("sim: sampling requires the default single-core LLC share (%d bytes, got %d)", DefaultLLCBytes(1), s.LLCSizeBytes)
			}
		}
	}
	if s.LLCSizeBytes < 0 {
		return fmt.Errorf("sim: negative LLC size %d", s.LLCSizeBytes)
	}
	if s.LLCSizeBytes != 0 && s.LLCSizeBytes < 64<<10 {
		return fmt.Errorf("sim: shared LLC of %d bytes is below the 64KB floor", s.LLCSizeBytes)
	}
	// The ceiling is the chip's whole NUCA cache: scenarios model this
	// CMP, and an unbounded size would let one (HTTP-submittable)
	// scenario eagerly allocate an arbitrarily large cache array.
	if s.LLCSizeBytes > TotalLLCBytes {
		return fmt.Errorf("sim: shared LLC of %d bytes exceeds the %d-byte Table 3 NUCA", s.LLCSizeBytes, TotalLLCBytes)
	}
	return nil
}

// ScenarioResult is the outcome of one scenario: one Result per core,
// in Cores order.
type ScenarioResult struct {
	Cores []Result
}

// RunScenario executes one scenario to completion. The default
// single-core scenario takes the exact serial path of Run — byte-
// identical results by construction — while every other shape runs the
// lockstep multi-core engine over one shared uncore. Execution happens
// in canonical core order (so permuted scenarios are literally one
// simulation); the returned Cores are mapped back to the caller's
// order, so result.Cores[i] always describes the caller's Cores[i].
func RunScenario(sc Scenario) (ScenarioResult, error) {
	if err := sc.Validate(); err != nil {
		return ScenarioResult{}, err
	}
	norm, perm := sc.NormalizedPerm()
	if len(norm.Cores) == 1 && norm.LLCSizeBytes == DefaultLLCBytes(1) {
		res, err := Run(norm.Cores[0])
		if err != nil {
			return ScenarioResult{}, err
		}
		return ScenarioResult{Cores: []Result{res}}, nil
	}
	canon, err := runEvent(norm)
	if err != nil {
		return ScenarioResult{}, err
	}
	return canon.Reorder(perm), nil
}

// Reorder maps a canonical-order result back to a caller's core order:
// out.Cores[i] = r.Cores[perm[i]], with perm as NormalizedPerm returns
// it. A memoized canonical result can be served to every permutation of
// its scenario this way.
func (r ScenarioResult) Reorder(perm []int) ScenarioResult {
	identity := true
	for i, k := range perm {
		if i != k {
			identity = false
			break
		}
	}
	if identity {
		return r
	}
	out := ScenarioResult{Cores: make([]Result, len(perm))}
	for i, k := range perm {
		out.Cores[i] = r.Cores[k]
	}
	return out
}

// MustRunScenario is RunScenario for static scenarios.
func MustRunScenario(sc Scenario) ScenarioResult {
	r, err := RunScenario(sc)
	if err != nil {
		panic(err)
	}
	return r
}

// coreSalt perturbs per-core seeds so co-runners of the same workload
// take decorrelated walks. Core 0 is unsalted: a one-core scenario is
// bit-for-bit the classic single-core simulation.
func coreSalt(i int) uint64 {
	return uint64(i) * 0x9e3779b97f4a7c15
}

// phase is one instruction-bounded leg of a core's SMARTS schedule.
type phase struct {
	n       uint64
	reset   bool // ResetStats at phase start (measurement window)
	measure bool // accumulate stats when the phase completes
}

// phasesOf expands a config's warmup/skip/measure schedule — the same
// sequence Run executes — into explicit phases the lockstep loop can
// walk per core.
func phasesOf(cfg Config) []phase {
	ph := []phase{{n: cfg.WarmupInstr}}
	perWindow := cfg.MeasureInstr / uint64(cfg.Samples)
	for s := 0; s < cfg.Samples; s++ {
		if s > 0 && cfg.SkipInstr > 0 {
			ph = append(ph, phase{n: cfg.SkipInstr})
		}
		ph = append(ph, phase{n: perWindow, reset: true, measure: true})
	}
	return ph
}

// coreState tracks one core through the lockstep loop.
type coreState struct {
	c      *core.Core
	engine prefetch.Engine
	phases []phase
	pi     int
	target uint64
	res    Result
	done   bool
}

// startPhase applies the current phase's entry action and sets its
// instruction target.
func (cs *coreState) startPhase() {
	p := cs.phases[cs.pi]
	if p.reset {
		cs.c.ResetStats()
	}
	cs.target = cs.c.Instructions() + p.n
}

// step advances the core's phase machine after a tick: a crossed target
// closes the phase (accumulating measured windows) and opens the next.
// The loop handles zero-length phases, which complete instantly. The
// per-tick probe reads only the instruction counter — this runs every
// cycle of every core, so it must not copy the whole Stats struct.
func (cs *coreState) step() {
	for !cs.done && cs.c.Instructions() >= cs.target {
		if cs.phases[cs.pi].measure {
			accumulate(&cs.res, cs.c, cs.engine)
		}
		cs.pi++
		if cs.pi == len(cs.phases) {
			cs.done = true
			return
		}
		cs.startPhase()
	}
}

// buildStates constructs the shared uncore and the per-core states of a
// normalized scenario: the common front half of the lockstep and event
// engines. Both engines must run over bit-identical initial state —
// same mesh config, same attach order, same salted seeds — for the
// equality keystone (TestEventKernelMatchesLockstep) to be meaningful.
func buildStates(sc Scenario) ([]*coreState, error) {
	ucfg := uncore.DefaultConfig()
	ucfg.LLCSizeBytes = sc.LLCSizeBytes
	ucfg.Mesh = noc.SharedConfig(len(sc.Cores))
	for _, cfg := range sc.Cores {
		if cfg.Mechanism == Confluence {
			// ConfluenceLLCReserveBytes is scaled to one core's 1MB LLC
			// share, and each Confluence engine virtualizes its own
			// history image (see prefetch.NewConfluence), so the reserve
			// is charged once per Confluence core.
			ucfg.LLCReserveBytes += prefetch.ConfluenceLLCReserveBytes
		}
	}
	shared := uncore.NewShared(ucfg)

	states := make([]*coreState, len(sc.Cores))
	for i, cfg := range sc.Cores {
		prof, err := workload.Get(cfg.Workload)
		if err != nil {
			return nil, err
		}
		salt := coreSalt(i)
		hier := shared.AttachCore(i)
		engine, err := buildEngine(prefetch.Context{Hier: hier, Dec: prof.Decoder()}, cfg)
		if err != nil {
			return nil, err
		}
		ccfg := core.Config{
			CLZTage:    cfg.BPU == BPUCLZ,
			LoadFrac:   prof.LoadFrac,
			DataBlocks: prof.DataBlocks,
			DataZipfS:  prof.DataZipfS,
			DataSeed:   prof.WalkSeed ^ 0xd00d ^ salt,
		}
		// Context 0's walk seed carries only the core salt, so a
		// one-context core walks the exact single-context stream.
		nctx := cfg.Contexts
		if nctx < 1 {
			nctx = 1
		}
		streams := make([]workload.Stream, nctx)
		for k := range streams {
			streams[k] = workload.NewWalkerConfig(prof.Program(), prof.WalkSeed^salt^contextSalt(k), prof.Walk)
		}
		cs := &coreState{
			c:      core.NewMultiContext(ccfg, streams, engine, hier),
			engine: engine,
			phases: phasesOf(cfg),
			res:    Result{Workload: cfg.Workload, Mechanism: cfg.Mechanism},
		}
		cs.startPhase()
		states[i] = cs
	}
	return states, nil
}

// results closes out the per-core states into a canonical-order result.
func results(states []*coreState) ScenarioResult {
	out := ScenarioResult{Cores: make([]Result, len(states))}
	for i, cs := range states {
		cs.res.PrefetchAccuracy = prefetchAccuracy(cs.res.Hier)
		out.Cores[i] = cs.res
	}
	return out
}

// runLockstep drives N cores cycle-by-cycle over one shared uncore. All
// cores tick in round-robin within each cycle, so their clocks never
// drift by more than one cycle and shared-resource contention (LLC
// occupancy, mesh backlog) is time-coherent. A core that finishes its
// schedule keeps ticking — still generating real traffic — until every
// core has finished measuring, but its extra work is never accumulated.
//
// This is the reference engine: RunScenario dispatches multi-core
// shapes to the event-driven kernel in event.go, and
// TestEventKernelMatchesLockstep pins the two executions to bit-equal
// results. Keep both engines' semantics in sync.
func runLockstep(sc Scenario) (ScenarioResult, error) {
	states, err := buildStates(sc)
	if err != nil {
		return ScenarioResult{}, err
	}

	// live counts cores still walking their schedule; finished cores
	// keep ticking (real traffic) until the round in which the last
	// core finishes, exactly like the rescan-every-cycle formulation
	// but without the per-cycle O(N) scan.
	live := len(states)
	for live > 0 {
		for _, cs := range states {
			cs.c.Tick()
			if cs.done {
				continue
			}
			cs.step()
			if cs.done {
				live--
			}
		}
	}
	return results(states), nil
}
