// Metamorphic properties of the simulation engine: relations that must
// hold between *pairs* of runs, independent of any golden value. They
// pin the scenario layer's algebra — permutation equivariance, bit-
// exact determinism, and the N=1 identity — so a change that keeps
// every golden table intact but breaks the layer's contracts still
// fails loudly.
package sim

import (
	"testing"

	"shotgun/internal/footprint"
	"shotgun/internal/prefetch"
)

// metaScale keeps the metamorphic suite fast; the properties are
// scale-independent.
func metaCfg(wl string, m Mechanism) Config {
	return Config{
		Workload: wl, Mechanism: m,
		WarmupInstr: 50_000, MeasureInstr: 60_000, Samples: 1,
	}
}

// permutations of 0..n-1 used by the equivariance tests: enough shapes
// to cover "reverse", "rotate" and "swap a middle pair" without paying
// for all n! runs.
func testPermutations(n int) [][]int {
	reverse := make([]int, n)
	rotate := make([]int, n)
	for i := 0; i < n; i++ {
		reverse[i] = n - 1 - i
		rotate[i] = (i + 1) % n
	}
	perms := [][]int{reverse, rotate}
	if n >= 3 {
		swap := make([]int, n)
		for i := range swap {
			swap[i] = i
		}
		swap[1], swap[2] = swap[2], swap[1]
		perms = append(perms, swap)
	}
	return perms
}

// engines pins the metamorphic properties to each scenario engine by
// name: RunScenario dispatches multi-core shapes to the event kernel,
// but the properties must hold for the retained lockstep reference too
// — a contract break in either engine fails here even if the other
// masks it at the dispatch layer.
var engines = []struct {
	name string
	run  func(Scenario) (ScenarioResult, error)
}{
	{"lockstep", runLockstep},
	{"event", runEvent},
}

// runWith executes a scenario through the full RunScenario pipeline —
// normalization, canonical-order execution, reorder — pinned to one
// engine.
func runWith(t *testing.T, run func(Scenario) (ScenarioResult, error), sc Scenario) ScenarioResult {
	t.Helper()
	norm, perm := sc.NormalizedPerm()
	canon, err := run(norm)
	if err != nil {
		t.Fatal(err)
	}
	return canon.Reorder(perm)
}

// TestPermutationEquivariance: permuting a scenario's per-core configs
// permutes the per-core results identically — bit for bit, not just
// statistically. result.Cores[i] must always describe the caller's
// Cores[i], however the caller ordered them. The property must hold on
// both engines.
func TestPermutationEquivariance(t *testing.T) {
	smt := metaCfg("Zeus", Delta)
	smt.Contexts = 2
	base := []Config{
		metaCfg("Oracle", Shotgun),
		metaCfg("DB2", Boomerang),
		metaCfg("Nutch", None),
		smt,
	}
	for _, eng := range engines {
		eng := eng
		t.Run(eng.name, func(t *testing.T) {
			t.Parallel()
			ref := runWith(t, eng.run, Scenario{Cores: base})

			for pi, p := range testPermutations(len(base)) {
				cores := make([]Config, len(base))
				for i := range p {
					cores[i] = base[p[i]]
				}
				got := runWith(t, eng.run, Scenario{Cores: cores})
				for i := range p {
					if got.Cores[i] != ref.Cores[p[i]] {
						t.Fatalf("perm %d: core %d (orig %d) drifted under permutation:\n%+v\n%+v",
							pi, i, p[i], got.Cores[i], ref.Cores[p[i]])
					}
				}
			}
		})
	}
}

// TestPermutationEquivarianceWithDuplicates: duplicate configs are
// interchangeable by rank — the k-th copy in the caller's order always
// maps to the k-th copy in canonical order, so permuting a multiset
// with repeats still permutes results exactly.
func TestPermutationEquivarianceWithDuplicates(t *testing.T) {
	a := metaCfg("Nutch", Shotgun)
	b := metaCfg("Nutch", FDIP)
	ref := MustRunScenario(Scenario{Cores: []Config{a, a, b}})
	got := MustRunScenario(Scenario{Cores: []Config{a, b, a}})
	// Caller order [a,b,a]: first a ↔ ref core 0, b ↔ ref core 2,
	// second a ↔ ref core 1.
	for i, want := range []Result{ref.Cores[0], ref.Cores[2], ref.Cores[1]} {
		if got.Cores[i] != want {
			t.Fatalf("duplicate-rank mapping broken at core %d:\n%+v\n%+v", i, got.Cores[i], want)
		}
	}
}

// TestPermutedScenariosShareIdentity: the content identity is
// permutation-invariant, so a cluster serving by ScenarioKey simulates
// each multiset of cores exactly once.
func TestPermutedScenariosShareIdentity(t *testing.T) {
	base := []Config{metaCfg("Oracle", Shotgun), metaCfg("DB2", None)}
	sc := Scenario{Cores: base}
	swapped := Scenario{Cores: []Config{base[1], base[0]}}
	if string(sc.CanonicalBytes()) != string(swapped.CanonicalBytes()) {
		t.Fatal("permuted scenarios have different canonical identities")
	}
}

// goldenShapes reconstructs one representative scenario per golden
// experiment family — every mechanism, every footprint region mode, the
// C-BTB override, and the multi-core interference shape — at
// metamorphic scale.
func goldenShapes() []Scenario {
	var scs []Scenario
	for _, m := range Mechanisms() {
		scs = append(scs, SingleCore(metaCfg("Oracle", m)))
	}
	for _, mode := range []prefetch.RegionMode{
		prefetch.RegionNone, prefetch.RegionVector, prefetch.RegionEntire, prefetch.RegionFiveBlocks,
	} {
		cfg := metaCfg("DB2", Shotgun)
		cfg.RegionMode = mode
		if mode == prefetch.RegionEntire {
			cfg.Layout = footprint.Layout32
		}
		scs = append(scs, SingleCore(cfg))
	}
	// The interference experiment's shape: a shotgun primary plus
	// over-prefetching co-runners on one shared uncore.
	co := metaCfg("Oracle", Shotgun)
	co.RegionMode = prefetch.RegionEntire
	co.Layout = footprint.Layout32
	scs = append(scs, Scenario{Cores: []Config{metaCfg("Oracle", Shotgun), co, co}})
	// The mechanism-diversity axes (the delta engine already rides in via
	// Mechanisms above): the CLZ-TAGE predictor variant and the
	// multi-context front-end, alone and sharing an uncore.
	clz := metaCfg("Oracle", Shotgun)
	clz.BPU = BPUCLZ
	scs = append(scs, SingleCore(clz))
	smt := metaCfg("DB2", Boomerang)
	smt.Contexts = 4
	scs = append(scs, SingleCore(smt))
	scs = append(scs, Scenario{Cores: []Config{smt, clz, metaCfg("Nutch", Delta)}})
	return scs
}

// TestRerunBitIdentical: re-running any golden-family scenario in a
// fresh engine instance is bit-identical — the whole golden gate rests
// on this (PR 1 removed the last source of run-to-run nondeterminism).
// Both engines carry the gate (the event kernel runs the corpus, the
// lockstep engine is its reference), so both are held to it.
func TestRerunBitIdentical(t *testing.T) {
	for _, eng := range engines {
		eng := eng
		t.Run(eng.name, func(t *testing.T) {
			t.Parallel()
			for _, sc := range goldenShapes() {
				a := runWith(t, eng.run, sc)
				b := runWith(t, eng.run, sc)
				for i := range a.Cores {
					if a.Cores[i] != b.Cores[i] {
						t.Fatalf("scenario %s core %d differs between identical runs:\n%+v\n%+v",
							sc.CanonicalBytes(), i, a.Cores[i], b.Cores[i])
					}
				}
			}
		})
	}
}

// TestSingleCoreScenarioEqualsRun: the N=1 scenario is sim.Run, bit for
// bit, for every mechanism — the identity that let the scenario layer
// land without regenerating a single golden table.
func TestSingleCoreScenarioEqualsRun(t *testing.T) {
	for _, m := range Mechanisms() {
		cfg := metaCfg("Zeus", m)
		want := MustRun(cfg)
		got := MustRunScenario(SingleCore(cfg))
		if len(got.Cores) != 1 || got.Cores[0] != want {
			t.Fatalf("%s: N=1 scenario differs from Run:\n%+v\n%+v", m, got.Cores[0], want)
		}
	}
}
