package prefetch

import (
	"encoding/binary"
	"testing"

	"shotgun/internal/isa"
)

// FuzzDeltaMatcher holds the delta matcher to its contract under
// arbitrary block-address streams: never panic, state stays fixed-size
// (filled never exceeds the register depth), a reported match is a real
// repeating non-zero cycle with period within [1, deltaMaxPeriod], and
// projection fills exactly the requested buffer. Wired into the CI
// fuzz-smoke job next to the trace/server/spec targets.
func FuzzDeltaMatcher(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 64, 128, 192, 0, 64, 128, 192})
	f.Add(binary.LittleEndian.AppendUint64(nil, 0xffff_ffff_ffff_ffc0))
	seed := make([]byte, 0, 24*8)
	for i := 0; i < 24; i++ {
		seed = binary.LittleEndian.AppendUint64(seed, uint64(i%3)*isa.BlockBytes)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		var m deltaMatcher
		for len(data) >= 8 {
			addr := isa.Addr(binary.LittleEndian.Uint64(data[:8]))
			data = data[8:]
			m.observe(addr.Block())
			if m.filled > deltaHistLen {
				t.Fatalf("register overfilled: %d > %d", m.filled, deltaHistLen)
			}
			p, ok := m.match()
			if !ok {
				continue
			}
			if p < 1 || p > deltaMaxPeriod {
				t.Fatalf("match period %d outside [1, %d]", p, deltaMaxPeriod)
			}
			if m.filled < 2*p {
				t.Fatalf("period %d matched with only %d deltas filled", p, m.filled)
			}
			nonzero := false
			for i := 0; i < p; i++ {
				a := m.deltas[deltaHistLen-1-i]
				if a != m.deltas[deltaHistLen-1-p-i] {
					t.Fatalf("period %d is not actually repeating", p)
				}
				if a != 0 {
					nonzero = true
				}
			}
			if !nonzero {
				t.Fatalf("period %d matched an all-zero cycle", p)
			}
			var buf [deltaDegree]isa.Addr
			if n := m.project(addr.Block(), p, buf[:]); n != deltaDegree {
				t.Fatalf("project wrote %d of %d addresses", n, deltaDegree)
			}
			// Projection is pure: re-projecting yields the same blocks.
			var buf2 [deltaDegree]isa.Addr
			m.project(addr.Block(), p, buf2[:])
			if buf != buf2 {
				t.Fatalf("projection is not deterministic: %v vs %v", buf, buf2)
			}
		}
	})
}
