// Package prefetch implements the eight control-flow delivery
// mechanisms the evaluation compares, behind one Engine interface
// driven by the core's cycle loop:
//
//   - None: conventional 2K-entry BTB, no prefetching (the baseline).
//   - FDIP: fetch-directed instruction prefetching (Reinman et al.);
//     speculates straight-line through BTB misses.
//   - RDIP: RAS-context miss signatures replay recorded L1-I misses
//     (Kolli et al., MICRO'13); the BTB still thrashes.
//   - Delta: delta-pattern prefetching — a shift register of
//     block-address deltas plus a repeating-cycle matcher projects
//     stable strides, with no BTB-directed lookahead at all.
//   - Boomerang: FDIP + reactive BTB fill; stalls the runahead to
//     resolve each BTB miss (Kumar et al., HPCA'17).
//   - Confluence: temporal-streaming unified prefetcher over SHIFT
//     history with a 16K-entry BTB (Kaynak et al., MICRO'15).
//   - Shotgun: this paper — U-BTB/C-BTB/RIB with spatial footprints.
//   - Ideal: BTB and L1-I never miss (the opportunity bound).
//
// Every engine is additionally held to the mechanism-conformance
// contract (conformance_test.go): Warm never touches timing state,
// replays are deterministic, and the per-block hot path is
// allocation-free.
package prefetch

import (
	"shotgun/internal/isa"
	"shotgun/internal/predecode"
	"shotgun/internal/uncore"
)

// Context gives engines access to the shared substrate.
type Context struct {
	Hier *uncore.Hierarchy
	Dec  *predecode.Decoder
}

// Eval is the outcome of the first-encounter BTB evaluation of a basic
// block in the branch-prediction unit's runahead.
type Eval struct {
	// BTBHit reports that some BTB structure described the block, so the
	// front-end can follow the branch without a decode-time redirect.
	BTBHit bool
	// DecodeRedirect reports an undetected taken branch: the front-end
	// fetches past it and is re-steered at decode (bubble).
	DecodeRedirect bool
	// StallUntil, when non-zero, pauses the runahead until the given
	// cycle (Boomerang-style reactive BTB-miss resolution).
	StallUntil uint64
}

// Engine is one control-flow delivery mechanism. The core calls Evaluate
// exactly once per dynamic basic block (in trace order) as the runahead
// first reaches it; the remaining hooks observe fetch and retire events.
type Engine interface {
	// Name identifies the mechanism in reports.
	Name() string

	// Evaluate performs BTB lookup/fill and issues this mechanism's
	// prefetch probes for the block bb. For return blocks, rasCallBlock
	// is the basic-block address of the matching call popped from the
	// RAS (Shotgun's extension) and rasOK reports whether the RAS had a
	// frame.
	Evaluate(now uint64, bb isa.BasicBlock, rasCallBlock isa.Addr, rasOK bool) Eval

	// OnArrival observes completed instruction-side fills (for
	// predecode-driven proactive BTB filling).
	OnArrival(now uint64, arrivals []uncore.Arrival)

	// OnRetire observes the retire-order basic-block stream (for
	// footprint recording and temporal-history training).
	OnRetire(bb isa.BasicBlock)

	// OnFetch observes each demand-fetched cache block and where it was
	// found (for stream-replay advancement).
	OnFetch(now uint64, block isa.Addr, src uncore.Source)

	// OnDemandMiss observes L1-I demand misses that reached the LLC (the
	// temporal-streaming restart trigger).
	OnDemandMiss(now uint64, block isa.Addr)

	// OnMispredict tells the engine the runahead has gone down a wrong
	// path starting at wrongPath (the not-taken successor of a branch
	// that was actually taken, or vice versa). FDIP-style engines chase
	// it with prefetch probes that pollute the L1-I — the wrong-path
	// cost of decoupled prefetching.
	OnMispredict(now uint64, wrongPath isa.Addr)

	// Warm is Evaluate's functional-warming counterpart: it trains the
	// mechanism's own predictor state for the block bb — BTB fills,
	// RAS-context tracking, prefetch-buffer promotion — without issuing
	// timed prefetch traffic, stalling, or touching timing counters.
	// Sampling's fast-forward path calls it once per dynamic block
	// between detailed units; the detailed warm-up blocks before each
	// measured unit re-establish the timing-dependent state Warm skips
	// (in-flight fills, runahead probes).
	Warm(bb isa.BasicBlock)

	// BTBMisses returns the number of first-encounter BTB misses on real
	// branches (the Table 1 MPKI numerator).
	BTBMisses() uint64

	// ResetStats clears the engine's counters at the warmup boundary.
	ResetStats()
}

// prefetchBlocks issues FDIP-style L1-I probes for every cache block a
// basic block spans.
func prefetchBlocks(ctx Context, now uint64, bb isa.BasicBlock) {
	first, last := bb.BlockSpan()
	for blk := first; blk <= last; blk += isa.BlockBytes {
		ctx.Hier.PrefetchBlock(now, blk)
	}
}

// wrongPathDepth is how many sequential blocks an FDIP-style runahead
// chases down a mispredicted path before the execute-time flush.
const wrongPathDepth = 3

// chaseWrongPath issues the wrong-path probes shared by the FDIP-derived
// engines.
func chaseWrongPath(ctx Context, now uint64, start isa.Addr) {
	base := start.Block()
	for i := 0; i < wrongPathDepth; i++ {
		ctx.Hier.PrefetchBlock(now, base+isa.Addr(i*isa.BlockBytes))
	}
}
