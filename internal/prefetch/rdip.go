package prefetch

import (
	"shotgun/internal/bpu"
	"shotgun/internal/btb"
	"shotgun/internal/isa"
	"shotgun/internal/uncore"
)

// RDIP is return-address-stack-directed instruction prefetching (Kolli,
// Saidi & Wenisch, MICRO'13), the closest prior work the paper discusses
// in Section 4.3: program context — a hash of the RAS contents — indexes
// a table of miss signatures; on every call or return the next context's
// recorded misses are prefetched.
//
// The paper's critique, which this implementation reproduces: RDIP
// predicts the future only from call/return context, ignoring local
// control flow (limited accuracy); it prefetches only the L1-I (the BTB
// still thrashes, so decode redirects persist — a conventional BTB is
// used here exactly as in the paper's comparison); and it needs 64KB of
// dedicated metadata per core.
type RDIP struct {
	ctx Context
	btb *btb.Conventional

	// sigTable maps a program-context signature to the blocks that
	// missed under that context last time; sigOrder tracks insertion
	// order so the bounded table evicts FIFO — deterministically, unlike
	// ranging over the map, whose order Go randomizes per run.
	sigTable map[uint64][]isa.Addr
	sigOrder []uint64
	capacity int

	ras    *bpu.RAS
	curSig uint64
	// pendingMisses collects misses seen under the current context.
	pendingMisses []isa.Addr

	misses uint64
	// Lookups / Hits track signature-table effectiveness.
	Lookups uint64
	Hits    uint64
}

// rdipTableEntries bounds the signature table: the paper charges RDIP
// 64KB of metadata; at ~16 bytes per recorded block and up to 8 blocks
// per signature, 512 signatures model that budget.
const rdipTableEntries = 512

// rdipMaxBlocksPerSig bounds a signature's recorded miss set.
const rdipMaxBlocksPerSig = 8

// NewRDIP builds the engine with a conventional BTB of the given size.
func NewRDIP(ctx Context, btbEntries int) *RDIP {
	return &RDIP{
		ctx:      ctx,
		btb:      btb.MustNewConventional(btbEntries),
		sigTable: make(map[uint64][]isa.Addr, rdipTableEntries),
		capacity: rdipTableEntries,
		ras:      bpu.NewRAS(32),
	}
}

// Name implements Engine.
func (e *RDIP) Name() string { return "rdip" }

// signature hashes the top few RAS frames into a program context.
func (e *RDIP) signature() uint64 {
	var sig uint64 = 0x9e3779b97f4a7c15
	// Hash the youngest four frames, like RDIP's context register. Peek
	// emulation: pop into a fixed scratch array and push back in reverse
	// (a defer per frame would heap-allocate on every call/return).
	var frames [4]bpu.RASEntry
	depth := e.ras.Depth()
	n := 0
	for ; n < 4 && n < depth; n++ {
		f, _ := e.ras.Pop()
		frames[n] = f
		sig ^= uint64(f.ReturnAddr)
		sig *= 0x100000001b3
	}
	for i := n - 1; i >= 0; i-- {
		e.ras.Push(frames[i])
	}
	return sig
}

// contextSwitch closes the current context (associating its misses) and
// prefetches the new context's recorded miss set.
func (e *RDIP) contextSwitch(now uint64) {
	if len(e.pendingMisses) > 0 {
		// Bounded table with FIFO replacement: a new signature at
		// capacity evicts the oldest; refreshing an already-recorded
		// signature updates it in place without evicting. (The original
		// implementation evicted a random map-iteration victim on every
		// full-table close, making RDIP results nondeterministic per
		// run; this is the deterministic standard-cache policy.)
		if _, exists := e.sigTable[e.curSig]; !exists {
			if len(e.sigTable) >= e.capacity {
				victim := e.sigOrder[0]
				e.sigOrder = e.sigOrder[1:]
				delete(e.sigTable, victim)
			}
			e.sigOrder = append(e.sigOrder, e.curSig)
		}
		set := e.pendingMisses
		if len(set) > rdipMaxBlocksPerSig {
			set = set[:rdipMaxBlocksPerSig]
		}
		e.sigTable[e.curSig] = append([]isa.Addr(nil), set...)
		e.pendingMisses = e.pendingMisses[:0]
	}

	e.curSig = e.signature()
	e.Lookups++
	if blocks, ok := e.sigTable[e.curSig]; ok {
		e.Hits++
		for _, b := range blocks {
			e.ctx.Hier.PrefetchBlock(now, b)
		}
	}
}

// Evaluate implements Engine: conventional BTB handling (misses redirect
// at decode, like the baseline) plus context tracking on calls/returns.
func (e *RDIP) Evaluate(now uint64, bb isa.BasicBlock, _ isa.Addr, _ bool) Eval {
	switch {
	case bb.Kind.IsCallLike():
		e.ras.Push(bpu.RASEntry{ReturnAddr: bb.FallThrough(), CallBlock: bb.PC})
		e.contextSwitch(now)
	case bb.Kind.IsReturn():
		e.ras.Pop()
		e.contextSwitch(now)
	}

	if bb.Kind == isa.BranchNone {
		return Eval{BTBHit: true}
	}
	if _, ok := e.btb.Lookup(bb.PC); ok {
		return Eval{BTBHit: true}
	}
	e.misses++
	e.btb.Insert(bb.PC, btb.EntryFromBlock(bb))
	return Eval{DecodeRedirect: bb.Taken}
}

// Warm implements Engine: RAS/context tracking and BTB training without
// the context-triggered prefetch burst. Keeping curSig live means the
// first OnDemandMiss of the next detailed unit trains the same
// signature an exact run would have.
func (e *RDIP) Warm(bb isa.BasicBlock) {
	switch {
	case bb.Kind.IsCallLike():
		e.ras.Push(bpu.RASEntry{ReturnAddr: bb.FallThrough(), CallBlock: bb.PC})
		e.warmContextSwitch()
	case bb.Kind.IsReturn():
		e.ras.Pop()
		e.warmContextSwitch()
	}
	if bb.Kind == isa.BranchNone {
		return
	}
	if _, ok := e.btb.Lookup(bb.PC); !ok {
		e.btb.Insert(bb.PC, btb.EntryFromBlock(bb))
	}
}

// warmContextSwitch is contextSwitch minus the prefetch issue and the
// lookup counters: pending misses still close into the signature table
// so warming keeps RDIP's metadata trained.
func (e *RDIP) warmContextSwitch() {
	if len(e.pendingMisses) > 0 {
		if _, exists := e.sigTable[e.curSig]; !exists {
			if len(e.sigTable) >= e.capacity {
				victim := e.sigOrder[0]
				e.sigOrder = e.sigOrder[1:]
				delete(e.sigTable, victim)
			}
			e.sigOrder = append(e.sigOrder, e.curSig)
		}
		set := e.pendingMisses
		if len(set) > rdipMaxBlocksPerSig {
			set = set[:rdipMaxBlocksPerSig]
		}
		e.sigTable[e.curSig] = append([]isa.Addr(nil), set...)
		e.pendingMisses = e.pendingMisses[:0]
	}
	e.curSig = e.signature()
}

// OnDemandMiss implements Engine: misses train the current signature.
func (e *RDIP) OnDemandMiss(_ uint64, block isa.Addr) {
	if len(e.pendingMisses) < rdipMaxBlocksPerSig {
		e.pendingMisses = append(e.pendingMisses, block.Block())
	}
}

// OnArrival implements Engine.
func (e *RDIP) OnArrival(uint64, []uncore.Arrival) {}

// OnRetire implements Engine.
func (e *RDIP) OnRetire(isa.BasicBlock) {}

// OnFetch implements Engine.
func (e *RDIP) OnFetch(uint64, isa.Addr, uncore.Source) {}

// OnMispredict implements Engine: RDIP's prefetching is context-driven,
// not runahead-driven.
func (e *RDIP) OnMispredict(uint64, isa.Addr) {}

// BTBMisses implements Engine.
func (e *RDIP) BTBMisses() uint64 { return e.misses }

// ResetStats implements Engine.
func (e *RDIP) ResetStats() {
	e.misses = 0
	e.Lookups = 0
	e.Hits = 0
	e.btb.ResetStats()
}
