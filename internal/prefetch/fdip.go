package prefetch

import (
	"shotgun/internal/btb"
	"shotgun/internal/isa"
	"shotgun/internal/uncore"
)

// FDIP is fetch-directed instruction prefetching (Reinman, Calder &
// Austin '99): the branch-prediction unit runs ahead of fetch, and every
// fetch address entering the FTQ triggers an L1-I prefetch probe. On a
// BTB miss FDIP speculates through: it keeps prefetching straight-line
// code, which is wrong whenever the undetected branch was taken — the
// limitation Section 3.2 describes.
type FDIP struct {
	ctx Context
	btb *btb.Conventional

	misses uint64
	// WrongPathPrefetches counts the straight-line probes issued past an
	// undetected taken branch.
	WrongPathPrefetches uint64
}

// fdipSpecDepth is how many sequential blocks FDIP prefetches past an
// undetected taken branch before the decode re-steer catches up.
const fdipSpecDepth = 2

// NewFDIP builds the engine with the given BTB entry count.
func NewFDIP(ctx Context, btbEntries int) *FDIP {
	return &FDIP{ctx: ctx, btb: btb.MustNewConventional(btbEntries)}
}

// Name implements Engine.
func (e *FDIP) Name() string { return "fdip" }

// Evaluate implements Engine.
func (e *FDIP) Evaluate(now uint64, bb isa.BasicBlock, _ isa.Addr, _ bool) Eval {
	prefetchBlocks(e.ctx, now, bb)

	if bb.Kind == isa.BranchNone {
		return Eval{BTBHit: true}
	}
	if _, ok := e.btb.Lookup(bb.PC); ok {
		return Eval{BTBHit: true}
	}
	e.misses++
	e.btb.Insert(bb.PC, btb.EntryFromBlock(bb))
	if bb.Taken {
		// Speculate straight-line: prefetch the fall-through blocks the
		// real FDIP would have chased before the decode redirect.
		next := bb.FallThrough().Block()
		for i := 1; i <= fdipSpecDepth; i++ {
			e.ctx.Hier.PrefetchBlock(now, next+isa.Addr(i*isa.BlockBytes))
			e.WrongPathPrefetches++
		}
		return Eval{DecodeRedirect: true}
	}
	return Eval{}
}

// Warm implements Engine: BTB training only — FDIP's probes are pure
// timing traffic, re-established by the detailed warm-up blocks.
func (e *FDIP) Warm(bb isa.BasicBlock) {
	if bb.Kind == isa.BranchNone {
		return
	}
	if _, ok := e.btb.Lookup(bb.PC); !ok {
		e.btb.Insert(bb.PC, btb.EntryFromBlock(bb))
	}
}

// OnArrival implements Engine.
func (e *FDIP) OnArrival(uint64, []uncore.Arrival) {}

// OnRetire implements Engine.
func (e *FDIP) OnRetire(isa.BasicBlock) {}

// OnFetch implements Engine.
func (e *FDIP) OnFetch(uint64, isa.Addr, uncore.Source) {}

// OnDemandMiss implements Engine.
func (e *FDIP) OnDemandMiss(uint64, isa.Addr) {}

// BTBMisses implements Engine.
func (e *FDIP) BTBMisses() uint64 { return e.misses }

// ResetStats implements Engine.
func (e *FDIP) ResetStats() {
	e.misses = 0
	e.WrongPathPrefetches = 0
	e.btb.ResetStats()
}

// OnMispredict implements Engine: FDIP chases the predicted (wrong) path.
func (e *FDIP) OnMispredict(now uint64, wrongPath isa.Addr) {
	chaseWrongPath(e.ctx, now, wrongPath)
	e.WrongPathPrefetches += wrongPathDepth
}
