package prefetch

import (
	"shotgun/internal/btb"
	"shotgun/internal/isa"
	"shotgun/internal/uncore"
)

// None is the no-prefetch baseline: a conventional basic-block BTB
// trained at decode time, no instruction prefetching of any kind.
type None struct {
	ctx Context
	btb *btb.Conventional

	misses uint64
}

// NewNone builds the baseline with the given BTB entry count (Table 3:
// 2K entries).
func NewNone(ctx Context, btbEntries int) *None {
	return &None{ctx: ctx, btb: btb.MustNewConventional(btbEntries)}
}

// Name implements Engine.
func (e *None) Name() string { return "none" }

// BTB exposes the conventional BTB (for harness MPKI accounting).
func (e *None) BTB() *btb.Conventional { return e.btb }

// Evaluate implements Engine: a BTB miss on a taken branch re-steers the
// front-end at decode; the decoded branch is inserted (training).
func (e *None) Evaluate(now uint64, bb isa.BasicBlock, _ isa.Addr, _ bool) Eval {
	if bb.Kind == isa.BranchNone {
		return Eval{BTBHit: true}
	}
	if _, ok := e.btb.Lookup(bb.PC); ok {
		return Eval{BTBHit: true}
	}
	e.misses++
	// Decode inserts the branch after the miss.
	e.btb.Insert(bb.PC, btb.EntryFromBlock(bb))
	return Eval{DecodeRedirect: bb.Taken}
}

// Warm implements Engine: decode-time BTB training without the timing
// side (there is none here beyond the redirect, which Warm skips).
func (e *None) Warm(bb isa.BasicBlock) {
	if bb.Kind == isa.BranchNone {
		return
	}
	if _, ok := e.btb.Lookup(bb.PC); !ok {
		e.btb.Insert(bb.PC, btb.EntryFromBlock(bb))
	}
}

// OnArrival implements Engine (no proactive fill).
func (e *None) OnArrival(uint64, []uncore.Arrival) {}

// OnRetire implements Engine.
func (e *None) OnRetire(isa.BasicBlock) {}

// OnFetch implements Engine.
func (e *None) OnFetch(uint64, isa.Addr, uncore.Source) {}

// OnDemandMiss implements Engine.
func (e *None) OnDemandMiss(uint64, isa.Addr) {}

// BTBMisses implements Engine.
func (e *None) BTBMisses() uint64 { return e.misses }

// ResetStats implements Engine.
func (e *None) ResetStats() {
	e.misses = 0
	e.btb.ResetStats()
}

// OnMispredict implements Engine (no prefetching, nothing to chase).
func (e *None) OnMispredict(uint64, isa.Addr) {}
