package prefetch

import (
	"shotgun/internal/isa"
	"shotgun/internal/uncore"
)

// Ideal is the opportunity bound of Figure 1: the BTB always hits and
// every instruction block is in the L1-I by the time it is fetched.
// Direction and return-address mispredictions remain — an ideal
// *front-end prefetcher* does not fix the direction predictor.
type Ideal struct {
	ctx Context
}

// NewIdeal builds the ideal front-end.
func NewIdeal(ctx Context) *Ideal { return &Ideal{ctx: ctx} }

// Name implements Engine.
func (e *Ideal) Name() string { return "ideal" }

// Evaluate implements Engine: blocks are installed into the L1-I with
// zero latency, and the BTB never misses.
func (e *Ideal) Evaluate(_ uint64, bb isa.BasicBlock, _ isa.Addr, _ bool) Eval {
	first, last := bb.BlockSpan()
	for blk := first; blk <= last; blk += isa.BlockBytes {
		e.ctx.Hier.L1I.Insert(blk)
	}
	return Eval{BTBHit: true}
}

// Warm implements Engine: Evaluate is already untimed, so warming is the
// same zero-latency install.
func (e *Ideal) Warm(bb isa.BasicBlock) {
	first, last := bb.BlockSpan()
	for blk := first; blk <= last; blk += isa.BlockBytes {
		e.ctx.Hier.L1I.Insert(blk)
	}
}

// OnArrival implements Engine.
func (e *Ideal) OnArrival(uint64, []uncore.Arrival) {}

// OnRetire implements Engine.
func (e *Ideal) OnRetire(isa.BasicBlock) {}

// OnFetch implements Engine.
func (e *Ideal) OnFetch(uint64, isa.Addr, uncore.Source) {}

// OnDemandMiss implements Engine.
func (e *Ideal) OnDemandMiss(uint64, isa.Addr) {}

// BTBMisses implements Engine.
func (e *Ideal) BTBMisses() uint64 { return 0 }

// ResetStats implements Engine.
func (e *Ideal) ResetStats() {}

// OnMispredict implements Engine: the ideal front-end wastes nothing on
// wrong paths.
func (e *Ideal) OnMispredict(uint64, isa.Addr) {}
