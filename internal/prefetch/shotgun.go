package prefetch

import (
	"fmt"

	"shotgun/internal/btb"
	"shotgun/internal/footprint"
	"shotgun/internal/isa"
	"shotgun/internal/uncore"
)

// RegionMode selects how Shotgun prefetches a target region (the
// Figure 8/9/10/11 ablation).
type RegionMode int

const (
	// RegionVector prefetches exactly the blocks marked in the recorded
	// spatial footprint (the paper's design; 8- or 32-bit per Layout).
	RegionVector RegionMode = iota
	// RegionNone disables region prefetching ("No bit vector"); the
	// freed footprint storage buys a larger U-BTB.
	RegionNone
	// RegionEntire prefetches every block between the region's recorded
	// entry and exit points ("Entire Region").
	RegionEntire
	// RegionFiveBlocks always prefetches five consecutive blocks from
	// the target ("5-Blocks") and stores no footprint metadata.
	RegionFiveBlocks
)

func (m RegionMode) String() string {
	switch m {
	case RegionVector:
		return "bit-vector"
	case RegionNone:
		return "no-bit-vector"
	case RegionEntire:
		return "entire-region"
	case RegionFiveBlocks:
		return "5-blocks"
	}
	return fmt.Sprintf("RegionMode(%d)", int(m))
}

// ShotgunConfig parameterizes the engine.
type ShotgunConfig struct {
	// Sizes gives the three structure capacities (btb.ShotgunSizesForBudget
	// derives them from a conventional-BTB-equivalent budget).
	Sizes btb.Sizes
	// Layout is the footprint geometry (footprint.Layout8 by default).
	Layout footprint.Layout
	// Mode is the region-prefetch variant.
	Mode RegionMode
}

// Shotgun is the paper's mechanism: a U-BTB holding the unconditional
// branch working set with spatial footprints of target and return
// regions, a small predecode-filled C-BTB for local control flow, a
// tag-only RIB for returns, bulk region prefetching from footprints, and
// Boomerang's reactive fill as the fallback on full misses.
type Shotgun struct {
	ctx  Context
	org  *btb.Shotgun
	pbuf *btb.PrefetchBuffer
	rec  *footprint.Recorder
	mode RegionMode

	misses uint64
	// Resolutions / ResolveStallCycles track the reactive-fill fallback.
	Resolutions        uint64
	ResolveStallCycles uint64
	// RegionPrefetches counts footprint-driven probe issues;
	// FootprintDropped counts commits whose owner was already evicted.
	RegionPrefetches uint64
	FootprintDropped uint64

	// blkScratch is the reusable region-expansion buffer; regionPrefetch
	// runs once per unconditional branch and never nests.
	blkScratch []isa.Addr
}

// NewShotgun builds the engine.
func NewShotgun(ctx Context, cfg ShotgunConfig) *Shotgun {
	if cfg.Layout.Bits() == 0 {
		cfg.Layout = footprint.Layout8
	}
	e := &Shotgun{
		ctx:  ctx,
		org:  btb.MustNewShotgun(cfg.Sizes, cfg.Layout),
		pbuf: btb.NewPrefetchBuffer(32),
		mode: cfg.Mode,
	}
	switch cfg.Mode {
	case RegionVector:
		e.rec = footprint.NewRecorder(cfg.Layout)
	case RegionEntire:
		e.rec = footprint.NewContiguousRecorder(cfg.Layout)
	}
	return e
}

// Name implements Engine.
func (e *Shotgun) Name() string { return "shotgun/" + e.mode.String() }

// Organization exposes the three BTBs (for harness statistics).
func (e *Shotgun) Organization() *btb.Shotgun { return e.org }

// Evaluate implements Engine.
func (e *Shotgun) Evaluate(now uint64, bb isa.BasicBlock, rasCallBlock isa.Addr, rasOK bool) Eval {
	prefetchBlocks(e.ctx, now, bb)

	if bb.Kind == isa.BranchNone {
		return Eval{BTBHit: true}
	}

	hit := e.org.Lookup(bb.PC)
	switch hit.Kind {
	case btb.HitU:
		// U-BTB hit: read the spatial footprint of the target region and
		// issue bulk prefetch probes (Figure 5b, steps 1-2).
		e.regionPrefetch(now, hit.U.Target, hit.U.CallFoot)
		return Eval{BTBHit: true}
	case btb.HitR:
		// RIB hit: the return footprint lives with the call; the RAS
		// (extended with the call's block address) locates it.
		if rasOK {
			if v, ok := e.org.ReadReturnFootprint(rasCallBlock); ok {
				e.regionPrefetch(now, bb.Target, v)
			}
		}
		return Eval{BTBHit: true}
	case btb.HitC:
		return Eval{BTBHit: true}
	}

	// Full miss: try the BTB prefetch buffer, then fall back to
	// Boomerang's reactive fill.
	if entry, ok := e.pbuf.Take(bb.PC); ok {
		e.org.Insert(bb.PC, entry)
		if entry.Kind.IsUnconditional() && !entry.Kind.IsReturn() {
			e.regionPrefetch(now, entry.Target, 0)
		}
		return Eval{BTBHit: true}
	}

	e.misses++
	e.Resolutions++
	ready := e.resolve(now, bb)
	if ready > now {
		e.ResolveStallCycles += ready - now
	}
	return Eval{BTBHit: true, StallUntil: ready}
}

// regionPrefetch issues probes for the target block and its region
// footprint according to the configured mode. Every probed block also
// feeds the predecoder: Section 4.2.3's C-BTB prefill anticipates the
// upcoming region's local branch working set whether the blocks arrive
// from the LLC (predecoded on arrival) or are already L1-I resident
// (predecoded from the L1-I, like the reactive path does).
func (e *Shotgun) regionPrefetch(now uint64, target isa.Addr, vec footprint.Vector) {
	if target == 0 {
		return
	}
	e.probeRegionBlock(now, target)
	switch e.mode {
	case RegionVector, RegionEntire:
		e.blkScratch = e.org.Layout().AppendBlocks(e.blkScratch[:0], vec, target)
		for _, blk := range e.blkScratch {
			e.probeRegionBlock(now, blk)
			e.RegionPrefetches++
		}
	case RegionFiveBlocks:
		base := target.Block()
		for i := 1; i < 5; i++ {
			e.probeRegionBlock(now, base+isa.Addr(i*isa.BlockBytes))
			e.RegionPrefetches++
		}
	case RegionNone:
		// Target block only (it is the next fetch address anyway).
	}
}

// probeRegionBlock prefetches one region block and, when it is already
// resident, predecodes it immediately (non-resident blocks are
// predecoded by OnArrival when the fill completes).
func (e *Shotgun) probeRegionBlock(now uint64, addr isa.Addr) {
	if _, issued := e.ctx.Hier.PrefetchBlock(now, addr); !issued {
		e.predecodeBlock(addr)
	}
}

// predecodeBlock routes one cache block's branches into the structures
// the paper's predecoder fills: conditionals into the C-BTB, returns
// into the RIB, other unconditionals into the BTB prefetch buffer (so
// cold entries cannot evict footprint-bearing U-BTB entries).
func (e *Shotgun) predecodeBlock(addr isa.Addr) {
	for _, br := range e.ctx.Dec.Decode(addr) {
		switch {
		case br.Entry.Kind == isa.BranchCond:
			e.org.Insert(br.BlockPC, br.Entry)
		case br.Entry.Kind.IsReturn():
			e.org.Insert(br.BlockPC, br.Entry)
		default:
			e.pbuf.Insert(br.BlockPC, br.Entry)
		}
	}
}

// resolve is the Boomerang-style reactive fill: fetch the branch's cache
// block, install the missing branch into the BTB its type selects, and
// buffer the block's other branches.
func (e *Shotgun) resolve(now uint64, bb isa.BasicBlock) uint64 {
	branchBlock := bb.BranchPC().Block()
	ready := e.ctx.Hier.BlockResidency(now, branchBlock)
	for _, br := range e.ctx.Dec.Decode(branchBlock) {
		if br.BlockPC == bb.PC {
			e.org.Insert(br.BlockPC, br.Entry)
		} else {
			e.pbuf.Insert(br.BlockPC, br.Entry)
		}
	}
	return ready
}

// Warm implements Engine: U-BTB/C-BTB/RIB training (lookups move the
// replacement state, misses fill from the predecoder) without region
// probes or reactive-fill stalls. Footprint recording continues through
// OnRetire on the warm path, so committed footprints stay fresh.
func (e *Shotgun) Warm(bb isa.BasicBlock) {
	if bb.Kind == isa.BranchNone {
		return
	}
	if hit := e.org.Lookup(bb.PC); hit.Kind != btb.HitNone {
		return
	}
	if entry, ok := e.pbuf.Take(bb.PC); ok {
		e.org.Insert(bb.PC, entry)
		return
	}
	for _, br := range e.ctx.Dec.Decode(bb.BranchPC().Block()) {
		if br.BlockPC == bb.PC {
			e.org.Insert(br.BlockPC, br.Entry)
		} else {
			e.pbuf.Insert(br.BlockPC, br.Entry)
		}
	}
}

// OnArrival implements Engine: prefetched (and demand-filled) blocks are
// predecoded; conditional branches fill the C-BTB ahead of the access
// stream (Figure 5b, steps 4-5), returns fill the RIB, and unconditional
// branches wait in the BTB prefetch buffer so they cannot evict
// footprint-bearing U-BTB entries untouched.
func (e *Shotgun) OnArrival(now uint64, arrivals []uncore.Arrival) {
	for _, a := range arrivals {
		e.predecodeBlock(a.Block)
	}
}

// OnRetire implements Engine: the retire stream drives spatial footprint
// recording (Section 4.2.2).
func (e *Shotgun) OnRetire(bb isa.BasicBlock) {
	if e.rec == nil {
		return
	}
	if c := e.rec.Observe(bb); c != nil {
		if !e.org.CommitFootprint(*c) {
			e.FootprintDropped++
		}
	}
}

// OnFetch implements Engine.
func (e *Shotgun) OnFetch(uint64, isa.Addr, uncore.Source) {}

// OnDemandMiss implements Engine.
func (e *Shotgun) OnDemandMiss(uint64, isa.Addr) {}

// BTBMisses implements Engine.
func (e *Shotgun) BTBMisses() uint64 { return e.misses }

// ResetStats implements Engine.
func (e *Shotgun) ResetStats() {
	e.misses = 0
	e.Resolutions = 0
	e.ResolveStallCycles = 0
	e.RegionPrefetches = 0
	e.FootprintDropped = 0
	e.org.ResetStats()
}

// OnMispredict implements Engine: Shotgun's runahead, like Boomerang's,
// chases the predicted path until the execute-time flush.
func (e *Shotgun) OnMispredict(now uint64, wrongPath isa.Addr) {
	chaseWrongPath(e.ctx, now, wrongPath)
}
