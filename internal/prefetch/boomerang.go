package prefetch

import (
	"shotgun/internal/btb"
	"shotgun/internal/isa"
	"shotgun/internal/uncore"
)

// Boomerang (Kumar et al., HPCA'17) is FDIP extended with reactive BTB
// filling: when the runahead detects a BTB miss it stalls, fetches the
// cache block containing the missing branch from the memory hierarchy,
// predecodes it, installs the missing branch into the BTB and the rest of
// the block's branches into a small BTB prefetch buffer. This avoids the
// decode-time pipeline re-steer, at the price of pausing instruction
// prefetching while each miss resolves — the limitation Shotgun removes.
type Boomerang struct {
	ctx  Context
	btb  *btb.Conventional
	pbuf *btb.PrefetchBuffer

	misses uint64
	// Resolutions counts reactive fills; ResolveStallCycles the total
	// runahead cycles spent waiting on them.
	Resolutions        uint64
	ResolveStallCycles uint64
}

// NewBoomerang builds the engine with the given BTB entry count and a
// 32-entry BTB prefetch buffer (Section 5.2).
func NewBoomerang(ctx Context, btbEntries int) *Boomerang {
	return &Boomerang{
		ctx:  ctx,
		btb:  btb.MustNewConventional(btbEntries),
		pbuf: btb.NewPrefetchBuffer(32),
	}
}

// Name implements Engine.
func (e *Boomerang) Name() string { return "boomerang" }

// Evaluate implements Engine.
func (e *Boomerang) Evaluate(now uint64, bb isa.BasicBlock, _ isa.Addr, _ bool) Eval {
	prefetchBlocks(e.ctx, now, bb)

	if bb.Kind == isa.BranchNone {
		return Eval{BTBHit: true}
	}
	if _, ok := e.btb.Lookup(bb.PC); ok {
		return Eval{BTBHit: true}
	}
	// A BTB prefetch buffer hit promotes into the BTB without a stall.
	if entry, ok := e.pbuf.Take(bb.PC); ok {
		e.btb.Insert(bb.PC, entry)
		return Eval{BTBHit: true}
	}

	// Reactive fill: fetch the block holding the branch, predecode it.
	e.misses++
	e.Resolutions++
	ready := e.resolve(now, bb)
	if ready > now {
		e.ResolveStallCycles += ready - now
	}
	return Eval{BTBHit: true, StallUntil: ready}
}

// resolve fetches the branch's cache block and installs its predecoded
// branches: the missing one into the BTB, the others into the prefetch
// buffer (Section 4.2.3's description of Boomerang's fill mechanism).
func (e *Boomerang) resolve(now uint64, bb isa.BasicBlock) uint64 {
	branchBlock := bb.BranchPC().Block()
	ready := e.ctx.Hier.BlockResidency(now, branchBlock)
	for _, br := range e.ctx.Dec.Decode(branchBlock) {
		if br.BlockPC == bb.PC {
			e.btb.Insert(br.BlockPC, br.Entry)
		} else {
			e.pbuf.Insert(br.BlockPC, br.Entry)
		}
	}
	return ready
}

// Warm implements Engine: the reactive fill's functional effect —
// predecoded branches landing in the BTB and its prefetch buffer —
// without the residency probe or the stall.
func (e *Boomerang) Warm(bb isa.BasicBlock) {
	if bb.Kind == isa.BranchNone {
		return
	}
	if _, ok := e.btb.Lookup(bb.PC); ok {
		return
	}
	if entry, ok := e.pbuf.Take(bb.PC); ok {
		e.btb.Insert(bb.PC, entry)
		return
	}
	for _, br := range e.ctx.Dec.Decode(bb.BranchPC().Block()) {
		if br.BlockPC == bb.PC {
			e.btb.Insert(br.BlockPC, br.Entry)
		} else {
			e.pbuf.Insert(br.BlockPC, br.Entry)
		}
	}
}

// OnArrival implements Engine. Boomerang has no proactive fill path; BTB
// filling happens reactively in Evaluate.
func (e *Boomerang) OnArrival(uint64, []uncore.Arrival) {}

// OnRetire implements Engine.
func (e *Boomerang) OnRetire(isa.BasicBlock) {}

// OnFetch implements Engine.
func (e *Boomerang) OnFetch(uint64, isa.Addr, uncore.Source) {}

// OnDemandMiss implements Engine.
func (e *Boomerang) OnDemandMiss(uint64, isa.Addr) {}

// BTBMisses implements Engine.
func (e *Boomerang) BTBMisses() uint64 { return e.misses }

// ResetStats implements Engine.
func (e *Boomerang) ResetStats() {
	e.misses = 0
	e.Resolutions = 0
	e.ResolveStallCycles = 0
	e.btb.ResetStats()
}

// OnMispredict implements Engine: like FDIP, Boomerang's runahead chases
// the predicted (wrong) path until the flush.
func (e *Boomerang) OnMispredict(now uint64, wrongPath isa.Addr) {
	chaseWrongPath(e.ctx, now, wrongPath)
}
