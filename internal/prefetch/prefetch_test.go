package prefetch

import (
	"testing"

	"shotgun/internal/btb"
	"shotgun/internal/footprint"
	"shotgun/internal/isa"
	"shotgun/internal/noc"
	"shotgun/internal/predecode"
	"shotgun/internal/program"
	"shotgun/internal/uncore"
)

func testContext(t testing.TB) (Context, *program.Program) {
	t.Helper()
	prog := program.MustGenerate(program.GenParams{NumAppFuncs: 80, NumKernelFuncs: 20}, 7)
	cfg := uncore.DefaultConfig()
	cfg.Mesh = noc.Config{Rows: 4, Cols: 4, HopCycles: 3, SlotsPerCycle: 100}
	return Context{Hier: uncore.New(cfg), Dec: predecode.NewDecoder(prog)}, prog
}

// findBlock locates a static block of the given kind.
func findBlock(prog *program.Program, kind isa.BranchKind) isa.BasicBlock {
	for _, f := range prog.Funcs {
		for _, sb := range f.Blocks {
			if sb.Kind != kind {
				continue
			}
			bb := isa.BasicBlock{PC: sb.PC, NumInstr: sb.NumInstr, Kind: kind, Taken: true}
			switch kind {
			case isa.BranchCall, isa.BranchTrap:
				bb.Target = prog.Func(sb.Callee).Entry()
			case isa.BranchCond, isa.BranchJump:
				bb.Target = f.Blocks[sb.TargetIdx].PC
			default:
				bb.Target = f.Entry() // arbitrary non-zero
			}
			return bb
		}
	}
	panic("kind not found")
}

func TestNoneDecodeRedirectOnTakenMiss(t *testing.T) {
	ctx, prog := testContext(t)
	e := NewNone(ctx, 2048)
	bb := findBlock(prog, isa.BranchCall)

	ev := e.Evaluate(0, bb, 0, false)
	if ev.BTBHit || !ev.DecodeRedirect {
		t.Fatalf("first sight of taken branch: %+v", ev)
	}
	if e.BTBMisses() != 1 {
		t.Fatalf("misses = %d", e.BTBMisses())
	}
	// Decode-time training: the second encounter hits.
	ev = e.Evaluate(1, bb, 0, false)
	if !ev.BTBHit || ev.DecodeRedirect {
		t.Fatalf("trained branch still missing: %+v", ev)
	}
}

func TestNoneNotTakenMissNoRedirect(t *testing.T) {
	ctx, prog := testContext(t)
	e := NewNone(ctx, 2048)
	bb := findBlock(prog, isa.BranchCond)
	bb.Taken = false
	bb.Target = 0
	ev := e.Evaluate(0, bb, 0, false)
	if ev.DecodeRedirect {
		t.Fatal("not-taken miss must not redirect")
	}
	if e.BTBMisses() != 1 {
		t.Fatal("miss not counted")
	}
}

func TestNoneIssuesNoPrefetches(t *testing.T) {
	ctx, prog := testContext(t)
	e := NewNone(ctx, 2048)
	for i, f := range prog.Funcs {
		if i > 20 {
			break
		}
		bb := isa.BasicBlock{PC: f.Entry(), NumInstr: 4, Kind: isa.BranchNone}
		e.Evaluate(uint64(i), bb, 0, false)
	}
	if n := ctx.Hier.Stats().PrefetchesIssued; n != 0 {
		t.Fatalf("baseline issued %d prefetches", n)
	}
}

func TestFDIPPrefetchesAndSpeculates(t *testing.T) {
	ctx, prog := testContext(t)
	e := NewFDIP(ctx, 2048)
	bb := findBlock(prog, isa.BranchCall)
	ev := e.Evaluate(0, bb, 0, false)
	if !ev.DecodeRedirect {
		t.Fatal("FDIP miss on taken branch must decode-redirect")
	}
	st := ctx.Hier.Stats()
	if st.PrefetchesIssued == 0 {
		t.Fatal("FDIP issued no prefetches")
	}
	if e.WrongPathPrefetches == 0 {
		t.Fatal("FDIP must chase the straight-line wrong path on a miss")
	}
}

func TestBoomerangResolvesWithoutRedirect(t *testing.T) {
	ctx, prog := testContext(t)
	e := NewBoomerang(ctx, 2048)
	bb := findBlock(prog, isa.BranchCall)

	ev := e.Evaluate(100, bb, 0, false)
	if !ev.BTBHit || ev.DecodeRedirect {
		t.Fatalf("Boomerang must resolve, not redirect: %+v", ev)
	}
	if ev.StallUntil <= 100 {
		t.Fatalf("resolution must stall the runahead: StallUntil=%d", ev.StallUntil)
	}
	if e.BTBMisses() != 1 || e.Resolutions != 1 {
		t.Fatalf("miss/resolution counts: %d/%d", e.BTBMisses(), e.Resolutions)
	}
	// Resolved: next encounter hits without stalling.
	ev = e.Evaluate(ev.StallUntil+1, bb, 0, false)
	if !ev.BTBHit || ev.StallUntil != 0 {
		t.Fatalf("resolved branch still stalls: %+v", ev)
	}
}

func TestBoomerangCheapResolutionWhenResident(t *testing.T) {
	ctx, prog := testContext(t)
	e := NewBoomerang(ctx, 2048)
	bb := findBlock(prog, isa.BranchCall)
	// Pre-install the branch's block in the L1-I: resolution is an L1 probe.
	ctx.Hier.L1I.Insert(bb.BranchPC().Block())
	ev := e.Evaluate(100, bb, 0, false)
	wantMax := uint64(100 + ctx.Hier.Config().L1LatencyCycles)
	if ev.StallUntil > wantMax {
		t.Fatalf("resident resolution cost %d, want <= %d", ev.StallUntil, wantMax)
	}
}

func TestBoomerangPrefetchBufferPromotion(t *testing.T) {
	ctx, prog := testContext(t)
	e := NewBoomerang(ctx, 2048)
	// Find two branch-ending blocks sharing one cache block.
	var a, b isa.BasicBlock
	found := false
	for _, f := range prog.Funcs {
		byBlock := map[isa.Addr][]isa.BasicBlock{}
		for _, sb := range f.Blocks {
			if sb.Kind == isa.BranchNone {
				continue
			}
			bb := isa.BasicBlock{PC: sb.PC, NumInstr: sb.NumInstr, Kind: sb.Kind, Taken: sb.Kind.IsUnconditional()}
			if sb.Kind == isa.BranchCond || sb.Kind == isa.BranchJump {
				bb.Target = f.Blocks[sb.TargetIdx].PC
			} else if sb.Kind == isa.BranchCall || sb.Kind == isa.BranchTrap {
				bb.Target = 0x9000
			} else {
				bb.Target = 0x9000
			}
			cb := bb.BranchPC().Block()
			byBlock[cb] = append(byBlock[cb], bb)
			if len(byBlock[cb]) == 2 {
				a, b = byBlock[cb][0], byBlock[cb][1]
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Skip("no cache block with two branches in this program")
	}
	// Resolving a's miss predecodes the block; b lands in the buffer.
	e.Evaluate(0, a, 0, false)
	ev := e.Evaluate(1000, b, 0, false)
	if !ev.BTBHit || ev.StallUntil != 0 {
		t.Fatalf("buffered branch should promote stall-free: %+v", ev)
	}
	if e.BTBMisses() != 1 {
		t.Fatalf("buffer promotion must not count as a miss: %d", e.BTBMisses())
	}
}

func shotgunEngine(ctx Context) *Shotgun {
	return NewShotgun(ctx, ShotgunConfig{
		Sizes:  btb.MustShotgunSizesForBudget(2048),
		Layout: footprint.Layout8,
		Mode:   RegionVector,
	})
}

func TestShotgunFootprintDrivesPrefetch(t *testing.T) {
	ctx, prog := testContext(t)
	e := shotgunEngine(ctx)
	call := findBlock(prog, isa.BranchCall)

	// Train: resolve the call once so it sits in the U-BTB.
	e.Evaluate(0, call, 0, false)
	// Record a footprint via the retire stream: region touches target+2.
	e.OnRetire(call)
	target := call.Target
	e.OnRetire(isa.BasicBlock{PC: target, NumInstr: 4, Kind: isa.BranchCond, Taken: true,
		Target: target + 2*isa.BlockBytes})
	e.OnRetire(isa.BasicBlock{PC: target + 2*isa.BlockBytes, NumInstr: 4, Kind: isa.BranchJump, Taken: true,
		Target: target})

	before := ctx.Hier.Stats().PrefetchesIssued + ctx.Hier.Stats().PrefetchesRedundant
	ev := e.Evaluate(5000, call, 0, false)
	if !ev.BTBHit {
		t.Fatalf("trained call misses: %+v", ev)
	}
	after := ctx.Hier.Stats().PrefetchesIssued + ctx.Hier.Stats().PrefetchesRedundant
	// Own block(s) + target block + footprint block at +2.
	if after-before < 3 {
		t.Fatalf("footprint prefetch missing: %d probes", after-before)
	}
	if e.RegionPrefetches == 0 {
		t.Fatal("region prefetches not counted")
	}
}

func TestShotgunReturnFootprintViaRAS(t *testing.T) {
	ctx, prog := testContext(t)
	e := shotgunEngine(ctx)
	call := findBlock(prog, isa.BranchCall)
	e.Evaluate(0, call, 0, false) // U-BTB entry for the call

	// Retire stream: call -> callee ret -> fall-through region that
	// touches fallthrough+1, closed by a jump.
	ret := isa.BasicBlock{PC: call.Target, NumInstr: 2, Kind: isa.BranchRet, Taken: true,
		Target: call.FallThrough()}
	e.OnRetire(call)
	e.OnRetire(ret)
	e.OnRetire(isa.BasicBlock{PC: call.FallThrough(), NumInstr: 16, Kind: isa.BranchNone})
	e.OnRetire(isa.BasicBlock{PC: call.FallThrough().Add(16), NumInstr: 4, Kind: isa.BranchJump,
		Taken: true, Target: call.Target})

	v, ok := e.Organization().ReadReturnFootprint(call.PC)
	if !ok {
		t.Fatal("return footprint not stored with the call")
	}
	if v == 0 {
		t.Fatal("return footprint empty")
	}

	// A RIB hit for the return should read that footprint through the
	// RAS-supplied call block and prefetch the region. Install the RIB
	// entry directly (the synthetic return is not part of the program,
	// so the reactive decoder cannot produce it).
	e.Organization().Insert(ret.PC, btb.Entry{NumInstr: ret.NumInstr, Kind: isa.BranchRet})
	before := e.RegionPrefetches
	ev := e.Evaluate(20000, ret, call.PC, true)
	if !ev.BTBHit {
		t.Fatalf("RIB miss after fill: %+v", ev)
	}
	if e.RegionPrefetches == before {
		t.Fatal("return-region footprint did not drive prefetches")
	}
}

func TestShotgunProactiveCBTBFill(t *testing.T) {
	ctx, prog := testContext(t)
	e := shotgunEngine(ctx)
	// Find a conditional branch; deliver its cache block as an arrival.
	cond := findBlock(prog, isa.BranchCond)
	e.OnArrival(0, []uncore.Arrival{{Block: cond.BranchPC().Block(), Ready: 0}})
	ev := e.Evaluate(1, cond, 0, false)
	if !ev.BTBHit {
		t.Fatal("predecoded conditional missing from C-BTB")
	}
	if e.BTBMisses() != 0 {
		t.Fatal("proactively filled branch counted as miss")
	}
}

func TestShotgunVariants(t *testing.T) {
	ctx, prog := testContext(t)
	call := findBlock(prog, isa.BranchCall)
	for _, mode := range []RegionMode{RegionNone, RegionEntire, RegionFiveBlocks} {
		layout := footprint.Layout8
		if mode == RegionEntire {
			layout = footprint.Layout32
		}
		e := NewShotgun(ctx, ShotgunConfig{
			Sizes: btb.MustShotgunSizesForBudget(2048), Layout: layout, Mode: mode,
		})
		e.Evaluate(0, call, 0, false)
		before := e.RegionPrefetches
		e.Evaluate(10000, call, 0, false)
		switch mode {
		case RegionNone:
			if e.RegionPrefetches != before {
				t.Fatalf("%v issued region prefetches", mode)
			}
		case RegionFiveBlocks:
			if e.RegionPrefetches-before != 4 {
				t.Fatalf("5-blocks issued %d region probes, want 4", e.RegionPrefetches-before)
			}
		}
		if e.Name() == "" {
			t.Fatal("empty name")
		}
	}
}

func TestConfluenceStreamReplay(t *testing.T) {
	ctx, _ := testContext(t)
	e := NewConfluence(ctx)

	// Record a stream A,B,C,D... via the retire hook.
	base := isa.Addr(0x100000)
	for i := 0; i < 64; i++ {
		e.OnRetire(isa.BasicBlock{PC: base + isa.Addr(i*isa.BlockBytes), NumInstr: 16, Kind: isa.BranchNone})
	}
	// A miss on block 3 must restart the stream and prefetch successors.
	before := ctx.Hier.Stats().PrefetchesIssued
	e.OnDemandMiss(1000, base+3*isa.BlockBytes)
	after := ctx.Hier.Stats().PrefetchesIssued
	if e.Restarts != 1 {
		t.Fatalf("restarts = %d", e.Restarts)
	}
	if after-before == 0 {
		t.Fatal("restart issued no prefetches")
	}
	// Fetching along the stream advances it.
	e.OnFetch(2000, base+4*isa.BlockBytes, uncore.SrcL1)
	if e.Matches == 0 {
		t.Fatal("stream did not advance on matching fetch")
	}
}

func TestConfluenceUnknownMissDeactivates(t *testing.T) {
	ctx, _ := testContext(t)
	e := NewConfluence(ctx)
	e.OnDemandMiss(0, 0xdeadbeef&^63)
	if e.Restarts != 0 {
		t.Fatal("unknown block must not restart a stream")
	}
}

func TestIdealNeverMisses(t *testing.T) {
	ctx, prog := testContext(t)
	e := NewIdeal(ctx)
	bb := findBlock(prog, isa.BranchCall)
	ev := e.Evaluate(0, bb, 0, false)
	if !ev.BTBHit || ev.DecodeRedirect || ev.StallUntil != 0 {
		t.Fatalf("ideal evaluation: %+v", ev)
	}
	for _, blk := range bb.Blocks() {
		if !ctx.Hier.L1I.Contains(blk) {
			t.Fatal("ideal did not install block")
		}
	}
	if e.BTBMisses() != 0 {
		t.Fatal("ideal counted a miss")
	}
}

func TestEnginesResetStats(t *testing.T) {
	ctx, prog := testContext(t)
	bb := findBlock(prog, isa.BranchCall)
	engines := []Engine{
		NewNone(ctx, 2048), NewFDIP(ctx, 2048), NewBoomerang(ctx, 2048),
		shotgunEngine(ctx), NewConfluence(ctx), NewIdeal(ctx),
	}
	for _, e := range engines {
		e.Evaluate(0, bb, 0, false)
		e.ResetStats()
		if e.BTBMisses() != 0 {
			t.Fatalf("%s: misses not reset", e.Name())
		}
	}
}

func TestRDIPContextPrefetch(t *testing.T) {
	ctx, prog := testContext(t)
	e := NewRDIP(ctx, 2048)
	call := findBlock(prog, isa.BranchCall)

	// First pass through the context: record misses under it.
	e.Evaluate(0, call, 0, false)
	e.OnDemandMiss(1, 0x123000)
	e.OnDemandMiss(2, 0x123040)
	// Returning closes the context; re-entering the same context later
	// must prefetch the recorded blocks.
	ret := isa.BasicBlock{PC: call.Target, NumInstr: 2, Kind: isa.BranchRet, Taken: true, Target: call.FallThrough()}
	e.Evaluate(3, ret, 0, false)
	before := ctx.Hier.Stats().PrefetchesIssued
	e.Evaluate(10, call, 0, false) // same RAS context signature as pass 1
	after := ctx.Hier.Stats().PrefetchesIssued
	if after == before {
		t.Fatal("RDIP did not replay recorded misses on context re-entry")
	}
	if e.Hits == 0 {
		t.Fatal("signature table never hit")
	}
}

func TestRDIPBTBStillThrashes(t *testing.T) {
	// Section 4.3: RDIP prefetches only the L1-I; its BTB behaves like
	// the baseline and redirects at decode on taken misses.
	ctx, prog := testContext(t)
	e := NewRDIP(ctx, 2048)
	bb := findBlock(prog, isa.BranchJump)
	ev := e.Evaluate(0, bb, 0, false)
	if !ev.DecodeRedirect {
		t.Fatal("RDIP must not hide BTB misses")
	}
	if e.BTBMisses() != 1 {
		t.Fatal("miss not counted")
	}
}

func TestShotgunNoRIBStillHitsReturns(t *testing.T) {
	ctx, _ := testContext(t)
	sz, err := btb.ShotgunSizesNoRIB(2048)
	if err != nil {
		t.Fatal(err)
	}
	e := NewShotgun(ctx, ShotgunConfig{Sizes: sz, Layout: footprint.Layout8, Mode: RegionVector})
	ret := isa.BasicBlock{PC: 0x4000_0100, NumInstr: 2, Kind: isa.BranchRet, Taken: true, Target: 0x4000_0200}
	e.Organization().Insert(ret.PC, btb.Entry{NumInstr: 2, Kind: isa.BranchRet})
	ev := e.Evaluate(0, ret, 0, false)
	if !ev.BTBHit {
		t.Fatal("no-RIB return missed despite U-BTB residence")
	}
}
