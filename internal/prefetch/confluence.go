package prefetch

import (
	"shotgun/internal/btb"
	"shotgun/internal/isa"
	"shotgun/internal/stream"
	"shotgun/internal/uncore"
)

// Confluence (Kaynak et al., MICRO'15) is the state-of-the-art temporal
// streaming prefetcher: SHIFT's shared L1-I access history drives both
// instruction and BTB prefetching. We model it per Section 5.2 of the
// Shotgun paper: a 16K-entry BTB (the paper's generous upper bound), a
// 32K-entry history with an 8K-entry index virtualized into the LLC (the
// displaced capacity is charged via uncore.Config.LLCReserveBytes — see
// ConfluenceLLCReserveBytes), and — critically — an LLC round-trip delay
// on every stream restart before prefetching can resume, which is what
// costs Confluence its edge on Apache/Nutch/Streaming (Section 6.1).
type Confluence struct {
	ctx  Context
	btb  *btb.Conventional
	hist *stream.SHIFT

	active     bool
	pos        uint64 // history position of the last matched block
	issuedUpTo uint64 // history position up to which probes are issued

	depth    int
	indexLat uint64

	misses uint64
	// Restarts counts stream restarts (each pays the index round-trip);
	// Matches counts fetches that advanced the live stream.
	Restarts uint64
	Matches  uint64
}

// ConfluenceBTBEntries is the paper's upper-bound BTB size for Confluence.
const ConfluenceBTBEntries = 16384

// ConfluenceLLCReserveBytes is the LLC capacity displaced by the
// virtualized history and index. The paper charges 204KB of history plus
// 240KB of tag extensions against an 8MB LLC (~5.5%); we charge the same
// fraction of the simulator's 1MB modeled LLC share.
const ConfluenceLLCReserveBytes = 56 << 10

// confluenceDepth is the stream-replay lookahead in blocks.
const confluenceDepth = 40

// confluenceMatchWindow is how far ahead in the stream a fetched block
// may match before the stream is considered diverged.
const confluenceMatchWindow = 16

// confluenceHistoryEntries models SHIFT's 32K-entry per-core history
// scaled by cross-core sharing: all 16 cores run the same workload and
// contribute to (and read) one virtualized history, so a recurring code
// sequence re-enters the shared history 16x more often than a private
// one. A single-core simulation reproduces that recurrence-distance
// effect by scaling the history span.
const confluenceHistoryEntries = 16 * 32 << 10

// confluenceIndexEntries scales the 8K-entry index table the same way.
const confluenceIndexEntries = 16 * 8 << 10

// NewConfluence builds the engine (16K-entry BTB, shared SHIFT history).
func NewConfluence(ctx Context) *Confluence {
	return &Confluence{
		ctx:      ctx,
		btb:      btb.MustNewConventional(ConfluenceBTBEntries),
		hist:     stream.New(confluenceHistoryEntries, confluenceIndexEntries),
		depth:    confluenceDepth,
		indexLat: uint64(ctx.Hier.Config().LLCLatencyCycles + ctx.Hier.Mesh.UncongestedRoundTrip()),
	}
}

// Name implements Engine.
func (e *Confluence) Name() string { return "confluence" }

// History exposes the SHIFT substrate (for storage reporting).
func (e *Confluence) History() *stream.SHIFT { return e.hist }

// Evaluate implements Engine: the oversized BTB makes decode redirects
// rare; instruction prefetching is driven by the stream engine, not the
// runahead, so no FDIP probes are issued here.
func (e *Confluence) Evaluate(now uint64, bb isa.BasicBlock, _ isa.Addr, _ bool) Eval {
	if bb.Kind == isa.BranchNone {
		return Eval{BTBHit: true}
	}
	if _, ok := e.btb.Lookup(bb.PC); ok {
		return Eval{BTBHit: true}
	}
	e.misses++
	e.btb.Insert(bb.PC, btb.EntryFromBlock(bb))
	return Eval{DecodeRedirect: bb.Taken}
}

// Warm implements Engine: BTB training only. The SHIFT history is
// trained by OnRetire, which the warm path drives too; the live stream
// state is timing-coupled and re-established by the detailed warm-up.
func (e *Confluence) Warm(bb isa.BasicBlock) {
	if bb.Kind == isa.BranchNone {
		return
	}
	if _, ok := e.btb.Lookup(bb.PC); !ok {
		e.btb.Insert(bb.PC, btb.EntryFromBlock(bb))
	}
}

// OnDemandMiss implements Engine: an L1-I miss restarts the stream. The
// index lookup costs an LLC round trip before any prefetch issues — the
// start-up delay Section 6.1 blames for Confluence's weak coverage on
// Nutch/Apache/Streaming.
func (e *Confluence) OnDemandMiss(now uint64, block isa.Addr) {
	pos, ok := e.hist.Find(block)
	if !ok {
		e.active = false
		return
	}
	e.Restarts++
	e.active = true
	e.pos = pos
	e.issuedUpTo = pos
	e.issue(now + e.indexLat)
}

// OnFetch implements Engine: fetched blocks matching the live stream
// advance it, keeping the prefetch window `depth` blocks ahead.
func (e *Confluence) OnFetch(now uint64, block isa.Addr, _ uncore.Source) {
	if !e.active {
		return
	}
	block = block.Block()
	for k := uint64(1); k <= confluenceMatchWindow; k++ {
		b, ok := e.hist.At(e.pos + k)
		if !ok {
			return
		}
		if b == block {
			e.pos += k
			e.Matches++
			e.issue(now)
			return
		}
	}
}

// issue extends prefetch probes up to depth blocks past the current
// stream position, paced at a few probes per cycle so a burst does not
// swamp the mesh (the stream engine has finite issue bandwidth).
func (e *Confluence) issue(at uint64) {
	const probesPerCycle = 4
	target := e.pos + uint64(e.depth)
	n := 0
	for p := e.issuedUpTo + 1; p <= target; p++ {
		b, ok := e.hist.At(p)
		if !ok {
			break
		}
		e.ctx.Hier.PrefetchBlock(at+uint64(n/probesPerCycle), b)
		e.issuedUpTo = p
		n++
	}
}

// OnRetire implements Engine: the retire stream trains the history.
func (e *Confluence) OnRetire(bb isa.BasicBlock) {
	first, last := bb.BlockSpan()
	for blk := first; blk <= last; blk += isa.BlockBytes {
		e.hist.Record(blk)
	}
}

// OnArrival implements Engine: Confluence prefills the BTB from
// prefetched blocks using its unified metadata (predecode on fill).
func (e *Confluence) OnArrival(now uint64, arrivals []uncore.Arrival) {
	for _, a := range arrivals {
		for _, br := range e.ctx.Dec.Decode(a.Block) {
			if _, ok := e.btb.Peek(br.BlockPC); !ok {
				e.btb.Insert(br.BlockPC, br.Entry)
			}
		}
	}
}

// BTBMisses implements Engine.
func (e *Confluence) BTBMisses() uint64 { return e.misses }

// ResetStats implements Engine.
func (e *Confluence) ResetStats() {
	e.misses = 0
	e.Restarts = 0
	e.Matches = 0
	e.btb.ResetStats()
}

// OnMispredict implements Engine: Confluence prefetches from recorded
// streams, not the runahead, so mispredictions issue no extra probes.
func (e *Confluence) OnMispredict(uint64, isa.Addr) {}
