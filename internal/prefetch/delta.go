package prefetch

import (
	"shotgun/internal/btb"
	"shotgun/internal/isa"
	"shotgun/internal/uncore"
)

// Delta is a delta-pattern instruction prefetcher: a shift register
// records the deltas (in cache blocks) between consecutively evaluated
// basic-block addresses, a matcher looks for the shortest repeating
// delta cycle in that register, and on a match the engine prefetches
// along the projected continuation of the cycle. Loop-heavy code with a
// stable block stride — including strides spanning multiple branches —
// is covered without any BTB-directed lookahead, which makes Delta the
// structural opposite of the FDIP lineage: it needs no runahead BPU
// accuracy, but it cannot anticipate irregular control flow.
//
// The BTB side is the conventional baseline (None): a miss on a taken
// branch re-steers the front-end at decode.
type Delta struct {
	ctx Context
	btb *btb.Conventional

	matcher deltaMatcher

	misses uint64
	// MatchedPrefetches counts probes issued along matched delta cycles.
	MatchedPrefetches uint64
}

const (
	// deltaHistLen is the shift register's depth: a cycle of period p is
	// only accepted once it has filled 2p register slots, so the longest
	// detectable period is deltaHistLen/2.
	deltaHistLen = 16
	// deltaMaxPeriod bounds the repeating-cycle search.
	deltaMaxPeriod = 4
	// deltaDegree is the prefetch degree: how many blocks ahead the
	// matched cycle is projected.
	deltaDegree = 4
)

// deltaMatcher is the delta shift register plus its repeating-cycle
// detector. All state is fixed-size — arbitrary address streams cannot
// grow it (FuzzDeltaMatcher pins this).
type deltaMatcher struct {
	deltas [deltaHistLen]int64 // block-address deltas, youngest last
	filled int
	last   isa.Addr
	have   bool
}

// observe shifts the delta from the previously observed block address
// into the register. The first observation only seeds the register.
func (m *deltaMatcher) observe(block isa.Addr) {
	if m.have {
		d := int64(block-m.last) / isa.BlockBytes
		copy(m.deltas[:], m.deltas[1:])
		m.deltas[deltaHistLen-1] = d
		if m.filled < deltaHistLen {
			m.filled++
		}
	}
	m.last = block
	m.have = true
}

// match returns the shortest period p in [1, deltaMaxPeriod] whose last
// p deltas repeat the p before them. All-zero cycles (the same block
// re-observed) carry no prefetchable information and are rejected.
func (m *deltaMatcher) match() (int, bool) {
	for p := 1; p <= deltaMaxPeriod; p++ {
		if m.filled < 2*p {
			break
		}
		repeating := true
		nonzero := false
		for i := 0; i < p; i++ {
			a := m.deltas[deltaHistLen-1-i]
			if a != m.deltas[deltaHistLen-1-p-i] {
				repeating = false
				break
			}
			if a != 0 {
				nonzero = true
			}
		}
		if repeating && nonzero {
			return p, true
		}
	}
	return 0, false
}

// project extrapolates the matched period-p cycle forward from base,
// writing up to len(dst) block addresses and returning how many.
func (m *deltaMatcher) project(base isa.Addr, p int, dst []isa.Addr) int {
	addr := base
	for i := range dst {
		addr += isa.Addr(m.deltas[deltaHistLen-p+i%p] * isa.BlockBytes)
		dst[i] = addr
	}
	return len(dst)
}

// NewDelta builds the engine with the given conventional-BTB entry count.
func NewDelta(ctx Context, btbEntries int) *Delta {
	return &Delta{ctx: ctx, btb: btb.MustNewConventional(btbEntries)}
}

// Name implements Engine.
func (e *Delta) Name() string { return "delta" }

// BTB exposes the conventional BTB (for harness MPKI accounting).
func (e *Delta) BTB() *btb.Conventional { return e.btb }

// Evaluate implements Engine: train the delta register on the block's
// address, prefetch along a matched cycle, and evaluate the
// conventional BTB (miss on a taken branch: decode re-steer).
func (e *Delta) Evaluate(now uint64, bb isa.BasicBlock, _ isa.Addr, _ bool) Eval {
	e.matcher.observe(bb.PC.Block())
	if p, ok := e.matcher.match(); ok {
		var buf [deltaDegree]isa.Addr
		n := e.matcher.project(bb.PC.Block(), p, buf[:])
		for i := 0; i < n; i++ {
			e.ctx.Hier.PrefetchBlock(now, buf[i])
			e.MatchedPrefetches++
		}
	}

	if bb.Kind == isa.BranchNone {
		return Eval{BTBHit: true}
	}
	if _, ok := e.btb.Lookup(bb.PC); ok {
		return Eval{BTBHit: true}
	}
	e.misses++
	e.btb.Insert(bb.PC, btb.EntryFromBlock(bb))
	return Eval{DecodeRedirect: bb.Taken}
}

// Warm implements Engine: BTB and delta-register training without any
// prefetch traffic — the probes are pure timing behaviour, re-issued by
// the detailed warm-up blocks.
func (e *Delta) Warm(bb isa.BasicBlock) {
	e.matcher.observe(bb.PC.Block())
	if bb.Kind == isa.BranchNone {
		return
	}
	if _, ok := e.btb.Lookup(bb.PC); !ok {
		e.btb.Insert(bb.PC, btb.EntryFromBlock(bb))
	}
}

// OnArrival implements Engine (no predecode-driven filling).
func (e *Delta) OnArrival(uint64, []uncore.Arrival) {}

// OnRetire implements Engine.
func (e *Delta) OnRetire(isa.BasicBlock) {}

// OnFetch implements Engine.
func (e *Delta) OnFetch(uint64, isa.Addr, uncore.Source) {}

// OnDemandMiss implements Engine.
func (e *Delta) OnDemandMiss(uint64, isa.Addr) {}

// OnMispredict implements Engine: the delta stream follows the trace,
// not a predicted path, so there is nothing to chase.
func (e *Delta) OnMispredict(uint64, isa.Addr) {}

// BTBMisses implements Engine.
func (e *Delta) BTBMisses() uint64 { return e.misses }

// ResetStats implements Engine.
func (e *Delta) ResetStats() {
	e.misses = 0
	e.MatchedPrefetches = 0
	e.btb.ResetStats()
}
