// Mechanism-conformance suite: every engine behind the Engine interface
// must honour the same contract — Warm trains predictor state without
// touching timing statistics, a fresh engine is deterministic
// bit-for-bit, ResetStats re-arms the counters without corrupting the
// trained state, and the per-block hot path does not allocate. New
// mechanisms get these guarantees for free by appearing in
// conformanceEngines; a mechanism that cannot pass them does not belong
// behind the interface.
package prefetch

import (
	"testing"

	"shotgun/internal/btb"
	"shotgun/internal/cache"
	"shotgun/internal/footprint"
	"shotgun/internal/isa"
	"shotgun/internal/noc"
	"shotgun/internal/predecode"
	"shotgun/internal/program"
	"shotgun/internal/uncore"
	"shotgun/internal/workload"
)

// engineCase names one mechanism and how to build it against a context.
type engineCase struct {
	name string
	mk   func(Context) Engine
}

// conformanceEngines lists every mechanism the suite checks — all of
// them, including the region-mode Shotgun variants.
func conformanceEngines() []engineCase {
	return []engineCase{
		{"none", func(ctx Context) Engine { return NewNone(ctx, 2048) }},
		{"fdip", func(ctx Context) Engine { return NewFDIP(ctx, 2048) }},
		{"rdip", func(ctx Context) Engine { return NewRDIP(ctx, 2048) }},
		{"delta", func(ctx Context) Engine { return NewDelta(ctx, 2048) }},
		{"boomerang", func(ctx Context) Engine { return NewBoomerang(ctx, 2048) }},
		{"confluence", func(ctx Context) Engine { return NewConfluence(ctx) }},
		{"shotgun", func(ctx Context) Engine { return shotgunEngine(ctx) }},
		{"shotgun-5blocks", func(ctx Context) Engine {
			return NewShotgun(ctx, ShotgunConfig{
				Sizes: btb.MustShotgunSizesForBudget(2048), Layout: footprint.Layout8, Mode: RegionFiveBlocks,
			})
		}},
		{"ideal", func(ctx Context) Engine { return NewIdeal(ctx) }},
	}
}

// conformanceProgram is the block-stream source every conformance check
// replays: small enough that its instruction footprint settles into the
// caches, large enough to exercise calls, returns and loops.
func conformanceProgram() *program.Program {
	return program.MustGenerate(program.GenParams{NumAppFuncs: 12, NumKernelFuncs: 4}, 11)
}

// conformanceContext builds a private hierarchy for one engine under
// test, mirroring testContext but from an explicit program.
func conformanceContext(prog *program.Program) Context {
	cfg := uncore.DefaultConfig()
	cfg.Mesh = noc.Config{Rows: 4, Cols: 4, HopCycles: 3, SlotsPerCycle: 100}
	return Context{Hier: uncore.New(cfg), Dec: predecode.NewDecoder(prog)}
}

// conformanceStream captures n dynamic blocks from the program walker so
// every replay sees the identical sequence.
func conformanceStream(prog *program.Program, n int) []isa.BasicBlock {
	w := workload.NewWalker(prog, 23)
	blocks := make([]isa.BasicBlock, n)
	for i := range blocks {
		blocks[i] = w.Next()
	}
	return blocks
}

// drive replays the captured stream against an engine the way the core
// does: one Evaluate per block (with a RAS for return blocks), the
// retire hook, the fetch observation, and arrival polling, each block
// one cycle apart. ras is reusable scratch so the replay loop itself
// stays allocation-free for the hot-path check.
func drive(e Engine, ctx Context, blocks []isa.BasicBlock, start uint64, ras []isa.Addr) uint64 {
	ras = ras[:0]
	now := start
	for _, bb := range blocks {
		if arr := ctx.Hier.PollArrivals(now); len(arr) > 0 {
			e.OnArrival(now, arr)
		}
		var rasCall isa.Addr
		var rasOK bool
		if bb.Kind == isa.BranchRet && len(ras) > 0 {
			rasCall = ras[len(ras)-1]
			ras = ras[:len(ras)-1]
			rasOK = true
		}
		e.Evaluate(now, bb, rasCall, rasOK)
		if bb.Kind == isa.BranchCall || bb.Kind == isa.BranchTrap {
			ras = append(ras, bb.PC)
		}
		first, last := bb.BlockSpan()
		for blk := first; blk <= last; blk += isa.BlockBytes {
			_, src := ctx.Hier.FetchBlock(now, blk)
			e.OnFetch(now, blk, src)
			if src == uncore.SrcLLC || src == uncore.SrcMemory {
				e.OnDemandMiss(now, blk)
			}
		}
		e.OnRetire(bb)
		now++
	}
	return now
}

// fingerprint is the bit-comparable outcome of a replay.
type fingerprint struct {
	btbMisses uint64
	hier      uncore.Stats
	l1i       cache.Stats
}

func snapshot(e Engine, ctx Context) fingerprint {
	return fingerprint{
		btbMisses: e.BTBMisses(),
		hier:      ctx.Hier.Stats(),
		l1i:       ctx.Hier.L1I.Stats(),
	}
}

// TestConformanceDeterministicReplay: two fresh engines fed the
// identical stream must end bit-identical — counters, hierarchy stats
// and L1-I behaviour. Any hidden nondeterminism (map iteration, time,
// random tie-breaks) breaks simulation reproducibility.
func TestConformanceDeterministicReplay(t *testing.T) {
	prog := conformanceProgram()
	blocks := conformanceStream(prog, 4000)
	for _, tc := range conformanceEngines() {
		t.Run(tc.name, func(t *testing.T) {
			var fps [2]fingerprint
			for i := range fps {
				ctx := conformanceContext(prog)
				e := tc.mk(ctx)
				drive(e, ctx, blocks, 0, nil)
				fps[i] = snapshot(e, ctx)
			}
			if fps[0] != fps[1] {
				t.Fatalf("replay diverged:\n  run 1: %+v\n  run 2: %+v", fps[0], fps[1])
			}
		})
	}
}

// TestConformanceWarmLeavesTimingAlone: Warm is the functional-warming
// hook — it may train BTBs, histories and footprints, but it must not
// issue hierarchy traffic, count BTB misses, or leave fills in flight.
func TestConformanceWarmLeavesTimingAlone(t *testing.T) {
	prog := conformanceProgram()
	blocks := conformanceStream(prog, 4000)
	for _, tc := range conformanceEngines() {
		t.Run(tc.name, func(t *testing.T) {
			ctx := conformanceContext(prog)
			e := tc.mk(ctx)
			before := snapshot(e, ctx)
			for _, bb := range blocks {
				e.Warm(bb)
			}
			after := snapshot(e, ctx)
			// Cache occupancy (inserts/evictions) is functional state a
			// warming pass may legitimately build; the timing outcomes —
			// hits, misses, fills, prefetch traffic, BTB misses — must
			// stay untouched.
			before.l1i.Inserts, before.l1i.Evictions = 0, 0
			after.l1i.Inserts, after.l1i.Evictions = 0, 0
			if before != after {
				t.Fatalf("Warm touched timing state:\n  before: %+v\n  after:  %+v", before, after)
			}
			if n := ctx.Hier.InflightCount(); n != 0 {
				t.Fatalf("Warm left %d fills in flight", n)
			}
		})
	}
}

// TestConformanceResetRerunStability: ResetStats at a warmup boundary
// must re-arm the counters without corrupting trained state — two fresh
// engines that warm, reset and measure over the identical streams must
// produce bit-identical measured counters.
func TestConformanceResetRerunStability(t *testing.T) {
	prog := conformanceProgram()
	warm := conformanceStream(prog, 3000)
	measure := conformanceStream(prog, 2000)
	for _, tc := range conformanceEngines() {
		t.Run(tc.name, func(t *testing.T) {
			var fps [2]fingerprint
			for i := range fps {
				ctx := conformanceContext(prog)
				e := tc.mk(ctx)
				now := drive(e, ctx, warm, 0, nil)
				e.ResetStats()
				ctx.Hier.ResetStats()
				if e.BTBMisses() != 0 {
					t.Fatalf("ResetStats left BTBMisses = %d", e.BTBMisses())
				}
				drive(e, ctx, measure, now, nil)
				fps[i] = snapshot(e, ctx)
			}
			if fps[0] != fps[1] {
				t.Fatalf("post-reset replay diverged:\n  run 1: %+v\n  run 2: %+v", fps[0], fps[1])
			}
		})
	}
}

// TestConformanceHotPathAllocs: once the engine's tables and the caches
// are warm, the per-block hot path — Evaluate, OnFetch, OnRetire, Warm —
// must not allocate. Steady-state allocation would dominate a
// multi-million-block run's profile.
func TestConformanceHotPathAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting is meaningless under -short noise")
	}
	prog := program.MustGenerate(program.GenParams{NumAppFuncs: 8, NumKernelFuncs: 2}, 11)
	blocks := conformanceStream(prog, 2000)
	for _, tc := range conformanceEngines() {
		t.Run(tc.name, func(t *testing.T) {
			ctx := conformanceContext(prog)
			e := tc.mk(ctx)
			// Warm until the footprint is resident and every structure has
			// seen every block.
			now := uint64(0)
			ras := make([]isa.Addr, 0, 256)
			for i := 0; i < 3; i++ {
				now = drive(e, ctx, blocks, now, ras)
			}
			// Drain stragglers so the measured loop sees no new arrivals.
			now += 10_000
			ctx.Hier.PollArrivals(now)
			avg := testing.AllocsPerRun(20, func() {
				now = drive(e, ctx, blocks, now, ras)
				for _, bb := range blocks {
					e.Warm(bb)
				}
			})
			if avg != 0 {
				t.Fatalf("steady-state replay allocates %.1f times per pass", avg)
			}
		})
	}
}
