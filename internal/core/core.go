// Package core models one out-of-order server core (Table 3: 3-way OoO,
// 128-entry ROB) with a decoupled front-end: a branch-prediction unit
// that runs ahead of fetch filling a fetch target queue (FTQ), a fetch
// engine that consumes the FTQ through the L1-I, and a retire-side
// backend that exposes front-end stall cycles — the paper's primary
// metric.
//
// The simulation is trace-driven: the workload walker supplies the
// correct execution path, and the core charges the penalties the modeled
// structures (BTB organization, TAGE, RAS, caches) would have incurred —
// decode-time re-steers for undetected taken branches, execute-time
// flushes for direction/return mispredictions, and fetch stalls for L1-I
// misses. A control-flow delivery engine (package prefetch) supplies the
// BTB organization and prefetching policy.
package core

import (
	"shotgun/internal/bpu"
	"shotgun/internal/isa"
	"shotgun/internal/prefetch"
	"shotgun/internal/uncore"
	"shotgun/internal/workload"
	"shotgun/internal/xrand"
)

// Config sets the core's microarchitectural parameters. Zero fields
// default to Table 3 values.
type Config struct {
	FetchWidth  int // 3 (3-way core)
	RetireWidth int // 3
	ROBEntries  int // 128
	FTQEntries  int // 32 (Section 5.2)

	// RunaheadPerCycle bounds BPU throughput in basic blocks per cycle.
	RunaheadPerCycle int // 2

	// DecodeRedirectCycles is the bubble for a taken branch undetected
	// until decode (BTB miss); ExecRedirectCycles the flush penalty for
	// direction/return-target mispredictions resolved at execute.
	DecodeRedirectCycles int // 8
	ExecRedirectCycles   int // 14

	// ExecLatencyCycles is the dispatch-to-complete latency of ordinary
	// instructions; loads add their memory latency.
	ExecLatencyCycles int // 3

	RASEntries int // 32

	// CLZTage selects the CLZ-indexed TAGE variant (bpu.NewCLZTAGE) as
	// the direction predictor; false is the default TAGE.
	CLZTage bool

	// Data-side behaviour (from the workload profile).
	LoadFrac   float64
	DataBlocks int
	DataZipfS  float64
	DataSeed   uint64
}

func (c *Config) setDefaults() {
	if c.FetchWidth == 0 {
		c.FetchWidth = 3
	}
	if c.RetireWidth == 0 {
		c.RetireWidth = 3
	}
	if c.ROBEntries == 0 {
		c.ROBEntries = 128
	}
	if c.FTQEntries == 0 {
		c.FTQEntries = 32
	}
	if c.RunaheadPerCycle == 0 {
		c.RunaheadPerCycle = 2
	}
	if c.DecodeRedirectCycles == 0 {
		c.DecodeRedirectCycles = 8
	}
	if c.ExecRedirectCycles == 0 {
		c.ExecRedirectCycles = 14
	}
	if c.ExecLatencyCycles == 0 {
		c.ExecLatencyCycles = 3
	}
	if c.RASEntries == 0 {
		c.RASEntries = 32
	}
	if c.LoadFrac == 0 {
		c.LoadFrac = 0.25
	}
	if c.DataBlocks == 0 {
		c.DataBlocks = 8 << 10
	}
	if c.DataZipfS == 0 {
		c.DataZipfS = 0.8
	}
	if c.DataSeed == 0 {
		c.DataSeed = 0xdada
	}
}

// dataBase places the synthetic data working set away from code.
const dataBase = isa.Addr(0x2000_0000_0000)

// Stats aggregates the core's measurement counters.
type Stats struct {
	Cycles       uint64
	Instructions uint64

	// FrontEndStallCycles counts cycles where retirement was starved by
	// an empty ROB (nothing in flight: the front-end failed to supply
	// instructions). BackEndStallCycles counts zero-retire cycles with a
	// non-empty ROB (data stalls).
	FrontEndStallCycles uint64
	BackEndStallCycles  uint64

	// FetchStallCycles counts cycles fetch waited on an L1-I fill.
	FetchStallCycles uint64

	DecodeRedirects uint64
	ExecRedirects   uint64
	DirMispredicts  uint64
	RASMispredicts  uint64

	CondBranches uint64
	Branches     uint64
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// MPKI converts an event count to events per kilo-instruction.
func (s Stats) MPKI(events uint64) float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(events) / float64(s.Instructions) * 1000
}

// pblock is one trace block in the lookahead window with its cached BPU
// evaluation (evaluated exactly once, in trace order, so TAGE and RAS see
// a consistent in-order stream even across flush re-walks).
type pblock struct {
	bb             isa.BasicBlock
	evaluated      bool
	decodeRedirect bool
	execRedirect   bool
}

// Core simulates one core running a basic-block trace under a control-
// flow delivery engine.
type Core struct {
	cfg    Config
	trace  workload.Stream
	engine prefetch.Engine
	hier   *uncore.Hierarchy

	tage *bpu.TAGE
	ras  *bpu.RAS

	dataRNG  *xrand.Source
	dataZipf *xrand.Zipf
	// loadDraw is the LoadFrac Bernoulli with its threshold precomputed;
	// it consumes the same draws as dataRNG.Bool(LoadFrac) so results are
	// unchanged.
	loadDraw xrand.Bernoulli
	// loadSched is dispatch's reusable per-block load schedule: the data
	// addresses the block's instructions access, drawn in one pass.
	loadSched []isa.Addr

	now uint64

	// pending is the lookahead window; pending[0:ftqLen] is the FTQ
	// (evaluated, awaiting fetch); pending[ftqLen:] awaits evaluation.
	pending []pblock
	ftqLen  int

	runStallUntil uint64
	// wrongPath is set when the runahead evaluated a block whose branch
	// re-steers the pipeline: until that block is dispatched (and the
	// flush happens), the real BPU would be predicting down the wrong
	// path, so no further correct-path blocks may be evaluated or
	// prefetched.
	wrongPath bool

	fetchBusyUntil uint64
	headIssued     bool
	headReadyAt    uint64

	// rob holds completion times; in-order retire from the head.
	rob     []uint64
	robHead int
	robLen  int

	// blocksDispatched counts trace blocks dispatched into the ROB — the
	// progress unit of sampled execution (RunBlocks).
	blocksDispatched uint64

	// ctxs, when non-nil, switches the core to the multi-context
	// front-end (NewMultiContext): N hardware contexts share the fetch
	// engine, BTB/prefetch engine, L1-I and direction predictor, with
	// <1-cycle switch-on-stall. The single-context fields above are then
	// unused; Tick/NextEvent/AdvanceIdle dispatch to the MC variants.
	ctxs   []*hwContext
	runCtx int // context the BPU runahead is following
	fetCtx int // context the fetch engine last dispatched for

	stats Stats
}

// hwContext is one hardware context of a multi-context front-end: its
// own trace stream, return-address stack, lookahead window and data-side
// RNG state. Everything else — TAGE, engine, caches, fetch bandwidth,
// ROB, retire — is shared with its siblings, which is exactly where the
// SMT pressure this mode models comes from.
type hwContext struct {
	trace workload.Stream
	ras   *bpu.RAS

	dataRNG  *xrand.Source
	dataZipf *xrand.Zipf

	pending []pblock
	ftqLen  int

	runStallUntil uint64
	wrongPath     bool

	headIssued  bool
	headReadyAt uint64
}

// ensurePending tops up the context's lookahead window from its trace.
func (hc *hwContext) ensurePending(n int) {
	for len(hc.pending) < n {
		hc.pending = append(hc.pending, pblock{bb: hc.trace.Next()})
	}
}

// popPending removes the context's pending[0] after dispatch, mirroring
// Core.popPending's compaction policy.
func (hc *hwContext) popPending(cfg *Config) {
	hc.pending = hc.pending[1:]
	hc.ftqLen--
	hc.headIssued = false
	if cap(hc.pending) > 4*(cfg.FTQEntries+8) && len(hc.pending) <= cfg.FTQEntries+8 {
		fresh := make([]pblock, len(hc.pending), cfg.FTQEntries+8)
		copy(fresh, hc.pending)
		hc.pending = fresh
	}
}

// ctxDataSalt decorrelates per-context data-side RNG streams within one
// core. Context 0 is unsalted: a one-context core draws the exact
// single-context stream.
func ctxDataSalt(k int) uint64 {
	return uint64(k) * 0x94d049bb133111eb
}

// New builds a core over the given trace, engine and hierarchy.
func New(cfg Config, trace workload.Stream, engine prefetch.Engine, hier *uncore.Hierarchy) *Core {
	cfg.setDefaults()
	rng := xrand.New(cfg.DataSeed)
	tage := bpu.NewTAGE()
	if cfg.CLZTage {
		tage = bpu.NewCLZTAGE()
	}
	return &Core{
		cfg:       cfg,
		trace:     trace,
		engine:    engine,
		hier:      hier,
		tage:      tage,
		ras:       bpu.NewRAS(cfg.RASEntries),
		dataRNG:   rng,
		dataZipf:  xrand.NewZipf(rng, cfg.DataBlocks, cfg.DataZipfS),
		loadDraw:  xrand.NewBernoulli(cfg.LoadFrac),
		loadSched: make([]isa.Addr, 0, isa.MaxBlockInstrs),
		rob:       make([]uint64, cfg.ROBEntries),
	}
}

// NewMultiContext builds a core whose front-end is shared by
// len(streams) hardware contexts, one trace stream per context. A
// single stream yields exactly the classic single-context core (New),
// so the scenario layer can call this unconditionally. With N>1
// streams, each context gets its own RAS, lookahead window and salted
// data-side RNG; the fetch engine, prefetch engine/BTB, caches,
// direction predictor, ROB and retire stage are shared.
func NewMultiContext(cfg Config, streams []workload.Stream, engine prefetch.Engine, hier *uncore.Hierarchy) *Core {
	if len(streams) == 0 {
		panic("core: NewMultiContext needs at least one stream")
	}
	cfg.setDefaults()
	c := New(cfg, streams[0], engine, hier)
	if len(streams) == 1 {
		return c
	}
	c.ctxs = make([]*hwContext, len(streams))
	for k, s := range streams {
		rng := xrand.New(cfg.DataSeed ^ ctxDataSalt(k))
		c.ctxs[k] = &hwContext{
			trace:    s,
			ras:      bpu.NewRAS(cfg.RASEntries),
			dataRNG:  rng,
			dataZipf: xrand.NewZipf(rng, cfg.DataBlocks, cfg.DataZipfS),
		}
	}
	return c
}

// Now returns the current cycle.
func (c *Core) Now() uint64 { return c.now }

// Stats returns a snapshot of the counters.
func (c *Core) Stats() Stats { return c.stats }

// Instructions returns the retired-instruction counter alone — the
// per-tick progress probe of the scenario lockstep loop, which must not
// copy the whole Stats struct every cycle.
func (c *Core) Instructions() uint64 { return c.stats.Instructions }

// Hierarchy returns the memory hierarchy.
func (c *Core) Hierarchy() *uncore.Hierarchy { return c.hier }

// Engine returns the control-flow delivery engine.
func (c *Core) Engine() prefetch.Engine { return c.engine }

// ResetStats clears measurement counters at the warmup boundary without
// touching microarchitectural state.
func (c *Core) ResetStats() {
	c.stats = Stats{}
	c.hier.ResetStats()
	c.engine.ResetStats()
	c.tage.ResetStats()
}

// Run advances the simulation until at least n instructions have retired
// past the point this call was made, returning the cycle count consumed.
//
// Run is event-driven: after each real tick it skips ahead over the
// provably-idle span to the core's next event (NextEvent/AdvanceIdle),
// which is bit-identical to ticking every cycle — the scenario layer's
// lockstep engine still ticks cycle-by-cycle, and the equality tests
// (TestLockstepMatchesSerialSingleCore, TestEventKernelMatchesLockstep)
// pin the two executions to the same results.
func (c *Core) Run(n uint64) uint64 {
	startCycles := c.stats.Cycles
	target := c.stats.Instructions + n
	for c.stats.Instructions < target {
		c.Tick()
		if c.stats.Instructions >= target {
			// The crossing tick ends the run; skipping the idle span that
			// follows it would charge cycles a per-cycle loop never runs.
			break
		}
		if next := c.NextEvent(); next > c.now {
			c.AdvanceIdle(next - c.now)
		}
	}
	return c.stats.Cycles - startCycles
}

// BlocksDispatched returns how many trace blocks have been dispatched —
// sampled execution's progress unit.
func (c *Core) BlocksDispatched() uint64 { return c.blocksDispatched }

// RunBlocks advances the detailed simulation until n more trace blocks
// have been dispatched, returning the cycles consumed. Sampling measures
// in blocks rather than instructions so unit boundaries land on trace
// positions, independent of retire lag.
func (c *Core) RunBlocks(n uint64) uint64 {
	startCycles := c.stats.Cycles
	target := c.blocksDispatched + n
	for c.blocksDispatched < target {
		c.Tick()
		if c.blocksDispatched >= target {
			break
		}
		if next := c.NextEvent(); next > c.now {
			c.AdvanceIdle(next - c.now)
		}
	}
	return c.stats.Cycles - startCycles
}

// BeginWarm transitions from detailed execution to functional warming.
// The lookahead window holds trace blocks already consumed from the
// stream; they are drained through the warm path — cache/data warming
// for every entry, plus predictor training for the entries the runahead
// never evaluated (evaluated entries trained TAGE/RAS at evaluate time;
// re-training them would double-count) — and the front-end state is
// reset so the next detailed phase starts from a clean FTQ. The clock,
// the ROB, and in-flight fills are left untouched: warming takes zero
// simulated time.
func (c *Core) BeginWarm() {
	for i := range c.pending {
		p := &c.pending[i]
		if p.evaluated {
			c.warmCaches(p.bb)
		} else {
			c.WarmBlock(p.bb)
		}
	}
	c.pending = c.pending[:0]
	c.ftqLen = 0
	c.headIssued = false
	c.wrongPath = false
	c.runStallUntil = 0
	c.fetchBusyUntil = 0
}

// WarmBlock functionally executes one trace block: predictor and engine
// metadata training plus untimed cache warming, with no cycle cost.
func (c *Core) WarmBlock(bb isa.BasicBlock) {
	c.warmBPU(bb)
	c.warmCaches(bb)
}

// WarmBlocks functionally executes the next n trace blocks, returning
// the instructions they carry (the fast-forwarded instruction count).
func (c *Core) WarmBlocks(n uint64) uint64 {
	var instr uint64
	for i := uint64(0); i < n; i++ {
		bb := c.trace.Next()
		instr += uint64(bb.NumInstr)
		c.WarmBlock(bb)
	}
	return instr
}

// SkimBlocks fast-forwards the stream n blocks touching only the LLC —
// no cycles, no RNG draws, no L1/BTB/predictor training. Sampling uses
// it for the distant part of a period gap when a bounded functional-
// warming window is configured: the small structures are rebuilt by the
// warming window and detailed warm-up that follow, but the LLC's
// instruction working set is too large to rebuild in any affordable
// window, so it alone must track the stream continuously.
func (c *Core) SkimBlocks(n uint64) uint64 {
	var instr uint64
	// Consecutive basic blocks mostly share one 64-byte cache block
	// (~5.5 instructions per bb); touching it once per run of repeats
	// keeps the same LLC contents and recency at a fraction of the
	// Access calls, which dominate the skim's cost.
	last := isa.Addr(1) // never a block-aligned address
	for i := uint64(0); i < n; i++ {
		bb := c.trace.Next()
		instr += uint64(bb.NumInstr)
		first, lastBlk := bb.BlockSpan()
		for blk := first; blk <= lastBlk; blk += isa.BlockBytes {
			if blk == last {
				continue
			}
			c.hier.WarmLLC(blk)
			last = blk
		}
	}
	return instr
}

// warmBPU mirrors evaluate's exact predictor call sequence — RAS pop for
// returns, TAGE Predict+Update for conditionals (Predict counts lookups,
// which paces the use-bit decay), RAS push + ghist note for calls, ghist
// notes for returns and jumps — so the direction predictor and RAS cross
// a warming gap in the same state a detailed run would leave them.
func (c *Core) warmBPU(bb isa.BasicBlock) {
	if bb.Kind.IsReturn() {
		c.ras.Pop()
	}
	c.engine.Warm(bb)
	switch {
	case bb.Kind == isa.BranchCond:
		c.tage.Predict(bb.BranchPC())
		c.tage.Update(bb.BranchPC(), bb.Taken)
	case bb.Kind.IsCallLike():
		c.ras.Push(bpu.RASEntry{ReturnAddr: bb.FallThrough(), CallBlock: bb.PC})
		c.tage.NoteUncond()
	case bb.Kind.IsReturn():
		c.tage.NoteUncond()
	case bb.Kind == isa.BranchJump:
		c.tage.NoteUncond()
	}
}

// warmCaches applies a block's untimed memory-side effects: L1-I/LLC
// warming over the block span, the identical per-instruction Bernoulli
// and per-load Zipf draws the detailed dispatch consumes (keeping the
// data RNG stream aligned across mode switches) with L1-D/LLC warming
// for the loads, and the engine's retire-order training hook.
func (c *Core) warmCaches(bb isa.BasicBlock) {
	first, last := bb.BlockSpan()
	for blk := first; blk <= last; blk += isa.BlockBytes {
		c.hier.WarmFetch(blk)
	}
	for i := 0; i < bb.NumInstr; i++ {
		if c.loadDraw.Draw(c.dataRNG) {
			c.hier.WarmData(dataBase + isa.Addr(c.dataZipf.Next()*isa.BlockBytes))
		}
	}
	c.engine.OnRetire(bb)
}

// NextEvent returns the earliest cycle at which Tick can do anything
// beyond idle accounting: materialize an arrival, evaluate a block into
// the FTQ, issue or complete a fetch, dispatch, or retire. Every cycle
// in [Now, NextEvent) is provably idle — a Tick there mutates nothing
// but the stall counters, Cycles, and the clock (exactly what
// AdvanceIdle bulk-applies) and touches no shared uncore state.
//
// The deadline may be conservative (an "active" tick may still find
// nothing to do after a flush re-steers state), but it is never late:
// each branch below mirrors one gating condition of Tick's sub-units,
// and each such condition can only change at a deadline this function
// already includes. A finite value always exists while the trace has
// blocks — the runahead can act whenever the FTQ has room and the path
// is right, a wrong path implies an undispatched FTQ entry, and a full
// FTQ implies fetch or retire has a pending deadline.
func (c *Core) NextEvent() uint64 {
	if c.ctxs != nil {
		return c.nextEventMC()
	}
	// Completed fills are materialized the cycle the watermark expires.
	next := c.hier.NextArrival()

	// Runahead: able to evaluate now unless stalled, wrong-path, or out
	// of FTQ room; a pending reactive resolution is itself a deadline.
	if !c.wrongPath && c.ftqLen < c.cfg.FTQEntries {
		if c.now >= c.runStallUntil {
			return c.now
		}
		if c.runStallUntil < next {
			next = c.runStallUntil
		}
	}

	// Fetch: the regime boundaries (fetch bandwidth busy, fill wait) are
	// deadlines; an unissued head or a dispatchable head is activity now.
	if c.ftqLen > 0 {
		switch {
		case c.now < c.fetchBusyUntil:
			if c.fetchBusyUntil < next {
				next = c.fetchBusyUntil
			}
		case !c.headIssued:
			return c.now
		case c.headReadyAt > c.now:
			if c.headReadyAt < next {
				next = c.headReadyAt
			}
		case c.robFree() >= c.pending[0].bb.NumInstr:
			return c.now
			// Otherwise the head waits on backend pressure, which only
			// the retire deadline below can relieve.
		}
	}

	// Retire: the head of the ROB completes at a known cycle.
	if c.robLen > 0 && c.rob[c.robHead] < next {
		next = c.rob[c.robHead]
	}

	if next < c.now {
		return c.now
	}
	return next
}

// AdvanceIdle bulk-applies k idle cycles: exactly the state a Tick
// performs on a cycle strictly before NextEvent — the fetch-stall,
// front-end/back-end stall classification, the cycle counter and the
// clock — with no other mutation. Callers must only skip spans that end
// at or before NextEvent; the stall predicates below are constant
// across such a span because every cycle that could flip them is a
// deadline NextEvent includes.
func (c *Core) AdvanceIdle(k uint64) {
	if k == 0 {
		return
	}
	if c.ctxs != nil {
		c.advanceIdleMC(k)
		return
	}
	// fetch() counts a fill-wait cycle iff it is past the bandwidth
	// boundary with an issued head that has not arrived yet.
	if c.ftqLen > 0 && c.now >= c.fetchBusyUntil && c.headIssued && c.headReadyAt > c.now {
		c.stats.FetchStallCycles += k
	}
	// retire() classifies every zero-retire cycle; idle cycles retire
	// nothing by definition.
	if c.robLen == 0 {
		c.stats.FrontEndStallCycles += k
	} else {
		c.stats.BackEndStallCycles += k
	}
	c.now += k
	c.stats.Cycles += k
}

// Tick advances the simulation by one cycle.
func (c *Core) Tick() {
	if c.ctxs != nil {
		c.tickMC()
		return
	}
	// 1. Materialize completed fills; let the engine predecode them.
	if arr := c.hier.PollArrivals(c.now); arr != nil {
		c.engine.OnArrival(c.now, arr)
	}

	// 2. Branch-prediction unit runahead: evaluate blocks into the FTQ.
	c.runahead()

	// 3. Fetch: consume the FTQ head through the L1-I into the ROB.
	c.fetch()

	// 4. Retire up to RetireWidth completed instructions in order.
	c.retire()

	c.now++
	c.stats.Cycles++
}

// ensurePending tops up the lookahead window from the trace.
func (c *Core) ensurePending(n int) {
	for len(c.pending) < n {
		c.pending = append(c.pending, pblock{bb: c.trace.Next()})
	}
}

// runahead advances the BPU: up to RunaheadPerCycle blocks are evaluated
// (BTB lookup, direction/return prediction, engine prefetching) and
// appended to the FTQ.
func (c *Core) runahead() {
	for i := 0; i < c.cfg.RunaheadPerCycle; i++ {
		if c.now < c.runStallUntil {
			return // reactive BTB-miss resolution in progress
		}
		if c.wrongPath {
			return // runahead is down a wrong path until the flush
		}
		if c.ftqLen >= c.cfg.FTQEntries {
			return // FTQ full
		}
		c.ensurePending(c.ftqLen + 1)
		p := &c.pending[c.ftqLen]
		if !p.evaluated {
			stall := c.evaluate(p, c.ras)
			if stall > c.now {
				c.runStallUntil = stall
			}
		}
		if p.decodeRedirect || p.execRedirect {
			c.wrongPath = true
		}
		c.ftqLen++
	}
}

// evaluate performs the one-time BPU evaluation of a pending block,
// returning a non-zero stall deadline for reactive resolutions. The RAS
// is passed in because it is per-context state in multi-context mode;
// the single-context path always passes c.ras.
func (c *Core) evaluate(p *pblock, ras *bpu.RAS) uint64 {
	bb := p.bb
	p.evaluated = true

	// Returns consult the RAS (popped at predict time); Shotgun
	// additionally uses the popped call-block address to locate the
	// return footprint in the U-BTB.
	var rasCallBlock, rasPredTarget isa.Addr
	rasOK := false
	rasWrong := false
	if bb.Kind.IsReturn() {
		e, ok := ras.Pop()
		rasOK = ok
		rasCallBlock = e.CallBlock
		rasPredTarget = e.ReturnAddr
		rasWrong = !ok || e.ReturnAddr != bb.Target
	}

	ev := c.engine.Evaluate(c.now, bb, rasCallBlock, rasOK)

	if bb.Kind != isa.BranchNone {
		c.stats.Branches++
	}

	switch {
	case bb.Kind == isa.BranchCond:
		c.stats.CondBranches++
		pred := c.tage.Predict(bb.BranchPC())
		c.tage.Update(bb.BranchPC(), bb.Taken)
		if ev.BTBHit && pred != bb.Taken {
			p.execRedirect = true
			c.stats.DirMispredicts++
			// The runahead chases the predicted (wrong) direction.
			wrong := bb.Target
			if !bb.Taken {
				wrong = bb.FallThrough()
			}
			c.engine.OnMispredict(c.now, wrong)
		}
	case bb.Kind.IsCallLike():
		ras.Push(bpu.RASEntry{ReturnAddr: bb.FallThrough(), CallBlock: bb.PC})
		c.tage.NoteUncond()
	case bb.Kind.IsReturn():
		if ev.BTBHit && rasWrong {
			p.execRedirect = true
			c.stats.RASMispredicts++
			if rasOK {
				// The runahead chases the stale predicted return target.
				c.engine.OnMispredict(c.now, rasPredTarget)
			}
		}
		c.tage.NoteUncond()
	case bb.Kind == isa.BranchJump:
		c.tage.NoteUncond()
	}

	if ev.DecodeRedirect {
		p.decodeRedirect = true
	}
	return ev.StallUntil
}

// fetch consumes the FTQ head: issue the demand fetch for its cache
// blocks, wait for arrival, then dispatch its instructions into the ROB.
func (c *Core) fetch() {
	if c.now < c.fetchBusyUntil || c.ftqLen == 0 {
		return
	}
	p := &c.pending[0]

	if !c.headIssued {
		ready := c.now
		first, last := p.bb.BlockSpan()
		for blk := first; blk <= last; blk += isa.BlockBytes {
			r, src := c.hier.FetchBlock(c.now, blk)
			c.engine.OnFetch(c.now, blk, src)
			if src == uncore.SrcLLC || src == uncore.SrcMemory {
				c.engine.OnDemandMiss(c.now, blk)
			}
			if r > ready {
				ready = r
			}
		}
		c.headIssued = true
		c.headReadyAt = ready
	}
	if c.headReadyAt > c.now {
		c.stats.FetchStallCycles++
		return // L1-I fill in progress
	}

	// Dispatch into the ROB (all instructions of the block at once).
	n := p.bb.NumInstr
	if c.robFree() < n {
		return // backend pressure
	}
	c.dispatch(p.bb, c.dataRNG, c.dataZipf)

	// Fetch bandwidth: a 3-wide front-end needs ceil(n/width) cycles.
	busy := uint64((n + c.cfg.FetchWidth - 1) / c.cfg.FetchWidth)
	c.fetchBusyUntil = c.now + busy

	// Redirects: flush the FTQ beyond the branch and re-steer.
	switch {
	case p.decodeRedirect:
		c.stats.DecodeRedirects++
		c.redirect(c.cfg.DecodeRedirectCycles)
	case p.execRedirect:
		c.stats.ExecRedirects++
		c.redirect(c.cfg.ExecRedirectCycles)
	}

	// Pop the dispatched block.
	c.popPending()
}

// redirect models a pipeline re-steer: fetch emits a bubble and the FTQ
// contents past the redirecting branch are discarded (the runahead
// re-walks them; cached evaluations prevent double training).
func (c *Core) redirect(penalty int) {
	until := c.now + uint64(penalty)
	if until > c.fetchBusyUntil {
		c.fetchBusyUntil = until
	}
	c.ftqLen = 1 // keep only the block being dispatched
	if c.runStallUntil > c.now {
		// The pending resolution belongs to a flushed entry; the
		// re-walk will find the BTB filled, so drop the stall.
		c.runStallUntil = c.now
	}
	// The flush re-steers the BPU onto the correct path.
	c.wrongPath = false
}

// popPending removes pending[0] after dispatch.
func (c *Core) popPending() {
	c.pending = c.pending[1:]
	c.ftqLen--
	c.headIssued = false
	// Periodically compact the backing array.
	if cap(c.pending) > 4*(c.cfg.FTQEntries+8) && len(c.pending) <= c.cfg.FTQEntries+8 {
		fresh := make([]pblock, len(c.pending), c.cfg.FTQEntries+8)
		copy(fresh, c.pending)
		c.pending = fresh
	}
}

// dispatch enters a block's instructions into the ROB and notifies the
// engine of the retire-order stream (dispatch order equals retire order).
//
// The data side runs off a per-block schedule: one pass draws which
// instructions load and from where (the Bernoulli/Zipf draws, in the same
// per-instruction order as ever, so the random stream and therefore every
// result is unchanged), then the hierarchy is charged and the ROB filled
// from the schedule. Non-load instructions take the scheduling fast path:
// one RNG draw, no hierarchy call.
// The RNG and Zipf are passed in because they are per-context state in
// multi-context mode; the single-context path always passes its own.
func (c *Core) dispatch(bb isa.BasicBlock, rng *xrand.Source, zipf *xrand.Zipf) {
	execLat := uint64(c.cfg.ExecLatencyCycles)
	// Pass 1: the load schedule. A sentinel address marks non-loads so
	// pass 2 preserves instruction order without a second draw.
	sched := c.loadSched[:0]
	for i := 0; i < bb.NumInstr; i++ {
		if c.loadDraw.Draw(rng) {
			sched = append(sched, dataBase+isa.Addr(zipf.Next()*isa.BlockBytes))
		} else {
			sched = append(sched, 0)
		}
	}
	c.loadSched = sched
	// Pass 2: charge the hierarchy and fill the ROB.
	for _, addr := range sched {
		complete := c.now + execLat
		if addr != 0 {
			ready, _ := c.hier.DataAccess(c.now, addr)
			if ready+execLat > complete {
				complete = ready + execLat
			}
		}
		c.robPush(complete)
	}
	c.blocksDispatched++
	c.engine.OnRetire(bb)
}

func (c *Core) robFree() int { return c.cfg.ROBEntries - c.robLen }

func (c *Core) robPush(complete uint64) {
	// robHead+robLen < 2*ROBEntries always, so a compare-subtract wraps
	// the ring without the general modulo.
	idx := c.robHead + c.robLen
	if idx >= c.cfg.ROBEntries {
		idx -= c.cfg.ROBEntries
	}
	c.rob[idx] = complete
	c.robLen++
}

// retire pops up to RetireWidth completed instructions in order and
// classifies zero-retire cycles as front-end or back-end stalls.
func (c *Core) retire() {
	retired := 0
	for retired < c.cfg.RetireWidth && c.robLen > 0 && c.rob[c.robHead] <= c.now {
		c.robHead++
		if c.robHead == c.cfg.ROBEntries {
			c.robHead = 0
		}
		c.robLen--
		retired++
	}
	c.stats.Instructions += uint64(retired)
	if retired == 0 {
		if c.robLen == 0 {
			c.stats.FrontEndStallCycles++
		} else {
			c.stats.BackEndStallCycles++
		}
	}
}

// ---- Multi-context front-end ------------------------------------------
//
// The MC variants below mirror Tick/NextEvent/AdvanceIdle over N hardware
// contexts sharing one fetch engine, prefetch engine/BTB, L1-I, direction
// predictor, ROB and retire stage. Switch-on-stall is sub-cycle: in the
// same cycle a context stalls, the runahead and the fetch engine move to
// the next ready sibling. The single-context fields of Core are unused in
// this mode; per-context state lives in hwContext.

// tickMC advances the multi-context simulation by one cycle, in the same
// sub-unit order as Tick.
func (c *Core) tickMC() {
	if arr := c.hier.PollArrivals(c.now); arr != nil {
		c.engine.OnArrival(c.now, arr)
	}
	c.runaheadMC()
	c.fetchMC()
	c.retire()
	c.now++
	c.stats.Cycles++
}

// runaheadMC spends the cycle's RunaheadPerCycle evaluations on the
// contexts: the BPU keeps following c.runCtx while it can make progress
// (not stalled, not wrong-path, FTQ room) and switches to the next ready
// sibling the moment it cannot — switch-on-stall at zero cost.
func (c *Core) runaheadMC() {
	for i := 0; i < c.cfg.RunaheadPerCycle; i++ {
		var hc *hwContext
		for j := 0; j < len(c.ctxs); j++ {
			k := (c.runCtx + j) % len(c.ctxs)
			cand := c.ctxs[k]
			if c.now < cand.runStallUntil || cand.wrongPath || cand.ftqLen >= c.cfg.FTQEntries {
				continue
			}
			c.runCtx = k
			hc = cand
			break
		}
		if hc == nil {
			return // every context stalled, wrong-path, or FTQ-full
		}
		hc.ensurePending(hc.ftqLen + 1)
		p := &hc.pending[hc.ftqLen]
		if !p.evaluated {
			if stall := c.evaluate(p, hc.ras); stall > c.now {
				hc.runStallUntil = stall
			}
		}
		if p.decodeRedirect || p.execRedirect {
			hc.wrongPath = true
		}
		hc.ftqLen++
	}
}

// issueHead issues the demand fetch for a context's FTQ head, recording
// when its last block arrives.
func (c *Core) issueHead(hc *hwContext) {
	ready := c.now
	first, last := hc.pending[0].bb.BlockSpan()
	for blk := first; blk <= last; blk += isa.BlockBytes {
		r, src := c.hier.FetchBlock(c.now, blk)
		c.engine.OnFetch(c.now, blk, src)
		if src == uncore.SrcLLC || src == uncore.SrcMemory {
			c.engine.OnDemandMiss(c.now, blk)
		}
		if r > ready {
			ready = r
		}
	}
	hc.headIssued = true
	hc.headReadyAt = ready
}

// fetchMC shares the fetch engine across contexts: once past the
// bandwidth boundary it first issues every unissued FTQ head (demand
// probes overlap across contexts — fetch-under-fill), then dispatches
// for the first context, round-robin from the last one served, whose
// head has arrived and fits the ROB. At most one context dispatches per
// bandwidth slot; a cycle where the only eligible heads are waiting on
// fills is a fetch stall.
func (c *Core) fetchMC() {
	if c.now < c.fetchBusyUntil {
		return
	}
	for _, hc := range c.ctxs {
		if hc.ftqLen > 0 && !hc.headIssued {
			c.issueHead(hc)
		}
	}
	for j := 0; j < len(c.ctxs); j++ {
		k := (c.fetCtx + j) % len(c.ctxs)
		hc := c.ctxs[k]
		if hc.ftqLen == 0 || hc.headReadyAt > c.now {
			continue
		}
		p := &hc.pending[0]
		if c.robFree() < p.bb.NumInstr {
			continue // backend pressure
		}
		c.dispatch(p.bb, hc.dataRNG, hc.dataZipf)
		busy := uint64((p.bb.NumInstr + c.cfg.FetchWidth - 1) / c.cfg.FetchWidth)
		c.fetchBusyUntil = c.now + busy
		switch {
		case p.decodeRedirect:
			c.stats.DecodeRedirects++
			c.redirectCtx(hc, c.cfg.DecodeRedirectCycles)
		case p.execRedirect:
			c.stats.ExecRedirects++
			c.redirectCtx(hc, c.cfg.ExecRedirectCycles)
		}
		hc.popPending(&c.cfg)
		c.fetCtx = k
		return
	}
	// No context could dispatch; charge one fill-wait cycle iff some
	// context is actually waiting on an issued fetch.
	for _, hc := range c.ctxs {
		if hc.ftqLen > 0 && hc.headIssued && hc.headReadyAt > c.now {
			c.stats.FetchStallCycles++
			return
		}
	}
}

// redirectCtx is redirect for one context of a multi-context front-end:
// the bubble occupies the shared fetch engine, the flush is local to the
// re-steered context.
func (c *Core) redirectCtx(hc *hwContext, penalty int) {
	until := c.now + uint64(penalty)
	if until > c.fetchBusyUntil {
		c.fetchBusyUntil = until
	}
	hc.ftqLen = 1 // keep only the block being dispatched
	if hc.runStallUntil > c.now {
		hc.runStallUntil = c.now
	}
	hc.wrongPath = false
}

// nextEventMC mirrors NextEvent over the context set: each per-context
// gating condition contributes a deadline, shared fetch bandwidth and
// retire contribute theirs, and any condition that lets this very cycle
// do work returns Now immediately.
func (c *Core) nextEventMC() uint64 {
	next := c.hier.NextArrival()

	for _, hc := range c.ctxs {
		if !hc.wrongPath && hc.ftqLen < c.cfg.FTQEntries {
			if c.now >= hc.runStallUntil {
				return c.now
			}
			if hc.runStallUntil < next {
				next = hc.runStallUntil
			}
		}
	}

	anyFTQ := false
	for _, hc := range c.ctxs {
		if hc.ftqLen > 0 {
			anyFTQ = true
			break
		}
	}
	if anyFTQ {
		if c.now < c.fetchBusyUntil {
			if c.fetchBusyUntil < next {
				next = c.fetchBusyUntil
			}
		} else {
			for _, hc := range c.ctxs {
				if hc.ftqLen == 0 {
					continue
				}
				switch {
				case !hc.headIssued:
					return c.now
				case hc.headReadyAt > c.now:
					if hc.headReadyAt < next {
						next = hc.headReadyAt
					}
				case c.robFree() >= hc.pending[0].bb.NumInstr:
					return c.now
					// Otherwise this head waits on backend pressure; only
					// the retire deadline below can relieve it.
				}
			}
		}
	}

	if c.robLen > 0 && c.rob[c.robHead] < next {
		next = c.rob[c.robHead]
	}
	if next < c.now {
		return c.now
	}
	return next
}

// advanceIdleMC bulk-applies k idle cycles in multi-context mode. The
// stall predicates are constant across the span for the same reason as
// AdvanceIdle's: every cycle that could flip one is a deadline
// nextEventMC includes.
func (c *Core) advanceIdleMC(k uint64) {
	if c.now >= c.fetchBusyUntil {
		for _, hc := range c.ctxs {
			if hc.ftqLen > 0 && hc.headIssued && hc.headReadyAt > c.now {
				c.stats.FetchStallCycles += k
				break
			}
		}
	}
	if c.robLen == 0 {
		c.stats.FrontEndStallCycles += k
	} else {
		c.stats.BackEndStallCycles += k
	}
	c.now += k
	c.stats.Cycles += k
}
