package core

import (
	"testing"

	"shotgun/internal/isa"
	"shotgun/internal/noc"
	"shotgun/internal/predecode"
	"shotgun/internal/prefetch"
	"shotgun/internal/program"
	"shotgun/internal/uncore"
	"shotgun/internal/workload"
)

func testSetup(t testing.TB, mech string) (*Core, *uncore.Hierarchy) {
	t.Helper()
	prog := program.MustGenerate(program.GenParams{NumAppFuncs: 100, NumKernelFuncs: 24}, 11)
	walker := workload.NewWalker(prog, 3)
	cfg := uncore.DefaultConfig()
	cfg.Mesh = noc.Config{Rows: 4, Cols: 4, HopCycles: 3, SlotsPerCycle: 2}
	hier := uncore.New(cfg)
	ctx := prefetch.Context{Hier: hier, Dec: predecode.NewDecoder(prog)}
	var engine prefetch.Engine
	switch mech {
	case "none":
		engine = prefetch.NewNone(ctx, 2048)
	case "ideal":
		engine = prefetch.NewIdeal(ctx)
	case "boomerang":
		engine = prefetch.NewBoomerang(ctx, 2048)
	default:
		t.Fatalf("unknown mech %s", mech)
	}
	return New(Config{LoadFrac: 0.2, DataBlocks: 1 << 10, DataZipfS: 0.8}, walker, engine, hier), hier
}

func TestRunRetiresInstructions(t *testing.T) {
	c, _ := testSetup(t, "none")
	cycles := c.Run(100_000)
	if cycles == 0 {
		t.Fatal("no cycles elapsed")
	}
	s := c.Stats()
	if s.Instructions < 100_000 {
		t.Fatalf("retired %d instructions", s.Instructions)
	}
	ipc := s.IPC()
	if ipc <= 0 || ipc > 3 {
		t.Fatalf("IPC = %v out of (0, 3]", ipc)
	}
}

func TestStallClassificationExhaustive(t *testing.T) {
	c, _ := testSetup(t, "none")
	c.Run(50_000)
	s := c.Stats()
	// Every cycle either retires something or is classified as a stall.
	retireCycles := s.Cycles - s.FrontEndStallCycles - s.BackEndStallCycles
	if retireCycles <= 0 {
		t.Fatalf("no retiring cycles: %+v", s)
	}
	if s.FrontEndStallCycles == 0 {
		t.Fatal("baseline with cold caches must have front-end stalls")
	}
	if s.BackEndStallCycles == 0 {
		t.Fatal("load misses must produce back-end stalls")
	}
}

func TestIdealBeatsBaseline(t *testing.T) {
	base, _ := testSetup(t, "none")
	ideal, _ := testSetup(t, "ideal")
	base.Run(150_000)
	ideal.Run(150_000)
	if ideal.Stats().IPC() <= base.Stats().IPC() {
		t.Fatalf("ideal IPC %.3f not above baseline %.3f",
			ideal.Stats().IPC(), base.Stats().IPC())
	}
	// The ideal front-end eliminates nearly all front-end stalls except
	// redirect bubbles.
	bi := float64(base.Stats().FrontEndStallCycles) / float64(base.Stats().Instructions)
	ii := float64(ideal.Stats().FrontEndStallCycles) / float64(ideal.Stats().Instructions)
	if ii >= bi {
		t.Fatalf("ideal front-end stalls/instr %.4f not below baseline %.4f", ii, bi)
	}
}

func TestMispredictsCharged(t *testing.T) {
	c, _ := testSetup(t, "none")
	c.Run(200_000)
	s := c.Stats()
	if s.CondBranches == 0 || s.Branches == 0 {
		t.Fatal("no branches observed")
	}
	if s.DecodeRedirects == 0 {
		t.Fatal("baseline must take decode redirects on BTB misses")
	}
	if s.DirMispredicts == 0 {
		t.Fatal("TAGE cannot be perfect on this workload")
	}
	// Mispredict rate must be a plausible minority.
	rate := float64(s.DirMispredicts) / float64(s.CondBranches)
	if rate > 0.4 {
		t.Fatalf("mispredict rate %.3f implausibly high", rate)
	}
}

func TestResetStatsAtBoundary(t *testing.T) {
	c, _ := testSetup(t, "none")
	c.Run(30_000)
	c.ResetStats()
	if s := c.Stats(); s.Cycles != 0 || s.Instructions != 0 {
		t.Fatalf("reset failed: %+v", s)
	}
	// Simulation continues seamlessly after a reset.
	c.Run(10_000)
	if c.Stats().Instructions < 10_000 {
		t.Fatal("run after reset broken")
	}
}

func TestBoomerangReducesFrontEndStalls(t *testing.T) {
	base, _ := testSetup(t, "none")
	boom, _ := testSetup(t, "boomerang")
	base.Run(200_000)
	boom.Run(200_000)
	bs := float64(base.Stats().FrontEndStallCycles) / float64(base.Stats().Instructions)
	os := float64(boom.Stats().FrontEndStallCycles) / float64(boom.Stats().Instructions)
	if os >= bs {
		t.Fatalf("Boomerang stalls/instr %.4f not below baseline %.4f", os, bs)
	}
}

func TestDeterministicReplay(t *testing.T) {
	a, _ := testSetup(t, "boomerang")
	b, _ := testSetup(t, "boomerang")
	a.Run(60_000)
	b.Run(60_000)
	if a.Stats() != b.Stats() {
		t.Fatalf("simulation not deterministic:\n%+v\n%+v", a.Stats(), b.Stats())
	}
}

func TestMPKIHelper(t *testing.T) {
	s := Stats{Instructions: 2000}
	if got := s.MPKI(10); got != 5 {
		t.Fatalf("MPKI = %v", got)
	}
	var zero Stats
	if zero.MPKI(10) != 0 || zero.IPC() != 0 {
		t.Fatal("zero-stats helpers must not divide by zero")
	}
}

// constStream feeds a fixed straight-line block pattern, for surgical
// timing tests.
type constStream struct {
	pc isa.Addr
}

func (s *constStream) Next() isa.BasicBlock {
	bb := isa.BasicBlock{PC: s.pc, NumInstr: 8, Kind: isa.BranchNone}
	s.pc = s.pc.Add(8)
	if s.pc > 0x4000_0000+1<<20 {
		s.pc = 0x4000_0000
	}
	return bb
}

func TestStraightLineCodeNoRedirects(t *testing.T) {
	prog := program.MustGenerate(program.GenParams{NumAppFuncs: 60, NumKernelFuncs: 16}, 1)
	cfg := uncore.DefaultConfig()
	cfg.Mesh = noc.Config{Rows: 4, Cols: 4, HopCycles: 3, SlotsPerCycle: 100}
	hier := uncore.New(cfg)
	ctx := prefetch.Context{Hier: hier, Dec: predecode.NewDecoder(prog)}
	c := New(Config{LoadFrac: 0.01, DataBlocks: 64, DataZipfS: 0.8},
		&constStream{pc: 0x4000_0000}, prefetch.NewIdeal(ctx), hier)
	c.Run(50_000)
	s := c.Stats()
	if s.DecodeRedirects != 0 || s.ExecRedirects != 0 {
		t.Fatalf("straight-line code redirected: %+v", s)
	}
	// With an ideal front-end and almost no loads, IPC approaches the
	// fetch bandwidth bound: 8-instruction blocks at ceil(8/3)=3 cycles
	// per block ~ 2.67 IPC.
	if s.IPC() < 2.0 {
		t.Fatalf("straight-line ideal IPC = %.2f, want >= 2", s.IPC())
	}
}

func BenchmarkCoreTick(b *testing.B) {
	c, _ := testSetup(b, "boomerang")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Tick()
	}
}

// TestEventSkipMatchesPerCycle pins the core-level event contract: a
// per-cycle tick loop and the event-skipping Run must land on identical
// core and hierarchy stats. This is the single-core seed of the
// scenario-level TestEventKernelMatchesLockstep.
func TestEventSkipMatchesPerCycle(t *testing.T) {
	for _, mech := range []string{"none", "boomerang", "ideal"} {
		ref, refHier := testSetup(t, mech)
		evt, evtHier := testSetup(t, mech)

		const target = 60_000
		for ref.Instructions() < target {
			ref.Tick()
		}
		evt.Run(target)

		if ref.Stats() != evt.Stats() {
			t.Fatalf("%s: event-skipping Run drifted from per-cycle ticking:\nper-cycle: %+v\nevent:     %+v",
				mech, ref.Stats(), evt.Stats())
		}
		if refHier.Stats() != evtHier.Stats() {
			t.Fatalf("%s: hierarchy stats drifted:\nper-cycle: %+v\nevent:     %+v",
				mech, refHier.Stats(), evtHier.Stats())
		}
	}
}

// TestNextEventSkipsIdleSpans proves the skip is real: driving the core
// through NextEvent/AdvanceIdle reaches the instruction target with
// strictly fewer ticks than elapsed cycles (the difference is the idle
// cycles bulk-accounted by AdvanceIdle).
func TestNextEventSkipsIdleSpans(t *testing.T) {
	c, _ := testSetup(t, "none")
	ticks := uint64(0)
	for c.Instructions() < 50_000 {
		c.Tick()
		ticks++
		if next := c.NextEvent(); next > c.Now() {
			c.AdvanceIdle(next - c.Now())
		}
	}
	s := c.Stats()
	if ticks >= s.Cycles {
		t.Fatalf("no idle cycles skipped: %d ticks for %d cycles", ticks, s.Cycles)
	}
	t.Logf("ticks=%d cycles=%d (%.1f%% skipped)", ticks, s.Cycles,
		100*float64(s.Cycles-ticks)/float64(s.Cycles))
}

// TestNextEventNeverLate asserts the deadline contract directly: from
// any reachable state, every cycle strictly before NextEvent is idle —
// ticking it changes nothing but the stall counters and the clock, and
// leaves the hierarchy untouched.
func TestNextEventNeverLate(t *testing.T) {
	c, hier := testSetup(t, "boomerang")
	for i := 0; i < 20_000; i++ {
		next := c.NextEvent()
		if next < c.Now() {
			t.Fatalf("NextEvent %d is in the past (now %d)", next, c.Now())
		}
		if next > c.Now() {
			// The span must be idle: tick one of its cycles and check
			// only the idle-accounting fields moved.
			before, hierBefore := c.Stats(), hier.Stats()
			instr := before.Instructions
			c.Tick()
			after, hierAfter := c.Stats(), hier.Stats()
			if hierBefore != hierAfter {
				t.Fatalf("cycle %d: hierarchy mutated inside idle span ending %d", c.Now()-1, next)
			}
			if after.Instructions != instr {
				t.Fatalf("cycle %d: instructions retired inside idle span ending %d", c.Now()-1, next)
			}
			before.Cycles = after.Cycles
			before.FetchStallCycles = after.FetchStallCycles
			before.FrontEndStallCycles = after.FrontEndStallCycles
			before.BackEndStallCycles = after.BackEndStallCycles
			if before != after {
				t.Fatalf("cycle %d: non-idle mutation inside idle span ending %d:\nbefore: %+v\nafter:  %+v",
					c.Now()-1, next, before, after)
			}
		} else {
			c.Tick()
		}
	}
}
