package uncore

import (
	"testing"

	"shotgun/internal/isa"
	"shotgun/internal/noc"
)

func fastMesh() noc.Config {
	return noc.Config{Rows: 4, Cols: 4, HopCycles: 3, SlotsPerCycle: 100}
}

func newTestHierarchy() *Hierarchy {
	cfg := DefaultConfig()
	cfg.Mesh = fastMesh()
	return New(cfg)
}

func TestDemandMissAndRefill(t *testing.T) {
	h := newTestHierarchy()
	addr := isa.Addr(0x40000)

	ready, src := h.FetchBlock(100, addr)
	if src != SrcMemory {
		t.Fatalf("first fetch source = %v, want memory", src)
	}
	wantLat := uint64(5 + 18 + 90) // LLC + mesh round trip + memory
	if ready != 100+wantLat {
		t.Fatalf("ready = %d, want %d", ready, 100+wantLat)
	}

	// Until the fill arrives, re-fetches join the in-flight entry.
	ready2, src2 := h.FetchBlock(110, addr)
	if src2 != SrcInflight || ready2 != ready {
		t.Fatalf("second fetch = (%d, %v), want (%d, inflight)", ready2, src2, ready)
	}

	h.PollArrivals(ready)
	ready3, src3 := h.FetchBlock(ready+1, addr)
	if src3 != SrcL1 || ready3 != ready+1 {
		t.Fatalf("post-fill fetch = (%d, %v), want L1 hit", ready3, src3)
	}
}

func TestLLCHitLatency(t *testing.T) {
	h := newTestHierarchy()
	addr := isa.Addr(0x40000)
	ready, _ := h.FetchBlock(0, addr)
	h.PollArrivals(ready)
	// Evict from L1-I by invalidation, then refetch: should hit LLC.
	h.L1I.Invalidate(addr)
	now := ready + 10
	ready2, src := h.FetchBlock(now, addr)
	if src != SrcLLC {
		t.Fatalf("source = %v, want LLC", src)
	}
	if ready2 != now+5+18 {
		t.Fatalf("LLC hit ready = %d, want %d", ready2, now+5+18)
	}
}

func TestPrefetchFlow(t *testing.T) {
	h := newTestHierarchy()
	addr := isa.Addr(0x80000)

	if _, issued := h.PrefetchBlock(0, addr); !issued {
		t.Fatal("prefetch not issued")
	}
	// Redundant prefetch filtered, but the residual ready time is shared.
	ready2, issued := h.PrefetchBlock(1, addr)
	if issued {
		t.Fatal("duplicate prefetch issued")
	}
	if ready2 != 5+18+90 {
		t.Fatalf("joined prefetch ready = %d", ready2)
	}

	arr := h.PollArrivals(10000)
	if len(arr) != 1 || arr[0].Block != addr.Block() || arr[0].Demand {
		t.Fatalf("arrivals = %+v", arr)
	}
	if !h.PrefBuf.Contains(addr) {
		t.Fatal("prefetch did not land in buffer")
	}

	// Demand fetch promotes from the buffer at zero cost.
	ready, src := h.FetchBlock(10001, addr)
	if src != SrcPrefetchBuffer || ready != 10001 {
		t.Fatalf("fetch = (%d, %v), want buffer hit", ready, src)
	}
	if !h.L1I.Contains(addr) {
		t.Fatal("promotion did not install in L1-I")
	}
}

func TestPrefetchJoinedByDemand(t *testing.T) {
	h := newTestHierarchy()
	addr := isa.Addr(0xc0000)
	h.PrefetchBlock(0, addr)

	// Demand arrives mid-flight: it must see only residual latency and
	// the arrival must install into the L1-I, not the buffer.
	ready, src := h.FetchBlock(50, addr)
	if src != SrcInflight {
		t.Fatalf("source = %v, want inflight", src)
	}
	if ready <= 50 || ready != 5+18+90 {
		t.Fatalf("residual ready = %d", ready)
	}
	h.PollArrivals(ready)
	if !h.L1I.Contains(addr) {
		t.Fatal("joined fill must install in L1-I")
	}
	if h.PrefBuf.Contains(addr) {
		t.Fatal("joined fill must skip the buffer")
	}
}

func TestPrefetchRedundantWithL1(t *testing.T) {
	h := newTestHierarchy()
	addr := isa.Addr(0x100000)
	ready, _ := h.FetchBlock(0, addr)
	h.PollArrivals(ready)
	if _, issued := h.PrefetchBlock(ready+1, addr); issued {
		t.Fatal("prefetch issued for L1-resident block")
	}
	if h.Stats().PrefetchesRedundant == 0 {
		t.Fatal("redundant prefetch not counted")
	}
}

func TestDataAccess(t *testing.T) {
	h := newTestHierarchy()
	addr := isa.Addr(0x200000)
	ready, hit := h.DataAccess(0, addr)
	if hit {
		t.Fatal("hit in cold L1-D")
	}
	if ready != 5+18+90 {
		t.Fatalf("data fill ready = %d", ready)
	}
	_, hit2 := h.DataAccess(ready, addr)
	if !hit2 {
		t.Fatal("L1-D miss after fill")
	}
	s := h.Stats()
	if s.DataFillSamples != 1 || s.DataFillCycles != 5+18+90 {
		t.Fatalf("fill stats = %+v", s)
	}
	if s.AvgDataFillCycles() != float64(5+18+90) {
		t.Fatalf("avg fill = %v", s.AvgDataFillCycles())
	}
}

func TestLLCReserveShrinksCache(t *testing.T) {
	cfg := DefaultConfig()
	full := New(cfg)
	cfg.LLCReserveBytes = 512 << 10
	reserved := New(cfg)
	if reserved.LLC.SizeBytes() >= full.LLC.SizeBytes() {
		t.Fatalf("reserve did not shrink LLC: %d vs %d", reserved.LLC.SizeBytes(), full.LLC.SizeBytes())
	}
}

func TestArrivalOrdering(t *testing.T) {
	h := newTestHierarchy()
	// Two fills started at different times must arrive in ready order.
	h.PrefetchBlock(100, 0x1000)
	h.PrefetchBlock(0, 0x2000)
	arr := h.PollArrivals(100000)
	if len(arr) != 2 {
		t.Fatalf("arrivals = %d", len(arr))
	}
	if arr[0].Ready > arr[1].Ready {
		t.Fatal("arrivals out of order")
	}
	if arr[0].Block != 0x2000 {
		t.Fatalf("first arrival %v, want 0x2000", arr[0].Block)
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	h := newTestHierarchy()
	ready, _ := h.FetchBlock(0, 0x5000)
	h.PollArrivals(ready)
	h.ResetStats()
	if h.Stats().DemandFetches != 0 {
		t.Fatal("stats not reset")
	}
	if _, src := h.FetchBlock(ready+1, 0x5000); src != SrcL1 {
		t.Fatal("reset dropped cache contents")
	}
}

func TestSourceString(t *testing.T) {
	names := map[Source]string{
		SrcL1: "L1", SrcPrefetchBuffer: "prefetch-buffer",
		SrcInflight: "inflight", SrcLLC: "LLC", SrcMemory: "memory",
	}
	for src, want := range names {
		if src.String() != want {
			t.Fatalf("%d.String() = %q, want %q", src, src.String(), want)
		}
	}
}

// TestResetStatsClearsAllCounters drives every counter group (demand
// fetch, prefetch, in-flight join, data access) and asserts ResetStats
// returns the snapshot to the zero value — the warmup/measurement
// boundary must not leak warmup events into measured windows.
func TestResetStatsClearsAllCounters(t *testing.T) {
	h := newTestHierarchy()
	h.PrefetchBlock(0, 0x9000)
	h.FetchBlock(1, 0x9000) // joins the in-flight prefetch
	h.FetchBlock(2, 0xa000)
	h.DataAccess(3, 0xb000)
	h.PollArrivals(100000)
	h.FetchBlock(100001, 0x9000) // L1 hit
	if h.Stats() == (Stats{}) {
		t.Fatal("counters never moved")
	}
	h.ResetStats()
	if got := h.Stats(); got != (Stats{}) {
		t.Fatalf("ResetStats left residue: %+v", got)
	}
	if h.PrefBuf.HitsCount != 0 {
		t.Fatal("prefetch-buffer hits not reset")
	}
}

// newTestShared builds a shared uncore with a fast mesh and a small LLC
// so capacity contention is easy to provoke.
func newTestShared(llcBytes int) *Shared {
	cfg := DefaultConfig()
	cfg.Mesh = fastMesh()
	if llcBytes != 0 {
		cfg.LLCSizeBytes = llcBytes
		cfg.LLCWays = 4
	}
	return NewShared(cfg)
}

// TestSharedASIDIsolation: two cores fetching the same addresses must
// not hit each other's LLC blocks — co-runners are separate processes,
// so identical numeric addresses are different cache blocks.
func TestSharedASIDIsolation(t *testing.T) {
	s := newTestShared(0)
	h0, h1 := s.AttachCore(0), s.AttachCore(1)
	if s.Cores() != 2 {
		t.Fatalf("Cores = %d", s.Cores())
	}
	addr := isa.Addr(0x40000)
	ready, src := h0.FetchBlock(0, addr)
	if src != SrcMemory {
		t.Fatalf("cold fetch src = %v", src)
	}
	h0.PollArrivals(ready)
	// Same numeric address from core 1: must be its own cold miss, not
	// an LLC hit on core 0's block.
	if _, src := h1.FetchBlock(ready+1, addr); src != SrcMemory {
		t.Fatalf("core 1 fetch src = %v, want memory (ASID isolation)", src)
	}
}

// TestSharedLLCCapacityContention: a co-runner flooding the shared LLC
// must evict the primary core's blocks — the emergent interference the
// scenario layer exists to model.
func TestSharedLLCCapacityContention(t *testing.T) {
	s := newTestShared(64 << 10) // small shared LLC: 1024 blocks
	h0, h1 := s.AttachCore(0), s.AttachCore(1)

	addr := isa.Addr(0x40000)
	ready, _ := h0.FetchBlock(0, addr)
	h0.PollArrivals(ready)
	h0.L1I.Invalidate(addr)
	warm, src := h0.FetchBlock(ready+1, addr)
	if src != SrcLLC {
		t.Fatalf("warm refetch src = %v, want LLC", src)
	}
	h0.PollArrivals(warm)

	// Core 1 floods the LLC with several times its capacity.
	now := warm + 1
	for i := 0; i < 8<<10; i++ {
		r, _ := h1.DataAccess(now, isa.Addr(i*isa.BlockBytes))
		now = r + 1
	}

	h0.L1I.Invalidate(addr)
	if _, src := h0.FetchBlock(now, addr); src != SrcMemory {
		t.Fatalf("post-flood refetch src = %v, want memory (block must be evicted by co-runner)", src)
	}
}

// TestSharedMeshBacklog: one core's burst congests the backlog the
// other core's messages then queue behind.
func TestSharedMeshBacklog(t *testing.T) {
	cfg := DefaultConfig() // slow Table 3 mesh: 0.32 slots/cycle
	s := NewShared(cfg)
	h0, h1 := s.AttachCore(0), s.AttachCore(1)
	quiet, _ := h1.DataAccess(0, 0x100000)

	for i := 0; i < 32; i++ {
		h0.PrefetchBlock(1_000_000, isa.Addr(0x200000+i*isa.BlockBytes))
	}
	congested, _ := h1.DataAccess(1_000_000, 0x300000)
	if congested-1_000_000 <= quiet {
		t.Fatalf("co-runner burst added no queueing: quiet %d cycles, congested %d", quiet, congested-1_000_000)
	}
}

// TestSharedStatsIsolation: per-core counters live in the Hierarchy, so
// one core's traffic must never show up in another core's snapshot, and
// a per-core reset must not clear a sibling's counters.
func TestSharedStatsIsolation(t *testing.T) {
	s := newTestShared(0)
	h0, h1 := s.AttachCore(0), s.AttachCore(1)
	h0.FetchBlock(0, 0x40000)
	h0.DataAccess(1, 0x50000)
	if got := h1.Stats(); got != (Stats{}) {
		t.Fatalf("core 0 traffic leaked into core 1 stats: %+v", got)
	}
	h1.FetchBlock(2, 0x60000)
	h1.ResetStats()
	if h0.Stats().DemandFetches != 1 {
		t.Fatal("core 1 reset clobbered core 0 counters")
	}
}

func BenchmarkFetchBlock(b *testing.B) {
	h := newTestHierarchy()
	for i := 0; i < b.N; i++ {
		now := uint64(i * 4)
		ready, _ := h.FetchBlock(now, isa.Addr((i%4096)*64))
		if i%64 == 0 {
			h.PollArrivals(ready)
		}
	}
}

// TestNextArrival pins the watermark accessor an event-driven core
// hangs its arrival deadline on: NoArrival when idle, never later than
// the earliest in-flight completion, and PollArrivals is a no-op on
// every cycle strictly before it.
func TestNextArrival(t *testing.T) {
	h := newTestHierarchy()
	if got := h.NextArrival(); got != NoArrival {
		t.Fatalf("idle hierarchy NextArrival = %d, want NoArrival", got)
	}
	ready, _ := h.FetchBlock(100, isa.Addr(0x40000))
	next := h.NextArrival()
	if next > ready {
		t.Fatalf("NextArrival %d is later than the in-flight completion %d", next, ready)
	}
	if got := h.PollArrivals(next - 1); got != nil {
		t.Fatalf("PollArrivals before the watermark returned %v", got)
	}
	if got := h.PollArrivals(ready); len(got) != 1 {
		t.Fatalf("PollArrivals at completion returned %d arrivals, want 1", len(got))
	}
	if got := h.NextArrival(); got != NoArrival {
		t.Fatalf("drained hierarchy NextArrival = %d, want NoArrival", got)
	}
}
