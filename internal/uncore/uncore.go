// Package uncore assembles the simulated memory hierarchy: private L1-I
// (with its prefetch buffer) and L1-D, a shared NUCA LLC reached across
// the mesh interconnect, and main memory. All parameters default to the
// paper's Table 3.
//
// The hierarchy exposes a timed request API: callers pass the current
// cycle and receive the cycle at which the request's block is available.
// Instruction-side fills are tracked in-flight so that a demand fetch
// arriving while a prefetch for the same block is outstanding observes
// only the residual latency — exactly the "in-flight prefetch" partial
// coverage the paper's stall-cycle metric is designed to capture.
//
// A Shared holds the portion of the hierarchy that is genuinely common
// to every core of a CMP scenario — one finite-capacity LLC and one
// mesh backlog — and AttachCore hangs per-core private hierarchies off
// it. New (the single-core constructor) is the N=1 special case: a
// Shared with exactly one core attached.
//
// Concurrency contract: a Shared and every Hierarchy attached to it
// must be driven by ONE goroutine (the scenario's lockstep loop). None
// of the structures lock — per-cycle calls are the simulator's hottest
// path — so concurrent use from two goroutines is a data race (caught
// by the race-detector tests). Concurrency belongs one level up:
// independent simulations, each with its own Shared, may run in
// parallel freely.
package uncore

import (
	"fmt"

	"shotgun/internal/cache"
	"shotgun/internal/isa"
	"shotgun/internal/noc"
)

// Config sizes the hierarchy. Zero fields default to Table 3 values.
type Config struct {
	L1ISizeBytes, L1IWays int // 32KB, 2-way
	L1DSizeBytes, L1DWays int // 32KB, 2-way
	L1LatencyCycles       int // 2

	LLCSizeBytes, LLCWays int // modeled share of the 8MB NUCA cache
	// LLCReserveBytes shrinks the effective LLC, modeling capacity
	// carved out for virtualized prefetcher metadata (Confluence/SHIFT
	// pins its history table in the LLC).
	LLCReserveBytes  int
	LLCLatencyCycles int // 5 (bank access; mesh adds route+queue)

	MemLatencyCycles int // 90 (45ns at 2GHz)

	PrefetchBufferEntries int // 64

	Mesh noc.Config
}

// DefaultConfig mirrors Table 3.
func DefaultConfig() Config {
	return Config{
		L1ISizeBytes: 32 << 10, L1IWays: 2,
		L1DSizeBytes: 32 << 10, L1DWays: 2,
		L1LatencyCycles: 2,
		LLCSizeBytes:    1 << 20, LLCWays: 16,
		LLCLatencyCycles:      5,
		MemLatencyCycles:      90,
		PrefetchBufferEntries: 64,
		Mesh:                  noc.DefaultConfig(),
	}
}

func (c *Config) setDefaults() {
	d := DefaultConfig()
	if c.L1ISizeBytes == 0 {
		c.L1ISizeBytes, c.L1IWays = d.L1ISizeBytes, d.L1IWays
	}
	if c.L1DSizeBytes == 0 {
		c.L1DSizeBytes, c.L1DWays = d.L1DSizeBytes, d.L1DWays
	}
	if c.L1LatencyCycles == 0 {
		c.L1LatencyCycles = d.L1LatencyCycles
	}
	if c.LLCSizeBytes == 0 {
		c.LLCSizeBytes, c.LLCWays = d.LLCSizeBytes, d.LLCWays
	}
	if c.LLCLatencyCycles == 0 {
		c.LLCLatencyCycles = d.LLCLatencyCycles
	}
	if c.MemLatencyCycles == 0 {
		c.MemLatencyCycles = d.MemLatencyCycles
	}
	if c.PrefetchBufferEntries == 0 {
		c.PrefetchBufferEntries = d.PrefetchBufferEntries
	}
	if c.Mesh.Rows == 0 {
		c.Mesh = d.Mesh
	}
}

// Source identifies where a request was satisfied.
type Source uint8

const (
	// SrcL1 means the private cache hit.
	SrcL1 Source = iota
	// SrcPrefetchBuffer means the L1-I prefetch buffer held the block.
	SrcPrefetchBuffer
	// SrcInflight means an outstanding fill for the block was joined.
	SrcInflight
	// SrcLLC means the shared cache supplied the block.
	SrcLLC
	// SrcMemory means main memory supplied the block.
	SrcMemory
)

func (s Source) String() string {
	switch s {
	case SrcL1:
		return "L1"
	case SrcPrefetchBuffer:
		return "prefetch-buffer"
	case SrcInflight:
		return "inflight"
	case SrcLLC:
		return "LLC"
	case SrcMemory:
		return "memory"
	}
	return fmt.Sprintf("Source(%d)", uint8(s))
}

// Arrival reports a completed instruction-side fill.
type Arrival struct {
	Block isa.Addr
	// Ready is the cycle the block became available.
	Ready uint64
	// Demand is true when a demand fetch is waiting on the block (it is
	// installed in the L1-I); prefetch-only fills go to the buffer.
	Demand bool
}

// Stats aggregates hierarchy counters beyond the per-cache ones.
type Stats struct {
	DemandFetches     uint64
	DemandL1IHits     uint64
	DemandPrefBufHits uint64
	DemandInflight    uint64
	DemandLLCHits     uint64
	DemandMemFills    uint64

	PrefetchesIssued    uint64
	PrefetchesRedundant uint64
	PrefetchLLCHits     uint64
	PrefetchMemFills    uint64
	// PrefetchUsefulInflight counts prefetch-initiated fills joined by a
	// demand fetch before arrival (timely enough to hide part of the
	// latency; counted as useful for Figure 10's accuracy metric).
	PrefetchUsefulInflight uint64

	DataAccesses    uint64
	DataL1DHits     uint64
	DataLLCHits     uint64
	DataMemFills    uint64
	DataFillCycles  uint64 // total cycles to fill L1-D misses (Figure 11)
	DataFillSamples uint64
}

// AvgDataFillCycles returns the mean L1-D miss fill latency (Figure 11).
func (s Stats) AvgDataFillCycles() float64 {
	if s.DataFillSamples == 0 {
		return 0
	}
	return float64(s.DataFillCycles) / float64(s.DataFillSamples)
}

// Shared is the uncore state all cores of a scenario contend for: one
// finite-capacity LLC (occupancy and eviction are real, so one core's
// fills displace another's blocks) and one mesh backlog (every core's
// messages queue behind each other). See the package comment for the
// single-goroutine driving contract.
type Shared struct {
	cfg Config

	LLC  *cache.Cache
	Mesh *noc.Mesh

	cores int
}

// asidShift places the per-core address-space tag above every address
// the core model generates (code sits low; the synthetic data segment
// at 2^45). Tagging LLC traffic with the core's ASID keeps co-runners'
// address spaces distinct — like separate processes — so shared-LLC
// contention is pure capacity/bandwidth interference, never bogus
// cross-core hits on coincidentally equal addresses.
const asidShift = 48

// NewShared builds the shared LLC and mesh from cfg (zero fields
// defaulted). Scenario callers size cfg.LLCSizeBytes to the total
// capacity the active cores share; the single-core default (1MB) is one
// core's modeled NUCA share.
func NewShared(cfg Config) *Shared {
	cfg.setDefaults()
	// The LLC reserve (virtualized prefetcher metadata) is charged by
	// trimming associativity: the set count stays a power of two while
	// whole ways are given up, mirroring way-partitioned pinning.
	sets := 1
	for sets*2 <= cfg.LLCSizeBytes/isa.BlockBytes/cfg.LLCWays {
		sets *= 2
	}
	ways := (cfg.LLCSizeBytes - cfg.LLCReserveBytes) / (sets * isa.BlockBytes)
	if ways < 1 {
		ways = 1
	}
	llcSize := sets * ways * isa.BlockBytes
	return &Shared{
		cfg:  cfg,
		LLC:  cache.MustNew("LLC", llcSize, ways),
		Mesh: noc.MustNew(cfg.Mesh),
	}
}

// Config returns the effective shared configuration.
func (s *Shared) Config() Config { return s.cfg }

// Cores returns how many hierarchies have been attached.
func (s *Shared) Cores() int { return s.cores }

// ResetStats clears the shared counters (LLC hit/miss, mesh traffic)
// without touching contents or congestion state.
func (s *Shared) ResetStats() {
	s.LLC.ResetStats()
	s.Mesh.ResetStats()
}

// AttachCore builds the private hierarchy (L1-I, L1-D, prefetch buffer,
// in-flight tracker) of core coreID over this shared uncore. The coreID
// becomes the core's address-space tag on all shared-LLC traffic.
func (s *Shared) AttachCore(coreID int) *Hierarchy {
	s.cores++
	return &Hierarchy{
		cfg:       s.cfg,
		shared:    s,
		asid:      isa.Addr(coreID) << asidShift,
		L1I:       cache.MustNew("L1-I", s.cfg.L1ISizeBytes, s.cfg.L1IWays),
		L1D:       cache.MustNew("L1-D", s.cfg.L1DSizeBytes, s.cfg.L1DWays),
		LLC:       s.LLC,
		PrefBuf:   cache.NewPrefetchBuffer(s.cfg.PrefetchBufferEntries),
		Mesh:      s.Mesh,
		inflight:  make(map[isa.Addr]*flight),
		nextReady: noInflight,
	}
}

// Hierarchy is one core's view of the memory system: private L1s and
// prefetch buffer over the (possibly multi-core) shared LLC and mesh.
type Hierarchy struct {
	cfg    Config
	shared *Shared
	// asid tags this core's LLC traffic (see asidShift).
	asid isa.Addr

	L1I     *cache.Cache
	L1D     *cache.Cache
	LLC     *cache.Cache
	PrefBuf *cache.PrefetchBuffer
	Mesh    *noc.Mesh

	inflight map[isa.Addr]*flight
	// ordered is the same fill population as inflight, as a min-heap on
	// (ready, block) — a fill's completion cycle never changes after
	// issue, so PollArrivals pops completions in exactly delivery order
	// instead of walking and sorting the whole map.
	ordered []*flight
	// nextReady is the earliest completion cycle among in-flight fills
	// (^0 when none): PollArrivals is called every cycle, and the
	// watermark turns the common no-arrival case into one comparison
	// instead of a map iteration.
	nextReady uint64
	// arrivals is PollArrivals' reusable scratch buffer.
	arrivals []Arrival

	stats Stats
}

// noInflight is the nextReady watermark value when nothing is in flight.
const noInflight = ^uint64(0)

type flight struct {
	block    isa.Addr
	ready    uint64
	demand   bool
	prefetch bool
}

// New builds a single-core hierarchy from cfg (zero fields defaulted):
// a Shared of its own with one core attached — the N=1 special case of
// the scenario layout.
func New(cfg Config) *Hierarchy {
	return NewShared(cfg).AttachCore(0)
}

// Shared returns the shared uncore this hierarchy is attached to.
func (h *Hierarchy) Shared() *Shared { return h.shared }

// trackFill registers a new in-flight fill and lowers the arrival
// watermark if this fill completes before every other outstanding one.
func (h *Hierarchy) trackFill(fl *flight) {
	h.inflight[fl.block] = fl
	h.heapPush(fl)
	if fl.ready < h.nextReady {
		h.nextReady = fl.ready
	}
}

// flightBefore orders the arrival heap: completion cycle, ties broken by
// block address — the delivery order PollArrivals guarantees.
func flightBefore(a, b *flight) bool {
	if a.ready != b.ready {
		return a.ready < b.ready
	}
	return a.block < b.block
}

func (h *Hierarchy) heapPush(fl *flight) {
	h.ordered = append(h.ordered, fl)
	i := len(h.ordered) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !flightBefore(h.ordered[i], h.ordered[p]) {
			break
		}
		h.ordered[i], h.ordered[p] = h.ordered[p], h.ordered[i]
		i = p
	}
}

func (h *Hierarchy) heapPop() *flight {
	top := h.ordered[0]
	last := len(h.ordered) - 1
	h.ordered[0] = h.ordered[last]
	h.ordered[last] = nil
	h.ordered = h.ordered[:last]
	n := len(h.ordered)
	i := 0
	for {
		small := i
		if l := 2*i + 1; l < n && flightBefore(h.ordered[l], h.ordered[small]) {
			small = l
		}
		if r := 2*i + 2; r < n && flightBefore(h.ordered[r], h.ordered[small]) {
			small = r
		}
		if small == i {
			break
		}
		h.ordered[i], h.ordered[small] = h.ordered[small], h.ordered[i]
		i = small
	}
	return top
}

// Config returns the effective configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Stats returns a snapshot of the hierarchy counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// ResetStats clears this core's counters (and the shared LLC/mesh
// counters, which per-core results never read) at the warmup/
// measurement boundary without touching cache contents or in-flight
// state.
func (h *Hierarchy) ResetStats() {
	h.stats = Stats{}
	h.L1I.ResetStats()
	h.L1D.ResetStats()
	h.shared.ResetStats()
	h.PrefBuf.HitsCount = 0
	h.PrefBuf.EvictedUnused = 0
}

// llcFill performs a lookup in the shared LLC (and fill from memory on
// miss), returning the completion cycle and source. The access is
// tagged with this core's ASID, and both the mesh round trip and the
// LLC occupancy are charged against state every attached core shares —
// this is where multi-core contention enters the model.
func (h *Hierarchy) llcFill(now uint64, block isa.Addr) (uint64, Source) {
	lat := h.cfg.LLCLatencyCycles + h.Mesh.Traverse(now)
	tagged := h.asid | block
	if h.LLC.Access(tagged) {
		return now + uint64(lat), SrcLLC
	}
	h.LLC.Insert(tagged)
	return now + uint64(lat+h.cfg.MemLatencyCycles), SrcMemory
}

// FetchBlock is a demand instruction fetch for the block containing addr.
// It returns the cycle at which the block is usable and where it came
// from. Hits in the L1-I or prefetch buffer are usable immediately (the
// L1 pipeline latency is hidden by the fetch pipeline).
func (h *Hierarchy) FetchBlock(now uint64, addr isa.Addr) (uint64, Source) {
	block := addr.Block()
	h.stats.DemandFetches++

	if h.L1I.Access(block) {
		h.stats.DemandL1IHits++
		return now, SrcL1
	}
	if h.PrefBuf.Take(block) {
		// Promote into the L1-I on first use.
		h.L1I.Insert(block)
		h.stats.DemandPrefBufHits++
		return now, SrcPrefetchBuffer
	}
	if fl, ok := h.inflight[block]; ok {
		// Join the outstanding fill; only residual latency is exposed.
		if fl.prefetch && !fl.demand {
			h.stats.PrefetchUsefulInflight++
		}
		fl.demand = true
		h.stats.DemandInflight++
		ready := fl.ready
		if ready < now {
			ready = now
		}
		return ready, SrcInflight
	}
	ready, src := h.llcFill(now, block)
	if src == SrcLLC {
		h.stats.DemandLLCHits++
	} else {
		h.stats.DemandMemFills++
	}
	h.trackFill(&flight{block: block, ready: ready, demand: true})
	return ready, src
}

// PrefetchBlock issues an instruction prefetch probe for the block
// containing addr. Redundant probes (block already present or in flight)
// are filtered and generate no traffic. It returns the cycle the block
// will be (or already is) available, and whether a new fill was started.
func (h *Hierarchy) PrefetchBlock(now uint64, addr isa.Addr) (uint64, bool) {
	block := addr.Block()
	if h.L1I.Contains(block) || h.PrefBuf.Contains(block) {
		h.stats.PrefetchesRedundant++
		return now, false
	}
	if fl, ok := h.inflight[block]; ok {
		h.stats.PrefetchesRedundant++
		ready := fl.ready
		if ready < now {
			ready = now
		}
		return ready, false
	}
	ready, src := h.llcFill(now, block)
	if src == SrcLLC {
		h.stats.PrefetchLLCHits++
	} else {
		h.stats.PrefetchMemFills++
	}
	h.stats.PrefetchesIssued++
	h.trackFill(&flight{block: block, ready: ready, prefetch: true})
	return ready, true
}

// BlockResidency reports how quickly an instruction block can be examined
// by a predecoder-driven resolution (Boomerang's reactive BTB fill): a
// block already in the L1-I or prefetch buffer costs only the L1 latency.
// Otherwise a fill is started (or joined) and its completion returned.
func (h *Hierarchy) BlockResidency(now uint64, addr isa.Addr) uint64 {
	block := addr.Block()
	if h.L1I.Contains(block) || h.PrefBuf.Contains(block) {
		return now + uint64(h.cfg.L1LatencyCycles)
	}
	ready, _ := h.PrefetchBlock(now, block)
	return ready
}

// PrefetchAccuracy returns the fraction of issued prefetches that were
// used: promoted from the prefetch buffer by a demand fetch, or joined by
// a demand fetch while still in flight (Figure 10's metric).
func (h *Hierarchy) PrefetchAccuracy() float64 {
	if h.stats.PrefetchesIssued == 0 {
		return 0
	}
	useful := h.PrefBuf.HitsCount + h.stats.PrefetchUsefulInflight
	return float64(useful) / float64(h.stats.PrefetchesIssued)
}

// PollArrivals materializes all instruction-side fills that have
// completed by now: demand fills go into the L1-I, prefetch fills into
// the prefetch buffer. Arrivals are returned in completion order so the
// caller (e.g. Shotgun's predecoder) can process them. The returned
// slice is reused by the next call; callers must consume it immediately
// and not retain it.
func (h *Hierarchy) PollArrivals(now uint64) []Arrival {
	if now < h.nextReady {
		// Next-arrival watermark: nothing can have completed yet, so the
		// per-cycle call costs one comparison instead of a map walk.
		return nil
	}
	out := h.arrivals[:0]
	// Heap pops come out in (ready, block) order — already the delivery
	// order the sorted map walk used to produce.
	for len(h.ordered) > 0 && h.ordered[0].ready <= now {
		fl := h.heapPop()
		out = append(out, Arrival{Block: fl.block, Ready: fl.ready, Demand: fl.demand})
		delete(h.inflight, fl.block)
	}
	if len(h.ordered) > 0 {
		h.nextReady = h.ordered[0].ready
	} else {
		h.nextReady = noInflight
	}
	h.arrivals = out
	if len(out) == 0 {
		return nil
	}
	for _, a := range out {
		if a.Demand {
			h.L1I.Insert(a.Block)
		} else {
			h.PrefBuf.Insert(a.Block)
		}
	}
	return out
}

// InflightCount returns the number of outstanding instruction fills.
func (h *Hierarchy) InflightCount() int { return len(h.inflight) }

// NextArrival returns the earliest cycle at which an in-flight
// instruction fill can complete, or NoArrival when nothing is in
// flight. It is the hierarchy's contribution to a core's next-event
// deadline: PollArrivals is a guaranteed no-op at every cycle strictly
// before this watermark, so an event-driven caller may skip those
// cycles without observing different arrivals. The watermark is
// conservative in the safe direction — it may be earlier than the true
// next completion (trackFill only lowers it), never later.
func (h *Hierarchy) NextArrival() uint64 { return h.nextReady }

// NoArrival is NextArrival's value when no instruction fill is in
// flight.
const NoArrival = noInflight

// WarmFetch is the functional-warming counterpart of FetchBlock: it
// updates cache contents (L1-I presence/LRU, prefetch-buffer promotion,
// LLC occupancy under this core's ASID) exactly as a demand fetch would,
// but charges no time — no mesh traversal, no in-flight tracking, no
// stats. Sampling's fast-forward path uses it to keep microarchitectural
// cache state warm between detailed units without paying the timed
// model.
// WarmLLC touches only the shared LLC for one fetched block — the
// skim-mode fast-forward's warming. The LLC is the one structure whose
// content cannot be rebuilt inside a bounded functional-warming window
// (its block capacity exceeds any affordable window), so a skimmed gap
// keeps it tracking the stream while every small structure (L1s, BTBs,
// predictor) is left to the window to repair.
func (h *Hierarchy) WarmLLC(addr isa.Addr) {
	tagged := h.asid | addr.Block()
	if !h.LLC.Access(tagged) {
		h.LLC.Insert(tagged)
	}
}

func (h *Hierarchy) WarmFetch(addr isa.Addr) {
	block := addr.Block()
	if h.L1I.Access(block) {
		return
	}
	if h.PrefBuf.Take(block) {
		h.L1I.Insert(block)
		return
	}
	tagged := h.asid | block
	if !h.LLC.Access(tagged) {
		h.LLC.Insert(tagged)
	}
	h.L1I.Insert(block)
}

// WarmData is WarmFetch for the data side: L1-D and LLC contents move as
// under DataAccess, with no timing, traffic, or stats.
func (h *Hierarchy) WarmData(addr isa.Addr) {
	block := addr.Block()
	if h.L1D.Access(block) {
		return
	}
	tagged := h.asid | block
	if !h.LLC.Access(tagged) {
		h.LLC.Insert(tagged)
	}
	h.L1D.Insert(block)
}

// DataAccess is a load/store to the data side. It returns the cycle the
// data is available and whether the L1-D hit. Misses traverse the mesh to
// the LLC (sharing bandwidth with instruction prefetches — the coupling
// behind Figure 11) and fill both levels.
func (h *Hierarchy) DataAccess(now uint64, addr isa.Addr) (uint64, bool) {
	block := addr.Block()
	h.stats.DataAccesses++
	if h.L1D.Access(block) {
		h.stats.DataL1DHits++
		return now, true
	}
	ready, src := h.llcFill(now, block)
	if src == SrcLLC {
		h.stats.DataLLCHits++
	} else {
		h.stats.DataMemFills++
	}
	h.L1D.Insert(block)
	h.stats.DataFillCycles += ready - now
	h.stats.DataFillSamples++
	return ready, false
}
