package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"shotgun/internal/btb"
	"shotgun/internal/footprint"
	"shotgun/internal/sim"
)

// fakeResult builds a distinguishable result without running a
// simulation — the store must round-trip bytes, not compute them.
func fakeResult(wl string, instr uint64) sim.Result {
	res := sim.Result{Workload: wl, Mechanism: sim.Shotgun}
	res.Core.Instructions = instr
	res.Core.Cycles = 3 * instr
	res.BTBMisses = instr / 100
	res.PrefetchAccuracy = 0.75
	return res
}

func testConfig(wl string) sim.Config {
	return sim.Config{Workload: wl, Mechanism: sim.Shotgun,
		WarmupInstr: 1000, MeasureInstr: 2000, Samples: 1}
}

func TestKeyNormalizationAndDistinctness(t *testing.T) {
	// Equivalent-after-normalization configs share a key.
	a := Key(sim.Config{Workload: "Oracle", Mechanism: sim.Shotgun})
	b := Key(sim.Config{Workload: "Oracle", Mechanism: sim.Shotgun, BTBEntries: 2048})
	c := Key(sim.Config{Workload: "Oracle", Mechanism: sim.Shotgun, Layout: footprint.Layout8})
	if a != b || a != c {
		t.Fatalf("normalized-equivalent configs got distinct keys:\n%s\n%s\n%s", a, b, c)
	}
	// Semantic differences get distinct keys, including nil vs explicit
	// ShotgunSizes (JSON null vs object).
	distinct := []sim.Config{
		{Workload: "Oracle", Mechanism: sim.Shotgun},
		{Workload: "DB2", Mechanism: sim.Shotgun},
		{Workload: "Oracle", Mechanism: sim.Boomerang},
		{Workload: "Oracle", Mechanism: sim.Shotgun, BTBEntries: 4096},
		{Workload: "Oracle", Mechanism: sim.Shotgun, Layout: footprint.Layout32},
		{Workload: "Oracle", Mechanism: sim.Shotgun, SkipInstr: 42},
		{Workload: "Oracle", Mechanism: sim.Shotgun,
			ShotgunSizes: &btb.Sizes{UEntries: 1536, CEntries: 64, REntries: 512}},
	}
	seen := map[string]int{}
	for i, cfg := range distinct {
		k := Key(cfg)
		if j, dup := seen[k]; dup {
			t.Errorf("configs %d and %d collide on %s", j, i, k)
		}
		seen[k] = i
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig("Oracle")
	want := fakeResult("Oracle", 123_456)
	if _, ok := s.Get(cfg); ok {
		t.Fatal("Get hit on empty store")
	}
	if err := s.Put(cfg, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(cfg)
	if !ok {
		t.Fatal("Get missed after Put")
	}
	if got != want {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Records != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss / 1 put / 1 record", st)
	}
}

func TestWarmRestartServesRecords(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig("DB2")
	want := fakeResult("DB2", 999)
	if err := s1.Put(cfg, want); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(cfg)
	if !ok || got != want {
		t.Fatalf("restart lost the record: ok=%v got=%+v", ok, got)
	}
	if s2.Len() != 1 {
		t.Fatalf("restart index has %d records, want 1", s2.Len())
	}
}

func TestOpenReconcilesMissingIndex(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig("Apache")
	if err := s1.Put(cfg, fakeResult("Apache", 7)); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash between record and index writes.
	if err := os.Remove(filepath.Join(dir, "index.json")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("reconciled index has %d records, want 1", s2.Len())
	}
	ents := s2.Entries()
	for _, e := range ents {
		if e.Workload != "Apache" || e.Mechanism != string(sim.Shotgun) {
			t.Fatalf("reconciled entry %+v", e)
		}
	}
}

func TestCorruptRecordDroppedOnGet(t *testing.T) {
	for name, garbage := range map[string][]byte{
		"truncated": []byte(`{"version":1,"key":"`),
		"empty":     {},
		"not-json":  []byte("hello\n"),
	} {
		t.Run(name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			cfg := testConfig("Zeus")
			if err := s.Put(cfg, fakeResult("Zeus", 11)); err != nil {
				t.Fatal(err)
			}
			key := Key(cfg)
			if err := os.WriteFile(s.recordPath(key), garbage, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get(cfg); ok {
				t.Fatal("Get served a corrupt record")
			}
			if _, err := os.Stat(s.recordPath(key)); !os.IsNotExist(err) {
				t.Fatal("corrupt record not removed")
			}
			if st := s.Stats(); st.CorruptDropped != 1 || st.Records != 0 {
				t.Fatalf("stats %+v, want 1 corrupt-dropped / 0 records", st)
			}
			// The store stays usable: a fresh Put re-creates the record.
			if err := s.Put(cfg, fakeResult("Zeus", 12)); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get(cfg); !ok {
				t.Fatal("Put after corruption recovery missed")
			}
		})
	}
}

func TestCorruptRecordDroppedOnOpen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// An unindexed, truncated record (crash mid-crash-recovery).
	bad := s1.recordPath("deadbeef")
	if err := os.WriteFile(bad, []byte(`{"version":1,`), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 0 {
		t.Fatalf("index has %d records, want 0", s2.Len())
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatal("corrupt unindexed record survived Open")
	}
}

func TestKeyMismatchDropped(t *testing.T) {
	// A record whose body doesn't hash to its filename (copied or
	// tampered) must not be served.
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig("Nutch")
	if err := s.Put(cfg, fakeResult("Nutch", 5)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(s.recordPath(Key(cfg)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.recordPath("0000beef"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetKey("0000beef"); ok {
		t.Fatal("served a record under the wrong key")
	}
}

func TestVersionMismatchInvalidates(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig("Streaming")
	if err := s1.Put(cfg, fakeResult("Streaming", 8)); err != nil {
		t.Fatal(err)
	}
	// Pretend an older (or newer) format generation wrote the store.
	if err := os.WriteFile(filepath.Join(dir, "VERSION"), []byte("999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 0 {
		t.Fatalf("stale-format store not wiped: %d records", s2.Len())
	}
	if _, ok := s2.Get(cfg); ok {
		t.Fatal("stale-format record served")
	}
	// And the store was re-stamped with the current version.
	raw, err := os.ReadFile(filepath.Join(dir, "VERSION"))
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintln(FormatVersion); string(raw) != want {
		t.Fatalf("VERSION = %q, want %q", raw, want)
	}
}

func TestStaleRecordVersionDropped(t *testing.T) {
	// A record carrying an old embedded version (e.g. copied into a
	// current-format store) is dropped on access.
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig("Oracle")
	key := Key(cfg)
	stale := fmt.Sprintf(`{"version":0,"key":"%s","config":{},"result":{}}`, key)
	if err := os.WriteFile(s.recordPath(key), []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(cfg); ok {
		t.Fatal("served a stale-version record")
	}
}

func TestScenarioRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.Scenario{Cores: []sim.Config{
		testConfig("Oracle"),
		{Workload: "DB2", Mechanism: sim.FDIP, WarmupInstr: 1000, MeasureInstr: 2000, Samples: 1},
	}}
	want := sim.ScenarioResult{Cores: []sim.Result{
		fakeResult("Oracle", 111),
		fakeResult("DB2", 222),
	}}
	if err := s.PutScenario(sc, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetScenario(sc)
	if !ok {
		t.Fatal("GetScenario missed after PutScenario")
	}
	for i := range want.Cores {
		if got.Cores[i] != want.Cores[i] {
			t.Fatalf("core %d mismatch:\ngot  %+v\nwant %+v", i, got.Cores[i], want.Cores[i])
		}
	}
	// The index summarizes the canonical-first core and the core count
	// (canonical order sorts DB2 before Oracle).
	for _, e := range s.Entries() {
		if e.Workload != "DB2" || e.Cores != 2 {
			t.Fatalf("scenario entry wrong: %+v", e)
		}
	}

	// A per-core permutation is the same record — and its Get view maps
	// each result back to the permuted caller's core order.
	swapped := sim.Scenario{Cores: []sim.Config{sc.Cores[1], sc.Cores[0]}}
	if ScenarioKey(swapped) != ScenarioKey(sc) {
		t.Fatal("permuted scenario has its own key")
	}
	gotSwapped, ok := s.GetScenario(swapped)
	if !ok {
		t.Fatal("permuted Get missed")
	}
	if gotSwapped.Cores[0] != want.Cores[1] || gotSwapped.Cores[1] != want.Cores[0] {
		t.Fatalf("permuted view misaligned:\n%+v\nwant swap of %+v", gotSwapped.Cores, want.Cores)
	}
	// A result list that doesn't match the core count is rejected.
	if err := s.PutScenario(sc, sim.ScenarioResult{Cores: want.Cores[:1]}); err == nil {
		t.Fatal("mismatched result list accepted")
	}
	// The single-core key space is the N=1 scenario key space.
	cfg := testConfig("Zeus")
	if Key(cfg) != ScenarioKey(sim.SingleCore(cfg)) {
		t.Fatal("config key is not its N=1 scenario key")
	}
}

// TestPrune covers the eviction path end to end: oldest records (by
// file mtime) go first, the index matches the surviving records, and a
// fresh Open of the pruned directory reconciles to the identical set.
func TestPrune(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	workloads := []string{"Nutch", "Streaming", "Apache", "Zeus", "Oracle", "DB2"}
	var sizes []int64
	for i, wl := range workloads {
		if err := s.Put(testConfig(wl), fakeResult(wl, uint64(100+i))); err != nil {
			t.Fatal(err)
		}
		info, err := os.Stat(s.recordPath(Key(testConfig(wl))))
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, info.Size())
		// Strictly increasing mtimes even on coarse-granularity
		// filesystems: stamp them explicitly.
		mt := time.Unix(1_700_000_000+int64(i)*10, 0)
		if err := os.Chtimes(s.recordPath(Key(testConfig(wl))), mt, mt); err != nil {
			t.Fatal(err)
		}
	}

	// Budget for the newest two records (plus change, below the third).
	budget := sizes[5] + sizes[4] + 1
	dropped, err := s.Prune(budget)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 4 {
		t.Fatalf("dropped %d records, want 4", dropped)
	}
	if s.Len() != 2 {
		t.Fatalf("index has %d records after prune, want 2", s.Len())
	}
	for _, wl := range workloads[:4] {
		if _, ok := s.Get(testConfig(wl)); ok {
			t.Fatalf("old record %s survived the prune", wl)
		}
	}
	for _, wl := range workloads[4:] {
		if _, ok := s.Get(testConfig(wl)); !ok {
			t.Fatalf("new record %s evicted", wl)
		}
	}

	// Records directory and index agree after a fresh Open.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("reopened index has %d records, want 2", s2.Len())
	}
	ents := s2.Entries()
	for _, wl := range workloads[4:] {
		if _, ok := ents[Key(testConfig(wl))]; !ok {
			t.Fatalf("reopened index missing %s", wl)
		}
	}

	// A budget everything fits in is a no-op.
	if n, err := s2.Prune(1 << 30); err != nil || n != 0 {
		t.Fatalf("no-op prune = (%d, %v)", n, err)
	}
	// Zero budget empties the store; negative is rejected.
	if _, err := s2.Prune(-1); err == nil {
		t.Fatal("negative budget accepted")
	}
	if n, err := s2.Prune(0); err != nil || n != 2 {
		t.Fatalf("zero-budget prune = (%d, %v), want 2 dropped", n, err)
	}
	if s2.Len() != 0 {
		t.Fatalf("store not emptied: %d records", s2.Len())
	}
}

// TestConcurrentReadWrite hammers the store from concurrent readers and
// writers (run under -race in CI): every Get must return either a miss
// or a complete, intact record — never a torn one.
func TestConcurrentReadWrite(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	workloads := []string{"Nutch", "Streaming", "Apache", "Zeus", "Oracle", "DB2"}
	const rounds = 50
	var wg sync.WaitGroup
	for _, wl := range workloads {
		wl := wl
		wg.Add(2)
		go func() { // writer: re-puts the same key repeatedly
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if err := s.Put(testConfig(wl), fakeResult(wl, uint64(1000+i))); err != nil {
					t.Errorf("put %s: %v", wl, err)
					return
				}
			}
		}()
		go func() { // reader: any hit must be intact
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if res, ok := s.Get(testConfig(wl)); ok {
					if res.Workload != wl || res.Core.Instructions < 1000 {
						t.Errorf("torn read for %s: %+v", wl, res)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if st := s.Stats(); st.CorruptDropped != 0 || st.Records != len(workloads) {
		t.Fatalf("stats %+v, want 0 corrupt / %d records", st, len(workloads))
	}
}
