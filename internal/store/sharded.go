package store

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"shotgun/internal/sim"
)

// defaultShardTimeout bounds one shard round-trip. Records are small
// (a few KB) and shards are LAN peers; a shard that cannot answer in
// five seconds is treated as down and the next replica is tried.
const defaultShardTimeout = 5 * time.Second

// ShardedConfig configures a sharded store backend.
type ShardedConfig struct {
	// Shards are the shard base URLs (e.g. "http://shard0:9090"), the
	// identities hashed onto the ring. Order does not affect placement.
	Shards []string
	// Replication is K: every record is written to the K distinct ring
	// successors of its key. Clamped to [1, len(Shards)].
	Replication int
	// Vnodes overrides the virtual points per shard (0 = default).
	Vnodes int
	// Client overrides the HTTP client (nil = 5s-timeout default).
	Client *http.Client
	// RepairInterval, when positive, starts a background loop that
	// probes shard health and re-replicates under-replicated records
	// when a shard rejoins. Zero disables the loop (tests drive
	// Rereplicate directly).
	RepairInterval time.Duration
	// Logf receives health transitions and repair summaries (nil = silent).
	Logf func(format string, args ...any)
}

// shardRef is one shard's runtime state: its wire client plus a health
// flag flipped down on request failure and up on probe/request success.
type shardRef struct {
	name string
	rs   *remoteShard
	up   atomic.Bool
}

// Sharded is the replicated store Backend: a consistent-hash ring over
// the scenario-key space routing every record to K shard replicas over
// HTTP. Reads fall through the replica list (a down shard costs one
// failed round-trip, then is skipped until a probe revives it); writes
// land on every reachable successor and succeed if at least one copy
// lands — re-replication restores the factor when the rest return.
type Sharded struct {
	ring   *Ring
	k      int
	shards map[string]*shardRef
	logf   func(format string, args ...any)

	hits, misses, puts, putErrors atomic.Uint64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// OpenSharded builds a sharded backend over the configured shard set.
// It does not require the shards to be reachable yet — each starts
// optimistically "up" and demotes itself on first failure.
func OpenSharded(cfg ShardedConfig) (*Sharded, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("store: sharded backend needs at least one shard")
	}
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{Timeout: defaultShardTimeout}
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Sharded{
		ring:   NewRing(cfg.Vnodes),
		k:      cfg.Replication,
		shards: make(map[string]*shardRef, len(cfg.Shards)),
		logf:   logf,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for _, raw := range cfg.Shards {
		name := normalizeShardURL(raw)
		if err := s.ring.Add(name); err != nil {
			return nil, err
		}
		ref := &shardRef{name: name, rs: &remoteShard{base: name, hc: hc}}
		ref.up.Store(true)
		s.shards[name] = ref
	}
	if s.k < 1 {
		s.k = 1
	}
	if s.k > len(s.shards) {
		s.k = len(s.shards)
	}
	if cfg.RepairInterval > 0 {
		go s.repairLoop(cfg.RepairInterval)
	} else {
		close(s.done)
	}
	return s, nil
}

// normalizeShardURL trims the trailing slash so "http://s/" and
// "http://s" hash to one ring identity.
func normalizeShardURL(u string) string {
	for len(u) > 0 && u[len(u)-1] == '/' {
		u = u[:len(u)-1]
	}
	return u
}

// Close stops the background repair loop (if any) and waits for it.
func (s *Sharded) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// Replication returns the effective replication factor K.
func (s *Sharded) Replication() int { return s.k }

// replicas returns the shard refs owning key, in ring order.
func (s *Sharded) replicas(key string) []*shardRef {
	names := s.ring.Successors(key, s.k)
	out := make([]*shardRef, 0, len(names))
	for _, n := range names {
		out = append(out, s.shards[n])
	}
	return out
}

// markDown demotes a shard after a failed request, logging the
// transition once.
func (s *Sharded) markDown(ref *shardRef, err error) {
	if ref.up.Swap(false) {
		s.logf("store: shard %s down: %v", ref.name, err)
	}
}

// markUp promotes a shard after a successful round-trip, logging the
// transition once and reporting whether this call flipped it.
func (s *Sharded) markUp(ref *shardRef) bool {
	if !ref.up.Swap(true) {
		s.logf("store: shard %s up", ref.name)
		return true
	}
	return false
}

// GetKey reads the record under key from its replica set, nearest ring
// successor first. Shards marked down are deferred to a second pass —
// they cost a round-trip only when every healthy replica missed.
func (s *Sharded) GetKey(key string) (Record, bool) {
	ctx := context.Background()
	reps := s.replicas(key)
	for _, pass := range []bool{true, false} {
		for _, ref := range reps {
			if ref.up.Load() != pass {
				continue
			}
			rec, ok, err := ref.rs.getRecord(ctx, key)
			if err != nil {
				s.markDown(ref, err)
				continue
			}
			s.markUp(ref)
			if ok {
				s.hits.Add(1)
				return rec, true
			}
		}
	}
	s.misses.Add(1)
	return Record{}, false
}

// GetScenario returns the stored result for a scenario, mapped to the
// caller's core order — the same identity contract as *Store.
func (s *Sharded) GetScenario(sc sim.Scenario) (sim.ScenarioResult, bool) {
	norm, perm := sc.NormalizedPerm()
	rec, ok := s.GetKey(ScenarioKey(norm))
	if !ok {
		return sim.ScenarioResult{}, false
	}
	return rec.Result.Reorder(perm), true
}

// PutScenario canonicalizes the result into a record and writes it to
// every successor in the key's replica set. One landed copy is enough
// to succeed (the repair loop restores the factor later); zero copies
// is an error — the result would otherwise silently evaporate.
func (s *Sharded) PutScenario(sc sim.Scenario, res sim.ScenarioResult) error {
	rec, err := NewRecord(sc, res)
	if err != nil {
		s.putErrors.Add(1)
		return err
	}
	ctx := context.Background()
	landed := 0
	var firstErr error
	for _, ref := range s.replicas(rec.Key) {
		if err := ref.rs.putRecord(ctx, rec); err != nil {
			s.markDown(ref, err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		s.markUp(ref)
		landed++
	}
	if landed == 0 {
		s.putErrors.Add(1)
		return fmt.Errorf("store: no replica accepted %q: %w", rec.Key, firstErr)
	}
	s.puts.Add(1)
	return nil
}

// keyUnion lists the distinct keys held across reachable shards and,
// per key, which shards hold it.
func (s *Sharded) keyUnion(ctx context.Context) map[string][]*shardRef {
	holders := make(map[string][]*shardRef)
	for _, ref := range s.sortedRefs() {
		keys, err := ref.rs.keys(ctx)
		if err != nil {
			s.markDown(ref, err)
			continue
		}
		s.markUp(ref)
		for _, k := range keys {
			holders[k] = append(holders[k], ref)
		}
	}
	return holders
}

// sortedRefs returns the shard refs in deterministic (name) order.
func (s *Sharded) sortedRefs() []*shardRef {
	out := make([]*shardRef, 0, len(s.shards))
	for _, ref := range s.shards {
		out = append(out, ref)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Len returns the number of distinct records across reachable shards.
// Replication means per-shard record counts overlap, so this asks each
// shard for its key list and counts the union.
func (s *Sharded) Len() int {
	return len(s.keyUnion(context.Background()))
}

// Stats snapshots the front-end traffic counters. Records is the
// distinct-key union across reachable shards; per-shard disk counters
// live in each shard's own /shard/v1/stats.
func (s *Sharded) Stats() Stats {
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Puts:      s.puts.Load(),
		PutErrors: s.putErrors.Load(),
		Records:   s.Len(),
	}
}

// ShardHealth is one shard's view in /v1/cluster and /metrics.
type ShardHealth struct {
	URL     string `json:"url"`
	Up      bool   `json:"up"`
	Records int    `json:"records"` // -1 when the shard is unreachable
}

// Health probes every shard and returns the live view, updating the
// internal up/down flags as a side effect.
func (s *Sharded) Health() []ShardHealth {
	ctx := context.Background()
	out := make([]ShardHealth, 0, len(s.shards))
	for _, ref := range s.sortedRefs() {
		h := ShardHealth{URL: ref.name, Records: -1}
		if st, err := ref.rs.stats(ctx); err == nil {
			s.markUp(ref)
			h.Up, h.Records = true, st.Records
		} else {
			s.markDown(ref, err)
		}
		out = append(out, h)
	}
	return out
}

// Rereplicate restores the replication factor: every record held by
// fewer than K of its ring successors is copied from a holder onto the
// missing successors. It returns how many replica copies were written.
// The scan is driven by shard key lists, so a record is repaired even
// if every copy currently sits on the "wrong" shards (e.g. after the
// shard set changed).
func (s *Sharded) Rereplicate(ctx context.Context) (int, error) {
	holders := s.keyUnion(ctx)
	copied := 0
	var firstErr error
	for key, held := range holders {
		byName := make(map[string]bool, len(held))
		for _, ref := range held {
			byName[ref.name] = true
		}
		var rec Record
		loaded := false
		for _, want := range s.replicas(key) {
			if byName[want.name] || !want.up.Load() {
				continue
			}
			if !loaded {
				var ok bool
				var err error
				rec, ok, err = held[0].rs.getRecord(ctx, key)
				if err != nil || !ok {
					if firstErr == nil && err != nil {
						firstErr = err
					}
					break // holder vanished; next repair pass will retry
				}
				loaded = true
			}
			if err := want.rs.putRecord(ctx, rec); err != nil {
				s.markDown(want, err)
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			copied++
		}
	}
	return copied, firstErr
}

// repairLoop probes shard health every interval and runs a repair pass
// whenever a shard comes (back) up — the rejoin path that restores K
// copies of everything the shard missed while it was down.
func (s *Sharded) repairLoop(interval time.Duration) {
	defer close(s.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		ctx, cancel := context.WithTimeout(context.Background(), interval)
		revived := false
		for _, ref := range s.sortedRefs() {
			if ref.rs.healthy(ctx) {
				revived = s.markUp(ref) || revived
			} else {
				s.markDown(ref, fmt.Errorf("health probe failed"))
			}
		}
		if revived {
			if n, err := s.Rereplicate(ctx); n > 0 || err != nil {
				s.logf("store: re-replication copied %d records (err=%v)", n, err)
			}
		}
		cancel()
	}
}
