// Package store persists simulation results on disk as a
// content-addressed cache. Each record is keyed by the SHA-256 of the
// canonical encoding of the *normalized* sim.Scenario (single-core
// simulations are N=1 scenarios), so two scenarios that would run the
// same simulation always share one record and any semantic difference
// gets its own — the same identity contract harness.Runner's in-memory
// memo uses, extended across process restarts.
//
// On-disk layout (under the store root):
//
//	VERSION              format generation; a mismatch wipes the store
//	index.json           key -> {workload, mechanism} summary
//	records/<key>.json   one record: {version, key, config, result}
//
// Records are written to a temp file and renamed into place, so readers
// never observe a partial record; a record that is nevertheless
// unreadable (truncated by a crash, hand-edited, wrong version) is
// dropped on first access and treated as a miss. The index is a
// convenience summary — the records directory is the source of truth,
// and Open reconciles the two.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"shotgun/internal/sim"
)

// FormatVersion is the on-disk format generation. Bump it whenever the
// record schema, the key derivation, or anything else that changes the
// meaning of persisted bytes changes; Open then invalidates (removes)
// every record written by an older generation instead of serving it.
// Generation 2: records hold scenarios (N cores + shared-uncore
// parameters) and per-core result lists; keys hash the canonical
// scenario encoding. Generation 3: the canonical encoding orders cores
// canonically, so per-core permutations of one scenario share one key
// — records written under order-sensitive keys must not linger as
// unreachable (or, worse, colliding) debris. Generation 4: configs
// carry an optional Sampling block and results an optional Sampled
// summary; exact-run encodings are byte-identical (both fields omit
// when nil), but a store written by a sampling-aware build must not be
// read by an older binary that would silently drop the block from
// round-tripped records.
const FormatVersion = 4

const (
	versionFile = "VERSION"
	indexFile   = "index.json"
	recordsDir  = "records"
)

// ScenarioKey returns the content address of a scenario: the SHA-256
// hex digest of its canonical encoding (sim.Scenario.CanonicalBytes —
// the normalized struct's fixed field order, no maps, no formatting
// choices), so the digest is stable across processes and platforms.
func ScenarioKey(sc sim.Scenario) string {
	sum := sha256.Sum256(sc.CanonicalBytes())
	return hex.EncodeToString(sum[:])
}

// Key returns the content address of a single-core config: the key of
// its N=1 scenario.
func Key(cfg sim.Config) string {
	return ScenarioKey(sim.SingleCore(cfg))
}

// Record is the on-disk form of one cached simulation — and the wire
// form the shard protocol ships between store nodes, so a replicated
// record is byte-identical to a locally written one.
type Record struct {
	Version  int                `json:"version"`
	Key      string             `json:"key"`
	Scenario sim.Scenario       `json:"scenario"`
	Result   sim.ScenarioResult `json:"result"`
}

// NewRecord canonicalizes one scenario result into its Record: the
// scenario is normalized (canonical core order), the results are
// permuted to match, and the key is the content address of the
// canonical form. Every writer — the local store and the sharded
// backend — builds records here, so placement and on-disk bytes can
// never disagree about identity.
func NewRecord(sc sim.Scenario, res sim.ScenarioResult) (Record, error) {
	norm, perm := sc.NormalizedPerm()
	if len(res.Cores) != len(norm.Cores) {
		return Record{}, fmt.Errorf("store: %d results for %d cores", len(res.Cores), len(norm.Cores))
	}
	canon := make([]sim.Result, len(res.Cores))
	for i, k := range perm {
		canon[k] = res.Cores[i]
	}
	key := ScenarioKey(norm)
	return Record{Version: FormatVersion, Key: key, Scenario: norm, Result: sim.ScenarioResult{Cores: canon}}, nil
}

// validRecord reports whether a decoded record can be trusted: right
// generation, internally consistent shape, and a key that matches the
// scenario it claims to cache (a shard must not accept a poisoned
// record under someone else's address).
func validRecord(rec Record) bool {
	if rec.Version != FormatVersion ||
		len(rec.Scenario.Cores) == 0 || len(rec.Result.Cores) != len(rec.Scenario.Cores) {
		return false
	}
	norm, _ := rec.Scenario.NormalizedPerm()
	return ScenarioKey(norm) == rec.Key
}

// Entry is the index summary of one record: the primary (core-0)
// workload and mechanism plus the scenario's core count.
type Entry struct {
	Workload  string `json:"workload"`
	Mechanism string `json:"mechanism"`
	Cores     int    `json:"cores"`
}

// entryOf summarizes a normalized scenario.
func entryOf(sc sim.Scenario) Entry {
	return Entry{
		Workload:  sc.Cores[0].Workload,
		Mechanism: string(sc.Cores[0].Mechanism),
		Cores:     len(sc.Cores),
	}
}

// index is the on-disk form of index.json.
type index struct {
	Version int              `json:"version"`
	Records map[string]Entry `json:"records"`
}

// Stats counts store traffic since Open.
type Stats struct {
	// Hits and Misses count Get outcomes; Puts counts successful writes.
	Hits, Misses, Puts uint64
	// PutErrors counts failed writes (the result still reached the
	// caller; only persistence was lost).
	PutErrors uint64
	// CorruptDropped counts records removed because they were
	// unreadable or carried the wrong version/key.
	CorruptDropped uint64
	// Records is the current number of indexed records.
	Records int
}

// Store is an on-disk result cache safe for concurrent readers and
// writers within a process (atomic renames keep it crash-consistent
// across processes too).
type Store struct {
	dir string

	mu  sync.RWMutex
	idx map[string]Entry

	hits, misses, puts, putErrors, corrupt atomic.Uint64
}

// Open opens (creating if needed) the store rooted at dir. A store
// written by a different FormatVersion is wiped: stale-format records
// must never be served, and a clean rebuild is exactly what a format
// change wants.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, recordsDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, idx: make(map[string]Entry)}

	vpath := filepath.Join(dir, versionFile)
	raw, err := os.ReadFile(vpath)
	switch {
	case err == nil:
		if strings.TrimSpace(string(raw)) != fmt.Sprint(FormatVersion) {
			if err := s.wipe(); err != nil {
				return nil, err
			}
		}
	case os.IsNotExist(err):
		// Fresh store (or pre-versioning debris): wipe to be safe.
		if err := s.wipe(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := writeFileAtomic(vpath, []byte(fmt.Sprintln(FormatVersion))); err != nil {
		return nil, err
	}

	if err := s.loadIndex(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

// wipe removes every record and the index (format invalidation).
func (s *Store) wipe() error {
	rd := filepath.Join(s.dir, recordsDir)
	if err := os.RemoveAll(rd); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.MkdirAll(rd, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Remove(filepath.Join(s.dir, indexFile)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// loadIndex builds the in-memory index: index.json as a starting point,
// reconciled against the records directory (which wins — entries whose
// file vanished are dropped, unindexed files are validated and added).
func (s *Store) loadIndex() error {
	var onDisk index
	if raw, err := os.ReadFile(filepath.Join(s.dir, indexFile)); err == nil {
		if json.Unmarshal(raw, &onDisk) != nil || onDisk.Version != FormatVersion {
			onDisk.Records = nil // corrupt index: rebuild from records
		}
	}
	names, err := os.ReadDir(filepath.Join(s.dir, recordsDir))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, de := range names {
		key, ok := strings.CutSuffix(de.Name(), ".json")
		if !ok {
			continue
		}
		if e, ok := onDisk.Records[key]; ok {
			s.idx[key] = e
			continue
		}
		// Unindexed record: validate it now (load drops it if corrupt).
		if rec, ok := s.load(key); ok {
			s.idx[key] = entryOf(rec.Scenario)
		}
	}
	return nil
}

func (s *Store) recordPath(key string) string {
	return filepath.Join(s.dir, recordsDir, key+".json")
}

// load reads and validates one record, removing it (corruption
// recovery) if it cannot be trusted.
func (s *Store) load(key string) (Record, bool) {
	raw, err := os.ReadFile(s.recordPath(key))
	if err != nil {
		return Record{}, false
	}
	var rec Record
	if json.Unmarshal(raw, &rec) != nil || rec.Version != FormatVersion || rec.Key != key ||
		len(rec.Scenario.Cores) == 0 || len(rec.Result.Cores) != len(rec.Scenario.Cores) {
		s.drop(key)
		return Record{}, false
	}
	return rec, true
}

// drop removes a corrupt record and its index entry.
func (s *Store) drop(key string) {
	s.corrupt.Add(1)
	os.Remove(s.recordPath(key))
	s.mu.Lock()
	delete(s.idx, key)
	s.mu.Unlock()
}

// GetScenario returns the stored result for a scenario, if present and
// intact. Records hold canonical-order results; the returned Cores are
// mapped back to the caller's core order, so any permutation of a
// stored scenario reads its own view of the one shared record.
func (s *Store) GetScenario(sc sim.Scenario) (sim.ScenarioResult, bool) {
	norm, perm := sc.NormalizedPerm()
	rec, ok := s.GetKey(ScenarioKey(norm))
	if !ok {
		return sim.ScenarioResult{}, false
	}
	return rec.Result.Reorder(perm), true
}

// Get returns the stored result for a single-core config, if present
// and intact.
func (s *Store) Get(cfg sim.Config) (sim.Result, bool) {
	res, ok := s.GetScenario(sim.SingleCore(cfg))
	if !ok {
		return sim.Result{}, false
	}
	return res.Cores[0], true
}

// GetKey returns the full stored record under a raw key (the server's
// poll endpoint looks results up by the key it handed out). A hit
// bumps the record file's mtime so Prune's oldest-first eviction order
// is by last access, not last write — without it a hot, frequently-read
// record written long ago would be evicted before a cold one written
// yesterday. The bump is best-effort: losing it costs eviction
// priority, never correctness.
func (s *Store) GetKey(key string) (Record, bool) {
	rec, ok := s.load(key)
	if !ok {
		s.misses.Add(1)
		return Record{}, false
	}
	s.hits.Add(1)
	now := time.Now()
	_ = os.Chtimes(s.recordPath(key), now, now)
	return rec, true
}

// PutScenario persists one scenario result. The record lands first
// (atomic rename), then the index; a crash between the two leaves a
// valid record that the next Open reconciles back into the index.
func (s *Store) PutScenario(sc sim.Scenario, res sim.ScenarioResult) error {
	err := s.put(sc, res)
	if err != nil {
		s.putErrors.Add(1)
		return err
	}
	s.puts.Add(1)
	return nil
}

// Put persists one single-core result (as its N=1 scenario).
func (s *Store) Put(cfg sim.Config, res sim.Result) error {
	return s.PutScenario(sim.SingleCore(cfg), sim.ScenarioResult{Cores: []sim.Result{res}})
}

func (s *Store) put(sc sim.Scenario, res sim.ScenarioResult) error {
	// Canonicalize once, in NewRecord: results land in canonical core
	// order, matching the canonical scenario the record carries (the
	// caller may hold any permutation).
	rec, err := NewRecord(sc, res)
	if err != nil {
		return err
	}
	return s.putRecord(rec)
}

// putRecord persists one already-canonical record. It is the shared
// tail of PutScenario and the shard server's replica-write path, so a
// replicated record is byte-identical to a locally computed one.
func (s *Store) putRecord(rec Record) error {
	raw, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("store: marshal record: %w", err)
	}
	if err := writeFileAtomic(s.recordPath(rec.Key), append(raw, '\n')); err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	e := entryOf(rec.Scenario)
	if old, ok := s.idx[rec.Key]; ok && old == e {
		// Re-put of a known key: the record was refreshed above; the
		// index is unchanged, so skip the O(records) rewrite.
		return nil
	}
	s.idx[rec.Key] = e
	return s.writeIndexLocked()
}

// PutRecord persists a record received from another node (the shard
// replication path). The record is validated — generation, shape, and
// key-matches-scenario — before it can land under its claimed address,
// then written through the same canonical path PutScenario uses.
func (s *Store) PutRecord(rec Record) error {
	if !validRecord(rec) {
		s.putErrors.Add(1)
		return fmt.Errorf("store: record %q failed validation (version/shape/key mismatch)", rec.Key)
	}
	// Normalize defensively: a valid record is already canonical, so
	// this is the identity transform, but it keeps a semi-canonical
	// input from writing non-canonical bytes.
	return s.PutScenario(rec.Scenario, rec.Result)
}

// writeIndexLocked rewrites index.json from the in-memory index.
// Callers hold s.mu, which also serializes the rename.
func (s *Store) writeIndexLocked() error {
	raw, err := json.MarshalIndent(index{Version: FormatVersion, Records: s.idx}, "", "  ")
	if err != nil {
		return fmt.Errorf("store: marshal index: %w", err)
	}
	return writeFileAtomic(filepath.Join(s.dir, indexFile), append(raw, '\n'))
}

// Len returns the number of indexed records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.idx)
}

// Keys returns the indexed record keys, sorted (the shard protocol's
// key-listing endpoint; deterministic for tests and diffs).
func (s *Store) Keys() []string {
	s.mu.RLock()
	keys := make([]string, 0, len(s.idx))
	for k := range s.idx {
		keys = append(keys, k)
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	return keys
}

// Entries returns a copy of the index.
func (s *Store) Entries() map[string]Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]Entry, len(s.idx))
	for k, v := range s.idx {
		out[k] = v
	}
	return out
}

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		Puts:           s.puts.Load(),
		PutErrors:      s.putErrors.Load(),
		CorruptDropped: s.corrupt.Load(),
		Records:        s.Len(),
	}
}

// Prune evicts the oldest records (by record-file modification time,
// newest kept first) until the records directory fits within maxBytes,
// returning how many records were removed. A file that cannot be
// unlinked keeps its index entry, still counts toward the occupancy
// total (it really is on disk — so older files keep being evicted),
// is excluded from the removed count, and the error is reported. The
// index is rewritten once at the end; a crash mid-prune leaves index
// entries whose files are gone, which the next Open reconciles away —
// the records directory stays the source of truth.
func (s *Store) Prune(maxBytes int64) (int, error) {
	if maxBytes < 0 {
		return 0, fmt.Errorf("store: negative prune budget %d", maxBytes)
	}
	dir := filepath.Join(s.dir, recordsDir)
	names, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	type recFile struct {
		key   string
		size  int64
		mtime int64
	}
	var files []recFile
	for _, de := range names {
		key, ok := strings.CutSuffix(de.Name(), ".json")
		if !ok {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // raced with a concurrent drop; nothing to evict
		}
		files = append(files, recFile{key: key, size: info.Size(), mtime: info.ModTime().UnixNano()})
	}
	// Newest first; ties broken by key so the eviction order is
	// deterministic on coarse-mtime filesystems.
	sort.Slice(files, func(i, j int) bool {
		if files[i].mtime != files[j].mtime {
			return files[i].mtime > files[j].mtime
		}
		return files[i].key < files[j].key
	})

	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	var firstErr error
	dropped := 0
	for _, f := range files {
		total += f.size
		if total <= maxBytes {
			continue
		}
		if err := os.Remove(filepath.Join(dir, f.key+".json")); err != nil && !os.IsNotExist(err) {
			if firstErr == nil {
				firstErr = fmt.Errorf("store: prune %s: %w", f.key, err)
			}
			continue // still on disk: keep it indexed, don't report it removed
		}
		delete(s.idx, f.key)
		dropped++
	}
	if dropped == 0 {
		return 0, firstErr
	}
	if err := s.writeIndexLocked(); err != nil && firstErr == nil {
		firstErr = err
	}
	return dropped, firstErr
}

// writeFileAtomic writes data to path via a same-directory temp file and
// rename, so concurrent readers see either the old bytes or the new —
// never a prefix.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
