package store

// The shard wire protocol: one *Store served over HTTP so a front-end
// (or a peer re-replicating) can read and write records by content
// key. A shard node is `shotgun-server -shard -store <dir>`; the
// sharded backend (sharded.go) speaks this protocol to N of them.
//
//	GET  /shard/v1/records/{key}   one full Record (404: not held here)
//	PUT  /shard/v1/records/{key}   store a Record (validated before landing)
//	GET  /shard/v1/keys            {"keys":[...]} — every key this shard holds
//	GET  /shard/v1/stats           the shard store's Stats
//	GET  /shard/v1/healthz         liveness ("ok")
//
// Records are validated on PUT exactly like local puts (generation,
// shape, key-matches-scenario), so a compromised or confused peer
// cannot poison a shard under someone else's address. Errors use the
// same JSON envelope as every other surface in the repo.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"shotgun/internal/client"
)

// maxShardBody bounds a PUT record body; the largest legitimate record
// (a MaxCores scenario with sampled results) fits comfortably.
const maxShardBody = 8 << 20

// ShardServer serves one local Store over the shard wire protocol.
type ShardServer struct {
	st *Store
}

// NewShardServer wraps a store for serving.
func NewShardServer(st *Store) *ShardServer { return &ShardServer{st: st} }

// Register mounts the shard routes on mux.
func (s *ShardServer) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET /shard/v1/records/{key}", s.handleGet)
	mux.HandleFunc("PUT /shard/v1/records/{key}", s.handlePut)
	mux.HandleFunc("GET /shard/v1/keys", s.handleKeys)
	mux.HandleFunc("GET /shard/v1/stats", s.handleStats)
	mux.HandleFunc("GET /shard/v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
}

func (s *ShardServer) handleGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	rec, ok := s.st.GetKey(key)
	if !ok {
		client.WriteError(w, http.StatusNotFound, client.CodeNotFound, "shard holds no record %q", key)
		return
	}
	client.WriteJSON(w, rec)
}

func (s *ShardServer) handlePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	r.Body = http.MaxBytesReader(w, r.Body, maxShardBody)
	var rec Record
	if err := json.NewDecoder(r.Body).Decode(&rec); err != nil {
		client.WriteError(w, http.StatusBadRequest, client.CodeInvalidRequest, "decode record: %v", err)
		return
	}
	if rec.Key != key {
		client.WriteError(w, http.StatusBadRequest, client.CodeInvalidRequest,
			"record key %q does not match path key %q", rec.Key, key)
		return
	}
	if err := s.st.PutRecord(rec); err != nil {
		client.WriteError(w, http.StatusBadRequest, client.CodeInvalidRequest, "%v", err)
		return
	}
	client.WriteJSON(w, map[string]bool{"stored": true})
}

// shardKeysResponse is GET /shard/v1/keys' body.
type shardKeysResponse struct {
	Keys []string `json:"keys"`
}

func (s *ShardServer) handleKeys(w http.ResponseWriter, _ *http.Request) {
	client.WriteJSON(w, shardKeysResponse{Keys: s.st.Keys()})
}

func (s *ShardServer) handleStats(w http.ResponseWriter, _ *http.Request) {
	client.WriteJSON(w, s.st.Stats())
}

// ---------------------------------------------------------------------
// Remote side: the client one Sharded backend holds per shard.
// ---------------------------------------------------------------------

// remoteShard speaks the shard protocol to one shard node.
type remoteShard struct {
	base string // e.g. "http://shard0:9090", no trailing slash
	hc   *http.Client
}

// getRecord fetches one record. The bool distinguishes a clean miss
// (404 — the shard is healthy, it just doesn't hold the key) from an
// error (the shard is unreachable or misbehaving).
func (r *remoteShard) getRecord(ctx context.Context, key string) (Record, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/shard/v1/records/"+key, nil)
	if err != nil {
		return Record{}, false, err
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return Record{}, false, err
	}
	defer drain(resp.Body)
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return Record{}, false, nil
	case resp.StatusCode != http.StatusOK:
		return Record{}, false, fmt.Errorf("store: shard %s: status %d", r.base, resp.StatusCode)
	}
	var rec Record
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxShardBody)).Decode(&rec); err != nil {
		return Record{}, false, fmt.Errorf("store: shard %s: decode record: %w", r.base, err)
	}
	if rec.Key != key || !validRecord(rec) {
		return Record{}, false, fmt.Errorf("store: shard %s served an invalid record for %q", r.base, key)
	}
	return rec, true, nil
}

// putRecord replicates one record onto the shard.
func (r *remoteShard) putRecord(ctx context.Context, rec Record) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: marshal record: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		r.base+"/shard/v1/records/"+rec.Key, bytesReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.hc.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("store: shard %s: put %q: status %d", r.base, rec.Key, resp.StatusCode)
	}
	return nil
}

// keys lists every key the shard holds.
func (r *remoteShard) keys(ctx context.Context) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/shard/v1/keys", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("store: shard %s: keys: status %d", r.base, resp.StatusCode)
	}
	var out shardKeysResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("store: shard %s: decode keys: %w", r.base, err)
	}
	return out.Keys, nil
}

// stats fetches the shard store's counters.
func (r *remoteShard) stats(ctx context.Context) (Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/shard/v1/stats", nil)
	if err != nil {
		return Stats{}, err
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return Stats{}, err
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return Stats{}, fmt.Errorf("store: shard %s: stats: status %d", r.base, resp.StatusCode)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Stats{}, fmt.Errorf("store: shard %s: decode stats: %w", r.base, err)
	}
	return st, nil
}

// healthy probes /shard/v1/healthz.
func (r *remoteShard) healthy(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/shard/v1/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return false
	}
	defer drain(resp.Body)
	return resp.StatusCode == http.StatusOK
}

// drain discards and closes a response body so the transport can reuse
// the connection.
func drain(rc io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(rc, maxShardBody))
	rc.Close()
}

// bytesReader avoids importing bytes for one call site.
func bytesReader(b []byte) io.Reader { return &byteReader{b: b} }

type byteReader struct{ b []byte }

func (r *byteReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}
