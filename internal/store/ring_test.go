package store

import (
	"fmt"
	"testing"
)

func ringOf(t testing.TB, names ...string) *Ring {
	t.Helper()
	r := NewRing(0)
	for _, n := range names {
		if err := r.Add(n); err != nil {
			t.Fatalf("Add(%q): %v", n, err)
		}
	}
	return r
}

func TestRingBasics(t *testing.T) {
	empty := NewRing(0)
	if got := empty.Successors("k", 2); got != nil {
		t.Fatalf("empty ring returned successors %v", got)
	}
	if empty.Primary("k") != "" {
		t.Fatal("empty ring has a primary")
	}

	r := ringOf(t, "a", "b", "c")
	if err := r.Add("a"); err == nil {
		t.Fatal("duplicate shard accepted")
	}

	// Successors are distinct, k clamps to [1, N], and the first
	// successor is the primary.
	for _, key := range []string{"", "x", "deadbeef", "key-42"} {
		for _, k := range []int{-1, 0, 1, 2, 3, 99} {
			succ := r.Successors(key, k)
			wantLen := k
			if wantLen < 1 {
				wantLen = 1
			}
			if wantLen > 3 {
				wantLen = 3
			}
			if len(succ) != wantLen {
				t.Fatalf("Successors(%q, %d) = %v, want %d shards", key, k, succ, wantLen)
			}
			seen := map[string]bool{}
			for _, s := range succ {
				if seen[s] {
					t.Fatalf("Successors(%q, %d) repeats %s", key, k, s)
				}
				seen[s] = true
			}
			if succ[0] != r.Primary(key) {
				t.Fatalf("Primary(%q) = %s, first successor %s", key, r.Primary(key), succ[0])
			}
		}
	}

	// Placement is a pure function of the shard *set*, not insertion
	// order.
	r2 := ringOf(t, "c", "a", "b")
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		a, b := r.Successors(key, 2), r2.Successors(key, 2)
		if a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("insertion order changed placement of %q: %v vs %v", key, a, b)
		}
	}
}

// TestRingRebalanceBound asserts the property that makes shard-set
// growth cheap: adding one shard to an N-shard ring moves only the keys
// the new shard captures — about 1/(N+1) of them — and every moved key
// moves TO the new shard, never between old ones. Hashing is
// deterministic, so the observed movement is a constant of the code and
// the bound is safe to assert exactly in CI.
func TestRingRebalanceBound(t *testing.T) {
	const nKeys = 10_000
	old := ringOf(t, "s0", "s1", "s2", "s3")
	grown := ringOf(t, "s0", "s1", "s2", "s3")
	if err := grown.Add("s4"); err != nil {
		t.Fatal(err)
	}

	moved := 0
	for i := 0; i < nKeys; i++ {
		key := fmt.Sprintf("scenario-key-%d", i)
		before, after := old.Primary(key), grown.Primary(key)
		if before == after {
			continue
		}
		if after != "s4" {
			t.Fatalf("key %q moved between old shards: %s -> %s", key, before, after)
		}
		moved++
	}
	// Ideal movement is nKeys/5 = 2000; allow 50% slack for vnode
	// placement variance. Zero movement would mean the new shard owns
	// nothing — also a bug.
	if moved == 0 || moved > nKeys/5+nKeys/10 {
		t.Fatalf("adding 5th shard moved %d/%d keys, want (0, %d]", moved, nKeys, nKeys/5+nKeys/10)
	}
}

// FuzzRing feeds hostile keys and shard names through placement and
// growth: the ring must never panic, successors stay distinct, and
// adding a shard only ever moves a key onto the new shard.
func FuzzRing(f *testing.F) {
	f.Add("deadbeef", "http://shard9:9090")
	f.Add("", "")
	f.Add("a#0", "a") // vnode-label collision shapes
	f.Add("\x00\xff", "s0")
	f.Fuzz(func(t *testing.T, key, newShard string) {
		r := ringOf(t, "s0", "s1", "s2")
		before := r.Primary(key)
		succ := r.Successors(key, 2)
		if len(succ) != 2 || succ[0] == succ[1] {
			t.Fatalf("Successors(%q, 2) = %v", key, succ)
		}
		switch newShard {
		case "s0", "s1", "s2":
			if err := r.Add(newShard); err == nil {
				t.Fatalf("duplicate shard %q accepted", newShard)
			}
			return
		}
		if err := r.Add(newShard); err != nil {
			t.Fatalf("Add(%q): %v", newShard, err)
		}
		after := r.Primary(key)
		if after != before && after != newShard {
			t.Fatalf("key %q moved between old shards on growth: %s -> %s", key, before, after)
		}
	})
}
