package store

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"shotgun/internal/sim"
)

// testShard is one shard node for e2e tests: a real *Store behind a
// real ShardServer, with a kill switch. Killing flips the handler to
// connection-level failure (503 on every route), which is what a
// crashed shard looks like to the HTTP client; rejoin flips it back —
// same address, same on-disk state, exactly like a process restart.
type testShard struct {
	st   *Store
	srv  *httptest.Server
	down atomic.Bool
}

func (ts *testShard) kill()   { ts.down.Store(true) }
func (ts *testShard) rejoin() { ts.down.Store(false) }

func newTestShard(t *testing.T) *testShard {
	t.Helper()
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := &testShard{st: st}
	mux := http.NewServeMux()
	NewShardServer(st).Register(mux)
	ts.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ts.down.Load() {
			http.Error(w, "shard down", http.StatusServiceUnavailable)
			return
		}
		mux.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.srv.Close)
	return ts
}

// newCluster builds n shards and a Sharded backend with replication k.
func newShardedCluster(t *testing.T, n, k int) (*Sharded, []*testShard) {
	t.Helper()
	shards := make([]*testShard, n)
	urls := make([]string, n)
	for i := range shards {
		shards[i] = newTestShard(t)
		urls[i] = shards[i].srv.URL
	}
	s, err := OpenSharded(ShardedConfig{Shards: urls, Replication: k, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, shards
}

// holdersOf counts which live shard stores hold key on disk.
func holdersOf(shards []*testShard, key string) []*testShard {
	var out []*testShard
	for _, ts := range shards {
		if _, ok := ts.st.GetKey(key); ok {
			out = append(out, ts)
		}
	}
	return out
}

func TestShardedRoundTripAndPlacement(t *testing.T) {
	s, shards := newShardedCluster(t, 3, 2)

	workloads := []string{"Oracle", "DB2", "Nutch", "Zeus", "Apache", "Streaming"}
	for i, wl := range workloads {
		sc := sim.SingleCore(testConfig(wl))
		want := sim.ScenarioResult{Cores: []sim.Result{fakeResult(wl, uint64(100+i))}}
		if err := s.PutScenario(sc, want); err != nil {
			t.Fatalf("put %s: %v", wl, err)
		}
		got, ok := s.GetScenario(sc)
		if !ok || got.Cores[0] != want.Cores[0] {
			t.Fatalf("round trip %s: ok=%v got=%+v", wl, ok, got)
		}
		// Exactly K copies, on exactly the ring successors.
		key := ScenarioKey(sc)
		holders := holdersOf(shards, key)
		if len(holders) != 2 {
			t.Fatalf("%s: %d copies, want 2", wl, len(holders))
		}
		want2 := s.ring.Successors(key, 2)
		for _, h := range holders {
			found := false
			for _, u := range want2 {
				if u == h.srv.URL {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s landed on non-successor %s (want %v)", wl, h.srv.URL, want2)
			}
		}
	}

	// Multi-core scenarios keep the permutation contract through the
	// wire: a swapped-core read sees its own view of the shared record.
	sc := sim.Scenario{Cores: []sim.Config{testConfig("Oracle"), {
		Workload: "DB2", Mechanism: sim.FDIP, WarmupInstr: 1000, MeasureInstr: 2000, Samples: 1}}}
	want := sim.ScenarioResult{Cores: []sim.Result{fakeResult("Oracle", 11), fakeResult("DB2", 22)}}
	if err := s.PutScenario(sc, want); err != nil {
		t.Fatal(err)
	}
	swapped := sim.Scenario{Cores: []sim.Config{sc.Cores[1], sc.Cores[0]}}
	got, ok := s.GetScenario(swapped)
	if !ok || got.Cores[0] != want.Cores[1] || got.Cores[1] != want.Cores[0] {
		t.Fatalf("permuted view misaligned: ok=%v %+v", ok, got.Cores)
	}

	if n := s.Len(); n != len(workloads)+1 {
		t.Fatalf("Len() = %d, want %d distinct records", n, len(workloads)+1)
	}
	st := s.Stats()
	if st.Puts != uint64(len(workloads)+1) || st.PutErrors != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestShardedKillShardNoLoss is the tentpole acceptance e2e: with N=3
// shards and K=2, killing one shard mid-sweep loses zero records —
// every key stays readable, writes keep landing — and re-replication
// restores K copies of everything once the shard rejoins.
func TestShardedKillShardNoLoss(t *testing.T) {
	s, shards := newShardedCluster(t, 3, 2)

	// First half of the sweep with everyone up.
	var keys []string
	putOne := func(i int) {
		sc := sim.SingleCore(testConfig(fmt.Sprintf("wl-%03d", i)))
		res := sim.ScenarioResult{Cores: []sim.Result{fakeResult("Oracle", uint64(1000+i))}}
		if err := s.PutScenario(sc, res); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		keys = append(keys, ScenarioKey(sc))
	}
	for i := 0; i < 20; i++ {
		putOne(i)
	}

	// Kill the shard holding the most records — the worst case.
	victim := shards[0]
	for _, ts := range shards[1:] {
		if ts.st.Len() > victim.st.Len() {
			victim = ts
		}
	}
	victim.kill()

	// Second half of the sweep lands with one shard dark: writes whose
	// replica set includes the victim still succeed on the surviving
	// successor.
	for i := 20; i < 40; i++ {
		putOne(i)
	}

	// Zero loss: every key — including those primaried on the victim —
	// is still readable through the backend.
	for _, key := range keys {
		if _, ok := s.GetKey(key); !ok {
			t.Fatalf("key %s unreadable with one shard down", key)
		}
	}

	// Rejoin and repair: every record is back to K=2 copies on its ring
	// successors.
	victim.rejoin()
	copied, err := s.Rereplicate(context.Background())
	if err != nil {
		t.Fatalf("rereplicate: %v", err)
	}
	if copied == 0 {
		t.Fatal("rejoin repaired nothing; expected under-replicated records")
	}
	for _, key := range keys {
		holders := holdersOf(shards, key)
		if len(holders) < 2 {
			t.Fatalf("key %s has %d copies after repair, want 2", key, len(holders))
		}
	}
	// A second pass finds nothing left to do.
	if copied, err := s.Rereplicate(context.Background()); err != nil || copied != 0 {
		t.Fatalf("second repair pass = (%d, %v), want (0, nil)", copied, err)
	}
}

// TestShardedAllReplicasDown: when every replica of a key is dark, a
// put fails loudly (no silent evaporation) and a get is a miss, and
// the shard flips back to serving after markUp.
func TestShardedAllReplicasDown(t *testing.T) {
	s, shards := newShardedCluster(t, 2, 2)
	sc := sim.SingleCore(testConfig("Oracle"))
	res := sim.ScenarioResult{Cores: []sim.Result{fakeResult("Oracle", 7)}}
	for _, ts := range shards {
		ts.kill()
	}
	if err := s.PutScenario(sc, res); err == nil {
		t.Fatal("put succeeded with every replica down")
	}
	if _, ok := s.GetScenario(sc); ok {
		t.Fatal("get hit with every replica down")
	}
	for _, ts := range shards {
		ts.rejoin()
	}
	if err := s.PutScenario(sc, res); err != nil {
		t.Fatalf("put after rejoin: %v", err)
	}
	if _, ok := s.GetScenario(sc); !ok {
		t.Fatal("get missed after rejoin")
	}
	if st := s.Stats(); st.PutErrors != 1 || st.Puts != 1 {
		t.Fatalf("stats %+v, want 1 put + 1 put error", st)
	}
}

// TestShardServerRejectsPoison: the shard PUT path validates records —
// a record whose key doesn't match its scenario (or the path) cannot
// land under someone else's address.
func TestShardServerRejectsPoison(t *testing.T) {
	ts := newTestShard(t)
	sc := sim.SingleCore(testConfig("Oracle"))
	rec, err := NewRecord(sc, sim.ScenarioResult{Cores: []sim.Result{fakeResult("Oracle", 1)}})
	if err != nil {
		t.Fatal(err)
	}

	put := func(path string, rec Record) int {
		raw, _ := json.Marshal(rec)
		req, _ := http.NewRequest(http.MethodPut, ts.srv.URL+"/shard/v1/records/"+path, strings.NewReader(string(raw)))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	victimKey := ScenarioKey(sim.SingleCore(testConfig("DB2")))
	poisoned := rec
	poisoned.Key = victimKey // claims DB2's address, carries Oracle's bytes
	if code := put(victimKey, poisoned); code != http.StatusBadRequest {
		t.Fatalf("poisoned record got %d, want 400", code)
	}
	if code := put(victimKey, rec); code != http.StatusBadRequest {
		t.Fatalf("path/key mismatch got %d, want 400", code)
	}
	stale := rec
	stale.Version = FormatVersion - 1
	if code := put(rec.Key, stale); code != http.StatusBadRequest {
		t.Fatalf("stale-version record got %d, want 400", code)
	}
	if ts.st.Len() != 0 {
		t.Fatalf("invalid record landed: %d records", ts.st.Len())
	}
	if code := put(rec.Key, rec); code != http.StatusOK {
		t.Fatalf("valid record got %d, want 200", code)
	}
	if _, ok := ts.st.GetKey(rec.Key); !ok {
		t.Fatal("valid record not stored")
	}
}

// TestShardedHealth: Health reflects live shard state and flips the
// internal up/down flags both ways.
func TestShardedHealth(t *testing.T) {
	s, shards := newShardedCluster(t, 3, 2)
	for _, h := range s.Health() {
		if !h.Up || h.Records != 0 {
			t.Fatalf("fresh cluster health %+v", h)
		}
	}
	shards[1].kill()
	downURL := shards[1].srv.URL
	ups := 0
	for _, h := range s.Health() {
		if h.URL == downURL {
			if h.Up || h.Records != -1 {
				t.Fatalf("dead shard health %+v", h)
			}
			continue
		}
		if !h.Up {
			t.Fatalf("live shard reported down: %+v", h)
		}
		ups++
	}
	if ups != 2 {
		t.Fatalf("%d shards up, want 2", ups)
	}
	shards[1].rejoin()
	for _, h := range s.Health() {
		if !h.Up {
			t.Fatalf("rejoined cluster health %+v", h)
		}
	}
}

// TestShardedRepairLoopHeals exercises the autonomous repair path: no
// explicit Rereplicate call — the background loop's health probes must
// notice the kill and the rejoin on their own and restore every record
// to full replication.
func TestShardedRepairLoopHeals(t *testing.T) {
	shards := make([]*testShard, 3)
	urls := make([]string, 3)
	for i := range shards {
		shards[i] = newTestShard(t)
		urls[i] = shards[i].srv.URL
	}
	s, err := OpenSharded(ShardedConfig{
		Shards:         urls,
		Replication:    2,
		RepairInterval: 10 * time.Millisecond,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Replication(); got != 2 {
		t.Fatalf("replication = %d, want 2", got)
	}

	workloads := []string{"Oracle", "DB2", "Nutch", "Zeus", "Apache", "Streaming"}
	keys := make([]string, len(workloads))
	for i, wl := range workloads {
		sc := sim.SingleCore(testConfig(wl))
		if err := s.PutScenario(sc, sim.ScenarioResult{Cores: []sim.Result{fakeResult(wl, uint64(i))}}); err != nil {
			t.Fatal(err)
		}
		keys[i] = ScenarioKey(sc)
	}

	shards[0].kill()
	// Let the loop observe the death (probe failure marks it down)...
	time.Sleep(50 * time.Millisecond)
	shards[0].rejoin()

	// ...and after the rejoin, every key must drift back to 2 on-disk
	// copies with nobody calling Rereplicate.
	deadline := time.Now().Add(10 * time.Second)
	for {
		healed := true
		for _, key := range keys {
			if len(holdersOf(shards, key)) != 2 {
				healed = false
				break
			}
		}
		if healed {
			break
		}
		if time.Now().After(deadline) {
			for _, key := range keys {
				t.Logf("key %s: %d copies", key[:12], len(holdersOf(shards, key)))
			}
			t.Fatal("repair loop never restored full replication")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBackendReal pins the typed-nil normalization: an optional Backend
// field holding a typed-nil *Store or *Sharded must read as absent.
func TestBackendReal(t *testing.T) {
	var nilStore *Store
	var nilSharded *Sharded
	if Real(nil) || Real(nilStore) || Real(nilSharded) {
		t.Fatal("nil backends reported usable")
	}
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if !Real(st) {
		t.Fatal("real store reported unusable")
	}
	s, _ := newShardedCluster(t, 1, 1)
	if !Real(s) {
		t.Fatal("real sharded backend reported unusable")
	}
}
