package store

import (
	"encoding/json"
	"os"
	"sync"
	"testing"
	"time"

	"shotgun/internal/sim"
)

// TestPruneKeepsRecentlyRead is the regression test for the eviction
// bug where Prune ordered by write time while reads never touched the
// file: a hot, frequently-read record written long ago was evicted
// before a cold one written later. A hit now bumps the record's mtime,
// so eviction order is by last access — the freshly-read OLD record
// must survive a prune that evicts the unread NEWER one.
func TestPruneKeepsRecentlyRead(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	hot, cold := testConfig("Oracle"), testConfig("DB2")
	if err := s.Put(hot, fakeResult("Oracle", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(cold, fakeResult("DB2", 2)); err != nil {
		t.Fatal(err)
	}
	// Backdate both so the write order is unambiguous: hot written long
	// before cold.
	for i, cfg := range []sim.Config{hot, cold} {
		mt := time.Unix(1_700_000_000+int64(i)*1000, 0)
		if err := os.Chtimes(s.recordPath(Key(cfg)), mt, mt); err != nil {
			t.Fatal(err)
		}
	}

	// Read the old record; the hit must reorder eviction.
	if _, ok := s.Get(hot); !ok {
		t.Fatal("hot record missing before prune")
	}

	info, err := os.Stat(s.recordPath(Key(hot)))
	if err != nil {
		t.Fatal(err)
	}
	dropped, err := s.Prune(info.Size() + 1) // room for the newest-by-access record only
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("dropped %d records, want 1", dropped)
	}
	if _, ok := s.Get(hot); !ok {
		t.Fatal("freshly-read old record was evicted (last-access ordering regressed to last-write)")
	}
	if _, ok := s.Get(cold); ok {
		t.Fatal("unread newer record survived ahead of the freshly-read one")
	}
}

// TestCrashBetweenRecordAndIndex simulates the put-path crash window:
// the record file has landed (atomic rename) but the process dies
// before writeIndexLocked. Open's reconciliation must validate the
// orphan and serve it — the records directory, not the index, is the
// source of truth.
func TestCrashBetweenRecordAndIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A normally-indexed record, so index.json exists and is non-empty.
	if err := s.Put(testConfig("Oracle"), fakeResult("Oracle", 1)); err != nil {
		t.Fatal(err)
	}

	// "Crash" mid-put of a second record: write exactly the bytes
	// putRecord would have written, then never touch the index.
	orphan := sim.SingleCore(testConfig("DB2"))
	rec, err := NewRecord(orphan, sim.ScenarioResult{Cores: []sim.Result{fakeResult("DB2", 2)}})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFileAtomic(s.recordPath(rec.Key), append(raw, '\n')); err != nil {
		t.Fatal(err)
	}

	// The next process Opens the same directory and recovers the orphan.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("reconciled index has %d records, want 2", s2.Len())
	}
	got, ok := s2.GetScenario(orphan)
	if !ok {
		t.Fatal("crash-orphaned record not recovered by Open")
	}
	if got.Cores[0] != fakeResult("DB2", 2) {
		t.Fatalf("recovered record corrupted: %+v", got.Cores[0])
	}
	if e, ok := s2.Entries()[rec.Key]; !ok || e.Workload != "DB2" {
		t.Fatalf("orphan missing from reconciled index: %+v", e)
	}

	// The mirror-image crash — index entry present, record file gone —
	// reconciles the other way: the entry is dropped, not served.
	if err := os.Remove(s2.recordPath(rec.Key)); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Len() != 1 {
		t.Fatalf("index kept a fileless entry: %d records", s3.Len())
	}
	if _, ok := s3.GetScenario(orphan); ok {
		t.Fatal("fileless index entry served a hit")
	}
}

// TestConcurrentPutPruneGet hammers Put, Prune, and Get together under
// -race: pruning must never tear a read, corrupt a surviving record,
// or wedge the index. (TestConcurrentReadWrite covers put/get; this
// adds the eviction writer.)
func TestConcurrentPutPruneGet(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	workloads := []string{"Nutch", "Streaming", "Apache", "Zeus", "Oracle", "DB2"}
	const rounds = 30
	var wg sync.WaitGroup
	for _, wl := range workloads {
		wl := wl
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if err := s.Put(testConfig(wl), fakeResult(wl, uint64(1000+i))); err != nil {
					t.Errorf("put %s: %v", wl, err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if res, ok := s.Get(testConfig(wl)); ok {
					if res.Workload != wl || res.Core.Instructions < 1000 {
						t.Errorf("torn read for %s: %+v", wl, res)
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // the evictor: alternates starvation and plenty
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			budget := int64(1 << 30)
			if i%2 == 1 {
				budget = 600 // roughly one record
			}
			if _, err := s.Prune(budget); err != nil {
				t.Errorf("prune: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// Whatever survived must be intact, and a fresh Open must agree
	// with the in-memory index.
	if st := s.Stats(); st.CorruptDropped != 0 {
		t.Fatalf("corruption under concurrency: %+v", st)
	}
	s2, err := Open(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != s.Len() {
		t.Fatalf("reopened store has %d records, in-memory index %d", s2.Len(), s.Len())
	}
}
