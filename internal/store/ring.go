package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// defaultVnodes is how many virtual points each shard contributes to
// the ring. 128 keeps the per-shard load spread within a few percent
// and the add-a-shard key movement close to the ideal 1/N while the
// whole ring still fits in a few KB.
const defaultVnodes = 128

// ringPoint is one virtual node: a position on the 64-bit ring owned
// by a shard.
type ringPoint struct {
	pos   uint64
	shard int // index into Ring.shards
}

// Ring is a consistent-hash ring over the SHA-256 scenario-key space.
// Shards are identified by opaque names (the sharded backend uses
// their base URLs); every key maps to the first point clockwise from
// its hash, and a record replicated K ways lives on the K distinct
// shards that follow. Adding a shard moves only the keys whose arc the
// new shard's points capture — about 1/N of the space — which is the
// property that makes shard-set growth cheap (asserted by FuzzRing and
// TestRingRebalanceBound).
//
// The ring is immutable after construction except through Add; it is
// not safe for concurrent mutation (the sharded backend builds it once
// at Open and never mutates — shard *health* is dynamic, membership is
// not).
type Ring struct {
	vnodes int
	shards []string
	points []ringPoint // sorted by pos
}

// NewRing builds an empty ring with vnodes virtual points per shard
// (values below 1 mean defaultVnodes).
func NewRing(vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = defaultVnodes
	}
	return &Ring{vnodes: vnodes}
}

// ringHash positions an arbitrary string on the ring: the first 8
// bytes of its SHA-256. Scenario keys are already SHA-256 hex, but the
// ring must place ANY string (hostile poll keys reach it too), so it
// hashes uniformly instead of trusting the input's format.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a shard's virtual points. Adding the same name twice is
// an error — two point sets for one shard would double its share.
func (r *Ring) Add(name string) error {
	for _, s := range r.shards {
		if s == name {
			return fmt.Errorf("store: ring already has shard %q", name)
		}
	}
	idx := len(r.shards)
	r.shards = append(r.shards, name)
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{
			pos:   ringHash(fmt.Sprintf("%s#%d", name, v)),
			shard: idx,
		})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		// Position ties (astronomically rare but fuzz-reachable with
		// crafted names) break by shard index so ownership stays
		// deterministic across identically built rings.
		return r.points[i].shard < r.points[j].shard
	})
	return nil
}

// Shards returns the shard names in insertion order.
func (r *Ring) Shards() []string {
	out := make([]string, len(r.shards))
	copy(out, r.shards)
	return out
}

// Successors returns the k distinct shards owning key, clockwise from
// its ring position — the replica set for a record. k is clamped to
// [1, len(shards)]; an empty ring returns nil.
func (r *Ring) Successors(key string, k int) []string {
	n := len(r.shards)
	if n == 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	pos := ringHash(key)
	// First point at or after pos, wrapping.
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	seen := make(map[int]bool, k)
	out := make([]string, 0, k)
	for i := 0; i < len(r.points) && len(out) < k; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.shard] {
			continue
		}
		seen[p.shard] = true
		out = append(out, r.shards[p.shard])
	}
	return out
}

// Primary returns the first successor — the shard that owns the key's
// canonical copy.
func (r *Ring) Primary(key string) string {
	s := r.Successors(key, 1)
	if len(s) == 0 {
		return ""
	}
	return s[0]
}
