package store

import "shotgun/internal/sim"

// Backend is the result-store contract every consumer programs
// against: the harness runner's persistence hook, the HTTP server's
// poll-by-key fallback, and the coordinator's completed-work sink all
// take a Backend, never a concrete store.
//
// Two implementations exist:
//
//   - *Store — the classic single-node on-disk store. The zero-flag
//     server is exactly this: one shard, no replication, byte-identical
//     layout to every release before sharding existed.
//   - *Sharded — a consistent-hash ring over the SHA-256 scenario-key
//     space routing every record to K replica shards over HTTP (each
//     shard is a *Store behind a ShardServer). Reads fall through
//     replicas, writes go to all K successors, and background
//     re-replication restores the replication factor after a shard
//     rejoins.
//
// Both speak the same content-key identity (ScenarioKey over the
// canonical scenario encoding), so a deployment can move between them
// without re-keying anything.
type Backend interface {
	// GetScenario returns the stored result for a scenario (any core
	// permutation of a stored identity hits), mapped to the caller's
	// core order.
	GetScenario(sc sim.Scenario) (sim.ScenarioResult, bool)
	// PutScenario persists one scenario result under its content key.
	PutScenario(sc sim.Scenario, res sim.ScenarioResult) error
	// GetKey returns the full record under a raw content key.
	GetKey(key string) (Record, bool)
	// Len returns how many records the backend currently holds (for a
	// sharded backend: the distinct-key union across reachable shards).
	Len() int
	// Stats snapshots the backend's traffic counters.
	Stats() Stats
}

// The compile-time seams: both backends satisfy the contract (and
// therefore harness.ResultStore, which is a subset).
var (
	_ Backend = (*Store)(nil)
	_ Backend = (*Sharded)(nil)
)

// Real reports whether b is a usable backend: a non-nil interface
// holding a non-nil implementation. Callers that accept an optional
// Backend field should normalize with it — a typed-nil *Store smuggled
// through the interface compares non-nil but panics on first use.
func Real(b Backend) bool {
	switch v := b.(type) {
	case nil:
		return false
	case *Store:
		return v != nil
	case *Sharded:
		return v != nil
	default:
		return true
	}
}
