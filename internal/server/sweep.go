package server

// POST /v1/sweeps: declarative sweep execution. The body is a spec
// document (internal/spec); the server validates and expands it,
// enqueues every expanded scenario through the ordinary job table — so
// sweep jobs dedup against /v1/sims, /v1/scenarios, compiled-in
// experiment renders, and the persistent store by content key — waits
// for the expansion to finish, and renders the chosen tables.
//
//	POST /v1/sweeps?format=json|csv|text&tables=id1,id2   body: spec JSON
//
// json responses wrap the report with the sweep's scenario keys, so a
// client can re-poll individual results via GET /v1/scenarios/{key}
// afterwards; csv and text responses are the bare rendered tables.
//
// A request with "Accept: text/event-stream" streams progress over SSE
// instead of blocking silently: one "sweep" event up front, one
// "scenario" event per completed key, then a terminal "result" event
// whose data lines, joined with newlines, are byte-identical to the
// blocking response body for the same format (or an "error" event
// carrying the same envelope a blocking request would get).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"shotgun/internal/client"
	"shotgun/internal/harness"
	"shotgun/internal/report"
	"shotgun/internal/sim"
	"shotgun/internal/spec"
	"shotgun/internal/store"
)

// sweepResponse is POST /v1/sweeps' json body (defined in
// internal/client: Name, Scale, Keys, Report).
type sweepResponse = client.SweepResponse

// compiledSweep is one validated, expanded, deduplicated sweep request.
type compiledSweep struct {
	name   string
	exps   []harness.Experiment
	keys   []string
	format string
}

// parseSweep validates the request (format, spec, scale pin, table
// selection) and expands the work list; on failure it has already
// written the error envelope.
func (s *Server) parseSweep(w http.ResponseWriter, r *http.Request) (*compiledSweep, []sim.Scenario, bool) {
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	switch format {
	case "json", "csv", "text":
	default:
		client.WriteError(w, http.StatusBadRequest, client.CodeInvalidRequest,
			"unknown format %q (json, csv, text)", format)
		return nil, nil, false
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		client.WriteError(w, http.StatusBadRequest, client.CodeInvalidRequest, "read body: %v", err)
		return nil, nil, false
	}
	compiled, err := spec.Compile(body)
	if err != nil {
		client.WriteError(w, http.StatusBadRequest, client.CodeInvalidSpec, "%v", err)
		return nil, nil, false
	}
	// Content keys derive from the server's pinned scale; a spec that
	// pins a different scale would silently run at the wrong one.
	if sc := compiled.Spec.Scale; sc != nil && sc.Harness() != s.scale {
		client.WriteError(w, http.StatusBadRequest, client.CodeInvalidSpec,
			"spec pins scale %+v but this server runs %q (%+v); drop the spec's scale or submit to a matching server",
			*sc, s.scaleName, s.scale)
		return nil, nil, false
	}

	exps := compiled.Experiments()
	if sel := r.URL.Query().Get("tables"); sel != "" {
		byID := make(map[string]int, len(exps))
		for i, e := range exps {
			byID[e.ID] = i
		}
		var picked []harness.Experiment
		seen := make(map[string]bool)
		for _, id := range strings.Split(sel, ",") {
			id = strings.TrimSpace(id)
			i, ok := byID[id]
			if !ok {
				client.WriteError(w, http.StatusBadRequest, client.CodeInvalidSpec,
					"spec %q has no table %q", compiled.Spec.Name, id)
				return nil, nil, false
			}
			if !seen[id] {
				seen[id] = true
				picked = append(picked, exps[i])
			}
		}
		exps = picked
	}

	// Expand the selected tables' work list, pin it to the server
	// scale, and dedup by content key — identical keys dedup onto
	// existing jobs (or store records) exactly like the batch
	// endpoints.
	scs := harness.AllScenarios(exps)
	cs := &compiledSweep{name: compiled.Spec.Name, exps: exps, format: format}
	var pinned []sim.Scenario
	seenKeys := make(map[string]bool, len(scs))
	for _, sc := range scs {
		n := s.runner.NormalizeScenario(sc)
		key := store.ScenarioKey(n)
		if seenKeys[key] {
			continue
		}
		seenKeys[key] = true
		cs.keys = append(cs.keys, key)
		pinned = append(pinned, n)
	}
	return cs, pinned, true
}

// failedJobs collects "key: error" lines for terminal-failed jobs.
func failedJobs(jobs []*job) []string {
	var failed []string
	for _, j := range jobs {
		j.mu.Lock()
		if j.status == StatusFailed {
			failed = append(failed, fmt.Sprintf("%s: %s", j.key, j.err))
		}
		j.mu.Unlock()
	}
	return failed
}

// renderSweep seeds the runner with every completed job's result and
// renders the report, returning the body and its content type. Seeding
// is a no-op with a LocalPool (the pool already ran through this
// runner); with a coordinator it is what makes the farm's work reach
// local table assembly even when no store is attached — without it the
// render would re-simulate the whole sweep.
func (s *Server) renderSweep(cs *compiledSweep, jobs []*job) ([]byte, string) {
	for _, j := range jobs {
		j.mu.Lock()
		done := j.status == StatusDone
		res := j.result
		j.mu.Unlock()
		if done {
			s.runner.Seed(j.sc, res)
		}
	}
	var buf bytes.Buffer
	switch cs.format {
	case "json", "csv":
		rep := report.Report{Version: report.Version, Scale: s.scaleName}
		for _, e := range cs.exps {
			rep.Tables = append(rep.Tables, report.FromStats(e.ID, e.Table(s.runner)))
		}
		if cs.format == "csv" {
			_ = rep.WriteCSV(&buf)
			return buf.Bytes(), "text/csv"
		}
		writeJSON(&buf, sweepResponse{Name: cs.name, Scale: s.scaleName, Keys: cs.keys, Report: rep})
		return buf.Bytes(), "application/json"
	default: // text
		for _, e := range cs.exps {
			fmt.Fprintln(&buf, e.Table(s.runner).String())
		}
		return buf.Bytes(), "text/plain; charset=utf-8"
	}
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	cs, pinned, ok := s.parseSweep(w, r)
	if !ok {
		return
	}
	jobs, err := s.enqueueKeyed(tenantFrom(r.Context()), cs.keys, pinned)
	if err != nil {
		s.enqueueError(w, err)
		return
	}

	if wantsSSE(r) {
		if flusher, can := w.(http.Flusher); can {
			s.streamSweep(w, flusher, r, cs, jobs)
			return
		}
		// No flush support on this connection: fall through to the
		// blocking path, which needs none.
	}

	// Wait for the expansion to finish. The request context bounds the
	// wait: a gone client stops consuming worker results here, but the
	// enqueued jobs keep running — their results stay pollable (and
	// store-persisted), so a retry after a timeout is all hits. Job
	// ABANDONMENT also wakes the wait: Shutdown leaves queued jobs
	// behind without closing their done channels, so without the signal
	// this handler would stall until the HTTP drain deadline killed the
	// connection instead of answering an honest 503. A graceful drain
	// (Close, or the pre-drain RejectNew) deliberately does not wake
	// waiters — in-flight jobs may still finish inside the drain
	// window, and a sweep whose last job completes there delivers its
	// rendered result.
	ctx := r.Context()
	for _, j := range jobs {
		// Fast path first: select picks uniformly among ready cases, so
		// without it a just-closed abandonCh could win over an equally
		// closed done channel and 503 a sweep whose work all finished.
		select {
		case <-j.done:
			continue
		default:
		}
		select {
		case <-j.done:
		case <-ctx.Done():
			client.WriteError(w, http.StatusServiceUnavailable, client.CodeInterrupted,
				"sweep %q interrupted while simulating; results keep computing and dedup on resubmit", cs.name)
			return
		case <-s.abandonCh:
			client.WriteError(w, http.StatusServiceUnavailable, client.CodeShuttingDown,
				"server shutting down mid-sweep %q; completed results persist and dedup on resubmit", cs.name)
			return
		}
	}
	if failed := failedJobs(jobs); len(failed) > 0 {
		client.WriteError(w, http.StatusInternalServerError, client.CodeInternal,
			"sweep %q: %d scenarios failed: %s", cs.name, len(failed), strings.Join(failed, "; "))
		return
	}

	body, ctype := s.renderSweep(cs, jobs)
	w.Header().Set("Content-Type", ctype)
	w.Write(body)
}

// wantsSSE reports whether the request asked for an event stream.
func wantsSSE(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// sseEvent writes one SSE event and flushes it out. Multi-line
// payloads become one data: line each — the receiver joins them with
// newlines, restoring the payload byte-for-byte.
func sseEvent(w io.Writer, flusher http.Flusher, event, payload string) {
	fmt.Fprintf(w, "event: %s\n", event)
	for _, line := range strings.Split(payload, "\n") {
		fmt.Fprintf(w, "data: %s\n", line)
	}
	fmt.Fprint(w, "\n")
	flusher.Flush()
}

// sseJSON renders a compact JSON payload for an event.
func sseJSON(v any) string {
	raw, _ := json.Marshal(v)
	return string(raw)
}

// sweepProgress is the payload of "sweep" (initial) and "scenario"
// (per-completion) events.
type sweepProgress struct {
	Name      string `json:"name,omitempty"`
	Key       string `json:"key,omitempty"`
	Status    string `json:"status,omitempty"`
	Completed int    `json:"completed"`
	Total     int    `json:"total"`
}

// streamSweep is the SSE sweep path: per-scenario completion events in
// completion order, then a terminal "result" event whose data is the
// same bytes the blocking path would have answered (or an "error"
// event carrying the envelope it would have answered).
func (s *Server) streamSweep(w http.ResponseWriter, flusher http.Flusher, r *http.Request, cs *compiledSweep, jobs []*job) {
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	total := len(jobs)
	sseEvent(w, flusher, "sweep", sseJSON(sweepProgress{Name: cs.name, Total: total}))

	// Fan every job's done channel into one stream so events arrive in
	// completion order, not expansion order. The forwarders hold no
	// locks and exit with the request (or on abandonment).
	ctx := r.Context()
	completions := make(chan *job)
	for _, j := range jobs {
		go func(j *job) {
			select {
			case <-j.done:
				select {
				case completions <- j:
				case <-ctx.Done():
				case <-s.abandonCh:
				}
			case <-ctx.Done():
			case <-s.abandonCh:
			}
		}(j)
	}

	errEvent := func(code, format string, args ...any) {
		sseEvent(w, flusher, "error", sseJSON(client.ErrorEnvelope{Error: client.ErrorInfo{
			Code:      code,
			Message:   fmt.Sprintf(format, args...),
			Retryable: client.Retryable(code),
		}}))
	}
	for completed := 0; completed < total; completed++ {
		select {
		case j := <-completions:
			j.mu.Lock()
			status := j.status
			j.mu.Unlock()
			sseEvent(w, flusher, "scenario", sseJSON(sweepProgress{
				Key: j.key, Status: status, Completed: completed + 1, Total: total,
			}))
		case <-ctx.Done():
			// The client is gone; nothing useful can be written.
			return
		case <-s.abandonCh:
			errEvent(client.CodeShuttingDown,
				"server shutting down mid-sweep %q; completed results persist and dedup on resubmit", cs.name)
			return
		}
	}
	if failed := failedJobs(jobs); len(failed) > 0 {
		errEvent(client.CodeInternal, "sweep %q: %d scenarios failed: %s",
			cs.name, len(failed), strings.Join(failed, "; "))
		return
	}
	body, _ := s.renderSweep(cs, jobs)
	sseEvent(w, flusher, "result", string(body))
}
