package server

// POST /v1/sweeps: declarative sweep execution. The body is a spec
// document (internal/spec); the server validates and expands it,
// enqueues every expanded scenario through the ordinary job table — so
// sweep jobs dedup against /v1/sims, /v1/scenarios, compiled-in
// experiment renders, and the persistent store by content key — waits
// for the expansion to finish, and renders the chosen tables.
//
//	POST /v1/sweeps?format=json|csv|text&tables=id1,id2   body: spec JSON
//
// json responses wrap the report with the sweep's scenario keys, so a
// client can re-poll individual results via GET /v1/scenarios/{key}
// afterwards; csv and text responses are the bare rendered tables.

import (
	"fmt"
	"io"
	"net/http"
	"strings"

	"shotgun/internal/harness"
	"shotgun/internal/report"
	"shotgun/internal/sim"
	"shotgun/internal/spec"
	"shotgun/internal/stats"
	"shotgun/internal/store"
)

// sweepResponse is POST /v1/sweeps' json body.
type sweepResponse struct {
	// Name echoes the spec's name.
	Name string `json:"name"`
	// Scale is the server's scale label (the spec ran pinned to it).
	Scale string `json:"scale,omitempty"`
	// Keys lists the expanded scenarios' content keys in deterministic
	// expansion order (deduplicated, first occurrence kept); each is
	// pollable via GET /v1/scenarios/{key}.
	Keys []string `json:"keys"`
	// Report carries the rendered tables.
	Report report.Report `json:"report"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	switch format {
	case "json", "csv", "text":
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q (json, csv, text)", format)
		return
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	compiled, err := spec.Compile(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Content keys derive from the server's pinned scale; a spec that
	// pins a different scale would silently run at the wrong one.
	if sc := compiled.Spec.Scale; sc != nil && sc.Harness() != s.scale {
		httpError(w, http.StatusBadRequest,
			"spec pins scale %+v but this server runs %q (%+v); drop the spec's scale or submit to a matching server",
			*sc, s.scaleName, s.scale)
		return
	}

	exps := compiled.Experiments()
	if sel := r.URL.Query().Get("tables"); sel != "" {
		byID := make(map[string]int, len(exps))
		for i, e := range exps {
			byID[e.ID] = i
		}
		var picked []harness.Experiment
		seen := make(map[string]bool)
		for _, id := range strings.Split(sel, ",") {
			id = strings.TrimSpace(id)
			i, ok := byID[id]
			if !ok {
				httpError(w, http.StatusBadRequest, "spec %q has no table %q", compiled.Spec.Name, id)
				return
			}
			if !seen[id] {
				seen[id] = true
				picked = append(picked, exps[i])
			}
		}
		exps = picked
	}

	// Expand the selected tables' work list, pin it to the server
	// scale, and push it through the shared job table — identical keys
	// dedup onto existing jobs (or store records) exactly like the
	// batch endpoints.
	scs := harness.AllScenarios(exps)
	var keys []string
	var pinned []sim.Scenario
	seenKeys := make(map[string]bool, len(scs))
	for _, sc := range scs {
		n := s.runner.NormalizeScenario(sc)
		key := store.ScenarioKey(n)
		if seenKeys[key] {
			continue
		}
		seenKeys[key] = true
		keys = append(keys, key)
		pinned = append(pinned, n)
	}
	jobs, err := s.enqueueKeyed(keys, pinned)
	if err != nil {
		s.enqueueError(w, err)
		return
	}

	// Wait for the expansion to finish. The request context bounds the
	// wait: a gone client stops consuming worker results here, but the
	// enqueued jobs keep running — their results stay pollable (and
	// store-persisted), so a retry after a timeout is all hits. Job
	// ABANDONMENT also wakes the wait: Shutdown leaves queued jobs
	// behind without closing their done channels, so without the signal
	// this handler would stall until the HTTP drain deadline killed the
	// connection instead of answering an honest 503. A graceful drain
	// (Close, or the pre-drain RejectNew) deliberately does not wake
	// waiters — in-flight jobs may still finish inside the drain
	// window, and a sweep whose last job completes there delivers its
	// rendered result.
	ctx := r.Context()
	for _, j := range jobs {
		// Fast path first: select picks uniformly among ready cases, so
		// without it a just-closed abandonCh could win over an equally
		// closed done channel and 503 a sweep whose work all finished.
		select {
		case <-j.done:
			continue
		default:
		}
		select {
		case <-j.done:
		case <-ctx.Done():
			httpError(w, http.StatusServiceUnavailable,
				"sweep %q interrupted while simulating; results keep computing and dedup on resubmit", compiled.Spec.Name)
			return
		case <-s.abandonCh:
			httpError(w, http.StatusServiceUnavailable,
				"server shutting down mid-sweep %q; completed results persist and dedup on resubmit", compiled.Spec.Name)
			return
		}
	}
	var failed []string
	for _, j := range jobs {
		j.mu.Lock()
		if j.status == StatusFailed {
			failed = append(failed, fmt.Sprintf("%s: %s", j.key, j.err))
		}
		j.mu.Unlock()
	}
	if len(failed) > 0 {
		httpError(w, http.StatusInternalServerError, "sweep %q: %d scenarios failed: %s",
			compiled.Spec.Name, len(failed), strings.Join(failed, "; "))
		return
	}

	// Seed the runner's memo with every completed job's result, then
	// assemble. With a LocalPool this is a no-op (the pool already ran
	// through this runner); with a coordinator it is what makes the
	// farm's work reach local table assembly even when no store is
	// attached — without it the render below would re-simulate the
	// whole sweep.
	for _, j := range jobs {
		j.mu.Lock()
		done := j.status == StatusDone
		res := j.result
		j.mu.Unlock()
		if done {
			s.runner.Seed(j.sc, res)
		}
	}
	tables := make([]*stats.Table, len(exps))
	for i, e := range exps {
		tables[i] = e.Table(s.runner)
	}
	switch format {
	case "json", "csv":
		rep := report.Report{Version: report.Version, Scale: s.scaleName}
		for i, e := range exps {
			rep.Tables = append(rep.Tables, report.FromStats(e.ID, tables[i]))
		}
		if format == "csv" {
			w.Header().Set("Content-Type", "text/csv")
			_ = rep.WriteCSV(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, sweepResponse{Name: compiled.Spec.Name, Scale: s.scaleName, Keys: keys, Report: rep})
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, tab := range tables {
			fmt.Fprintln(w, tab.String())
		}
	}
}
