package server

// Multi-tenant farm tests: fair-share scheduling end to end over HTTP,
// API-key auth, the SSE sweep stream, the error-envelope surface, and
// the Prometheus exposition.

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"shotgun/internal/client"
	"shotgun/internal/dispatch"
	"shotgun/internal/harness"
	"shotgun/internal/sim"
	"shotgun/internal/store"
)

const (
	keyAcme = "key-acme-sweeps"
	keySolo = "key-solo-sims"
)

// testRegistry is two equal-weight tenants: acme (the sweep flood) and
// solo (the single interactive sim).
func testRegistry(t *testing.T) *TenantRegistry {
	t.Helper()
	reg, err := ParseTenants([]byte(`{"tenants":[
		{"name":"acme","key":"` + keyAcme + `"},
		{"name":"solo","key":"` + keySolo + `"}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// grant is one job the manual executor received.
type grant struct {
	key string
	sc  sim.Scenario
}

// manualExec is a hand-cranked executor: it records every dispatched
// job and completes one only when the test says so, making fair-queue
// interleavings deterministic instead of racing real workers.
type manualExec struct {
	sink dispatch.Sink
	mu   sync.Mutex
	got  []grant
}

func (m *manualExec) Enqueue(key string, sc sim.Scenario) error {
	m.mu.Lock()
	m.got = append(m.got, grant{key: key, sc: sc})
	m.mu.Unlock()
	m.sink.JobRunning(key)
	return nil
}

func (m *manualExec) Stop(bool) {}

// waitGrants blocks until at least n jobs have been dispatched.
func (m *manualExec) waitGrants(t *testing.T, n int) []grant {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		m.mu.Lock()
		got := append([]grant(nil), m.got...)
		m.mu.Unlock()
		if len(got) >= n {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("executor saw %d grants, want %d", len(got), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// complete finishes grant i successfully (idempotent).
func (m *manualExec) complete(i int) {
	m.mu.Lock()
	g := m.got[i]
	m.mu.Unlock()
	m.sink.JobDone(g.key, sim.ScenarioResult{Cores: make([]sim.Result, len(g.sc.Cores))})
}

// request performs one HTTP call, optionally with a Bearer key, and
// returns the response plus its full body.
func request(t *testing.T, method, url, apiKey, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	if apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+apiKey)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// metricValue extracts one sample from a Prometheus exposition body;
// series is the full sample name including any labels.
func metricValue(t *testing.T, body, series string) int {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.Atoi(rest)
			if err != nil {
				t.Fatalf("series %s carries non-integer %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not in exposition:\n%s", series, body)
	return 0
}

// TestFairShareSingleSimVsBigSweep is the tenancy acceptance path:
// tenant acme floods the farm with a 512-scenario batch, tenant solo
// submits one sim, and the fair-share queue must grant solo's job
// within a bounded number of slot completions — so it finishes while
// acme's backlog still has hundreds waiting, all visible per tenant in
// /metrics.
func TestFairShareSingleSimVsBigSweep(t *testing.T) {
	var exec *manualExec
	srv := New(Config{
		Scale: tinyScale(), ScaleName: "tiny", Workers: 2, FairSlots: 2,
		Tenants: testRegistry(t),
		NewExecutor: func(_ *harness.Runner, sink dispatch.Sink) dispatch.Executor {
			exec = &manualExec{sink: sink}
			return exec
		},
	})
	ts := httptest.NewServer(srv.Handler())
	// Shutdown, not Close: the manual executor still holds unfinished
	// grants and a drain would wait on them forever.
	t.Cleanup(func() { ts.Close(); srv.Shutdown() })

	// Tenant acme: 512 distinct one-core scenarios (BTB sweep).
	var scs []sim.Scenario
	for i := 0; i < 512; i++ {
		scs = append(scs, sim.Scenario{Cores: []sim.Config{
			{Workload: "Nutch", Mechanism: sim.None, BTBEntries: 1024 + i},
		}})
	}
	body, err := json.Marshal(client.SubmitScenariosRequest{Scenarios: scs})
	if err != nil {
		t.Fatal(err)
	}
	resp, raw := request(t, http.MethodPost, ts.URL+"/v1/scenarios", keyAcme, string(body), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit status %d: %s", resp.StatusCode, raw)
	}
	var sweepOut client.SubmitScenariosResponse
	if err := json.Unmarshal(raw, &sweepOut); err != nil {
		t.Fatal(err)
	}
	if len(sweepOut.Scenarios) != 512 {
		t.Fatalf("echoed %d scenarios, want 512", len(sweepOut.Scenarios))
	}
	// Both residency slots fill with acme work before solo shows up.
	grants := exec.waitGrants(t, 2)

	// Tenant solo: one interactive sim.
	resp, raw = request(t, http.MethodPost, ts.URL+"/v1/sims", keySolo,
		`{"configs":[{"Workload":"Nutch","Mechanism":"fdip"}]}`, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("solo submit status %d: %s", resp.StatusCode, raw)
	}
	var soloOut client.SubmitSimsResponse
	if err := json.Unmarshal(raw, &soloOut); err != nil {
		t.Fatal(err)
	}
	soloKey := soloOut.Sims[0].Key
	for _, g := range grants {
		if g.key == soloKey {
			t.Fatal("solo's key granted before it was submitted")
		}
	}

	// Crank completions one at a time: the weighted round-robin must
	// grant solo's sim within a couple of freed slots, not after acme's
	// 512-job backlog.
	soloPos := -1
	for done := 0; soloPos < 0 && done < 4; done++ {
		exec.complete(done)
		grants = exec.waitGrants(t, 3+done)
		for i, g := range grants {
			if g.key == soloKey {
				soloPos = i
			}
		}
	}
	if soloPos < 0 {
		t.Fatal("solo's sim was not granted within 4 completions of a 512-job backlog — fair share is starving it")
	}
	exec.complete(soloPos)

	// Solo's sim is done while acme's sweep has barely started.
	resp, raw = request(t, http.MethodGet, ts.URL+"/v1/sims/"+soloKey, keySolo, "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solo poll status %d", resp.StatusCode)
	}
	var soloSt SimStatus
	if err := json.Unmarshal(raw, &soloSt); err != nil {
		t.Fatal(err)
	}
	if soloSt.Status != StatusDone {
		t.Fatalf("solo sim status %q, want done before the sweep finishes", soloSt.Status)
	}

	// The imbalance is visible per tenant on the (unauthenticated)
	// metrics scrape.
	resp, raw = request(t, http.MethodGet, ts.URL+"/metrics", "", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	exposition := string(raw)
	if got := metricValue(t, exposition, `shotgun_tenant_queued{tenant="acme"}`); got < 500 {
		t.Errorf("acme queued = %d, want >= 500 still waiting", got)
	}
	if got := metricValue(t, exposition, `shotgun_tenant_completed_total{tenant="solo"}`); got != 1 {
		t.Errorf("solo completed = %d, want 1", got)
	}
	if got := metricValue(t, exposition, `shotgun_tenant_queued{tenant="solo"}`); got != 0 {
		t.Errorf("solo queued = %d, want 0", got)
	}
	if got := metricValue(t, exposition, "shotgun_queue_slots"); got != 2 {
		t.Errorf("queue slots = %d, want 2", got)
	}
	if metricValue(t, exposition, "shotgun_queue_depth") < 500 {
		t.Error("global queue depth lost the backlog")
	}
}

// TestAuthGate covers the API-key middleware: bad credentials 401 with
// the envelope, good ones pass (case-insensitive scheme), exempt
// routes need no key, and a registry-less server never asks for one.
func TestAuthGate(t *testing.T) {
	srv := New(Config{Scale: tinyScale(), ScaleName: "tiny", Workers: 1, Tenants: testRegistry(t)})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	for name, header := range map[string]string{
		"missing header": "",
		"wrong scheme":   "Basic Zm9v",
		"unknown key":    "Bearer nope",
		"empty key":      "Bearer ",
	} {
		t.Run(name, func(t *testing.T) {
			hdr := map[string]string{}
			if header != "" {
				hdr["Authorization"] = header
			}
			resp, raw := request(t, http.MethodGet, ts.URL+"/v1/experiments", "", "", hdr)
			if resp.StatusCode != http.StatusUnauthorized {
				t.Fatalf("status %d, want 401", resp.StatusCode)
			}
			var env client.ErrorEnvelope
			if err := json.Unmarshal(raw, &env); err != nil {
				t.Fatalf("401 body not an envelope: %v (%s)", err, raw)
			}
			if env.Error.Code != client.CodeUnauthorized || env.Error.Retryable {
				t.Fatalf("envelope wrong: %+v", env.Error)
			}
		})
	}

	// Valid key passes; the scheme is case-insensitive per RFC 7235.
	resp, _ := request(t, http.MethodGet, ts.URL+"/v1/experiments", "", "",
		map[string]string{"Authorization": "bearer " + keyAcme})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lowercase-scheme auth status %d, want 200", resp.StatusCode)
	}

	// Exempt routes answer without a key; /v1/version advertises that
	// every other route needs one.
	for _, path := range []string{"/healthz", "/v1/version", "/metrics"} {
		resp, _ := request(t, http.MethodGet, ts.URL+path, "", "", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s without key: status %d, want 200", path, resp.StatusCode)
		}
	}
	_, raw := request(t, http.MethodGet, ts.URL+"/v1/version", "", "", nil)
	var v client.VersionInfo
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	if v.API != "v1" || !v.AuthRequired || v.Scale != "tiny" {
		t.Fatalf("version info wrong: %+v", v)
	}
	if v.StoreFormatVersion != store.FormatVersion || v.MaxCores != sim.MaxCores {
		t.Fatalf("version compatibility fields wrong: %+v", v)
	}

	// Auth off: everything is the anonymous tenant, no key needed.
	_, tsOpen := newTestServer(t, nil)
	resp, raw = request(t, http.MethodGet, tsOpen.URL+"/v1/version", "", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open version status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	if v.AuthRequired {
		t.Fatal("registry-less server claims auth is required")
	}
}

// TestErrorEnvelopeSurface sweeps the 4xx/5xx surface: every error
// response, on every route, must decode into the versioned envelope
// with the documented code, and its retryable flag must match the
// published table.
func TestErrorEnvelopeSurface(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"sims bad json", "POST", "/v1/sims", "{", 400, client.CodeInvalidRequest},
		{"sims empty batch", "POST", "/v1/sims", `{"configs":[]}`, 400, client.CodeInvalidRequest},
		{"sims unknown workload", "POST", "/v1/sims", `{"configs":[{"Workload":"NoSuch","Mechanism":"none"}]}`, 400, client.CodeInvalidRequest},
		{"scenarios no cores", "POST", "/v1/scenarios", `{"scenarios":[{"Cores":[]}]}`, 400, client.CodeInvalidRequest},
		{"sims unknown key", "GET", "/v1/sims/deadbeef", "", 404, client.CodeNotFound},
		{"scenarios unknown key", "GET", "/v1/scenarios/deadbeef", "", 404, client.CodeNotFound},
		{"experiments unknown id", "GET", "/v1/experiments/nope", "", 404, client.CodeNotFound},
		{"experiments bad format", "GET", "/v1/experiments/fig3?format=x", "", 400, client.CodeInvalidRequest},
		{"sweeps bad format", "POST", "/v1/sweeps?format=xml", testSweepSpec, 400, client.CodeInvalidRequest},
		{"sweeps bad spec", "POST", "/v1/sweeps", `{"version":`, 400, client.CodeInvalidSpec},
		{"sweeps unknown table", "POST", "/v1/sweeps?tables=nope", testSweepSpec, 400, client.CodeInvalidSpec},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := request(t, tc.method, ts.URL+tc.path, "", tc.body, nil)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.wantStatus, raw)
			}
			var env client.ErrorEnvelope
			if err := json.Unmarshal(raw, &env); err != nil {
				t.Fatalf("body not an envelope: %v (%s)", err, raw)
			}
			if env.Error.Code != tc.wantCode {
				t.Fatalf("code %q, want %q", env.Error.Code, tc.wantCode)
			}
			if env.Error.Retryable != client.Retryable(env.Error.Code) {
				t.Fatalf("retryable flag %v disagrees with the code table", env.Error.Retryable)
			}
			if env.Error.Message == "" {
				t.Fatal("envelope message empty")
			}
		})
	}

	// shutting_down: intake rejected once RejectNew is called.
	srv2 := New(Config{Scale: tinyScale(), Workers: 1})
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() { ts2.Close(); srv2.Close() })
	srv2.RejectNew()
	resp, raw := request(t, http.MethodPost, ts2.URL+"/v1/sims", "",
		`{"configs":[{"Workload":"Nutch","Mechanism":"none"}]}`, nil)
	var env client.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || env.Error.Code != client.CodeShuttingDown {
		t.Fatalf("post-RejectNew: %d %+v, want 503 shutting_down", resp.StatusCode, env.Error)
	}
}

// TestTenantQuotaOverHTTP: a tenant with MaxQueued 1 gets a 429
// quota_exceeded envelope (with Retry-After) on its second submission
// while the first is still outstanding — and an unconstrained tenant
// is unaffected.
func TestTenantQuotaOverHTTP(t *testing.T) {
	reg, err := ParseTenants([]byte(`{"tenants":[
		{"name":"capped","key":"cap-key","max_queued":1},
		{"name":"free","key":"free-key"}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	var exec *manualExec
	srv := New(Config{
		Scale: tinyScale(), ScaleName: "tiny", Workers: 1, FairSlots: 1, Tenants: reg,
		NewExecutor: func(_ *harness.Runner, sink dispatch.Sink) dispatch.Executor {
			exec = &manualExec{sink: sink}
			return exec
		},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Shutdown() })

	resp, raw := request(t, http.MethodPost, ts.URL+"/v1/sims", "cap-key",
		`{"configs":[{"Workload":"Nutch","Mechanism":"none"}]}`, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status %d: %s", resp.StatusCode, raw)
	}
	resp, raw = request(t, http.MethodPost, ts.URL+"/v1/sims", "cap-key",
		`{"configs":[{"Workload":"Nutch","Mechanism":"fdip"}]}`, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit status %d, want 429: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
	var env client.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != client.CodeQuotaExceeded || !env.Error.Retryable {
		t.Fatalf("envelope wrong: %+v", env.Error)
	}

	// Another tenant's headroom is its own.
	resp, raw = request(t, http.MethodPost, ts.URL+"/v1/sims", "free-key",
		`{"configs":[{"Workload":"Nutch","Mechanism":"fdip"}]}`, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("free tenant status %d, want 202: %s", resp.StatusCode, raw)
	}

	// The capped tenant's rejection shows up in its metrics row.
	_, raw = request(t, http.MethodGet, ts.URL+"/metrics", "", "", nil)
	if got := metricValue(t, string(raw), `shotgun_tenant_rejected_total{tenant="capped"}`); got != 1 {
		t.Errorf("capped rejected = %d, want 1", got)
	}
	_ = exec // grants are never completed; Shutdown abandons them
}

// sseMsg is one parsed server-sent event.
type sseMsg struct {
	event string
	data  string
}

// parseSSE splits a full event-stream body into events, joining each
// event's data lines with newlines (the inverse of sseEvent).
func parseSSE(t *testing.T, raw string) []sseMsg {
	t.Helper()
	var msgs []sseMsg
	for _, block := range strings.Split(raw, "\n\n") {
		if block == "" {
			continue
		}
		var m sseMsg
		var data []string
		for _, line := range strings.Split(block, "\n") {
			if rest, ok := strings.CutPrefix(line, "event: "); ok {
				m.event = rest
				continue
			}
			if rest, ok := strings.CutPrefix(line, "data: "); ok {
				data = append(data, rest)
				continue
			}
			t.Fatalf("unparseable SSE line %q", line)
		}
		m.data = strings.Join(data, "\n")
		msgs = append(msgs, m)
	}
	return msgs
}

// TestSweepSSEStream: a sweep requested with Accept: text/event-stream
// must deliver incremental progress — a "sweep" header event, one
// "scenario" event per completion — and a terminal "result" event
// whose payload is byte-identical to the blocking response for the
// same format.
func TestSweepSSEStream(t *testing.T) {
	_, ts := newTestServer(t, nil)

	resp, raw := request(t, http.MethodPost, ts.URL+"/v1/sweeps?format=text", "",
		testSweepSpec, map[string]string{"Accept": "text/event-stream"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE sweep status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}

	msgs := parseSSE(t, string(raw))
	if len(msgs) < 3 {
		t.Fatalf("want >= 3 events (sweep, scenario..., result), got %d: %+v", len(msgs), msgs)
	}
	var head sweepProgress
	if msgs[0].event != "sweep" {
		t.Fatalf("first event %q, want sweep", msgs[0].event)
	}
	if err := json.Unmarshal([]byte(msgs[0].data), &head); err != nil {
		t.Fatal(err)
	}
	if head.Name != "sweep-e2e" || head.Total != 2 {
		t.Fatalf("sweep header wrong: %+v", head)
	}
	scenarios := 0
	for _, m := range msgs[1 : len(msgs)-1] {
		if m.event != "scenario" {
			t.Fatalf("mid-stream event %q, want scenario", m.event)
		}
		var p sweepProgress
		if err := json.Unmarshal([]byte(m.data), &p); err != nil {
			t.Fatal(err)
		}
		scenarios++
		if p.Completed != scenarios || p.Total != 2 || p.Key == "" || p.Status != StatusDone {
			t.Fatalf("scenario event %d wrong: %+v", scenarios, p)
		}
	}
	if scenarios != 2 {
		t.Fatalf("saw %d scenario events, want 2", scenarios)
	}
	last := msgs[len(msgs)-1]
	if last.event != "result" {
		t.Fatalf("terminal event %q, want result", last.event)
	}

	// Byte-identity: the streamed result equals the blocking body (the
	// resubmit dedups onto the already-done jobs, so both render the
	// same state).
	respBlock, rawBlock := postSweep(t, ts.URL, "?format=text", testSweepSpec)
	if respBlock.StatusCode != http.StatusOK {
		t.Fatalf("blocking sweep status %d", respBlock.StatusCode)
	}
	if last.data != string(rawBlock) {
		t.Fatalf("streamed result differs from blocking body:\n--- stream ---\n%q\n--- blocking ---\n%q", last.data, rawBlock)
	}
}

// TestSweepSSEAbandonSendsErrorEvent: shutdown mid-stream must emit an
// "error" event carrying the same shutting_down envelope the blocking
// path answers, not silently hang up.
func TestSweepSSEAbandonSendsErrorEvent(t *testing.T) {
	srv := New(Config{
		Scale: tinyScale(), ScaleName: "tiny",
		NewExecutor: func(*harness.Runner, dispatch.Sink) dispatch.Executor {
			return sinkExec{}
		},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close() })

	done := make(chan []sseMsg, 1)
	go func() {
		resp, raw := request(t, http.MethodPost, ts.URL+"/v1/sweeps?format=text", "",
			testSweepSpec, map[string]string{"Accept": "text/event-stream"})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("SSE status %d", resp.StatusCode)
		}
		done <- parseSSE(t, string(raw))
	}()
	time.Sleep(200 * time.Millisecond) // let the stream open and block
	srv.Shutdown()
	select {
	case msgs := <-done:
		if len(msgs) == 0 {
			t.Fatal("no events before shutdown")
		}
		last := msgs[len(msgs)-1]
		if last.event != "error" {
			t.Fatalf("terminal event %q, want error: %+v", last.event, msgs)
		}
		var env client.ErrorEnvelope
		if err := json.Unmarshal([]byte(last.data), &env); err != nil {
			t.Fatal(err)
		}
		if env.Error.Code != client.CodeShuttingDown || !env.Error.Retryable {
			t.Fatalf("error event envelope wrong: %+v", env.Error)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SSE stream did not terminate on shutdown")
	}
}

// TestMetricsExposition smokes the store and cluster metric families
// (the tenant families are asserted by the fairness test) and the
// anonymous-tenant labeling.
func TestMetricsExposition(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fakeCluster := func() dispatch.CoordinatorStats {
		return dispatch.CoordinatorStats{Leased: 7, Requeued: 2, Expired: 1, ActiveWorkers: 3}
	}
	srv := New(Config{Scale: tinyScale(), ScaleName: "tiny", Workers: 2, Store: st, ClusterStats: fakeCluster})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	out, _ := postSims(t, ts.URL, []sim.Config{{Workload: "Nutch", Mechanism: sim.None}})
	pollDone(t, ts.URL, out.Sims[0].Key)

	resp, raw := request(t, http.MethodGet, ts.URL+"/metrics", "", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type %q", ct)
	}
	exposition := string(raw)
	if got := metricValue(t, exposition, "shotgun_store_puts_total"); got != 1 {
		t.Errorf("store puts = %d, want 1", got)
	}
	metricValue(t, exposition, "shotgun_store_hits_total")
	metricValue(t, exposition, "shotgun_store_misses_total")
	metricValue(t, exposition, "shotgun_store_records")
	if got := metricValue(t, exposition, "shotgun_lease_granted_total"); got != 7 {
		t.Errorf("lease granted = %d, want 7", got)
	}
	if got := metricValue(t, exposition, "shotgun_cluster_workers"); got != 3 {
		t.Errorf("cluster workers = %d, want 3", got)
	}
	// Auth off: the work ran under the anonymous tenant label.
	if got := metricValue(t, exposition, `shotgun_tenant_completed_total{tenant="anonymous"}`); got != 1 {
		t.Errorf("anonymous completed = %d, want 1", got)
	}
	if metricValue(t, exposition, `shotgun_http_responses_total{class="2xx"}`) < 1 {
		t.Error("2xx responses not counted")
	}
	// Every family line is well-formed HELP/TYPE/sample.
	for _, line := range strings.Split(strings.TrimSuffix(exposition, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !strings.HasPrefix(line, "shotgun_") {
			t.Fatalf("stray exposition line %q", line)
		}
	}
}

// TestStructuredRequestLog: the access log carries method, path,
// status and the authenticated tenant.
func TestStructuredRequestLog(t *testing.T) {
	var buf strings.Builder
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(&lockedWriter{buf: &buf, mu: &mu}, nil))
	srv := New(Config{Scale: tinyScale(), ScaleName: "tiny", Workers: 1,
		Tenants: testRegistry(t), Logger: logger})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	request(t, http.MethodGet, ts.URL+"/v1/experiments", keyAcme, "", nil)
	request(t, http.MethodGet, ts.URL+"/v1/sims/nope", keySolo, "", nil)

	mu.Lock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mu.Unlock()
	if len(lines) != 2 {
		t.Fatalf("want 2 access lines, got %d: %v", len(lines), lines)
	}
	type access struct {
		Msg    string `json:"msg"`
		Method string `json:"method"`
		Path   string `json:"path"`
		Status int    `json:"status"`
		Tenant string `json:"tenant"`
	}
	var first, second access
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if first.Msg != "request" || first.Method != "GET" || first.Path != "/v1/experiments" ||
		first.Status != 200 || first.Tenant != "acme" {
		t.Fatalf("first access line wrong: %+v", first)
	}
	if second.Status != 404 || second.Tenant != "solo" {
		t.Fatalf("second access line wrong: %+v", second)
	}
}

// lockedWriter serializes concurrent log writes into a builder.
type lockedWriter struct {
	buf *strings.Builder
	mu  *sync.Mutex
}

func (w *lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}
