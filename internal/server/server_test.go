package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"shotgun/internal/harness"
	"shotgun/internal/report"
	"shotgun/internal/sim"
	"shotgun/internal/store"
)

// tinyScale keeps server tests fast.
func tinyScale() harness.Scale {
	return harness.Scale{WarmupInstr: 60_000, MeasureInstr: 80_000, Samples: 1}
}

// newTestServer builds a server (optionally store-backed) plus its HTTP
// front-end, wiring cleanup into the test.
func newTestServer(t *testing.T, st *store.Store) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Config{Scale: tinyScale(), ScaleName: "tiny", Workers: 2, Store: st})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func postSims(t *testing.T, base string, cfgs []sim.Config) (submitResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(submitRequest{Configs: cfgs})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/sims", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out submitResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp
}

// pollDone polls one key until it reaches "done" (or the deadline).
func pollDone(t *testing.T, base, key string) SimStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/sims/" + key)
		if err != nil {
			t.Fatal(err)
		}
		var st SimStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.Status {
		case StatusDone:
			return st
		case StatusFailed:
			t.Fatalf("simulation %s failed: %s", key, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("simulation %s still %q after deadline", key, st.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEndToEnd is the acceptance path: enqueue a batch over HTTP, poll
// to completion, fetch results; then restart the service on the same
// store and assert the identical batch is served from internal/store
// without re-simulating (via the store hit counter).
func TestEndToEnd(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := newTestServer(t, st1)

	batch := []sim.Config{
		{Workload: "Nutch", Mechanism: sim.None},
		{Workload: "Nutch", Mechanism: sim.FDIP},
		{Workload: "Streaming", Mechanism: sim.None},
	}
	out, resp := postSims(t, ts1.URL, batch)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}
	if len(out.Sims) != len(batch) {
		t.Fatalf("echoed %d sims, want %d", len(out.Sims), len(batch))
	}
	for i, s := range out.Sims {
		if s.Key == "" || s.Workload != batch[i].Workload {
			t.Fatalf("sim %d echo wrong: %+v", i, s)
		}
	}
	var keys []string
	for _, s := range out.Sims {
		done := pollDone(t, ts1.URL, s.Key)
		if done.Result == nil || done.Result.Core.Instructions == 0 {
			t.Fatalf("done result empty: %+v", done)
		}
		if done.Result.Workload != s.Workload {
			t.Fatalf("result for %s carries workload %s", s.Key, done.Result.Workload)
		}
		keys = append(keys, s.Key)
	}
	if st1.Stats().Puts != uint64(len(batch)) {
		t.Fatalf("store puts = %d, want %d", st1.Stats().Puts, len(batch))
	}

	// Re-submitting in the same process dedups onto the same jobs.
	again, _ := postSims(t, ts1.URL, batch)
	for i, s := range again.Sims {
		if s.Key != keys[i] {
			t.Fatalf("resubmit key %d changed: %s vs %s", i, s.Key, keys[i])
		}
	}

	// Warm restart: fresh runner + fresh store handle, same directory.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, st2)
	out2, _ := postSims(t, ts2.URL, batch)
	for i, s := range out2.Sims {
		if s.Key != keys[i] {
			t.Fatalf("restart key %d drifted: %s vs %s", i, s.Key, keys[i])
		}
		pollDone(t, ts2.URL, s.Key)
	}
	s2 := st2.Stats()
	if s2.Hits != uint64(len(batch)) {
		t.Fatalf("restarted store hits = %d, want %d (batch must be served from the store)", s2.Hits, len(batch))
	}
	if s2.Puts != 0 {
		t.Fatalf("restarted store puts = %d, want 0 (nothing should re-simulate)", s2.Puts)
	}
}

// TestPollServedFromStoreWithoutSubmit covers polling a key this process
// never saw: the store answers directly.
func TestPollServedFromStoreWithoutSubmit(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := newTestServer(t, st1)
	out, _ := postSims(t, ts1.URL, []sim.Config{{Workload: "Zeus", Mechanism: sim.None}})
	key := out.Sims[0].Key
	pollDone(t, ts1.URL, key)

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, st2)
	got := pollDone(t, ts2.URL, key) // no submit on ts2
	if got.Workload != "Zeus" || got.Result == nil {
		t.Fatalf("store-backed poll wrong: %+v", got)
	}
}

func TestSubmitRejectsBadBatches(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad json", "{", http.StatusBadRequest},
		{"empty batch", `{"configs":[]}`, http.StatusBadRequest},
		{"unknown workload", `{"configs":[{"Workload":"NoSuch","Mechanism":"none"}]}`, http.StatusBadRequest},
		{"unknown mechanism", `{"configs":[{"Workload":"Oracle","Mechanism":"warp"}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/sims", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
	// A batch with one bad config must not enqueue the good ones.
	srv, ts2 := newTestServer(t, nil)
	body := `{"configs":[{"Workload":"Oracle","Mechanism":"none"},{"Workload":"NoSuch","Mechanism":"none"}]}`
	resp, err := http.Post(ts2.URL+"/v1/sims", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mixed batch status %d, want 400", resp.StatusCode)
	}
	srv.mu.Lock()
	n := len(srv.jobs)
	srv.mu.Unlock()
	if n != 0 {
		t.Fatalf("mixed batch enqueued %d jobs, want 0", n)
	}
}

func TestPollUnknownKey(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/v1/sims/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestExperimentEndpoints(t *testing.T) {
	_, ts := newTestServer(t, nil)

	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Experiments []experimentInfo `json:"experiments"`
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Experiments) != 12 {
		t.Fatalf("listed %d experiments, want 12", len(list.Experiments))
	}

	// fig3 is a pure trace analysis: renders without timing simulation.
	resp, err = http.Get(ts.URL + "/v1/experiments/fig3")
	if err != nil {
		t.Fatal(err)
	}
	var rep report.Report
	err = json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version != report.Version || rep.Scale != "tiny" {
		t.Fatalf("report header wrong: %+v", rep)
	}
	if len(rep.Tables) != 1 || rep.Tables[0].ID != "fig3" || len(rep.Tables[0].Rows) != 6 {
		t.Fatalf("fig3 table wrong: %+v", rep.Tables)
	}

	for q, want := range map[string]string{
		"?format=text": "Figure 3",
		"?format=csv":  "table,fig3",
	} {
		resp, err = http.Get(ts.URL + "/v1/experiments/fig3" + q)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(raw), want) {
			t.Fatalf("%s: output missing %q:\n%s", q, want, raw)
		}
	}

	for path, want := range map[string]int{
		"/v1/experiments/nope":          http.StatusNotFound,
		"/v1/experiments/fig3?format=x": http.StatusBadRequest,
	} {
		resp, err = http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

func TestStoreStatsEndpoint(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, st)
	resp, err := http.Get(ts.URL + "/v1/store/stats")
	if err != nil {
		t.Fatal(err)
	}
	var got storeStatsResponse
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Attached {
		t.Fatal("store not reported attached")
	}

	_, ts2 := newTestServer(t, nil)
	resp, err = http.Get(ts2.URL + "/v1/store/stats")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got.Attached {
		t.Fatal("storeless server reported a store")
	}
}

// TestQueueOverflow exercises the 503 + rollback path with a queue of
// depth 1 and a single busy worker.
func TestQueueOverflow(t *testing.T) {
	srv := New(Config{Scale: tinyScale(), Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	// Fill the worker + queue with distinct long-enough sims.
	var cfgs []sim.Config
	for _, m := range []sim.Mechanism{sim.None, sim.FDIP, sim.RDIP, sim.Boomerang, sim.Shotgun} {
		cfgs = append(cfgs, sim.Config{Workload: "Oracle", Mechanism: m})
	}
	overflowed := false
	for i, cfg := range cfgs {
		body, _ := json.Marshal(submitRequest{Configs: []sim.Config{cfg}})
		resp, err := http.Post(ts.URL+"/v1/sims", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
		case http.StatusServiceUnavailable:
			overflowed = true
			// The rolled-back key must be resubmittable once drained.
			key := store.Key(srv.runner.Normalize(cfg))
			srv.mu.Lock()
			_, present := srv.jobs[key]
			srv.mu.Unlock()
			if present {
				t.Fatalf("overflowed sim %d left in job table", i)
			}
		default:
			t.Fatalf("sim %d: status %d", i, resp.StatusCode)
		}
	}
	if !overflowed {
		t.Skip("queue never overflowed (machine too fast); nothing to assert")
	}
}
