package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"shotgun/internal/client"
	"shotgun/internal/dispatch"
	"shotgun/internal/harness"
	"shotgun/internal/report"
	"shotgun/internal/sim"
	"shotgun/internal/store"
)

// tinyScale keeps server tests fast.
func tinyScale() harness.Scale {
	return harness.Scale{WarmupInstr: 60_000, MeasureInstr: 80_000, Samples: 1}
}

// newTestServer builds a server (optionally store-backed) plus its HTTP
// front-end, wiring cleanup into the test.
func newTestServer(t *testing.T, st *store.Store) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Config{Scale: tinyScale(), ScaleName: "tiny", Workers: 2, Store: st})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func postSims(t *testing.T, base string, cfgs []sim.Config) (client.SubmitSimsResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(client.SubmitSimsRequest{Configs: cfgs})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/sims", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out client.SubmitSimsResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp
}

// pollDone polls one key until it reaches "done" (or the deadline).
func pollDone(t *testing.T, base, key string) SimStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/sims/" + key)
		if err != nil {
			t.Fatal(err)
		}
		var st SimStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.Status {
		case StatusDone:
			return st
		case StatusFailed:
			t.Fatalf("simulation %s failed: %s", key, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("simulation %s still %q after deadline", key, st.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEndToEnd is the acceptance path: enqueue a batch over HTTP, poll
// to completion, fetch results; then restart the service on the same
// store and assert the identical batch is served from internal/store
// without re-simulating (via the store hit counter).
func TestEndToEnd(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := newTestServer(t, st1)

	batch := []sim.Config{
		{Workload: "Nutch", Mechanism: sim.None},
		{Workload: "Nutch", Mechanism: sim.FDIP},
		{Workload: "Streaming", Mechanism: sim.None},
	}
	out, resp := postSims(t, ts1.URL, batch)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}
	if len(out.Sims) != len(batch) {
		t.Fatalf("echoed %d sims, want %d", len(out.Sims), len(batch))
	}
	for i, s := range out.Sims {
		if s.Key == "" || s.Workload != batch[i].Workload {
			t.Fatalf("sim %d echo wrong: %+v", i, s)
		}
	}
	var keys []string
	for _, s := range out.Sims {
		done := pollDone(t, ts1.URL, s.Key)
		if done.Result == nil || done.Result.Core.Instructions == 0 {
			t.Fatalf("done result empty: %+v", done)
		}
		if done.Result.Workload != s.Workload {
			t.Fatalf("result for %s carries workload %s", s.Key, done.Result.Workload)
		}
		keys = append(keys, s.Key)
	}
	if st1.Stats().Puts != uint64(len(batch)) {
		t.Fatalf("store puts = %d, want %d", st1.Stats().Puts, len(batch))
	}

	// Re-submitting in the same process dedups onto the same jobs.
	again, _ := postSims(t, ts1.URL, batch)
	for i, s := range again.Sims {
		if s.Key != keys[i] {
			t.Fatalf("resubmit key %d changed: %s vs %s", i, s.Key, keys[i])
		}
	}

	// Warm restart: fresh runner + fresh store handle, same directory.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, st2)
	out2, _ := postSims(t, ts2.URL, batch)
	for i, s := range out2.Sims {
		if s.Key != keys[i] {
			t.Fatalf("restart key %d drifted: %s vs %s", i, s.Key, keys[i])
		}
		pollDone(t, ts2.URL, s.Key)
	}
	s2 := st2.Stats()
	if s2.Hits != uint64(len(batch)) {
		t.Fatalf("restarted store hits = %d, want %d (batch must be served from the store)", s2.Hits, len(batch))
	}
	if s2.Puts != 0 {
		t.Fatalf("restarted store puts = %d, want 0 (nothing should re-simulate)", s2.Puts)
	}
}

func postScenarios(t *testing.T, base string, scs []sim.Scenario) (client.SubmitScenariosResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(client.SubmitScenariosRequest{Scenarios: scs})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/scenarios", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out client.SubmitScenariosResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp
}

// pollScenarioDone polls one scenario key until "done" (or the deadline).
func pollScenarioDone(t *testing.T, base, key string) ScenarioStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/scenarios/" + key)
		if err != nil {
			t.Fatal(err)
		}
		var st ScenarioStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.Status {
		case StatusDone:
			return st
		case StatusFailed:
			t.Fatalf("scenario %s failed: %s", key, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("scenario %s still %q after deadline", key, st.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestScenarioEndToEnd is the multi-core acceptance path: enqueue a
// scenario batch over HTTP, poll to completion, then restart the
// service on the same store and assert the identical batch is served
// entirely from store hits with zero new puts. Job views report cores
// in canonical scenario order (core lists are multisets — permuted
// submissions share one key), so expectations are written against the
// normalized form.
func TestScenarioEndToEnd(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1, ts1 := newTestServer(t, st1)

	batch := []sim.Scenario{
		{Cores: []sim.Config{
			{Workload: "Nutch", Mechanism: sim.None},
			{Workload: "Nutch", Mechanism: sim.FDIP},
		}},
		{Cores: []sim.Config{
			{Workload: "Streaming", Mechanism: sim.Shotgun},
			{Workload: "Nutch", Mechanism: sim.None},
		}},
	}
	canon := make([]sim.Scenario, len(batch))
	for i, sc := range batch {
		canon[i] = srv1.runner.NormalizeScenario(sc)
	}
	out, resp := postScenarios(t, ts1.URL, batch)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}
	if len(out.Scenarios) != len(batch) {
		t.Fatalf("echoed %d scenarios, want %d", len(out.Scenarios), len(batch))
	}
	var keys []string
	for i, s := range out.Scenarios {
		if s.Key == "" || s.Cores != len(batch[i].Cores) {
			t.Fatalf("scenario %d echo wrong: %+v", i, s)
		}
		if s.Workloads[0] != canon[i].Cores[0].Workload {
			t.Fatalf("scenario %d workloads wrong: %+v (canonical %+v)", i, s.Workloads, canon[i].Cores)
		}
		done := pollScenarioDone(t, ts1.URL, s.Key)
		if done.Result == nil || len(done.Result.Cores) != len(batch[i].Cores) {
			t.Fatalf("scenario %d result wrong: %+v", i, done)
		}
		for c, res := range done.Result.Cores {
			if res.Core.Instructions == 0 {
				t.Fatalf("scenario %d core %d measured nothing", i, c)
			}
			if res.Workload != canon[i].Cores[c].Workload {
				t.Fatalf("scenario %d core %d carries workload %s (canonical %+v)", i, c, res.Workload, canon[i].Cores)
			}
		}
		keys = append(keys, s.Key)
	}
	if st1.Stats().Puts != uint64(len(batch)) {
		t.Fatalf("store puts = %d, want %d", st1.Stats().Puts, len(batch))
	}

	// Warm restart: fresh runner + fresh store handle, same directory.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, st2)
	out2, _ := postScenarios(t, ts2.URL, batch)
	for i, s := range out2.Scenarios {
		if s.Key != keys[i] {
			t.Fatalf("restart key %d drifted: %s vs %s", i, s.Key, keys[i])
		}
		pollScenarioDone(t, ts2.URL, s.Key)
	}
	s2 := st2.Stats()
	if s2.Hits != uint64(len(batch)) {
		t.Fatalf("restarted store hits = %d, want %d (batch must be served from the store)", s2.Hits, len(batch))
	}
	if s2.Puts != 0 {
		t.Fatalf("restarted store puts = %d, want 0 (nothing should re-simulate)", s2.Puts)
	}

	// The scenario poll reports every core's identity (in canonical
	// order: [Nutch/fdip, Nutch/none])...
	got := pollScenarioDone(t, ts2.URL, keys[0])
	if got.Mechanisms[0] != string(sim.FDIP) || got.Mechanisms[1] != string(sim.None) {
		t.Fatalf("scenario mechanisms wrong: %+v", got.Mechanisms)
	}
	// ...and the same key is visible through the single-core poll
	// endpoint as its canonical core-0 view (store fallback included).
	core0 := pollDone(t, ts2.URL, keys[0])
	if core0.Workload != "Nutch" || core0.Mechanism != string(sim.FDIP) ||
		core0.Result == nil || *core0.Result != got.Result.Cores[0] {
		t.Fatalf("/v1/sims core-0 view wrong: %+v", core0)
	}

	// A permutation of an already-served scenario is the same content
	// identity: submitting it dedups onto the existing key.
	swapped := sim.Scenario{Cores: []sim.Config{batch[1].Cores[1], batch[1].Cores[0]}}
	out3, _ := postScenarios(t, ts2.URL, []sim.Scenario{swapped})
	if out3.Scenarios[0].Key != keys[1] {
		t.Fatalf("permuted scenario got key %s, want %s", out3.Scenarios[0].Key, keys[1])
	}
}

func TestScenarioSubmitRejectsBadBatches(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	cases := []struct {
		name string
		body string
	}{
		{"bad json", "{"},
		{"empty batch", `{"scenarios":[]}`},
		{"no cores", `{"scenarios":[{"Cores":[]}]}`},
		{"unknown workload", `{"scenarios":[{"Cores":[{"Workload":"NoSuch","Mechanism":"none"}]}]}`},
		{"too many cores", `{"scenarios":[{"Cores":[` + strings.Repeat(`{"Workload":"Oracle","Mechanism":"none"},`, 256) +
			`{"Workload":"Oracle","Mechanism":"none"}]}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/scenarios", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
		})
	}
	srv.mu.Lock()
	n := len(srv.jobs)
	srv.mu.Unlock()
	if n != 0 {
		t.Fatalf("bad batches enqueued %d jobs, want 0", n)
	}
}

// TestPollServedFromStoreWithoutSubmit covers polling a key this process
// never saw: the store answers directly.
func TestPollServedFromStoreWithoutSubmit(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := newTestServer(t, st1)
	out, _ := postSims(t, ts1.URL, []sim.Config{{Workload: "Zeus", Mechanism: sim.None}})
	key := out.Sims[0].Key
	pollDone(t, ts1.URL, key)

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, st2)
	got := pollDone(t, ts2.URL, key) // no submit on ts2
	if got.Workload != "Zeus" || got.Result == nil {
		t.Fatalf("store-backed poll wrong: %+v", got)
	}
}

func TestSubmitRejectsBadBatches(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad json", "{", http.StatusBadRequest},
		{"empty batch", `{"configs":[]}`, http.StatusBadRequest},
		{"unknown workload", `{"configs":[{"Workload":"NoSuch","Mechanism":"none"}]}`, http.StatusBadRequest},
		{"unknown mechanism", `{"configs":[{"Workload":"Oracle","Mechanism":"warp"}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/sims", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
	// A batch with one bad config must not enqueue the good ones.
	srv, ts2 := newTestServer(t, nil)
	body := `{"configs":[{"Workload":"Oracle","Mechanism":"none"},{"Workload":"NoSuch","Mechanism":"none"}]}`
	resp, err := http.Post(ts2.URL+"/v1/sims", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mixed batch status %d, want 400", resp.StatusCode)
	}
	srv.mu.Lock()
	n := len(srv.jobs)
	srv.mu.Unlock()
	if n != 0 {
		t.Fatalf("mixed batch enqueued %d jobs, want 0", n)
	}
}

// TestShutdownAbandonsQueuedWork: Shutdown must not drain a deep queue
// — workers finish at most their in-flight job, and everything else
// stays queued (the process is exiting; a store + resubmit recovers).
func TestShutdownAbandonsQueuedWork(t *testing.T) {
	srv := New(Config{Scale: tinyScale(), Workers: 1, QueueDepth: 16})
	var batch []sim.Scenario
	for _, wl := range []string{"Nutch", "Streaming", "Apache", "Zeus", "Oracle", "DB2"} {
		batch = append(batch, srv.runner.NormalizeScenario(
			sim.SingleCore(sim.Config{Workload: wl, Mechanism: sim.None})))
	}
	jobs, err := srv.enqueueScenarios("", batch)
	if err != nil || len(jobs) != len(batch) {
		t.Fatalf("enqueue: %v (%d jobs)", err, len(jobs))
	}
	srv.Shutdown()
	left := 0
	for _, j := range jobs {
		if j.snapshot().Status == StatusQueued {
			left++
		}
	}
	if left == 0 {
		t.Fatal("Shutdown drained the whole queue; want queued work abandoned")
	}
}

// TestRejectNewStopsIntakeWithoutStopping: RejectNew (the pre-drain
// step of graceful shutdown) must 503 new submissions while leaving the
// pool alive, and a later Close must still work.
func TestRejectNewStopsIntakeWithoutStopping(t *testing.T) {
	srv := New(Config{Scale: tinyScale(), Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	srv.RejectNew()
	body := `{"configs":[{"Workload":"Nutch","Mechanism":"none"}]}`
	resp, err := http.Post(ts.URL+"/v1/sims", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(raw), "shutting down") {
		t.Fatalf("post-RejectNew submit = %d %s, want 503 shutting down", resp.StatusCode, raw)
	}
	srv.Close()
}

// TestSubmitAfterCloseRejected covers the shutdown race: a handler that
// outlives the HTTP drain deadline and submits after Close began must
// get a 503, not a send-on-closed-channel panic.
func TestSubmitAfterCloseRejected(t *testing.T) {
	srv := New(Config{Scale: tinyScale(), Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	srv.Close()
	body := `{"configs":[{"Workload":"Nutch","Mechanism":"none"}]}`
	resp, err := http.Post(ts.URL+"/v1/sims", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	// The body must say the server is going away, not "retry later".
	if !strings.Contains(string(raw), "shutting down") {
		t.Fatalf("shutdown rejection misleads the client: %s", raw)
	}
	// Close is idempotent.
	srv.Close()
}

func TestPollUnknownKey(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/v1/sims/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestExperimentEndpoints(t *testing.T) {
	_, ts := newTestServer(t, nil)

	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Experiments []experimentInfo `json:"experiments"`
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Experiments) != 18 {
		t.Fatalf("listed %d experiments, want 18", len(list.Experiments))
	}

	// fig3 is a pure trace analysis: renders without timing simulation.
	resp, err = http.Get(ts.URL + "/v1/experiments/fig3")
	if err != nil {
		t.Fatal(err)
	}
	var rep report.Report
	err = json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version != report.Version || rep.Scale != "tiny" {
		t.Fatalf("report header wrong: %+v", rep)
	}
	if len(rep.Tables) != 1 || rep.Tables[0].ID != "fig3" || len(rep.Tables[0].Rows) != 6 {
		t.Fatalf("fig3 table wrong: %+v", rep.Tables)
	}

	for q, want := range map[string]string{
		"?format=text": "Figure 3",
		"?format=csv":  "table,fig3",
	} {
		resp, err = http.Get(ts.URL + "/v1/experiments/fig3" + q)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(raw), want) {
			t.Fatalf("%s: output missing %q:\n%s", q, want, raw)
		}
	}

	for path, want := range map[string]int{
		"/v1/experiments/nope":          http.StatusNotFound,
		"/v1/experiments/fig3?format=x": http.StatusBadRequest,
	} {
		resp, err = http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

func TestStoreStatsEndpoint(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, st)
	resp, err := http.Get(ts.URL + "/v1/store/stats")
	if err != nil {
		t.Fatal(err)
	}
	var got storeStatsResponse
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Attached {
		t.Fatal("store not reported attached")
	}

	_, ts2 := newTestServer(t, nil)
	resp, err = http.Get(ts2.URL + "/v1/store/stats")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got.Attached {
		t.Fatal("storeless server reported a store")
	}
}

// TestQueueOverflow exercises the global load-shed bound: against a
// never-completing executor with one residency slot and MaxQueue 2,
// the waiting count can only ever drop by one, so a stream of five
// distinct submissions must deterministically overflow into a 503
// overloaded envelope with a Retry-After hint — and the shed key must
// stay out of the job table so a later resubmit is clean.
func TestQueueOverflow(t *testing.T) {
	srv := New(Config{
		Scale: tinyScale(), Workers: 1, FairSlots: 1, MaxQueue: 2,
		NewExecutor: func(*harness.Runner, dispatch.Sink) dispatch.Executor {
			return sinkExec{}
		},
	})
	ts := httptest.NewServer(srv.Handler())
	// Shutdown, not Close: a drain would wait forever on jobs the stub
	// executor swallowed.
	t.Cleanup(func() { ts.Close(); srv.Shutdown() })

	var cfgs []sim.Config
	for _, m := range []sim.Mechanism{sim.None, sim.FDIP, sim.RDIP, sim.Boomerang, sim.Shotgun} {
		cfgs = append(cfgs, sim.Config{Workload: "Oracle", Mechanism: m})
	}
	overflowed := false
	for i, cfg := range cfgs {
		body, _ := json.Marshal(client.SubmitSimsRequest{Configs: []sim.Config{cfg}})
		resp, err := http.Post(ts.URL+"/v1/sims", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
		case http.StatusServiceUnavailable:
			overflowed = true
			if resp.Header.Get("Retry-After") == "" {
				t.Error("shed response missing Retry-After")
			}
			var env client.ErrorEnvelope
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatalf("shed body not an envelope: %v", err)
			}
			if env.Error.Code != client.CodeOverloaded || !env.Error.Retryable {
				t.Fatalf("shed envelope wrong: %+v", env.Error)
			}
			// The shed key must be resubmittable once load drains.
			key := store.Key(srv.runner.Normalize(cfg))
			srv.mu.Lock()
			_, present := srv.jobs[key]
			srv.mu.Unlock()
			if present {
				t.Fatalf("shed sim %d left in job table", i)
			}
		default:
			t.Fatalf("sim %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if !overflowed {
		t.Fatal("five submissions against MaxQueue 2 and a stuck executor never shed")
	}
}
