package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"shotgun/internal/dispatch"
	"shotgun/internal/harness"
	"shotgun/internal/sim"
)

// sinkExec swallows every job without simulating, so fuzz inputs that
// happen to be valid batches cost microseconds instead of simulations.
type sinkExec struct{}

func (sinkExec) Enqueue(string, sim.Scenario) error { return nil }
func (sinkExec) Stop(bool)                          {}

// FuzzSubmitEndpoints feeds arbitrary bodies to both submission routes:
// malformed JSON, truncated bodies, wrong-typed fields and oversized
// batches must all answer 4xx (202/503 for well-formed ones) — never a
// panic, never a 5xx.
func FuzzSubmitEndpoints(f *testing.F) {
	srv := New(Config{
		Scale:     tinyScale(),
		ScaleName: "tiny",
		MaxBatch:  8,
		NewExecutor: func(*harness.Runner, dispatch.Sink) dispatch.Executor {
			return sinkExec{}
		},
	})
	f.Cleanup(func() { srv.Close() })
	handler := srv.Handler()

	f.Add(true, []byte(`{"configs":[{"Workload":"Oracle","Mechanism":"none"}]}`))
	f.Add(false, []byte(`{"scenarios":[{"Cores":[{"Workload":"Oracle","Mechanism":"shotgun"}]}]}`))
	f.Add(true, []byte(`{`))
	f.Add(false, []byte(``))
	f.Add(true, []byte(`{"configs":[]}`))
	f.Add(false, []byte(`{"scenarios":[{"Cores":[]}]}`))
	f.Add(true, []byte(`{"configs":"not-a-list"}`))
	f.Add(false, []byte(`{"scenarios":[{"Cores":[{"Workload":"Oracle","Mechanism":"none"}],"LLCSizeBytes":-5}]}`))
	// Oversized batch: 9 configs against MaxBatch 8.
	f.Add(true, []byte(`{"configs":[`+strings.Repeat(`{"Workload":"Oracle","Mechanism":"none"},`, 8)+
		`{"Workload":"Oracle","Mechanism":"none"}]}`))

	f.Fuzz(func(t *testing.T, sims bool, body []byte) {
		path := "/v1/scenarios"
		if sims {
			path = "/v1/sims"
		}
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusAccepted, http.StatusBadRequest, http.StatusServiceUnavailable:
		default:
			t.Fatalf("%s: status %d for body %q", path, rec.Code, body)
		}
	})
}
