package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"shotgun/internal/dispatch"
	"shotgun/internal/harness"
	"shotgun/internal/sim"
)

// sinkExec swallows every job without simulating, so fuzz inputs that
// happen to be valid batches cost microseconds instead of simulations.
type sinkExec struct{}

func (sinkExec) Enqueue(string, sim.Scenario) error { return nil }
func (sinkExec) Stop(bool)                          {}

// FuzzSubmitEndpoints feeds arbitrary bodies to both submission routes:
// malformed JSON, truncated bodies, wrong-typed fields and oversized
// batches must all answer 4xx (202/503 for well-formed ones) — never a
// panic, never a 5xx.
func FuzzSubmitEndpoints(f *testing.F) {
	srv := New(Config{
		Scale:     tinyScale(),
		ScaleName: "tiny",
		MaxBatch:  8,
		NewExecutor: func(*harness.Runner, dispatch.Sink) dispatch.Executor {
			return sinkExec{}
		},
	})
	// Shutdown, not Close: a drain would wait forever on jobs the stub
	// executor swallowed.
	f.Cleanup(func() { srv.Shutdown() })
	handler := srv.Handler()

	f.Add(true, []byte(`{"configs":[{"Workload":"Oracle","Mechanism":"none"}]}`))
	f.Add(false, []byte(`{"scenarios":[{"Cores":[{"Workload":"Oracle","Mechanism":"shotgun"}]}]}`))
	f.Add(true, []byte(`{`))
	f.Add(false, []byte(``))
	f.Add(true, []byte(`{"configs":[]}`))
	f.Add(false, []byte(`{"scenarios":[{"Cores":[]}]}`))
	f.Add(true, []byte(`{"configs":"not-a-list"}`))
	f.Add(false, []byte(`{"scenarios":[{"Cores":[{"Workload":"Oracle","Mechanism":"none"}],"LLCSizeBytes":-5}]}`))
	// Oversized batch: 9 configs against MaxBatch 8.
	f.Add(true, []byte(`{"configs":[`+strings.Repeat(`{"Workload":"Oracle","Mechanism":"none"},`, 8)+
		`{"Workload":"Oracle","Mechanism":"none"}]}`))

	f.Fuzz(func(t *testing.T, sims bool, body []byte) {
		path := "/v1/scenarios"
		if sims {
			path = "/v1/sims"
		}
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusAccepted, http.StatusBadRequest, http.StatusServiceUnavailable:
		default:
			t.Fatalf("%s: status %d for body %q", path, rec.Code, body)
		}
	})
}

// FuzzTenantAuth fuzzes the two attacker-reachable parsers of the
// tenancy layer: the Authorization header splitter and the registry
// document parser. Neither may panic, and a registry that parses must
// uphold its invariants — bounded fields, duplicate-free names, every
// key resolving back to its own tenant.
func FuzzTenantAuth(f *testing.F) {
	f.Add("Bearer key-1", []byte(`{"tenants":[{"name":"a","key":"key-1"}]}`))
	f.Add("bearer x", []byte(`{"tenants":[]}`))
	f.Add("Basic Zm9v", []byte(`{`))
	f.Add("", []byte(`{"tenants":[{"name":"a","key":"k"},{"name":"b","key":"k"}]}`))
	f.Add("Bearer \x00\xff", []byte(`{"tenants":[{"name":"a","key":"k","weight":-1}]}`))
	f.Add("Bearer "+strings.Repeat("k", 300),
		[]byte(`{"tenants":[{"name":"`+strings.Repeat("n", 100)+`","key":"k"}]}`))

	f.Fuzz(func(t *testing.T, header string, doc []byte) {
		key, ok := bearerKey(header)
		if ok && (key == "" || len(key) > maxTenantKey) {
			t.Fatalf("bearerKey accepted out-of-bounds key %q", key)
		}
		reg, err := ParseTenants(doc)
		if err != nil {
			if reg != nil {
				t.Fatal("ParseTenants returned both a registry and an error")
			}
			return
		}
		names := make(map[string]bool)
		for _, tn := range reg.Tenants() {
			if tn.Name == "" || len(tn.Name) > maxTenantName || tn.Key == "" || len(tn.Key) > maxTenantKey {
				t.Fatalf("registry admitted out-of-bounds tenant %+v", tn)
			}
			if tn.Weight < 0 || tn.MaxQueued < 0 || tn.MaxInFlight < 0 {
				t.Fatalf("registry admitted negative policy %+v", tn)
			}
			if names[tn.Name] {
				t.Fatalf("registry admitted duplicate name %q", tn.Name)
			}
			names[tn.Name] = true
			got, found := reg.Lookup(tn.Key)
			if !found || got.Name != tn.Name {
				t.Fatalf("key %q does not resolve to its tenant %q", tn.Key, tn.Name)
			}
		}
		if ok {
			reg.Lookup(key) // must not panic, whatever the header held
		}
	})
}
