package server

// Tenant registry: who may submit work, under which API key, with what
// share of the farm. The registry is static configuration — a JSON
// document loaded at startup (shotgun-server -tenants, or the
// SHOTGUN_TENANTS environment variable) — because tenancy changes are
// deploys, not API calls: there is deliberately no mutation endpoint.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"shotgun/internal/dispatch"
)

// Tenant key bounds: long enough for 256-bit hex secrets, short enough
// that the auth header parser is trivially fuzz-safe.
const (
	maxTenantName = 64
	maxTenantKey  = 256
)

// Tenant is one row of the registry file.
type Tenant struct {
	// Name identifies the tenant in metrics, logs and scheduling.
	Name string `json:"name"`
	// Key is the API key presented as "Authorization: Bearer <key>".
	Key string `json:"key"`
	// Weight is the tenant's fair-share scheduling weight (default 1).
	Weight int `json:"weight,omitempty"`
	// MaxQueued bounds the tenant's outstanding jobs; past it
	// submissions 429. 0 means unlimited.
	MaxQueued int `json:"max_queued,omitempty"`
	// MaxInFlight bounds the tenant's concurrently-executing jobs; a
	// scheduling cap, never an error. 0 means unlimited.
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// MaxRPS bounds the tenant's HTTP request rate (requests per
	// second, token bucket with an equal burst); past it requests 429
	// with Retry-After. 0 means unlimited.
	MaxRPS int `json:"max_rps,omitempty"`
}

// tenantsFile is the registry document: {"tenants":[...]}.
type tenantsFile struct {
	Tenants []Tenant `json:"tenants"`
}

// TenantRegistry resolves API keys to tenants. Immutable after
// construction, so lookups need no lock.
type TenantRegistry struct {
	byKey map[string]*Tenant
	list  []Tenant
}

// ParseTenants builds a registry from the JSON registry document,
// rejecting rows that would make auth or scheduling ambiguous
// (missing/duplicate names or keys, oversized fields, negative
// quotas).
func ParseTenants(data []byte) (*TenantRegistry, error) {
	var f tenantsFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("tenants: decode: %v", err)
	}
	if len(f.Tenants) == 0 {
		return nil, fmt.Errorf("tenants: registry has no tenants")
	}
	reg := &TenantRegistry{byKey: make(map[string]*Tenant, len(f.Tenants))}
	names := make(map[string]bool, len(f.Tenants))
	for i, t := range f.Tenants {
		if t.Name == "" || len(t.Name) > maxTenantName {
			return nil, fmt.Errorf("tenants[%d]: name must be 1..%d bytes", i, maxTenantName)
		}
		if strings.ContainsAny(t.Name, "\"\n\\") {
			return nil, fmt.Errorf("tenants[%d] %q: name must not contain quotes, backslashes or newlines (it labels metrics)", i, t.Name)
		}
		if t.Key == "" || len(t.Key) > maxTenantKey {
			return nil, fmt.Errorf("tenants[%d] %q: key must be 1..%d bytes", i, t.Name, maxTenantKey)
		}
		if t.Weight < 0 || t.MaxQueued < 0 || t.MaxInFlight < 0 || t.MaxRPS < 0 {
			return nil, fmt.Errorf("tenants[%d] %q: weight and quotas must be non-negative", i, t.Name)
		}
		if names[t.Name] {
			return nil, fmt.Errorf("tenants[%d]: duplicate tenant name %q", i, t.Name)
		}
		if _, dup := reg.byKey[t.Key]; dup {
			return nil, fmt.Errorf("tenants[%d] %q: key already assigned to another tenant", i, t.Name)
		}
		names[t.Name] = true
		reg.list = append(reg.list, t)
		reg.byKey[t.Key] = &reg.list[len(reg.list)-1]
	}
	return reg, nil
}

// LoadTenants reads a registry file from disk.
func LoadTenants(path string) (*TenantRegistry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenants: %v", err)
	}
	return ParseTenants(raw)
}

// Lookup resolves an API key to its tenant.
func (r *TenantRegistry) Lookup(key string) (*Tenant, bool) {
	t, ok := r.byKey[key]
	return t, ok
}

// Tenants lists the registry rows in file order.
func (r *TenantRegistry) Tenants() []Tenant {
	return append([]Tenant(nil), r.list...)
}

// Policies converts the registry into the dispatch layer's fair-share
// policies, so every registered tenant has a scheduling row (and a
// metrics row) from the first request.
func (r *TenantRegistry) Policies() []dispatch.TenantPolicy {
	if r == nil {
		return nil
	}
	pols := make([]dispatch.TenantPolicy, 0, len(r.list))
	for _, t := range r.list {
		pols = append(pols, dispatch.TenantPolicy{
			Name:        t.Name,
			Weight:      t.Weight,
			MaxQueued:   t.MaxQueued,
			MaxInFlight: t.MaxInFlight,
		})
	}
	return pols
}
