package server

// Per-tenant rate-limit tests: the token bucket's refill math against
// synthetic clocks, and the middleware end to end — 429 + Retry-After
// with the rate_limited code for the bounded tenant, unlimited tenants
// and exempt routes untouched, and the per-tenant counter in /metrics.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"shotgun/internal/client"
)

func TestTenantLimiterBucket(t *testing.T) {
	l := &tenantLimiter{rps: 2, burst: 2, tokens: 2}
	t0 := time.Unix(1000, 0)

	// The burst drains in whole tokens, then the bucket rejects with a
	// positive wait hint.
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow(t0); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, wait := l.allow(t0)
	if ok {
		t.Fatal("request beyond the burst allowed")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("wait hint %v outside (0, 500ms+rounding]", wait)
	}

	// Half a second at 2 rps refills one token — exactly one more
	// request passes.
	t1 := t0.Add(500 * time.Millisecond)
	if ok, _ := l.allow(t1); !ok {
		t.Fatal("refilled token rejected")
	}
	if ok, _ := l.allow(t1); ok {
		t.Fatal("second request on one refilled token allowed")
	}

	// A long idle period refills to the burst cap, not beyond.
	t2 := t1.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow(t2); !ok {
			t.Fatalf("post-idle burst request %d rejected", i)
		}
	}
	if ok, _ := l.allow(t2); ok {
		t.Fatal("idle refill exceeded the burst cap")
	}
}

func TestRateLimitRejectsNegativeMaxRPS(t *testing.T) {
	_, err := ParseTenants([]byte(`{"tenants":[{"name":"a","key":"k","max_rps":-1}]}`))
	if err == nil {
		t.Fatal("negative max_rps accepted")
	}
}

// TestRateLimitMiddleware drives the full handler stack: tenant
// "metered" has max_rps 1 (burst 1), tenant "solo" is unlimited.
func TestRateLimitMiddleware(t *testing.T) {
	const keyMetered = "key-metered"
	reg, err := ParseTenants([]byte(`{"tenants":[
		{"name":"metered","key":"` + keyMetered + `","max_rps":1},
		{"name":"solo","key":"` + keySolo + `"}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Scale: tinyScale(), ScaleName: "tiny", Workers: 1, Tenants: reg})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	// The burst token admits one request; the immediate second one must
	// trip the limiter (the bucket refills 1 token/s and the requests
	// are microseconds apart).
	resp, _ := request(t, http.MethodGet, ts.URL+"/v1/experiments", keyMetered, "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first metered request: status %d", resp.StatusCode)
	}
	var rejected *http.Response
	var raw []byte
	for i := 0; i < 3; i++ {
		r, body := request(t, http.MethodGet, ts.URL+"/v1/experiments", keyMetered, "", nil)
		if r.StatusCode == http.StatusTooManyRequests {
			rejected, raw = r, body
			break
		}
	}
	if rejected == nil {
		t.Fatal("metered tenant was never rate-limited")
	}
	if rejected.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After hint")
	}
	var env client.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != client.CodeRateLimited || !env.Error.Retryable {
		t.Fatalf("rate-limit envelope wrong: %+v", env.Error)
	}

	// The unlimited tenant and the exempt routes never hit a bucket.
	for i := 0; i < 5; i++ {
		if resp, _ := request(t, http.MethodGet, ts.URL+"/v1/experiments", keySolo, "", nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("unlimited tenant throttled: status %d", resp.StatusCode)
		}
		if resp, _ := request(t, http.MethodGet, ts.URL+"/healthz", "", "", nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("exempt route throttled: status %d", resp.StatusCode)
		}
	}

	// The rejection surfaced as the per-tenant counter (metered only —
	// solo has no bound, so no row).
	_, body := request(t, http.MethodGet, ts.URL+"/metrics", "", "", nil)
	if got := metricValue(t, string(body), `shotgun_tenant_rate_limited_total{tenant="metered"}`); got < 1 {
		t.Fatalf("rate_limited counter = %d, want >= 1", got)
	}
}
