// Package server exposes the experiment harness over HTTP: clients
// enqueue batches of simulation configs, poll for results by content
// key, and render any of the paper's tables/figures on demand, in text,
// JSON, or CSV.
//
// API (all JSON unless noted):
//
//	POST /v1/sims                 {"configs":[sim.Config...]} -> 202 {"sims":[{key,status,...}]}
//	GET  /v1/sims/{key}           poll one simulation; result embedded when done
//	GET  /v1/experiments          list experiment ids
//	GET  /v1/experiments/{name}   render a table/figure (?format=json|csv|text)
//	GET  /v1/store/stats          persistent-store traffic counters
//	GET  /healthz                 liveness (plain "ok")
//
// Simulations are executed asynchronously by a fixed worker pool backed
// by the memoizing harness.Runner, so duplicate keys — within a batch,
// across batches, or across server restarts (via the persistent store)
// — never simulate twice.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"shotgun/internal/harness"
	"shotgun/internal/report"
	"shotgun/internal/sim"
	"shotgun/internal/store"
)

// Job states, in lifecycle order.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// Config parameterizes a Server.
type Config struct {
	// Scale is the simulation scale every submitted config is pinned to
	// (the content key is derived from the pinned form, so a quick-scale
	// and a full-scale server address disjoint result spaces).
	Scale harness.Scale
	// ScaleName labels reports ("quick", "full").
	ScaleName string
	// Workers sizes the simulation pool (values below 1 mean 1).
	Workers int
	// Store, when non-nil, persists results across restarts and is
	// consulted before simulating.
	Store *store.Store
	// QueueDepth bounds the pending-job channel (default 4096); a full
	// queue rejects new batches with 503 rather than blocking accepts.
	QueueDepth int
}

// job tracks one submitted simulation through the pool.
type job struct {
	key string
	cfg sim.Config // pinned to the server scale

	mu     sync.Mutex
	status string
	result sim.Result
	err    string
}

func (j *job) snapshot() SimStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := SimStatus{
		Key:       j.key,
		Status:    j.status,
		Workload:  j.cfg.Workload,
		Mechanism: string(j.cfg.Mechanism),
		Error:     j.err,
	}
	if j.status == StatusDone {
		res := j.result
		st.Result = &res
	}
	return st
}

// SimStatus is the wire form of one simulation's state.
type SimStatus struct {
	Key       string      `json:"key"`
	Status    string      `json:"status"`
	Workload  string      `json:"workload"`
	Mechanism string      `json:"mechanism"`
	Error     string      `json:"error,omitempty"`
	Result    *sim.Result `json:"result,omitempty"`
}

// Server is the HTTP simulation service.
type Server struct {
	runner    *harness.Runner
	st        *store.Store
	scaleName string

	mu   sync.Mutex
	jobs map[string]*job

	queue chan *job
	wg    sync.WaitGroup
}

// New builds a server and starts its worker pool. Call Close to drain.
func New(cfg Config) *Server {
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 4096
	}
	runner := harness.NewRunnerWorkers(cfg.Scale, workers)
	if cfg.Store != nil {
		runner.SetStore(cfg.Store)
	}
	s := &Server{
		runner:    runner,
		st:        cfg.Store,
		scaleName: cfg.ScaleName,
		jobs:      make(map[string]*job),
		queue:     make(chan *job, depth),
	}
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// Close stops accepting queued work and waits for in-flight simulations
// to finish. The server must not receive requests afterwards.
func (s *Server) Close() {
	close(s.queue)
	s.wg.Wait()
}

// worker drains the queue. Runner.Run consults the in-memory memo and
// the persistent store before simulating, so a worker picking up an
// already-computed key completes instantly.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		j.mu.Lock()
		j.status = StatusRunning
		j.mu.Unlock()
		s.runOne(j)
	}
}

// runOne executes one job, converting a panic (e.g. a config that
// validated but still cannot simulate) into a failed status instead of
// killing the worker.
func (s *Server) runOne(j *job) {
	defer func() {
		if r := recover(); r != nil {
			j.mu.Lock()
			j.status = StatusFailed
			j.err = fmt.Sprint(r)
			j.mu.Unlock()
		}
	}()
	res := s.runner.Run(j.cfg)
	j.mu.Lock()
	j.status = StatusDone
	j.result = res
	j.mu.Unlock()
}

// Handler returns the server's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sims", s.handleSubmit)
	mux.HandleFunc("GET /v1/sims/{key}", s.handlePoll)
	mux.HandleFunc("GET /v1/experiments", s.handleExperimentList)
	mux.HandleFunc("GET /v1/experiments/{name}", s.handleExperiment)
	mux.HandleFunc("GET /v1/store/stats", s.handleStoreStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// submitRequest is POST /v1/sims' body.
type submitRequest struct {
	Configs []sim.Config `json:"configs"`
}

// submitResponse echoes one status per submitted config, in order.
type submitResponse struct {
	Sims []SimStatus `json:"sims"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decode body: %v", err)
		return
	}
	if len(req.Configs) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch: body must carry at least one config")
		return
	}
	// Validate the whole batch before enqueueing any of it, so a batch
	// is accepted atomically or not at all.
	for i, cfg := range req.Configs {
		if err := cfg.Validate(); err != nil {
			httpError(w, http.StatusBadRequest, "config %d: %v", i, err)
			return
		}
	}

	// Register and enqueue under one job-table lock hold (the channel
	// send is non-blocking, so holding the lock is safe): a job becomes
	// visible in s.jobs only once it is actually on the queue, so no
	// concurrent submitter can ever be handed a key that later
	// disappears. On overflow the already-enqueued prefix stands — it
	// is valid work, and a retry dedups onto it — and the rest 503s.
	resp := submitResponse{Sims: make([]SimStatus, 0, len(req.Configs))}
	s.mu.Lock()
	for _, cfg := range req.Configs {
		pinned := s.runner.Normalize(cfg)
		key := store.Key(pinned)
		if existing, ok := s.jobs[key]; ok {
			resp.Sims = append(resp.Sims, existing.snapshot())
			continue
		}
		j := &job{key: key, cfg: pinned, status: StatusQueued}
		select {
		case s.queue <- j:
			s.jobs[key] = j
			resp.Sims = append(resp.Sims, j.snapshot())
		default:
			s.mu.Unlock()
			httpError(w, http.StatusServiceUnavailable,
				"queue full (%d pending); retry later", cap(s.queue))
			return
		}
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, resp)
}

func (s *Server) handlePoll(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	s.mu.Lock()
	j, ok := s.jobs[key]
	s.mu.Unlock()
	if ok {
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, j.snapshot())
		return
	}
	// Not submitted in this process: a previous run may have persisted
	// it — serve straight from the store.
	if s.st != nil {
		if rec, found := s.st.GetKey(key); found {
			res := rec.Result
			w.Header().Set("Content-Type", "application/json")
			writeJSON(w, SimStatus{
				Key:       key,
				Status:    StatusDone,
				Workload:  rec.Config.Workload,
				Mechanism: string(rec.Config.Mechanism),
				Result:    &res,
			})
			return
		}
	}
	httpError(w, http.StatusNotFound, "unknown simulation key %q", key)
}

// experimentInfo is one row of GET /v1/experiments.
type experimentInfo struct {
	ID   string `json:"id"`
	Desc string `json:"desc"`
}

func (s *Server) handleExperimentList(w http.ResponseWriter, _ *http.Request) {
	// Presentation order (the paper's), matching shotgun-bench -list.
	var list []experimentInfo
	for _, e := range harness.Experiments() {
		list = append(list, experimentInfo{ID: e.ID, Desc: e.Desc})
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, map[string]any{"experiments": list})
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	exp, ok := harness.Find(name)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown experiment %q (GET /v1/experiments lists ids)", name)
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	// Render on demand: saturate the pool with the experiment's config
	// set (memo + store make repeats cheap), then assemble the table.
	if exp.Configs != nil {
		s.runner.Prefetch(exp.Configs())
	}
	table := exp.Table(s.runner)
	switch format {
	case "json":
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, report.Report{
			Version: report.Version,
			Scale:   s.scaleName,
			Tables:  []report.Table{report.FromStats(exp.ID, table)},
		})
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		if err := report.FromStats(exp.ID, table).WriteCSV(w); err != nil {
			// Headers are gone; nothing better to do than log-by-status.
			return
		}
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, table.String())
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q (json, csv, text)", format)
	}
}

// storeStatsResponse is GET /v1/store/stats' body.
type storeStatsResponse struct {
	Attached bool        `json:"attached"`
	Stats    store.Stats `json:"stats,omitempty"`
}

func (s *Server) handleStoreStats(w http.ResponseWriter, _ *http.Request) {
	resp := storeStatsResponse{}
	if s.st != nil {
		resp.Attached = true
		resp.Stats = s.st.Stats()
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// httpError emits a JSON error body with the given status.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	writeJSON(w, map[string]string{"error": fmt.Sprintf(format, args...)})
}
