// Package server exposes the experiment harness over HTTP: clients
// enqueue batches of simulation configs, poll for results by content
// key, and render any of the paper's tables/figures on demand, in text,
// JSON, or CSV.
//
// API (all JSON unless noted):
//
//	POST /v1/sims                 {"configs":[sim.Config...]} -> 202 {"sims":[{key,status,...}]}
//	GET  /v1/sims/{key}           poll one simulation; result embedded when done
//	POST /v1/scenarios            {"scenarios":[sim.Scenario...]} -> 202 {"scenarios":[{key,status,...}]}
//	GET  /v1/scenarios/{key}      poll one scenario; per-core results embedded when done
//	GET  /v1/experiments          list experiment ids
//	GET  /v1/experiments/{name}   render a table/figure (?format=json|csv|text)
//	GET  /v1/store/stats          persistent-store traffic counters
//	GET  /healthz                 liveness (plain "ok")
//
// Every job is a sim.Scenario — /v1/sims wraps each config as an N=1
// scenario, so both endpoints share one job table, one key space and
// one store. Simulations are executed asynchronously by a fixed worker
// pool backed by the memoizing harness.Runner, so duplicate keys —
// within a batch, across batches, or across server restarts (via the
// persistent store) — never simulate twice.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"shotgun/internal/harness"
	"shotgun/internal/report"
	"shotgun/internal/sim"
	"shotgun/internal/store"
)

// Job states, in lifecycle order.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// Config parameterizes a Server.
type Config struct {
	// Scale is the simulation scale every submitted config is pinned to
	// (the content key is derived from the pinned form, so a quick-scale
	// and a full-scale server address disjoint result spaces).
	Scale harness.Scale
	// ScaleName labels reports ("quick", "full").
	ScaleName string
	// Workers sizes the simulation pool (values below 1 mean 1).
	Workers int
	// Store, when non-nil, persists results across restarts and is
	// consulted before simulating.
	Store *store.Store
	// QueueDepth bounds the pending-job channel (default 4096); a full
	// queue rejects new batches with 503 rather than blocking accepts.
	QueueDepth int
}

// job tracks one submitted scenario through the pool.
type job struct {
	key string
	sc  sim.Scenario // pinned to the server scale

	mu     sync.Mutex
	status string
	result sim.ScenarioResult
	err    string
}

// snapshot is the single-core (/v1/sims) view of a job: core 0's
// workload, mechanism and result.
func (j *job) snapshot() SimStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := SimStatus{
		Key:       j.key,
		Status:    j.status,
		Workload:  j.sc.Cores[0].Workload,
		Mechanism: string(j.sc.Cores[0].Mechanism),
		Error:     j.err,
	}
	if j.status == StatusDone {
		res := j.result.Cores[0]
		st.Result = &res
	}
	return st
}

// scenarioStatusOf projects a scenario into its wire status — the one
// place the per-core Workloads/Mechanisms lists are assembled, so live
// jobs and store-served records always render the same shape.
func scenarioStatusOf(key, status string, sc sim.Scenario) ScenarioStatus {
	st := ScenarioStatus{
		Key:    key,
		Status: status,
		Cores:  len(sc.Cores),
	}
	for _, cfg := range sc.Cores {
		st.Workloads = append(st.Workloads, cfg.Workload)
		st.Mechanisms = append(st.Mechanisms, string(cfg.Mechanism))
	}
	return st
}

// scenarioSnapshot is the full (/v1/scenarios) view of a job.
func (j *job) scenarioSnapshot() ScenarioStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := scenarioStatusOf(j.key, j.status, j.sc)
	st.Error = j.err
	if j.status == StatusDone {
		res := j.result
		st.Result = &res
	}
	return st
}

// SimStatus is the wire form of one single-core simulation's state.
type SimStatus struct {
	Key       string      `json:"key"`
	Status    string      `json:"status"`
	Workload  string      `json:"workload"`
	Mechanism string      `json:"mechanism"`
	Error     string      `json:"error,omitempty"`
	Result    *sim.Result `json:"result,omitempty"`
}

// ScenarioStatus is the wire form of one scenario's state.
type ScenarioStatus struct {
	Key        string              `json:"key"`
	Status     string              `json:"status"`
	Cores      int                 `json:"cores"`
	Workloads  []string            `json:"workloads"`
	Mechanisms []string            `json:"mechanisms"`
	Error      string              `json:"error,omitempty"`
	Result     *sim.ScenarioResult `json:"result,omitempty"`
}

// Server is the HTTP simulation service.
type Server struct {
	runner    *harness.Runner
	st        *store.Store
	scaleName string

	mu   sync.Mutex
	jobs map[string]*job
	// closed rejects new submissions (RejectNew/Close/Shutdown);
	// stopped records that the channels below are closed. closed is set
	// (under mu) no later than the queue channel closes, so
	// enqueueScenarios — which sends while holding mu — can never send
	// on a closed channel even if an HTTP handler outlives a shutdown
	// deadline and submits after Close began.
	closed  bool
	stopped bool

	queue chan *job
	// quit, when closed, tells workers to exit after their in-flight
	// job instead of draining the queue (Shutdown vs Close).
	quit chan struct{}
	wg   sync.WaitGroup
}

// New builds a server and starts its worker pool. Call Close to drain.
func New(cfg Config) *Server {
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 4096
	}
	runner := harness.NewRunnerWorkers(cfg.Scale, workers)
	if cfg.Store != nil {
		runner.SetStore(cfg.Store)
	}
	s := &Server{
		runner:    runner,
		st:        cfg.Store,
		scaleName: cfg.ScaleName,
		jobs:      make(map[string]*job),
		queue:     make(chan *job, depth),
		quit:      make(chan struct{}),
	}
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// Close stops accepting new work and DRAINS the queue: every accepted
// simulation runs to completion before Close returns. Use it when the
// queued work must not be lost (tests, batch jobs with no store).
func (s *Server) Close() { s.stop(false) }

// Shutdown stops accepting new work and ABANDONS the queue: workers
// finish at most their in-flight simulation and exit, leaving queued
// jobs unrun. This is the signal-handler path — a full-scale queue can
// hold hours of simulation, and clients can resubmit after a restart
// (a store makes completed work free). Jobs left behind keep their
// "queued" status; the process is exiting anyway.
func (s *Server) Shutdown() { s.stop(true) }

// RejectNew makes every subsequent submission fail with an honest
// "shutting down" 503 while workers keep running. Call it BEFORE
// draining in-flight HTTP requests: otherwise a handler that is mid-
// flight when shutdown starts can enqueue a batch, answer 202 with
// keys, and have Shutdown abandon that work — leaving the client
// polling keys that will 404 on the restarted server.
func (s *Server) RejectNew() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

// stop implements Close/Shutdown. Both reject submissions that race
// past it (the closed flag, checked under the same mutex the enqueue
// path sends under) with 503 instead of panicking on the closed queue.
func (s *Server) stop(abandon bool) {
	s.mu.Lock()
	s.closed = true
	if !s.stopped {
		s.stopped = true
		if abandon {
			close(s.quit)
		}
		close(s.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// worker drains the queue until it closes (or quit fires). Runner.Run
// consults the in-memory memo and the persistent store before
// simulating, so a worker picking up an already-computed key completes
// instantly.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		select {
		case <-s.quit:
			return // Shutdown: abandon the rest of the queue
		default:
		}
		j.mu.Lock()
		j.status = StatusRunning
		j.mu.Unlock()
		s.runOne(j)
	}
}

// runOne executes one job, converting a panic (e.g. a config that
// validated but still cannot simulate) into a failed status instead of
// killing the worker.
func (s *Server) runOne(j *job) {
	defer func() {
		if r := recover(); r != nil {
			j.mu.Lock()
			j.status = StatusFailed
			j.err = fmt.Sprint(r)
			j.mu.Unlock()
		}
	}()
	res := s.runner.RunScenario(j.sc)
	j.mu.Lock()
	j.status = StatusDone
	j.result = res
	j.mu.Unlock()
}

// Handler returns the server's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sims", s.handleSubmit)
	mux.HandleFunc("GET /v1/sims/{key}", s.handlePoll)
	mux.HandleFunc("POST /v1/scenarios", s.handleSubmitScenarios)
	mux.HandleFunc("GET /v1/scenarios/{key}", s.handlePollScenario)
	mux.HandleFunc("GET /v1/experiments", s.handleExperimentList)
	mux.HandleFunc("GET /v1/experiments/{name}", s.handleExperiment)
	mux.HandleFunc("GET /v1/store/stats", s.handleStoreStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// submitRequest is POST /v1/sims' body.
type submitRequest struct {
	Configs []sim.Config `json:"configs"`
}

// submitResponse echoes one status per submitted config, in order.
type submitResponse struct {
	Sims []SimStatus `json:"sims"`
}

// enqueue failure modes, distinguished so handlers can tell clients
// whether retrying is useful.
var (
	errQueueFull = errors.New("queue full")
	errClosing   = errors.New("server shutting down")
)

// enqueueScenarios registers and enqueues pre-validated, pinned
// scenarios under one job-table lock hold (the channel send is
// non-blocking, so holding the lock is safe): a job becomes visible in
// s.jobs only once it is actually on the queue, so no concurrent
// submitter can ever be handed a key that later disappears. On overflow
// the already-enqueued prefix stands — it is valid work, and a retry
// dedups onto it — and errQueueFull tells the caller to 503 the rest;
// errClosing means Close has begun and retrying this server is
// pointless. The returned jobs include deduplicated hits on existing
// keys, in batch order.
func (s *Server) enqueueScenarios(scs []sim.Scenario) ([]*job, error) {
	// Hash content keys before taking the job-table lock: SHA-256 over
	// a canonical marshal per scenario is the expensive part, and doing
	// it here keeps concurrent submitters from serializing behind it.
	keys := make([]string, len(scs))
	for i, sc := range scs {
		keys[i] = store.ScenarioKey(sc)
	}
	jobs := make([]*job, 0, len(scs))
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return jobs, errClosing
	}
	for i, sc := range scs {
		key := keys[i]
		if existing, found := s.jobs[key]; found {
			jobs = append(jobs, existing)
			continue
		}
		j := &job{key: key, sc: sc, status: StatusQueued}
		select {
		case s.queue <- j:
			s.jobs[key] = j
			jobs = append(jobs, j)
		default:
			return jobs, errQueueFull
		}
	}
	return jobs, nil
}

// enqueueError maps an enqueue failure to its 503 body.
func (s *Server) enqueueError(w http.ResponseWriter, err error) {
	if errors.Is(err, errClosing) {
		httpError(w, http.StatusServiceUnavailable, "server shutting down; submit elsewhere")
		return
	}
	httpError(w, http.StatusServiceUnavailable,
		"queue full (%d pending); retry later", cap(s.queue))
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decode body: %v", err)
		return
	}
	if len(req.Configs) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch: body must carry at least one config")
		return
	}
	// Validate the whole batch before enqueueing any of it, so a batch
	// is accepted atomically or not at all.
	scs := make([]sim.Scenario, 0, len(req.Configs))
	for i, cfg := range req.Configs {
		if err := cfg.Validate(); err != nil {
			httpError(w, http.StatusBadRequest, "config %d: %v", i, err)
			return
		}
		scs = append(scs, s.runner.NormalizeScenario(sim.SingleCore(cfg)))
	}

	jobs, err := s.enqueueScenarios(scs)
	if err != nil {
		s.enqueueError(w, err)
		return
	}
	resp := submitResponse{Sims: make([]SimStatus, 0, len(jobs))}
	for _, j := range jobs {
		resp.Sims = append(resp.Sims, j.snapshot())
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, resp)
}

// submitScenariosRequest is POST /v1/scenarios' body.
type submitScenariosRequest struct {
	Scenarios []sim.Scenario `json:"scenarios"`
}

// submitScenariosResponse echoes one status per submitted scenario, in
// order.
type submitScenariosResponse struct {
	Scenarios []ScenarioStatus `json:"scenarios"`
}

func (s *Server) handleSubmitScenarios(w http.ResponseWriter, r *http.Request) {
	var req submitScenariosRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decode body: %v", err)
		return
	}
	if len(req.Scenarios) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch: body must carry at least one scenario")
		return
	}
	scs := make([]sim.Scenario, 0, len(req.Scenarios))
	for i, sc := range req.Scenarios {
		if err := sc.Validate(); err != nil {
			httpError(w, http.StatusBadRequest, "scenario %d: %v", i, err)
			return
		}
		scs = append(scs, s.runner.NormalizeScenario(sc))
	}

	jobs, err := s.enqueueScenarios(scs)
	if err != nil {
		s.enqueueError(w, err)
		return
	}
	resp := submitScenariosResponse{Scenarios: make([]ScenarioStatus, 0, len(jobs))}
	for _, j := range jobs {
		resp.Scenarios = append(resp.Scenarios, j.scenarioSnapshot())
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, resp)
}

func (s *Server) handlePoll(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	s.mu.Lock()
	j, ok := s.jobs[key]
	s.mu.Unlock()
	if ok {
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, j.snapshot())
		return
	}
	// Not submitted in this process: a previous run may have persisted
	// it — serve straight from the store.
	if s.st != nil {
		if rec, found := s.st.GetKey(key); found {
			res := rec.Result.Cores[0]
			w.Header().Set("Content-Type", "application/json")
			writeJSON(w, SimStatus{
				Key:       key,
				Status:    StatusDone,
				Workload:  rec.Scenario.Cores[0].Workload,
				Mechanism: string(rec.Scenario.Cores[0].Mechanism),
				Result:    &res,
			})
			return
		}
	}
	httpError(w, http.StatusNotFound, "unknown simulation key %q", key)
}

func (s *Server) handlePollScenario(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	s.mu.Lock()
	j, ok := s.jobs[key]
	s.mu.Unlock()
	if ok {
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, j.scenarioSnapshot())
		return
	}
	if s.st != nil {
		if rec, found := s.st.GetKey(key); found {
			st := scenarioStatusOf(key, StatusDone, rec.Scenario)
			st.Result = &rec.Result
			w.Header().Set("Content-Type", "application/json")
			writeJSON(w, st)
			return
		}
	}
	httpError(w, http.StatusNotFound, "unknown scenario key %q", key)
}

// experimentInfo is one row of GET /v1/experiments.
type experimentInfo struct {
	ID   string `json:"id"`
	Desc string `json:"desc"`
}

func (s *Server) handleExperimentList(w http.ResponseWriter, _ *http.Request) {
	// Presentation order (the paper's), matching shotgun-bench -list.
	var list []experimentInfo
	for _, e := range harness.Experiments() {
		list = append(list, experimentInfo{ID: e.ID, Desc: e.Desc})
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, map[string]any{"experiments": list})
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	exp, ok := harness.Find(name)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown experiment %q (GET /v1/experiments lists ids)", name)
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	// Render on demand: saturate the pool with the experiment's scenario
	// set (memo + store make repeats cheap), then assemble the table.
	if exp.Scenarios != nil {
		s.runner.PrefetchScenarios(exp.Scenarios())
	}
	table := exp.Table(s.runner)
	switch format {
	case "json":
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, report.Report{
			Version: report.Version,
			Scale:   s.scaleName,
			Tables:  []report.Table{report.FromStats(exp.ID, table)},
		})
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		if err := report.FromStats(exp.ID, table).WriteCSV(w); err != nil {
			// Headers are gone; nothing better to do than log-by-status.
			return
		}
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, table.String())
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q (json, csv, text)", format)
	}
}

// storeStatsResponse is GET /v1/store/stats' body.
type storeStatsResponse struct {
	Attached bool        `json:"attached"`
	Stats    store.Stats `json:"stats,omitempty"`
}

func (s *Server) handleStoreStats(w http.ResponseWriter, _ *http.Request) {
	resp := storeStatsResponse{}
	if s.st != nil {
		resp.Attached = true
		resp.Stats = s.st.Stats()
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// httpError emits a JSON error body with the given status.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	writeJSON(w, map[string]string{"error": fmt.Sprintf(format, args...)})
}
